package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/einsim"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	chip := repro.SimulatedChip(repro.MfrA, 16, 3)
	rep, err := repro.RecoverECCFunction(chip, repro.FastRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 16 {
		t.Fatalf("discovered k=%d", rep.K)
	}
	if !rep.Result.Unique {
		t.Fatalf("expected unique recovery, got %d", len(rep.Result.Codes))
	}
	if !rep.Result.Codes[0].EquivalentTo(repro.GroundTruth(chip)) {
		t.Fatal("facade recovery mismatch")
	}
}

func TestFacadeCodeHelpers(t *testing.T) {
	if repro.Hamming74().N() != 7 {
		t.Fatal("Hamming74 wrong shape")
	}
	a := repro.NewHammingCode(32, 1)
	b := repro.NewHammingCode(32, 1)
	if !a.Equal(b) {
		t.Fatal("NewHammingCode not deterministic per seed")
	}
	if len(repro.OneChargedPatterns(8)) != 8 || len(repro.TwoChargedPatterns(8)) != 28 {
		t.Fatal("pattern helpers broken")
	}
}

func TestFacadeProfileAndSolve(t *testing.T) {
	code := repro.NewHammingCode(11, 7) // full-length (15,11)
	prof := repro.ExactProfile(code, repro.OneChargedPatterns(11))
	res, err := repro.SolveProfile(prof, core.SolveOptions{ParityBits: code.ParityBits()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique || !res.Codes[0].EquivalentTo(code) {
		t.Fatal("facade solve failed")
	}
}

func TestFacadeBEEP(t *testing.T) {
	code := repro.NewHammingCode(26, 9)
	word := repro.SimulatedWord(code, []int{2, 9, 20}, 1.0, 4)
	out := repro.ProfileWord(code, word, repro.BEEPOptions{
		Passes: 2, TrialsPerPattern: 1, WorstCaseNeighbors: true,
	}, 5)
	for _, c := range out.Identified {
		if c != 2 && c != 9 && c != 20 {
			t.Fatalf("false positive cell %d", c)
		}
	}
	if len(out.Identified) == 0 {
		t.Fatal("BEEP found nothing")
	}
}

func TestFacadeSimulate(t *testing.T) {
	res, err := repro.Simulate(einsim.Config{
		Code:    repro.Hamming74(),
		Pattern: einsim.PatternAllOnes,
		Model:   einsim.ModelUniform,
		RBER:    1e-2,
		Words:   20000,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Words != 20000 || res.Correctable == 0 {
		t.Fatalf("implausible simulation result: %+v", res)
	}
}

func TestFacadeSimulateParallel(t *testing.T) {
	cfg := einsim.Config{
		Code:    repro.Hamming74(),
		Pattern: einsim.PatternAllOnes,
		Model:   einsim.ModelUniform,
		RBER:    1e-2,
		Words:   20000,
	}
	res, err := repro.SimulateParallel(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Words != 20000 || res.Correctable == 0 {
		t.Fatalf("implausible simulation result: %+v", res)
	}
	// A 1-worker engine must reproduce the default engine bit for bit.
	serial, err := repro.NewEngine(1).Simulate(context.Background(), cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Correctable != res.Correctable || serial.Miscorrected != res.Miscorrected {
		t.Fatal("sharded simulation depends on worker count")
	}
}

func TestFacadeRecoverParallel(t *testing.T) {
	chips := repro.SimulatedChips(repro.MfrA, 16, 2, 3)
	rep, err := repro.RecoverECCFunctionParallel(chips, repro.FastRecovery())
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 16 || !rep.Result.Unique {
		t.Fatalf("parallel recovery failed: k=%d, %d candidates", rep.K, len(rep.Result.Codes))
	}
	if !rep.Result.Codes[0].EquivalentTo(repro.GroundTruth(repro.SimulatedChip(repro.MfrA, 16, 3))) {
		t.Fatal("parallel facade recovery mismatch")
	}
}
