// Package stats provides the statistical helpers the reproduction needs:
// five-number summaries and bootstrap confidence intervals for the figures
// (paper §6 reports medians with min/max whiskers), and deterministic
// hash-based random variates for the DRAM retention model (each cell's
// retention time must be a repeatable function of its address, mirroring
// how real cells have fixed-but-random retention behavior, paper §3.2).
//
// Entry points: Summarize/Bootstrap for the figure pipelines; SplitMix64/
// HashN + Uniform01/NormalInv for address-keyed variates (internal/dram
// draws retention times through them). The hash-based variates carry the
// repository-wide determinism invariant: same address + seed, same value,
// on every platform.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		return sorted[0]
	}
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a five-number summary plus the mean, the shape Figure 4's
// boxplots report (min, median, max, interquartile range).
type Summary struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}
}

// Interval is a bootstrap point estimate with a confidence interval, as used
// for Figure 1's error bars (paper: medians and 95% confidence intervals via
// statistical bootstrapping over 1000 samples).
type Interval struct {
	Lo, Point, Hi float64
}

// Bootstrap estimates stat's sampling distribution by resampling xs with
// replacement resamples times, returning the (1-conf)/2 and (1+conf)/2
// quantiles around the point estimate stat(xs). conf is e.g. 0.95.
func Bootstrap(xs []float64, stat func([]float64) float64, resamples int, conf float64, rng *rand.Rand) Interval {
	point := stat(xs)
	if len(xs) == 0 || resamples <= 0 {
		return Interval{Lo: point, Point: point, Hi: point}
	}
	res := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.IntN(len(xs))]
		}
		res[r] = stat(buf)
	}
	sort.Float64s(res)
	alpha := (1 - conf) / 2
	return Interval{
		Lo:    quantileSorted(res, alpha),
		Point: point,
		Hi:    quantileSorted(res, 1-alpha),
	}
}

// SplitMix64 is the splitmix64 mixing function: a bijective avalanche hash
// used to derive independent per-cell random values from addresses.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashN folds a sequence of integers into a single well-mixed 64-bit hash.
func HashN(parts ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h = SplitMix64(h ^ p)
	}
	return h
}

// Uniform01 maps a 64-bit hash to a float64 in the open interval (0, 1).
func Uniform01(h uint64) float64 {
	// Use the top 52 bits, offset by one half, so both endpoints are
	// excluded and every intermediate value is exactly representable.
	return (float64(h>>12) + 0.5) / float64(1<<52)
}

// NormalInv returns the standard normal quantile function Phi^-1(p) via the
// inverse error function.
func NormalInv(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// LogNormal returns exp(mu + sigma*Phi^-1(u)) for u in (0,1): a deterministic
// log-normal variate driven by a hash-derived uniform.
func LogNormal(u, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*NormalInv(u))
}

// LogNormalCDF returns P(X <= x) for X ~ LogNormal(mu, sigma).
func LogNormalCDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * (1 + math.Erf((math.Log(x)-mu)/(sigma*math.Sqrt2)))
}
