package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("Median = %v", got)
	}
	if got := Median([]float64{5}); got != 5 {
		t.Fatalf("Median single = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10, 20, 30}
	cases := map[float64]float64{0: 0, 0.5: 15, 1: 30, 0.25: 7.5}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Min != 1 || s.Max != 100 || s.Median != 3 || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Median) {
		t.Fatal("empty summary should be NaN")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCoversTrueMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	covered := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = 3.0 + rng.NormFloat64()
		}
		iv := Bootstrap(xs, Mean, 300, 0.95, rng)
		if iv.Lo > iv.Point || iv.Point > iv.Hi {
			t.Fatalf("interval not ordered: %+v", iv)
		}
		if iv.Lo <= 3.0 && 3.0 <= iv.Hi {
			covered++
		}
	}
	// 95% nominal coverage; allow generous slack for 100 trials.
	if covered < 85 {
		t.Fatalf("bootstrap CI covered the true mean only %d/%d times", covered, trials)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	iv := Bootstrap(nil, Mean, 100, 0.95, rng)
	if iv.Lo != iv.Hi {
		t.Fatal("empty bootstrap should collapse to a point")
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := SplitMix64(12345)
	flipped := SplitMix64(12345 ^ 1)
	diff := base ^ flipped
	ones := 0
	for ; diff != 0; diff &= diff - 1 {
		ones++
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("avalanche too weak: %d differing bits", ones)
	}
}

func TestHashNDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for b := uint64(0); b < 4; b++ {
		for r := uint64(0); r < 64; r++ {
			for c := uint64(0); c < 64; c++ {
				h := HashN(7, b, r, c)
				if seen[h] {
					t.Fatalf("hash collision at (%d,%d,%d)", b, r, c)
				}
				seen[h] = true
			}
		}
	}
}

func TestUniform01Range(t *testing.T) {
	for _, h := range []uint64{0, 1, ^uint64(0), 0x8000000000000000} {
		u := Uniform01(h)
		if u <= 0 || u >= 1 {
			t.Fatalf("Uniform01(%#x) = %v out of (0,1)", h, u)
		}
	}
}

func TestNormalInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		z := NormalInv(p)
		// CDF via erf to invert.
		back := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("NormalInv(%v) round trip = %v", p, back)
		}
	}
	if NormalInv(0.5) != 0 {
		t.Error("NormalInv(0.5) should be 0")
	}
}

func TestLogNormalQuantiles(t *testing.T) {
	mu, sigma := 2.0, 0.5
	med := LogNormal(0.5, mu, sigma)
	if math.Abs(med-math.Exp(mu)) > 1e-9 {
		t.Fatalf("log-normal median = %v, want %v", med, math.Exp(mu))
	}
	// CDF inverts the quantile transform.
	for _, u := range []float64{0.05, 0.3, 0.7, 0.99} {
		x := LogNormal(u, mu, sigma)
		if math.Abs(LogNormalCDF(x, mu, sigma)-u) > 1e-9 {
			t.Errorf("CDF(quantile(%v)) mismatch", u)
		}
	}
	if LogNormalCDF(-1, mu, sigma) != 0 || LogNormalCDF(0, mu, sigma) != 0 {
		t.Error("CDF must be 0 for non-positive x")
	}
}

// Property: the empirical CDF of hash-driven log-normal samples matches the
// analytic CDF (a goodness-of-fit smoke test for the retention model's
// foundation).
func TestLogNormalEmpiricalCDF(t *testing.T) {
	mu, sigma := 8.0, 0.6
	const n = 20000
	x := math.Exp(mu - sigma) // one sigma below the median (in log space)
	count := 0
	for i := 0; i < n; i++ {
		u := Uniform01(HashN(99, uint64(i)))
		if LogNormal(u, mu, sigma) <= x {
			count++
		}
	}
	got := float64(count) / n
	want := LogNormalCDF(x, mu, sigma) // = Phi(-1) ~ 0.1587
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical CDF %v, analytic %v", got, want)
	}
}
