package sat

import (
	"errors"
	"testing"
	"time"
)

// TestTimeoutStopsSearch: a hard pigeonhole instance under a tiny wall-clock
// budget must return ErrTimeout instead of running to an answer, and the
// solver must stay reusable for the next sample — the HARP discard
// semantics: a timed-out solve drops that sample, the loop continues on the
// same solver.
func TestTimeoutStopsSearch(t *testing.T) {
	s := New()
	php(s, 10, 9) // large enough that no machine proves UNSAT in 1ns
	s.SetTimeout(time.Nanosecond)
	ok, err := s.Solve()
	if ok || !errors.Is(err, ErrTimeout) {
		t.Fatalf("Solve = (%v, %v), want (false, ErrTimeout)", ok, err)
	}
	// Discard semantics: clear the budget and the same solver answers.
	s.SetTimeout(0)
	ok, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PHP(10,9) reported SAT")
	}
}

// TestTimeoutPolledOnDecisions: a conflict-free satisfiable formula only
// observes the deadline through the decision-path poll, mirroring the
// interrupt-hook coverage.
func TestTimeoutPolledOnDecisions(t *testing.T) {
	s := New()
	for i := 0; i < 100000; i++ {
		s.NewVar()
	}
	s.Add(NegLit(0), NegLit(1))
	s.SetTimeout(time.Nanosecond)
	ok, err := s.Solve()
	if ok || !errors.Is(err, ErrTimeout) {
		t.Fatalf("Solve = (%v, %v), want (false, ErrTimeout) via the decision-path poll", ok, err)
	}
	s.SetTimeout(0)
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("post-timeout Solve = (%v, %v), want SAT", ok, err)
	}
}

// TestTimeoutGenerousBudgetSolves: a budget the solve comfortably fits in
// must not perturb the answer.
func TestTimeoutGenerousBudgetSolves(t *testing.T) {
	s := New()
	php(s, 5, 4)
	s.SetTimeout(time.Minute)
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PHP(5,4) reported SAT")
	}
}

// TestFailedAssumptionsCore: guard three constraint groups behind
// assumption literals where only one pairing is contradictory; the failed
// core must contain exactly the contradictory guards and never the
// irrelevant one.
func TestFailedAssumptionsCore(t *testing.T) {
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	gA := s.NewVar() // guards x = true
	gB := s.NewVar() // guards x = false
	gC := s.NewVar() // guards y = true (irrelevant)
	s.Add(NegLit(gA), PosLit(x))
	s.Add(NegLit(gB), NegLit(x))
	s.Add(NegLit(gC), PosLit(y))

	ok, err := s.SolveUnderAssumptions(PosLit(gC), PosLit(gA), PosLit(gB))
	if ok || err != nil {
		t.Fatalf("SolveUnderAssumptions = (%v, %v), want (false, nil)", ok, err)
	}
	core := s.FailedAssumptions()
	if len(core) == 0 {
		t.Fatal("empty failed-assumption core on UNSAT-under-assumptions")
	}
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if !inCore[PosLit(gA)] || !inCore[PosLit(gB)] {
		t.Fatalf("core %v missing a contradictory guard (want gA=%v and gB=%v)", core, PosLit(gA), PosLit(gB))
	}
	if inCore[PosLit(gC)] {
		t.Fatalf("core %v includes the irrelevant guard gC=%v", core, PosLit(gC))
	}

	// Soundness: re-solving under just the reported core must stay UNSAT.
	ok, err = s.SolveUnderAssumptions(core...)
	if ok || err != nil {
		t.Fatalf("re-solve under core %v = (%v, %v), want (false, nil)", core, ok, err)
	}

	// And after a SAT answer the core must be empty again.
	if ok, err := s.SolveUnderAssumptions(PosLit(gA), PosLit(gC)); !ok || err != nil {
		t.Fatalf("SolveUnderAssumptions(gA,gC) = (%v, %v), want SAT", ok, err)
	}
	if got := s.FailedAssumptions(); len(got) != 0 {
		t.Fatalf("FailedAssumptions after SAT = %v, want empty", got)
	}
}

// TestFailedAssumptionsDeepCore: the failing assumption is forced false
// only through a propagation chain, so the core requires the transitive
// reason-clause walk (not just the directly conflicting pair).
func TestFailedAssumptionsDeepCore(t *testing.T) {
	s := New()
	const n = 6
	v := make([]int, n)
	for i := range v {
		v[i] = s.NewVar()
	}
	// Implication chain v0 -> v1 -> ... -> v5.
	for i := 0; i+1 < n; i++ {
		s.Add(NegLit(v[i]), PosLit(v[i+1]))
	}
	free := s.NewVar() // unrelated assumption
	ok, err := s.SolveUnderAssumptions(PosLit(free), PosLit(v[0]), NegLit(v[n-1]))
	if ok || err != nil {
		t.Fatalf("SolveUnderAssumptions = (%v, %v), want (false, nil)", ok, err)
	}
	core := s.FailedAssumptions()
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if !inCore[PosLit(v[0])] || !inCore[NegLit(v[n-1])] {
		t.Fatalf("core %v must contain both chain endpoints", core)
	}
	if inCore[PosLit(free)] {
		t.Fatalf("core %v includes the unrelated assumption", core)
	}
	if ok, err := s.SolveUnderAssumptions(core...); ok || err != nil {
		t.Fatalf("re-solve under core %v = (%v, %v), want (false, nil)", core, ok, err)
	}
}
