//go:build unix

package sat

import (
	"os/exec"
	"syscall"
)

// setProcessGroup puts the external solver in its own process group, so a
// kill reaches every process the solver spawned (portfolio wrappers and
// preprocessor scripts fork freely) — a timed-out race must leave no
// orphans behind.
func setProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProcessGroup SIGKILLs the solver's whole process group, falling back
// to the direct process if the group kill fails (the child may not have
// reached setpgid yet).
func killProcessGroup(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}
