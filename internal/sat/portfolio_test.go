package sat

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPortfolioDefaultsSolve(t *testing.T) {
	p, err := NewPortfolio()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CompetitorNames()) != 3 {
		t.Fatalf("default competitors = %v, want 3", p.CompetitorNames())
	}

	// SAT: (x|y) & ~x forces y.
	x, y := p.NewVar(), p.NewVar()
	p.Add(PosLit(x), PosLit(y))
	p.Add(NegLit(x))
	sat, err := p.Solve()
	if err != nil || !sat {
		t.Fatalf("Solve = %v, %v; want true, nil", sat, err)
	}
	if p.Value(x) || !p.Value(y) {
		t.Fatalf("model x:%v y:%v, want false/true", p.Value(x), p.Value(y))
	}

	// Pin down UNSAT and the root-latch on the same instance.
	p.Add(NegLit(y))
	if sat, err := p.Solve(); err != nil || sat {
		t.Fatalf("contradiction: got %v, %v; want false, nil", sat, err)
	}
	races := p.Statistics().Races
	if sat, err := p.Solve(); err != nil || sat {
		t.Fatalf("latched: got %v, %v; want false, nil", sat, err)
	}
	if p.Statistics().Races != races {
		t.Fatal("root-UNSAT portfolio must not race again")
	}

	st := p.Statistics()
	var wins int64
	for _, c := range st.Competitors {
		wins += c.Wins
	}
	if wins != st.Races {
		t.Fatalf("wins %d != races %d: %+v", wins, st.Races, st.Competitors)
	}
}

func TestPortfolioAssumptions(t *testing.T) {
	p, err := NewPortfolio(CDCLCompetitor(0), CDCLCompetitor(7))
	if err != nil {
		t.Fatal(err)
	}
	x := p.NewVar()
	p.Add(PosLit(x))
	sat, err := p.SolveUnderAssumptions(NegLit(x))
	if err != nil || sat {
		t.Fatalf("under ~x: got %v, %v; want false, nil", sat, err)
	}
	if got := p.FailedAssumptions(); len(got) == 0 {
		t.Fatal("want a nonempty failed-assumption set")
	}
	if sat, err := p.Solve(); err != nil || !sat {
		t.Fatalf("after assumption-UNSAT: got %v, %v; want true, nil", sat, err)
	}
}

func TestPortfolioRejectsUsedBackend(t *testing.T) {
	used := New()
	used.NewVar()
	if _, err := NewPortfolio(Competitor{Name: "used", Backend: used}); err == nil {
		t.Fatal("want error for non-fresh competitor backend")
	}
	if _, err := NewPortfolio(Competitor{Name: "nil"}); err == nil {
		t.Fatal("want error for nil competitor backend")
	}
}

// TestPortfolioCancelsLosersPromptly races the in-process engine against a
// fake external solver that would sleep for an hour: the CDCL competitor
// answers instantly, the sleeper must be killed, the call must return fast,
// and no goroutines may leak (every competitor joined).
func TestPortfolioCancelsLosersPromptly(t *testing.T) {
	before := runtime.NumGoroutine()

	ext, err := ExternalCompetitor(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPortfolio(CDCLCompetitor(0), ext)
	if err != nil {
		t.Fatal(err)
	}
	x := p.NewVar()
	p.Add(PosLit(x))

	start := time.Now()
	sat, err := p.Solve()
	if err != nil || !sat {
		t.Fatalf("Solve = %v, %v; want true, nil", sat, err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("race took %v — loser not cancelled", elapsed)
	}

	st := p.Statistics()
	if len(st.Competitors) != 2 {
		t.Fatalf("competitors = %+v", st.Competitors)
	}
	cdcl, sleeper := st.Competitors[0], st.Competitors[1]
	if cdcl.Wins != 1 {
		t.Fatalf("cdcl should win: %+v", st.Competitors)
	}
	if sleeper.Losses != 1 {
		t.Fatalf("sleeper should record a cancelled loss: %+v", st.Competitors)
	}

	// All race goroutines joined: the count settles back to the baseline
	// (retry briefly — runtime bookkeeping lags the Wait).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPortfolioCallerInterrupt wires a caller-level Interrupt hook (the
// core engine's ctx hook is exactly this) over two never-answering
// competitors: the race must unwind with ErrInterrupted — caller
// cancellation outranks the other abort sentinels — and the portfolio must
// stay reusable afterwards.
func TestPortfolioCallerInterrupt(t *testing.T) {
	sleeper1, err := ExternalCompetitor(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	sleeper2, err := ExternalCompetitor(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPortfolio(sleeper1, sleeper2)
	if err != nil {
		t.Fatal(err)
	}
	x := p.NewVar()
	p.Add(PosLit(x))

	var fired atomic.Bool
	go func() {
		time.Sleep(100 * time.Millisecond)
		fired.Store(true)
	}()
	p.Interrupt(func() bool { return fired.Load() })
	start := time.Now()
	_, err = p.Solve()
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupt took %v", elapsed)
	}
	// Reusable after cancellation, mirroring the single-backend contract:
	// the next call runs a fresh race (here bounded by a deadline instead).
	p.Interrupt(nil)
	p.SetTimeout(150 * time.Millisecond)
	if _, err := p.Solve(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("re-solve err = %v, want ErrTimeout", err)
	}
}

// TestPortfolioDisagreementDetected plants a slow lying competitor: the
// honest engine wins first with UNSAT, the liar later claims SAT, and the
// portfolio must surface the conflict instead of quietly trusting the
// winner.
func TestPortfolioDisagreementDetected(t *testing.T) {
	liar := &stubBackend{answer: true, delay: 100 * time.Millisecond}
	p, err := NewPortfolio(CDCLCompetitor(0), Competitor{Name: "liar", Backend: liar})
	if err != nil {
		t.Fatal(err)
	}
	x := p.NewVar()
	ok1 := p.Add(PosLit(x))
	ok2 := p.Add(NegLit(x))
	if !ok1 || !ok2 {
		// The CDCL engine latched root-UNSAT at add time; the race never
		// runs and there is no disagreement to detect on this build.
		t.Skip("formula latched at add time")
	}
	_, err = p.Solve()
	if err == nil || !strings.Contains(err.Error(), "disagreement") {
		t.Fatalf("err = %v, want portfolio disagreement", err)
	}
}

// stubBackend is a minimal fake competitor for disagreement tests.
type stubBackend struct {
	nVars, nClauses int
	answer          bool
	delay           time.Duration
	model           []bool
}

func (s *stubBackend) NewVar() int              { s.nVars++; return s.nVars - 1 }
func (s *stubBackend) NumVars() int             { return s.nVars }
func (s *stubBackend) NumClauses() int          { return s.nClauses }
func (s *stubBackend) Add(...Lit) bool          { s.nClauses++; return true }
func (s *stubBackend) FailedAssumptions() []Lit { return nil }
func (s *stubBackend) Value(v int) bool         { return false }
func (s *stubBackend) Model() []bool            { return make([]bool, s.nVars) }
func (s *stubBackend) Learned() int64           { return 0 }
func (s *stubBackend) Interrupt(func() bool)    {}
func (s *stubBackend) SetMaxConflicts(int64)    {}
func (s *stubBackend) SetTimeout(time.Duration) {}
func (s *stubBackend) Statistics() Stats        { return Stats{} }
func (s *stubBackend) Solve() (bool, error)     { return s.SolveUnderAssumptions() }
func (s *stubBackend) SolveUnderAssumptions(...Lit) (bool, error) {
	time.Sleep(s.delay)
	return s.answer, nil
}

// TestPortfolioTimeout: when every competitor times out, the race reports
// ErrTimeout and the portfolio stays reusable with a longer budget.
func TestPortfolioTimeout(t *testing.T) {
	sleeper1, err := ExternalCompetitor(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	sleeper2, err := ExternalCompetitor(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPortfolio(sleeper1, sleeper2)
	if err != nil {
		t.Fatal(err)
	}
	x := p.NewVar()
	p.Add(PosLit(x))
	p.SetTimeout(200 * time.Millisecond)
	_, err = p.Solve()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	st := p.Statistics()
	if st.ExternalTimeouts != 2 {
		t.Fatalf("external timeouts = %d, want 2", st.ExternalTimeouts)
	}
	for _, c := range st.Competitors {
		if c.Timeouts != 1 {
			t.Fatalf("per-competitor timeouts: %+v", st.Competitors)
		}
	}
}

// TestDefaultPortfolioSkipsMissingSolvers: a config whose binary does not
// resolve is left out silently, the in-process competitors remain.
func TestDefaultPortfolioSkipsMissingSolvers(t *testing.T) {
	p, err := DefaultPortfolio(2, ExternalConfig{Argv: []string{"no-such-solver-binary-xyzzy"}})
	if err != nil {
		t.Fatal(err)
	}
	if names := p.CompetitorNames(); len(names) != 2 {
		t.Fatalf("competitors = %v, want just the 2 CDCL engines", names)
	}
}
