//go:build !unix

package sat

import "os/exec"

// setProcessGroup is a no-op off unix; the direct-process kill below is the
// best available discipline there.
func setProcessGroup(cmd *exec.Cmd) {}

// killProcessGroup kills the solver process (children may survive on
// platforms without process groups; the unix build kills the whole group).
func killProcessGroup(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}
