//go:build unix

package sat

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExternalTimeoutKillsWholeProcessGroup proves the no-orphans
// guarantee: the fake sleeping solver forks a grandchild; after the
// deadline fires, both the solver process AND its grandchild must be dead
// — the kill reaches the whole process group, not just the direct child.
func TestExternalTimeoutKillsWholeProcessGroup(t *testing.T) {
	pidFile := filepath.Join(t.TempDir(), "pids")
	cfg := selfConfig(t, "sleep", "BEER_SAT_PIDFILE="+pidFile)
	cfg.Timeout = 300 * time.Millisecond
	e, err := NewExternal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x))
	if _, err := e.Solve(); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	data, err := os.ReadFile(pidFile)
	if err != nil {
		t.Fatalf("fake solver never wrote its pid file: %v", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 {
		t.Fatalf("pid file contents %q, want two pids", data)
	}
	for _, name := range []string{"solver", "grandchild"} {
		pid, err := strconv.Atoi(fields[map[string]int{"solver": 0, "grandchild": 1}[name]])
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			// Signal 0 probes existence; ESRCH means the process is gone.
			// (A zombie still "exists" but the solver was Wait()ed and the
			// grandchild is reparented to init, which reaps it.)
			err := syscall.Kill(pid, 0)
			if err == syscall.ESRCH {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s process %d still alive after kill (err=%v) — orphaned", name, pid, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
