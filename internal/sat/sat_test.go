package sat

import (
	"math/rand/v2"
	"testing"
)

func mustSolve(t *testing.T, s *Solver) bool {
	t.Helper()
	ok, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return ok
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	b := PosLit(s.NewVar())
	s.AddClause(a, b)
	s.AddClause(a.Not())
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
	if s.ValueLit(a) || !s.ValueLit(b) {
		t.Fatalf("model a=%v b=%v, want a=false b=true", s.ValueLit(a), s.ValueLit(b))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	s.AddClause(a)
	s.AddClause(a.Not())
	if mustSolve(t, s) {
		t.Fatal("expected UNSAT")
	}
	// Solver stays UNSAT afterwards.
	if s.AddClause(a) {
		t.Fatal("AddClause after UNSAT should report false")
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause must make the formula UNSAT")
	}
	if mustSolve(t, s) {
		t.Fatal("expected UNSAT")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := PosLit(s.NewVar())
	if !s.AddClause(a, a.Not()) {
		t.Fatal("tautology should be accepted")
	}
	if s.NumClauses() != 0 {
		t.Fatal("tautology should not be stored")
	}
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x0; x0->x1; x1->x2; ... x9 must all become true.
	s := New()
	n := 10
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(s.NewVar())
	}
	s.AddClause(lits[0])
	for i := 0; i+1 < n; i++ {
		s.Implies(lits[i], lits[i+1])
	}
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
	for i, l := range lits {
		if !s.ValueLit(l) {
			t.Fatalf("x%d should be forced true", i)
		}
	}
}

// pigeonhole builds the classic PHP(p, h) instance: p pigeons into h holes,
// one pigeon per hole. UNSAT whenever p > h.
func pigeonhole(p, h int) *Solver {
	s := New()
	x := make([][]Lit, p)
	for i := range x {
		x[i] = make([]Lit, h)
		for j := range x[i] {
			x[i][j] = PosLit(s.NewVar())
		}
	}
	for i := 0; i < p; i++ {
		s.AddClause(x[i]...) // every pigeon somewhere
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(x[i1][j].Not(), x[i2][j].Not())
			}
		}
	}
	return s
}

func TestPigeonhole(t *testing.T) {
	if mustSolve(t, pigeonhole(5, 4)) {
		t.Fatal("PHP(5,4) must be UNSAT")
	}
	if !mustSolve(t, pigeonhole(4, 4)) {
		t.Fatal("PHP(4,4) must be SAT")
	}
	if mustSolve(t, pigeonhole(7, 6)) {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
}

// bruteForceSat exhaustively checks a CNF over n variables.
func bruteForceSat(n int, cnf [][]Lit) (bool, int) {
	count := 0
	sat := false
	for m := 0; m < 1<<uint(n); m++ {
		good := true
		for _, cl := range cnf {
			clauseOK := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Sign() {
					clauseOK = true
					break
				}
			}
			if !clauseOK {
				good = false
				break
			}
		}
		if good {
			sat = true
			count++
		}
	}
	return sat, count
}

// TestRandomCNFAgainstBruteForce cross-checks the solver on hundreds of small
// random formulas, including both SAT/UNSAT answers and full model counts via
// enumeration.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.IntN(10)
		nc := 2 + rng.IntN(5*n)
		cnf := make([][]Lit, nc)
		for i := range cnf {
			width := 1 + rng.IntN(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.IntN(n), rng.IntN(2) == 1)
			}
			cnf[i] = cl
		}
		wantSat, wantCount := bruteForceSat(n, cnf)

		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		gotSat := mustSolve(t, s)
		if gotSat != wantSat {
			t.Fatalf("trial %d: solver says %v, brute force says %v", trial, gotSat, wantSat)
		}
		if !gotSat {
			continue
		}
		// Verify the model actually satisfies the formula.
		for ci, cl := range cnf {
			ok := false
			for _, l := range cl {
				if s.ValueLit(l) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: model violates clause %d", trial, ci)
			}
		}
		// Count all models by enumeration and compare.
		s2 := New()
		vars := make([]int, n)
		for i := 0; i < n; i++ {
			vars[i] = s2.NewVar()
		}
		for _, cl := range cnf {
			s2.AddClause(cl...)
		}
		gotCount, err := s2.EnumerateModels(vars, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotCount != wantCount {
			t.Fatalf("trial %d: enumeration found %d models, brute force %d", trial, gotCount, wantCount)
		}
	}
}

func TestXorConstraints(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(8)
		s := New()
		lits := make([]Lit, n)
		vars := make([]int, n)
		for i := range lits {
			vars[i] = s.NewVar()
			lits[i] = PosLit(vars[i])
		}
		rhs := rng.IntN(2) == 1
		s.AddXor(lits, rhs)
		count, err := s.EnumerateModels(vars, 0, func(m []bool) bool {
			parity := false
			for _, b := range m {
				parity = parity != b
			}
			if parity != rhs {
				t.Fatalf("model parity %v, want %v", parity, rhs)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 1<<uint(n-1) {
			t.Fatalf("n=%d: %d parity models, want %d", n, count, 1<<uint(n-1))
		}
	}
}

func TestAddXorEmpty(t *testing.T) {
	s := New()
	s.AddXor(nil, false)
	if !mustSolve(t, s) {
		t.Fatal("XOR() == false should be SAT")
	}
	s2 := New()
	s2.AddXor(nil, true)
	if mustSolve(t, s2) {
		t.Fatal("XOR() == true should be UNSAT")
	}
}

func TestReifyAndOr(t *testing.T) {
	// Enumerate every input assignment and check both gates agree with the
	// Boolean functions they reify.
	s := New()
	a, b, c := PosLit(s.NewVar()), PosLit(s.NewVar()), PosLit(s.NewVar())
	and := s.ReifyAnd(a, b, c)
	or := s.ReifyOr(a, b, c)
	vars := []int{a.Var(), b.Var(), c.Var(), and.Var(), or.Var()}
	count, err := s.EnumerateModels(vars, 0, func(m []bool) bool {
		wantAnd := m[0] && m[1] && m[2]
		wantOr := m[0] || m[1] || m[2]
		gotAnd := m[3] != and.Sign()
		gotOr := m[4] != or.Sign()
		if gotAnd != wantAnd || gotOr != wantOr {
			t.Fatalf("inputs %v: and=%v (want %v), or=%v (want %v)",
				m[:3], gotAnd, wantAnd, gotOr, wantOr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("enumerated %d gate models, want 8", count)
	}

	// Fresh solver: forcing the AND gate true forces every input.
	s2 := New()
	a2, b2, c2 := PosLit(s2.NewVar()), PosLit(s2.NewVar()), PosLit(s2.NewVar())
	and2 := s2.ReifyAnd(a2, b2, c2)
	or2 := s2.ReifyOr(a2, b2, c2)
	s2.AddClause(and2)
	if !mustSolve(t, s2) {
		t.Fatal("AND forced true should be SAT")
	}
	if !(s2.ValueLit(a2) && s2.ValueLit(b2) && s2.ValueLit(c2)) {
		t.Fatal("AND true must force all inputs true")
	}
	s2.AddClause(or2.Not())
	if mustSolve(t, s2) {
		t.Fatal("AND(a,b,c) and NOT OR(a,b,c) together must be UNSAT")
	}
}

func TestExactlyOne(t *testing.T) {
	s := New()
	n := 6
	lits := make([]Lit, n)
	vars := make([]int, n)
	for i := range lits {
		vars[i] = s.NewVar()
		lits[i] = PosLit(vars[i])
	}
	s.ExactlyOne(lits...)
	count, err := s.EnumerateModels(vars, 0, func(m []bool) bool {
		ones := 0
		for _, b := range m {
			if b {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("model has %d true literals, want 1", ones)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ExactlyOne over %d vars has %d models, want %d", n, count, n)
	}
}

func TestIncrementalSolving(t *testing.T) {
	// Solve, then add a clause contradicting the found model, re-solve.
	s := New()
	a, b := PosLit(s.NewVar()), PosLit(s.NewVar())
	s.AddClause(a, b)
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
	s.AddClause(MkLit(a.Var(), s.Value(a.Var())), MkLit(b.Var(), s.Value(b.Var())))
	if !mustSolve(t, s) {
		t.Fatal("one blocked model of three should leave SAT")
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(8, 7)
	s.MaxConflicts = 5
	_, err := s.Solve()
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Raising the budget should allow completion.
	s.MaxConflicts = 0
	if mustSolve(t, s) {
		t.Fatal("PHP(8,7) must be UNSAT")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLitBasics(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Sign() || l.Not().Sign() || l.Not().Var() != 5 {
		t.Fatal("literal encoding broken")
	}
	if l.String() != "~x5" || l.Not().String() != "x5" {
		t.Fatalf("String = %q / %q", l.String(), l.Not().String())
	}
}

// A larger structured instance to exercise restarts and clause deletion:
// graph coloring on a ring with a chord, 3 colors. Ring of odd length is
// 3-colorable; forcing 2 colors makes it UNSAT.
func TestGraphColoring(t *testing.T) {
	n := 51
	edges := make([][2]int, 0, n+1)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	edges = append(edges, [2]int{0, n / 2})

	build := func(colors int) *Solver {
		s := New()
		vars := make([][]Lit, n)
		for i := range vars {
			vars[i] = make([]Lit, colors)
			for c := range vars[i] {
				vars[i][c] = PosLit(s.NewVar())
			}
			s.ExactlyOne(vars[i]...)
		}
		for _, e := range edges {
			for c := 0; c < colors; c++ {
				s.AddClause(vars[e[0]][c].Not(), vars[e[1]][c].Not())
			}
		}
		return s
	}
	if !mustSolve(t, build(3)) {
		t.Fatal("odd ring + chord should be 3-colorable")
	}
	if mustSolve(t, build(2)) {
		t.Fatal("odd ring is not 2-colorable")
	}
}

func BenchmarkSolvePigeonhole87(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := pigeonhole(8, 7)
		if ok, err := s.Solve(); err != nil || ok {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

func TestSetPolaritySteersModel(t *testing.T) {
	// With no constraints, the solver assigns each variable its preferred
	// polarity.
	s := New()
	vars := make([]int, 12)
	want := make([]bool, 12)
	for i := range vars {
		vars[i] = s.NewVar()
		want[i] = i%3 == 0
		s.SetPolarity(vars[i], want[i])
	}
	// A vacuous clause so the formula is non-empty.
	s.AddClause(PosLit(vars[0]), NegLit(vars[0]), PosLit(vars[1]))
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
	for i, v := range vars {
		if s.Value(v) != want[i] {
			t.Fatalf("var %d = %v, want preferred %v", i, s.Value(v), want[i])
		}
	}
}

func TestBoostActivityOrdersDecisions(t *testing.T) {
	// x0 and x1 are complementary under the clause set; whichever is decided
	// first wins. Boost x1 and prefer true: the model must have x1=true.
	s := New()
	x0, x1 := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(x0), PosLit(x1))
	s.AddClause(NegLit(x0), NegLit(x1))
	s.SetPolarity(x0, true)
	s.SetPolarity(x1, true)
	s.BoostActivity(x1, 50)
	if !mustSolve(t, s) {
		t.Fatal("expected SAT")
	}
	if !s.Value(x1) || s.Value(x0) {
		t.Fatalf("model x0=%v x1=%v; boosted x1 should be decided first as true",
			s.Value(x0), s.Value(x1))
	}
}
