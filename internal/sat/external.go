package sat

// External-process SAT backend: shells any DIMACS-speaking solver
// (kissat, cadical, minisat, or this repo's own cmd/beersat) into the
// Backend seam. The paper's own pipeline leans on an external solver (Z3,
// §5.3), and HARP's harness establishes the operational discipline this
// implementation follows: every invocation is bounded by a wall-clock
// deadline, a timed-out solver is killed — process group and all — and its
// partial output is discarded, never trusted.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// ErrSolverNotFound reports that an external solver binary could not be
// resolved. Callers (tests, CLI flags, the portfolio assembler) treat it as
// "skip this competitor", so environments without solvers installed keep
// working on the in-process engine alone.
var ErrSolverNotFound = errors.New("sat: external solver binary not found")

// ExternalConfig configures an external-process backend.
type ExternalConfig struct {
	// Argv is the solver command line; Argv[0] is the binary (resolved via
	// PATH) and the DIMACS file path is appended as the final argument.
	Argv []string
	// Name labels the solver in statistics and portfolio reports
	// (default: the base name of Argv[0]).
	Name string
	// Timeout bounds each invocation in wall clock (0 = unlimited). A run
	// that reaches the deadline is killed and its answer discarded
	// (ErrTimeout). SetTimeout overrides this per the Backend contract.
	Timeout time.Duration
	// Dir is the scratch directory for DIMACS files ("" = os.TempDir).
	Dir string
	// Env appends environment variables (KEY=VALUE) to the solver process
	// beyond the parent's environment.
	Env []string
}

// name returns the display name for stats.
func (c ExternalConfig) name() string {
	if c.Name != "" {
		return c.Name
	}
	if len(c.Argv) == 0 {
		return "external"
	}
	argv0 := c.Argv[0]
	if i := strings.LastIndexByte(argv0, '/'); i >= 0 {
		argv0 = argv0[i+1:]
	}
	return argv0
}

// External is a Backend over an external DIMACS solver process. Clauses
// accumulate in memory; every Solve / SolveUnderAssumptions writes the
// current formula (plus the assumptions as unit clauses) to a scratch
// DIMACS file and runs one solver invocation to completion, kill, or
// deadline. There is no incremental state across calls — callers that need
// hot learned-clause reuse race it against the in-process engine through
// the Portfolio backend instead of replacing it.
//
// External is single-goroutine, like every Backend.
type External struct {
	cfg ExternalConfig
	bin string // resolved Argv[0]

	cnf       CNF
	rootUnsat bool // an empty clause was added, or the solver proved UNSAT with no assumptions

	model     []bool
	hasModel  bool
	failed    []Lit
	interrupt func() bool
	timeout   time.Duration

	stats Stats
}

// Compile-time check.
var _ Backend = (*External)(nil)

// NewExternal resolves the configured solver binary and returns a fresh
// external backend. A missing binary returns an error wrapping
// ErrSolverNotFound; CI environments without solvers installed detect that
// and skip, per the issue's graceful-degradation requirement.
func NewExternal(cfg ExternalConfig) (*External, error) {
	if len(cfg.Argv) == 0 {
		return nil, fmt.Errorf("sat: external solver needs a command line")
	}
	bin, err := exec.LookPath(cfg.Argv[0])
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrSolverNotFound, cfg.Argv[0])
	}
	return &External{cfg: cfg, bin: bin, timeout: cfg.Timeout}, nil
}

// Name returns the solver's display name (ExternalConfig.Name or the
// binary's base name).
func (e *External) Name() string { return e.cfg.name() }

// NewVar implements Backend.
func (e *External) NewVar() int {
	e.cnf.Vars++
	return e.cnf.Vars - 1
}

// NumVars implements Backend.
func (e *External) NumVars() int { return e.cnf.Vars }

// NumClauses implements Backend. Like the Dimacs recorder it counts every
// clause handed to Add — the external file is a faithful export.
func (e *External) NumClauses() int { return len(e.cnf.Clauses) }

// Add implements Backend: record the clause for the next export. Only a
// directly-added empty clause (and a previous no-assumption UNSAT answer)
// makes Add report false; the backend has no propagation of its own.
func (e *External) Add(lits ...Lit) bool {
	if len(lits) == 0 {
		e.rootUnsat = true
	}
	e.cnf.Clauses = append(e.cnf.Clauses, append([]Lit(nil), lits...))
	return !e.rootUnsat
}

// Solve implements Backend: one full solver invocation over the current
// formula.
func (e *External) Solve() (bool, error) { return e.SolveUnderAssumptions() }

// SolveUnderAssumptions implements Backend: the assumptions are appended
// to the exported file as unit clauses (DIMACS has no assumption syntax),
// so an UNSAT answer under assumptions does not mark the formula itself
// unsatisfiable. External solvers return no failed-assumption cores;
// FailedAssumptions after an UNSAT-under-assumptions answer is the full
// assumption set — sound (that set certainly suffices) but never minimal.
func (e *External) SolveUnderAssumptions(assumptions ...Lit) (bool, error) {
	e.failed = e.failed[:0]
	e.hasModel = false
	if e.rootUnsat {
		return false, nil
	}
	if e.interrupt != nil && e.interrupt() {
		return false, ErrInterrupted
	}
	res, err := e.runOnce(assumptions)
	if err != nil {
		return false, err
	}
	if !res.sat {
		if len(assumptions) == 0 {
			e.rootUnsat = true
		} else {
			e.failed = append(e.failed, assumptions...)
		}
		return false, nil
	}
	// Never trust a SAT claim: the model must satisfy the recorded formula
	// and the assumptions. A solver that lies (or a parse that drifted) is
	// an error, not an answer.
	if ok, cl := e.cnf.Satisfied(res.model); !ok {
		return false, fmt.Errorf("sat: external solver %s returned a model violating clause %v", e.Name(), cl)
	}
	for _, a := range assumptions {
		if av := a.Var(); av < len(res.model) && res.model[av] == a.Sign() {
			return false, fmt.Errorf("sat: external solver %s returned a model violating assumption %v", e.Name(), a)
		}
	}
	e.model = res.model
	e.hasModel = true
	return true, nil
}

// solverResult is one parsed invocation outcome.
type solverResult struct {
	sat   bool
	model []bool
}

// runOnce exports the formula, runs the solver once under the effective
// deadline, and parses its verdict. Timed-out and interrupted runs are
// killed (whole process group) and discarded.
func (e *External) runOnce(assumptions []Lit) (solverResult, error) {
	e.stats.ExternalRuns++
	f, err := os.CreateTemp(e.cfg.Dir, "beer-sat-*.cnf")
	if err != nil {
		return solverResult{}, fmt.Errorf("sat: external scratch file: %w", err)
	}
	path := f.Name()
	defer os.Remove(path)
	// Assumptions become unit clauses of the exported formula (fresh slice
	// header AND backing array — the shared clause records must not move),
	// so the recounted header covers them too.
	clauses := make([][]Lit, 0, len(e.cnf.Clauses)+len(assumptions))
	clauses = append(clauses, e.cnf.Clauses...)
	for _, a := range assumptions {
		clauses = append(clauses, []Lit{a})
	}
	export := CNF{Vars: e.cnf.Vars, Clauses: clauses}
	writeErr := export.Write(f)
	if err := f.Close(); err != nil && writeErr == nil {
		writeErr = err
	}
	if writeErr != nil {
		return solverResult{}, fmt.Errorf("sat: external export: %w", writeErr)
	}

	args := append(append([]string(nil), e.cfg.Argv[1:]...), path)
	cmd := exec.Command(e.bin, args...)
	cmd.Env = append(os.Environ(), e.cfg.Env...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	setProcessGroup(cmd)
	if err := cmd.Start(); err != nil {
		return solverResult{}, fmt.Errorf("sat: external solver %s: %w", e.Name(), err)
	}

	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	var deadline time.Time
	if e.timeout > 0 {
		deadline = time.Now().Add(e.timeout)
	}
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case werr := <-waitCh:
			return e.parseOutcome(out.Bytes(), werr)
		case <-poll.C:
			if e.interrupt != nil && e.interrupt() {
				killProcessGroup(cmd)
				<-waitCh
				return solverResult{}, ErrInterrupted
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				// HARP's Z3_TIMEOUT_MS rule: kill and discard. The answer a
				// dying solver prints on the way out is never read.
				killProcessGroup(cmd)
				<-waitCh
				e.stats.ExternalTimeouts++
				return solverResult{}, ErrTimeout
			}
		}
	}
}

// parseOutcome interprets one completed invocation. DIMACS solvers exit 10
// for SAT and 20 for UNSAT (both "failures" to os/exec), so the verdict
// comes from the "s " status line, with the exit code only breaking ties.
func (e *External) parseOutcome(output []byte, waitErr error) (solverResult, error) {
	status, model, perr := parseSolverOutput(output, e.cnf.Vars)
	if perr != nil {
		return solverResult{}, fmt.Errorf("sat: external solver %s: %w", e.Name(), perr)
	}
	switch status {
	case "SATISFIABLE":
		return solverResult{sat: true, model: model}, nil
	case "UNSATISFIABLE":
		return solverResult{}, nil
	case "UNKNOWN":
		// The solver gave up (its own internal limits); same discard
		// semantics as a deadline.
		e.stats.ExternalTimeouts++
		return solverResult{}, ErrTimeout
	}
	if waitErr != nil {
		return solverResult{}, fmt.Errorf("sat: external solver %s: %w (no status line in %d bytes of output)", e.Name(), waitErr, len(output))
	}
	return solverResult{}, fmt.Errorf("sat: external solver %s printed no status line", e.Name())
}

// parseSolverOutput scans solver stdout for the DIMACS "s" status line and
// the "v" model lines (literals across any number of lines, terminated by
// 0). The model defaults unmentioned variables to false.
func parseSolverOutput(output []byte, nVars int) (status string, model []bool, err error) {
	model = make([]bool, nVars)
	for _, line := range strings.Split(string(output), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "s "):
			if status != "" {
				return "", nil, fmt.Errorf("multiple status lines")
			}
			status = strings.TrimSpace(strings.TrimPrefix(line, "s "))
		case strings.HasPrefix(line, "v "), line == "v":
			for _, tok := range strings.Fields(line[1:]) {
				n, aerr := strconv.Atoi(tok)
				if aerr != nil {
					return "", nil, fmt.Errorf("bad model literal %q", tok)
				}
				if n == 0 {
					continue
				}
				v := n
				if v < 0 {
					v = -v
				}
				if v-1 < nVars {
					model[v-1] = n > 0
				}
			}
		}
	}
	return status, model, nil
}

// FailedAssumptions implements Backend; see SolveUnderAssumptions for the
// full-set (sound, non-minimal) semantics.
func (e *External) FailedAssumptions() []Lit { return e.failed }

// Value implements Backend.
func (e *External) Value(v int) bool {
	if !e.hasModel {
		panic("sat: Value called without a model")
	}
	return e.model[v]
}

// Model implements Backend.
func (e *External) Model() []bool {
	m := make([]bool, len(e.model))
	copy(m, e.model)
	return m
}

// Learned implements Backend: an external process keeps its learned state
// to itself, so there is nothing to report (and nothing carries across
// invocations — the incremental-reuse half of the Backend contract is
// honored trivially, each call simply re-reads the whole formula).
func (e *External) Learned() int64 { return 0 }

// Interrupt implements Backend: the hook is polled every few milliseconds
// while a solver process runs; firing kills the process group and returns
// ErrInterrupted.
func (e *External) Interrupt(fn func() bool) { e.interrupt = fn }

// SetMaxConflicts implements Backend. External solvers expose no uniform
// conflict budget over the DIMACS interface; the wall-clock deadline
// (SetTimeout / ExternalConfig.Timeout) is the effort bound, so this is a
// no-op.
func (e *External) SetMaxConflicts(int64) {}

// SetTimeout implements Backend: bounds each invocation in wall clock,
// overriding ExternalConfig.Timeout (0 restores it).
func (e *External) SetTimeout(d time.Duration) {
	if d <= 0 {
		e.timeout = e.cfg.Timeout
		return
	}
	e.timeout = d
}

// Statistics implements Backend: invocation and timeout counters (the
// in-process CDCL fields stay zero — an external solver's internal work is
// invisible).
func (e *External) Statistics() Stats { return e.stats }
