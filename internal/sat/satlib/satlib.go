// Package satlib is the graded solver-regression harness: a committed
// mini-SATLIB corpus (uniform-random 3-SAT in the classic uf20/uf50/uuf50
// classes, plus DIMACS snapshots of real BEER uniqueness-loop formulas
// recorded through the Dimacs backend) and a grading policy
// (grading.json) that fixes, per difficulty grade, the conflict budget a
// conforming solver gets and the fraction of instances it must settle.
//
// The corpus is generated deterministically by gen/main.go (go run
// ./internal/sat/satlib/gen) and committed, so every CI run grades the
// solver against byte-identical formulas. Thresholds only ever ratchet:
// a budget may be lowered or a pass fraction raised when the engine
// improves, never loosened to paper over a regression.
package satlib

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"repro/internal/sat"
)

//go:embed corpus/*.cnf
var corpusFS embed.FS

//go:embed grading.json
var gradingJSON []byte

// Instance is one corpus formula with its provenance and expected answer.
type Instance struct {
	// Name is the corpus file name without extension, e.g. "uf20-03".
	Name string
	// Grade is the difficulty class ("uf20", "uf50", "uuf50", "beer"),
	// keyed into grading.json.
	Grade string
	// Expect is the known satisfiability (from the generator's
	// "c expect SAT|UNSAT" stamp).
	Expect bool
	// CNF is the parsed formula.
	CNF *sat.CNF
}

// Grade is the regression contract for one difficulty class.
type Grade struct {
	// MaxConflicts is the per-instance conflict budget (sat.ErrBudget on
	// overrun counts as a failed instance, never as a skipped one).
	MaxConflicts int64 `json:"max_conflicts"`
	// MinPass is the fraction of the class's instances that must be
	// settled within budget, in [0,1]. A wrong answer fails the whole
	// class outright regardless of this fraction.
	MinPass float64 `json:"min_pass"`
}

// Grading returns the committed per-grade thresholds.
func Grading() (map[string]Grade, error) {
	var g map[string]Grade
	if err := json.Unmarshal(gradingJSON, &g); err != nil {
		return nil, fmt.Errorf("satlib: grading.json: %w", err)
	}
	return g, nil
}

// Load parses the committed corpus. Instances come back sorted by name;
// every instance's grade has an entry in grading.json (enforced here, so
// adding a file without a grading policy fails loudly).
func Load() ([]Instance, error) {
	grading, err := Grading()
	if err != nil {
		return nil, err
	}
	entries, err := fs.ReadDir(corpusFS, "corpus")
	if err != nil {
		return nil, fmt.Errorf("satlib: corpus: %w", err)
	}
	var out []Instance
	for _, e := range entries {
		data, err := fs.ReadFile(corpusFS, "corpus/"+e.Name())
		if err != nil {
			return nil, fmt.Errorf("satlib: %s: %w", e.Name(), err)
		}
		inst, err := parseInstance(e.Name(), data)
		if err != nil {
			return nil, err
		}
		if _, ok := grading[inst.Grade]; !ok {
			return nil, fmt.Errorf("satlib: %s: grade %q has no entry in grading.json", e.Name(), inst.Grade)
		}
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("satlib: corpus is empty — run: go run ./internal/sat/satlib/gen")
	}
	return out, nil
}

// parseInstance decodes one corpus file: the formula via ParseDIMACS, the
// grade from the name prefix, the expectation from the generator's
// "c expect" stamp (name-prefix fallback: uuf means UNSAT).
func parseInstance(fileName string, data []byte) (Instance, error) {
	name := strings.TrimSuffix(fileName, ".cnf")
	cnf, err := sat.ParseDIMACS(bytes.NewReader(data))
	if err != nil {
		return Instance{}, fmt.Errorf("satlib: %s: %w", fileName, err)
	}
	inst := Instance{Name: name, Grade: gradeOf(name), CNF: cnf}
	switch {
	case bytes.Contains(data, []byte("c expect UNSAT")):
		inst.Expect = false
	case bytes.Contains(data, []byte("c expect SAT")):
		inst.Expect = true
	case strings.HasPrefix(name, "uuf"):
		inst.Expect = false
	default:
		return Instance{}, fmt.Errorf("satlib: %s: no \"c expect SAT|UNSAT\" stamp", fileName)
	}
	return inst, nil
}

// gradeOf maps an instance name to its difficulty class: the leading
// run up to the first '-' ("uf20-03" → "uf20", "beer-k8-final" → "beer").
func gradeOf(name string) string {
	head, _, _ := strings.Cut(name, "-")
	return head
}

// ByGrade groups instances by difficulty class.
func ByGrade(insts []Instance) map[string][]Instance {
	out := make(map[string][]Instance)
	for _, in := range insts {
		out[in.Grade] = append(out[in.Grade], in)
	}
	return out
}
