package satlib

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/sat"
)

// TestMain doubles the test binary as a real command-line DIMACS solver:
// with BEER_SAT_SOLVER=1 in the environment it runs sat.SolverMain on its
// arguments instead of the test suite. The external-backend differential
// tests below point sat.ExternalConfig at os.Args[0] with that variable
// set, which exercises the full process-spawning path — temp-file export,
// argv assembly, output parsing, exit-code handling — without requiring
// kissat or cadical to be installed.
func TestMain(m *testing.M) {
	if os.Getenv("BEER_SAT_SOLVER") == "1" {
		os.Exit(sat.SolverMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestCorpusWellFormed pins the corpus composition: every grade present,
// with at least one SAT and one UNSAT instance somewhere, and every BEER
// snapshot nontrivially sized.
func TestCorpusWellFormed(t *testing.T) {
	insts, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	byGrade := ByGrade(insts)
	for _, grade := range []string{"uf20", "uf50", "uuf50", "beer"} {
		if len(byGrade[grade]) == 0 {
			t.Errorf("grade %q has no instances", grade)
		}
	}
	sawSAT, sawUNSAT := false, false
	for _, in := range insts {
		if in.Expect {
			sawSAT = true
		} else {
			sawUNSAT = true
		}
		if len(in.CNF.Clauses) == 0 {
			t.Errorf("%s: empty formula", in.Name)
		}
	}
	if !sawSAT || !sawUNSAT {
		t.Errorf("corpus needs both answers: sawSAT=%v sawUNSAT=%v", sawSAT, sawUNSAT)
	}
}

// TestSolverGraded is the solver-regression gate: every grade's instances
// must be settled within the committed conflict budget at the committed
// pass rate (grading.json). A wrong answer fails the run outright — the
// grading only tolerates running out of budget, never unsoundness.
func TestSolverGraded(t *testing.T) {
	insts, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	grading, err := Grading()
	if err != nil {
		t.Fatal(err)
	}
	for grade, group := range ByGrade(insts) {
		g := grading[grade]
		t.Run(grade, func(t *testing.T) {
			passed := 0
			var conflicts int64
			for _, in := range group {
				s := sat.New()
				in.CNF.Feed(s)
				s.SetMaxConflicts(g.MaxConflicts)
				isSat, err := s.Solve()
				conflicts += s.Statistics().Conflicts
				switch {
				case errors.Is(err, sat.ErrBudget):
					t.Logf("%s: budget of %d conflicts exhausted", in.Name, g.MaxConflicts)
				case err != nil:
					t.Fatalf("%s: %v", in.Name, err)
				case isSat != in.Expect:
					t.Fatalf("%s: solver says sat=%v, corpus says sat=%v — WRONG ANSWER", in.Name, isSat, in.Expect)
				default:
					if isSat {
						if ok, cl := in.CNF.Satisfied(s.Model()); !ok {
							t.Fatalf("%s: model violates clause %v", in.Name, cl)
						}
					}
					passed++
				}
			}
			ratio := float64(passed) / float64(len(group))
			t.Logf("%s: %d/%d within %d conflicts (total spent %d), need %.0f%%",
				grade, passed, len(group), g.MaxConflicts, conflicts, g.MinPass*100)
			if ratio < g.MinPass {
				t.Errorf("%s: pass rate %.2f below committed threshold %.2f", grade, ratio, g.MinPass)
			}
		})
	}
}

// selfSolverConfig points the external backend at this test binary in
// solver mode (see TestMain).
func selfSolverConfig(t *testing.T) sat.ExternalConfig {
	t.Helper()
	return sat.ExternalConfig{
		Argv:    []string{os.Args[0]},
		Name:    "self",
		Env:     []string{"BEER_SAT_SOLVER=1"},
		Timeout: 2 * time.Minute,
		Dir:     t.TempDir(),
	}
}

// realSolverConfigs lists conventionally-behaved external solvers to
// include in the differential when installed (missing ones are skipped —
// sat.ErrSolverNotFound — so solver-less CI stays green).
func realSolverConfigs() []sat.ExternalConfig {
	return []sat.ExternalConfig{
		{Argv: []string{"kissat", "-q"}, Timeout: 2 * time.Minute},
		{Argv: []string{"cadical", "-q"}, Timeout: 2 * time.Minute},
	}
}

// TestDifferentialBackends runs every corpus instance through the
// in-process CDCL engine, the portfolio, the external backend re-execing
// this binary, and any installed real solvers — all must agree with the
// corpus ground truth, and every SAT model must check out against the
// original clauses.
func TestDifferentialBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite spawns processes per instance")
	}
	insts, err := Load()
	if err != nil {
		t.Fatal(err)
	}

	type backendCase struct {
		name string
		make func() (sat.Backend, error)
	}
	cases := []backendCase{
		{"cdcl", func() (sat.Backend, error) { return sat.New(), nil }},
		{"portfolio", func() (sat.Backend, error) { return sat.NewPortfolio() }},
		{"external-self", func() (sat.Backend, error) { return sat.NewExternal(selfSolverConfig(t)) }},
	}
	for _, cfg := range realSolverConfigs() {
		cfg := cfg
		cases = append(cases, backendCase{
			"external-" + cfg.Argv[0],
			func() (sat.Backend, error) { return sat.NewExternal(cfg) },
		})
	}

	for _, bc := range cases {
		t.Run(bc.name, func(t *testing.T) {
			probe, err := bc.make()
			if errors.Is(err, sat.ErrSolverNotFound) {
				t.Skipf("solver not installed: %v", err)
			}
			if err != nil {
				t.Fatal(err)
			}
			_ = probe
			for _, in := range insts {
				b, err := bc.make()
				if err != nil {
					t.Fatal(err)
				}
				in.CNF.Feed(b)
				isSat, err := b.Solve()
				if err != nil {
					t.Fatalf("%s: %v", in.Name, err)
				}
				if isSat != in.Expect {
					t.Fatalf("%s: %s says sat=%v, corpus says sat=%v", in.Name, bc.name, isSat, in.Expect)
				}
				if isSat {
					if ok, cl := in.CNF.Satisfied(b.Model()); !ok {
						t.Fatalf("%s: %s model violates clause %v", in.Name, bc.name, cl)
					}
				}
			}
		})
	}
}

// TestPortfolioOnBeerFormulas drives the portfolio (CDCL seeds + the
// self-solver external competitor) through the recorded BEER formulas and
// checks the race bookkeeping: every race has exactly one winner and the
// cumulative per-competitor tallies account for every start.
func TestPortfolioOnBeerFormulas(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns external solver processes")
	}
	insts, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ByGrade(insts)["beer"] {
		p, err := sat.DefaultPortfolio(2, selfSolverConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.CompetitorNames()); got != 3 {
			t.Fatalf("%s: want 3 competitors, got %v", in.Name, p.CompetitorNames())
		}
		in.CNF.Feed(p)
		isSat, err := p.Solve()
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if isSat != in.Expect {
			t.Fatalf("%s: portfolio says sat=%v, corpus says sat=%v", in.Name, isSat, in.Expect)
		}
		if isSat {
			if ok, cl := in.CNF.Satisfied(p.Model()); !ok {
				t.Fatalf("%s: portfolio model violates clause %v", in.Name, cl)
			}
		}
		stats := p.Statistics()
		if stats.Races != 1 {
			t.Fatalf("%s: races = %d, want 1", in.Name, stats.Races)
		}
		var wins, accounted int64
		for _, cs := range stats.Competitors {
			wins += cs.Wins
			accounted += cs.Wins + cs.Losses + cs.Timeouts + cs.Errors
		}
		if wins != 1 {
			t.Fatalf("%s: %d winners in 1 race: %+v", in.Name, wins, stats.Competitors)
		}
		if accounted > 3 {
			t.Fatalf("%s: %d outcomes from 3 competitors: %+v", in.Name, accounted, stats.Competitors)
		}
	}
}

// TestGradingRatchetSane guards the grading file itself: thresholds must
// stay in range and must not silently drop a grade.
func TestGradingRatchetSane(t *testing.T) {
	grading, err := Grading()
	if err != nil {
		t.Fatal(err)
	}
	for grade, g := range grading {
		if g.MaxConflicts <= 0 {
			t.Errorf("%s: max_conflicts must be positive (the budget IS the regression gate)", grade)
		}
		if g.MinPass <= 0 || g.MinPass > 1 {
			t.Errorf("%s: min_pass %v outside (0,1]", grade, g.MinPass)
		}
	}
}
