package sat

// CNF-building helpers layered on the core solver. BEER's constraints are
// mostly GF(2)-flavored: XOR chains (parity of parity-check matrix entries)
// and reified conjunctions/disjunctions of those parities (the per-pattern
// miscorrection conditions). Everything here Tseitin-encodes into plain
// clauses.
//
// The helpers come in two forms: package-level functions generic over the
// Builder interface (usable with any Backend, including the DIMACS-export
// one), and the historical *Solver methods, which are thin wrappers over
// the generic functions.

// Builder is the clause-construction surface the CNF helpers need. Every
// Backend (and therefore *Solver) implements it.
type Builder interface {
	NewVar() int
	Add(lits ...Lit) bool
}

// True returns a literal that is constant true on b (backed by a
// lazily-created, unit-asserted variable).
func True(b Builder) Lit {
	v := b.NewVar()
	l := PosLit(v)
	b.Add(l)
	return l
}

// False returns a literal that is constant false on b.
func False(b Builder) Lit { return True(b).Not() }

// ReifyXor2 returns a fresh literal y constrained so that y <-> (a XOR c).
func ReifyXor2(b Builder, a, c Lit) Lit {
	y := PosLit(b.NewVar())
	b.Add(y.Not(), a, c)
	b.Add(y.Not(), a.Not(), c.Not())
	b.Add(y, a.Not(), c)
	b.Add(y, a, c.Not())
	return y
}

// ReifyXor returns a literal equal to the XOR of all given literals.
// XOR of no literals is constant false.
func ReifyXor(b Builder, lits ...Lit) Lit {
	if len(lits) == 0 {
		return False(b)
	}
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = ReifyXor2(b, acc, l)
	}
	return acc
}

// AddXor asserts XOR(lits) == rhs. An empty XOR equals false, so rhs=true
// over no literals makes the formula unsatisfiable.
func AddXor(b Builder, lits []Lit, rhs bool) {
	if len(lits) == 0 {
		if rhs {
			b.Add() // empty clause: UNSAT
		}
		return
	}
	acc := ReifyXor(b, lits...)
	if rhs {
		b.Add(acc)
	} else {
		b.Add(acc.Not())
	}
}

// ReifyAnd returns a fresh literal y with y <-> AND(lits). The AND of no
// literals is constant true.
func ReifyAnd(b Builder, lits ...Lit) Lit {
	if len(lits) == 0 {
		return True(b)
	}
	if len(lits) == 1 {
		return lits[0]
	}
	y := PosLit(b.NewVar())
	long := make([]Lit, 0, len(lits)+1)
	long = append(long, y)
	for _, l := range lits {
		b.Add(y.Not(), l)
		long = append(long, l.Not())
	}
	b.Add(long...)
	return y
}

// ReifyOr returns a fresh literal y with y <-> OR(lits). The OR of no
// literals is constant false.
func ReifyOr(b Builder, lits ...Lit) Lit {
	if len(lits) == 0 {
		return False(b)
	}
	if len(lits) == 1 {
		return lits[0]
	}
	neg := make([]Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Not()
	}
	return ReifyAnd(b, neg...).Not()
}

// AtMostOne asserts that at most one of the literals is true, using the
// pairwise encoding (fine for the small cardinalities this project needs).
func AtMostOne(b Builder, lits ...Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			b.Add(lits[i].Not(), lits[j].Not())
		}
	}
}

// ExactlyOne asserts that exactly one of the literals is true.
func ExactlyOne(b Builder, lits ...Lit) {
	b.Add(lits...)
	AtMostOne(b, lits...)
}

// Implies asserts a -> b on the builder.
func Implies(b Builder, x, y Lit) { b.Add(x.Not(), y) }

// BlockModel adds a clause to the backend forbidding its current assignment
// restricted to the given variables; used for model enumeration. Returns
// false when the backend became (or already was) unsatisfiable.
func BlockModel(b Backend, vars []int) bool {
	lits := make([]Lit, len(vars))
	for i, v := range vars {
		lits[i] = MkLit(v, b.Value(v)) // negate the assigned polarity
	}
	return b.Add(lits...)
}

// EnumerateModels repeatedly solves b and blocks solutions projected onto
// the given variables, invoking fn with each projected model until the
// formula is exhausted, fn returns false, or limit models have been produced
// (limit <= 0 means no limit). It returns the number of models found and a
// non-nil error only if the conflict budget was exhausted or the solve was
// interrupted.
func EnumerateModels(b Backend, vars []int, limit int, fn func(model []bool) bool) (int, error) {
	count := 0
	for {
		if limit > 0 && count >= limit {
			return count, nil
		}
		sat, err := b.Solve()
		if err != nil {
			return count, err
		}
		if !sat {
			return count, nil
		}
		count++
		proj := make([]bool, len(vars))
		for i, v := range vars {
			proj[i] = b.Value(v)
		}
		if fn != nil && !fn(proj) {
			return count, nil
		}
		if !BlockModel(b, vars) {
			return count, nil
		}
	}
}

// --- Method forms on *Solver (wrappers over the generic helpers) ---

// True returns a literal that is constant true (backed by a lazily-created,
// unit-asserted variable).
func (s *Solver) True() Lit { return True(s) }

// False returns a literal that is constant false.
func (s *Solver) False() Lit { return False(s) }

// ReifyXor2 returns a fresh literal y constrained so that y <-> (a XOR b).
func (s *Solver) ReifyXor2(a, b Lit) Lit { return ReifyXor2(s, a, b) }

// ReifyXor returns a literal equal to the XOR of all given literals.
func (s *Solver) ReifyXor(lits ...Lit) Lit { return ReifyXor(s, lits...) }

// ReifyAnd returns a fresh literal y with y <-> AND(lits).
func (s *Solver) ReifyAnd(lits ...Lit) Lit { return ReifyAnd(s, lits...) }

// ReifyOr returns a fresh literal y with y <-> OR(lits).
func (s *Solver) ReifyOr(lits ...Lit) Lit { return ReifyOr(s, lits...) }

// AtMostOne asserts that at most one of the literals is true.
func (s *Solver) AtMostOne(lits ...Lit) { AtMostOne(s, lits...) }

// ExactlyOne asserts that exactly one of the literals is true.
func (s *Solver) ExactlyOne(lits ...Lit) { ExactlyOne(s, lits...) }

// Implies asserts a -> b.
func (s *Solver) Implies(a, b Lit) { Implies(s, a, b) }

// BlockModel adds a clause forbidding the current assignment restricted to
// the given variables; used for model enumeration. Returns false when the
// solver became (or already was) unsatisfiable.
func (s *Solver) BlockModel(vars []int) bool { return BlockModel(s, vars) }

// EnumerateModels repeatedly solves and blocks solutions projected onto the
// given variables; see the package-level EnumerateModels.
func (s *Solver) EnumerateModels(vars []int, limit int, fn func(model []bool) bool) (int, error) {
	return EnumerateModels(s, vars, limit, fn)
}
