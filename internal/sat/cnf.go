package sat

// CNF-building helpers layered on the core solver. BEER's constraints are
// mostly GF(2)-flavored: XOR chains (parity of parity-check matrix entries)
// and reified conjunctions/disjunctions of those parities (the per-pattern
// miscorrection conditions). Everything here Tseitin-encodes into plain
// clauses.

// True returns a literal that is constant true (backed by a lazily-created,
// unit-asserted variable).
func (s *Solver) True() Lit {
	v := s.NewVar()
	l := PosLit(v)
	s.AddClause(l)
	return l
}

// False returns a literal that is constant false.
func (s *Solver) False() Lit { return s.True().Not() }

// ReifyXor2 returns a fresh literal y constrained so that y <-> (a XOR b).
func (s *Solver) ReifyXor2(a, b Lit) Lit {
	y := PosLit(s.NewVar())
	s.AddClause(y.Not(), a, b)
	s.AddClause(y.Not(), a.Not(), b.Not())
	s.AddClause(y, a.Not(), b)
	s.AddClause(y, a, b.Not())
	return y
}

// ReifyXor returns a literal equal to the XOR of all given literals.
// XOR of no literals is constant false.
func (s *Solver) ReifyXor(lits ...Lit) Lit {
	if len(lits) == 0 {
		return s.False()
	}
	acc := lits[0]
	for _, l := range lits[1:] {
		acc = s.ReifyXor2(acc, l)
	}
	return acc
}

// AddXor asserts XOR(lits) == rhs. An empty XOR equals false, so rhs=true
// over no literals makes the formula unsatisfiable.
func (s *Solver) AddXor(lits []Lit, rhs bool) {
	if len(lits) == 0 {
		if rhs {
			s.AddClause() // empty clause: UNSAT
		}
		return
	}
	acc := s.ReifyXor(lits...)
	if rhs {
		s.AddClause(acc)
	} else {
		s.AddClause(acc.Not())
	}
}

// ReifyAnd returns a fresh literal y with y <-> AND(lits). The AND of no
// literals is constant true.
func (s *Solver) ReifyAnd(lits ...Lit) Lit {
	if len(lits) == 0 {
		return s.True()
	}
	if len(lits) == 1 {
		return lits[0]
	}
	y := PosLit(s.NewVar())
	long := make([]Lit, 0, len(lits)+1)
	long = append(long, y)
	for _, l := range lits {
		s.AddClause(y.Not(), l)
		long = append(long, l.Not())
	}
	s.AddClause(long...)
	return y
}

// ReifyOr returns a fresh literal y with y <-> OR(lits). The OR of no
// literals is constant false.
func (s *Solver) ReifyOr(lits ...Lit) Lit {
	if len(lits) == 0 {
		return s.False()
	}
	if len(lits) == 1 {
		return lits[0]
	}
	neg := make([]Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Not()
	}
	return s.ReifyAnd(neg...).Not()
}

// AtMostOne asserts that at most one of the literals is true, using the
// pairwise encoding (fine for the small cardinalities this project needs).
func (s *Solver) AtMostOne(lits ...Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			s.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
}

// ExactlyOne asserts that exactly one of the literals is true.
func (s *Solver) ExactlyOne(lits ...Lit) {
	s.AddClause(lits...)
	s.AtMostOne(lits...)
}

// Implies asserts a -> b.
func (s *Solver) Implies(a, b Lit) { s.AddClause(a.Not(), b) }

// BlockModel adds a clause forbidding the current assignment restricted to
// the given variables; used for model enumeration. Returns false when the
// solver became (or already was) unsatisfiable.
func (s *Solver) BlockModel(vars []int) bool {
	lits := make([]Lit, len(vars))
	for i, v := range vars {
		lits[i] = MkLit(v, s.Value(v)) // negate the assigned polarity
	}
	return s.AddClause(lits...)
}

// EnumerateModels repeatedly solves and blocks solutions projected onto the
// given variables, invoking fn with each projected model until the formula
// is exhausted, fn returns false, or limit models have been produced
// (limit <= 0 means no limit). It returns the number of models found and a
// non-nil error only if the conflict budget was exhausted.
func (s *Solver) EnumerateModels(vars []int, limit int, fn func(model []bool) bool) (int, error) {
	count := 0
	for {
		if limit > 0 && count >= limit {
			return count, nil
		}
		sat, err := s.Solve()
		if err != nil {
			return count, err
		}
		if !sat {
			return count, nil
		}
		count++
		proj := make([]bool, len(vars))
		for i, v := range vars {
			proj[i] = s.Value(v)
		}
		if fn != nil && !fn(proj) {
			return count, nil
		}
		if !s.BlockModel(vars) {
			return count, nil
		}
	}
}
