package sat

// SolverMain: the in-process CDCL engine packaged as a conventional
// command-line DIMACS solver. cmd/beersat wraps it into a real binary —
// which means the External backend always has at least one solver it can
// shell out to, on any machine that can build this repo — and the test
// binaries re-exec themselves through it to exercise the external-process
// path without installing kissat/cadical.

import (
	"fmt"
	"io"
	"os"
	"time"
)

// SolverMain runs one DIMACS solve in the standard solver convention:
// reads the CNF file named by the last argument ("-" or no argument =
// stdin), solves it with the in-process engine, prints an "s" status line
// plus "v" model lines, and returns the conventional exit code — 10 for
// SATISFIABLE, 20 for UNSATISFIABLE, 0 for UNKNOWN, 1 for usage or input
// errors. A "c assumptions:" comment in the input (the Dimacs recorder's
// annotation) is honored via SolveUnderAssumptions.
//
// Flags (subset of the common solver surface):
//
//	-t <seconds>   wall-clock limit; hitting it prints "s UNKNOWN"
func SolverMain(args []string, stdout, stderr io.Writer) int {
	var timeout time.Duration
	path := ""
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; {
		case arg == "-t" && i+1 < len(args):
			i++
			secs := 0.0
			if _, err := fmt.Sscanf(args[i], "%g", &secs); err != nil || secs < 0 {
				fmt.Fprintf(stderr, "c bad -t value %q\n", args[i])
				return 1
			}
			timeout = time.Duration(secs * float64(time.Second))
		case arg == "" || arg[0] == '-' && arg != "-":
			fmt.Fprintf(stderr, "c unknown option %q\n", arg)
			return 1
		default:
			path = arg
		}
	}

	in := io.Reader(os.Stdin)
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "c %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	cnf, err := ParseDIMACS(in)
	if err != nil {
		fmt.Fprintf(stderr, "c %v\n", err)
		return 1
	}

	s := New()
	cnf.Feed(s)
	if timeout > 0 {
		s.SetTimeout(timeout)
	}
	sat, err := s.SolveUnderAssumptions(cnf.Assumptions...)
	switch {
	case err == ErrTimeout || err == ErrBudget || err == ErrInterrupted:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0
	case err != nil:
		fmt.Fprintf(stderr, "c %v\n", err)
		return 1
	case !sat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	}
	fmt.Fprintln(stdout, "s SATISFIABLE")
	writeModelLines(stdout, s.Model())
	return 10
}

// writeModelLines prints the model in "v" lines, 0-terminated, with the
// conventional handful of literals per line.
func writeModelLines(w io.Writer, model []bool) {
	const perLine = 16
	for i := 0; i < len(model); i += perLine {
		fmt.Fprint(w, "v")
		for j := i; j < len(model) && j < i+perLine; j++ {
			n := j + 1
			if !model[j] {
				n = -n
			}
			fmt.Fprintf(w, " %d", n)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "v 0")
}
