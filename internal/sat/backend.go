package sat

import (
	"io"
	"time"
)

// Backend is the pluggable solving surface behind BEER's constraint layer.
// It is the contract internal/core's incremental solve sessions are written
// against: variables and clauses accumulate monotonically, learned state
// survives across solve calls (that is the whole point of keeping one
// backend alive through the uniqueness blocking-clause loop and across
// pattern-increment re-solves), and SolveUnderAssumptions answers
// satisfiability under temporary assumptions without touching the clause
// database.
//
// *Solver (the in-process CDCL engine) is the default implementation;
// Dimacs wraps any Backend and additionally records the CNF for export to
// external solvers. Backends are single-goroutine, like Solver.
type Backend interface {
	// NewVar creates a fresh variable and returns its index.
	NewVar() int
	// NumVars returns the number of variables created so far.
	NumVars() int
	// NumClauses returns the number of problem (non-learnt) clauses.
	NumClauses() int
	// Add adds a clause. It returns false when the backend is already known
	// to be unsatisfiable (now or previously).
	Add(lits ...Lit) bool
	// Solve searches for a satisfying assignment: (true, nil) when one
	// exists, (false, nil) on UNSAT, (false, ErrBudget/ErrInterrupted)
	// when the search was cut short.
	Solve() (bool, error)
	// SolveUnderAssumptions is Solve under temporary assumed literals; a
	// (false, nil) answer means unsatisfiable under the assumptions, with
	// the clause database untouched and later calls unaffected.
	SolveUnderAssumptions(assumptions ...Lit) (bool, error)
	// FailedAssumptions returns the failed-assumption core of the most
	// recent (false, nil) answer under assumptions: a subset of that
	// call's assumptions already sufficient for unsatisfiability (failing
	// assumption first; sound, not necessarily minimal). Empty after any
	// other outcome.
	FailedAssumptions() []Lit
	// Value returns variable v's value in the most recent model.
	Value(v int) bool
	// Model returns a copy of the most recent satisfying assignment.
	Model() []bool
	// Learned reports how many learnt clauses are currently alive — the
	// state incremental callers preserve by reusing one backend.
	Learned() int64
	// Interrupt installs a hook polled during search; when it returns true
	// the in-progress solve unwinds and returns ErrInterrupted. Nil removes
	// the hook.
	Interrupt(fn func() bool)
	// SetMaxConflicts bounds effort per solve call in conflicts (0 =
	// unlimited; the solve returns ErrBudget when exceeded).
	SetMaxConflicts(n int64)
	// SetTimeout bounds each solve call in wall-clock time (0 =
	// unlimited; the solve returns ErrTimeout when exceeded and the
	// backend stays reusable — HARP-style discard semantics are the
	// caller's to apply).
	SetTimeout(d time.Duration)
	// Statistics returns cumulative solver counters.
	Statistics() Stats
}

// Compile-time checks: both backends satisfy the interface, and the
// in-process solver satisfies the CNF helpers' Builder surface.
var (
	_ Backend = (*Solver)(nil)
	_ Backend = (*Dimacs)(nil)
	_ Builder = (*Solver)(nil)
)

// Dimacs is a recording Backend: it mirrors every variable and clause into
// a DIMACS CNF buffer while delegating the actual solving to an inner
// backend (the in-process CDCL engine by default). WriteDIMACS exports the
// accumulated formula in the standard "p cnf" format every external SAT
// solver accepts, which makes any BEER constraint system — a profile's
// full §5.3 encoding included — portable to Z3, kissat, CaDiCaL and
// friends without touching the encoding layer.
type Dimacs struct {
	inner   Backend
	clauses [][]Lit
	// lastAssumptions records the most recent SolveUnderAssumptions call;
	// WriteDIMACS emits them as a comment (DIMACS has no assumption
	// syntax), so an exported incremental query stays reproducible.
	lastAssumptions []Lit
}

// NewDimacs returns a recording backend over inner; a nil inner selects a
// fresh in-process CDCL solver.
func NewDimacs(inner Backend) *Dimacs {
	if inner == nil {
		inner = New()
	}
	return &Dimacs{inner: inner}
}

// NewVar implements Backend.
func (d *Dimacs) NewVar() int { return d.inner.NewVar() }

// NumVars implements Backend.
func (d *Dimacs) NumVars() int { return d.inner.NumVars() }

// NumClauses returns the number of recorded clauses. Unlike the in-process
// solver — which drops tautologies and root-satisfied clauses on Add —
// the recording backend keeps every clause it was handed, so the export is
// faithful to what the encoder produced.
func (d *Dimacs) NumClauses() int { return len(d.clauses) }

// Add implements Backend: record, then delegate.
func (d *Dimacs) Add(lits ...Lit) bool {
	d.clauses = append(d.clauses, append([]Lit(nil), lits...))
	return d.inner.Add(lits...)
}

// Solve implements Backend.
func (d *Dimacs) Solve() (bool, error) {
	d.lastAssumptions = nil
	return d.inner.Solve()
}

// SolveUnderAssumptions implements Backend.
func (d *Dimacs) SolveUnderAssumptions(assumptions ...Lit) (bool, error) {
	d.lastAssumptions = append(d.lastAssumptions[:0], assumptions...)
	return d.inner.SolveUnderAssumptions(assumptions...)
}

// FailedAssumptions implements Backend.
func (d *Dimacs) FailedAssumptions() []Lit { return d.inner.FailedAssumptions() }

// Value implements Backend.
func (d *Dimacs) Value(v int) bool { return d.inner.Value(v) }

// Model implements Backend.
func (d *Dimacs) Model() []bool { return d.inner.Model() }

// Learned implements Backend.
func (d *Dimacs) Learned() int64 { return d.inner.Learned() }

// Interrupt implements Backend.
func (d *Dimacs) Interrupt(fn func() bool) { d.inner.Interrupt(fn) }

// SetMaxConflicts implements Backend.
func (d *Dimacs) SetMaxConflicts(n int64) { d.inner.SetMaxConflicts(n) }

// SetTimeout implements Backend.
func (d *Dimacs) SetTimeout(t time.Duration) { d.inner.SetTimeout(t) }

// Statistics implements Backend.
func (d *Dimacs) Statistics() Stats { return d.inner.Statistics() }

// dimacsLit renders a literal in DIMACS convention: 1-based variable
// numbers, negative for negated.
func dimacsLit(l Lit) int {
	v := l.Var() + 1
	if l.Sign() {
		return -v
	}
	return v
}

// Snapshot returns the recorded formula as a CNF value: the live variable
// count, a shallow view of the recorded clauses (valid until the next Add),
// and the most recent solve's assumptions. This is the export surface the
// external backend, the corpus generator and WriteDIMACS share.
func (d *Dimacs) Snapshot() *CNF {
	return &CNF{
		Vars:        d.NumVars(),
		Clauses:     d.clauses,
		Assumptions: d.lastAssumptions,
	}
}

// WriteDIMACS writes the recorded formula in DIMACS CNF format. When the
// last solve ran under assumptions, they are emitted as a "c assumptions:"
// comment so the exact incremental query can be reproduced externally (by
// appending them as unit clauses). The "p cnf" header is recounted from
// the live formula on every call — vars and clauses added after an earlier
// WriteDIMACS are reflected, never a cached count (the header additionally
// covers any clause literal beyond the inner backend's variable count, so
// the export always parses back to a formula at least as wide as its
// widest clause).
func (d *Dimacs) WriteDIMACS(w io.Writer) error {
	return d.Snapshot().Write(w)
}
