package sat

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteDIMACSHeaderRecount is the stale-header regression: exporting,
// growing the formula, and exporting again must yield a second file whose
// "p cnf" header matches its own clause set — the header is recounted at
// write time, never cached from the first export.
func TestWriteDIMACSHeaderRecount(t *testing.T) {
	d := NewDimacs(nil)
	x, y := d.NewVar(), d.NewVar()
	d.Add(PosLit(x), PosLit(y))

	var first bytes.Buffer
	if err := d.WriteDIMACS(&first); err != nil {
		t.Fatal(err)
	}
	got1, err := ParseDIMACS(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got1.Vars != 2 || len(got1.Clauses) != 1 {
		t.Fatalf("first export: %d vars / %d clauses, want 2/1", got1.Vars, len(got1.Clauses))
	}

	// Grow after the first export: new variable, two new clauses.
	z := d.NewVar()
	d.Add(NegLit(x), PosLit(z))
	d.Add(NegLit(z))

	var second bytes.Buffer
	if err := d.WriteDIMACS(&second); err != nil {
		t.Fatal(err)
	}
	got2, err := ParseDIMACS(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Vars != 3 || len(got2.Clauses) != 3 {
		t.Fatalf("second export: %d vars / %d clauses, want 3/3", got2.Vars, len(got2.Clauses))
	}
	if !strings.HasPrefix(second.String(), "p cnf 3 3\n") {
		t.Fatalf("second header stale:\n%s", second.String())
	}
	// The first export must be untouched by the later growth.
	if !strings.HasPrefix(first.String(), "p cnf 2 1\n") {
		t.Fatalf("first header rewritten:\n%s", first.String())
	}
}

// TestCNFHeaderCoversUndeclaredVars: a clause referencing a variable beyond
// the declared count grows the written header (solvers reject literals
// above the declared maximum).
func TestCNFHeaderCoversUndeclaredVars(t *testing.T) {
	cnf := &CNF{Vars: 1, Clauses: [][]Lit{{PosLit(0), PosLit(4)}}}
	var buf bytes.Buffer
	if err := cnf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "p cnf 5 1\n") {
		t.Fatalf("header must cover var 4:\n%s", buf.String())
	}
}

func TestParseDIMACSRoundTrip(t *testing.T) {
	orig := &CNF{
		Vars: 4,
		Clauses: [][]Lit{
			{PosLit(0), NegLit(1)},
			{PosLit(2), PosLit(3), NegLit(0)},
			{NegLit(3)},
		},
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Vars != orig.Vars || len(got.Clauses) != len(orig.Clauses) {
		t.Fatalf("round trip: %d vars / %d clauses, want %d/%d",
			got.Vars, len(got.Clauses), orig.Vars, len(orig.Clauses))
	}
	for i, cl := range orig.Clauses {
		if len(got.Clauses[i]) != len(cl) {
			t.Fatalf("clause %d length drifted", i)
		}
		for j, l := range cl {
			if got.Clauses[i][j] != l {
				t.Fatalf("clause %d literal %d: %v != %v", i, j, got.Clauses[i][j], l)
			}
		}
	}
}

// TestDimacsAssumptionsRoundTrip: the recorder's "c assumptions:" comment
// survives a write/parse cycle, keeping an exported incremental query
// reproducible.
func TestDimacsAssumptionsRoundTrip(t *testing.T) {
	d := NewDimacs(nil)
	x, y := d.NewVar(), d.NewVar()
	d.Add(PosLit(x), PosLit(y))
	if _, err := d.SolveUnderAssumptions(NegLit(x)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Assumptions) != 1 || got.Assumptions[0] != NegLit(x) {
		t.Fatalf("assumptions = %v, want [~x]", got.Assumptions)
	}
}

// TestParseDIMACSSatlibQuirks covers published-corpus formatting: comments
// before and after the header, clauses split across lines, and the SATLIB
// "%" end-of-file marker with trailing padding.
func TestParseDIMACSSatlibQuirks(t *testing.T) {
	const input = `c a SATLIB-style file
p cnf 3 2
c mid-file comment
1 -2
3 0
-1 2 -3 0
%
0

`
	got, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got.Vars != 3 || len(got.Clauses) != 2 {
		t.Fatalf("%d vars / %d clauses, want 3/2", got.Vars, len(got.Clauses))
	}
	if len(got.Clauses[0]) != 3 {
		t.Fatalf("multi-line clause not joined: %v", got.Clauses[0])
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for name, input := range map[string]string{
		"no header":          "1 2 0\n",
		"duplicate header":   "p cnf 1 1\np cnf 1 1\n1 0\n",
		"malformed header":   "p dnf 1 1\n1 0\n",
		"bad literal":        "p cnf 1 1\nx 0\n",
		"unterminated":       "p cnf 2 1\n1 2\n",
		"bad assumption lit": "p cnf 1 1\nc assumptions: zero\n1 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parse accepted %q", name, input)
		}
	}
}

func TestCNFSatisfied(t *testing.T) {
	cnf := &CNF{Vars: 2, Clauses: [][]Lit{{PosLit(0), PosLit(1)}, {NegLit(0)}}}
	if ok, _ := cnf.Satisfied([]bool{false, true}); !ok {
		t.Fatal("satisfying assignment rejected")
	}
	ok, violated := cnf.Satisfied([]bool{true, true})
	if ok || len(violated) != 1 || violated[0] != NegLit(0) {
		t.Fatalf("want violation of [~x0], got ok=%v violated=%v", ok, violated)
	}
	// Variables beyond the assignment default to false.
	if ok, _ := cnf.Satisfied(nil); ok {
		t.Fatal("clause (x0|x1) cannot hold all-false")
	}
}

// FuzzDimacsRoundTrip drives random formulas through the full text cycle:
// build → WriteDIMACS → ParseDIMACS → solve both representations with the
// in-process engine — the answers must agree, and a SAT model of the
// parsed copy must satisfy the original clauses.
func FuzzDimacsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 1, 2, 3, 0xFF, 4, 5})
	f.Add([]byte{0x00, 0, 1})
	f.Add([]byte{0x09, 0, 0xFF, 1, 0xFF, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{0x02, 0xFF, 0xFF, 1, 0, 3, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		nvars, clauses := fuzzFormula(data)

		rec := NewDimacs(New())
		for i := 0; i < nvars; i++ {
			rec.NewVar()
		}
		ok := true
		for _, cl := range clauses {
			if !rec.Add(cl...) {
				ok = false
				break
			}
		}
		var buf bytes.Buffer
		if err := rec.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse of own export failed: %v\n%s", err, buf.String())
		}
		if parsed.Vars != nvars || len(parsed.Clauses) != rec.NumClauses() {
			t.Fatalf("round trip drifted: %d vars / %d clauses, want %d/%d",
				parsed.Vars, len(parsed.Clauses), nvars, rec.NumClauses())
		}

		direct, err := rec.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !ok && direct {
			t.Fatal("Add saw root conflict but Solve says SAT")
		}

		replay := New()
		parsed.Feed(replay)
		viaText, err := replay.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if direct != viaText {
			t.Fatalf("direct sat=%v, parsed-copy sat=%v\n%s", direct, viaText, buf.String())
		}
		if viaText {
			if satOK, cl := parsed.Satisfied(replay.Model()); !satOK {
				t.Fatalf("parsed-copy model violates clause %v", cl)
			}
		}
	})
}
