package sat

// Portfolio backend: N competitors race every solve call, the first
// definitive answer wins, and the losers are cancelled — in-process CDCL
// engines through their Interrupt hook, external solvers through a process
// kill. Clause additions mirror into every competitor, so each stays a
// complete, incrementally-warm copy of the formula; in particular the
// in-process competitors keep their learned clauses across the uniqueness
// blocking-clause loop exactly as a lone CDCL backend would, while a slow
// phase of any single engine can no longer stall the whole recovery.
//
// Diversification follows the classic portfolio recipe (ManySAT,
// Plingeling): competitor 0 is the vanilla deterministic engine, and every
// further CDCL competitor re-seeds its branching each race — saved-phase
// polarities and a SetDecisionOrder prefix drawn from a per-competitor,
// per-race PCG stream — so the racers explore genuinely different search
// trees rather than finishing in lockstep.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Competitor is one member of a Portfolio: a live backend plus its display
// name and an optional per-race diversification hook.
type Competitor struct {
	// Name labels the competitor in CompetitorStat reports.
	Name string
	// Backend is the competitor's live engine. It must be freshly
	// constructed (no variables or clauses): the portfolio mirrors every
	// NewVar and Add into it from then on.
	Backend Backend
	// diversify, when set, re-seeds the competitor before each race.
	diversify func(race int64)
}

// CDCLCompetitor returns an in-process CDCL competitor. Seed 0 is the
// vanilla engine (bit-identical to a lone *Solver — the deterministic
// anchor every portfolio should include); any other seed perturbs the
// engine's branching per race: saved-phase polarities are randomized and a
// random subset of variables is promoted to an explicit decision-order
// prefix, both from a PCG stream keyed on (seed, race).
func CDCLCompetitor(seed uint64) Competitor {
	s := New()
	c := Competitor{Name: fmt.Sprintf("cdcl-s%d", seed), Backend: s}
	if seed == 0 {
		c.Name = "cdcl"
		return c
	}
	c.diversify = func(race int64) {
		rng := rand.New(rand.NewPCG(seed, uint64(race)))
		n := s.NumVars()
		if n == 0 {
			return
		}
		for v := 0; v < n; v++ {
			s.SetPolarity(v, rng.Uint64()&1 == 1)
		}
		// Promote a small random prefix; VSIDS keeps driving the rest, so
		// this diversifies the opening of the search without degenerating
		// into a fixed-order solver.
		prefix := min(n, 24)
		vars := make([]int, prefix)
		for i := range vars {
			vars[i] = rng.IntN(n)
		}
		s.SetDecisionOrder(vars)
	}
	return c
}

// ExternalCompetitor resolves an external solver into a competitor. A
// missing binary returns an error wrapping ErrSolverNotFound, which
// portfolio assemblers treat as "leave this competitor out".
func ExternalCompetitor(cfg ExternalConfig) (Competitor, error) {
	ext, err := NewExternal(cfg)
	if err != nil {
		return Competitor{}, err
	}
	return Competitor{Name: ext.Name(), Backend: ext}, nil
}

// Portfolio is a racing Backend over a set of competitors. Construction
// with NewPortfolio; the zero value is not usable.
//
// Like every Backend it is single-goroutine from the caller's point of
// view; internally each solve call fans one goroutine per competitor and
// joins all of them before returning, so between calls every competitor is
// quiescent and exclusively owned again. The Interrupt hook installed via
// Interrupt must be safe for concurrent use — it is polled from every
// competitor goroutine at once (internal/core's context hook is).
type Portfolio struct {
	comps []Competitor

	numVars    int
	numClauses int
	rootUnsat  bool

	model    []bool
	hasModel bool
	failed   []Lit

	interrupt func() bool

	stats Stats // Races + per-competitor records; engine counters aggregated on read
}

// Compile-time check.
var _ Backend = (*Portfolio)(nil)

// NewPortfolio builds a racing backend over the given competitors. With no
// arguments it defaults to three in-process CDCL engines: the vanilla
// deterministic one plus two re-seeded racers. Every competitor backend
// must be freshly constructed.
func NewPortfolio(comps ...Competitor) (*Portfolio, error) {
	if len(comps) == 0 {
		comps = []Competitor{CDCLCompetitor(0), CDCLCompetitor(1), CDCLCompetitor(2)}
	}
	p := &Portfolio{comps: comps}
	for i, c := range comps {
		if c.Backend == nil {
			return nil, fmt.Errorf("sat: portfolio competitor %d (%s) has no backend", i, c.Name)
		}
		if c.Backend.NumVars() != 0 || c.Backend.NumClauses() != 0 {
			return nil, fmt.Errorf("sat: portfolio competitor %d (%s) is not freshly constructed", i, c.Name)
		}
		p.stats.Competitors = append(p.stats.Competitors, CompetitorStat{Name: c.Name})
	}
	return p, nil
}

// DefaultPortfolio assembles the standard race: nCDCL in-process engines
// (vanilla + reseeded; minimum 1) plus one external competitor per config
// whose binary resolves. Missing binaries are skipped silently — that is
// the degradation contract that keeps solver-less CI green — but an
// explicitly empty portfolio cannot happen: the in-process engines are
// always there.
func DefaultPortfolio(nCDCL int, externals ...ExternalConfig) (*Portfolio, error) {
	if nCDCL < 1 {
		nCDCL = 1
	}
	var comps []Competitor
	for i := 0; i < nCDCL; i++ {
		comps = append(comps, CDCLCompetitor(uint64(i)))
	}
	for _, cfg := range externals {
		c, err := ExternalCompetitor(cfg)
		if err != nil {
			continue // ErrSolverNotFound and friends: run without it
		}
		comps = append(comps, c)
	}
	return NewPortfolio(comps...)
}

// CompetitorNames lists the racers in construction order.
func (p *Portfolio) CompetitorNames() []string {
	names := make([]string, len(p.comps))
	for i, c := range p.comps {
		names[i] = c.Name
	}
	return names
}

// NewVar implements Backend: mirrored into every competitor.
func (p *Portfolio) NewVar() int {
	for _, c := range p.comps {
		if v := c.Backend.NewVar(); v != p.numVars {
			panic(fmt.Sprintf("sat: portfolio competitor %s desynced: var %d != %d", c.Name, v, p.numVars))
		}
	}
	p.numVars++
	return p.numVars - 1
}

// NumVars implements Backend.
func (p *Portfolio) NumVars() int { return p.numVars }

// NumClauses implements Backend: the number of clauses handed to Add (the
// competitors may each keep fewer after their own root simplifications).
func (p *Portfolio) NumClauses() int { return p.numClauses }

// Add implements Backend: mirrored into every competitor. False once any
// competitor establishes root-level unsatisfiability (they share one
// formula, so one engine's proof settles it for all).
func (p *Portfolio) Add(lits ...Lit) bool {
	p.numClauses++
	for _, c := range p.comps {
		if !c.Backend.Add(lits...) {
			p.rootUnsat = true
		}
	}
	return !p.rootUnsat
}

// Solve implements Backend: one race over the current formula.
func (p *Portfolio) Solve() (bool, error) { return p.SolveUnderAssumptions() }

// raceOutcome is one competitor's finish.
type raceOutcome struct {
	idx    int
	sat    bool
	err    error
	model  []bool
	failed []Lit
}

// SolveUnderAssumptions implements Backend: every competitor races the
// same query, the first definitive (error-free) answer wins, the rest are
// cancelled and joined before the call returns. Late definitive finishes
// are still checked against the winner — a SAT/UNSAT disagreement between
// competitors is reported as an error, never silently resolved.
func (p *Portfolio) SolveUnderAssumptions(assumptions ...Lit) (bool, error) {
	p.failed = p.failed[:0]
	p.hasModel = false
	if p.rootUnsat {
		return false, nil
	}
	p.stats.Races++
	race := p.stats.Races

	// stop flips when a winner is in (or the caller's hook fired); every
	// in-process competitor polls it through its Interrupt hook and every
	// external competitor through its process-watch loop.
	var stop atomic.Bool
	raceHook := func() bool {
		return stop.Load() || (p.interrupt != nil && p.interrupt())
	}

	outcomes := make(chan raceOutcome, len(p.comps))
	var wg sync.WaitGroup
	for i, c := range p.comps {
		if c.diversify != nil {
			c.diversify(race)
		}
		c.Backend.Interrupt(raceHook)
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			sat, err := b.SolveUnderAssumptions(assumptions...)
			o := raceOutcome{idx: i, sat: sat, err: err}
			if err == nil {
				if sat {
					o.model = b.Model()
				} else {
					o.failed = append([]Lit(nil), b.FailedAssumptions()...)
				}
			}
			outcomes <- o
		}(i, c.Backend)
	}

	var winner *raceOutcome
	var disagreement error
	var worstErr error
	errPriority := func(err error) int {
		switch err {
		case ErrTimeout:
			return 1
		case ErrBudget:
			return 2
		case ErrInterrupted:
			return 3 // caller cancellation dominates the abort sentinels
		}
		return 4 // real faults surface over everything
	}
	for range p.comps {
		o := <-outcomes
		st := &p.stats.Competitors[o.idx]
		switch {
		case o.err == nil && winner == nil:
			winner = &o
			st.Wins++
			stop.Store(true)
		case o.err == nil:
			st.Losses++
			if o.sat != winner.sat {
				// Two definitive, opposite answers on the same query is a
				// correctness event — refuse to pick sides.
				disagreement = fmt.Errorf("sat: portfolio disagreement: %s says sat=%v, %s says sat=%v",
					p.comps[winner.idx].Name, winner.sat, p.comps[o.idx].Name, o.sat)
			}
		case o.err == ErrTimeout:
			st.Timeouts++
		case o.err == ErrInterrupted && stop.Load():
			st.Losses++ // cancelled because the race was decided
		default:
			// A genuinely faulty competitor (crash, garbage output) is
			// tallied here; with a healthy winner the race still succeeds —
			// resilience to one bad solver is the point of a portfolio.
			st.Errors++
		}
		if o.err != nil && (worstErr == nil || errPriority(o.err) > errPriority(worstErr)) {
			worstErr = o.err
		}
	}
	wg.Wait() // every competitor quiescent again — single-goroutine invariant restored

	if disagreement != nil {
		return false, disagreement
	}
	if winner == nil {
		if worstErr == nil {
			worstErr = ErrInterrupted // unreachable; defensive
		}
		return false, worstErr
	}
	if winner.sat {
		p.model = winner.model
		p.hasModel = true
		return true, nil
	}
	if len(assumptions) == 0 {
		p.rootUnsat = true
	}
	p.failed = append(p.failed, winner.failed...)
	return false, nil
}

// FailedAssumptions implements Backend: the winner's core (the full
// assumption set when an external solver won).
func (p *Portfolio) FailedAssumptions() []Lit { return p.failed }

// Value implements Backend.
func (p *Portfolio) Value(v int) bool {
	if !p.hasModel {
		panic("sat: Value called without a model")
	}
	return p.model[v]
}

// Model implements Backend.
func (p *Portfolio) Model() []bool {
	m := make([]bool, len(p.model))
	copy(m, p.model)
	return m
}

// Learned implements Backend: total learnt clauses alive across the
// in-process competitors (each keeps its own database warm between races).
func (p *Portfolio) Learned() int64 {
	var n int64
	for _, c := range p.comps {
		n += c.Backend.Learned()
	}
	return n
}

// Interrupt implements Backend. The hook MUST be safe for concurrent use:
// during a race every competitor polls it from its own goroutine.
func (p *Portfolio) Interrupt(fn func() bool) { p.interrupt = fn }

// SetMaxConflicts implements Backend: forwarded to every competitor (the
// in-process engines honor it; external ones bound effort by deadline).
func (p *Portfolio) SetMaxConflicts(n int64) {
	for _, c := range p.comps {
		c.Backend.SetMaxConflicts(n)
	}
}

// SetTimeout implements Backend: every competitor gets the same per-race
// deadline; a race where all competitors time out returns ErrTimeout with
// the formula reusable.
func (p *Portfolio) SetTimeout(d time.Duration) {
	for _, c := range p.comps {
		c.Backend.SetTimeout(d)
	}
}

// Statistics implements Backend: the in-process engine counters summed
// over all competitors (total work spent, monotonic), the external
// run/timeout tallies, the race count, and a deep copy of the
// per-competitor records.
func (p *Portfolio) Statistics() Stats {
	out := Stats{Races: p.stats.Races}
	for _, c := range p.comps {
		cs := c.Backend.Statistics()
		out.Conflicts += cs.Conflicts
		out.Decisions += cs.Decisions
		out.Propagations += cs.Propagations
		out.Learnt += cs.Learnt
		out.Restarts += cs.Restarts
		out.ExternalRuns += cs.ExternalRuns
		out.ExternalTimeouts += cs.ExternalTimeouts
	}
	out.Competitors = append([]CompetitorStat(nil), p.stats.Competitors...)
	return out
}
