package sat

import (
	"strings"
	"testing"
)

func TestSolveUnderAssumptionsBasic(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	s.Add(PosLit(x), PosLit(y))

	ok, err := s.SolveUnderAssumptions(NegLit(x))
	if err != nil || !ok {
		t.Fatalf("SolveUnderAssumptions(~x) = (%v, %v), want SAT", ok, err)
	}
	if s.Value(x) || !s.Value(y) {
		t.Fatalf("model (x=%v, y=%v) violates assumption or clause", s.Value(x), s.Value(y))
	}

	// UNSAT under assumptions must not poison the solver.
	ok, err = s.SolveUnderAssumptions(NegLit(x), NegLit(y))
	if err != nil || ok {
		t.Fatalf("SolveUnderAssumptions(~x, ~y) = (%v, %v), want (false, nil)", ok, err)
	}
	ok, err = s.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve after failed assumptions = (%v, %v), want SAT", ok, err)
	}
}

func TestSolveUnderAssumptionsContradictory(t *testing.T) {
	s := New()
	x := s.NewVar()
	ok, err := s.SolveUnderAssumptions(PosLit(x), NegLit(x))
	if err != nil || ok {
		t.Fatalf("contradictory assumptions = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("empty formula after contradictory assumptions = (%v, %v), want SAT", ok, err)
	}
}

// TestSolveUnderAssumptionsGuards exercises the standard incremental
// pattern: clauses guarded by an activation literal are active only while
// the guard is assumed, and learned state survives across queries.
func TestSolveUnderAssumptionsGuards(t *testing.T) {
	s := New()
	g := PosLit(s.NewVar())
	// Under guard g the formula embeds PHP(5,4) — UNSAT when activated.
	pigeons, holes := 5, 4
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := []Lit{g.Not()}
		for h := 0; h < holes; h++ {
			lits = append(lits, PosLit(vars[p][h]))
		}
		s.Add(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Add(g.Not(), NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}

	if ok, err := s.SolveUnderAssumptions(g); err != nil || ok {
		t.Fatalf("guarded PHP(5,4) under g = (%v, %v), want (false, nil)", ok, err)
	}
	if s.Learned() == 0 && s.Stats.Conflicts == 0 {
		t.Fatal("refuting guarded PHP produced no conflicts at all")
	}
	// Without the assumption the guard is free: SAT (solver sets g false).
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("guarded PHP without assumption = (%v, %v), want SAT", ok, err)
	}
	if s.Value(g.Var()) {
		t.Fatal("model satisfies guarded UNSAT core with the guard asserted")
	}
	// Permanently disabling the guard keeps everything satisfiable.
	s.Add(g.Not())
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("after disabling guard = (%v, %v), want SAT", ok, err)
	}
}

// TestSolveUnderAssumptionsMatchesUnitClauses cross-checks assumption
// solving against the ground truth of adding the assumptions as unit
// clauses to a fresh solver, over a deterministic batch of small formulas.
func TestSolveUnderAssumptionsMatchesUnitClauses(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 200; trial++ {
		nvars := 3 + next(6)
		var clauses [][]Lit
		for c := 0; c < 2+next(12); c++ {
			var cl []Lit
			for l := 0; l < 1+next(3); l++ {
				cl = append(cl, MkLit(next(nvars), next(2) == 1))
			}
			clauses = append(clauses, cl)
		}
		var assumps []Lit
		for a := 0; a < 1+next(2); a++ {
			assumps = append(assumps, MkLit(next(nvars), next(2) == 1))
		}

		inc := New()
		for i := 0; i < nvars; i++ {
			inc.NewVar()
		}
		for _, cl := range clauses {
			inc.Add(cl...)
		}
		gotInc, err := inc.SolveUnderAssumptions(assumps...)
		if err != nil {
			t.Fatal(err)
		}

		ref := New()
		for i := 0; i < nvars; i++ {
			ref.NewVar()
		}
		for _, cl := range clauses {
			ref.Add(cl...)
		}
		for _, a := range assumps {
			ref.Add(a)
		}
		gotRef, err := ref.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if gotInc != gotRef {
			t.Fatalf("trial %d: assumptions=%v incremental=%v, unit-clause reference=%v\nclauses: %v",
				trial, assumps, gotInc, gotRef, clauses)
		}
		// The incremental query must not have changed the formula.
		plain, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		refPlain := New()
		for i := 0; i < nvars; i++ {
			refPlain.NewVar()
		}
		for _, cl := range clauses {
			refPlain.Add(cl...)
		}
		wantPlain, err := refPlain.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if plain != wantPlain {
			t.Fatalf("trial %d: formula satisfiability changed after assumption query (%v vs %v)",
				trial, plain, wantPlain)
		}
	}
}

func TestDimacsBackendDelegates(t *testing.T) {
	d := NewDimacs(nil)
	x, y := d.NewVar(), d.NewVar()
	xor := ReifyXor2(d, PosLit(x), PosLit(y))
	d.Add(xor) // force x XOR y
	ok, err := d.Solve()
	if err != nil || !ok {
		t.Fatalf("Solve = (%v, %v), want SAT", ok, err)
	}
	if d.Value(x) == d.Value(y) {
		t.Fatalf("model (x=%v, y=%v) violates x XOR y", d.Value(x), d.Value(y))
	}
	if ok, err := d.SolveUnderAssumptions(PosLit(x), PosLit(y)); err != nil || ok {
		t.Fatalf("x=y=true under XOR = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestDimacsExport(t *testing.T) {
	d := NewDimacs(nil)
	x, y := d.NewVar(), d.NewVar()
	d.Add(PosLit(x), NegLit(y))
	d.Add(NegLit(x))
	if _, err := d.SolveUnderAssumptions(NegLit(y)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "p cnf 2 2\nc assumptions: -2\n1 -2 0\n-1 0\n"
	if got != want {
		t.Fatalf("WriteDIMACS:\n%s\nwant:\n%s", got, want)
	}
}
