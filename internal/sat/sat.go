// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver in pure Go, plus CNF-building helpers for the XOR and
// reified AND/OR constraints that BEER's parity-check inference needs.
//
// The paper uses the Z3 SMT solver (§3.4, §5.3); no native Go SAT solver was
// available under the stdlib-only constraint, so this package provides the
// equivalent capability: two-watched-literal propagation, first-UIP clause
// learning, VSIDS branching with phase saving, Luby restarts, and learnt
// clause database reduction. Solvers are reusable: clauses may be added
// between Solve calls, which is how model enumeration (BEER's uniqueness
// check) adds blocking clauses.
//
// Entry points: New + AddClause + Solve; SolveUnderAssumptions solves under
// a temporary set of assumed literals without touching the clause database
// (the incremental-solving primitive); ReifyXor/ReifyAnd/ReifyOr build the
// Tseitin gadgets the §5.3 encoding needs; BlockModel excludes the current
// model for enumeration. The Interrupt hook is polled at every conflict,
// every restart and every 64th decision — internal/core wires context
// cancellation into it — and MaxConflicts bounds effort per call. Solvers
// are single-goroutine: one Solver must never be shared across concurrent
// solves.
//
// The Backend interface (backend.go) abstracts the solving surface so
// higher layers can swap engines: *Solver is the default in-process CDCL
// backend, and Dimacs is a recording backend that exports the accumulated
// CNF in DIMACS format for external solvers.
package sat

import (
	"fmt"
	"slices"
	"sort"
	"time"
)

// Lit is a literal: variable index shifted left once, with the low bit set
// for negation. The zero Lit is variable 0, positive.
type Lit int32

// litUndef is a sentinel literal distinct from every real literal.
const litUndef Lit = -1

// MkLit constructs a literal for variable v (>= 0), negated when neg is set.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return MkLit(v, true) }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "x3" or "~x3".
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits   []Lit
	act    float64
	learnt bool
}

// xorClause is a native parity constraint: the XOR of its variables must equal
// rhs. Encoding parity through Tseitin XOR2 chains makes unit propagation walk
// every internal gate of the tree (~|vars| enqueues per re-propagation); the
// native form propagates lazily with two watched variables and forces at most
// one literal, which is what makes wide parity rows (ECC parity-check and
// syndrome equations) cheap on re-solve-heavy incremental workloads.
//
// scratch is a reusable reason/conflict clause, rewritten in place each time
// the constraint forces a literal or detects a violation. Reuse is sound
// because a forcing XOR has every variable assigned afterwards: it cannot
// force again until backtracking unassigns the previously forced literal
// (whose decision level is the maximum over the constraint), so no stale
// reason is ever reachable from the trail.
type xorClause struct {
	vars    []int
	rhs     bool
	w       [2]int // indices into vars of the two watched variables
	scan    int    // rotating start for the replacement-watch scan
	scratch clause
}

// Stats aggregates solver counters across all Solve calls.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64
	Restarts     int64

	// ExternalRuns and ExternalTimeouts count external-process solver
	// invocations and how many of them were killed at the wall-clock
	// deadline (every timed-out run's answer is discarded, HARP-style).
	// Zero on the in-process engine.
	ExternalRuns     int64
	ExternalTimeouts int64

	// Races counts portfolio solve races (one per Solve /
	// SolveUnderAssumptions call on a Portfolio backend); Competitors
	// grades each racer's outcomes. Empty off the portfolio backend. The
	// slice is a fresh copy on every Statistics() call — safe to retain.
	Races       int64
	Competitors []CompetitorStat
}

// CompetitorStat is one portfolio competitor's cumulative race record.
// Wins counts races this competitor answered first; Losses races where it
// was cancelled or beaten; Timeouts races it lost to its own wall-clock
// deadline; Errors races it exited with any other error.
type CompetitorStat struct {
	Name     string
	Wins     int64
	Losses   int64
	Timeouts int64
	Errors   int64
}

// Solver is a reusable CDCL SAT solver. The zero value is not usable; call
// New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause
	watches [][]watcher // indexed by literal

	xors   []*xorClause   // native parity constraints
	xwatch [][]*xorClause // indexed by variable (parity ignores polarity)

	assigns  []lbool
	level    []int32
	reason   []*clause
	polarity []bool // saved phase per variable
	activity []float64
	seen     []bool

	trail    []Lit
	trailLim []int
	qhead    int

	order  varHeap
	varInc float64
	claInc float64

	ok    bool // false once UNSAT is established at level 0
	model []bool

	litStamp []uint32 // AddClause dedupe stamps, indexed by literal
	stampGen uint32

	addBuf   []Lit        // AddClause normalization scratch
	xorSeen  map[int]bool // addXorVars dedupe scratch, reused across calls
	claBlock []clause     // arena block for problem clause headers
	litBlock []Lit        // arena block for problem clause literals

	decideFirst []int // explicit branching priority (SetDecisionOrder)
	dfCursor    int   // first possibly-unassigned index in decideFirst

	// MaxConflicts, when positive, bounds the total conflicts per Solve call;
	// exceeding it makes Solve return ErrBudget. Zero means unlimited.
	MaxConflicts int64

	// interrupt, when set (via Interrupt), is polled during search: at every
	// conflict, every restart, and every 64th decision. The decision-path
	// poll bounds cancellation latency even on formulas the solver satisfies
	// without ever conflicting.
	interrupt func() bool

	// timeout, when positive, bounds each Solve call in wall-clock time
	// (SetTimeout); deadline is derived from it at the start of every call
	// and checked wherever the interrupt hook is polled.
	timeout  time.Duration
	deadline time.Time

	// failed holds the failed-assumption core of the most recent
	// UNSAT-under-assumptions answer (FailedAssumptions).
	failed []Lit

	Stats Stats
}

// Interrupt installs fn as the solver's interrupt hook, polled during search
// (at every conflict, every restart, and every 64th decision — so a solve
// that never conflicts still observes cancellation within a bounded number
// of decisions). When fn returns true the in-progress solve unwinds to
// decision level 0 and returns ErrInterrupted; the solver stays reusable:
// the caller may add clauses and solve again. This is how context
// cancellation reaches a running solve without the solver depending on the
// context package. A nil fn removes the hook.
func (s *Solver) Interrupt(fn func() bool) { s.interrupt = fn }

// SetMaxConflicts bounds SAT effort per solve call in conflicts (0 =
// unlimited); exceeding the budget makes the solve return ErrBudget.
func (s *Solver) SetMaxConflicts(n int64) { s.MaxConflicts = n }

// SetTimeout bounds each Solve call in wall-clock time (0 = unlimited).
// A solve that outlives the budget unwinds to decision level 0 and returns
// ErrTimeout; the solver stays reusable, so callers are free to apply
// HARP-style discard semantics — drop the stuck sample and move to the
// next one on the same solver. The deadline is polled alongside the
// Interrupt hook (every conflict, every restart, every 64th decision), so
// the overshoot is bounded the same way cancellation latency is.
func (s *Solver) SetTimeout(d time.Duration) { s.timeout = d }

// FailedAssumptions returns the failed-assumption core of the most recent
// solve call that answered (false, nil) under assumptions: a subset of
// that call's assumption literals that is already sufficient for
// unsatisfiability, with the directly failing assumption first. It is the
// MiniSat analyzeFinal conflict set, so it is sound (the formula really is
// UNSAT under just these assumptions) but not guaranteed minimal. The
// slice is valid until the next solve call; it is empty after a SAT
// answer, after an UNSAT answer that involved no assumptions, and after
// budget/interrupt/timeout errors.
func (s *Solver) FailedAssumptions() []Lit { return s.failed }

// stopRequested polls the caller-facing abort mechanisms — the Interrupt
// hook and the SetTimeout deadline — and returns the error the in-progress
// solve should unwind with, or nil.
func (s *Solver) stopRequested() error {
	if s.interrupt != nil && s.interrupt() {
		return ErrInterrupted
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return ErrTimeout
	}
	return nil
}

// Statistics returns the solver's cumulative counters.
func (s *Solver) Statistics() Stats { return s.Stats }

// Learned returns the number of learnt clauses currently alive in the
// clause database — the state an incremental caller preserves by reusing
// one solver across re-solves.
func (s *Solver) Learned() int64 { return int64(len(s.learnts)) }

// Add is AddClause under the Backend interface's name.
func (s *Solver) Add(lits ...Lit) bool { return s.AddClause(lits...) }

// ErrBudget is returned by Solve when MaxConflicts is exhausted before a
// definitive answer is found.
var ErrBudget = fmt.Errorf("sat: conflict budget exhausted")

// ErrInterrupted is returned by Solve when the Interrupt hook fired before a
// definitive answer was found.
var ErrInterrupted = fmt.Errorf("sat: solve interrupted")

// ErrTimeout is returned by Solve when the SetTimeout wall-clock budget
// expired before a definitive answer was found.
var ErrTimeout = fmt.Errorf("sat: solve timed out")

// New returns an empty solver with no variables.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1}
	s.order.activity = &s.activity
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// SetPolarity sets the value a variable prefers when the solver branches on
// it (before conflict-driven phase saving takes over). Callers use it to
// bias which of many satisfying assignments the search finds first — e.g.
// BEEP biases data bits toward CHARGED so crafted patterns exercise many
// cells.
func (s *Solver) SetPolarity(v int, value bool) { s.polarity[v] = !value }

// BoostActivity raises a variable's branching priority so the solver decides
// it (with its preferred polarity) before un-boosted variables. Combined
// with SetPolarity this steers model selection: BEEP boosts the dataword
// bits so crafted patterns follow the requested random phases instead of
// being dictated by Tseitin gate variables.
func (s *Solver) BoostActivity(v int, amount float64) {
	s.activity[v] += amount
	s.order.update(v)
}

// ActivityScale returns the solver's current activity increment — the bump a
// conflict gives each involved variable. It inflates geometrically as
// conflicts accumulate, so callers that want a boost to keep outranking
// conflict-driven activity express the boost as a multiple of this scale.
func (s *Solver) ActivityScale() float64 { return s.varInc }

// SetDecisionOrder installs an explicit branching priority: when the solver
// needs a decision it tries these variables first, in the given order,
// before falling back to activity-ordered branching. Unlike BoostActivity
// this is permanent (conflict-driven activity never overtakes it) and free of
// heap maintenance — re-solve-heavy incremental callers re-decide the same
// variable block every call, and a cursor over a fixed slice replaces two
// O(log n) heap sifts per variable per solve. The slice is retained, not
// copied; nil restores pure activity ordering.
func (s *Solver) SetDecisionOrder(vars []int) {
	s.decideFirst = vars
	s.dfCursor = 0
}

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Reserve pre-sizes the solver's per-variable storage for a formula that will
// grow to about nVars variables. Purely a capacity hint: callers that rebuild
// a formula per problem (BEEP constructs two crafter solvers per profiled
// word) otherwise pay for every slice in NewVar growing by amortized doubling,
// which dominates construction allocation.
func (s *Solver) Reserve(nVars int) {
	if extra := nVars - s.NumVars(); extra > 0 {
		s.assigns = slices.Grow(s.assigns, extra)
		s.level = slices.Grow(s.level, extra)
		s.reason = slices.Grow(s.reason, extra)
		s.polarity = slices.Grow(s.polarity, extra)
		s.activity = slices.Grow(s.activity, extra)
		s.seen = slices.Grow(s.seen, extra)
		s.watches = slices.Grow(s.watches, 2*extra)
		s.xwatch = slices.Grow(s.xwatch, extra)
		s.trail = slices.Grow(s.trail, extra)
		s.order.heap = slices.Grow(s.order.heap, extra)
		s.order.pos = slices.Grow(s.order.pos, extra)
	}
	if want := 4 * nVars; len(s.litStamp) < want {
		s.litStamp = make([]uint32, want)
		s.stampGen = 0
	}
}

// arenaLits copies normalized clause literals into the solver's literal arena
// and returns a full-capacity-clipped view. Problem clauses are never freed
// individually (only learnt clauses are, and those stay heap-allocated), so
// block allocation is safe and removes a per-clause allocation.
func (s *Solver) arenaLits(src []Lit) []Lit {
	if cap(s.litBlock)-len(s.litBlock) < len(src) {
		n := 1 << 12
		if len(src) > n {
			n = len(src)
		}
		s.litBlock = make([]Lit, 0, n)
	}
	start := len(s.litBlock)
	s.litBlock = append(s.litBlock, src...)
	return s.litBlock[start:len(s.litBlock):len(s.litBlock)]
}

// newProblemClause allocates a clause header from the header arena. Headers
// are handed out as pointers into the current block; a block is abandoned (not
// reallocated) when full, so outstanding pointers stay valid.
func (s *Solver) newProblemClause(lits []Lit) *clause {
	if len(s.claBlock) == cap(s.claBlock) {
		s.claBlock = make([]clause, 0, 256)
	}
	s.claBlock = append(s.claBlock, clause{lits: lits})
	return &s.claBlock[len(s.claBlock)-1]
}

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // default phase: false (negated)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.xwatch = append(s.xwatch, nil)
	s.order.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) lbool {
	val := s.assigns[l.Var()]
	if l.Sign() {
		return -val
	}
	return val
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false when the
// solver is already known to be unsatisfiable (now or previously). Adding a
// clause cancels any in-progress search back to decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort-free dedupe, drop root-false literals, detect
	// tautologies and root-true literals. Dedupe uses a generation-stamped
	// per-literal array rather than a map: formula construction calls
	// AddClause thousands of times and the map allocation dominated build
	// cost on incremental workloads that rebuild formulas per problem.
	if len(s.litStamp) < 2*s.NumVars() {
		// Grow with headroom: variable creation and clause addition
		// interleave during formula construction, so sizing exactly would
		// reallocate on nearly every call.
		s.litStamp = make([]uint32, 4*s.NumVars())
		s.stampGen = 0
	}
	s.stampGen++
	if s.stampGen == 0 { // generation wrap: stale stamps could collide
		clear(s.litStamp)
		s.stampGen = 1
	}
	gen := s.stampGen
	out := s.addBuf[:0]
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch {
		case s.litStamp[l] == gen:
			continue
		case s.litStamp[l.Not()] == gen:
			return true // tautology: always satisfied
		case s.valueLit(l) == lTrue:
			return true // already satisfied at root
		case s.valueLit(l) == lFalse:
			continue // cannot help
		}
		s.litStamp[l] = gen
		out = append(out, l)
	}
	s.addBuf = out[:0]
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := s.newProblemClause(s.arenaLits(out))
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// AddXor asserts the parity constraint XOR(lits) == rhs as a native XOR
// clause (negated literals fold their sign into the constant). This shadows
// the CNF Tseitin encoding the generic Builder helper produces: the native
// form propagates with two watched variables and touches each constraint at
// most once per re-solve, instead of walking an XOR2 gate tree. Returns false
// when the solver is (or becomes) unsatisfiable.
func (s *Solver) AddXor(lits []Lit, rhs bool) bool {
	vars := make([]int, len(lits))
	for i, l := range lits {
		if l.Sign() {
			rhs = !rhs
		}
		vars[i] = l.Var()
	}
	return s.addXorVars(rhs, vars)
}

// addXorVars adds xor(vars) == rhs over plain variables. Duplicate variable
// pairs cancel (x⊕x = 0) and root-assigned variables fold into the constant.
// Like AddClause, adding a constraint cancels any in-progress search.
func (s *Solver) addXorVars(rhs bool, vars []int) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if s.xorSeen == nil {
		s.xorSeen = make(map[int]bool, 64)
	} else {
		clear(s.xorSeen)
	}
	seen := s.xorSeen
	for _, v := range vars {
		if v < 0 || v >= s.NumVars() {
			panic(fmt.Sprintf("sat: xor references unknown variable %d", v))
		}
		seen[v] = !seen[v]
	}
	out := make([]int, 0, len(vars))
	for _, v := range vars {
		if !seen[v] {
			continue
		}
		seen[v] = false
		if s.assigns[v] != lUndef {
			if s.assigns[v] == lTrue {
				rhs = !rhs
			}
			continue
		}
		out = append(out, v)
	}
	switch len(out) {
	case 0:
		if rhs {
			s.ok = false
		}
		return s.ok
	case 1:
		s.uncheckedEnqueue(MkLit(out[0], !rhs), nil)
		if s.propagate() != nil {
			s.ok = false
		}
		return s.ok
	}
	xc := &xorClause{vars: out, rhs: rhs, w: [2]int{0, 1}}
	xc.scratch.lits = make([]Lit, 0, len(out))
	s.xors = append(s.xors, xc)
	s.xwatch[out[0]] = append(s.xwatch[out[0]], xc)
	s.xwatch[out[1]] = append(s.xwatch[out[1]], xc)
	return true
}

// watcher pairs a watched clause with a blocker literal — some other literal
// of the clause, checked before dereferencing the clause at all. When the
// blocker is already true the clause is satisfied and the visit costs one
// array read. For binary clauses the blocker is exactly the other literal, so
// they propagate and conflict without ever touching clause memory or moving
// watches.
type watcher struct {
	c       *clause
	blocker Lit
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation, returning a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		j := 0
		notP := p.Not()
	nextClause:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker check: one array read settles an already-satisfied
			// clause without dereferencing it.
			if s.valueLit(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Binary fast path: the blocker IS the other literal, known
			// false-or-unassigned by now; no watch ever moves.
			if len(c.lits) == 2 {
				ws[j] = w
				j++
				if s.valueLit(w.blocker) == lFalse {
					for i++; i < len(ws); i++ {
						ws[j] = ws[i]
						j++
					}
					s.watches[p] = ws[:j]
					s.qhead = len(s.trail)
					return c
				}
				s.uncheckedEnqueue(w.blocker, c)
				continue
			}
			// Ensure the false literal (~p) sits at position 1.
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			// If the other watch is already true the clause is satisfied;
			// remember it as the new blocker.
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a non-false literal to watch instead.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextClause
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.valueLit(first) == lFalse {
				// Conflict: keep the rest of the watch list intact.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
		if confl := s.propagateXor(p.Var()); confl != nil {
			return &confl.scratch
		}
	}
	return nil
}

// propagateXor visits every XOR constraint watching variable pv (just
// assigned, either polarity — parity does not care). Each constraint either
// moves its watch to another unassigned variable, forces its last unassigned
// variable to the parity-completing value, verifies itself when fully
// assigned, or reports a conflict. Unprocessed entries on a conflict are safe
// to abandon mid-list: the conflicting assignment sits at the current decision
// level, so conflict analysis always backtracks it off the trail and its
// watches get revisited when it is enqueued again.
func (s *Solver) propagateXor(pv int) *xorClause {
	xw := s.xwatch[pv]
	if len(xw) == 0 {
		return nil
	}
	j := 0
	for i := 0; i < len(xw); i++ {
		xc := xw[i]
		wi := 0
		if xc.vars[xc.w[1]] == pv {
			wi = 1
		} else if xc.vars[xc.w[0]] != pv {
			continue // stale entry: watch already moved elsewhere
		}
		other := xc.vars[xc.w[1-wi]]
		// Rotating-start scan: consecutive assignments walk the constraint's
		// variables in order, so resuming where the last scan stopped keeps
		// the total replacement work per full pass linear instead of
		// quadratic.
		moved := false
		nv := len(xc.vars)
		for t, k := 0, xc.scan; t < nv; t, k = t+1, k+1 {
			if k >= nv {
				k = 0
			}
			if u := xc.vars[k]; u != other && s.assigns[u] == lUndef {
				xc.w[wi] = k
				xc.scan = k + 1
				s.xwatch[u] = append(s.xwatch[u], xc)
				moved = true
				break
			}
		}
		if moved {
			continue
		}
		// Everything but (possibly) the other watch is assigned: settle parity.
		xw[j] = xc
		j++
		parity := xc.rhs
		for _, u := range xc.vars {
			if u != other && s.assigns[u] == lTrue {
				parity = !parity
			}
		}
		if s.assigns[other] == lUndef {
			forced := MkLit(other, !parity)
			xc.scratch.lits = append(xc.scratch.lits[:0], forced)
			for _, u := range xc.vars {
				if u != other {
					xc.scratch.lits = append(xc.scratch.lits, MkLit(u, s.assigns[u] == lTrue))
				}
			}
			s.uncheckedEnqueue(forced, &xc.scratch)
			continue
		}
		if (s.assigns[other] == lTrue) != parity {
			xc.scratch.lits = xc.scratch.lits[:0]
			for _, u := range xc.vars {
				xc.scratch.lits = append(xc.scratch.lits, MkLit(u, s.assigns[u] == lTrue))
			}
			for i++; i < len(xw); i++ {
				xw[j] = xw[i]
				j++
			}
			s.xwatch[pv] = xw[:j]
			s.qhead = len(s.trail)
			return xc
		}
	}
	s.xwatch[pv] = xw[:j]
	return nil
}

// analyze derives a first-UIP learnt clause from a conflict and returns the
// clause literals (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := make([]Lit, 1, 8) // slot 0 reserved for the asserting literal
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	for {
		s.claBump(confl)
		for _, q := range confl.lits {
			if p != litUndef && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.varBump(v)
				s.seen[v] = true
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Cheap self-subsumption: drop literals implied by the rest of the
	// clause through their reason clauses. The seen flags of removed
	// literals stay set during the pass (transitive implications remain
	// valid) and are cleared together with the kept ones below.
	var removed []Lit
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.litRedundant(l) {
			removed = append(removed, l)
		} else {
			out = append(out, l)
		}
	}
	learnt = out

	// Backtrack level: the highest level among the non-asserting literals.
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].Var()]); lv > btLevel {
			btLevel = lv
			// Keep the literal with the backtrack level at position 1 so the
			// learnt clause watches sensibly.
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	for _, l := range removed {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// litRedundant reports whether every antecedent of l's reason clause is
// already in the learnt clause (marked seen) or at the root level.
func (s *Solver) litRedundant(l Lit) bool {
	c := s.reason[l.Var()]
	if c == nil {
		return false
	}
	for _, q := range c.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
			return false
		}
	}
	return true
}

// analyzeFinal computes the subset of the current call's assumptions
// responsible for forcing assumption p false — MiniSat's analyzeFinal,
// expressed over assumption literals instead of a conflict clause. It
// walks the trail top-down from the failure point, expanding reason
// clauses transitively; a marked trail literal with no reason is an
// assumption pseudo-decision (free-search decisions cannot exist yet: the
// re-establish loop runs before any free branching) and joins the core.
// Reason clauses carry the implied literal at an arbitrary position (the
// binary fast path enqueues the blocker), so antecedents are skipped by
// variable, as in litRedundant. The result lands in s.failed with p first.
func (s *Solver) analyzeFinal(p Lit) {
	s.failed = append(s.failed[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	bound := s.trailLim[0]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if c := s.reason[v]; c == nil {
			if s.level[v] > 0 {
				s.failed = append(s.failed, s.trail[i])
			}
		} else {
			for _, q := range c.lits {
				if q.Var() != v && s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lFalse
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
	s.dfCursor = 0
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// pickBranchVar returns the next unassigned variable to branch on: the
// explicit decision order first (cursor resets on backtrack), then the
// highest-activity variable from the order heap.
func (s *Solver) pickBranchVar() int {
	for s.dfCursor < len(s.decideFirst) {
		v := s.decideFirst[s.dfCursor]
		if s.assigns[v] == lUndef {
			return v
		}
		s.dfCursor++
	}
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes roughly half of the learnt clauses, lowest activity first,
// keeping binary clauses and clauses that are the reason for an assignment.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	ls := s.learnts
	sort.Slice(ls, func(i, j int) bool { return ls[i].act < ls[j].act })
	keep := ls[:0]
	limit := len(ls) / 2
	for i, c := range ls {
		locked := s.reason[c.lits[0].Var()] == c
		if len(c.lits) <= 2 || locked || i >= limit {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
}

func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby returns the x-th element (0-based) of the Luby restart sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve searches for a satisfying assignment. It returns (true, nil) when one
// exists (retrievable via Value/Model), (false, nil) when the formula is
// unsatisfiable, and (false, ErrBudget) when MaxConflicts was exceeded.
func (s *Solver) Solve() (bool, error) { return s.SolveUnderAssumptions() }

// SolveUnderAssumptions searches for a satisfying assignment under a set of
// assumed literals, MiniSat-style: the assumptions act as pseudo-decisions
// taken before the free search, so nothing is added to the clause database
// and every learnt clause remains valid for later calls with different (or
// no) assumptions. It returns (false, nil) both when the formula itself is
// unsatisfiable and when it is unsatisfiable only under the assumptions;
// in the latter case the solver stays satisfiable and reusable. This is the
// incremental-solving primitive: callers keep one solver alive, toggle
// guard literals via assumptions, and retain all learned state across
// re-solves.
func (s *Solver) SolveUnderAssumptions(assumptions ...Lit) (bool, error) {
	s.failed = s.failed[:0]
	if s.timeout > 0 {
		s.deadline = time.Now().Add(s.timeout)
	} else {
		s.deadline = time.Time{}
	}
	if !s.ok {
		return false, nil
	}
	for _, a := range assumptions {
		if a.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: assumption %v references unknown variable", a))
		}
	}
	// Assumption-prefix trail reuse: a successful solve leaves its assumption
	// levels on the trail (see the model-recording return below). When the
	// next call shares a prefix of those assumptions, the prefix's decisions
	// and their propagations are already in place and need not be replayed —
	// only the suffix is re-established. Callers that fan many solves out of
	// one formula (BEEP crafts one pattern per target bit this way) order
	// their most-stable assumptions first to maximize the match.
	reuse := 0
	for reuse < len(assumptions) && reuse < s.decisionLevel() {
		base := s.trailLim[reuse]
		end := len(s.trail)
		if reuse+1 < s.decisionLevel() {
			end = s.trailLim[reuse+1]
		}
		// Empty levels mark assumptions that were already implied when they
		// were established; without replaying we cannot attribute them, so
		// matching stops there.
		if end <= base || s.trail[base] != assumptions[reuse] {
			break
		}
		reuse++
	}
	s.cancelUntil(reuse)
	if s.propagate() != nil {
		s.ok = false
		return false, nil
	}
	var conflictsThisCall int64
	restart := int64(0)
	budget := int64(100) * luby(0)
	var sinceRestart int64
	maxLearnts := int64(len(s.clauses)/3 + 2000)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflictsThisCall++
			sinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return false, nil
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.Stats.Learnt++
			}
			s.varDecay()
			s.claDecay()
			if s.MaxConflicts > 0 && conflictsThisCall > s.MaxConflicts {
				s.cancelUntil(0)
				return false, ErrBudget
			}
			if err := s.stopRequested(); err != nil {
				s.cancelUntil(0)
				return false, err
			}
			continue
		}
		if sinceRestart >= budget {
			restart++
			s.Stats.Restarts++
			sinceRestart = 0
			budget = 100 * luby(restart)
			s.cancelUntil(0)
			if err := s.stopRequested(); err != nil {
				return false, err
			}
			continue
		}
		if int64(len(s.learnts)) > maxLearnts {
			s.reduceDB()
			maxLearnts = maxLearnts*11/10 + 1
		}
		// Re-establish assumptions as pseudo-decisions: one decision level
		// per assumption (restarts and deep backjumps pop them; this loop
		// puts them back before any free branching resumes).
		next := litUndef
		for next == litUndef && s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already implied: open an empty level so the remaining
				// assumptions keep their positional levels.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The clause database forces the negation under the earlier
				// assumptions: UNSAT under assumptions, formula untouched.
				// The established prefix stays on the trail so the next
				// call can still reuse it. Derive the failed-assumption
				// core before returning — this is the only exit that
				// answers UNSAT-under-assumptions.
				s.analyzeFinal(a)
				return false, nil
			default:
				next = a
			}
		}
		if next == litUndef {
			// Total-assignment check by trail length: when propagation has
			// assigned every variable, draining the order heap just to
			// discover there is nothing left to decide costs hundreds of
			// O(log n) pops per solve on formulas that complete with few
			// conflicts (the BEEP crafting workload). The heap keeps the
			// assigned vars; they are discarded lazily on later pops.
			v := -1
			if len(s.trail) != len(s.assigns) {
				v = s.pickBranchVar()
			}
			if v == -1 {
				// All variables assigned: record the model. Free-search
				// decisions are popped but the assumption levels stay on the
				// trail so the next call can reuse a shared prefix.
				if len(s.model) != s.NumVars() {
					s.model = make([]bool, s.NumVars())
				}
				for i := range s.model {
					s.model[i] = s.assigns[i] == lTrue
				}
				s.cancelUntil(len(assumptions))
				return true, nil
			}
			s.Stats.Decisions++
			// Poll the abort hooks on the decision path too: a formula
			// the solver satisfies without conflicting or restarting must
			// still observe cancellation (or a deadline) within a bounded
			// number of steps.
			if s.Stats.Decisions&63 == 0 {
				if err := s.stopRequested(); err != nil {
					s.cancelUntil(0)
					return false, err
				}
			}
			next = MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Value returns variable v's value in the most recent model. Valid only after
// Solve returned true.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v]
}

// ValueLit returns literal l's value in the most recent model.
func (s *Solver) ValueLit(l Lit) bool { return s.Value(l.Var()) != l.Sign() }

// Model returns a copy of the most recent satisfying assignment.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// varHeap is a binary max-heap over variable activities with position
// tracking so updates are O(log n).
type varHeap struct {
	heap     []int
	pos      []int // pos[v] = index in heap, or -1
	activity *[]float64
}

func (h *varHeap) less(a, b int) bool {
	act := *h.activity
	return act[h.heap[a]] > act[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) insert(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
		h.down(h.pos[v])
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}
