// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver in pure Go, plus CNF-building helpers for the XOR and
// reified AND/OR constraints that BEER's parity-check inference needs.
//
// The paper uses the Z3 SMT solver (§3.4, §5.3); no native Go SAT solver was
// available under the stdlib-only constraint, so this package provides the
// equivalent capability: two-watched-literal propagation, first-UIP clause
// learning, VSIDS branching with phase saving, Luby restarts, and learnt
// clause database reduction. Solvers are reusable: clauses may be added
// between Solve calls, which is how model enumeration (BEER's uniqueness
// check) adds blocking clauses.
//
// Entry points: New + AddClause + Solve; SolveUnderAssumptions solves under
// a temporary set of assumed literals without touching the clause database
// (the incremental-solving primitive); ReifyXor/ReifyAnd/ReifyOr build the
// Tseitin gadgets the §5.3 encoding needs; BlockModel excludes the current
// model for enumeration. The Interrupt hook is polled at every conflict,
// every restart and every 64th decision — internal/core wires context
// cancellation into it — and MaxConflicts bounds effort per call. Solvers
// are single-goroutine: one Solver must never be shared across concurrent
// solves.
//
// The Backend interface (backend.go) abstracts the solving surface so
// higher layers can swap engines: *Solver is the default in-process CDCL
// backend, and Dimacs is a recording backend that exports the accumulated
// CNF in DIMACS format for external solvers.
package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: variable index shifted left once, with the low bit set
// for negation. The zero Lit is variable 0, positive.
type Lit int32

// litUndef is a sentinel literal distinct from every real literal.
const litUndef Lit = -1

// MkLit constructs a literal for variable v (>= 0), negated when neg is set.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return MkLit(v, true) }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "x3" or "~x3".
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits   []Lit
	act    float64
	learnt bool
}

// Stats aggregates solver counters across all Solve calls.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64
	Restarts     int64
}

// Solver is a reusable CDCL SAT solver. The zero value is not usable; call
// New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause
	watches [][]*clause // indexed by literal

	assigns  []lbool
	level    []int32
	reason   []*clause
	polarity []bool // saved phase per variable
	activity []float64
	seen     []bool

	trail    []Lit
	trailLim []int
	qhead    int

	order  varHeap
	varInc float64
	claInc float64

	ok    bool // false once UNSAT is established at level 0
	model []bool

	// MaxConflicts, when positive, bounds the total conflicts per Solve call;
	// exceeding it makes Solve return ErrBudget. Zero means unlimited.
	MaxConflicts int64

	// interrupt, when set (via Interrupt), is polled during search: at every
	// conflict, every restart, and every 64th decision. The decision-path
	// poll bounds cancellation latency even on formulas the solver satisfies
	// without ever conflicting.
	interrupt func() bool

	Stats Stats
}

// Interrupt installs fn as the solver's interrupt hook, polled during search
// (at every conflict, every restart, and every 64th decision — so a solve
// that never conflicts still observes cancellation within a bounded number
// of decisions). When fn returns true the in-progress solve unwinds to
// decision level 0 and returns ErrInterrupted; the solver stays reusable:
// the caller may add clauses and solve again. This is how context
// cancellation reaches a running solve without the solver depending on the
// context package. A nil fn removes the hook.
func (s *Solver) Interrupt(fn func() bool) { s.interrupt = fn }

// SetMaxConflicts bounds SAT effort per solve call in conflicts (0 =
// unlimited); exceeding the budget makes the solve return ErrBudget.
func (s *Solver) SetMaxConflicts(n int64) { s.MaxConflicts = n }

// Statistics returns the solver's cumulative counters.
func (s *Solver) Statistics() Stats { return s.Stats }

// Learned returns the number of learnt clauses currently alive in the
// clause database — the state an incremental caller preserves by reusing
// one solver across re-solves.
func (s *Solver) Learned() int64 { return int64(len(s.learnts)) }

// Add is AddClause under the Backend interface's name.
func (s *Solver) Add(lits ...Lit) bool { return s.AddClause(lits...) }

// ErrBudget is returned by Solve when MaxConflicts is exhausted before a
// definitive answer is found.
var ErrBudget = fmt.Errorf("sat: conflict budget exhausted")

// ErrInterrupted is returned by Solve when the Interrupt hook fired before a
// definitive answer was found.
var ErrInterrupted = fmt.Errorf("sat: solve interrupted")

// New returns an empty solver with no variables.
func New() *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1}
	s.order.activity = &s.activity
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// SetPolarity sets the value a variable prefers when the solver branches on
// it (before conflict-driven phase saving takes over). Callers use it to
// bias which of many satisfying assignments the search finds first — e.g.
// BEEP biases data bits toward CHARGED so crafted patterns exercise many
// cells.
func (s *Solver) SetPolarity(v int, value bool) { s.polarity[v] = !value }

// BoostActivity raises a variable's branching priority so the solver decides
// it (with its preferred polarity) before un-boosted variables. Combined
// with SetPolarity this steers model selection: BEEP boosts the dataword
// bits so crafted patterns follow the requested random phases instead of
// being dictated by Tseitin gate variables.
func (s *Solver) BoostActivity(v int, amount float64) {
	s.activity[v] += amount
	s.order.update(v)
}

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // default phase: false (negated)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) lbool {
	val := s.assigns[l.Var()]
	if l.Sign() {
		return -val
	}
	return val
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false when the
// solver is already known to be unsatisfiable (now or previously). Adding a
// clause cancels any in-progress search back to decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort-free dedupe, drop root-false literals, detect
	// tautologies and root-true literals.
	seen := make(map[Lit]bool, len(lits))
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch {
		case seen[l]:
			continue
		case seen[l.Not()]:
			return true // tautology: always satisfied
		case s.valueLit(l) == lTrue:
			return true // already satisfied at root
		case s.valueLit(l) == lFalse:
			continue // cannot help
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation, returning a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		j := 0
	nextClause:
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal (~p) sits at position 1.
			notP := p.Not()
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watch is already true the clause is satisfied.
			if s.valueLit(c.lits[0]) == lTrue {
				ws[j] = c
				j++
				continue
			}
			// Look for a non-false literal to watch instead.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					w := c.lits[1].Not()
					s.watches[w] = append(s.watches[w], c)
					continue nextClause
				}
			}
			// Clause is unit or conflicting.
			ws[j] = c
			j++
			if s.valueLit(c.lits[0]) == lFalse {
				// Conflict: keep the rest of the watch list intact.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze derives a first-UIP learnt clause from a conflict and returns the
// clause literals (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := make([]Lit, 1, 8) // slot 0 reserved for the asserting literal
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	for {
		s.claBump(confl)
		for _, q := range confl.lits {
			if p != litUndef && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.varBump(v)
				s.seen[v] = true
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Cheap self-subsumption: drop literals implied by the rest of the
	// clause through their reason clauses. The seen flags of removed
	// literals stay set during the pass (transitive implications remain
	// valid) and are cleared together with the kept ones below.
	var removed []Lit
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.litRedundant(l) {
			removed = append(removed, l)
		} else {
			out = append(out, l)
		}
	}
	learnt = out

	// Backtrack level: the highest level among the non-asserting literals.
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].Var()]); lv > btLevel {
			btLevel = lv
			// Keep the literal with the backtrack level at position 1 so the
			// learnt clause watches sensibly.
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	for _, l := range removed {
		s.seen[l.Var()] = false
	}
	return learnt, btLevel
}

// litRedundant reports whether every antecedent of l's reason clause is
// already in the learnt clause (marked seen) or at the root level.
func (s *Solver) litRedundant(l Lit) bool {
	c := s.reason[l.Var()]
	if c == nil {
		return false
	}
	for _, q := range c.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lFalse
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// pickBranchVar pops the highest-activity unassigned variable.
func (s *Solver) pickBranchVar() int {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes roughly half of the learnt clauses, lowest activity first,
// keeping binary clauses and clauses that are the reason for an assignment.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	ls := s.learnts
	sort.Slice(ls, func(i, j int) bool { return ls[i].act < ls[j].act })
	keep := ls[:0]
	limit := len(ls) / 2
	for i, c := range ls {
		locked := s.reason[c.lits[0].Var()] == c
		if len(c.lits) <= 2 || locked || i >= limit {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
}

func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i, cc := range ws {
			if cc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby returns the x-th element (0-based) of the Luby restart sequence
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve searches for a satisfying assignment. It returns (true, nil) when one
// exists (retrievable via Value/Model), (false, nil) when the formula is
// unsatisfiable, and (false, ErrBudget) when MaxConflicts was exceeded.
func (s *Solver) Solve() (bool, error) { return s.SolveUnderAssumptions() }

// SolveUnderAssumptions searches for a satisfying assignment under a set of
// assumed literals, MiniSat-style: the assumptions act as pseudo-decisions
// taken before the free search, so nothing is added to the clause database
// and every learnt clause remains valid for later calls with different (or
// no) assumptions. It returns (false, nil) both when the formula itself is
// unsatisfiable and when it is unsatisfiable only under the assumptions;
// in the latter case the solver stays satisfiable and reusable. This is the
// incremental-solving primitive: callers keep one solver alive, toggle
// guard literals via assumptions, and retain all learned state across
// re-solves.
func (s *Solver) SolveUnderAssumptions(assumptions ...Lit) (bool, error) {
	if !s.ok {
		return false, nil
	}
	for _, a := range assumptions {
		if a.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: assumption %v references unknown variable", a))
		}
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return false, nil
	}
	var conflictsThisCall int64
	restart := int64(0)
	budget := int64(100) * luby(0)
	var sinceRestart int64
	maxLearnts := int64(len(s.clauses)/3 + 2000)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflictsThisCall++
			sinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return false, nil
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.Stats.Learnt++
			}
			s.varDecay()
			s.claDecay()
			if s.MaxConflicts > 0 && conflictsThisCall > s.MaxConflicts {
				s.cancelUntil(0)
				return false, ErrBudget
			}
			if s.interrupt != nil && s.interrupt() {
				s.cancelUntil(0)
				return false, ErrInterrupted
			}
			continue
		}
		if sinceRestart >= budget {
			restart++
			s.Stats.Restarts++
			sinceRestart = 0
			budget = 100 * luby(restart)
			s.cancelUntil(0)
			if s.interrupt != nil && s.interrupt() {
				return false, ErrInterrupted
			}
			continue
		}
		if int64(len(s.learnts)) > maxLearnts {
			s.reduceDB()
			maxLearnts = maxLearnts*11/10 + 1
		}
		// Re-establish assumptions as pseudo-decisions: one decision level
		// per assumption (restarts and deep backjumps pop them; this loop
		// puts them back before any free branching resumes).
		next := litUndef
		for next == litUndef && s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already implied: open an empty level so the remaining
				// assumptions keep their positional levels.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The clause database forces the negation under the earlier
				// assumptions: UNSAT under assumptions, formula untouched.
				s.cancelUntil(0)
				return false, nil
			default:
				next = a
			}
		}
		if next == litUndef {
			v := s.pickBranchVar()
			if v == -1 {
				// All variables assigned: record the model.
				s.model = make([]bool, s.NumVars())
				for i := range s.model {
					s.model[i] = s.assigns[i] == lTrue
				}
				s.cancelUntil(0)
				return true, nil
			}
			s.Stats.Decisions++
			// Poll the interrupt hook on the decision path too: a formula
			// the solver satisfies without conflicting or restarting must
			// still observe cancellation within a bounded number of steps.
			if s.Stats.Decisions&63 == 0 && s.interrupt != nil && s.interrupt() {
				s.cancelUntil(0)
				return false, ErrInterrupted
			}
			next = MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Value returns variable v's value in the most recent model. Valid only after
// Solve returned true.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v]
}

// ValueLit returns literal l's value in the most recent model.
func (s *Solver) ValueLit(l Lit) bool { return s.Value(l.Var()) != l.Sign() }

// Model returns a copy of the most recent satisfying assignment.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// varHeap is a binary max-heap over variable activities with position
// tracking so updates are O(log n).
type varHeap struct {
	heap     []int
	pos      []int // pos[v] = index in heap, or -1
	activity *[]float64
}

func (h *varHeap) less(a, b int) bool {
	act := *h.activity
	return act[h.heap[a]] > act[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) insert(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] != -1 {
		h.up(h.pos[v])
		h.down(h.pos[v])
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}
