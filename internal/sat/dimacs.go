package sat

// DIMACS CNF as data: a parsed (or parseable) formula detached from any
// backend. The Dimacs recording backend produces this format (WriteDIMACS);
// ParseDIMACS is its inverse, so corpora — the satlib regression harness,
// recorded BEER uniqueness-loop formulas, external-solver inputs — feed
// every Backend implementation through one representation.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CNF is a plain DIMACS formula: a variable count plus clauses over
// 0-based literals. Assumptions carries the "c assumptions:" comment the
// Dimacs recorder emits for incremental queries (DIMACS has no assumption
// syntax; externally they are applied as unit clauses).
type CNF struct {
	Vars        int
	Clauses     [][]Lit
	Assumptions []Lit
}

// MaxVar returns the highest 0-based variable index referenced by any
// clause or assumption, or -1 for a formula with no literals.
func (c *CNF) MaxVar() int {
	maxVar := -1
	for _, cl := range c.Clauses {
		for _, l := range cl {
			if v := l.Var(); v > maxVar {
				maxVar = v
			}
		}
	}
	for _, a := range c.Assumptions {
		if v := a.Var(); v > maxVar {
			maxVar = v
		}
	}
	return maxVar
}

// headerVars is the variable count the "p cnf" header must carry: the
// declared count, or more when a clause references a variable beyond it.
// Computed at write time, never cached — the regression against stale
// headers after post-write growth (see WriteDIMACS).
func (c *CNF) headerVars() int {
	n := c.Vars
	if m := c.MaxVar() + 1; m > n {
		n = m
	}
	return n
}

// Write emits the formula in DIMACS CNF format. The header is recounted
// from the live clause set on every call, so writing, growing the formula,
// and writing again always yields a consistent second export.
func (c *CNF) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", c.headerVars(), len(c.Clauses)); err != nil {
		return err
	}
	if len(c.Assumptions) > 0 {
		if _, err := fmt.Fprint(bw, "c assumptions:"); err != nil {
			return err
		}
		for _, a := range c.Assumptions {
			if _, err := fmt.Fprintf(bw, " %d", dimacsLit(a)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	for _, cl := range c.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", dimacsLit(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Feed replays the formula into a fresh builder: the formula's variable
// count is allocated, then every clause is added. Assumptions are NOT
// applied (they are per-query, not part of the formula); callers pass them
// to SolveUnderAssumptions. The builder must be empty — the formula's
// variable 0 becomes the builder's variable 0.
func (c *CNF) Feed(b Builder) {
	for i := 0; i < c.headerVars(); i++ {
		b.NewVar()
	}
	for _, cl := range c.Clauses {
		b.Add(cl...)
	}
}

// Satisfied reports whether assignment (indexed by variable) satisfies
// every clause, and returns the first violated clause otherwise — the
// model-verification primitive the external backend and the differential
// tests use to distrust solver output.
func (c *CNF) Satisfied(assignment []bool) (ok bool, violated []Lit) {
	litVal := func(l Lit) bool {
		v := l.Var()
		if v >= len(assignment) {
			return l.Sign() // unassigned defaults false
		}
		return assignment[v] != l.Sign()
	}
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if litVal(l) {
				sat = true
				break
			}
		}
		if !sat {
			return false, cl
		}
	}
	return true, nil
}

// ParseDIMACS parses a DIMACS CNF stream: a "p cnf vars clauses" header,
// clauses as 0-terminated integer runs (free-form whitespace, clauses may
// span lines), "c" comment lines, and the SATLIB trailing "%" end marker.
// A "c assumptions: ..." comment (the Dimacs recorder's incremental-query
// annotation) is parsed back into CNF.Assumptions. The declared variable
// count is trusted but grown when clauses reference beyond it.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	cnf := &CNF{}
	sawHeader := false
	declaredClauses := -1
	var cur []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "c"):
			if rest, ok := strings.CutPrefix(line, "c assumptions:"); ok {
				for _, tok := range strings.Fields(rest) {
					n, err := strconv.Atoi(tok)
					if err != nil || n == 0 {
						return nil, fmt.Errorf("sat: dimacs line %d: bad assumption literal %q", lineNo, tok)
					}
					cnf.Assumptions = append(cnf.Assumptions, litFromDimacs(n))
				}
			}
			continue
		case strings.HasPrefix(line, "%"):
			// SATLIB files end with "%\n0\n"; everything after is padding.
			goto done
		case strings.HasPrefix(line, "p"):
			if sawHeader {
				return nil, fmt.Errorf("sat: dimacs line %d: duplicate header", lineNo)
			}
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: dimacs line %d: malformed header %q", lineNo, line)
			}
			v, err1 := strconv.Atoi(f[2])
			nc, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || v < 0 || nc < 0 {
				return nil, fmt.Errorf("sat: dimacs line %d: malformed header %q", lineNo, line)
			}
			cnf.Vars, declaredClauses = v, nc
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("sat: dimacs line %d: clause before \"p cnf\" header", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: dimacs line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				cnf.Clauses = append(cnf.Clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, litFromDimacs(n))
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: dimacs read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("sat: dimacs: missing \"p cnf\" header")
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("sat: dimacs: unterminated clause %v at EOF", cur)
	}
	// A SATLIB-style trailing "0" after the % marker would have been cut at
	// the marker; a count mismatch against the header is tolerated (many
	// published files disagree with their own headers) but the variable
	// count must cover every literal.
	_ = declaredClauses
	if m := cnf.MaxVar() + 1; m > cnf.Vars {
		cnf.Vars = m
	}
	return cnf, nil
}

// litFromDimacs converts a nonzero DIMACS integer literal to a Lit.
func litFromDimacs(n int) Lit {
	if n < 0 {
		return NegLit(-n - 1)
	}
	return PosLit(n - 1)
}
