package sat

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// php builds the pigeonhole principle PHP(pigeons, holes): UNSAT whenever
// pigeons > holes, and hard enough to guarantee conflicts — which is where
// the Interrupt hook is polled.
func php(s Builder, pigeons, holes int) {
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.Add(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.Add(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestInterruptStopsSearch(t *testing.T) {
	s := New()
	php(s, 8, 7)
	fired := false
	s.Interrupt(func() bool { fired = true; return true })
	ok, err := s.Solve()
	if ok || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Solve = (%v, %v), want (false, ErrInterrupted)", ok, err)
	}
	if !fired {
		t.Fatal("interrupt hook never polled")
	}
}

// TestInterruptSolverReusable: after an interrupted Solve the solver must
// remain usable and produce the correct answer once the interrupt clears.
func TestInterruptSolverReusable(t *testing.T) {
	s := New()
	php(s, 6, 5)
	calls := 0
	s.Interrupt(func() bool { calls++; return calls == 1 })
	if ok, err := s.Solve(); ok || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("first Solve = (%v, %v), want interrupted", ok, err)
	}
	s.Interrupt(nil)
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PHP(6,5) reported SAT")
	}
}

// TestInterruptPolledOnDecisions: a trivially satisfiable formula with many
// free variables never conflicts and never restarts, so only the
// decision-path poll can observe the interrupt. Before the decision-path
// poll existed, this solve ran to a model despite the hook being hot the
// whole time.
func TestInterruptPolledOnDecisions(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.NewVar()
	}
	// One satisfied-by-default clause so the formula is nonempty.
	s.Add(NegLit(0), NegLit(1))
	s.Interrupt(func() bool { return true })
	ok, err := s.Solve()
	if ok || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Solve = (%v, %v), want (false, ErrInterrupted) via the decision-path poll", ok, err)
	}
	s.Interrupt(nil)
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("post-interrupt Solve = (%v, %v), want SAT", ok, err)
	}
}

// TestInterruptConcurrentCancel exercises the cross-goroutine cancellation
// pattern internal/core uses (a hook reading state another goroutine
// writes) under the race detector: the shared flag is atomic, the solve
// must return ErrInterrupted promptly, and the solver must stay reusable.
func TestInterruptConcurrentCancel(t *testing.T) {
	s := New()
	php(s, 8, 7) // hard enough to still be searching when the flag flips
	var stop atomic.Bool
	s.Interrupt(stop.Load)
	go func() {
		time.Sleep(2 * time.Millisecond)
		stop.Store(true)
	}()
	ok, err := s.Solve()
	if ok {
		t.Fatal("PHP(8,7) reported SAT")
	}
	// A fast machine may finish the UNSAT proof before the flag flips; both
	// outcomes are legal, but nothing else is.
	if err != nil && !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Solve error = %v, want nil or ErrInterrupted", err)
	}
}
