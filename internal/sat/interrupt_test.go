package sat

import (
	"errors"
	"testing"
)

// php builds the pigeonhole principle PHP(pigeons, holes): UNSAT whenever
// pigeons > holes, and hard enough to guarantee conflicts — which is where
// the Interrupt hook is polled.
func php(s *Solver, pigeons, holes int) {
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestInterruptStopsSearch(t *testing.T) {
	s := New()
	php(s, 8, 7)
	fired := false
	s.Interrupt = func() bool { fired = true; return true }
	ok, err := s.Solve()
	if ok || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Solve = (%v, %v), want (false, ErrInterrupted)", ok, err)
	}
	if !fired {
		t.Fatal("interrupt hook never polled")
	}
}

// TestInterruptSolverReusable: after an interrupted Solve the solver must
// remain usable and produce the correct answer once the interrupt clears.
func TestInterruptSolverReusable(t *testing.T) {
	s := New()
	php(s, 6, 5)
	calls := 0
	s.Interrupt = func() bool { calls++; return calls == 1 }
	if ok, err := s.Solve(); ok || !errors.Is(err, ErrInterrupted) {
		t.Fatalf("first Solve = (%v, %v), want interrupted", ok, err)
	}
	s.Interrupt = nil
	ok, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PHP(6,5) reported SAT")
	}
}
