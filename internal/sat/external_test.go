package sat

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain lets this test binary impersonate external solvers, selected by
// the BEER_SAT_MODE environment variable (passed per-backend through
// ExternalConfig.Env, so different External instances in one test process
// get different behaviors):
//
//	solve    run sat.SolverMain — a real, honest DIMACS solver
//	sleep    spawn a child process, record both PIDs, hang — for
//	         kill-on-timeout / no-orphans tests
//	lie      claim SATISFIABLE with an all-false model regardless of input
//	garbage  print nonsense with no status line, exit 0
func TestMain(m *testing.M) {
	switch os.Getenv("BEER_SAT_MODE") {
	case "solve":
		os.Exit(SolverMain(os.Args[1:], os.Stdout, os.Stderr))
	case "sleep":
		fakeSleepSolver()
	case "lie":
		fmt.Println("s SATISFIABLE")
		fmt.Println("v 0")
		os.Exit(10)
	case "garbage":
		fmt.Println("thinking about clauses, results pending")
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fakeSleepSolver spawns a grandchild and blocks forever; the test on the
// other side kills our whole process group and then asserts the grandchild
// died with us — the no-orphans discipline.
func fakeSleepSolver() {
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), "BEER_SAT_MODE=grandchild-sleep")
	if err := child.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if pidFile := os.Getenv("BEER_SAT_PIDFILE"); pidFile != "" {
		if err := os.WriteFile(pidFile, []byte(fmt.Sprintf("%d %d", os.Getpid(), child.Process.Pid)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	time.Sleep(time.Hour)
}

func init() {
	if os.Getenv("BEER_SAT_MODE") == "grandchild-sleep" {
		time.Sleep(time.Hour)
		os.Exit(0)
	}
}

// selfConfig returns an ExternalConfig that re-execs this test binary in
// the given fake-solver mode.
func selfConfig(t *testing.T, mode string, extraEnv ...string) ExternalConfig {
	t.Helper()
	return ExternalConfig{
		Argv:    []string{os.Args[0]},
		Name:    "self-" + mode,
		Env:     append([]string{"BEER_SAT_MODE=" + mode}, extraEnv...),
		Timeout: time.Minute,
		Dir:     t.TempDir(),
	}
}

func TestExternalNotFound(t *testing.T) {
	_, err := NewExternal(ExternalConfig{Argv: []string{"no-such-solver-binary-xyzzy"}})
	if !errors.Is(err, ErrSolverNotFound) {
		t.Fatalf("err = %v, want ErrSolverNotFound", err)
	}
	if _, err := NewExternal(ExternalConfig{}); err == nil {
		t.Fatal("empty argv must error")
	}
}

func TestExternalSolveSAT(t *testing.T) {
	e, err := NewExternal(selfConfig(t, "solve"))
	if err != nil {
		t.Fatal(err)
	}
	x, y := e.NewVar(), e.NewVar()
	e.Add(PosLit(x), PosLit(y))
	e.Add(NegLit(x))
	sat, err := e.Solve()
	if err != nil || !sat {
		t.Fatalf("Solve = %v, %v; want true, nil", sat, err)
	}
	if e.Value(x) || !e.Value(y) {
		t.Fatalf("model = x:%v y:%v, want x:false y:true", e.Value(x), e.Value(y))
	}
	if st := e.Statistics(); st.ExternalRuns != 1 || st.ExternalTimeouts != 0 {
		t.Fatalf("stats = %+v, want 1 run, 0 timeouts", st)
	}
}

func TestExternalSolveUNSATAndReuse(t *testing.T) {
	e, err := NewExternal(selfConfig(t, "solve"))
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x))

	// UNSAT under an assumption: the formula itself stays satisfiable and
	// the backend stays usable, with the full assumption set as the core.
	sat, err := e.SolveUnderAssumptions(NegLit(x))
	if err != nil || sat {
		t.Fatalf("under ~x: got %v, %v; want false, nil", sat, err)
	}
	if got := e.FailedAssumptions(); len(got) != 1 || got[0] != NegLit(x) {
		t.Fatalf("FailedAssumptions = %v, want [~x]", got)
	}
	if sat, err := e.Solve(); err != nil || !sat {
		t.Fatalf("after assumption-UNSAT: Solve = %v, %v; want true, nil", sat, err)
	}

	// Root-level UNSAT latches: a later Solve answers false with no
	// further solver invocations.
	e.Add(NegLit(x))
	if sat, err := e.Solve(); err != nil || sat {
		t.Fatalf("contradictory: got %v, %v; want false, nil", sat, err)
	}
	runs := e.Statistics().ExternalRuns
	if sat, err := e.Solve(); err != nil || sat {
		t.Fatalf("latched: got %v, %v; want false, nil", sat, err)
	}
	if e.Statistics().ExternalRuns != runs {
		t.Fatal("latched UNSAT must not spawn another solver run")
	}
}

func TestExternalLyingSolverCaught(t *testing.T) {
	e, err := NewExternal(selfConfig(t, "lie"))
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x)) // the liar's all-false model violates this
	_, err = e.Solve()
	if err == nil || !strings.Contains(err.Error(), "violating clause") {
		t.Fatalf("err = %v, want model-verification failure", err)
	}
}

func TestExternalGarbageOutput(t *testing.T) {
	e, err := NewExternal(selfConfig(t, "garbage"))
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x))
	_, err = e.Solve()
	if err == nil || !strings.Contains(err.Error(), "no status line") {
		t.Fatalf("err = %v, want no-status-line failure", err)
	}
}

func TestExternalInterrupt(t *testing.T) {
	e, err := NewExternal(selfConfig(t, "sleep"))
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x))
	e.Interrupt(func() bool { return true })
	start := time.Now()
	_, err = e.Solve()
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupt took %v", elapsed)
	}
}

// TestExternalTimeoutDiscardsAndStaysUsable is the HARP-discipline test: a
// run that hits the wall-clock deadline is killed, its answer is discarded
// (ErrTimeout), the timeout is counted, no scratch files leak, and the
// backend remains usable for further calls.
func TestExternalTimeoutDiscardsAndStaysUsable(t *testing.T) {
	scratch := t.TempDir()
	cfg := selfConfig(t, "sleep")
	cfg.Dir = scratch
	cfg.Timeout = 150 * time.Millisecond
	e, err := NewExternal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := e.NewVar()
	e.Add(PosLit(x))

	for call := 1; call <= 2; call++ {
		start := time.Now()
		_, err = e.Solve()
		if err != ErrTimeout {
			t.Fatalf("call %d: err = %v, want ErrTimeout", call, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("call %d: kill took %v", call, elapsed)
		}
	}
	st := e.Statistics()
	if st.ExternalRuns != 2 || st.ExternalTimeouts != 2 {
		t.Fatalf("stats = %+v, want 2 runs / 2 timeouts", st)
	}
	left, err := filepath.Glob(filepath.Join(scratch, "beer-sat-*.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("scratch files leaked: %v", left)
	}

	// SetTimeout(0) restores the config timeout; a per-call override works.
	e.SetTimeout(100 * time.Millisecond)
	if _, err := e.Solve(); err != ErrTimeout {
		t.Fatalf("override: err = %v, want ErrTimeout", err)
	}
}
