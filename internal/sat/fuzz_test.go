package sat

// Fuzz targets for the solver core and the CNF builder, differential-tested
// against a brute-force model enumerator. CI runs them as a short smoke
// (`go test -fuzz FuzzSolver -fuzztime ...`); the committed seed corpus
// lives under testdata/fuzz.

import (
	"errors"
	"testing"
)

// fuzzFormula decodes fuzz bytes into a small CNF: the first byte fixes the
// variable count (3..12), the rest stream literals, with 0xFF closing the
// current clause. Sizes stay small enough that brute force is exact.
func fuzzFormula(data []byte) (nvars int, clauses [][]Lit) {
	if len(data) == 0 {
		return 3, nil
	}
	nvars = 3 + int(data[0]%10)
	var cur []Lit
	for _, b := range data[1:] {
		if b == 0xFF {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
			}
			continue
		}
		v := int(b) % (2 * nvars)
		cur = append(cur, MkLit(v/2, v%2 == 1))
		if len(cur) == 3 {
			clauses = append(clauses, cur)
			cur = nil
		}
		if len(clauses) >= 64 {
			break
		}
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return nvars, clauses
}

// bruteSat reports whether some assignment over nvars variables satisfies
// every clause and every extra unit literal.
func bruteSat(nvars int, clauses [][]Lit, units []Lit) bool {
	for m := 0; m < 1<<uint(nvars); m++ {
		val := func(l Lit) bool { return (m>>uint(l.Var()))&1 == 1 != l.Sign() }
		ok := true
		for _, u := range units {
			if !val(u) {
				ok = false
				break
			}
		}
		for _, cl := range clauses {
			if !ok {
				break
			}
			sat := false
			for _, l := range cl {
				if val(l) {
					sat = true
					break
				}
			}
			ok = ok && sat
		}
		if ok {
			return true
		}
	}
	return false
}

// FuzzSolver differential-tests the CDCL engine (directly and through the
// DIMACS recording backend) against brute force, including assumption
// queries and their no-side-effect contract.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 1, 2, 3, 0xFF, 4, 5})
	f.Add([]byte{0x00, 0, 1}) // x0 OR ~x0 style tautologies
	f.Add([]byte{0x09, 0, 0xFF, 1, 0xFF, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		nvars, clauses := fuzzFormula(data)

		s := NewDimacs(New())
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		for _, cl := range clauses {
			s.Add(cl...)
		}
		got, err := s.Solve()
		if err != nil {
			t.Fatalf("unbudgeted solve errored: %v", err)
		}
		want := bruteSat(nvars, clauses, nil)
		if got != want {
			t.Fatalf("solver=%v brute=%v for nvars=%d clauses=%v", got, want, nvars, clauses)
		}
		if got {
			// The model must actually satisfy every clause.
			for _, cl := range clauses {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) != l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("model violates clause %v", cl)
				}
			}
		}

		// Assumption query: equivalent to unit clauses, without side effects.
		var assumps []Lit
		if len(data) > 2 {
			assumps = append(assumps, MkLit(int(data[1])%nvars, data[2]%2 == 1))
		}
		if len(data) > 4 {
			assumps = append(assumps, MkLit(int(data[3])%nvars, data[4]%2 == 1))
		}
		gotA, err := s.SolveUnderAssumptions(assumps...)
		if err != nil {
			t.Fatalf("assumption solve errored: %v", err)
		}
		if wantA := bruteSat(nvars, clauses, assumps); gotA != wantA {
			t.Fatalf("under %v: solver=%v brute=%v (clauses=%v)", assumps, gotA, wantA, clauses)
		}
		if again, err := s.Solve(); err != nil || again != want {
			t.Fatalf("assumption query changed the formula: resolve=(%v, %v), want (%v, nil)", again, err, want)
		}
	})
}

// FuzzCNFBuilder drives the Tseitin gadget builders (XOR/AND/OR chains over
// fuzz-chosen inputs with fuzz-forced input values) and checks every gadget
// output against its definition in the produced model.
func FuzzCNFBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0b1010, 0, 1, 2, 3})
	f.Add([]byte{7, 0b0110011, 6, 5, 4, 3, 2, 1, 0, 9, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nvars := 2 + int(data[0]%7)
		s := New()
		vals := make([]bool, nvars)
		for i := 0; i < nvars; i++ {
			s.NewVar()
			vals[i] = (data[1]>>uint(i%8))&1 == 1
		}
		// Gadgets over fuzz-chosen input literals.
		type gadget struct {
			out  Lit
			op   byte
			args []Lit
		}
		var gadgets []gadget
		rest := data[2:]
		for len(rest) >= 2 && len(gadgets) < 16 {
			op := rest[0] % 3
			width := 1 + int(rest[1]%3)
			rest = rest[2:]
			var args []Lit
			for i := 0; i < width && i < len(rest); i++ {
				v := int(rest[i]) % (2 * nvars)
				args = append(args, MkLit(v/2, v%2 == 1))
			}
			if len(args) < width {
				break
			}
			rest = rest[width:]
			var out Lit
			switch op {
			case 0:
				out = ReifyXor(s, args...)
			case 1:
				out = ReifyAnd(s, args...)
			case 2:
				out = ReifyOr(s, args...)
			}
			gadgets = append(gadgets, gadget{out: out, op: op, args: args})
		}
		// Force every input variable to its fuzz-chosen value; the gadget
		// definitions must stay satisfiable.
		for i := 0; i < nvars; i++ {
			s.Add(MkLit(i, !vals[i]))
		}
		ok, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("definitional gadgets with forced inputs reported UNSAT (inputs %v)", vals)
		}
		litVal := func(l Lit) bool { return s.Value(l.Var()) != l.Sign() }
		for _, g := range gadgets {
			var want bool
			switch g.op {
			case 0:
				for _, a := range g.args {
					want = want != litVal(a)
				}
			case 1:
				want = true
				for _, a := range g.args {
					want = want && litVal(a)
				}
			case 2:
				for _, a := range g.args {
					want = want || litVal(a)
				}
			}
			if litVal(g.out) != want {
				t.Fatalf("gadget op=%d args=%v: out=%v, definition says %v", g.op, g.args, litVal(g.out), want)
			}
		}
	})
}

// TestFuzzSeedsPass runs the committed corpus logic once under plain `go
// test`, so corpus regressions surface without -fuzz.
func TestFuzzSeedsPass(t *testing.T) {
	nvars, clauses := fuzzFormula([]byte{0x05, 1, 2, 3, 0xFF, 4, 5})
	s := New()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, cl := range clauses {
		s.Add(cl...)
	}
	got, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteSat(nvars, clauses, nil); got != want {
		t.Fatalf("solver=%v brute=%v", got, want)
	}
	if _, err := s.SolveUnderAssumptions(); !errors.Is(err, nil) {
		t.Fatal(err)
	}
}
