// Package noise models imperfect miscorrection-profile observations — the
// paper's §6 true-/false-positive analysis made operational, following
// HARP's per-bit Bernoulli error models (PBEM_25/50/75/100).
//
// The exact recovery pipeline assumes every profile entry is ground truth:
// a bit marked "possible" really can miscorrect, a bit left unmarked never
// does. Real profiling violates both directions. A profiling campaign that
// is too short misses rare miscorrections (true-positive dropout: the
// entry falsely claims "impossible", HARP's PBEM observation probability);
// ordinary retention errors and read noise can masquerade as
// miscorrections (false-positive injection). Either corruption makes the
// exact SAT system unsatisfiable.
//
// Model captures both per-bit Bernoulli rates and perturbs profiles
// deterministically (for simulation-driven evaluation of the noisy
// recovery path — the generator counterpart is einsim's
// ModelPerBitBernoulli, which injects such errors during Monte-Carlo
// simulation). SupportFromCounts scores each profile entry's observation
// support so the drop-k relaxation in core (NoisySolveSession) retracts
// the weakest-supported entries of an UNSAT core first.
package noise

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
)

// Model is a per-bit Bernoulli observation-error model over miscorrection
// profiles: each non-CHARGED bit of each entry is corrupted independently.
type Model struct {
	// FP is the per-bit probability that a truly-impossible bit is
	// falsely marked miscorrection-possible (false-positive injection —
	// e.g. a retention error misattributed to ECC).
	FP float64
	// FN is the per-bit probability that a truly-possible bit loses its
	// mark (true-positive dropout — the miscorrection was never observed;
	// 1 - HARP's per-bit observation probability).
	FN float64
	// Seed makes the perturbation deterministic; models differing only in
	// Seed draw independent corruption patterns.
	Seed uint64
}

// HARP's pre-correction error observation models, expressed as dropout:
// PBEM_N observes each true miscorrection bit with probability N%.
var (
	PBEM25  = Model{FN: 0.75}
	PBEM50  = Model{FN: 0.50}
	PBEM75  = Model{FN: 0.25}
	PBEM100 = Model{FN: 0}
)

// Validate checks the model's rates.
func (m Model) Validate() error {
	if m.FP < 0 || m.FP > 1 || m.FN < 0 || m.FN > 1 {
		return fmt.Errorf("noise: rates must be in [0,1] (fp=%g, fn=%g)", m.FP, m.FN)
	}
	return nil
}

// Zero reports whether the model never corrupts anything.
func (m Model) Zero() bool { return m.FP == 0 && m.FN == 0 }

// Perturb returns a corrupted copy of a profile plus the indexes of the
// entries it changed (ascending). CHARGED positions are never touched —
// they are ambiguous by construction ('?' in the paper's Table 2) and
// carry no constraint. The input profile is not modified. Determinism: the
// corruption depends only on (Model, profile shape), not on call order.
func (m Model) Perturb(p *core.Profile) (*core.Profile, []int) {
	rng := rand.New(rand.NewPCG(m.Seed, 0x9e3779b97f4a7c15))
	out := &core.Profile{K: p.K, Entries: make([]core.Entry, len(p.Entries))}
	var touched []int
	for i, e := range p.Entries {
		ne := core.Entry{Pattern: e.Pattern, Possible: e.Possible.Clone(), Anti: e.Anti}
		changed := false
		for b := 0; b < p.K; b++ {
			if e.Pattern.Has(b) {
				continue
			}
			switch {
			case e.Possible.Get(b):
				if m.FN > 0 && rng.Float64() < m.FN {
					ne.Possible.Set(b, false)
					changed = true
				}
			default:
				if m.FP > 0 && rng.Float64() < m.FP {
					ne.Possible.Set(b, true)
					changed = true
				}
			}
		}
		out.Entries[i] = ne
		if changed {
			touched = append(touched, i)
		}
	}
	return out, touched
}

// Perturber adapts the model to core.RecoverOptions.PerturbProfile: the
// recovery pipeline's injection point between thresholding and solving. A
// zero model returns nil so the exact pipeline stays untouched.
func (m Model) Perturber() func(*core.Profile) *core.Profile {
	if m.Zero() {
		return nil
	}
	return func(p *core.Profile) *core.Profile {
		out, _ := m.Perturb(p)
		return out
	}
}

// SupportFromCounts scores each profile entry's observation support in
// (0, 1], aligned with prof.Entries, for core.NoisyOptions.Support. An
// entry's support is the observation count of its weakest possible-bit
// normalized by the strongest such count across entries — a bit that
// barely cleared the §5.2 threshold (the false-positive signature) drags
// its entry's score down, while entries whose every possible-bit was seen
// often score near 1. Entries with no possible bits score 1: their
// all-impossible claim is backed by the entire word count. The profile
// must be the counts' Threshold output (same entry order).
func SupportFromCounts(c *core.Counts, prof *core.Profile) ([]float64, error) {
	if c == nil || prof == nil {
		return nil, fmt.Errorf("noise: nil counts or profile")
	}
	if len(c.Entries) != len(prof.Entries) || c.K != prof.K {
		return nil, fmt.Errorf("noise: counts (k=%d, %d entries) do not match profile (k=%d, %d entries)",
			c.K, len(c.Entries), prof.K, len(prof.Entries))
	}
	weakest := make([]int64, len(prof.Entries))
	var strongest int64
	for i, e := range prof.Entries {
		ce := c.Entries[i]
		min := int64(-1)
		for b := 0; b < prof.K; b++ {
			if e.Pattern.Has(b) || !e.Possible.Get(b) {
				continue
			}
			if n := ce.Errors[b]; min < 0 || n < min {
				min = n
			}
		}
		weakest[i] = min
		if min > strongest {
			strongest = min
		}
	}
	support := make([]float64, len(prof.Entries))
	for i, w := range weakest {
		switch {
		case w < 0 || strongest == 0:
			support[i] = 1
		default:
			support[i] = float64(w) / float64(strongest)
		}
	}
	return support, nil
}
