package noise

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
)

func testProfile(t *testing.T, k int, seed uint64) (*ecc.Code, *core.Profile) {
	t.Helper()
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(seed, uint64(k))))
	return code, core.ExactProfile(code, core.Set1.Patterns(k))
}

func TestPerturbDeterministic(t *testing.T) {
	_, prof := testProfile(t, 16, 3)
	m := Model{FP: 0.1, FN: 0.2, Seed: 42}
	a, touchedA := m.Perturb(prof)
	b, touchedB := m.Perturb(prof)
	if len(touchedA) != len(touchedB) {
		t.Fatalf("same model touched %d then %d entries", len(touchedA), len(touchedB))
	}
	for i := range touchedA {
		if touchedA[i] != touchedB[i] {
			t.Fatalf("touched lists differ: %v vs %v", touchedA, touchedB)
		}
	}
	for i := range a.Entries {
		if !a.Entries[i].Possible.Equal(b.Entries[i].Possible) {
			t.Fatalf("entry %d differs between identical perturbations", i)
		}
	}
	// A different seed draws an independent corruption pattern.
	c, _ := Model{FP: 0.1, FN: 0.2, Seed: 43}.Perturb(prof)
	same := true
	for i := range a.Entries {
		if !a.Entries[i].Possible.Equal(c.Entries[i].Possible) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical corruption")
	}
}

func TestPerturbDoesNotModifyInput(t *testing.T) {
	_, prof := testProfile(t, 12, 7)
	before := make([]string, len(prof.Entries))
	for i, e := range prof.Entries {
		before[i] = e.Possible.String()
	}
	Model{FP: 1, FN: 1, Seed: 1}.Perturb(prof)
	for i, e := range prof.Entries {
		if e.Possible.String() != before[i] {
			t.Fatalf("Perturb modified input entry %d", i)
		}
	}
}

// TestPerturbChargedInvariant: at the extreme rates every non-CHARGED bit
// flips and every CHARGED bit stays — CHARGED positions are ambiguous by
// construction and must never be corrupted.
func TestPerturbChargedInvariant(t *testing.T) {
	_, prof := testProfile(t, 10, 5)
	out, touched := Model{FP: 1, FN: 1, Seed: 9}.Perturb(prof)
	if len(touched) != len(prof.Entries) {
		t.Fatalf("rates 1/1 touched %d of %d entries", len(touched), len(prof.Entries))
	}
	for i, e := range prof.Entries {
		ne := out.Entries[i]
		for b := 0; b < prof.K; b++ {
			got, want := ne.Possible.Get(b), e.Possible.Get(b)
			if e.Pattern.Has(b) {
				if got != want {
					t.Fatalf("entry %d: CHARGED bit %d changed", i, b)
				}
			} else if got == want {
				t.Fatalf("entry %d: non-CHARGED bit %d survived rates 1/1", i, b)
			}
		}
	}
}

func TestZeroModel(t *testing.T) {
	if !(Model{}).Zero() || (Model{FP: 0.1}).Zero() {
		t.Fatal("Zero() misclassifies")
	}
	if (Model{Seed: 99}).Perturber() != nil {
		t.Fatal("zero model must yield a nil Perturber")
	}
	_, prof := testProfile(t, 8, 1)
	out, touched := (Model{}).Perturb(prof)
	if len(touched) != 0 {
		t.Fatalf("zero model touched entries %v", touched)
	}
	for i := range prof.Entries {
		if !out.Entries[i].Possible.Equal(prof.Entries[i].Possible) {
			t.Fatalf("zero model changed entry %d", i)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, m := range []Model{{}, {FP: 1, FN: 1}, PBEM25, PBEM50, PBEM75, PBEM100} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
	}
	for _, m := range []Model{{FP: -0.1}, {FN: 1.5}} {
		if err := m.Validate(); err == nil {
			t.Fatalf("%+v validated", m)
		}
	}
}

// TestSupportFromCounts: an entry whose weakest possible-bit observation
// count is far below the strongest entry's scores proportionally low — the
// false-positive signature of a bit that barely cleared the threshold.
func TestSupportFromCounts(t *testing.T) {
	_, prof := testProfile(t, 8, 11)
	counts := &core.Counts{K: prof.K}
	weak := -1
	for i, e := range prof.Entries {
		ce := core.CountEntry{Pattern: e.Pattern, Errors: make([]int64, prof.K), Words: 1000}
		hasPossible := false
		for b := 0; b < prof.K; b++ {
			if e.Possible.Get(b) && !e.Pattern.Has(b) {
				ce.Errors[b] = 200
				hasPossible = true
			}
		}
		if hasPossible && weak < 0 {
			weak = i
			for b := 0; b < prof.K; b++ {
				if ce.Errors[b] > 0 {
					ce.Errors[b] = 10 // barely above threshold
					break
				}
			}
		}
		counts.Entries = append(counts.Entries, ce)
	}
	if weak < 0 {
		t.Fatal("profile has no entry with possible bits")
	}
	support, err := SupportFromCounts(counts, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(support) != len(prof.Entries) {
		t.Fatalf("support length %d, want %d", len(support), len(prof.Entries))
	}
	for i, s := range support {
		switch {
		case i == weak:
			if s != 10.0/200.0 {
				t.Fatalf("weak entry %d scored %v, want 0.05", i, s)
			}
		case s != 1 && s != 10.0/200.0:
			// Entries with no possible bits and full-strength entries both
			// score 1 (or the weak ratio if they happen to share bit counts).
			t.Fatalf("entry %d scored %v", i, s)
		}
	}

	// Shape mismatches are rejected.
	if _, err := SupportFromCounts(counts, &core.Profile{K: prof.K}); err == nil {
		t.Fatal("entry-count mismatch accepted")
	}
	if _, err := SupportFromCounts(nil, prof); err == nil {
		t.Fatal("nil counts accepted")
	}
}

// TestPerturbThenNoisySolveRecovers is the package-level integration: a
// false-positive Model corrupts an exact 1-CHARGED profile, and the drop-k
// engine — steered by support scores shaped like SupportFromCounts output —
// retracts the corrupted entries and recovers the ground truth.
func TestPerturbThenNoisySolveRecovers(t *testing.T) {
	code, prof := testProfile(t, 24, 17)
	m := Model{FP: 0.01, Seed: 23}
	corrupted, touched := m.Perturb(prof)
	if len(touched) == 0 {
		t.Skip("model touched nothing at this seed; pick another")
	}
	support := make([]float64, len(corrupted.Entries))
	for i := range support {
		support[i] = 1
	}
	for _, i := range touched {
		support[i] = 0.2
	}
	res, err := core.SolveNoisy(context.Background(), corrupted, core.SolveOptions{
		ParityBits:   code.ParityBits(),
		MaxSolutions: -1,
		Noisy:        &core.NoisyOptions{MaxDrop: -1, Support: support},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Codes {
		if c.EquivalentTo(code) {
			found = true
		}
	}
	if !found {
		t.Fatalf("ground truth not recovered (%d candidates, dropped %v)",
			len(res.Codes), res.Noise.DroppedEntries)
	}
	if res.Noise.Dropped == 0 || res.Noise.Dropped > len(touched) {
		t.Fatalf("dropped %d entries, model corrupted %d", res.Noise.Dropped, len(touched))
	}
}
