package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// The integration tests build a real cluster in one process: a coordinator
// behind an httptest server and workers that are complete service.Servers
// with running cluster agents. Killing a worker closes its listener and
// stops its heartbeats — from the coordinator's side indistinguishable
// from a crashed process.

type testCluster struct {
	t       *testing.T
	coord   *Coordinator
	server  *service.Server
	hub     *obs.Hub
	ts      *httptest.Server
	workers map[string]*testWorker
}

type testWorker struct {
	id     string
	srv    *service.Server
	hub    *obs.Hub
	agent  *Worker
	ts     *httptest.Server
	cancel context.CancelFunc
	dead   bool
}

func startTestCluster(t *testing.T) *testCluster {
	t.Helper()
	st := store.New(store.NewMemBackend())
	hub := obs.NewTestHub(t.Logf)
	coord := NewCoordinator(st, CoordinatorConfig{
		HeartbeatEvery: 50 * time.Millisecond,
		TTL:            250 * time.Millisecond,
		PollInterval:   10 * time.Millisecond,
		DispatchWait:   10 * time.Second,
		Obs:            hub,
	})
	srv := service.New(repro.NewEngine(2),
		service.WithStore(st), service.WithExecutor(coord), service.WithObservability(hub))
	ts := httptest.NewServer(coord.Handler(srv.Handler()))
	tc := &testCluster{t: t, coord: coord, server: srv, hub: hub, ts: ts, workers: make(map[string]*testWorker)}
	t.Cleanup(func() {
		for _, w := range tc.workers {
			tc.kill(w.id)
		}
		ts.Close()
		srv.Close()
	})
	return tc
}

// addWorker boots a worker with the given id and admission cap (0 =
// unlimited) and waits until the coordinator sees it live.
func (tc *testCluster) addWorker(id string, maxJobs int) *testWorker {
	tc.t.Helper()
	return tc.addWorkerStore(id, maxJobs, store.New(store.NewMemBackend()))
}

// addWorkerStore is addWorker over a caller-provided (possibly pre-warmed)
// store.
func (tc *testCluster) addWorkerStore(id string, maxJobs int, st *store.Store) *testWorker {
	tc.t.Helper()
	hub := obs.NewTestHub(tc.t.Logf)
	opts := []service.Option{
		service.WithStore(st),
		service.WithSolveCacheTier(NewRemoteCache(tc.ts.URL, id)),
		service.WithObservability(hub),
	}
	if maxJobs > 0 {
		opts = append(opts, service.WithMaxConcurrent(maxJobs))
	}
	srv := service.New(repro.NewEngine(2), opts...)
	wts := httptest.NewServer(RegistryHandler(st, srv.Handler()))
	agent, err := NewWorker(WorkerConfig{
		ID:             id,
		CoordinatorURL: tc.ts.URL,
		AdvertiseURL:   wts.URL,
		Capacity:       maxJobs,
		HeartbeatEvery: 50 * time.Millisecond,
		Obs:            hub,
	}, srv)
	if err != nil {
		tc.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = agent.Run(ctx) }()
	w := &testWorker{id: id, srv: srv, hub: hub, agent: agent, ts: wts, cancel: cancel}
	tc.workers[id] = w
	tc.waitFor("worker "+id+" live", 5*time.Second, func() bool { return tc.coord.Registry().Alive(id) })
	return w
}

// kill simulates a crash: stop heartbeats, sever every connection, close
// the listener, cancel the jobs. No drain, no deregistration.
func (tc *testCluster) kill(id string) {
	w, ok := tc.workers[id]
	if !ok || w.dead {
		return
	}
	w.dead = true
	w.cancel()
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.srv.Close()
}

func (tc *testCluster) waitFor(what string, timeout time.Duration, cond func() bool) {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			tc.t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (tc *testCluster) submit(spec service.JobSpec) service.JobStatus {
	tc.t.Helper()
	var status service.JobStatus
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := doJSON(ctx, http.DefaultClient, http.MethodPost, tc.ts.URL+"/api/v1/jobs", spec, &status); err != nil {
		tc.t.Fatalf("submit: %v", err)
	}
	return status
}

func (tc *testCluster) status(id string) service.JobStatus {
	tc.t.Helper()
	var st service.JobStatus
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := doJSON(ctx, http.DefaultClient, http.MethodGet, tc.ts.URL+"/api/v1/jobs/"+id, nil, &st); err != nil {
		tc.t.Fatalf("status %s: %v", id, err)
	}
	return st
}

func (tc *testCluster) result(id string) service.JobResult {
	tc.t.Helper()
	var res service.JobResult
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := doJSON(ctx, http.DefaultClient, http.MethodGet, tc.ts.URL+"/api/v1/jobs/"+id+"/result", nil, &res); err != nil {
		tc.t.Fatalf("result %s: %v", id, err)
	}
	return res
}

// waitTerminal polls a job to a terminal state.
func (tc *testCluster) waitTerminal(id string, timeout time.Duration) service.JobStatus {
	tc.t.Helper()
	var st service.JobStatus
	tc.waitFor("job "+id+" terminal", timeout, func() bool {
		st = tc.status(id)
		return st.State.Terminal()
	})
	return st
}

func recoverSpec(mfr string, k int, seed uint64) service.JobSpec {
	return service.JobSpec{Type: "recover", Manufacturer: mfr, K: k, Chips: 2, Seed: seed, Verify: true}
}

func assertVerified(t *testing.T, res service.JobResult) {
	t.Helper()
	if res.Recover == nil {
		t.Fatal("no recovery payload")
	}
	if !res.Recover.Unique {
		t.Fatalf("not unique: %d candidates", res.Recover.Candidates)
	}
	if res.Recover.GroundTruthMatch == nil || !*res.Recover.GroundTruthMatch {
		t.Fatal("ground truth mismatch")
	}
}

// TestClusterFailover kills the only worker mid-job and verifies the job
// completes, ground-truth-verified, on a worker that joined after the
// death — the full redispatch path, deterministically.
func TestClusterFailover(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 0)

	status := tc.submit(recoverSpec("B", 16, 1))

	// Wait until the job is observably executing on w1, then crash it.
	tc.waitFor("job executing on w1", 10*time.Second, func() bool {
		st := tc.status(status.ID)
		return st.Progress.Worker == "w1" && st.Progress.Updates > 0
	})
	tc.kill("w1")
	t.Log("killed w1 mid-job; starting w2")
	tc.addWorker("w2", 0)

	final := tc.waitTerminal(status.ID, 60*time.Second)
	if final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Progress.Worker != "w2" {
		t.Fatalf("job finished on %q, want w2", final.Progress.Worker)
	}
	if final.Progress.Dispatches < 2 {
		t.Fatalf("job reports %d dispatches, want >= 2 (a failover)", final.Progress.Dispatches)
	}
	assertVerified(t, tc.result(status.ID))
	if got := tc.coord.failovers.Load(); got < 1 {
		t.Fatalf("coordinator counted %d failovers, want >= 1", got)
	}
}

// TestClusterDedupeAcrossWorkerDeath: solve a profile on one worker, kill
// that worker, then submit a job observing the identical profile (fresh
// chip seed). It must complete on the survivor with zero SAT solver
// invocations — the record flowed worker → coordinator (push) → survivor
// (remote tier lookup).
func TestClusterDedupeAcrossWorkerDeath(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 0)
	tc.addWorker("w2", 0)

	first := tc.submit(recoverSpec("B", 16, 1))
	st := tc.waitTerminal(first.ID, 60*time.Second)
	if st.State != service.StateSucceeded {
		t.Fatalf("first job finished %s: %s", st.State, st.Error)
	}
	assertVerified(t, tc.result(first.ID))
	solver := st.Progress.Worker
	if solver != "w1" && solver != "w2" {
		t.Fatalf("first job ran on unknown worker %q", solver)
	}
	survivorID := "w1"
	if solver == "w1" {
		survivorID = "w2"
	}
	survivor := tc.workers[survivorID]
	if inv, _ := survivor.srv.SolveCounters(); inv != 0 {
		t.Fatalf("survivor %s already ran %d solves", survivorID, inv)
	}

	// The push half of registry sync must have landed the record on the
	// coordinator before the solver dies.
	hash := tc.result(first.ID).Recover.ProfileHash
	tc.waitFor("record synced to coordinator", 5*time.Second, func() bool {
		_, ok, err := tc.coord.store.GetCode(hash)
		return err == nil && ok
	})
	tc.kill(solver)
	t.Logf("first solve on %s (now dead); identical profile goes to %s", solver, survivorID)

	second := tc.submit(recoverSpec("B", 16, 9)) // fresh chips, identical profile
	st2 := tc.waitTerminal(second.ID, 60*time.Second)
	if st2.State != service.StateSucceeded {
		t.Fatalf("second job finished %s: %s", st2.State, st2.Error)
	}
	res2 := tc.result(second.ID)
	assertVerified(t, res2)
	if res2.Recover.ProfileHash != hash {
		t.Fatalf("second job observed profile %s, want %s", res2.Recover.ProfileHash, hash)
	}
	if st2.Progress.Worker != survivorID {
		t.Fatalf("second job ran on %q, want survivor %s", st2.Progress.Worker, survivorID)
	}
	invocations, hits := survivor.srv.SolveCounters()
	if invocations != 0 {
		t.Fatalf("survivor ran %d SAT solves for an already-solved profile", invocations)
	}
	if hits != 1 {
		t.Fatalf("survivor reported %d cache hits, want 1 (the remote tier)", hits)
	}
}

// TestClusterAffinityDedupe: with a stable fleet, two jobs observing the
// same profile route to the same worker, and the second is served from
// that worker's local cache — zero duplicate solver invocations
// fleet-wide.
func TestClusterAffinityDedupe(t *testing.T) {
	tc := startTestCluster(t)
	w1 := tc.addWorker("w1", 0)
	w2 := tc.addWorker("w2", 0)

	first := tc.submit(recoverSpec("C", 8, 1))
	st1 := tc.waitTerminal(first.ID, 60*time.Second)
	if st1.State != service.StateSucceeded {
		t.Fatalf("first job finished %s: %s", st1.State, st1.Error)
	}
	second := tc.submit(recoverSpec("C", 8, 5))
	st2 := tc.waitTerminal(second.ID, 60*time.Second)
	if st2.State != service.StateSucceeded {
		t.Fatalf("second job finished %s: %s", st2.State, st2.Error)
	}
	if st1.Progress.Worker != st2.Progress.Worker {
		t.Fatalf("identical profiles routed to different workers: %s vs %s",
			st1.Progress.Worker, st2.Progress.Worker)
	}
	inv1, _ := w1.srv.SolveCounters()
	inv2, _ := w2.srv.SolveCounters()
	if inv1+inv2 != 1 {
		t.Fatalf("fleet ran %d SAT solves for one profile, want exactly 1", inv1+inv2)
	}
	assertVerified(t, tc.result(first.ID))
	assertVerified(t, tc.result(second.ID))
}

// TestClusterBackpressureSpill: two workers capped at one job each still
// complete a burst of four distinct jobs — saturation answers (429 +
// Retry-After) make the dispatcher spill and back off rather than fail.
func TestClusterBackpressureSpill(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 1)
	tc.addWorker("w2", 1)

	specs := []service.JobSpec{
		recoverSpec("A", 8, 1),
		recoverSpec("B", 8, 1),
		recoverSpec("C", 8, 1),
		recoverSpec("B", 16, 1),
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = tc.submit(spec).ID
	}
	for _, id := range ids {
		st := tc.waitTerminal(id, 120*time.Second)
		if st.State != service.StateSucceeded {
			t.Fatalf("%s finished %s: %s", id, st.State, st.Error)
		}
		assertVerified(t, tc.result(id))
	}
}

// TestWorkerReregisters: a coordinator that forgot a worker (restart)
// re-learns it from the heartbeat 404 → re-register path.
func TestWorkerReregisters(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 0)
	tc.coord.Registry().Deregister("w1", nil) // simulate a coordinator wipe
	tc.waitFor("w1 re-registered", 5*time.Second, func() bool {
		return tc.coord.Registry().Alive("w1")
	})
}

// TestRegistrySweepReconcilesPrewarmedStore: a worker that joins with
// records the coordinator has never seen — including an
// unsatisfiable-profile record, which the public /codes listing omits —
// gets fully reconciled by the heartbeat-triggered pull sweep.
func TestRegistrySweepReconcilesPrewarmedStore(t *testing.T) {
	tc := startTestCluster(t)

	st := store.New(store.NewMemBackend())
	unsat := &store.CodeRecord{ProfileHash: "feedfeed", K: 16, Exhausted: true}
	if err := st.PutCode(unsat); err != nil {
		t.Fatal(err)
	}
	code := repro.Hamming74()
	text, err := code.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	solved := &store.CodeRecord{
		ProfileHash: "cafecafe",
		K:           code.K(),
		N:           code.N(),
		Codes:       []string{string(text)},
		Unique:      true,
		Source:      "prewarmed",
	}
	if err := st.PutCode(solved); err != nil {
		t.Fatal(err)
	}

	tc.addWorkerStore("w1", 0, st)
	for _, hash := range []string{"feedfeed", "cafecafe"} {
		tc.waitFor("record "+hash+" pulled", 5*time.Second, func() bool {
			_, ok, err := tc.coord.store.GetCode(hash)
			return err == nil && ok
		})
	}
	if got := tc.coord.syncPulls.Load(); got != 2 {
		t.Fatalf("coordinator pulled %d records, want 2", got)
	}
}

// TestClusterProgressAggregation: a remotely executing job streams
// non-trivial per-stage progress through the coordinator's status
// endpoint.
func TestClusterProgressAggregation(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 0)

	status := tc.submit(recoverSpec("B", 16, 1))
	sawCollect := false
	tc.waitFor("job terminal", 60*time.Second, func() bool {
		st := tc.status(status.ID)
		if st.Progress.Collect.Count > 0 {
			sawCollect = true
		}
		return st.State.Terminal()
	})
	final := tc.status(status.ID)
	if final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	p := final.Progress
	if !sawCollect && p.Collect.Count == 0 {
		t.Fatal("no collection progress ever surfaced through the coordinator")
	}
	if !p.Discover.Done || !p.Collect.Done || !p.Solve.Done {
		t.Fatalf("terminal job with unfinished stages: %+v", p)
	}
	if p.Worker != "w1" || p.Dispatches != 1 {
		t.Fatalf("progress attribution wrong: worker=%q dispatches=%d", p.Worker, p.Dispatches)
	}
}
