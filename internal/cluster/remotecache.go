package cluster

import (
	"context"
	"net/http"
	"time"

	"repro"
	"repro/internal/store"
)

// RemoteCache is the worker-side repro.SolveCache over the coordinator's
// code registry — the tier a worker layers behind its local store
// (service.WithSolveCacheTier). Lookup asks the coordinator for the
// profile hash before the worker runs its own SAT search, so a profile
// solved anywhere in the fleet — including on a worker that has since
// died — is never solved twice; Store pushes every fresh local solve up,
// which is how the coordinator's GET /codes becomes the union of the
// fleet's recoveries. Both directions are best-effort: a worker cut off
// from its coordinator degrades to local caching, and the coordinator's
// heartbeat-triggered pull sweep reconciles missed pushes later.
type RemoteCache struct {
	base   string // coordinator base URL
	source string // provenance label for pushed records (the worker ID)
	client *http.Client
}

// remoteLookupTimeout bounds how long a solve may stall on an unreachable
// coordinator before falling through to the local SAT search.
const remoteLookupTimeout = 3 * time.Second

// remoteStoreTimeout bounds the push of a fresh solve.
const remoteStoreTimeout = 5 * time.Second

// NewRemoteCache builds the tier for a worker identified by source,
// against the coordinator at base.
func NewRemoteCache(base, source string) *RemoteCache {
	// No client-level timeout: Lookup and Store each bound themselves with a
	// per-call context. The shared pooled transport keeps the worker→
	// coordinator connection warm between solves.
	return &RemoteCache{base: base, source: source, client: newHTTPClient(0)}
}

// Lookup implements repro.SolveCache. Every failure — network, 404,
// unparsable record — is a miss.
func (c *RemoteCache) Lookup(p *repro.Profile) (*repro.SolveResult, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), remoteLookupTimeout)
	defer cancel()
	var rec store.CodeRecord
	if err := doJSON(ctx, c.client, http.MethodGet, c.base+PathCodes+"/"+p.Hash(), nil, &rec); err != nil {
		return nil, false
	}
	res, err := rec.Result()
	if err != nil {
		return nil, false
	}
	return res, true
}

// Store implements repro.SolveCache: push the solved record to the
// coordinator, labeled with this worker's identity. The coordinator keeps
// the first valid record per hash, so concurrent identical solves race
// benignly.
func (c *RemoteCache) Store(p *repro.Profile, res *repro.SolveResult) {
	ctx, cancel := context.WithTimeout(context.Background(), remoteStoreTimeout)
	defer cancel()
	rec := store.RecordFromResult(p.Hash(), p.K, res, c.source)
	_ = doJSON(ctx, c.client, http.MethodPost, c.base+PathCodes, rec, nil)
}

var _ repro.SolveCache = (*RemoteCache)(nil)
