package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestDrainedWorkerCountersFoldIntoFleet: the regression the /healthz
// cluster block used to have — a worker deregistering during a graceful
// drain took its solver counters with it, so fleet totals dropped. The
// departure request's final counters must survive in the aggregate after
// the member row is gone.
func TestDrainedWorkerCountersFoldIntoFleet(t *testing.T) {
	tc := startTestCluster(t)
	w := tc.addWorker("w1", 0)

	st := tc.submit(recoverSpec("B", 8, 1))
	if final := tc.waitTerminal(st.ID, 120*time.Second); final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	want := w.srv.SolverTotals()
	if want.Invocations == 0 {
		t.Fatal("worker reports zero solver invocations after a successful recovery")
	}

	// Graceful departure, the cmd/beerd shutdown order: stop the heartbeat
	// loop first (so the 404 → re-register path cannot resurrect the
	// member), then deregister with the final counters.
	w.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.agent.Deregister(ctx); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if _, ok := tc.coord.Registry().Get("w1"); ok {
		t.Fatal("w1 still in the membership table after deregister")
	}

	fleet := tc.coord.Registry().FleetSolver()
	if fleet.Invocations < want.Invocations || fleet.Conflicts < want.Conflicts {
		t.Fatalf("fleet totals dropped the drained worker's counters: fleet %+v, worker had %+v", fleet, want)
	}
	hs := tc.coord.HealthStats()
	got, ok := hs["fleet_solver"].(service.SolverTotals)
	if !ok {
		t.Fatalf("healthz cluster block has no fleet_solver (got %T)", hs["fleet_solver"])
	}
	if got.Invocations < want.Invocations {
		t.Fatalf("healthz fleet_solver lost the drained worker: %+v < %+v", got, want)
	}
}

// TestTracePropagationAcrossDispatch: a traceparent submitted to the
// coordinator must come back out in the coordinator's dispatch span AND in
// the worker's execution spans — one TraceID stitched across both
// processes' ring buffers.
func TestTracePropagationAcrossDispatch(t *testing.T) {
	tc := startTestCluster(t)
	w := tc.addWorker("w1", 0)

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	wantTrace := "4bf92f3577b34da6a3ce929d0e0e4736"

	var status service.JobStatus
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	header := http.Header{obs.TraceparentHeader: []string{parent}}
	if err := doJSONHeader(ctx, http.DefaultClient, http.MethodPost,
		tc.ts.URL+"/api/v1/jobs", header, recoverSpec("B", 8, 2), &status); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if final := tc.waitTerminal(status.ID, 120*time.Second); final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	// Spans commit on End, which can trail the terminal status poll by a
	// beat on each side; poll instead of asserting a snapshot.
	spanNames := func(tr *obs.Tracer) map[string]bool {
		names := make(map[string]bool)
		for _, sp := range tr.Spans() {
			if sp.TraceID == wantTrace {
				names[sp.Name] = true
			}
		}
		return names
	}
	tc.waitFor("coordinator spans in trace", 5*time.Second, func() bool {
		names := spanNames(tc.hub.Tracer)
		return names["beerd.job"] && names["cluster.dispatch"]
	})
	tc.waitFor("worker spans in trace", 5*time.Second, func() bool {
		names := spanNames(w.hub.Tracer)
		return names["beerd.job"] && names["stage.solve"]
	})
}
