package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over worker IDs. Each member projects
// `replicas` virtual points onto a 64-bit circle; a key routes to the
// member owning the first point at or after the key's own hash, and the
// ring can enumerate the distinct members onward from there — the failover
// order. With enough virtual points the keyspace splits roughly evenly,
// and adding or removing one member only moves the keys adjacent to its
// points (the property that keeps the rest of the fleet's solve caches hot
// through membership churn).
//
// A Ring is immutable; the Registry rebuilds it on membership change. The
// zero value routes nothing.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// ringReplicas is the virtual-point count per member. 64 points over a
// fleet of tens of workers keeps the per-member keyspace share within a
// few percent of even — plenty for job-granularity sharding.
const ringReplicas = 64

// NewRing builds a ring over the given member IDs.
func NewRing(ids []string) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(ids)*ringReplicas)}
	var buf [8]byte
	for _, id := range ids {
		for i := 0; i < ringReplicas; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			h := sha256.New()
			h.Write([]byte(id))
			h.Write([]byte{'#'})
			h.Write(buf[:])
			r.points = append(r.points, ringPoint{hash: ringHashSum(h.Sum(nil)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // deterministic on (vanishingly rare) collisions
	})
	return r
}

func ringHashSum(sum []byte) uint64 { return binary.BigEndian.Uint64(sum[:8]) }

func ringHashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return ringHashSum(sum[:])
}

// Sequence returns every distinct member in ring order starting from the
// key's position: the first entry is the key's owner, the rest are the
// failover candidates in the order a dispatcher should try them. The
// result is deterministic for a given membership and key.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// Owner returns the key's primary member ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
