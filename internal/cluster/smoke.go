package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/internal/ecc"
	"repro/internal/obs"
	"repro/internal/service"
)

// SmokeConfig parameterizes the cluster acceptance check.
type SmokeConfig struct {
	// BaseURL is the coordinator to exercise.
	BaseURL string
	// Jobs is how many distinct-profile recovery jobs phase A submits
	// (default 8). Phase B resubmits the same profiles under fresh chip
	// seeds for the dedupe assertion.
	Jobs int
	// PollInterval between status polls (default 25ms).
	PollInterval time.Duration
	// KillWorker, when set, is invoked once — as soon as a job is observed
	// executing on a worker — with that worker's ID; it must kill the
	// worker's process hard (SIGKILL, no drain). The smoke then requires a
	// failover to be observed. Nil skips the kill (plain cluster smoke).
	KillWorker func(id string) error
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// smokeSpec pairs a submission with its ground truth.
type smokeSpec struct {
	spec  service.JobSpec
	truth *repro.Code
}

// smokeSpecs builds n recovery specs with pairwise-distinct miscorrection
// profiles (distinct manufacturer/k combinations; k stays within the range
// the default 48-minute sweep recovers uniquely), so phase A spreads
// across the ring and every profile is solved exactly once fleet-wide.
// Combinations repeat past 9 jobs.
func smokeSpecs(n int, seed uint64) []smokeSpec {
	mfrs := []repro.Manufacturer{repro.MfrA, repro.MfrB, repro.MfrC}
	ks := []int{8, 16, 24}
	out := make([]smokeSpec, 0, n)
	for i := 0; len(out) < n; i++ {
		k := ks[i%len(ks)]
		for _, m := range mfrs {
			if len(out) == n {
				break
			}
			out = append(out, smokeSpec{
				spec: service.JobSpec{
					Type:         "recover",
					Manufacturer: string(m),
					K:            k,
					Chips:        2,
					Seed:         seed,
					Verify:       true,
				},
				truth: repro.GroundTruth(repro.SimulatedChip(m, k, seed)),
			})
		}
	}
	return out
}

// Smoke drives a live cluster end to end (make cluster-smoke / CI):
//
//   - Phase A submits Jobs recovery jobs with pairwise-distinct
//     miscorrection profiles against the coordinator, kills one executing
//     worker mid-run (KillWorker), and asserts every job still completes,
//     ground-truth-verified, with at least one failover observed and
//     every profile synced into the coordinator's registry.
//   - Phase B resubmits the same profiles under fresh chip seeds and
//     asserts the fleet performs zero additional SAT solver invocations —
//     identical profiles are served from the solve caches (local or
//     remote) wherever they land, including profiles whose only solve
//     happened on the worker that is now dead.
func Smoke(ctx context.Context, cfg SmokeConfig) error {
	if cfg.Jobs == 0 {
		cfg.Jobs = 8
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if err := doJSON(ctx, client, http.MethodGet, cfg.BaseURL+"/healthz", nil, new(map[string]any)); err != nil {
		return fmt.Errorf("coordinator healthz: %w", err)
	}

	specs := smokeSpecs(cfg.Jobs, 1)
	logf("phase A: submitting %d distinct-profile recovery jobs", len(specs))
	if err := runSmokePhase(ctx, client, cfg, logf, specs, cfg.KillWorker != nil); err != nil {
		return fmt.Errorf("phase A: %w", err)
	}

	if cfg.KillWorker != nil {
		var health struct {
			Cluster struct {
				Failovers int64 `json:"failovers"`
			} `json:"cluster"`
		}
		if err := doJSON(ctx, client, http.MethodGet, cfg.BaseURL+"/healthz", nil, &health); err != nil {
			return fmt.Errorf("healthz after phase A: %w", err)
		}
		if health.Cluster.Failovers == 0 {
			return fmt.Errorf("killed a busy worker but the coordinator reports zero failovers")
		}
		logf("phase A: %d failover(s) observed", health.Cluster.Failovers)
	}

	// Registry sync: every distinct profile must be in the coordinator's
	// public registry before phase B leans on it.
	var codes struct {
		Codes []service.CodeListing `json:"codes"`
	}
	if err := doJSON(ctx, client, http.MethodGet, cfg.BaseURL+"/codes", nil, &codes); err != nil {
		return fmt.Errorf("coordinator /codes: %w", err)
	}
	if len(codes.Codes) < len(specs) {
		return fmt.Errorf("registry sync incomplete: coordinator has %d codes, want >= %d", len(codes.Codes), len(specs))
	}
	logf("registry sync: coordinator serves %d recovered codes", len(codes.Codes))

	before, err := fleetSolverInvocations(ctx, client, cfg.BaseURL)
	if err != nil {
		return err
	}
	dupes := smokeSpecs(cfg.Jobs, 11) // same profiles, fresh chips
	logf("phase B: resubmitting the same %d profiles under fresh chip seeds (fleet at %d solver invocations)", len(dupes), before)
	if err := runSmokePhase(ctx, client, cfg, logf, dupes, false); err != nil {
		return fmt.Errorf("phase B: %w", err)
	}
	after, err := fleetSolverInvocations(ctx, client, cfg.BaseURL)
	if err != nil {
		return err
	}
	if after != before {
		return fmt.Errorf("duplicate solver invocations: fleet went from %d to %d SAT runs on identical profiles", before, after)
	}
	logf("phase B: zero duplicate solver invocations (fleet still at %d)", after)

	if err := metricsSmoke(ctx, client, cfg.BaseURL, logf); err != nil {
		return err
	}
	return tracesSmoke(ctx, client, cfg.BaseURL, logf)
}

// metricsSmoke scrapes /metrics on the coordinator and every live worker,
// failing on malformed exposition or missing key families. The coordinator
// must additionally expose its cluster counters with the run's dispatches
// on them.
func metricsSmoke(ctx context.Context, client *http.Client, base string, logf func(string, ...any)) error {
	fams, err := service.MetricsSmoke(ctx, client, base,
		"beerd_cluster_dispatches_total",
		"beerd_cluster_failovers_total",
		"beerd_cluster_spills_total",
		"beerd_cluster_workers_live",
		"beerd_cluster_workers_registered",
	)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	dispatches := 0.0
	if f := fams["beerd_cluster_dispatches_total"]; f != nil {
		for _, s := range f.Samples {
			dispatches += s.Value
		}
	}
	if dispatches < 1 {
		return fmt.Errorf("coordinator /metrics reports zero dispatches after a full smoke")
	}
	logf("metrics: coordinator exposition valid (%.0f dispatches)", dispatches)

	var fleet struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := doJSON(ctx, client, http.MethodGet, base+PathWorkers, nil, &fleet); err != nil {
		return fmt.Errorf("listing workers: %w", err)
	}
	scraped := 0
	for _, w := range fleet.Workers {
		if !w.Alive {
			continue
		}
		if _, err := service.MetricsSmoke(ctx, client, w.URL); err != nil {
			return fmt.Errorf("worker %s: %w", w.ID, err)
		}
		scraped++
	}
	if scraped == 0 {
		return fmt.Errorf("no live worker to scrape /metrics from")
	}
	logf("metrics: exposition valid on %d live worker(s)", scraped)
	return nil
}

// tracesSmoke asserts the cross-process stitch: some dispatch span in the
// coordinator's /debug/traces must share its TraceID with an execution
// span in the executing worker's /debug/traces — one trace spanning the
// submit → dispatch → worker-solve chain over real sockets.
func tracesSmoke(ctx context.Context, client *http.Client, base string, logf func(string, ...any)) error {
	var fleet struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := doJSON(ctx, client, http.MethodGet, base+PathWorkers, nil, &fleet); err != nil {
		return fmt.Errorf("listing workers: %w", err)
	}
	alive := make(map[string]string) // id -> URL
	for _, w := range fleet.Workers {
		if w.Alive {
			alive[w.ID] = w.URL
		}
	}

	var dump obs.TraceDump
	if err := doJSON(ctx, client, http.MethodGet, base+"/debug/traces", nil, &dump); err != nil {
		return fmt.Errorf("coordinator /debug/traces: %w", err)
	}
	for _, sp := range dump.Spans {
		if sp.Name != "cluster.dispatch" || sp.Error != "" {
			continue
		}
		workerURL, ok := alive[sp.Attrs["worker"]]
		if !ok {
			continue // dispatched to a since-killed worker
		}
		var wdump obs.TraceDump
		url := workerURL + "/debug/traces?trace_id=" + sp.TraceID
		if err := doJSON(ctx, client, http.MethodGet, url, nil, &wdump); err != nil {
			return fmt.Errorf("worker %s /debug/traces: %w", sp.Attrs["worker"], err)
		}
		for _, wsp := range wdump.Spans {
			if wsp.TraceID == sp.TraceID {
				logf("traces: trace %s stitched across coordinator (%s) and worker %s (%s)",
					sp.TraceID, sp.Name, sp.Attrs["worker"], wsp.Name)
				return nil
			}
		}
	}
	return fmt.Errorf("no coordinator dispatch span found whose TraceID also appears on a live worker (%d coordinator spans, %d live workers)",
		len(dump.Spans), len(alive))
}

// runSmokePhase submits the specs, polls them to completion with
// monotonicity checks, optionally kills the first observed executing
// worker, and verifies every result against its ground truth.
func runSmokePhase(ctx context.Context, client *http.Client, cfg SmokeConfig, logf func(string, ...any), specs []smokeSpec, kill bool) error {
	ids := make([]string, len(specs))
	for i, s := range specs {
		var status service.JobStatus
		if err := doJSON(ctx, client, http.MethodPost, cfg.BaseURL+"/api/v1/jobs", s.spec, &status); err != nil {
			return fmt.Errorf("submit job %d: %w", i, err)
		}
		ids[i] = status.ID
	}

	type watch struct {
		lastUpdates int64
		done        bool
	}
	watches := make([]watch, len(ids))
	pending := len(ids)
	killed := false
	for pending > 0 {
		if err := sleepCtx(ctx, cfg.PollInterval); err != nil {
			return err
		}
		for i, id := range ids {
			if watches[i].done {
				continue
			}
			var st service.JobStatus
			if err := doJSON(ctx, client, http.MethodGet, cfg.BaseURL+"/api/v1/jobs/"+id, nil, &st); err != nil {
				return fmt.Errorf("status %s: %w", id, err)
			}
			if st.Progress.Updates < watches[i].lastUpdates {
				return fmt.Errorf("%s: progress went backwards (%d < %d)", id, st.Progress.Updates, watches[i].lastUpdates)
			}
			watches[i].lastUpdates = st.Progress.Updates

			if kill && !killed && st.Progress.Worker != "" && !st.State.Terminal() {
				killed = true
				victim := st.Progress.Worker
				logf("killing worker %s (executing %s)", victim, id)
				if err := cfg.KillWorker(victim); err != nil {
					return fmt.Errorf("killing worker %s: %w", victim, err)
				}
			}

			if st.State.Terminal() {
				if st.State != service.StateSucceeded {
					return fmt.Errorf("%s finished %s: %s", id, st.State, st.Error)
				}
				watches[i].done = true
				pending--
				logf("%s succeeded on worker %s after %d dispatch(es)", id, st.Progress.Worker, st.Progress.Dispatches)
			}
		}
	}

	for i, id := range ids {
		var res service.JobResult
		if err := doJSON(ctx, client, http.MethodGet, cfg.BaseURL+"/api/v1/jobs/"+id+"/result", nil, &res); err != nil {
			return fmt.Errorf("result %s: %w", id, err)
		}
		rec := res.Recover
		if rec == nil {
			return fmt.Errorf("%s: no recovery payload", id)
		}
		if !rec.Unique {
			return fmt.Errorf("%s: expected a unique ECC function, got %d candidates", id, rec.Candidates)
		}
		if rec.GroundTruthMatch == nil || !*rec.GroundTruthMatch {
			return fmt.Errorf("%s: worker-side ground truth check failed", id)
		}
		code := new(ecc.Code)
		if err := code.UnmarshalText([]byte(rec.Code)); err != nil {
			return fmt.Errorf("%s: unparseable recovered code: %w", id, err)
		}
		if !code.EquivalentTo(specs[i].truth) {
			return fmt.Errorf("%s: recovered function does not match client-side ground truth", id)
		}
	}
	if kill && !killed {
		return fmt.Errorf("all jobs completed before any worker could be killed (cluster too fast for the smoke; raise Jobs)")
	}
	return nil
}

// fleetSolverInvocations sums actual SAT solver runs across the live
// workers (each worker's /healthz solver.invocations).
func fleetSolverInvocations(ctx context.Context, client *http.Client, base string) (int64, error) {
	var fleet struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := doJSON(ctx, client, http.MethodGet, base+PathWorkers, nil, &fleet); err != nil {
		return 0, fmt.Errorf("listing workers: %w", err)
	}
	var total int64
	for _, w := range fleet.Workers {
		if !w.Alive {
			continue
		}
		var health struct {
			Solver struct {
				Invocations int64 `json:"invocations"`
			} `json:"solver"`
		}
		if err := doJSON(ctx, client, http.MethodGet, w.URL+"/healthz", nil, &health); err != nil {
			return 0, fmt.Errorf("worker %s healthz: %w", w.ID, err)
		}
		total += health.Solver.Invocations
	}
	return total, nil
}
