package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// CoordinatorConfig tunes a Coordinator. The zero value selects the
// documented defaults.
type CoordinatorConfig struct {
	// HeartbeatEvery and TTL set the fleet's liveness clock, handed to
	// every registering worker.
	HeartbeatEvery time.Duration
	TTL            time.Duration
	// MaxDispatches bounds how many workers one job may be dispatched to
	// (1 + failovers after worker deaths) before the job fails.
	MaxDispatches int
	// PollInterval is the status-poll cadence while a job runs remotely.
	PollInterval time.Duration
	// DispatchWait is how long a job waits for a live, unsaturated worker
	// (none registered yet, or the whole fleet saturated) before failing.
	DispatchWait time.Duration
	// Obs carries the process's observability hub: coordinator events go
	// to its structured logger, the dispatch/failover/sync counters and
	// fleet gauges register on its metrics registry, and every dispatch
	// records a span on its tracer. Nil selects a quiet default hub (own
	// registry, discarded logs) — share the server's hub to get cluster
	// metrics on the public /metrics.
	Obs *obs.Hub
}

func (cfg CoordinatorConfig) withDefaults() CoordinatorConfig {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxDispatches <= 0 {
		cfg.MaxDispatches = DefaultMaxDispatches
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.DispatchWait <= 0 {
		cfg.DispatchWait = 30 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewHub(nil)
	}
	return cfg
}

// Coordinator is the cluster's front end: a service.Executor that shards
// submitted jobs across registered workers by consistent hashing on the
// job's routing key, with failover, backpressure handling and registry
// sync. Wire one into a service.Server with service.WithExecutor and mount
// Handler over the server's API.
type Coordinator struct {
	cfg    CoordinatorConfig
	store  *store.Store
	reg    *Registry
	client *http.Client
	log    *slog.Logger
	tracer *obs.Tracer

	// counters feed HealthStats (and the cluster smoke's assertions).
	dispatches atomic.Int64 // jobs successfully submitted to a worker
	failovers  atomic.Int64 // redispatches after a worker died mid-job
	spills     atomic.Int64 // dispatches diverted off the key's owner by saturation
	syncPulls  atomic.Int64 // registry records pulled from workers
	syncPushes atomic.Int64 // registry records pushed by workers

	syncMu     sync.Mutex
	syncActive map[string]bool // worker IDs with a pull sweep in flight
}

// NewCoordinator builds a coordinator over the given result store — the
// same store the service.Server persists to, so synced codes appear on the
// public GET /codes.
func NewCoordinator(st *store.Store, cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:        cfg,
		store:      st,
		reg:        NewRegistry(cfg.TTL),
		client:     newHTTPClient(15 * time.Second),
		log:        cfg.Obs.Log,
		tracer:     cfg.Obs.Tracer,
		syncActive: make(map[string]bool),
	}
	c.registerMetrics(cfg.Obs.Metrics)
	return c
}

// registerMetrics exposes the coordinator's dispatch counters and fleet
// gauges on the hub's Prometheus registry.
func (c *Coordinator) registerMetrics(m *obs.Registry) {
	counter := func(name, help string, v *atomic.Int64) {
		m.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("beerd_cluster_dispatches_total", "Jobs successfully submitted to a worker.", &c.dispatches)
	counter("beerd_cluster_failovers_total", "Redispatches after a worker died mid-job.", &c.failovers)
	counter("beerd_cluster_spills_total", "Dispatches diverted off the key's ring owner by saturation (429).", &c.spills)
	counter("beerd_cluster_sync_pulls_total", "Registry records pulled from workers by the sync sweep.", &c.syncPulls)
	counter("beerd_cluster_sync_pushes_total", "Registry records pushed by workers.", &c.syncPushes)
	m.GaugeFunc("beerd_cluster_workers_live", "Workers currently within their liveness TTL.",
		func() float64 { return float64(c.reg.LiveCount()) })
	m.GaugeFunc("beerd_cluster_workers_registered", "Workers in the membership table, live or not.",
		func() float64 { return float64(len(c.reg.Snapshot())) })
}

// Registry exposes the membership table (tests, health).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Describe implements service.Executor.
func (c *Coordinator) Describe() string {
	return fmt.Sprintf("cluster:%d-live-workers", c.reg.LiveCount())
}

// Prepare implements service.Executor: validate the spec exactly as a
// local server would, then compile a dispatching Execution keyed for the
// ring. Validation happens here, on the coordinator, so a worker rejecting
// the same spec later is a version-skew bug, not a user error.
func (c *Coordinator) Prepare(spec service.JobSpec) (service.Execution, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return c.dispatchExecution(spec, RoutingKey(spec)), nil
}

// HealthStats implements the service layer's optional health extension:
// the fleet and dispatch counters shown under "cluster" on /healthz.
func (c *Coordinator) HealthStats() map[string]any {
	return map[string]any{
		"live_workers": c.reg.LiveCount(),
		"workers":      len(c.reg.Snapshot()),
		"dispatches":   c.dispatches.Load(),
		"failovers":    c.failovers.Load(),
		"spills":       c.spills.Load(),
		"sync_pulls":   c.syncPulls.Load(),
		"sync_pushes":  c.syncPushes.Load(),
		"fleet_solver": c.reg.FleetSolver(),
	}
}

// Handler mounts the /cluster/v1 control plane in front of the ordinary
// service API (pass service.Server.Handler as api):
//
//	POST   /cluster/v1/register      worker joins (WorkerInfo)
//	POST   /cluster/v1/heartbeat     worker liveness report (Heartbeat)
//	GET    /cluster/v1/workers       fleet listing (WorkerStatus)
//	DELETE /cluster/v1/workers/{id}  graceful worker departure
//	GET    /cluster/v1/codes/{hash}  one raw registry record (store.CodeRecord)
//	POST   /cluster/v1/codes         push a solved record into the registry
func (c *Coordinator) Handler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("GET "+PathWorkers, c.handleWorkers)
	mux.HandleFunc("DELETE "+PathWorkers+"/{id}", c.handleDeregister)
	mountRegistryRead(mux, c.store)
	mux.HandleFunc("POST "+PathCodes, c.handlePushCode)
	mux.Handle("/", api)
	return mux
}

// RegistryHandler mounts the read half of the registry wire protocol —
// hash listing and raw-record fetch — in front of a server's API. Workers
// serve it so the coordinator's pull sweep can reconcile *every* record,
// including unsatisfiable-profile ones that the public /codes listing
// deliberately omits (they carry no exportable candidates but still spare
// the fleet a full UNSAT search).
func RegistryHandler(st *store.Store, api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mountRegistryRead(mux, st)
	mux.Handle("/", api)
	return mux
}

// mountRegistryRead wires GET /cluster/v1/codes (hash listing) and
// GET /cluster/v1/codes/{hash} (raw store.CodeRecord) over a store.
func mountRegistryRead(mux *http.ServeMux, st *store.Store) {
	mux.HandleFunc("GET "+PathCodes, func(w http.ResponseWriter, r *http.Request) {
		hashes, err := st.Backend().Keys(store.BucketCodes)
		if err != nil {
			clusterError(w, http.StatusInternalServerError, "listing registry: %v", err)
			return
		}
		clusterJSON(w, http.StatusOK, map[string]any{"hashes": hashes})
	})
	mux.HandleFunc("GET "+PathCodes+"/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		rec, ok, err := st.GetCode(hash)
		if err != nil {
			clusterError(w, http.StatusInternalServerError, "reading registry: %v", err)
			return
		}
		if !ok {
			clusterError(w, http.StatusNotFound, "no record for profile hash %q", hash)
			return
		}
		clusterJSON(w, http.StatusOK, rec)
	})
}

// clusterBufPool recycles encode buffers for the control-plane handlers:
// heartbeats arrive from every worker every HeartbeatEvery, so their
// responses should not allocate a fresh encoder per request.
var clusterBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	buf := clusterBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= 1<<16 {
		clusterBufPool.Put(buf)
	}
}

func clusterError(w http.ResponseWriter, status int, format string, args ...any) {
	clusterJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var info WorkerInfo
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&info); err != nil {
		clusterError(w, http.StatusBadRequest, "malformed registration: %v", err)
		return
	}
	if info.ID == "" || info.URL == "" {
		clusterError(w, http.StatusBadRequest, "registration needs id and url")
		return
	}
	c.reg.Register(info)
	c.log.Info("worker registered", "worker", info.ID, "url", info.URL, "capacity", info.Capacity)
	clusterJSON(w, http.StatusOK, RegisterResponse{
		HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
		TTLMS:       c.cfg.TTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&hb); err != nil {
		clusterError(w, http.StatusBadRequest, "malformed heartbeat: %v", err)
		return
	}
	known, syncNeeded := c.reg.Heartbeat(hb)
	if !known {
		// A coordinator restart empties the registry; the worker
		// re-registers on this signal.
		clusterError(w, http.StatusNotFound, "unknown worker %q (re-register)", hb.ID)
		return
	}
	if syncNeeded {
		// The worker's registry size moved without a push landing here (or
		// before this coordinator (re)started): reconcile in the background.
		c.startSync(hb.ID, hb.Codes)
	}
	clusterJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, map[string]any{"workers": c.reg.Snapshot()})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The body is optional (older workers DELETE with none): when present
	// it carries the departing worker's final solver counters, which beat
	// the last heartbeat's by up to one heartbeat interval of solves.
	var final *service.SolverTotals
	var rep DepartureReport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&rep); err == nil {
		final = &rep.Solver
	}
	c.reg.Deregister(id, final)
	c.log.Info("worker deregistered", "worker", id)
	clusterJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handlePushCode accepts a worker's freshly solved record. First writer
// wins, matching the store's SolveCacheView semantics: a record that
// already loads cleanly keeps its provenance.
func (c *Coordinator) handlePushCode(w http.ResponseWriter, r *http.Request) {
	var rec store.CodeRecord
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&rec); err != nil {
		clusterError(w, http.StatusBadRequest, "malformed record: %v", err)
		return
	}
	if rec.ProfileHash == "" {
		clusterError(w, http.StatusBadRequest, "record without profile hash")
		return
	}
	if existing, ok, err := c.store.GetCode(rec.ProfileHash); err == nil && ok {
		if _, err := existing.Result(); err == nil {
			clusterJSON(w, http.StatusOK, map[string]string{"status": "kept"})
			return
		}
	}
	if err := c.store.PutCode(&rec); err != nil {
		clusterError(w, http.StatusInternalServerError, "storing record: %v", err)
		return
	}
	c.syncPushes.Add(1)
	clusterJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

// startSync launches (at most one per worker) a background pull sweep of
// the worker's code registry — the fallback half of registry sync for
// records whose push never arrived.
func (c *Coordinator) startSync(id string, codes int) {
	info, ok := c.reg.Get(id)
	if !ok {
		return
	}
	c.syncMu.Lock()
	if c.syncActive[id] {
		c.syncMu.Unlock()
		return
	}
	c.syncActive[id] = true
	c.syncMu.Unlock()

	go func() {
		defer func() {
			c.syncMu.Lock()
			delete(c.syncActive, id)
			c.syncMu.Unlock()
		}()
		if err := c.pullRegistry(info); err != nil {
			c.log.Warn("registry sync failed", "worker", id, "err", err)
			return
		}
		c.reg.MarkSynced(id, codes)
	}()
}

// pullRegistry copies every record the worker has and the coordinator
// lacks, via the worker's RegistryHandler: the hash listing covers every
// record — including unsatisfiable-profile ones the public /codes listing
// omits — so a reconciled worker really is reconciled.
func (c *Coordinator) pullRegistry(info WorkerInfo) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var listing struct {
		Hashes []string `json:"hashes"`
	}
	if err := doJSON(ctx, c.client, http.MethodGet, info.URL+PathCodes, nil, &listing); err != nil {
		return err
	}
	for _, hash := range listing.Hashes {
		if hash == "" {
			continue
		}
		if _, ok, err := c.store.GetCode(hash); err == nil && ok {
			continue
		}
		rec, err := c.fetchRecord(ctx, info.URL, hash)
		if err != nil {
			return fmt.Errorf("record %s: %w", hash, err)
		}
		if err := c.store.PutCode(rec); err != nil {
			return err
		}
		c.syncPulls.Add(1)
	}
	return nil
}

// fetchRecord pulls one raw store.CodeRecord from a worker's
// RegistryHandler.
func (c *Coordinator) fetchRecord(ctx context.Context, base, hash string) (*store.CodeRecord, error) {
	rec := new(store.CodeRecord)
	if err := doJSON(ctx, c.client, http.MethodGet, base+PathCodes+"/"+hash, nil, rec); err != nil {
		return nil, err
	}
	return rec, nil
}
