package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// TestClusterConcurrentSubmitDedupe proves single-flight dedupe on the
// coordinator path: N identical concurrent submissions at the front door
// collapse into one job, dispatched once, solved once on the fleet — and
// every submitter reads the same verified result.
func TestClusterConcurrentSubmitDedupe(t *testing.T) {
	tc := startTestCluster(t)
	w := tc.addWorker("w1", 0)

	const n = 6
	payload, err := json.Marshal(recoverSpec("B", 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(tc.ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var st service.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	close(start)
	wg.Wait()

	id := ids[0]
	for i := range ids {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if ids[i] != id {
			t.Fatalf("submission %d joined job %s, submission 0 got %s — dedupe leaked a dispatch", i, ids[i], id)
		}
	}

	final := tc.waitTerminal(id, 60*time.Second)
	if final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Progress.Dispatches != 1 {
		t.Fatalf("job dispatched %d times, want exactly 1", final.Progress.Dispatches)
	}
	assertVerified(t, tc.result(id))

	// One execution on the fleet means the worker's solver ran exactly once.
	if inv := w.srv.SolverTotals().Invocations; inv != 1 {
		t.Fatalf("worker solver invoked %d times, want 1", inv)
	}
}
