package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

// Registry is the coordinator's membership table: every registered worker
// with its last heartbeat, the liveness verdict, and the consistent-hash
// ring over the live members. All methods are safe for concurrent use.
type Registry struct {
	ttl time.Duration

	// mu is an RWMutex rather than a sharded table: membership is a ring —
	// every dispatch reads the whole live set (Sequence), so striping buys
	// nothing, but read/write asymmetry does. The hot paths (Sequence on
	// every dispatch, LiveCount/Snapshot on every /metrics scrape and
	// /healthz probe) take the read lock and run concurrently; only
	// membership changes and heartbeat folds take the write lock.
	mu      sync.RWMutex
	members map[string]*member
	ring    *Ring // over live member IDs; rebuilt on membership change
	// departed accumulates the final solver counters of gracefully
	// deregistered workers, so the fleet aggregate (FleetSolver) keeps
	// their work after the member row is gone. An ungraceful death loses
	// its counters by design — the process died and took them along.
	departed service.SolverTotals
}

type member struct {
	info     WorkerInfo
	lastBeat time.Time
	dead     bool // declared dead by the dispatcher or by TTL expiry
	draining bool
	running  int
	inFlight int
	codes    int
	solver   service.SolverTotals // cumulative, from the last heartbeat
	active   int                  // jobs currently dispatched by this coordinator
	// syncedCodes is the registry size last reconciled by the sync sweep;
	// a heartbeat reporting a different Codes count triggers a pull.
	syncedCodes int
}

// NewRegistry builds an empty registry with the given liveness TTL
// (<= 0 selects DefaultTTL).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Registry{ttl: ttl, members: make(map[string]*member)}
}

// Register adds or replaces a worker. A re-registration under a known ID
// (worker restart) resurrects it — the previous death verdict is void. The
// coordinator-owned dispatched-jobs gauge survives the replacement: the
// dispatches that will decrement it are still in flight, and zeroing it
// here would drive it negative as they unwind.
func (r *Registry) Register(info WorkerInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &member{info: info, lastBeat: time.Now()}
	if prev, ok := r.members[info.ID]; ok {
		m.active = prev.active
	}
	r.members[info.ID] = m
	r.rebuildLocked()
}

// Deregister removes a worker (graceful shutdown). The worker's solver
// counters are folded into the departed aggregate before removal — final,
// when the departure request carried them (heartbeats lag, so the last
// report can miss the worker's closing solves), or the last heartbeat's
// otherwise — so /healthz fleet totals never drop on a graceful drain.
func (r *Registry) Deregister(id string, final *service.SolverTotals) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return
	}
	last := m.solver
	if final != nil && !final.IsZero() {
		last = *final
	}
	r.departed.Add(last)
	delete(r.members, id)
	r.rebuildLocked()
}

// Heartbeat records a worker's liveness report. It returns false for an
// unknown ID — the signal for the worker to re-register (e.g. after a
// coordinator restart emptied the registry).
func (r *Registry) Heartbeat(hb Heartbeat) (known bool, syncNeeded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[hb.ID]
	if !ok {
		return false, false
	}
	m.lastBeat = time.Now()
	m.running = hb.Running
	m.inFlight = hb.InFlight
	m.codes = hb.Codes
	m.solver = hb.Solver
	m.draining = hb.Draining
	if m.dead {
		m.dead = false // it spoke; it lives
		r.rebuildLocked()
	}
	return true, hb.Codes != m.syncedCodes
}

// MarkSynced records that the coordinator reconciled its registry against
// the worker's reported size.
func (r *Registry) MarkSynced(id string, codes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[id]; ok {
		m.syncedCodes = codes
	}
}

// MarkDead records a dispatcher-observed death (connection failures or a
// lost job) without waiting for the TTL, removing the worker from the ring
// until it heartbeats or re-registers.
func (r *Registry) MarkDead(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[id]; ok && !m.dead {
		m.dead = true
		r.rebuildLocked()
	}
}

// aliveLocked applies the TTL lazily: expiry needs no background timer.
func (r *Registry) aliveLocked(m *member) bool {
	return !m.dead && time.Since(m.lastBeat) <= r.ttl
}

// rebuildLocked reconstructs the ring over the currently-live members.
// Callers hold r.mu. TTL expiry is intentionally not part of the ring
// (the ring would need a timer); Sequence filters expired members out.
func (r *Registry) rebuildLocked() {
	ids := make([]string, 0, len(r.members))
	for id, m := range r.members {
		if !m.dead {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	r.ring = NewRing(ids)
}

// Sequence returns the live dispatch candidates for a key: the key's owner
// first, then the failover successors in ring order. Workers in excluded,
// past their TTL, or draining are filtered out.
func (r *Registry) Sequence(key string, excluded map[string]bool) []WorkerInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ring == nil {
		return nil
	}
	var out []WorkerInfo
	for _, id := range r.ring.Sequence(key) {
		m, ok := r.members[id]
		if !ok || excluded[id] || m.draining || !r.aliveLocked(m) {
			continue
		}
		out = append(out, m.info)
	}
	return out
}

// Get returns a worker's registration.
func (r *Registry) Get(id string) (WorkerInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return m.info, true
}

// Alive reports whether the worker is currently considered live.
func (r *Registry) Alive(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[id]
	return ok && r.aliveLocked(m)
}

// AddActive adjusts the coordinator's dispatched-jobs gauge for a worker.
// The gauge clamps at zero: a decrement can outlive its increment when the
// worker deregistered and re-registered mid-dispatch, and a negative
// "jobs dispatched here" reading would only mislead.
func (r *Registry) AddActive(id string, delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[id]; ok {
		m.active = max(m.active+delta, 0)
	}
}

// Snapshot lists every registered worker, sorted by ID.
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]WorkerStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, WorkerStatus{
			WorkerInfo:    m.info,
			Alive:         r.aliveLocked(m),
			Draining:      m.draining,
			Running:       m.running,
			InFlight:      m.inFlight,
			Codes:         m.codes,
			Solver:        m.solver,
			Active:        m.active,
			LastHeartbeat: m.lastBeat,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FleetSolver aggregates solver counters across the fleet's whole history:
// every registered member's latest heartbeat (dead-but-registered workers
// included — their counters are still their last true report) plus the
// departed accumulator of gracefully deregistered workers.
func (r *Registry) FleetSolver() service.SolverTotals {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := r.departed
	for _, m := range r.members {
		total.Add(m.solver)
	}
	return total
}

// LiveCount counts currently-live workers.
func (r *Registry) LiveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, m := range r.members {
		if r.aliveLocked(m) {
			n++
		}
	}
	return n
}
