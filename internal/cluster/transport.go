package cluster

import (
	"net"
	"net/http"
	"time"
)

// sharedTransport is the one pooled, keep-alive http.Transport every
// cluster-internal client (coordinator dispatch/poll/sync, worker
// register/heartbeat, remote solve-cache tier) rides on. Before PR 10 each
// of these built its own zero-value client; the zero-value client shares
// http.DefaultTransport, but the coordinator's dispatch path is hot enough
// (submit + a status poll every PollInterval per running job + heartbeats
// from every worker) that it deserves an explicitly sized idle pool instead
// of DefaultTransport's 2-per-host default, which forces most of that
// traffic through fresh TCP handshakes. Reuse also depends on every caller
// fully draining response bodies before closing them — doJSONHeader reads
// each body to completion (client.go), which is what actually returns a
// connection to this pool.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	// A coordinator polls every running job on every worker; size the idle
	// pool for a busy fleet rather than DefaultTransport's 2 per host.
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
	ForceAttemptHTTP2:     true,
}

// newHTTPClient builds a cluster-internal client over the shared pooled
// transport. timeout bounds the whole request (0 = no client-level bound;
// callers then bound via context).
func newHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: sharedTransport}
}
