package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// This file is the coordinator's data plane: one dispatched job's life.
// The transport is deliberately the ordinary beerd service API — a worker
// is just a standalone beerd, so dispatch is submit + status polls +
// result fetch, and everything the single-node service already guarantees
// (monotonic progress, persistence, solve caching) holds per worker for
// free. What the dispatcher adds is placement (the ring), backpressure
// handling (429 spills + fleet-wide backoff) and failover (redispatch when
// a worker stops answering or loses the job).

// pollFailureLimit is how many consecutive status-poll failures declare
// the executing worker dead, independent of the heartbeat TTL (polls are
// much more frequent than heartbeats, so this usually fires first).
const pollFailureLimit = 3

// noWorkerRetryEvery paces re-picking when no dispatchable worker exists.
const noWorkerRetryEvery = 200 * time.Millisecond

// errWorkerDown marks a dispatch attempt that ended because the worker
// died or lost the job — the retryable class of failure.
var errWorkerDown = errors.New("worker down")

// dispatchExecution compiles a spec into the Execution the service layer
// runs on the coordinator's job goroutine.
func (c *Coordinator) dispatchExecution(spec service.JobSpec, key string) service.Execution {
	return func(ctx context.Context, env service.ExecEnv) (*service.JobResult, error) {
		excluded := make(map[string]bool)
		dispatched := 0
		var lastErr error
		idleSince := time.Now()
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			candidates := c.reg.Sequence(key, excluded)
			if len(candidates) == 0 && len(excluded) > 0 {
				// Every live worker already failed this job once; give the
				// ring a second pass rather than dying with idle workers.
				clear(excluded)
				candidates = c.reg.Sequence(key, excluded)
			}
			if len(candidates) == 0 {
				if time.Since(idleSince) > c.cfg.DispatchWait {
					return nil, fmt.Errorf("no live workers after %v (last error: %v)", c.cfg.DispatchWait, lastErr)
				}
				if err := sleepCtx(ctx, noWorkerRetryEvery); err != nil {
					return nil, err
				}
				continue
			}

			saturatedWait := time.Duration(0)
			progressed := false
			for i, w := range candidates {
				if dispatched >= c.cfg.MaxDispatches {
					return nil, fmt.Errorf("job dispatched to %d workers without completing (last error: %v)", dispatched, lastErr)
				}
				res, err := c.runOn(ctx, w, spec, env, dispatched+1)
				switch {
				case err == nil:
					return res, nil
				case ctx.Err() != nil:
					return nil, ctx.Err()
				case isStatus(err, http.StatusTooManyRequests):
					// Saturated, not dead: remember the backoff hint and
					// spill to the next ring successor.
					if i == 0 {
						c.spills.Add(1)
					}
					if he, ok := err.(*httpError); ok {
						saturatedWait = max(saturatedWait, he.retryAfterOr(time.Second))
					}
					lastErr = err
				case errors.Is(err, errWorkerDown):
					// Redispatch elsewhere. If the job had been accepted,
					// this is a failover; count it and keep the worker out
					// of this job's candidate set.
					excluded[w.ID] = true
					if wasDispatched(err) {
						dispatched++
						c.failovers.Add(1)
						c.log.Warn("job failing over", "job_id", env.JobID, "worker", w.ID,
							"trace_id", env.Trace.Trace.String(), "err", err)
						// Only an accepted-then-lost dispatch resets the
						// idle clock; mere refusals must not keep the job
						// waiting forever.
						progressed = true
					}
					lastErr = err
				default:
					// A deterministic job failure (the spec fails the same
					// way anywhere): surface it, don't burn the fleet.
					return nil, err
				}
			}
			if progressed {
				idleSince = time.Now()
				continue
			}
			// Whole fleet saturated (or every candidate refused): honor the
			// largest Retry-After before re-picking.
			if time.Since(idleSince) > c.cfg.DispatchWait {
				return nil, fmt.Errorf("no worker accepted the job within %v (last error: %v)", c.cfg.DispatchWait, lastErr)
			}
			if saturatedWait <= 0 {
				saturatedWait = noWorkerRetryEvery
			}
			if err := sleepCtx(ctx, saturatedWait); err != nil {
				return nil, err
			}
		}
	}
}

// dispatchedError wraps errWorkerDown for deaths that happened after the
// worker accepted the job (these count against MaxDispatches; pre-accept
// connection failures do not).
type dispatchedError struct{ err error }

func (e *dispatchedError) Error() string { return e.err.Error() }
func (e *dispatchedError) Unwrap() error { return errWorkerDown }

func wasDispatched(err error) bool {
	var de *dispatchedError
	return errors.As(err, &de)
}

// runOn executes one dispatch attempt against one worker: submit, poll to
// terminal, fetch the result, sync the registry. The error classes the
// caller switches on: nil (done), *httpError 429 (saturated), errWorkerDown
// possibly wrapped in dispatchedError (retry elsewhere), ctx.Err(), and
// anything else (deterministic job failure).
func (c *Coordinator) runOn(ctx context.Context, w WorkerInfo, spec service.JobSpec, env service.ExecEnv, attempt int) (_ *service.JobResult, err error) {
	// One span per dispatch attempt, parented on the job's root span. Its
	// context rides the submit request as a traceparent header, so the
	// worker-side job span (and its stage spans) join the same trace —
	// /debug/traces on coordinator and worker then stitch by TraceID.
	span := c.tracer.StartSpan(env.Trace, "cluster.dispatch")
	span.SetAttr("job_id", env.JobID)
	span.SetAttr("worker", w.ID)
	span.SetAttr("attempt", strconv.Itoa(attempt))
	defer func() {
		span.SetError(err)
		span.End()
	}()

	var submitHeader http.Header
	if sc := span.Context(); sc.Valid() {
		submitHeader = http.Header{obs.TraceparentHeader: []string{sc.Traceparent()}}
	}
	var accepted service.JobStatus
	err = doJSONHeader(ctx, c.client, http.MethodPost, w.URL+"/api/v1/jobs", submitHeader, spec, &accepted)
	if err != nil {
		if he, ok := err.(*httpError); ok {
			switch he.status {
			case http.StatusTooManyRequests:
				return nil, err
			case http.StatusServiceUnavailable:
				// Draining or shutting down: not dead yet, but not taking
				// work — treat like a death without the dispatch count.
				return nil, fmt.Errorf("%s refused the job: %v: %w", w.ID, err, errWorkerDown)
			case http.StatusBadRequest:
				// The coordinator validated this spec; a worker 400 is
				// version skew. Fail deterministically with the evidence.
				return nil, fmt.Errorf("worker %s rejected a coordinator-validated spec (version skew?): %v", w.ID, err)
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.reg.MarkDead(w.ID)
		return nil, fmt.Errorf("submitting to %s: %v: %w", w.ID, err, errWorkerDown)
	}
	c.dispatches.Add(1)
	c.reg.AddActive(w.ID, 1)
	defer c.reg.AddActive(w.ID, -1)
	span.SetAttr("remote_job_id", accepted.ID)
	c.log.Info("job dispatched", "job_id", env.JobID, "worker", w.ID,
		"remote_job_id", accepted.ID, "attempt", attempt, "trace_id", env.Trace.Trace.String())

	report := func(p service.ProgressStatus) {
		p.Worker = w.ID
		p.Dispatches = attempt
		env.Report(p)
	}
	report(accepted.Progress)

	statusURL := w.URL + "/api/v1/jobs/" + accepted.ID
	failures := 0
	for {
		if err := sleepCtx(ctx, c.cfg.PollInterval); err != nil {
			// The coordinator-side job was cancelled (DELETE or shutdown):
			// propagate the cancellation to the worker so it stops burning
			// cycles. Best-effort with a fresh, short-lived context.
			c.cancelRemote(statusURL)
			return nil, err
		}
		var st service.JobStatus
		if err := doJSON(ctx, c.client, http.MethodGet, statusURL, nil, &st); err != nil {
			if ctx.Err() != nil {
				c.cancelRemote(statusURL)
				return nil, ctx.Err()
			}
			if isStatus(err, http.StatusNotFound) {
				// The worker restarted and lost the job (memory store):
				// it is alive but the work is gone.
				return nil, &dispatchedError{err: fmt.Errorf("%s lost job %s", w.ID, accepted.ID)}
			}
			failures++
			if failures >= pollFailureLimit || !c.reg.Alive(w.ID) {
				c.reg.MarkDead(w.ID)
				// The worker is presumed dead, but a merely-slow or briefly
				// partitioned one may still be executing the job. Before the
				// replacement dispatch, best-effort-cancel the original so
				// a zombie cannot race the failover (duplicate solves, a
				// leaked capacity slot). If the worker is truly dead this
				// fails instantly.
				c.cancelRemote(statusURL)
				return nil, &dispatchedError{err: fmt.Errorf("%s stopped answering status polls: %v", w.ID, err)}
			}
			continue
		}
		failures = 0
		report(st.Progress)
		switch st.State {
		case service.StateSucceeded:
			var res service.JobResult
			if err := doJSON(ctx, c.client, http.MethodGet, statusURL+"/result", nil, &res); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, &dispatchedError{err: fmt.Errorf("fetching result from %s: %v", w.ID, err)}
			}
			c.syncCompleted(w, &res)
			return &res, nil
		case service.StateFailed:
			return nil, fmt.Errorf("job failed on worker %s: %s", w.ID, st.Error)
		case service.StateCanceled:
			// Not cancelled by us (our ctx is live): the worker shut down
			// or an operator cancelled it directly. Run it elsewhere.
			return nil, &dispatchedError{err: fmt.Errorf("%s cancelled job %s", w.ID, accepted.ID)}
		}
	}
}

// cancelRemote best-effort-DELETEs a dispatched job after the
// coordinator-side context died.
func (c *Coordinator) cancelRemote(statusURL string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = doJSON(ctx, c.client, http.MethodDelete, statusURL, nil, nil)
}

// syncCompleted makes sure a finished recovery job's registry record is in
// the coordinator's store. The worker normally pushed it already
// (RemoteCache.Store); this is the pull fallback covering a lost push.
func (c *Coordinator) syncCompleted(w WorkerInfo, res *service.JobResult) {
	if res.Recover == nil || res.Recover.ProfileHash == "" {
		return
	}
	hash := res.Recover.ProfileHash
	if _, ok, err := c.store.GetCode(hash); err == nil && ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := c.fetchRecord(ctx, w.URL, hash)
	if err != nil {
		c.log.Warn("pulling completed-job record failed", "hash", hash, "worker", w.ID, "err", err)
		return
	}
	if err := c.store.PutCode(rec); err != nil {
		c.log.Warn("storing pulled record failed", "hash", hash, "err", err)
		return
	}
	c.syncPulls.Add(1)
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
