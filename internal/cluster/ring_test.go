package cluster

import (
	"fmt"
	"testing"

	"repro/internal/service"
)

// serviceJobSpec shortens the test bodies.
type serviceJobSpec = service.JobSpec

func TestRingSequenceCoversAllMembersDeterministically(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	ring := NewRing(members)
	for _, key := range []string{"a", "b", "profile-hash-1", "profile-hash-2"} {
		first := ring.Sequence(key)
		if len(first) != len(members) {
			t.Fatalf("Sequence(%q) has %d members, want %d", key, len(first), len(members))
		}
		seen := map[string]bool{}
		for _, id := range first {
			if seen[id] {
				t.Fatalf("Sequence(%q) repeats %s", key, id)
			}
			seen[id] = true
		}
		again := NewRing(members).Sequence(key)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("Sequence(%q) not deterministic: %v vs %v", key, first, again)
			}
		}
		if ring.Owner(key) != first[0] {
			t.Fatalf("Owner(%q)=%s but Sequence starts with %s", key, ring.Owner(key), first[0])
		}
	}
}

// TestRingStability: removing one member must not move keys between the
// surviving members — the property that keeps solve caches hot through
// membership churn.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"w1", "w2", "w3", "w4"})
	after := NewRing([]string{"w1", "w2", "w4"}) // w3 left
	moved, owned := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := before.Owner(key)
		now := after.Owner(key)
		if was == "w3" {
			owned++
			continue // w3's keys must land somewhere else, anywhere
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members when w3 left", moved)
	}
	if owned == 0 {
		t.Fatalf("w3 owned no keys out of 1000 — ring badly unbalanced")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	ring := NewRing(members)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[ring.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of the keyspace: %v", m, 100*share, counts)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	var ring Ring
	if got := ring.Sequence("k"); got != nil {
		t.Fatalf("empty ring sequenced %v", got)
	}
	if got := ring.Owner("k"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
}

// TestRoutingKeyProfileIdentity: the recover routing key is the canonical
// profile hash — invariant under chip seed, chip count, rounds and window
// sweep (which change the experiment, not the fingerprint), and distinct
// across manufacturers, dataword lengths, pattern families and anti-row
// collection (which change the fingerprint).
func TestRoutingKeyProfileIdentity(t *testing.T) {
	base := func() (spec serviceJobSpec) {
		spec.Type = "recover"
		spec.Manufacturer = "B"
		spec.K = 16
		return spec
	}
	same := []serviceJobSpec{base(), base(), base(), base(), base()}
	same[1].Seed = 7
	same[2].Chips = 4
	same[3].Rounds = 5
	same[4].MaxWindowMinutes = 96
	want := RoutingKey(same[0])
	for i, spec := range same {
		if RoutingKey(spec) != want {
			t.Fatalf("variant %d changed the routing key", i)
		}
	}
	distinct := []serviceJobSpec{base(), base(), base(), base()}
	distinct[1].Manufacturer = "A"
	distinct[2].K = 24
	distinct[3].UseAntiRows = true
	seen := map[string]int{want: 0}
	for i, spec := range distinct[1:] {
		key := RoutingKey(spec)
		if prev, dup := seen[key]; dup {
			t.Fatalf("distinct variants %d and %d share a routing key", prev, i+1)
		}
		seen[key] = i + 1
	}
}
