package cluster

import (
	"testing"
	"time"

	"repro/internal/service"
)

// TestClusterPlannedJobSolverProgress dispatches an adaptive-planner job
// through a real coordinator→worker hop: the worker's live solver counters
// and planner pattern progress must survive the coordinator's monotonic
// progress aggregation, and the result must report the patterns economy.
func TestClusterPlannedJobSolverProgress(t *testing.T) {
	tc := startTestCluster(t)
	tc.addWorker("w1", 0)

	spec := recoverSpec("B", 16, 31)
	spec.Plan = true
	status := tc.submit(spec)
	tc.waitFor("job terminal", 60*time.Second, func() bool {
		return tc.status(status.ID).State.Terminal()
	})
	final := tc.status(status.ID)
	if final.State != service.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	sp := final.Progress.Solver
	if sp.PatternsUsed == 0 || sp.PatternsPlanned == 0 {
		t.Fatalf("planner solver progress lost in coordinator aggregation: %+v", final.Progress)
	}
	if sp.PatternsUsed > sp.PatternsPlanned {
		t.Fatalf("aggregated patterns used (%d) exceeds planned (%d)", sp.PatternsUsed, sp.PatternsPlanned)
	}
	if sp.Propagations == 0 {
		t.Fatalf("solver counters lost in coordinator aggregation: %+v", sp)
	}

	res := tc.result(status.ID)
	assertVerified(t, res)
	if res.Recover.PatternsUsed == 0 || res.Recover.PatternsUsed >= res.Recover.PatternsFull {
		t.Fatalf("planned result economy missing or inverted: used %d of %d",
			res.Recover.PatternsUsed, res.Recover.PatternsFull)
	}
	if res.Recover.Solver == nil || res.Recover.Solver.Propagations == 0 {
		t.Fatalf("planned result carries no solver stats: %+v", res.Recover.Solver)
	}
}
