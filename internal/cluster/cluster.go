// Package cluster turns beerd into a multi-node system: a coordinator that
// owns the public job API and a fleet of workers that execute jobs on their
// local parallel engines.
//
// The paper's own evaluation already has this shape — §6.3 observes that
// BEER parallelizes across chips because same-model observation counts
// simply add, and the dominant per-profile cost is the SAT search (§5.3),
// which is embarrassingly parallel across profiles. A coordinator therefore
// needs no shared state beyond the content-addressed code registry
// (internal/store, the paper's §7 "BEER database"): every job is
// independent, and the only cross-job win is never solving the same
// miscorrection profile twice.
//
// # Roles
//
//   - The coordinator (Coordinator, `beerd -role coordinator`) serves the
//     ordinary beerd HTTP API. It implements service.Executor, so the
//     service layer's job table, persistence and progress handling are
//     unchanged — Prepare validates the spec, and the returned Execution
//     dispatches it to a worker over the same HTTP/JSON API instead of
//     running it locally. The coordinator additionally mounts the
//     /cluster/v1 control endpoints (register, heartbeat, worker listing,
//     registry push/pull).
//   - A worker (Worker, `beerd -role worker -join <coordinator-url>`) is a
//     complete standalone beerd — engine, job table, store, admission cap —
//     plus an agent that registers with the coordinator and heartbeats
//     liveness, load and registry size. Its solve cache is tiered through
//     the coordinator (RemoteCache), which is what keeps the fleet-wide
//     "zero duplicate solver invocations" property across worker failures.
//
// # Routing
//
// Jobs shard across workers by consistent hashing (Ring) on the job's
// routing key (RoutingKey): for recovery jobs the canonical hash
// (core.Profile.Hash) of the analytically computed miscorrection profile —
// the §4 closed form evaluated on the chip model's ECC function — so two
// submissions that will observe identical profiles land on the same worker
// and its solve cache stays hot, regardless of chip seed or chip count.
// Membership changes move only the keys adjacent to the joining or leaving
// worker, preserving the rest of the fleet's cache locality.
//
// # Failure model
//
// Workers are expendable; the coordinator is the durability point. A worker
// proves liveness by heartbeating; missing heartbeats past the TTL, or
// failing enough consecutive in-dispatch requests, marks it dead. Jobs
// in flight on a dead worker are redispatched from scratch to the next
// worker on the ring (bounded by MaxDispatches) — partial collection is
// discarded by design, mirroring the single-node resume semantics, but a
// profile the dead worker already solved survives in the coordinator's
// registry, so the replacement worker skips the SAT search. A saturated
// worker (429 + Retry-After) is not dead: the dispatcher spills to ring
// successors and backs off when the whole fleet is saturated. Codes
// recovered anywhere are pushed into the coordinator's store (and pulled
// as a fallback when a job completes), so the coordinator's GET /codes is
// the union of the fleet's discoveries.
package cluster

import (
	"time"

	"repro/internal/service"
)

// Control-plane paths mounted by Coordinator.Handler. The data plane —
// dispatching jobs, polling their status and fetching results — is the
// ordinary service API on each worker.
const (
	PathRegister  = "/cluster/v1/register"
	PathHeartbeat = "/cluster/v1/heartbeat"
	PathWorkers   = "/cluster/v1/workers"
	PathCodes     = "/cluster/v1/codes"
)

// Liveness defaults. Registration returns the coordinator's actual values
// so a fleet follows one clock.
const (
	// DefaultHeartbeatEvery is how often workers heartbeat.
	DefaultHeartbeatEvery = 2 * time.Second
	// DefaultTTL is how long after the last heartbeat a worker is presumed
	// alive. Three missed beats mark it dead.
	DefaultTTL = 6 * time.Second
	// DefaultMaxDispatches bounds how many workers one job may be
	// dispatched to before the coordinator gives up and fails the job
	// (1 initial dispatch + retries after worker deaths).
	DefaultMaxDispatches = 4
)

// WorkerInfo is a worker's registration: identity, dial address and
// capacity.
type WorkerInfo struct {
	// ID is the worker's stable identity on the hash ring. Re-registering
	// under the same ID (a restarted worker) replaces the previous entry
	// without moving any keys.
	ID string `json:"id"`
	// URL is the base URL the coordinator dispatches to
	// (e.g. "http://10.0.0.7:8081").
	URL string `json:"url"`
	// Capacity is the worker's admission cap (0 = unlimited), as
	// configured by `beerd -max-jobs`.
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse tells a registering worker the coordinator's liveness
// clock.
type RegisterResponse struct {
	HeartbeatMS int64 `json:"heartbeat_ms"`
	TTLMS       int64 `json:"ttl_ms"`
}

// Heartbeat is a worker's periodic liveness report.
type Heartbeat struct {
	ID string `json:"id"`
	// Running is how many jobs the worker is executing.
	Running int `json:"running"`
	// InFlight is the worker engine's sharded-computation gauge
	// (parallel.Engine.InFlight).
	InFlight int `json:"in_flight"`
	// Codes is the size of the worker's local code registry. The
	// coordinator uses a change in it as a cue that a push may have been
	// missed and the registries have diverged.
	Codes int `json:"codes"`
	// Draining reports that the worker is shutting down gracefully: still
	// finishing in-flight jobs, but refusing new ones.
	Draining bool `json:"draining,omitempty"`
	// Solver is the worker's cumulative solver work (invocations, cache
	// hits, conflicts, ...). The coordinator keeps the latest report per
	// member so /healthz and /metrics can show fleet-wide totals.
	Solver service.SolverTotals `json:"solver,omitzero"`
}

// DepartureReport is the optional body of DELETE /cluster/v1/workers/{id}:
// the departing worker's final solver counters. The coordinator folds them
// into the fleet aggregate before removing the member, so a graceful drain
// does not erase the work the worker did (an empty body keeps the last
// heartbeat's counters instead).
type DepartureReport struct {
	Solver service.SolverTotals `json:"solver,omitzero"`
}

// WorkerStatus is one entry of GET /cluster/v1/workers: the registration
// plus the coordinator's live view of the worker.
type WorkerStatus struct {
	WorkerInfo
	// Alive is false once the TTL lapsed or the dispatcher declared the
	// worker dead.
	Alive bool `json:"alive"`
	// Draining mirrors the worker's last heartbeat.
	Draining bool `json:"draining,omitempty"`
	// Running, InFlight, Codes and Solver mirror the last heartbeat.
	Running  int                  `json:"running"`
	InFlight int                  `json:"in_flight"`
	Codes    int                  `json:"codes"`
	Solver   service.SolverTotals `json:"solver,omitzero"`
	// Active is the coordinator's own count of jobs currently dispatched
	// to this worker (it can differ transiently from Running, which is the
	// worker's self-report).
	Active int `json:"active"`
	// LastHeartbeat is when the coordinator last heard from the worker.
	LastHeartbeat time.Time `json:"last_heartbeat"`
}
