package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies the coordinator accepts, mirroring
// the service layer's cap.
const maxBodyBytes = 1 << 20

// maxRespBytes bounds response reads. Registry listings (/codes) grow with
// the fleet's lifetime discoveries and can far exceed the request cap; a
// truncated read here would permanently break registry pull sweeps, so the
// ceiling is sized as a sanity backstop, not a working limit.
const maxRespBytes = 256 << 20

// httpError is a non-2xx response with enough structure for the dispatcher
// to tell backpressure (429), refusal (503) and not-found (404) apart from
// plain failure.
type httpError struct {
	status     int
	retryAfter time.Duration
	body       string
	method     string
	path       string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("%s %s: %d: %s", e.method, e.path, e.status, e.body)
}

// retryAfterOr returns the server's Retry-After hint, or def without one.
func (e *httpError) retryAfterOr(def time.Duration) time.Duration {
	if e.retryAfter > 0 {
		return e.retryAfter
	}
	return def
}

func isStatus(err error, status int) bool {
	he, ok := err.(*httpError)
	return ok && he.status == status
}

// doJSON performs a request with a JSON body (nil for none) and decodes a
// JSON response into out (nil to discard).
func doJSON(ctx context.Context, client *http.Client, method, url string, body, out any) error {
	return doJSONHeader(ctx, client, method, url, nil, body, out)
}

// doJSONHeader is doJSON with extra request headers (the dispatcher uses it
// to propagate the traceparent to the executing worker).
func doJSONHeader(ctx context.Context, client *http.Client, method, url string, header http.Header, body, out any) error {
	var reader io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		return err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Read the body to completion before the deferred Close: a connection
	// returns to the shared transport's keep-alive pool (transport.go) only
	// when its response body has been fully drained — Close on a partially
	// read body tears the connection down instead. Every cluster-internal
	// request funnels through here, so reuse discipline is enforced in one
	// place.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		he := &httpError{
			status: resp.StatusCode,
			body:   string(bytes.TrimSpace(data)),
			method: method,
			path:   req.URL.Path,
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			he.retryAfter = time.Duration(secs) * time.Second
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
