package cluster

import (
	"repro/internal/service"
)

// RoutingKey derives the consistent-hash key a job shards on.
//
// For recovery jobs the key is the canonical hash (core.Profile.Hash) of
// the miscorrection profile the job is going to observe, computed
// analytically: the chip model's ECC function is known for simulated
// fleets, and the §4 closed form (repro.ExactProfile) yields its exact
// profile in microseconds, without running any experiment. Keying on the
// profile rather than the raw spec is what makes routing cache-aware —
// submissions differing in chip seed, chip count, rounds or window sweep
// all observe the same profile, hash to the same worker, and after the
// first one every later solve is a local cache hit. Anti-cell collection
// (UseAntiRows) appends inverted-pattern entries to the observed profile,
// so those jobs key on a suffixed variant. Planned jobs (adaptive planner)
// observe a deterministic *prefix* of the full profile, so they share the
// full-sweep key on purpose: same-model submissions — planned or not — pin
// to one worker, and a repeated planned submission replays that worker's
// cached solve for the identical partial profile.
//
// Simulation jobs have no miscorrection profile; they key on the
// normalized simulation parameters, which still pins repeated sweeps of
// one configuration to one worker (whose engine-level exact-profile LRU
// then serves them) while spreading distinct configurations evenly.
//
// The computation lives in service.ProfileKey (memoized per model tuple),
// shared with the coordinator's single-flight submission dedupe — the ring
// and the dedupe index agree on what "the same profile" means.
func RoutingKey(spec service.JobSpec) string {
	return service.ProfileKey(spec)
}
