package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro"
	"repro/internal/service"
)

// RoutingKey derives the consistent-hash key a job shards on.
//
// For recovery jobs the key is the canonical hash (core.Profile.Hash) of
// the miscorrection profile the job is going to observe, computed
// analytically: the chip model's ECC function is known for simulated
// fleets, and the §4 closed form (repro.ExactProfile) yields its exact
// profile in microseconds, without running any experiment. Keying on the
// profile rather than the raw spec is what makes routing cache-aware —
// submissions differing in chip seed, chip count, rounds or window sweep
// all observe the same profile, hash to the same worker, and after the
// first one every later solve is a local cache hit. Anti-cell collection
// (UseAntiRows) appends inverted-pattern entries to the observed profile,
// so those jobs key on a suffixed variant.
//
// Simulation jobs have no miscorrection profile; they key on the
// normalized simulation parameters, which still pins repeated sweeps of
// one configuration to one worker (whose engine-level exact-profile LRU
// then serves them) while spreading distinct configurations evenly.
func RoutingKey(spec service.JobSpec) string {
	spec = spec.Normalized()
	switch spec.Type {
	case "recover":
		code := repro.GroundTruth(repro.SimulatedChip(repro.Manufacturer(spec.Manufacturer), spec.K, spec.Seed))
		patterns := repro.Set12
		if spec.Patterns == "1" {
			patterns = repro.Set1
		}
		key := repro.ExactProfile(code, patterns.Patterns(spec.K)).Hash()
		if spec.UseAntiRows {
			key += "+anti"
		}
		// Planned jobs (adaptive planner) observe a deterministic *prefix*
		// of this profile, so they share the full-sweep key on purpose:
		// same-model submissions — planned or not — pin to one worker, and
		// a repeated planned submission replays that worker's cached solve
		// for the identical partial profile.
		return key
	case "simulate":
		canon := fmt.Sprintf("sim|k=%d|words=%d|rber=%g|family=%s|pattern=%s|model=%s|seed=%d",
			spec.K, spec.Words, spec.RBER, spec.CodeFamily, spec.Pattern, spec.Model, spec.Seed)
		sum := sha256.Sum256([]byte(canon))
		return hex.EncodeToString(sum[:])
	default:
		// Unknown types are rejected by validation before routing; a
		// defensive constant keeps the ring total.
		return "unroutable"
	}
}
