package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// WorkerConfig configures a worker's cluster agent.
type WorkerConfig struct {
	// ID is the worker's ring identity. Empty generates a random one;
	// restarts that want to keep their ring position (and their file
	// store) should pass a stable ID.
	ID string
	// CoordinatorURL is the coordinator to join (`beerd -join`).
	CoordinatorURL string
	// AdvertiseURL is the base URL the coordinator should dispatch to —
	// this worker's service API as reachable from the coordinator.
	AdvertiseURL string
	// Capacity mirrors the server's admission cap, reported at
	// registration so operators see it in the fleet listing.
	Capacity int
	// HeartbeatEvery overrides the cadence until registration succeeds;
	// after that the coordinator's clock (RegisterResponse) governs.
	HeartbeatEvery time.Duration
	// Obs, when set, receives agent events on its structured logger
	// (usually the worker process's shared hub). Nil discards them.
	Obs *obs.Hub
}

// Worker is the agent that makes a standalone beerd part of a fleet: it
// registers with the coordinator, heartbeats liveness and load, and
// deregisters on graceful shutdown. The job execution itself needs no
// agent — the coordinator drives this worker through its ordinary service
// API.
type Worker struct {
	cfg    WorkerConfig
	srv    *service.Server
	client *http.Client
	beat   time.Duration
	log    *slog.Logger
}

// RandomWorkerID mints a fresh ring identity ("w-xxxxxxxx") — what a
// worker uses when the operator did not pin one.
func RandomWorkerID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// constant rather than plumbing an error every caller ignores.
		return "w-00000000"
	}
	return "w-" + hex.EncodeToString(b[:])
}

// NewWorker builds the agent for srv. The returned Worker does nothing
// until Run.
func NewWorker(cfg WorkerConfig, srv *service.Server) (*Worker, error) {
	if cfg.CoordinatorURL == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if cfg.AdvertiseURL == "" {
		return nil, fmt.Errorf("cluster: worker needs an advertise URL")
	}
	if cfg.ID == "" {
		cfg.ID = RandomWorkerID()
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewHub(nil)
	}
	return &Worker{
		cfg:    cfg,
		srv:    srv,
		client: newHTTPClient(10 * time.Second),
		beat:   cfg.HeartbeatEvery,
		log:    cfg.Obs.Log,
	}, nil
}

// ID returns the worker's ring identity.
func (w *Worker) ID() string { return w.cfg.ID }

// Run registers with the coordinator (retrying until it answers) and then
// heartbeats until ctx is cancelled. An unknown-worker answer to a
// heartbeat — the coordinator restarted — triggers re-registration, so a
// fleet heals in either direction. Run returns ctx.Err() on shutdown;
// call Deregister before draining for a graceful departure.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		if err := sleepCtx(ctx, w.beat); err != nil {
			return err
		}
		if err := w.heartbeat(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if isStatus(err, http.StatusNotFound) {
				w.log.Info("coordinator forgot worker, re-registering", "worker", w.cfg.ID)
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			}
			// Transient coordinator outage: keep beating; the TTL is the
			// coordinator's problem, reconnection is ours.
			w.log.Warn("heartbeat failed", "worker", w.cfg.ID, "err", err)
		}
	}
}

// register announces the worker, retrying with backoff until the
// coordinator answers or ctx dies, and adopts the fleet's liveness clock.
func (w *Worker) register(ctx context.Context) error {
	info := WorkerInfo{ID: w.cfg.ID, URL: w.cfg.AdvertiseURL, Capacity: w.cfg.Capacity}
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		err := doJSON(ctx, w.client, http.MethodPost, w.cfg.CoordinatorURL+PathRegister, info, &resp)
		if err == nil {
			if resp.HeartbeatMS > 0 {
				w.beat = time.Duration(resp.HeartbeatMS) * time.Millisecond
			}
			w.log.Info("registered with coordinator", "worker", w.cfg.ID,
				"coordinator", w.cfg.CoordinatorURL, "heartbeat", w.beat)
			// A first heartbeat right away carries the initial load and
			// registry size (and triggers a sync for a pre-warmed store).
			_ = w.heartbeat(ctx)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.log.Warn("registration failed, retrying", "worker", w.cfg.ID, "err", err, "retry_in", backoff)
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		backoff = min(2*backoff, 5*time.Second)
	}
}

func (w *Worker) heartbeat(ctx context.Context) error {
	hb := Heartbeat{
		ID:       w.cfg.ID,
		Running:  w.srv.RunningJobs(),
		InFlight: w.srv.Engine().InFlight(),
		Codes:    codesCount(w.srv.Store()),
		Draining: w.srv.Draining(),
		Solver:   w.srv.SolverTotals(),
	}
	return doJSON(ctx, w.client, http.MethodPost, w.cfg.CoordinatorURL+PathHeartbeat, hb, nil)
}

// Deregister removes the worker from the coordinator's ring — the first
// step of a graceful shutdown, before the server drains, so no new job is
// dispatched at a worker that is about to stop. The request carries the
// worker's final solver counters; the coordinator folds them into its
// fleet aggregate, so the drained worker's solves stay visible on
// /healthz and /metrics after the member row disappears.
func (w *Worker) Deregister(ctx context.Context) error {
	rep := DepartureReport{Solver: w.srv.SolverTotals()}
	return doJSON(ctx, w.client, http.MethodDelete, w.cfg.CoordinatorURL+PathWorkers+"/"+w.cfg.ID, rep, nil)
}

// codesCount sizes a store's code registry (0 on backend errors).
func codesCount(st *store.Store) int {
	keys, err := st.Backend().Keys(store.BucketCodes)
	if err != nil {
		return 0
	}
	return len(keys)
}
