package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/store"
)

// benchCluster boots a coordinator with n in-process workers, suppressing
// logs.
func benchCluster(b *testing.B, n int) (base string, shutdown func()) {
	b.Helper()
	st := store.New(store.NewMemBackend())
	coord := NewCoordinator(st, CoordinatorConfig{
		HeartbeatEvery: 100 * time.Millisecond,
		TTL:            time.Second,
		PollInterval:   5 * time.Millisecond,
	})
	srv := service.New(repro.NewEngine(0), service.WithStore(st), service.WithExecutor(coord))
	ts := httptest.NewServer(coord.Handler(srv.Handler()))

	var closers []func()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("bench-w%d", i)
		wst := store.New(store.NewMemBackend())
		wsrv := service.New(repro.NewEngine(0),
			service.WithStore(wst),
			service.WithSolveCacheTier(NewRemoteCache(ts.URL, id)))
		wts := httptest.NewServer(RegistryHandler(wst, wsrv.Handler()))
		agent, err := NewWorker(WorkerConfig{
			ID:             id,
			CoordinatorURL: ts.URL,
			AdvertiseURL:   wts.URL,
			HeartbeatEvery: 100 * time.Millisecond,
		}, wsrv)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() { _ = agent.Run(ctx) }()
		closers = append(closers, func() { cancel(); wts.Close(); wsrv.Close() })
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.Registry().LiveCount() < n {
		if time.Now().After(deadline) {
			b.Fatal("workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ts.URL, func() {
		for _, c := range closers {
			c()
		}
		ts.Close()
		srv.Close()
	}
}

// BenchmarkClusterRecoverThroughput measures end-to-end recovery jobs per
// second through a 1-coordinator/2-worker cluster: dispatch, remote
// execution, progress proxying and result fetch, with distinct chip seeds
// per job (collection always runs; the solve is cached after the first
// job per profile — the steady-state shape of a BEER fleet).
func BenchmarkClusterRecoverThroughput(b *testing.B) {
	base, shutdown := benchCluster(b, 2)
	defer shutdown()
	client := &http.Client{Timeout: 30 * time.Second}
	ctx := context.Background()
	b.ResetTimer()

	var wg sync.WaitGroup
	errs := make(chan error, b.N)
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := service.JobSpec{Type: "recover", Manufacturer: "B", K: 8, Seed: uint64(1 + i), Verify: true}
			var st service.JobStatus
			if err := doJSON(ctx, client, http.MethodPost, base+"/api/v1/jobs", spec, &st); err != nil {
				errs <- err
				return
			}
			for {
				time.Sleep(10 * time.Millisecond)
				if err := doJSON(ctx, client, http.MethodGet, base+"/api/v1/jobs/"+st.ID, nil, &st); err != nil {
					errs <- err
					return
				}
				if st.State.Terminal() {
					if st.State != service.StateSucceeded {
						errs <- fmt.Errorf("%s finished %s: %s", st.ID, st.State, st.Error)
					}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

// BenchmarkStandaloneRecoverThroughput is the single-node baseline for the
// cluster benchmark: the same jobs against one standalone server.
func BenchmarkStandaloneRecoverThroughput(b *testing.B) {
	srv := service.New(repro.NewEngine(0))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	ctx := context.Background()
	b.ResetTimer()

	var wg sync.WaitGroup
	errs := make(chan error, b.N)
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := service.JobSpec{Type: "recover", Manufacturer: "B", K: 8, Seed: uint64(1 + i), Verify: true}
			var st service.JobStatus
			if err := doJSON(ctx, client, http.MethodPost, ts.URL+"/api/v1/jobs", spec, &st); err != nil {
				errs <- err
				return
			}
			for {
				time.Sleep(10 * time.Millisecond)
				if err := doJSON(ctx, client, http.MethodGet, ts.URL+"/api/v1/jobs/"+st.ID, nil, &st); err != nil {
					errs <- err
					return
				}
				if st.State.Terminal() {
					if st.State != service.StateSucceeded {
						errs <- fmt.Errorf("%s finished %s: %s", st.ID, st.State, st.Error)
					}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}
