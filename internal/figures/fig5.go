package figures

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/ecc"
)

func init() {
	register(Generator{ID: "fig5", Description: "Figure 5: number of candidate ECC functions per pattern set vs dataword length", Run: Fig5})
}

// Fig5Point is one (dataword length, pattern set) measurement.
type Fig5Point struct {
	K        int
	Set      core.PatternSet
	Min      int
	Median   int
	Max      int
	Trials   int
	Capped   bool // some trial hit the enumeration cap
	SolCount []int
}

// Fig5Sweep runs the Figure 5 experiment programmatically: for each dataword
// length and pattern family, generate random SEC Hamming codes, compute
// their exact miscorrection profiles, and count how many candidate functions
// BEER's solver finds. The paper's result: {1,2}-CHARGED always yields
// exactly one function; 1-CHARGED alone yields one for full-length codes and
// sometimes several for shortened codes.
//
// Trials are independent, so the sweep fans out over the shared parallel
// experiment engine (the paper parallelizes the same way over ten Xeon
// servers). Each trial's code is derived from (seed, k, set, trial), so
// results are deterministic regardless of scheduling. Profiles go through
// the engine's LRU cache: within one sweep every code is fresh (the pattern
// cache is what saves rematerializing the quadratic 2-CHARGED families per
// trial), but repeated sweeps — benchmark iterations, a figure regenerated
// at another scale sharing (k, set, trial) prefixes — hit it.
func Fig5Sweep(ctx context.Context, ks []int, sets []core.PatternSet, trials, cap3 int, seed uint64) ([]Fig5Point, error) {
	const solutionCap = 200 // paper's Figure 5 y-axis tops out near 10^2

	type job struct {
		point int // index into points
		k     int
		set   core.PatternSet
		trial int
	}
	type answer struct {
		nsol    int
		capped  bool
		missing bool // exhausted search did not contain the true code
	}

	var points []Fig5Point
	var jobs []job
	for _, k := range ks {
		for _, set := range sets {
			if set == core.Set3 && k > cap3 {
				continue // 3-CHARGED explodes combinatorially; the paper also limits it
			}
			points = append(points, Fig5Point{K: k, Set: set, Trials: trials, Min: solutionCap + 1})
			for trial := 0; trial < trials; trial++ {
				jobs = append(jobs, job{point: len(points) - 1, k: k, set: set, trial: trial})
			}
		}
	}

	eng := engine()
	answers := make([]answer, len(jobs))
	err := eng.ForEach(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		rng := rand.New(rand.NewPCG(seed, uint64(j.k)<<32|uint64(int(j.set))<<16|uint64(j.trial)))
		code := ecc.RandomHamming(j.k, rng)
		prof := eng.ExactProfile(code, j.set, false)
		res, err := core.Solve(ctx, prof, core.SolveOptions{
			ParityBits:   code.ParityBits(),
			MaxSolutions: solutionCap,
		})
		if err != nil {
			return fmt.Errorf("fig5 k=%d set=%v: %w", j.k, j.set, err)
		}
		a := answer{nsol: len(res.Codes), capped: !res.Exhausted}
		found := false
		for _, cand := range res.Codes {
			if cand.EquivalentTo(code) {
				found = true
				break
			}
		}
		a.missing = !found && res.Exhausted
		answers[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range answers {
		j := jobs[i]
		if a.missing {
			return nil, fmt.Errorf("fig5 k=%d set=%v: true code missing from solutions", j.k, j.set)
		}
		pt := &points[j.point]
		if a.capped {
			pt.Capped = true
		}
		pt.SolCount = append(pt.SolCount, a.nsol)
		if a.nsol < pt.Min {
			pt.Min = a.nsol
		}
		if a.nsol > pt.Max {
			pt.Max = a.nsol
		}
	}
	for i := range points {
		counts := append([]int(nil), points[i].SolCount...)
		for x := 1; x < len(counts); x++ {
			for j := x; j > 0 && counts[j] < counts[j-1]; j-- {
				counts[j], counts[j-1] = counts[j-1], counts[j]
			}
		}
		points[i].Median = counts[len(counts)/2]
	}
	return points, nil
}

// Fig5 renders the sweep. The y-values are counts of unique (up to
// equivalence) ECC functions matching the miscorrection profile.
func Fig5(ctx context.Context, w io.Writer, scale Scale) error {
	var ks []int
	trials, cap3 := 4, 8
	switch scale {
	case ScaleQuick:
		ks = []int{4, 5, 6, 8, 11}
	case ScaleDefault:
		ks = []int{4, 5, 6, 7, 8, 10, 11, 12, 14, 16}
		trials, cap3 = 8, 12
	case ScalePaper:
		// The paper sweeps 4..247 with up to 2000 codes per length; this is
		// the largest sweep that stays tractable for the pure-Go solver.
		ks = []int{4, 5, 6, 7, 8, 10, 11, 12, 14, 16, 20, 26, 32}
		trials, cap3 = 20, 16
	}
	sets := []core.PatternSet{core.Set1, core.Set2, core.Set3, core.Set12}
	points, err := Fig5Sweep(ctx, ks, sets, trials, cap3, 0xF5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5: number of unique ECC functions matching the miscorrection profile")
	fmt.Fprintf(w, "(%d random codes per dataword length; min/median/max; cap at 200)\n", trials)
	fmt.Fprintf(w, "%-6s %-16s %-6s %-8s %-6s %s\n", "k", "patterns", "min", "median", "max", "note")
	for _, p := range points {
		note := ""
		if p.Capped {
			note = "hit cap"
		}
		full := ""
		if ecc.SequentialHamming(p.K).FullLength() {
			full = "full-length"
		}
		fmt.Fprintf(w, "%-6d %-16s %-6d %-8d %-6d %s %s\n", p.K, p.Set, p.Min, p.Median, p.Max, note, full)
	}
	fmt.Fprintln(w, "\nPaper checkpoints: {1,2}-CHARGED is always 1; 1-CHARGED is 1 for full-length k (4, 11, 26, ...).")
	return nil
}
