package figures

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
)

func init() {
	register(Generator{ID: "runtime", Description: "Section 6.3: analytical experiment-runtime model for the tREFw sweep", Run: RuntimeModel})
}

// RuntimeModel reproduces §6.3's analytical runtime analysis: experiment
// time is dominated by the refresh pauses, so the total is the sum of tested
// windows (4.2 hours for the paper's 2..22-minute sweep); chip I/O is
// negligible (168 ms to read a full 2 GiB LPDDR4-3200 chip). It also prints
// the analytic raw bit error rate the retention model yields per window, the
// planning data for choosing a sweep.
func RuntimeModel(ctx context.Context, w io.Writer, _ Scale) error {
	var opts core.CollectOptions
	for m := 2; m <= 22; m++ {
		opts.Windows = append(opts.Windows, time.Duration(m)*time.Minute)
	}
	opts.Rounds = 1
	total := core.ExperimentRuntime(opts)
	fmt.Fprintln(w, "Section 6.3: analytical experiment runtime")
	fmt.Fprintf(w, "paper sweep (tREFw 2..22 min, 1-min steps, 1 round): %v total\n", total)
	fmt.Fprintln(w, "chip I/O is negligible: ~168 ms per full 2 GiB chip read (LPDDR4-3200)")
	fmt.Fprintln(w)
	model := dram.DefaultRetention()
	fmt.Fprintf(w, "%-10s %-14s %-14s\n", "tREFw", "BER @ 80C", "BER @ 40C")
	for _, mins := range []int{1, 2, 5, 10, 15, 22, 30, 45} {
		d := time.Duration(mins) * time.Minute
		fmt.Fprintf(w, "%-10s %-14.3g %-14.3g\n", d,
			model.FailureProbability(d, 80), model.FailureProbability(d, 40))
	}
	fmt.Fprintln(w, "\nParallelizing across chips divides wall-clock time accordingly (§6.3).")
	return nil
}
