package figures

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
)

func init() {
	register(Generator{ID: "ablation", Description: "Extensions ablation: anti-cell profiles and lazy vs eager solving (beyond the paper)", Run: Ablation})
}

// Ablation quantifies the two extensions this reproduction adds on top of
// the paper (see README "Beyond the paper"):
//
//  1. Anti-cell profiles: for shortened codes where 1-CHARGED true-cell
//     profiles are ambiguous, how much does adding the 1-CHARGED anti-cell
//     profile narrow the candidate set?
//  2. Lazy (CEGAR) solving: how many of the k(k-1)/2 deferred 2-CHARGED
//     entries does SolveLazy actually materialize, and how do the two
//     solvers' times compare?
func Ablation(ctx context.Context, w io.Writer, scale Scale) error {
	ks := []int{6, 7, 8, 10}
	trials := 6
	if scale != ScaleQuick {
		ks = []int{6, 7, 8, 10, 12, 14, 16}
		trials = 10
	}

	fmt.Fprintln(w, "Ablation 1: candidate-count narrowing from anti-cell profiles (1-CHARGED)")
	fmt.Fprintf(w, "%-6s %-14s %-18s %-14s\n", "k", "true-only", "true+anti", "{1,2} true-only")
	// Every (k, trial) cell is an independent solve triple, so the whole
	// grid fans out over the engine; sums aggregate in deterministic order.
	eng := engine()
	type cell struct{ nTrue, nBoth, n12 int }
	cells := make([]cell, len(ks)*trials)
	if err := eng.ForEach(ctx, len(cells), func(i int) error {
		k, trial := ks[i/trials], i%trials
		r := ecc.MinParityBits(k)
		rng := rand.New(rand.NewPCG(0xAB1, uint64(k*1000+trial)))
		code := ecc.RandomHammingWithParity(k, r, rng)
		trueProf := eng.ExactProfile(code, core.Set1, false)
		a, err := core.Solve(ctx, trueProf, core.SolveOptions{ParityBits: r, MaxSolutions: 200})
		if err != nil {
			return err
		}
		both := trueProf.Append(eng.ExactProfile(code, core.Set1, true))
		b, err := core.Solve(ctx, both, core.SolveOptions{ParityBits: r, MaxSolutions: 200})
		if err != nil {
			return err
		}
		full, err := core.Solve(ctx, eng.ExactProfile(code, core.Set12, false),
			core.SolveOptions{ParityBits: r, MaxSolutions: 200})
		if err != nil {
			return err
		}
		cells[i] = cell{nTrue: len(a.Codes), nBoth: len(b.Codes), n12: len(full.Codes)}
		return nil
	}); err != nil {
		return err
	}
	for ki, k := range ks {
		sumTrue, sumBoth, sum12 := 0, 0, 0
		for _, c := range cells[ki*trials : (ki+1)*trials] {
			sumTrue += c.nTrue
			sumBoth += c.nBoth
			sum12 += c.n12
		}
		fmt.Fprintf(w, "%-6d %-14.1f %-18.1f %-14.1f\n", k,
			float64(sumTrue)/float64(trials),
			float64(sumBoth)/float64(trials),
			float64(sum12)/float64(trials))
	}

	fmt.Fprintln(w, "\nAblation 2: eager vs lazy (CEGAR) solving of {1,2}-CHARGED profiles")
	fmt.Fprintf(w, "%-6s %-12s %-12s %-22s\n", "k", "eager", "lazy", "materialized entries")
	for _, k := range ks {
		rng := rand.New(rand.NewPCG(0xAB2, uint64(k)))
		code := ecc.RandomHamming(k, rng)
		prof := core.ExactProfile(code, core.Set12.Patterns(k))
		startEager := time.Now()
		eager, err := core.Solve(ctx, prof, core.SolveOptions{ParityBits: code.ParityBits()})
		if err != nil {
			return err
		}
		eagerTime := time.Since(startEager)
		startLazy := time.Now()
		lazy, err := core.SolveLazy(ctx, prof, core.SolveOptions{ParityBits: code.ParityBits()})
		if err != nil {
			return err
		}
		lazyTime := time.Since(startLazy)
		if eager.Unique != lazy.Unique {
			return fmt.Errorf("ablation: eager/lazy disagree at k=%d", k)
		}
		total := k * (k - 1) / 2
		fmt.Fprintf(w, "%-6d %-12s %-12s %d of %d deferred\n", k,
			eagerTime.Round(time.Microsecond), lazyTime.Round(time.Microsecond),
			lazy.LazyRefinements, total)
	}
	fmt.Fprintln(w, "\nTakeaways: anti profiles recover much of the 2-CHARGED disambiguation power")
	fmt.Fprintln(w, "from 1-CHARGED-sized experiments; the lazy solver needs only a handful of")
	fmt.Fprintln(w, "the quadratic 2-CHARGED constraint set.")
	return nil
}
