package figures

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
)

func init() {
	register(Generator{ID: "fig6", Description: "Figure 6: BEER runtime and memory vs ECC code length (determine function vs check uniqueness)", Run: Fig6})
}

// Fig6Point is one code-length measurement of solver cost.
type Fig6Point struct {
	K             int
	DetermineTime time.Duration
	UniqueTime    time.Duration
	TotalTime     time.Duration
	AllocMiB      float64
	Vars, Clauses int
}

// Fig6Measure runs BEER's SAT phases for one dataword length with 1-CHARGED
// profiles (the paper's Figure 6 configuration) and reports wall-clock time
// split into determine-function and check-uniqueness phases plus memory
// allocated.
func Fig6Measure(ctx context.Context, k int, seed uint64) (Fig6Point, error) {
	rng := rand.New(rand.NewPCG(seed, uint64(k)))
	code := ecc.RandomHamming(k, rng)
	prof := core.ExactProfile(code, core.OneCharged(k))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := core.Solve(ctx, prof, core.SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: 2})
	if err != nil {
		return Fig6Point{}, err
	}
	runtime.ReadMemStats(&after)
	return Fig6Point{
		K:             k,
		DetermineTime: res.DetermineTime,
		UniqueTime:    res.UniquenessTime,
		TotalTime:     res.DetermineTime + res.UniquenessTime,
		AllocMiB:      float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		Vars:          res.Vars,
		Clauses:       res.Clauses,
	}, nil
}

// Fig6 renders the runtime/memory scaling table. The paper reports the same
// series for Z3 on Xeon servers (negligible for short codes; 57.1 h median
// and 6.3 GiB for 128-bit codes); the pure-Go CDCL solver's absolute numbers
// differ but the scaling shape — a jump at every added parity bit — is the
// comparison target.
func Fig6(ctx context.Context, w io.Writer, scale Scale) error {
	var ks []int
	switch scale {
	case ScaleQuick:
		ks = []int{4, 8, 11, 16}
	case ScaleDefault:
		ks = []int{4, 8, 11, 16, 26, 32, 45, 57}
	case ScalePaper:
		ks = []int{4, 8, 11, 16, 26, 32, 45, 57, 64, 96, 120, 128}
	}
	fmt.Fprintln(w, "Figure 6: BEER solver runtime and memory vs dataword length (1-CHARGED profiles)")
	fmt.Fprintf(w, "%-6s %-14s %-14s %-14s %-10s %-8s %s\n",
		"k", "determine", "uniqueness", "total", "alloc MiB", "vars", "clauses")
	for _, k := range ks {
		p, err := Fig6Measure(ctx, k, 0xF6)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %-14s %-14s %-14s %-10.1f %-8d %d\n",
			p.K, p.DetermineTime.Round(time.Microsecond), p.UniqueTime.Round(time.Microsecond),
			p.TotalTime.Round(time.Microsecond), p.AllocMiB, p.Vars, p.Clauses)
	}
	fmt.Fprintln(w, "\nPaper shape checkpoints: uniqueness dominates total; cost jumps when a parity bit is added (k=4->5, 11->12, 26->27, 57->58, 120->121).")
	return nil
}
