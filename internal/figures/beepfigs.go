package figures

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/beep"
	"repro/internal/ecc"
)

func init() {
	register(Generator{ID: "fig7", Description: "Figure 7: worked BEEP example on one (136,128) codeword", Run: Fig7})
	register(Generator{ID: "fig8", Description: "Figure 8: BEEP success rate, 1 vs 2 passes, by codeword length and error count", Run: Fig8})
	register(Generator{ID: "fig9", Description: "Figure 9: BEEP success rate vs per-bit error probability", Run: Fig9})
}

// Fig7 walks through the paper's Figure 7 example: BEEP profiling one
// 136-bit codeword (128 data bits), printing the three phases for the first
// few target bits and the final identified error set.
func Fig7(ctx context.Context, w io.Writer, scale Scale) error {
	k := 128
	if scale == ScaleQuick {
		k = 32
	}
	rng := rand.New(rand.NewPCG(0xF7, 7))
	code := ecc.RandomHamming(k, rng)
	cells := rng.Perm(code.N())[:4]
	word := &beep.SimWord{Code: code, ErrorCells: cells, PErr: 1.0, Rng: rng}
	fmt.Fprintf(w, "Figure 7: BEEP on a single %d-bit codeword (%d-bit dataword)\n", code.N(), k)
	fmt.Fprintf(w, "hidden error-prone cells (ground truth): %v\n\n", sortedInts(cells))
	prof := beep.NewProfiler(code, beep.Options{Passes: 2, TrialsPerPattern: 1, WorstCaseNeighbors: true}, rng)
	out, err := prof.Run(ctx, word)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "phase 1+2: crafted and tested %d patterns (%d targets skipped)\n", out.PatternsTested, out.SkippedBits)
	fmt.Fprintf(w, "phase 3: %d miscorrections observed and inverted via Equation 4\n", out.Miscorrections)
	fmt.Fprintf(w, "identified pre-correction error cells: %v\n", out.Identified)
	match := "EXACT MATCH"
	if !equalIntSets(out.Identified, cells) {
		match = "PARTIAL (see Figure 8 for success-rate statistics)"
	}
	fmt.Fprintf(w, "ground-truth comparison: %s\n", match)
	return nil
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalIntSets(sorted, unsorted []int) bool {
	if len(sorted) != len(unsorted) {
		return false
	}
	m := map[int]bool{}
	for _, x := range unsorted {
		m[x] = true
	}
	for _, x := range sorted {
		if !m[x] {
			return false
		}
	}
	return true
}

// fig8Words picks the Monte-Carlo sample size per grid cell: the paper uses
// 100 codewords everywhere; the pure-Go SAT crafting makes long codes costly,
// so smaller scales trim the counts while keeping the series shape.
func fig8Words(n int, scale Scale) int {
	switch scale {
	case ScaleQuick:
		switch {
		case n <= 31:
			return 10
		case n <= 63:
			return 6
		default:
			return 3
		}
	case ScaleDefault:
		switch {
		case n <= 31:
			return 40
		case n <= 63:
			return 25
		case n <= 127:
			return 10
		default:
			return 5
		}
	default:
		return 100
	}
}

// Fig8 reproduces Figure 8: BEEP success rate for 1 vs 2 passes across
// codeword lengths {31, 63, 127, 255} and injected error counts
// {2,3,4,5,10,15,20,25}, with all injected cells failing deterministically
// (P[error] = 1).
func Fig8(ctx context.Context, w io.Writer, scale Scale) error {
	lengths := []int{31, 63, 127, 255}
	if scale == ScaleQuick {
		lengths = []int{31, 63}
	}
	errCounts := []int{2, 3, 4, 5, 10, 15, 20, 25}
	fmt.Fprintln(w, "Figure 8: BEEP success rate (P[error]=1.0)")
	fmt.Fprintf(w, "%-10s %-8s %-8s %-10s %-10s\n", "codeword", "errors", "words", "1 pass", "2 passes")
	for _, n := range lengths {
		words := fig8Words(n, scale)
		for _, ne := range errCounts {
			if ne >= n {
				continue
			}
			row := make([]float64, 0, 2)
			for _, passes := range []int{1, 2} {
				res, err := beep.Evaluate(ctx, beep.EvalConfig{
					CodewordBits:     n,
					ErrorsPerWord:    ne,
					PErr:             1.0,
					Passes:           passes,
					TrialsPerPattern: 1,
					Words:            words,
				}, rand.New(rand.NewPCG(0xF8, uint64(n*1000+ne*10+passes))))
				if err != nil {
					return err
				}
				row = append(row, res.SuccessRate())
			}
			fmt.Fprintf(w, "%-10d %-8d %-8d %-10.2f %-10.2f\n", n, ne, words, row[0], row[1])
		}
	}
	fmt.Fprintln(w, "\nPaper shape checkpoints: 127/255-bit codewords near 100% even with 1 pass; 2 passes help short codewords.")
	return nil
}

// Fig9 reproduces Figure 9: single-pass BEEP success rate for per-bit error
// probabilities {1.0, 0.75, 0.5, 0.25} across codeword lengths {31, 63, 127}.
func Fig9(ctx context.Context, w io.Writer, scale Scale) error {
	lengths := []int{31, 63, 127}
	if scale == ScaleQuick {
		lengths = []int{31, 63}
	}
	errCounts := []int{2, 3, 4, 5, 10, 15, 20, 25}
	probs := []float64{1.0, 0.75, 0.5, 0.25}
	fmt.Fprintln(w, "Figure 9: BEEP success rate by per-bit error probability (1 pass)")
	fmt.Fprintf(w, "%-10s %-8s %-8s", "codeword", "errors", "words")
	for _, p := range probs {
		fmt.Fprintf(w, " P=%-6.2f", p)
	}
	fmt.Fprintln(w)
	for _, n := range lengths {
		words := fig8Words(n, scale)
		for _, ne := range errCounts {
			if ne >= n {
				continue
			}
			fmt.Fprintf(w, "%-10d %-8d %-8d", n, ne, words)
			for _, p := range probs {
				res, err := beep.Evaluate(ctx, beep.EvalConfig{
					CodewordBits:     n,
					ErrorsPerWord:    ne,
					PErr:             p,
					Passes:           1,
					TrialsPerPattern: 1,
					Words:            words,
				}, rand.New(rand.NewPCG(0xF9, uint64(n)*100000+uint64(ne)*100+uint64(p*100))))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %-8.2f", res.SuccessRate())
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nPaper shape checkpoints: success falls with lower P[error], least for long codewords.")
	return nil
}
