package figures

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "runtime", "table1", "table2"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d generators, want %d", len(got), len(want))
	}
	for i, g := range got {
		if g.ID != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, g.ID, want[i])
		}
		if g.Description == "" || g.Run == nil {
			t.Fatalf("generator %q incomplete", g.ID)
		}
	}
	if _, ok := ByID("fig5"); !ok {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"quick": ScaleQuick, "default": ScaleDefault, "": ScaleDefault, "paper": ScalePaper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(context.Background(), &buf, ScaleQuick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 8 error-pattern rows: 1 no-error, 3 correctable, 4 uncorrectable,
	// exactly as the paper's Table 1.
	if got := strings.Count(out, "No error"); got != 1 {
		t.Fatalf("%d no-error rows, want 1\n%s", got, out)
	}
	if got := strings.Count(out, "Correctable"); got != 3 {
		t.Fatalf("%d correctable rows, want 3\n%s", got, out)
	}
	if got := strings.Count(out, "Uncorrectable"); got != 4 {
		t.Fatalf("%d uncorrectable rows, want 4\n%s", got, out)
	}
}

func TestTable2Content(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(context.Background(), &buf, ScaleQuick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Pattern 0 is the only one with possible miscorrections: [? 1 1 1].
	if !strings.Contains(out, "[? 1 1 1]") {
		t.Fatalf("missing pattern-0 row:\n%s", out)
	}
	if !strings.Contains(out, "[- - - ?]") {
		t.Fatalf("missing pattern-3 row:\n%s", out)
	}
}

func TestHeatChar(t *testing.T) {
	cases := map[int64]byte{0: '.', 5: ':', 50: '*', 500: 'o', 5000: '#'}
	for n, want := range cases {
		if got := heatChar(n); got != want {
			t.Errorf("heatChar(%d) = %c, want %c", n, got, want)
		}
	}
}

// Smoke-run every generator at quick scale; these are the exact entry points
// cmd/figures and the benchmarks use.
func TestAllGeneratorsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale figure sweep still takes tens of seconds")
	}
	for _, g := range All() {
		g := g
		t.Run(g.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := g.Run(context.Background(), &buf, ScaleQuick); err != nil {
				t.Fatalf("%s: %v", g.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", g.ID)
			}
		})
	}
}

func TestFig5SweepInvariants(t *testing.T) {
	points, err := Fig5Sweep(context.Background(), []int{4, 6}, nil, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatal("no sets requested should give no points")
	}
	sets := []core.PatternSet{core.Set1, core.Set2, core.Set3, core.Set12}
	points, err = Fig5Sweep(context.Background(), []int{4}, sets, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(sets) {
		t.Fatalf("got %d points, want %d", len(points), len(sets))
	}
	for _, p := range points {
		if p.Min > p.Median || p.Median > p.Max {
			t.Fatalf("ordering violated: %+v", p)
		}
		if p.K == 4 && p.Min != 1 {
			t.Fatalf("k=4 is full-length; every set should find exactly 1, got %+v", p)
		}
	}
}

func TestFig6MeasureSane(t *testing.T) {
	p, err := Fig6Measure(context.Background(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 8 || p.TotalTime <= 0 || p.Vars <= 0 || p.Clauses <= 0 {
		t.Fatalf("implausible measurement: %+v", p)
	}
	if p.TotalTime != p.DetermineTime+p.UniqueTime {
		t.Fatal("total time must be the sum of the phases")
	}
}

// Paper checkpoints at quick scale: full-length k=4 and k=11 are unique for
// every pattern family; {1,2}-CHARGED is unique everywhere.
func TestFig5PaperCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	sets := []core.PatternSet{core.Set1, core.Set12}
	points, err := Fig5Sweep(context.Background(), []int{4, 8, 11}, sets, 4, 8, 0xCF)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		fullLength := p.K == 4 || p.K == 11
		if p.Set == core.Set12 && p.Max != 1 {
			t.Errorf("k=%d {1,2}-CHARGED found up to %d solutions, want 1", p.K, p.Max)
		}
		if p.Set == core.Set1 && fullLength && p.Max != 1 {
			t.Errorf("k=%d full-length 1-CHARGED found up to %d solutions, want 1", p.K, p.Max)
		}
	}
}
