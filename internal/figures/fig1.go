package figures

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/parallel"
	"repro/internal/stats"
)

func init() {
	register(Generator{ID: "fig1", Description: "Figure 1: relative per-bit error probabilities for three ECC functions (k=32, 0xFF, uniform RBER 1e-4)", Run: Fig1})
}

// Fig1 reproduces Figure 1: three single-error-correcting Hamming codes with
// 32 data bits and 6 parity bits but different parity-check matrices are
// exposed to identical uniform-random pre-correction errors; the relative
// post-correction error probability per data bit differs per function.
// Medians and 95% confidence intervals come from bootstrapping over batches
// (the paper bootstraps 1000 samples over 10^9 words).
//
// The simulation conditions on >= 2 errors per word (see einsim): at RBER
// 1e-4 only such words produce post-correction errors, so the relative
// distributions are identical and the paper's 10^9-word budget is
// unnecessary.
//
// The batches are independent Monte-Carlo runs, so they fan out over the
// parallel engine as one simulation batch (codes x batches jobs); each job
// draws from its own seeded stream, keeping the figure bit-identical for any
// worker count.
func Fig1(ctx context.Context, w io.Writer, scale Scale) error {
	k := 32
	words, batches, resamples := 40000, 20, 200
	switch scale {
	case ScaleDefault:
		words, batches, resamples = 200000, 40, 500
	case ScalePaper:
		words, batches, resamples = 2000000, 100, 1000
	}
	rng := rand.New(rand.NewPCG(0xF16, 1))
	codes := []struct {
		name string
		code *ecc.Code
	}{
		{"ECC Function 0", ecc.SequentialHamming(k)},
		{"ECC Function 1", ecc.LowWeightHamming(k)},
		{"ECC Function 2", ecc.RandomHamming(k, rng)},
	}
	type series struct {
		name string
		ivs  []stats.Interval
	}
	var all []series

	// Pre-correction distribution (flat by construction, shown for
	// reference like the paper's grey series): uniform over the codeword's
	// n bits; restricted to the k data bits for plotting.
	n := codes[0].code.N()
	pre := make([]float64, k)
	for b := range pre {
		pre[b] = 1.0 / float64(n)
	}

	jobs := make([]parallel.SimJob, 0, len(codes)*batches)
	for _, c := range codes {
		for batch := 0; batch < batches; batch++ {
			jobs = append(jobs, parallel.SimJob{
				Config: einsim.Config{
					Code:               c.code,
					Pattern:            einsim.PatternAllOnes,
					Model:              einsim.ModelUniform,
					RBER:               1e-4,
					Words:              words / batches,
					ConditionMinErrors: 2,
				},
				Seed: 0xF16,
			})
		}
	}
	batchShares := make([][]float64, len(jobs))
	var simErr error
	for r := range engine().SimulateBatch(ctx, jobs) { // drain fully even on error
		if r.Err != nil {
			if simErr == nil {
				simErr = r.Err
			}
			continue
		}
		batchShares[r.Index] = r.Result.RelativePostProbabilities()
	}
	if simErr != nil {
		return simErr
	}

	for ci, c := range codes {
		perBatch := batchShares[ci*batches : (ci+1)*batches]
		ivs := make([]stats.Interval, k)
		for b := 0; b < k; b++ {
			samples := make([]float64, batches)
			for i := range perBatch {
				samples[i] = perBatch[i][b]
			}
			ivs[b] = stats.Bootstrap(samples, stats.Mean, resamples, 0.95, rng)
		}
		all = append(all, series{name: c.name, ivs: ivs})
	}

	fmt.Fprintln(w, "Figure 1: relative error probability per data-bit index")
	fmt.Fprintf(w, "(k=%d, 0xFF pattern, uniform-random RBER 1e-4, %d conditioned words per function)\n", k, words)
	fmt.Fprintf(w, "%-4s %-12s", "bit", "pre-corr")
	for _, s := range all {
		fmt.Fprintf(w, " %-26s", s.name)
	}
	fmt.Fprintln(w)
	for b := 0; b < k; b++ {
		fmt.Fprintf(w, "%-4d %-12.4f", b, pre[b])
		for _, s := range all {
			iv := s.ivs[b]
			fmt.Fprintf(w, " %6.4f [%6.4f,%6.4f]  ", iv.Point, iv.Lo, iv.Hi)
		}
		fmt.Fprintln(w)
	}
	// Paper takeaway: the three post-correction distributions differ.
	fmt.Fprintf(w, "\nL1 distance between function 0 and 1: %.4f; 0 and 2: %.4f\n",
		l1(all[0].ivs, all[1].ivs), l1(all[0].ivs, all[2].ivs))
	return nil
}

func l1(a, b []stats.Interval) float64 {
	d := 0.0
	for i := range a {
		x := a[i].Point - b[i].Point
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}
