package figures

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/ondie"
	"repro/internal/stats"
)

func init() {
	register(Generator{ID: "fig3", Description: "Figure 3: 1-CHARGED miscorrection-profile heatmaps for one chip per manufacturer", Run: Fig3})
	register(Generator{ID: "fig4", Description: "Figure 4: per-bit miscorrection probability distributions across the tREFw sweep (manufacturer B) with threshold filter", Run: Fig4})
}

// fig3Chip builds the representative chip used for Figures 3 and 4.
func fig3Chip(m ondie.Manufacturer, scale Scale) (*ondie.Chip, []time.Duration) {
	k, rows := 32, 256
	var windows []time.Duration
	switch scale {
	case ScaleQuick:
		for min := 8; min <= 48; min += 8 {
			windows = append(windows, time.Duration(min)*time.Minute)
		}
	case ScaleDefault:
		k, rows = 64, 512
		for min := 4; min <= 48; min += 4 {
			windows = append(windows, time.Duration(min)*time.Minute)
		}
	case ScalePaper:
		// The paper's chips: 128-bit datawords, tREFw 2..22 minutes in
		// 1-minute steps (the compressed retention model makes longer
		// windows equivalent to the paper's higher sample counts).
		k, rows = 128, 2048
		for min := 2; min <= 48; min++ {
			windows = append(windows, time.Duration(min)*time.Minute)
		}
	}
	if m == ondie.MfrC {
		rows *= 2 // only half the rows are true-cells
	}
	chip := ondie.MustNew(ondie.Config{
		Manufacturer:  m,
		DataBits:      k,
		Banks:         1,
		Rows:          rows,
		RegionsPerRow: 8,
		Seed:          uint64(len(m)) + 0xF3,
	})
	return chip, windows
}

// fig3Counts collects the 1-CHARGED observation counts for one chip.
func fig3Counts(ctx context.Context, m ondie.Manufacturer, scale Scale, rounds int) (*core.Counts, error) {
	chip, windows := fig3Chip(m, scale)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		return nil, err
	}
	return core.CollectCounts(ctx, chip, rows, layout, core.OneCharged(layout.K()), core.CollectOptions{
		Windows: windows,
		TempC:   80,
		Rounds:  rounds,
	})
}

// Fig3 reproduces Figure 3: for a representative chip of each manufacturer,
// the number of errors observed at each data-bit index (x) for each
// 1-CHARGED pattern (y), rendered as a text heatmap. Manufacturer A's
// unstructured matrix contrasts with B's and C's repeating patterns, and the
// diagonal (the charged bit itself) stands out — exactly the paper's
// qualitative result.
func Fig3(ctx context.Context, w io.Writer, scale Scale) error {
	mfrs := []ondie.Manufacturer{ondie.MfrA, ondie.MfrB, ondie.MfrC}
	// The three chips are independent, so their collections fan out over the
	// engine; rendering stays in manufacturer order.
	perMfr := make([]*core.Counts, len(mfrs))
	if err := engine().ForEach(ctx, len(mfrs), func(i int) error {
		counts, err := fig3Counts(ctx, mfrs[i], scale, 1)
		if err != nil {
			return err
		}
		perMfr[i] = counts
		return nil
	}); err != nil {
		return err
	}
	for i, m := range mfrs {
		counts := perMfr[i]
		fmt.Fprintf(w, "Figure 3 (%s): errors per (1-CHARGED pattern row, data-bit column)\n", m)
		fmt.Fprintln(w, "legend: . zero   : <10   * <100   o <1000   # >=1000")
		for _, e := range counts.Entries {
			fmt.Fprintf(w, "%3d |", e.Pattern.Charged()[0])
			for b := 0; b < counts.K; b++ {
				fmt.Fprintf(w, "%c", heatChar(e.Errors[b]))
			}
			fmt.Fprintln(w, "|")
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig4 reproduces Figure 4: for a representative manufacturer-B chip, the
// distribution (across the refresh-window sweep) of each bit's share of all
// observed miscorrections, aggregated over every 1-CHARGED pattern. Zero and
// nonzero populations separate cleanly, so a simple threshold filter
// (the paper's example: 1e-3) classifies miscorrection-susceptible bits.
func Fig4(ctx context.Context, w io.Writer, scale Scale) error {
	chip, windows := fig3Chip(ondie.MfrB, scale)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		return err
	}
	k := layout.K()
	patterns := core.OneCharged(k)
	// One collection per window so per-window probability masses can be
	// summarized as the paper's boxplots. The windows are independent, so
	// they fan out over the engine, each against its own same-model chip
	// (identical seed => identical retention times, the §6.3 same-model
	// property) reusing the layout discovered above; per-window results are
	// aggregated in window order, so the figure matches the serial sweep.
	perWindow := make([]*core.Counts, len(windows))
	if err := engine().ForEach(ctx, len(windows), func(i int) error {
		windowChip, _ := fig3Chip(ondie.MfrB, scale)
		counts, err := core.CollectCounts(ctx, windowChip, rows, layout, patterns, core.CollectOptions{
			Windows: []time.Duration{windows[i]},
			TempC:   80,
			Rounds:  1,
		})
		if err != nil {
			return err
		}
		perWindow[i] = counts
		return nil
	}); err != nil {
		return err
	}
	perBit := make([][]float64, k)
	for _, counts := range perWindow {
		// Aggregate miscorrections (errors at DISCHARGED positions) across
		// all patterns, then normalize to probability mass per bit.
		mass := make([]float64, k)
		total := 0.0
		for _, e := range counts.Entries {
			for b := 0; b < k; b++ {
				if !e.Pattern.Has(b) {
					mass[b] += float64(e.Errors[b])
					total += float64(e.Errors[b])
				}
			}
		}
		for b := 0; b < k; b++ {
			if total > 0 {
				perBit[b] = append(perBit[b], mass[b]/total)
			}
		}
	}
	const threshold = 1e-3
	fmt.Fprintln(w, "Figure 4 (manufacturer B): per-bit miscorrection probability mass across the tREFw sweep")
	fmt.Fprintf(w, "threshold filter at %g separates zero from nonzero populations\n", threshold)
	fmt.Fprintf(w, "%-4s %-10s %-10s %-10s %-10s %-10s %s\n", "bit", "min", "q1", "median", "q3", "max", "> threshold")
	above, below := 0, 0
	for b := 0; b < k; b++ {
		s := stats.Summarize(perBit[b])
		flag := ""
		if s.Median >= threshold {
			flag = "yes"
			above++
		} else {
			below++
		}
		fmt.Fprintf(w, "%-4d %-10.6f %-10.6f %-10.6f %-10.6f %-10.6f %s\n",
			b, s.Min, s.Q1, s.Median, s.Q3, s.Max, flag)
	}
	fmt.Fprintf(w, "\n%d bits above threshold, %d below\n", above, below)
	return nil
}
