// Package figures regenerates every table and figure of the paper's
// evaluation from the simulated substrate, printing the same rows and series
// the paper reports. Each generator has a Scale knob: ScaleQuick for tests
// and benchmarks, ScaleDefault for interactive runs, and ScalePaper for
// paper-comparable sweeps (hours of compute, as §6.2 reports for the
// original).
//
// cmd/figures exposes these on the command line; the repository-root
// benchmarks invoke them with io.Discard to time each experiment.
//
// Entry points: All lists the registered Generators, ByID fetches one, and
// each Generator's Run writes the artifact; SetEngine routes every sweep
// through a caller-bounded parallel engine (cmd/figures -workers).
// DESIGN.md §3 maps each generator id to its paper artifact.
package figures

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/parallel"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleQuick shrinks every sweep to seconds; shapes remain visible.
	ScaleQuick Scale = iota
	// ScaleDefault runs minutes-scale sweeps with stable statistics.
	ScaleDefault
	// ScalePaper approaches the paper's configurations where feasible.
	ScalePaper
)

// ParseScale converts a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return ScaleQuick, nil
	case "default", "":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("figures: unknown scale %q (want quick, default or paper)", s)
}

// Generator produces one table or figure. Run honors ctx cancellation
// between (and, for sharded sweeps, within) experiment cells.
type Generator struct {
	ID          string
	Description string
	Run         func(ctx context.Context, w io.Writer, scale Scale) error
}

var registry []Generator

func register(g Generator) { registry = append(registry, g) }

// customEngine, when set, overrides the shared parallel engine for every
// generator (cmd/figures -workers).
var customEngine *parallel.Engine

// SetEngine routes all figure generation through e; nil restores the shared
// default engine.
func SetEngine(e *parallel.Engine) { customEngine = e }

// engine returns the experiment engine generators shard their sweeps on.
func engine() *parallel.Engine {
	if customEngine != nil {
		return customEngine
	}
	return parallel.Default()
}

// All returns every registered generator, sorted by ID.
func All() []Generator {
	out := append([]Generator(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds a generator.
func ByID(id string) (Generator, bool) {
	for _, g := range registry {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// heatChar maps a count to an ASCII heat character for text heatmaps.
func heatChar(count int64) byte {
	switch {
	case count == 0:
		return '.'
	case count < 10:
		return ':'
	case count < 100:
		return '*'
	case count < 1000:
		return 'o'
	default:
		return '#'
	}
}
