package figures

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

func init() {
	register(Generator{ID: "table1", Description: "Table 1: error patterns, syndromes and outcomes for the Equation-3 codeword of the (7,4) Hamming code", Run: Table1})
	register(Generator{ID: "table2", Description: "Table 2: miscorrection profile of the (7,4) Hamming code under the 1-CHARGED patterns", Run: Table2})
}

// Table1 reproduces the paper's Table 1. The Equation-3 codeword is
// [D D C D | D C C]: data bit 2 and parity bits 1 and 2 (codeword positions
// 5 and 6) are CHARGED. Since only CHARGED cells can experience
// data-retention errors, the 2^3 subsets of {2, 5, 6} are the possible error
// patterns; the syndrome of each is the XOR of the matching parity-check
// columns, and the outcome follows from the error count (No error /
// Correctable / Uncorrectable for a single-error-correcting code).
func Table1(ctx context.Context, w io.Writer, _ Scale) error {
	code := ecc.Hamming74()
	charged := []int{2, 5, 6} // codeword positions of CHARGED cells (Eq. 3)
	fmt.Fprintln(w, "Table 1: data-retention error patterns for codeword [D D C D | D C C] (Eq. 3)")
	fmt.Fprintf(w, "%-24s %-22s %s\n", "Pre-Correction Errors", "Syndrome", "Outcome")
	for mask := 0; mask < 1<<uint(len(charged)); mask++ {
		var errPos []int
		syndrome := gf2.NewVec(code.ParityBits())
		name := ""
		for i, c := range charged {
			if mask>>uint(i)&1 == 1 {
				errPos = append(errPos, c)
				syndrome.XorInto(code.Column(c))
				if name != "" {
					name += " + "
				}
				name += fmt.Sprintf("H*,%d", c)
			}
		}
		if name == "" {
			name = "0"
		}
		fmt.Fprintf(w, "%-24s %-22s %s\n", errPattern(errPos, code.N()), name, classify(len(errPos)))
	}
	return nil
}

func errPattern(errPos []int, n int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i == 4 {
			sb.WriteString("| ")
		}
		bit := "0"
		for _, p := range errPos {
			if p == i {
				bit = "1"
			}
		}
		sb.WriteString(bit)
		if i != n-1 {
			sb.WriteByte(' ')
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

func classify(errCount int) string {
	switch {
	case errCount == 0:
		return "No error"
	case errCount == 1:
		return "Correctable"
	default:
		return "Uncorrectable"
	}
}

// Table2 reproduces the paper's Table 2: the 1-CHARGED miscorrection profile
// of the Equation-1 code, printed with the paper's -, 1, ? notation.
func Table2(ctx context.Context, w io.Writer, _ Scale) error {
	code := ecc.Hamming74()
	prof := core.ExactProfile(code, core.OneCharged(code.K()))
	fmt.Fprintln(w, "Table 2: miscorrection profile of the (7,4) Hamming code (Eq. 1)")
	fmt.Fprintf(w, "%-12s %-22s %s\n", "Pattern ID", "1-CHARGED Pattern", "Possible Miscorrections")
	// The paper lists patterns from ID 3 down to 0.
	for i := len(prof.Entries) - 1; i >= 0; i-- {
		e := prof.Entries[i]
		a := e.Pattern.Charged()[0]
		var pat, misc strings.Builder
		pat.WriteByte('[')
		misc.WriteByte('[')
		for b := 0; b < code.K(); b++ {
			if b > 0 {
				pat.WriteByte(' ')
				misc.WriteByte(' ')
			}
			if b == a {
				pat.WriteByte('C')
				misc.WriteByte('?')
			} else {
				pat.WriteByte('D')
				if e.Possible.Get(b) {
					misc.WriteByte('1')
				} else {
					misc.WriteByte('-')
				}
			}
		}
		pat.WriteByte(']')
		misc.WriteByte(']')
		fmt.Fprintf(w, "%-12d %-22s %s\n", a, pat.String(), misc.String())
	}
	return nil
}
