package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
)

// Bucket names the Store layer uses on any Backend.
const (
	// BucketCodes holds CodeRecords keyed by canonical profile hash — the
	// content-addressed registry of recovered ECC functions (the paper's §7
	// "BEER database").
	BucketCodes = "codes"
	// BucketJobs holds JobRecords keyed by job id — the beerd job log that
	// makes submissions survive restarts.
	BucketJobs = "jobs"
)

// Store is the typed layer over a Backend: recovered-code records addressed
// by profile hash, and job records addressed by job id. A Store is safe for
// concurrent use if its Backend is (both shipped backends are).
type Store struct {
	backend Backend
	// results caches reconstructed solver results per profile hash so
	// repeated lookups of a hot hash skip the backend read and code
	// re-parsing. Shared by every SolveCache view of this Store.
	results *LRU[string, *core.Result]
	// codes caches parsed registry records per profile hash, so GetCode —
	// the solve-cache write path's provenance check, the /codes handlers and
	// a coordinator's remote-cache lookups — stops paying a disk open plus a
	// JSON decode per hit on a file backend. Entries are shared read-only.
	codes *LRU[string, codeEntry]
}

// resultCacheSize bounds the in-memory result cache fronting the backend. A
// result is a handful of parsed codes — hundreds are cheap, and the durable
// record remains behind every eviction. codeCacheSize bounds the parsed
// CodeRecord cache the same way.
const (
	resultCacheSize = 512
	codeCacheSize   = 512
)

// codeEntry is one cached GetCode outcome: the parsed record, or the read
// error that produced no record. Misses and errors are never left in the
// cache (see GetCode), so the zero entry only ever exists transiently.
type codeEntry struct {
	rec *CodeRecord
	err error
}

// New wraps a Backend in the typed Store layer.
func New(b Backend) *Store {
	return &Store{
		backend: b,
		results: NewLRU[string, *core.Result](resultCacheSize),
		codes:   NewLRU[string, codeEntry](codeCacheSize),
	}
}

// Backend returns the underlying persistence backend.
func (s *Store) Backend() Backend { return s.backend }

// Instrument wraps the store's backend so every operation reports its
// latency to observe with an op label ("get", "put", "delete", "keys") —
// how beerd feeds the beerd_store_op_seconds histogram without the store
// depending on the metrics layer. Call before the store is shared across
// goroutines (service.New does); instrumenting twice stacks the wrappers.
func (s *Store) Instrument(observe func(op string, seconds float64)) {
	if observe == nil {
		return
	}
	s.backend = &timedBackend{inner: s.backend, observe: observe}
}

// timedBackend decorates a Backend with per-operation latency callbacks.
type timedBackend struct {
	inner   Backend
	observe func(op string, seconds float64)
}

func (b *timedBackend) timed(op string, start time.Time) {
	b.observe(op, time.Since(start).Seconds())
}

func (b *timedBackend) Put(bucket, key string, value []byte) error {
	defer b.timed("put", time.Now())
	return b.inner.Put(bucket, key, value)
}

func (b *timedBackend) Get(bucket, key string) ([]byte, bool, error) {
	defer b.timed("get", time.Now())
	return b.inner.Get(bucket, key)
}

func (b *timedBackend) Delete(bucket, key string) error {
	defer b.timed("delete", time.Now())
	return b.inner.Delete(bucket, key)
}

func (b *timedBackend) Keys(bucket string) ([]string, error) {
	defer b.timed("keys", time.Now())
	return b.inner.Keys(bucket)
}

func (b *timedBackend) Close() error { return b.inner.Close() }

// String keeps Describe rendering the wrapped backend's identity.
func (b *timedBackend) String() string { return describeBackend(b.inner) }

// Describe renders the backend for logs and healthz ("mem", "file:<dir>").
func (s *Store) Describe() string { return describeBackend(s.backend) }

// Close releases the backend.
func (s *Store) Close() error { return s.backend.Close() }

// CodeRecord is one entry of the recovered-code registry: every candidate
// ECC function consistent with a miscorrection profile, plus the solver
// statistics of the run that found them. Records are keyed by the profile's
// canonical hash (core.Profile.Hash), so two experiments observing the same
// fingerprint share one record.
type CodeRecord struct {
	// ProfileHash is the canonical content address (lowercase hex SHA-256 of
	// the profile's normalized serialization).
	ProfileHash string `json:"profile_hash"`
	// K and N describe the code shape (dataword and codeword bits).
	K int `json:"k"`
	N int `json:"n"`
	// Codes holds every candidate in ecc.Code text form (parseable with
	// ecc.Code.UnmarshalText), in solver discovery order. Empty means the
	// profile was proven unsatisfiable.
	Codes []string `json:"codes"`
	// Unique and Exhausted mirror core.Result: Unique means exactly one
	// function matches and the search proved it.
	Unique    bool `json:"unique"`
	Exhausted bool `json:"exhausted"`
	// Solver statistics of the original run, replayed on cache hits.
	Vars            int     `json:"vars"`
	Clauses         int     `json:"clauses"`
	LazyRefinements int     `json:"lazy_refinements,omitempty"`
	DetermineMS     float64 `json:"determine_ms"`
	UniquenessMS    float64 `json:"uniqueness_ms"`
	// CreatedAt stamps the first successful solve; Source identifies the
	// producer (a beerd job id, "cmd/beer", ...).
	CreatedAt time.Time `json:"created_at"`
	Source    string    `json:"source,omitempty"`
}

// RecordFromResult converts a successful solve into a registry record.
func RecordFromResult(profileHash string, k int, res *core.Result, source string) *CodeRecord {
	rec := &CodeRecord{
		ProfileHash:     profileHash,
		K:               k,
		Unique:          res.Unique,
		Exhausted:       res.Exhausted,
		Vars:            res.Vars,
		Clauses:         res.Clauses,
		LazyRefinements: res.LazyRefinements,
		DetermineMS:     res.DetermineTime.Seconds() * 1e3,
		UniquenessMS:    res.UniquenessTime.Seconds() * 1e3,
		CreatedAt:       time.Now().UTC(),
		Source:          source,
	}
	for _, code := range res.Codes {
		rec.N = code.N()
		text, err := code.MarshalText()
		if err != nil {
			continue // MarshalText has no failing path today; skip defensively
		}
		rec.Codes = append(rec.Codes, string(text))
	}
	return rec
}

// Result reconstructs the core.Result the record was created from. Timing
// and encoding statistics replay from the original run; per-conflict SAT
// stats are not persisted and come back zero.
func (r *CodeRecord) Result() (*core.Result, error) {
	res := &core.Result{
		Unique:          r.Unique,
		Exhausted:       r.Exhausted,
		Vars:            r.Vars,
		Clauses:         r.Clauses,
		LazyRefinements: r.LazyRefinements,
		DetermineTime:   time.Duration(r.DetermineMS * float64(time.Millisecond)),
		UniquenessTime:  time.Duration(r.UniquenessMS * float64(time.Millisecond)),
	}
	for i, text := range r.Codes {
		code := new(ecc.Code)
		if err := code.UnmarshalText([]byte(text)); err != nil {
			return nil, fmt.Errorf("store: record %s code %d: %w", r.ProfileHash, i, err)
		}
		res.Codes = append(res.Codes, code)
	}
	return res, nil
}

// PutCode writes a registry record under its profile hash, overwriting any
// previous record for the hash. The caller yields ownership: the record is
// cached and later GetCode callers share it read-only.
func (s *Store) PutCode(rec *CodeRecord) error {
	if rec.ProfileHash == "" {
		return fmt.Errorf("store: code record without profile hash")
	}
	if err := s.putJSON(BucketCodes, rec.ProfileHash, rec); err != nil {
		return err
	}
	s.codes.Add(rec.ProfileHash, codeEntry{rec: rec})
	return nil
}

// GetCode returns the registry record for a profile hash. Hot hashes are
// served from the in-memory record cache; the returned record is shared and
// must be treated as read-only. Misses and read errors are never cached: a
// record that appears in the backend later (seeded by an operator, or
// written by another process sharing the store directory) is found on the
// next lookup, and a corrupt record keeps reporting its error until the
// solve-cache path overwrites it.
func (s *Store) GetCode(profileHash string) (*CodeRecord, bool, error) {
	e := s.codes.Get(profileHash, func() codeEntry {
		rec := new(CodeRecord)
		ok, err := s.getJSON(BucketCodes, profileHash, rec)
		if err != nil {
			return codeEntry{err: err}
		}
		if !ok {
			return codeEntry{}
		}
		return codeEntry{rec: rec}
	})
	if e.rec == nil {
		s.codes.Remove(profileHash)
		return nil, false, e.err
	}
	return e.rec, true, nil
}

// Codes lists every registry record, oldest first (ties break on hash).
// Records that fail to read or parse are skipped: one corrupt file must not
// take down the whole listing (direct GetCode still reports the error, and
// the solve-cache path overwrites corrupt records on the next solve).
func (s *Store) Codes() ([]*CodeRecord, error) {
	keys, err := s.backend.Keys(BucketCodes)
	if err != nil {
		return nil, err
	}
	out := make([]*CodeRecord, 0, len(keys))
	for _, key := range keys {
		rec, ok, err := s.GetCode(key)
		if err != nil || !ok {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ProfileHash < out[j].ProfileHash
	})
	return out, nil
}

// JobRecord is the durable form of one beerd job. The spec and result are
// stored as raw JSON — the service owns their schemas — so the store stays
// decoupled from the HTTP layer while still replaying both verbatim after a
// restart.
type JobRecord struct {
	ID   string `json:"id"`
	Type string `json:"type"`
	// Spec is the submitted JobSpec, verbatim; a restarted server re-runs
	// non-terminal jobs from it.
	Spec json.RawMessage `json:"spec"`
	// State is the job lifecycle state ("running", "succeeded", "failed",
	// "canceled"). A record persisted as "running" marks a job interrupted
	// by a shutdown or crash; restart resumes it from the spec.
	State    string    `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Result is the JobResult JSON of a succeeded job.
	Result json.RawMessage `json:"result,omitempty"`
	// ProfileHash links a succeeded recovery job to its BucketCodes record.
	ProfileHash string `json:"profile_hash,omitempty"`
}

// PutJob writes a job record under its id.
func (s *Store) PutJob(rec *JobRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("store: job record without id")
	}
	return s.putJSON(BucketJobs, rec.ID, rec)
}

// GetJob returns the job record for an id.
func (s *Store) GetJob(id string) (*JobRecord, bool, error) {
	rec := new(JobRecord)
	ok, err := s.getJSON(BucketJobs, id, rec)
	if !ok || err != nil {
		return nil, false, err
	}
	return rec, true, nil
}

// Jobs lists every job record in key order (the service re-sorts by
// submission sequence). As with Codes, records that fail to read or parse
// are skipped so one corrupt file cannot block replaying every other job.
func (s *Store) Jobs() ([]*JobRecord, error) {
	keys, err := s.backend.Keys(BucketJobs)
	if err != nil {
		return nil, err
	}
	out := make([]*JobRecord, 0, len(keys))
	for _, key := range keys {
		rec, ok, err := s.GetJob(key)
		if err != nil || !ok {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

func (s *Store) putJSON(bucket, key string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal %s/%s: %w", bucket, key, err)
	}
	return s.backend.Put(bucket, key, append(data, '\n'))
}

func (s *Store) getJSON(bucket, key string, v any) (bool, error) {
	data, ok, err := s.backend.Get(bucket, key)
	if !ok || err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("store: unmarshal %s/%s: %w", bucket, key, err)
	}
	return true, nil
}
