package store

import (
	"container/list"
	"sync"
)

// LRU is a bounded in-memory cache with single-flight computation: when
// several goroutines ask for the same missing key at once, exactly one runs
// the compute function and the rest block until its value is ready. It is
// the one cache primitive shared across the repository — internal/parallel
// memoizes exact miscorrection profiles and materialized pattern families on
// it, and Store.SolveCache fronts the durable Backend with it so hot profile
// hashes skip disk reads and record re-parsing.
//
// Values are shared, not copied: callers must treat them as read-only.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *lruEntry[K, V]
	items map[K]*list.Element
	hits  int64
	reqs  int64
}

// lruEntry is one cache slot. ready is closed once val is computed, so
// concurrent requests for the same key compute exactly once and share the
// result.
type lruEntry[K comparable, V any] struct {
	key   K
	ready chan struct{}
	val   V
}

// NewLRU returns a cache bounded to max entries (max must be positive).
func NewLRU[K comparable, V any](max int) *LRU[K, V] {
	if max < 1 {
		panic("store: LRU capacity must be positive")
	}
	return &LRU[K, V]{max: max, ll: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the cached value for key, invoking compute on a miss. Exactly
// one caller computes per in-flight key; the rest block on the entry
// becoming ready. The computed value is cached even if it is the zero value
// — pair Get with Add to overwrite a cached negative result.
func (c *LRU[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	c.reqs++
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		entry := el.Value.(*lruEntry[K, V])
		c.mu.Unlock()
		<-entry.ready
		return entry.val
	}
	entry := &lruEntry[K, V]{key: key, ready: make(chan struct{})}
	c.items[key] = c.ll.PushFront(entry)
	c.evictLocked()
	c.mu.Unlock()
	// Compute outside the lock; an entry evicted while in flight still
	// resolves for its waiters.
	entry.val = compute()
	close(entry.ready)
	return entry.val
}

// Add inserts (or overwrites) a ready value for key, marking it most
// recently used. Waiters on a previous in-flight entry for the same key
// still receive that entry's computed value; subsequent Gets see v.
func (c *LRU[K, V]) Add(key K, v V) {
	entry := &lruEntry[K, V]{key: key, ready: make(chan struct{}), val: v}
	close(entry.ready)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
	}
	c.items[key] = c.ll.PushFront(entry)
	c.evictLocked()
	c.mu.Unlock()
}

// Remove drops the entry for key, if any. Waiters on an in-flight entry
// still receive its computed value; the next Get recomputes. Used to avoid
// caching negative results: compute-returned misses are removed so a value
// that appears later (e.g. in a shared durable backend) is seen.
func (c *LRU[K, V]) Remove(key K) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
	c.mu.Unlock()
}

// evictLocked trims the cache to capacity; callers hold c.mu.
func (c *LRU[K, V]) evictLocked() {
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Stats returns (hits, requests) counted by Get since construction.
func (c *LRU[K, V]) Stats() (hits, requests int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.reqs
}

// Len returns the current number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
