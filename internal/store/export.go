package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/ecc"
)

// CodeExport is the JSON wire format for a single ECC function, modeled on
// the EINSim tool's code descriptions (uid + scheme + dimensions + check
// matrix) so recovered functions can flow between tools: `cmd/beer -o`
// writes it, `cmd/einsim -code` reads it back for simulation, and beerd's
// GET /codes lists the registry in it. The P block rows are bit strings
// ("0101...", k characters each), exactly the rows of the standard-form
// parity-check matrix H = [P | I] over the data bits.
type CodeExport struct {
	// UID deterministically identifies the function:
	// "secham-<n>-<k>-<12 hex of SHA-256 over the P rows>".
	UID string `json:"uid"`
	// Scheme is the ECC scheme tag; "HSC" (Hamming single-error correction)
	// is the only scheme this repository produces, matching EINSim's name
	// for SEC Hamming codes.
	Scheme string `json:"scheme"`
	N      int    `json:"n"`
	K      int    `json:"k"`
	// P holds the parity-check P block, one bit-string row per parity bit.
	P []string `json:"p"`
	// ProfileHash links the export to the miscorrection profile it was
	// recovered from, when it came out of BEER rather than construction.
	ProfileHash string `json:"profile_hash,omitempty"`
	// Unique reports whether the BEER search proved this is the only
	// function consistent with the profile (absent for constructed codes).
	Unique *bool `json:"unique,omitempty"`
}

// ExportCode renders a code in the wire format.
func ExportCode(code *ecc.Code) CodeExport {
	r := code.ParityBits()
	rows := make([]string, r)
	p := code.P()
	for i := 0; i < r; i++ {
		rows[i] = p.Row(i).String()
	}
	return CodeExport{
		UID:    codeUID(code.N(), code.K(), rows),
		Scheme: "HSC",
		N:      code.N(),
		K:      code.K(),
		P:      rows,
	}
}

// codeUID derives the deterministic export identifier.
func codeUID(n, k int, rows []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "secham %d %d\n", n, k)
	for _, row := range rows {
		io.WriteString(h, row)
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("secham-%d-%d-%s", n, k, hex.EncodeToString(h.Sum(nil))[:12])
}

// Code reconstructs the ecc.Code, validating shape, scheme and the SEC
// invariants.
func (e CodeExport) Code() (*ecc.Code, error) {
	if e.Scheme != "" && e.Scheme != "HSC" {
		return nil, fmt.Errorf("store: unsupported scheme %q (want HSC)", e.Scheme)
	}
	if len(e.P) != e.N-e.K {
		return nil, fmt.Errorf("store: export has %d P rows, want n-k=%d", len(e.P), e.N-e.K)
	}
	var text strings.Builder
	fmt.Fprintf(&text, "secham %d %d\n", e.N, e.K)
	for _, row := range e.P {
		text.WriteString(row)
		text.WriteByte('\n')
	}
	code := new(ecc.Code)
	if err := code.UnmarshalText([]byte(text.String())); err != nil {
		return nil, err
	}
	return code, nil
}

// Export renders the registry record's candidates in the wire format, each
// stamped with the record's profile hash and uniqueness verdict.
func (r *CodeRecord) Export() ([]CodeExport, error) {
	out := make([]CodeExport, 0, len(r.Codes))
	for i, text := range r.Codes {
		code := new(ecc.Code)
		if err := code.UnmarshalText([]byte(text)); err != nil {
			return nil, fmt.Errorf("store: record %s code %d: %w", r.ProfileHash, i, err)
		}
		exp := ExportCode(code)
		exp.ProfileHash = r.ProfileHash
		unique := r.Unique
		exp.Unique = &unique
		out = append(out, exp)
	}
	return out, nil
}

// WriteExport writes one export as indented JSON (the `beer -o` file
// format).
func WriteExport(w io.Writer, e CodeExport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadExport parses a single export document (the `einsim -code` input).
// Unknown fields are ignored so any superset of the wire format imports —
// in particular, an entry copied straight out of beerd's GET /codes listing
// (which adds registry metadata alongside the export fields) round-trips
// into a simulation. Shape and scheme are still validated by Code.
func ReadExport(r io.Reader) (CodeExport, error) {
	var e CodeExport
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return CodeExport{}, fmt.Errorf("store: parse code export: %w", err)
	}
	return e, nil
}
