package store_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/store"
)

// ExampleBackend shows the three store layers working together: solve a
// miscorrection profile once, register the result in a Backend-backed Store
// under the profile's canonical hash, and watch the SolveCache view replay
// it for the same fingerprint — which is exactly what spares a beerd
// deployment the SAT search when two chips of the same model are submitted.
// Swapping NewMemBackend for NewFileBackend makes the registry durable
// without touching any other line.
func ExampleBackend() {
	st := store.New(store.NewMemBackend())

	// Solve the paper's (7,4) running example from its exact profile.
	code := ecc.Hamming74()
	profile := core.ExactProfile(code, append(core.OneCharged(4), core.TwoCharged(4)...))
	result, err := core.Solve(context.Background(), profile, core.SolveOptions{})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}

	// Register the solve; the registry is now browsable by content address.
	cache := st.SolveCache("example-job")
	cache.Store(profile, result)
	rec, ok, _ := st.GetCode(profile.Hash())
	fmt.Println("registered:", ok, "unique:", rec.Unique, "source:", rec.Source)

	// A later identical profile replays the result with no solver run. The
	// solver returns the canonical representative of the code's equivalence
	// class, so compare up to parity-row relabeling.
	replay, hit := cache.Lookup(profile)
	fmt.Println("cache hit:", hit, "same code:", replay.Codes[0].EquivalentTo(code))

	// The record exports in the einsim-compatible wire format.
	exports, _ := rec.Export()
	fmt.Println("export scheme:", exports[0].Scheme, "shape:", exports[0].N, exports[0].K)
	// Output:
	// registered: true unique: true source: example-job
	// cache hit: true same code: true
	// export scheme: HSC shape: 7 4
}
