// Package store is the durable result layer of the reproduction: a
// content-addressed registry of recovered on-die ECC functions plus a job
// log, keyed by the canonical hash of the miscorrection profile
// (core.Profile.Hash). The paper frames exactly this artifact in §7 — a
// "BEER database" of recovered functions that system designers reuse instead
// of re-running the experiment per chip — and the beerd job service
// (internal/service) builds on this package so that submitted jobs survive
// restarts and byte-identical profiles short-circuit to a cached solver
// result.
//
// The package has three layers:
//
//   - Backend: a minimal bucket/key byte store. Two implementations ship:
//     MemBackend (process-lifetime, for tests and cache-only servers) and
//     FileBackend (one JSON file per record on disk, atomic writes, survives
//     restarts). Anything with the same five operations — an object store, a
//     SQL table — can slot in.
//   - Store: the typed layer over a Backend. CodeRecord (a recovered
//     function with its solver statistics, keyed by profile hash) and
//     JobRecord (one beerd job's spec, state and result) marshal to JSON and
//     round-trip through any Backend.
//   - LRU: a generic bounded single-flight cache. It fronts the Backend
//     inside SolveCache (hot profile hashes skip disk and re-parsing) and is
//     the same primitive internal/parallel uses for its exact-profile and
//     pattern-family caches, so every cache in the repository shares one
//     audited implementation.
//
// Entry points: New (Store over a Backend), Store.SolveCache (the
// core.SolveCache adapter that Recover consults before invoking the SAT
// solver), ExportCode/CodeExport (the einsim-compatible JSON wire format
// shared by `cmd/beer -o`, `cmd/einsim -code` and beerd's GET /codes).
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Backend is the pluggable persistence interface: a flat byte store
// organized as named buckets of key/value pairs. Implementations must be
// safe for concurrent use. Values are opaque to the backend (the Store layer
// writes JSON). Keys and bucket names are restricted to [A-Za-z0-9._-] so
// every implementation can map them to file or object names directly;
// ValidKey reports the rule.
type Backend interface {
	// Put stores value under (bucket, key), overwriting any previous value.
	Put(bucket, key string, value []byte) error
	// Get returns the value under (bucket, key) and whether it exists.
	Get(bucket, key string) ([]byte, bool, error)
	// Delete removes (bucket, key); deleting a missing key is not an error.
	Delete(bucket, key string) error
	// Keys lists the keys of a bucket in lexicographic order.
	Keys(bucket string) ([]string, error)
	// Close releases backend resources. The Store calls it from Store.Close.
	Close() error
}

// ValidKey reports whether a bucket or key name is acceptable to every
// Backend: nonempty, at most 255 bytes, characters from [A-Za-z0-9._-], and
// not starting with a dot (so file-backed stores never produce hidden or
// traversing paths).
func ValidKey(s string) bool {
	if s == "" || len(s) > 255 || s[0] == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

func checkNames(bucket, key string) error {
	if !ValidKey(bucket) {
		return fmt.Errorf("store: invalid bucket name %q", bucket)
	}
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	return nil
}

// MemBackend is an in-memory Backend: full speed, process lifetime. It is
// the default for beerd when no -store directory is given — jobs then dedupe
// and replay within one process but do not survive a restart.
type MemBackend struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{buckets: make(map[string]map[string][]byte)}
}

// Put implements Backend. The value is copied, so callers may reuse the
// slice.
func (m *MemBackend) Put(bucket, key string, value []byte) error {
	if err := checkNames(bucket, key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		m.buckets[bucket] = b
	}
	b[key] = append([]byte(nil), value...)
	return nil
}

// Get implements Backend; the returned slice is a copy.
func (m *MemBackend) Get(bucket, key string) ([]byte, bool, error) {
	if err := checkNames(bucket, key); err != nil {
		return nil, false, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.buckets[bucket][key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Delete implements Backend.
func (m *MemBackend) Delete(bucket, key string) error {
	if err := checkNames(bucket, key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.buckets[bucket], key)
	return nil
}

// Keys implements Backend.
func (m *MemBackend) Keys(bucket string) ([]string, error) {
	if !ValidKey(bucket) {
		return nil, fmt.Errorf("store: invalid bucket name %q", bucket)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.buckets[bucket]))
	for k := range m.buckets[bucket] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Close implements Backend; it is a no-op for the in-memory backend.
func (m *MemBackend) Close() error { return nil }

// String identifies the backend in logs.
func (m *MemBackend) String() string { return "mem" }

var _ Backend = (*MemBackend)(nil)

// describeBackend renders a backend for healthz/log output.
func describeBackend(b Backend) string {
	if s, ok := b.(fmt.Stringer); ok {
		return s.String()
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", b), "*")
}
