package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileBackend is a JSON-on-disk Backend: every (bucket, key) pair lives at
// <root>/<bucket>/<key>.json. The layout is deliberately transparent —
// records can be inspected, backed up or seeded with ordinary shell tools —
// and writes are atomic (temp file + rename in the same directory), so a
// crash mid-write leaves either the old record or the new one, never a
// truncated file. This is what `beerd -store <dir>` uses to keep jobs and
// the recovered-code registry across restarts.
type FileBackend struct {
	root string
	// mu serializes writers per backend. It is not needed for reader
	// consistency — Get/Keys are safe against concurrent Puts because
	// writes land under dot-prefixed temp names (which Keys skips) and
	// become visible only through an atomic rename — it just keeps two
	// writers from racing on bucket creation and temp-file churn.
	mu sync.Mutex
}

// fileExt is appended to every key on disk; Keys strips it. Values written
// by the Store layer are JSON documents, and the extension keeps them
// double-clickable and grep-friendly.
const fileExt = ".json"

// NewFileBackend opens (creating if needed) a file-backed store rooted at
// dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty file-backend directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &FileBackend{root: dir}, nil
}

// Root returns the backing directory.
func (f *FileBackend) Root() string { return f.root }

func (f *FileBackend) path(bucket, key string) string {
	return filepath.Join(f.root, bucket, key+fileExt)
}

// Put implements Backend with an atomic write: the value lands in a
// temporary file in the bucket directory and is renamed over the final name.
func (f *FileBackend) Put(bucket, key string, value []byte) error {
	if err := checkNames(bucket, key); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	dir := filepath.Join(f.root, bucket)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create bucket: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	// Flush the data before the rename: without it a crash can journal the
	// rename ahead of the contents and leave a truncated record — exactly
	// what the atomic-write claim rules out.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, f.path(bucket, key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	// Persist the directory entry too (best-effort: some platforms cannot
	// sync directories, and the data itself is already durable).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Get implements Backend.
func (f *FileBackend) Get(bucket, key string) ([]byte, bool, error) {
	if err := checkNames(bucket, key); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(f.path(bucket, key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s/%s: %w", bucket, key, err)
	}
	return data, true, nil
}

// Delete implements Backend.
func (f *FileBackend) Delete(bucket, key string) error {
	if err := checkNames(bucket, key); err != nil {
		return err
	}
	err := os.Remove(f.path(bucket, key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s/%s: %w", bucket, key, err)
	}
	return nil
}

// Keys implements Backend. Temp files (dot-prefixed) and foreign files are
// skipped, so a backup tool dropping extra files into a bucket directory
// cannot corrupt listings.
func (f *FileBackend) Keys(bucket string) ([]string, error) {
	if !ValidKey(bucket) {
		return nil, fmt.Errorf("store: invalid bucket name %q", bucket)
	}
	entries, err := os.ReadDir(filepath.Join(f.root, bucket))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", bucket, err)
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		key := strings.TrimSuffix(name, fileExt)
		if !ValidKey(key) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// Close implements Backend; the file backend holds no open handles between
// calls.
func (f *FileBackend) Close() error { return nil }

// String identifies the backend in logs.
func (f *FileBackend) String() string { return "file:" + f.root }

var _ Backend = (*FileBackend)(nil)
