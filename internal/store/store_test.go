package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
)

// testBackends builds one instance of every shipped Backend.
func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"mem": NewMemBackend(), "file": fb}
}

// TestBackendConformance runs the Backend contract against every
// implementation: put/get round-trip, overwrite, delete idempotence, sorted
// key listings, and name validation.
func TestBackendConformance(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := b.Get("bucket", "missing"); ok || err != nil {
				t.Fatalf("get missing: ok=%v err=%v", ok, err)
			}
			if err := b.Put("bucket", "b-key", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := b.Put("bucket", "a-key", []byte("one")); err != nil {
				t.Fatal(err)
			}
			got, ok, err := b.Get("bucket", "a-key")
			if err != nil || !ok || string(got) != "one" {
				t.Fatalf("get: %q ok=%v err=%v", got, ok, err)
			}
			if err := b.Put("bucket", "a-key", []byte("uno")); err != nil {
				t.Fatal(err)
			}
			if got, _, _ := b.Get("bucket", "a-key"); string(got) != "uno" {
				t.Fatalf("overwrite lost: %q", got)
			}
			keys, err := b.Keys("bucket")
			if err != nil || len(keys) != 2 || keys[0] != "a-key" || keys[1] != "b-key" {
				t.Fatalf("keys: %v err=%v", keys, err)
			}
			if keys, err := b.Keys("empty-bucket"); err != nil || len(keys) != 0 {
				t.Fatalf("empty bucket keys: %v err=%v", keys, err)
			}
			if err := b.Delete("bucket", "a-key"); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("bucket", "a-key"); err != nil {
				t.Fatalf("second delete: %v", err)
			}
			if _, ok, _ := b.Get("bucket", "a-key"); ok {
				t.Fatal("deleted key still present")
			}
			for _, bad := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
				if err := b.Put("bucket", bad, []byte("x")); err == nil {
					t.Fatalf("key %q accepted", bad)
				}
				if err := b.Put(bad, "key", []byte("x")); err == nil {
					t.Fatalf("bucket %q accepted", bad)
				}
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileBackendPersists: a reopened file backend sees everything a
// previous instance wrote, and values land as plain files under
// <root>/<bucket>/<key>.json.
func TestFileBackendPersists(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Put("codes", "deadbeef", []byte(`{"k":16}`)); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "codes", "deadbeef.json")); err != nil {
		t.Fatalf("expected transparent on-disk layout: %v", err)
	}

	reopened, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := reopened.Get("codes", "deadbeef")
	if err != nil || !ok || string(got) != `{"k":16}` {
		t.Fatalf("reopen lost data: %q ok=%v err=%v", got, ok, err)
	}
	// Foreign and temporary files in a bucket directory are invisible.
	if err := os.WriteFile(filepath.Join(dir, "codes", "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "codes", ".stray.json.tmp-1"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := reopened.Keys("codes")
	if err != nil || len(keys) != 1 || keys[0] != "deadbeef" {
		t.Fatalf("keys after stray files: %v err=%v", keys, err)
	}
}

// solveHamming74 produces a (profile, result) pair for registry tests.
func solveHamming74(t *testing.T) (*core.Profile, *core.Result) {
	t.Helper()
	code := ecc.Hamming74()
	prof := core.ExactProfile(code, append(core.OneCharged(4), core.TwoCharged(4)...))
	res, err := core.Solve(context.Background(), prof, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatalf("expected unique solve, got %d codes", len(res.Codes))
	}
	return prof, res
}

// TestCodeRecordRoundTrip: Store → backend JSON → Store reconstructs the
// same solver result.
func TestCodeRecordRoundTrip(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := New(b)
			prof, res := solveHamming74(t)
			rec := RecordFromResult(prof.Hash(), prof.K, res, "test")
			if err := st.PutCode(rec); err != nil {
				t.Fatal(err)
			}

			got, ok, err := st.GetCode(prof.Hash())
			if err != nil || !ok {
				t.Fatalf("GetCode: ok=%v err=%v", ok, err)
			}
			if got.K != 4 || got.N != 7 || !got.Unique || got.Source != "test" {
				t.Fatalf("record mangled: %+v", got)
			}
			back, err := got.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(back.Codes) != 1 || !back.Codes[0].Equal(res.Codes[0]) {
				t.Fatal("reconstructed result differs")
			}
			if back.DetermineTime < 0 || !back.Unique || !back.Exhausted {
				t.Fatalf("solver stats lost: %+v", back)
			}

			all, err := st.Codes()
			if err != nil || len(all) != 1 || all[0].ProfileHash != prof.Hash() {
				t.Fatalf("Codes(): %v err=%v", all, err)
			}
		})
	}
}

// TestJobRecordRoundTrip exercises the job log on both backends.
func TestJobRecordRoundTrip(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := New(b)
			rec := &JobRecord{
				ID:      "job-1",
				Type:    "recover",
				Spec:    json.RawMessage(`{"type":"recover","k":16}`),
				State:   "running",
				Created: time.Now().UTC(),
			}
			if err := st.PutJob(rec); err != nil {
				t.Fatal(err)
			}
			rec.State = "succeeded"
			rec.Result = json.RawMessage(`{"recover":{"k":16}}`)
			if err := st.PutJob(rec); err != nil {
				t.Fatal(err)
			}
			got, ok, err := st.GetJob("job-1")
			if err != nil || !ok {
				t.Fatalf("GetJob: ok=%v err=%v", ok, err)
			}
			// Raw JSON round-trips semantically (indentation may change).
			var result struct {
				Recover struct {
					K int `json:"k"`
				} `json:"recover"`
			}
			if err := json.Unmarshal(got.Result, &result); err != nil {
				t.Fatal(err)
			}
			if got.State != "succeeded" || result.Recover.K != 16 {
				t.Fatalf("job record mangled: %+v", got)
			}
			jobs, err := st.Jobs()
			if err != nil || len(jobs) != 1 {
				t.Fatalf("Jobs(): %v err=%v", jobs, err)
			}
		})
	}
}

// TestSolveCacheView: miss → solve → store → hit, including across a store
// reopen on the file backend (the LRU is empty then, so the hit proves the
// durable path).
func TestSolveCacheView(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := New(fb)
	prof, res := solveHamming74(t)

	cache := st.SolveCache("job-42")
	if _, ok := cache.Lookup(prof); ok {
		t.Fatal("empty registry reported a hit")
	}
	cache.Store(prof, res)
	got, ok := cache.Lookup(prof)
	if !ok || len(got.Codes) != 1 || !got.Codes[0].Equal(res.Codes[0]) {
		t.Fatalf("warm lookup: ok=%v", ok)
	}

	// A second Store for the same hash must not clobber the original
	// record's provenance.
	cache2 := st.SolveCache("job-43")
	cache2.Store(prof, res)
	rec, ok, err := st.GetCode(prof.Hash())
	if err != nil || !ok || rec.Source != "job-42" {
		t.Fatalf("first-write-wins violated: %+v ok=%v err=%v", rec, ok, err)
	}

	fresh := New(mustFileBackend(t, dir))
	got2, ok := fresh.SolveCache("other").Lookup(prof)
	if !ok || !got2.Codes[0].Equal(res.Codes[0]) {
		t.Fatal("durable lookup after reopen failed")
	}
}

// TestSolveCacheHealsCorruptRecord: a registry record that no longer parses
// is treated as a miss by Lookup AND overwritten by the next Store — without
// the overwrite, every future process would re-run the solver for that hash
// forever.
func TestSolveCacheHealsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st := New(mustFileBackend(t, dir))
	prof, res := solveHamming74(t)
	hash := prof.Hash()

	// Corrupt: valid JSON, unparsable code text.
	if err := st.PutCode(&CodeRecord{ProfileHash: hash, K: 4, Codes: []string{"garbage"}}); err != nil {
		t.Fatal(err)
	}
	cache := st.SolveCache("healer")
	if _, ok := cache.Lookup(prof); ok {
		t.Fatal("corrupt record served as a hit")
	}
	cache.Store(prof, res)

	// A fresh store (empty LRU) must now read a healed durable record.
	fresh := New(mustFileBackend(t, dir))
	rec, ok, err := fresh.GetCode(hash)
	if err != nil || !ok || rec.Source != "healer" {
		t.Fatalf("record not healed: %+v ok=%v err=%v", rec, ok, err)
	}
	if got, hit := fresh.SolveCache("x").Lookup(prof); !hit || !got.Codes[0].Equal(res.Codes[0]) {
		t.Fatal("healed record does not serve lookups")
	}

	// Raw garbage bytes (broken JSON) heal the same way.
	if err := st.Backend().Put(BucketCodes, hash, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	st2 := New(mustFileBackend(t, dir))
	cache2 := st2.SolveCache("healer2")
	if _, ok := cache2.Lookup(prof); ok {
		t.Fatal("broken JSON served as a hit")
	}
	cache2.Store(prof, res)
	if rec, ok, err := st2.GetCode(hash); err != nil || !ok || rec.Source != "healer2" {
		t.Fatalf("broken-JSON record not healed: ok=%v err=%v", ok, err)
	}
}

func mustFileBackend(t *testing.T, dir string) *FileBackend {
	t.Helper()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

// TestExportRoundTrip: code → wire format → code, plus scheme/shape
// validation.
func TestExportRoundTrip(t *testing.T) {
	code := ecc.Hamming74()
	exp := ExportCode(code)
	if exp.Scheme != "HSC" || exp.N != 7 || exp.K != 4 || len(exp.P) != 3 {
		t.Fatalf("export shape: %+v", exp)
	}
	if exp.UID == "" || exp.UID != ExportCode(code).UID {
		t.Fatalf("UID not deterministic: %q", exp.UID)
	}
	back, err := exp.Code()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(code) {
		t.Fatal("export round-trip changed the code")
	}

	bad := exp
	bad.Scheme = "BCH"
	if _, err := bad.Code(); err == nil {
		t.Fatal("foreign scheme accepted")
	}
	bad = exp
	bad.P = exp.P[:2]
	if _, err := bad.Code(); err == nil {
		t.Fatal("row-count mismatch accepted")
	}

	// A superset document — e.g. one entry copied out of beerd's GET /codes
	// listing, which adds registry metadata — must still import.
	superset := `{"uid":"` + exp.UID + `","scheme":"HSC","n":7,"k":4,` +
		`"p":["` + strings.Join(exp.P, `","`) + `"],` +
		`"candidates":1,"created_at":"2026-07-26T00:00:00Z","determine_ms":1.5}`
	fromListing, err := ReadExport(strings.NewReader(superset))
	if err != nil {
		t.Fatalf("listing entry failed to import: %v", err)
	}
	if back, err := fromListing.Code(); err != nil || !back.Equal(code) {
		t.Fatalf("listing entry round-trip: %v", err)
	}
}

// TestLookupDoesNotCacheMisses: a registry record that appears AFTER a miss
// (seeded externally, or written by another process sharing the directory)
// must be found by the next Lookup — the LRU must not pin the negative.
func TestLookupDoesNotCacheMisses(t *testing.T) {
	st := New(NewMemBackend())
	prof, res := solveHamming74(t)
	cache := st.SolveCache("a")
	if _, ok := cache.Lookup(prof); ok {
		t.Fatal("empty registry hit")
	}
	// Seed the backend directly, bypassing this store's Store() path.
	if err := st.PutCode(RecordFromResult(prof.Hash(), prof.K, res, "external")); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Lookup(prof)
	if !ok || !got.Codes[0].Equal(res.Codes[0]) {
		t.Fatal("lookup after external seed still misses (negative result cached)")
	}
}

// TestRecordExport: registry records render every candidate with profile
// hash and uniqueness attached.
func TestRecordExport(t *testing.T) {
	prof, res := solveHamming74(t)
	rec := RecordFromResult(prof.Hash(), prof.K, res, "test")
	exps, err := rec.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 1 || exps[0].ProfileHash != prof.Hash() || exps[0].Unique == nil || !*exps[0].Unique {
		t.Fatalf("record export: %+v", exps)
	}
}

// TestLRU covers eviction order, single-flight, Add-overwrites and stats.
func TestLRU(t *testing.T) {
	c := NewLRU[int, int](2)
	calls := 0
	get := func(k int) int {
		return c.Get(k, func() int { calls++; return k * 10 })
	}
	if get(1) != 10 || get(2) != 20 || calls != 2 {
		t.Fatalf("computes: calls=%d", calls)
	}
	if get(1) != 10 || calls != 2 {
		t.Fatal("hit recomputed")
	}
	get(3) // evicts 2 (LRU: 1 was touched more recently)
	if get(2) != 20 || calls != 4 {
		t.Fatalf("eviction order wrong: calls=%d", calls)
	}
	c.Add(2, 99)
	if get(2) != 99 {
		t.Fatal("Add did not overwrite")
	}
	hits, reqs := c.Stats()
	if hits < 2 || reqs < 6 || c.Len() != 2 {
		t.Fatalf("stats: hits=%d reqs=%d len=%d", hits, reqs, c.Len())
	}
}

// TestLRUSingleFlight: concurrent misses for one key run compute exactly
// once.
func TestLRUSingleFlight(t *testing.T) {
	c := NewLRU[string, int](4)
	var mu sync.Mutex
	computes := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := c.Get("k", func() int {
				mu.Lock()
				computes++
				mu.Unlock()
				time.Sleep(10 * time.Millisecond)
				return 7
			})
			if v != 7 {
				t.Errorf("got %d", v)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
}
