package store

import (
	"repro/internal/core"
)

// SolveCacheView adapts a Store to core.SolveCache: Recover consults it
// between the threshold filter and the SAT solver, so a profile whose
// canonical hash is already in the registry replays the recorded Result with
// zero solver invocations, and every fresh successful solve lands in the
// registry (which is how beerd's GET /codes fills up). Lookups go through
// the Store's shared LRU first, so hot hashes skip the backend read and code
// re-parsing.
type SolveCacheView struct {
	store  *Store
	source string
}

// SolveCache returns the core.SolveCache view of the registry. source labels
// records written through this view (a beerd job id, "cmd/beer", ...); the
// first writer of a hash wins, so the label records who solved it first.
func (s *Store) SolveCache(source string) *SolveCacheView {
	return &SolveCacheView{store: s, source: source}
}

// Lookup implements core.SolveCache. A record that fails to load or parse is
// treated as a miss — the solver then runs and overwrites it. Misses are not
// negatively cached: the LRU entry is dropped again so a record that appears
// in the backend later (seeded by an operator, or written by another process
// sharing the store directory) is found on the next lookup.
func (c *SolveCacheView) Lookup(p *core.Profile) (*core.Result, bool) {
	hash := p.Hash()
	res := c.store.results.Get(hash, func() *core.Result {
		rec, ok, err := c.store.GetCode(hash)
		if err != nil || !ok {
			return nil
		}
		out, err := rec.Result()
		if err != nil {
			return nil
		}
		return out
	})
	if res == nil {
		c.store.results.Remove(hash)
		return nil, false
	}
	return res, true
}

// Store implements core.SolveCache: persist the result under the profile's
// hash and refresh the in-memory cache. A *valid* existing record is kept —
// its CreatedAt/Source provenance wins, as happens when two identical jobs
// race past Lookup — but a missing, unreadable or unparsable record is
// overwritten, so a corrupt registry entry heals on the next solve instead
// of forcing a re-solve on every restart forever.
func (c *SolveCacheView) Store(p *core.Profile, res *core.Result) {
	hash := p.Hash()
	keep := false
	if rec, ok, err := c.store.GetCode(hash); err == nil && ok {
		if _, err := rec.Result(); err == nil {
			keep = true
		}
	}
	if !keep {
		// Persistence failures are deliberately non-fatal: the solve already
		// succeeded, and the in-memory cache still serves this process.
		_ = c.store.PutCode(RecordFromResult(hash, p.K, res, c.source))
	}
	c.store.results.Add(hash, res)
}

var _ core.SolveCache = (*SolveCacheView)(nil)
