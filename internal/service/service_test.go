package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/ecc"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(repro.NewEngine(2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return v
}

// waitTerminal polls a job until it leaves StateRunning.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, body := do(t, http.MethodGet, base+"/api/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %s: %s", id, resp.Status, body)
		}
		st := decode[JobStatus](t, body)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 2m", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitStatusResultHappyPath drives the full REST lifecycle of one
// recovery job: submit -> poll status -> fetch result, checking the
// recovered function against ground truth.
func TestSubmitStatusResultHappyPath(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Seed:         5,
		Verify:       true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	submitted := decode[JobStatus](t, body)
	if submitted.ID == "" || submitted.Type != "recover" {
		t.Fatalf("bad submit response: %+v", submitted)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/jobs/"+submitted.ID {
		t.Fatalf("Location = %q", loc)
	}

	final := waitTerminal(t, ts.URL, submitted.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Progress.Updates == 0 || !final.Progress.Collect.Done || !final.Progress.Solve.Done {
		t.Fatalf("missing progress on finished job: %+v", final.Progress)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+submitted.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, body)
	}
	res := decode[JobResult](t, body)
	if res.Recover == nil || !res.Recover.Unique {
		t.Fatalf("unexpected result payload: %s", body)
	}
	if res.Recover.GroundTruthMatch == nil || !*res.Recover.GroundTruthMatch {
		t.Fatal("server did not verify the recovered function against ground truth")
	}
	code := new(ecc.Code)
	if err := code.UnmarshalText([]byte(res.Recover.Code)); err != nil {
		t.Fatalf("result code unparseable: %v", err)
	}
	if truth := repro.GroundTruth(repro.SimulatedChip(repro.MfrB, 16, 5)); !code.EquivalentTo(truth) {
		t.Fatal("returned code does not match ground truth")
	}
	if len(res.Recover.H) != code.ParityBits() {
		t.Fatalf("H has %d rows, want %d", len(res.Recover.H), code.ParityBits())
	}

	// The job shows up in the listing.
	resp, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), submitted.ID) {
		t.Fatalf("listing missing job: %s: %s", resp.Status, body)
	}
}

// TestSubmitSimulateJob runs the Monte-Carlo job type end to end.
func TestSubmitSimulateJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
		Type:  "simulate",
		Words: 20000,
		RBER:  1e-3,
		K:     32,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	st := waitTerminal(t, ts.URL, decode[JobStatus](t, body).ID)
	if st.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+st.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, body)
	}
	res := decode[JobResult](t, body)
	if res.Simulate == nil || res.Simulate.Words != 20000 {
		t.Fatalf("unexpected simulate result: %s", body)
	}
}

// TestMalformedSpecs covers the 400 paths: syntactically broken JSON,
// unknown fields, and semantically invalid specs.
func TestMalformedSpecs(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"syntax", `{"type": "recover",`},
		{"unknown field", `{"type": "recover", "voltage": 12}`},
		{"missing type", `{}`},
		{"unknown type", `{"type": "espresso"}`},
		{"bad manufacturer", `{"type": "recover", "manufacturer": "Z"}`},
		{"k not multiple of 8", `{"type": "recover", "k": 12}`},
		{"k too large", `{"type": "recover", "k": 4096}`},
		{"too many chips", `{"type": "recover", "chips": 1000}`},
		{"bad patterns", `{"type": "recover", "patterns": "99"}`},
		{"negative rounds", `{"type": "recover", "rounds": -1}`},
		{"bad rber", `{"type": "simulate", "rber": 2.0}`},
		{"too many words", `{"type": "simulate", "words": 999999999}`},
		{"bad code family", `{"type": "simulate", "code_family": "turbo"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("got %s, want 400", resp.Status)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("400 body carries no error message (%v)", err)
			}
		})
	}
}

// TestUnknownJobRoutes covers the 404 and 409 paths.
func TestUnknownJobRoutes(t *testing.T) {
	_, ts := newTestServer(t)
	for _, route := range []struct{ method, path string }{
		{http.MethodGet, "/api/v1/jobs/job-999"},
		{http.MethodGet, "/api/v1/jobs/job-999/result"},
		{http.MethodDelete, "/api/v1/jobs/job-999"},
	} {
		resp, body := do(t, route.method, ts.URL+route.path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: got %s (%s), want 404", route.method, route.path, resp.Status, body)
		}
	}
}

// TestCancelJob cancels a long recovery over HTTP and checks the state
// transitions plus the 409 on fetching a cancelled job's result.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Chips:        2,
		Rounds:       16, // long enough to still be running when we cancel
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID

	resp, body = do(t, http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s: %s", resp.Status, body)
	}
	final := waitTerminal(t, ts.URL, id)
	if final.State != StateCanceled && final.State != StateSucceeded {
		t.Fatalf("job finished %s (%s), want canceled (or a photo-finish success)", final.State, final.Error)
	}
	if final.State == StateCanceled {
		resp, _ = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+id+"/result", nil)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result of cancelled job: got %s, want 409", resp.Status)
		}
	}
}

// TestHealthz checks the liveness endpoint's shape.
func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	health := decode[map[string]any](t, body)
	if health["status"] != "ok" {
		t.Fatalf("healthz body: %s", body)
	}
	if int(health["workers"].(float64)) != srv.Engine().Workers() {
		t.Fatalf("healthz workers mismatch: %s", body)
	}
}

// TestServerSmoke runs the full smoke suite — the same one CI's serve-smoke
// job and `beerd -selfcheck` use — against an in-process server: 8
// concurrent recovery jobs on the shared engine, monotonic progress, all
// results matching ground truth.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite is not short")
	}
	_, ts := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	err := Smoke(ctx, SmokeConfig{
		BaseURL: ts.URL,
		Jobs:    8,
		Log: func(format string, args ...any) {
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubmitAfterClose: a closed server rejects new work but keeps serving
// status reads.
func TestSubmitAfterClose(t *testing.T) {
	srv := New(repro.NewEngine(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %s: %s", resp.Status, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("submit after close: missing Retry-After header")
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/api/v1/jobs", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("list after close: %s", resp.Status)
	}
}
