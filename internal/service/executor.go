package service

import (
	"cmp"
	"context"
	"fmt"
	"sync"

	"repro"
	"repro/internal/obs"
)

// This file defines the seam between the beerd HTTP layer and job
// execution. Before the cluster subsystem the Server ran every job directly
// on its engine; now the handlers, the job table, persistence and progress
// all talk to an Executor, and what sits behind it decides where the work
// happens: the localExecutor runs jobs on this process's parallel engine
// (standalone servers and cluster workers), while internal/cluster's
// Coordinator implements the same interface by dispatching jobs to a fleet
// of workers over the service's own HTTP API.

// Executor turns validated job specs into runnable executions. The Server
// calls Prepare at submission time (its errors are 400s) and runs the
// returned Execution on the job's goroutine.
type Executor interface {
	// Prepare validates a spec and compiles it into an Execution. It must
	// not block on anything but the spec itself.
	Prepare(spec JobSpec) (Execution, error)
	// Describe renders the executor for logs and /healthz
	// ("local:8-workers", "cluster:coordinator").
	Describe() string
}

// Execution runs one prepared job to completion. Implementations must
// return promptly with ctx.Err() when ctx is cancelled and report progress
// through env.Report as the job advances.
type Execution func(ctx context.Context, env ExecEnv) (*JobResult, error)

// ExecEnv is the per-job environment the Server hands an Execution.
type ExecEnv struct {
	// JobID is the server-assigned job identifier.
	JobID string
	// Cache is the server's content-addressed solve cache for this job
	// (counting wrapper over the store registry, plus any remote tier).
	// Local executions pass it to the pipeline; a dispatching executor
	// ignores it, because caching happens on the worker that runs the job.
	Cache repro.SolveCache
	// Report publishes a progress snapshot. The server merges snapshots
	// monotonically (see progressTracker), so implementations may report
	// from restarted attempts without counters appearing to move backwards.
	Report func(ProgressStatus)
	// Trace is the job's root span context. Local executions parent their
	// stage spans on it; a dispatching executor propagates it to the
	// executing worker as a traceparent header, so the worker-side spans
	// join the same trace.
	Trace obs.SpanContext
}

// localExecutor runs jobs on this process's parallel experiment engine —
// the only executor before internal/cluster, and still what standalone
// servers and cluster workers use. extraOpts (WithSolverOptions) are
// appended to every recovery pipeline it builds — backend selection is a
// per-process deployment choice, not part of the job spec.
type localExecutor struct {
	engine    *repro.Engine
	extraOpts []repro.Option
	// tracer records the execution's stage spans (nil-safe: a zero
	// localExecutor in tests simply traces nothing).
	tracer *obs.Tracer
}

// Describe implements Executor.
func (e localExecutor) Describe() string {
	return fmt.Sprintf("local:%d-workers", e.engine.Workers())
}

// Prepare implements Executor: validate via buildRunner and adapt the
// pipeline's event stream into ProgressStatus snapshots.
func (e localExecutor) Prepare(spec JobSpec) (Execution, error) {
	run, err := buildRunner(spec, e.extraOpts...)
	if err != nil {
		return nil, err
	}
	chips := spec.chipCount()
	return func(ctx context.Context, env ExecEnv) (*JobResult, error) {
		span := e.tracer.StartSpan(env.Trace, "local.execute")
		span.SetAttr("job_id", env.JobID)
		stages := newStageSpans(e.tracer, span.Context(), chips)
		// Fold raw pipeline events locally, snapshot after every event.
		// Events for one run are serialized (see Engine.Recover), so the
		// fold needs no extra ordering; the tracker behind env.Report
		// handles snapshot/read races.
		p := &progressState{chips: chips}
		fn := func(ev repro.ProgressEvent) {
			stages.observe(ev)
			p.observe(ev)
			env.Report(p.snapshot())
		}
		result, err := run(ctx, e.engine, env.Cache, fn)
		stages.finish()
		span.SetError(err)
		span.End()
		return result, err
	}, nil
}

// stageSpans opens one child span per pipeline stage on that stage's first
// event and ends it when the stage completes (discover/collect complete
// per chip; solve completes once). Events for one run are serialized, but
// finish runs on the execution goroutine after the pipeline returns, so
// the map is mutex-guarded.
type stageSpans struct {
	tracer *obs.Tracer
	parent obs.SpanContext
	chips  int

	mu   sync.Mutex
	open map[repro.PipelineStage]*obs.Span
	done map[repro.PipelineStage]int
}

func newStageSpans(tracer *obs.Tracer, parent obs.SpanContext, chips int) *stageSpans {
	return &stageSpans{
		tracer: tracer,
		parent: parent,
		chips:  max(chips, 1),
		open:   make(map[repro.PipelineStage]*obs.Span),
		done:   make(map[repro.PipelineStage]int),
	}
}

func (ss *stageSpans) observe(ev repro.ProgressEvent) {
	if ss.tracer == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sp, opened := ss.open[ev.Stage]
	if !opened && ss.done[ev.Stage] < ss.stageTotal(ev.Stage) {
		sp = ss.tracer.StartSpan(ss.parent, "stage."+ev.Stage.String())
		ss.open[ev.Stage] = sp
	}
	if !ev.Done {
		return
	}
	ss.done[ev.Stage]++
	if ss.done[ev.Stage] >= ss.stageTotal(ev.Stage) && sp != nil {
		sp.End()
		delete(ss.open, ev.Stage)
	}
}

// stageTotal is how many Done events complete a stage: one per chip for
// the per-chip stages, one for the solve.
func (ss *stageSpans) stageTotal(stage repro.PipelineStage) int {
	if stage == repro.StageSolve {
		return 1
	}
	return ss.chips
}

// finish ends any span left open by an error or cancellation mid-stage.
func (ss *stageSpans) finish() {
	if ss == nil || ss.tracer == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for stage, sp := range ss.open {
		sp.End()
		delete(ss.open, stage)
	}
}

// progressTracker holds a job's latest ProgressStatus under a monotonic
// merge: counters only grow, Done flags only set, and the stage label
// follows the freshest report. Local executions feed it serialized event
// snapshots; the cluster dispatcher feeds it polled worker snapshots, which
// restart from zero when a job fails over to another worker — the merge
// keeps the status poller's monotonicity promise either way.
type progressTracker struct {
	mu  sync.Mutex
	cur ProgressStatus
	// metrics, when set, receives the positive delta of every merge — the
	// single choke point both execution paths (local event folds and
	// polled cluster snapshots) pass through, so the live Prometheus
	// counters inherit the tracker's failover monotonicity for free.
	metrics *serverMetrics
}

func (t *progressTracker) update(p ProgressStatus) {
	t.mu.Lock()
	before := t.cur
	c := &t.cur
	if p.Updates >= c.Updates && p.Stage != "" {
		c.Stage = p.Stage
	}
	// Confidence follows the freshest report that carries one (it is a
	// grading, not a counter — more candidates mean less confidence, so a
	// max-merge would pin it to a stale early value).
	if p.Updates >= c.Updates && p.Solver.Confidence != 0 {
		c.Solver.Confidence = p.Solver.Confidence
	}
	c.Updates = max(c.Updates, p.Updates)
	c.Chips = max(c.Chips, p.Chips)
	c.Worker = cmp.Or(p.Worker, c.Worker)
	c.Dispatches = max(c.Dispatches, p.Dispatches)
	mergeStage(&c.Discover, p.Discover)
	mergeStage(&c.Collect, p.Collect)
	mergeStage(&c.Solve, p.Solve)
	// Solver counters merge monotonically too, so a failed-over job's
	// fresh worker (whose counters restart from zero) never appears to
	// un-learn clauses or un-collect patterns.
	c.Solver.Conflicts = max(c.Solver.Conflicts, p.Solver.Conflicts)
	c.Solver.Propagations = max(c.Solver.Propagations, p.Solver.Propagations)
	c.Solver.Learned = max(c.Solver.Learned, p.Solver.Learned)
	c.Solver.Races = max(c.Solver.Races, p.Solver.Races)
	c.Solver.PatternsUsed = max(c.Solver.PatternsUsed, p.Solver.PatternsUsed)
	c.Solver.PatternsPlanned = max(c.Solver.PatternsPlanned, p.Solver.PatternsPlanned)
	c.Solver.EntriesDropped = max(c.Solver.EntriesDropped, p.Solver.EntriesDropped)
	after := t.cur
	m := t.metrics
	t.mu.Unlock()
	if m != nil {
		m.observeProgress(before, after)
	}
}

// set replaces the tracked status wholesale (replay of a terminal job).
func (t *progressTracker) set(p ProgressStatus) {
	t.mu.Lock()
	t.cur = p
	t.mu.Unlock()
}

func (t *progressTracker) snapshot() ProgressStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

func mergeStage(dst *StageStatus, src StageStatus) {
	dst.Done = dst.Done || src.Done
	dst.Count = max(dst.Count, src.Count)
	dst.Total = max(dst.Total, src.Total)
}
