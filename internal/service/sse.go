package service

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// sseKeepAlive is how often an idle event stream emits a comment line so
// intermediaries keep the connection open.
const sseKeepAlive = 15 * time.Second

// handleEvents streams a job's status as Server-Sent Events — the push
// replacement for the GET /api/v1/jobs/{id} poll loop. Every event's data
// is a full JobStatus snapshot (the same monotonic merge the poll endpoint
// reads, so progress never steps backwards, including across a cluster
// failover); running jobs emit `event: progress` on every change and the
// stream ends with a single `event: done` carrying the terminal status. A
// job that is already terminal yields just the done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	// Subscribe before the first snapshot: a transition between that
	// snapshot and select cannot be missed, only coalesced.
	wake, unsubscribe := j.watch()
	defer unsubscribe()

	sse, err := obs.NewSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "event stream: %v", err)
		return
	}
	s.metrics.sseStreams.Inc()

	var seq int64
	lastUpdates := int64(-1)
	// send emits an event if the status advanced; it reports whether the
	// stream is finished (terminal status sent or the write failed).
	send := func() bool {
		st := s.status(j)
		terminal := st.State.Terminal()
		if !terminal && st.Progress.Updates == lastUpdates {
			return false
		}
		lastUpdates = st.Progress.Updates
		seq++
		event := "progress"
		if terminal {
			event = "done"
		}
		if err := sse.Event(seq, event, st); err != nil {
			return true
		}
		return terminal
	}

	if send() {
		return
	}
	keepAlive := time.NewTicker(sseKeepAlive)
	defer keepAlive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-wake:
			if send() {
				return
			}
		case <-keepAlive.C:
			if sse.Comment("keep-alive") != nil {
				return
			}
		}
	}
}
