package service

import (
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// WithObservability attaches an observability hub to the server: its
// registry backs GET /metrics, its tracer backs job spans and GET
// /debug/traces, and its logger gets the job lifecycle lines. cmd/beerd
// builds one hub per process and shares it between the service layer and
// the cluster coordinator, so one scrape sees both. The default hub (nil
// option) collects metrics and spans but logs nowhere.
func WithObservability(h *obs.Hub) Option { return func(s *Server) { s.hub = h } }

// Observability returns the server's hub (never nil after New).
func (s *Server) Observability() *obs.Hub { return s.hub }

// serverMetrics holds every instrument the service layer feeds. Families
// follow the beerd_* naming scheme documented in DESIGN.md §14: subsystem
// prefix, snake_case, _total for counters, _seconds for latency
// histograms, base units only.
type serverMetrics struct {
	jobsSubmitted *obs.CounterVec // type
	jobsCompleted *obs.CounterVec // type, state
	jobSeconds    *obs.Histogram
	stageSeconds  *obs.HistogramVec // stage: collect | solve

	progressEvents  *obs.Counter
	collectPasses   *obs.Counter
	solverConflicts *obs.Counter
	solverProps     *obs.Counter
	solverLearned   *obs.Counter
	solverRaces     *obs.Counter
	patternsUsed    *obs.Counter

	cacheLookups *obs.Counter
	cacheHits    *obs.Counter
	dedupeHits   *obs.Counter

	noisyRecoveries *obs.Counter
	entriesDropped  *obs.Counter

	portfolioOutcomes *obs.CounterVec // competitor, outcome

	storeSeconds *obs.HistogramVec // op
	sseStreams   *obs.Counter
}

// jobLatencyBuckets widen the classic buckets: recoveries legally run for
// minutes (max_window_minutes), so the default 10s ceiling would dump
// every real job into +Inf.
var jobLatencyBuckets = []float64{.01, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 300, 1800}

func newServerMetrics(s *Server) *serverMetrics {
	r := s.hub.Metrics
	m := &serverMetrics{
		jobsSubmitted: r.CounterVec("beerd_jobs_submitted_total",
			"Jobs accepted by POST /api/v1/jobs, by spec type.", "type"),
		jobsCompleted: r.CounterVec("beerd_jobs_completed_total",
			"Jobs reaching a terminal state, by spec type and final state.", "type", "state"),
		jobSeconds: r.Histogram("beerd_job_duration_seconds",
			"End-to-end job latency (start to terminal state) in seconds.", jobLatencyBuckets),
		stageSeconds: r.HistogramVec("beerd_recover_stage_seconds",
			"Per-stage recovery latency in seconds, from the finished result's timings.",
			jobLatencyBuckets, "stage"),
		progressEvents: r.Counter("beerd_progress_events_total",
			"Pipeline progress events folded into job status."),
		collectPasses: r.Counter("beerd_collect_passes_total",
			"Completed collection passes across all chips and jobs."),
		solverConflicts: r.Counter("beerd_solver_conflicts_total",
			"Cumulative SAT conflicts reported by the live progress stream."),
		solverProps: r.Counter("beerd_solver_propagations_total",
			"Cumulative SAT propagations reported by the live progress stream."),
		solverLearned: r.Counter("beerd_solver_learned_clauses_total",
			"Cumulative learnt clauses reported by the live progress stream."),
		solverRaces: r.Counter("beerd_solver_races_total",
			"Portfolio solver races held."),
		patternsUsed: r.Counter("beerd_planner_patterns_total",
			"Test patterns collected (planned subset or full sweep)."),
		cacheLookups: r.Counter("beerd_solve_cache_lookups_total",
			"Solve-cache lookups (store registry plus any remote tier)."),
		cacheHits: r.Counter("beerd_solve_cache_hits_total",
			"Solve-cache hits served without invoking the SAT solver."),
		dedupeHits: r.Counter("beerd_dedupe_hits_total",
			"Submissions attached to an already-executing identical job (single-flight)."),
		noisyRecoveries: r.Counter("beerd_noisy_recoveries_total",
			"Recoveries that ran the confidence-weighted drop-k solver."),
		entriesDropped: r.Counter("beerd_noise_entries_dropped_total",
			"Profile entries retracted as inconsistent by the drop-k solver."),
		portfolioOutcomes: r.CounterVec("beerd_portfolio_outcomes_total",
			"Portfolio competitor race outcomes, by competitor and outcome (win|loss|timeout|error).",
			"competitor", "outcome"),
		storeSeconds: r.HistogramVec("beerd_store_op_seconds",
			"Store backend operation latency in seconds, by op.", nil, "op"),
		sseStreams: r.Counter("beerd_sse_streams_total",
			"Event streams opened on GET /api/v1/jobs/{id}/events."),
	}

	r.GaugeFunc("beerd_engine_workers",
		"Worker-pool width of the parallel experiment engine.",
		func() float64 { return float64(s.engine.Workers()) })
	r.GaugeFunc("beerd_engine_inflight",
		"Sharded computations executing on the engine right now.",
		func() float64 { return float64(s.engine.InFlight()) })
	r.CounterFunc("beerd_engine_runs_total",
		"Sharded computations the engine has started over its lifetime.",
		func() float64 { return float64(s.engine.Runs()) })
	r.GaugeFunc("beerd_jobs_executing",
		"Jobs currently executing (what admission control counts).",
		func() float64 { return float64(s.RunningJobs()) })
	r.GaugeFunc("beerd_draining",
		"1 while the server is draining for shutdown, else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("beerd_registry_codes",
		"Recovered-code records in the content-addressed registry.",
		func() float64 {
			keys, err := s.store.Backend().Keys(store.BucketCodes)
			if err != nil {
				return 0
			}
			return float64(len(keys))
		})
	return m
}

// observeProgress feeds the live counters with the positive deltas of one
// monotonic merge. Both execution paths go through the tracker — local
// event folds and the coordinator's polled worker snapshots — so the
// counters stay correct across a failover: the merge already guarantees
// the "after" snapshot never steps back, and Counter.Add drops the
// negative deltas a defensive caller might still produce.
func (m *serverMetrics) observeProgress(before, after ProgressStatus) {
	m.progressEvents.Add(after.Updates - before.Updates)
	m.collectPasses.Add(after.Collect.Count - before.Collect.Count)
	m.solverConflicts.Add(after.Solver.Conflicts - before.Solver.Conflicts)
	m.solverProps.Add(after.Solver.Propagations - before.Solver.Propagations)
	m.solverLearned.Add(after.Solver.Learned - before.Solver.Learned)
	m.solverRaces.Add(after.Solver.Races - before.Solver.Races)
	m.patternsUsed.Add(int64(after.Solver.PatternsUsed - before.Solver.PatternsUsed))
	m.entriesDropped.Add(after.Solver.EntriesDropped - before.Solver.EntriesDropped)
}

// observeFinished records one terminal job: completion counters, duration,
// and — for successful recoveries — the per-stage latency histograms and
// portfolio outcomes from the result.
func (m *serverMetrics) observeFinished(jobType string, state State, started, finished time.Time, result *JobResult) {
	if jobType == "" {
		jobType = "unknown"
	}
	m.jobsCompleted.With(jobType, string(state)).Inc()
	if !started.IsZero() && finished.After(started) {
		m.jobSeconds.Observe(finished.Sub(started).Seconds())
	}
	if result == nil || result.Recover == nil {
		return
	}
	rec := result.Recover
	m.stageSeconds.With("collect").Observe(rec.CollectMS / 1e3)
	m.stageSeconds.With("solve").Observe(rec.SolveMS / 1e3)
	if rec.Noise != nil {
		m.noisyRecoveries.Inc()
	}
	if rec.Solver != nil {
		for _, comp := range rec.Solver.Competitors {
			m.portfolioOutcomes.With(comp.Name, "win").Add(comp.Wins)
			m.portfolioOutcomes.With(comp.Name, "loss").Add(comp.Losses)
			m.portfolioOutcomes.With(comp.Name, "timeout").Add(comp.Timeouts)
			m.portfolioOutcomes.With(comp.Name, "error").Add(comp.Errors)
		}
	}
}

// SolverTotals is a snapshot of the server's cumulative solver-side
// counters — the /healthz "solver" block as one addable value. Cluster
// workers ship it in heartbeats and in their deregistration request, so
// the coordinator can fold a drained worker's final counters into the
// fleet aggregate before the worker disappears (see
// cluster.Registry.FleetSolver).
type SolverTotals struct {
	Invocations     int64 `json:"invocations"`
	CacheHits       int64 `json:"cache_hits"`
	Conflicts       int64 `json:"conflicts"`
	Propagations    int64 `json:"propagations"`
	Learned         int64 `json:"learned"`
	Restarts        int64 `json:"restarts"`
	Races           int64 `json:"races"`
	NoisyRecoveries int64 `json:"noisy_recoveries"`
	EntriesDropped  int64 `json:"entries_dropped"`
}

// IsZero reports whether the snapshot carries no work.
func (t SolverTotals) IsZero() bool { return t == SolverTotals{} }

// Add folds o into t.
func (t *SolverTotals) Add(o SolverTotals) {
	t.Invocations += o.Invocations
	t.CacheHits += o.CacheHits
	t.Conflicts += o.Conflicts
	t.Propagations += o.Propagations
	t.Learned += o.Learned
	t.Restarts += o.Restarts
	t.Races += o.Races
	t.NoisyRecoveries += o.NoisyRecoveries
	t.EntriesDropped += o.EntriesDropped
}

// SolverTotals snapshots the server's cumulative solver work.
func (s *Server) SolverTotals() SolverTotals {
	invocations, hits := s.SolveCounters()
	totals := s.solve.totals()
	noisyJobs, dropped := s.solve.noisyTotals()
	return SolverTotals{
		Invocations:     invocations,
		CacheHits:       hits,
		Conflicts:       totals.Conflicts,
		Propagations:    totals.Propagations,
		Learned:         totals.Learned,
		Restarts:        totals.Restarts,
		Races:           totals.Races,
		NoisyRecoveries: noisyJobs,
		EntriesDropped:  dropped,
	}
}
