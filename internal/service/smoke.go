package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/ecc"
	"repro/internal/obs"
)

// KeyMetricFamilies is the exposition contract every beerd role keeps on
// GET /metrics: the families the golden test and the smoke suites
// (serve-smoke, cluster-smoke) all require to be present and well-formed.
var KeyMetricFamilies = []string{
	"beerd_jobs_submitted_total",
	"beerd_jobs_completed_total",
	"beerd_job_duration_seconds",
	"beerd_recover_stage_seconds",
	"beerd_solver_conflicts_total",
	"beerd_solver_propagations_total",
	"beerd_solve_cache_lookups_total",
	"beerd_solve_cache_hits_total",
	"beerd_noise_entries_dropped_total",
	"beerd_store_op_seconds",
	"beerd_engine_workers",
	"beerd_engine_inflight",
	"beerd_engine_runs_total",
	"beerd_jobs_executing",
	"go_goroutines",
	"go_memstats_heap_alloc_bytes",
}

// MetricsSmoke scrapes base's /metrics and validates the exposition: the
// document must parse under the Prometheus text-format grammar (including
// histogram bucket invariants) and carry KeyMetricFamilies plus any extra
// families the caller requires. It returns the parsed families so callers
// can assert on sample values.
func MetricsSmoke(ctx context.Context, client *http.Client, base string, extra ...string) (map[string]*obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return nil, fmt.Errorf("/metrics content type %q, want text/plain; version=0.0.4", ct)
	}
	want := append(append([]string(nil), KeyMetricFamilies...), extra...)
	fams, err := obs.CheckFamilies(string(data), want...)
	if err != nil {
		return nil, fmt.Errorf("/metrics exposition: %w", err)
	}
	return fams, nil
}

// SmokeConfig parameterizes Smoke.
type SmokeConfig struct {
	// BaseURL is the beerd server to exercise, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Jobs is how many concurrent recovery jobs to submit (default 8).
	Jobs int
	// PollInterval between status polls (default 25ms).
	PollInterval time.Duration
	// Log, when set, receives human-readable progress lines.
	Log func(format string, args ...any)
}

// Smoke is the beerd end-to-end acceptance check (make serve-smoke / CI):
// it submits N concurrent FastRecovery-style jobs against simulated
// manufacturer-B chips, polls every job's status asserting that the reported
// per-stage progress only ever advances, fetches all results, and verifies
// that every job recovered the chips' secret ECC function (the server
// compares against ground truth; the client additionally parses the
// returned codes and checks they all agree).
func Smoke(ctx context.Context, cfg SmokeConfig) error {
	if cfg.Jobs == 0 {
		cfg.Jobs = 8
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Liveness first: a clean error beats N hanging submissions.
	if err := getJSON(ctx, client, cfg.BaseURL+"/healthz", new(map[string]any)); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Submit the fleet. Distinct seeds give every job its own simulated
	// chips; same-model chips share the secret function, so all recovered
	// codes must agree. Every other job runs the adaptive planner, so the
	// smoke exercises both collection strategies against the same ground
	// truth and asserts the planner's patterns economy below.
	ids := make([]string, cfg.Jobs)
	planned := make([]bool, cfg.Jobs)
	for i := range ids {
		spec := JobSpec{
			Type:         "recover",
			Manufacturer: "B",
			K:            16,
			Chips:        1,
			Seed:         uint64(1 + i),
			Verify:       true,
			Plan:         i%2 == 1,
		}
		planned[i] = spec.Plan
		var status JobStatus
		if err := postJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs", spec, &status); err != nil {
			return fmt.Errorf("submit job %d: %w", i, err)
		}
		ids[i] = status.ID
		logf("submitted %s (seed %d, plan %v)", status.ID, spec.Seed, spec.Plan)
	}

	// Job 0 is consumed over its SSE stream instead of the poll loop, so
	// the smoke exercises the push path end to end; the rest poll.
	sseCh := make(chan error, 1)
	go func() {
		st, err := consumeSSE(ctx, cfg.BaseURL, ids[0])
		if err == nil && st.State != StateSucceeded {
			err = fmt.Errorf("finished %s: %s", st.State, st.Error)
		}
		if err == nil && (st.Progress.Updates == 0 || !st.Progress.Solve.Done) {
			err = fmt.Errorf("done event with incomplete progress: %+v", st.Progress)
		}
		if err == nil {
			logf("%s consumed via SSE to completion (%d progress updates)", ids[0], st.Progress.Updates)
		}
		sseCh <- err
	}()

	// Poll the remaining jobs to completion, asserting monotonic progress.
	type watch struct {
		lastUpdates  int64
		lastDiscover int64
		lastCollect  int64
		lastSolve    int64
		done         bool
	}
	watches := make([]watch, len(ids))
	watches[0].done = true
	pending := len(ids) - 1
	for pending > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
		for i, id := range ids {
			if watches[i].done {
				continue
			}
			var st JobStatus
			if err := getJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs/"+id, &st); err != nil {
				return fmt.Errorf("status %s: %w", id, err)
			}
			w := &watches[i]
			p := st.Progress
			if p.Updates < w.lastUpdates ||
				p.Discover.Count < w.lastDiscover ||
				p.Collect.Count < w.lastCollect ||
				p.Solve.Count < w.lastSolve {
				return fmt.Errorf("%s: progress went backwards: %+v after updates=%d discover=%d collect=%d solve=%d",
					id, p, w.lastUpdates, w.lastDiscover, w.lastCollect, w.lastSolve)
			}
			w.lastUpdates = p.Updates
			w.lastDiscover = p.Discover.Count
			w.lastCollect = p.Collect.Count
			w.lastSolve = p.Solve.Count
			if st.State.Terminal() {
				if st.State != StateSucceeded {
					return fmt.Errorf("%s finished %s: %s", id, st.State, st.Error)
				}
				if p.Updates == 0 || p.Collect.Count == 0 {
					return fmt.Errorf("%s succeeded without reporting progress: %+v", id, p)
				}
				if !p.Discover.Done || !p.Collect.Done || !p.Solve.Done {
					return fmt.Errorf("%s succeeded with unfinished stages: %+v", id, p)
				}
				w.done = true
				pending--
				logf("%s succeeded after %d progress updates (%d collection passes)",
					id, p.Updates, p.Collect.Count)
			}
		}
	}

	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-sseCh:
		if err != nil {
			return fmt.Errorf("sse %s: %w", ids[0], err)
		}
	}

	// Fetch results: every job must have recovered the unique secret
	// function, matching ground truth, and all codes must agree. Planned
	// jobs must additionally have stopped collecting before the full sweep.
	var reference *ecc.Code
	for i, id := range ids {
		var res JobResult
		if err := getJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs/"+id+"/result", &res); err != nil {
			return fmt.Errorf("result %s: %w", id, err)
		}
		rec := res.Recover
		if rec == nil {
			return fmt.Errorf("%s: result carries no recovery payload", id)
		}
		if !rec.Unique {
			return fmt.Errorf("%s: expected a unique ECC function, got %d candidates", id, rec.Candidates)
		}
		if rec.GroundTruthMatch == nil || !*rec.GroundTruthMatch {
			return fmt.Errorf("%s: recovered function does not match ground truth", id)
		}
		if planned[i] {
			if rec.PatternsUsed == 0 || rec.PatternsFull == 0 {
				return fmt.Errorf("%s: planned job reported no pattern counts: %+v", id, rec)
			}
			if rec.PatternsUsed >= rec.PatternsFull {
				return fmt.Errorf("%s: planner used %d of %d patterns; expected strictly fewer than the full sweep",
					id, rec.PatternsUsed, rec.PatternsFull)
			}
			logf("%s: planner used %d of %d patterns", id, rec.PatternsUsed, rec.PatternsFull)
		}
		code := new(ecc.Code)
		if err := code.UnmarshalText([]byte(rec.Code)); err != nil {
			return fmt.Errorf("%s: unparseable recovered code: %w", id, err)
		}
		if reference == nil {
			reference = code
		} else if !code.EquivalentTo(reference) {
			return fmt.Errorf("%s: recovered a different function than the other jobs", id)
		}
	}
	truth := repro.GroundTruth(repro.SimulatedChip(repro.MfrB, 16, 1))
	if !reference.EquivalentTo(truth) {
		return fmt.Errorf("recovered codes do not match the client-side ground truth")
	}
	logf("all %d jobs recovered the secret ECC function (H verified against ground truth)", cfg.Jobs)

	if err := noiseSmoke(ctx, client, cfg, logf, truth); err != nil {
		return err
	}

	// Exposition check last, when every family has real samples: /metrics
	// must parse and the run's work must be visible in the counters.
	fams, err := MetricsSmoke(ctx, client, cfg.BaseURL)
	if err != nil {
		return err
	}
	if v := familyTotal(fams, "beerd_jobs_completed_total"); v < float64(cfg.Jobs+1) {
		return fmt.Errorf("/metrics reports %.0f completed jobs, want >= %d", v, cfg.Jobs+1)
	}
	if v := familyTotal(fams, "beerd_sse_streams_total"); v < 1 {
		return fmt.Errorf("/metrics reports no SSE streams despite the smoke consuming one")
	}
	logf("metrics: exposition valid, %.0f jobs on the counters", familyTotal(fams, "beerd_jobs_completed_total"))
	return nil
}

// familyTotal sums a family's plain samples (for histograms, pass the base
// family of interest and read buckets yourself; the smoke only totals
// counters and gauges).
func familyTotal(fams map[string]*obs.Family, name string) float64 {
	f, ok := fams[name]
	if !ok {
		return 0
	}
	var total float64
	for _, s := range f.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// consumeSSE reads one job's /events stream to its terminal frame — the
// push-path counterpart of the poll loop, with the same monotonicity
// assertion. It returns the terminal status from the done event.
func consumeSSE(ctx context.Context, base, id string) (JobStatus, error) {
	var st JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return st, err
	}
	// A dedicated client without a global timeout: the stream legitimately
	// lives as long as the job; ctx bounds it instead.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /events: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return st, fmt.Errorf("/events content type %q, want text/event-stream", ct)
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	lastUpdates := int64(-1)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			if event == "" {
				continue // keep-alive terminator
			}
			if st.Progress.Updates < lastUpdates {
				return st, fmt.Errorf("progress went backwards on the stream (%d < %d)", st.Progress.Updates, lastUpdates)
			}
			lastUpdates = st.Progress.Updates
			if event == "done" {
				if !st.State.Terminal() {
					return st, fmt.Errorf("done event with non-terminal state %s", st.State)
				}
				return st, nil
			}
			event = ""
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "id: "):
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				return st, fmt.Errorf("bad event data: %w", err)
			}
		default:
			return st, fmt.Errorf("unexpected stream line %q", line)
		}
	}
	return st, fmt.Errorf("stream ended without a done event (read error: %v)", scanner.Err())
}

// noiseSmoke exercises the confidence-weighted recovery path end to end: it
// submits one job whose profile is perturbed with a mild PBEM-style
// false-positive rate, waits for the drop-k solver to retract the corrupted
// entries, and asserts that the result JSON carries the "noise" block —
// confidence, margin and dropped-entry accounting — that the CLI and
// dashboards read, and that the recovered function still matches ground
// truth.
func noiseSmoke(ctx context.Context, client *http.Client, cfg SmokeConfig, logf func(string, ...any), truth *ecc.Code) error {
	spec := JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Seed:         1,
		Verify:       true,
		NoiseFP:      0.002,
	}
	var status JobStatus
	if err := postJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs", spec, &status); err != nil {
		return fmt.Errorf("submit noisy job: %w", err)
	}
	id := status.ID
	logf("submitted %s (noise_fp=%g)", id, spec.NoiseFP)

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cfg.PollInterval):
		}
		var st JobStatus
		if err := getJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs/"+id, &st); err != nil {
			return fmt.Errorf("status %s: %w", id, err)
		}
		if !st.State.Terminal() {
			continue
		}
		if st.State != StateSucceeded {
			return fmt.Errorf("noisy job %s finished %s: %s", id, st.State, st.Error)
		}
		// The live progress stream must have carried the drop-k telemetry.
		if st.Progress.Solver.EntriesDropped == 0 {
			return fmt.Errorf("noisy job %s: progress reported no dropped entries", id)
		}
		if c := st.Progress.Solver.Confidence; c <= 0 || c > 1 {
			return fmt.Errorf("noisy job %s: progress confidence %v out of (0, 1]", id, c)
		}
		break
	}

	var res JobResult
	if err := getJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs/"+id+"/result", &res); err != nil {
		return fmt.Errorf("result %s: %w", id, err)
	}
	rec := res.Recover
	if rec == nil || rec.Noise == nil {
		return fmt.Errorf("%s: noisy result carries no noise block", id)
	}
	n := rec.Noise
	if n.Total != n.Retained+n.Dropped {
		return fmt.Errorf("%s: noise accounting does not add up: %+v", id, n)
	}
	if n.Dropped == 0 || len(n.DroppedEntries) != n.Dropped {
		return fmt.Errorf("%s: expected dropped false-positive entries, got %+v", id, n)
	}
	if n.Confidence <= 0 || n.Confidence >= 1 {
		return fmt.Errorf("%s: confidence %v out of (0, 1) for a lossy recovery", id, n.Confidence)
	}
	if !rec.Unique {
		return fmt.Errorf("%s: expected a unique function after drop-k, got %d candidates", id, rec.Candidates)
	}
	if rec.GroundTruthMatch == nil || !*rec.GroundTruthMatch {
		return fmt.Errorf("%s: noisy recovery does not match ground truth", id)
	}
	code := new(ecc.Code)
	if err := code.UnmarshalText([]byte(rec.Code)); err != nil {
		return fmt.Errorf("%s: unparseable recovered code: %w", id, err)
	}
	if !code.EquivalentTo(truth) {
		return fmt.Errorf("%s: noisy recovery does not match the client-side ground truth", id)
	}

	// Assert on the raw wire format too: the "confidence" field must be
	// present in the result JSON regardless of how the typed structs evolve.
	var raw map[string]any
	if err := getJSON(ctx, client, cfg.BaseURL+"/api/v1/jobs/"+id+"/result", &raw); err != nil {
		return fmt.Errorf("raw result %s: %w", id, err)
	}
	recRaw, _ := raw["recover"].(map[string]any)
	noiseRaw, _ := recRaw["noise"].(map[string]any)
	if noiseRaw == nil {
		return fmt.Errorf("%s: result JSON carries no recover.noise object", id)
	}
	if _, ok := noiseRaw["confidence"]; !ok {
		return fmt.Errorf("%s: result JSON carries no confidence field", id)
	}
	logf("%s: drop-k retracted %d/%d entries, confidence %.3f, margin %.3f (H verified against ground truth)",
		id, n.Dropped, n.Total, n.Confidence, n.Margin)
	return nil
}

func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
