package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestMetricsExposition: after one successful recovery job, GET /metrics
// serves grammatically valid Prometheus text whose key families carry the
// job's signals — the golden test for the exposition contract.
func TestMetricsExposition(t *testing.T) {
	srv := New(repro.NewEngine(2))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		JobSpec{Type: "recover", Manufacturer: "B", K: 8, Verify: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID
	if st := waitTerminal(t, ts.URL, id); st.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text/plain; version=0.0.4", ct)
	}
	fams, err := obs.CheckFamilies(string(body), KeyMetricFamilies...)
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}

	// The completed job must be visible in the families, not just named.
	sampleValue := func(family, sample string, labels map[string]string) float64 {
		t.Helper()
		f, ok := fams[family]
		if !ok {
			t.Fatalf("family %s missing", family)
		}
	next:
		for _, s := range f.Samples {
			if s.Name != sample {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue next
				}
			}
			return s.Value
		}
		t.Fatalf("no sample %s%v in family %s", sample, labels, family)
		return 0
	}
	if v := sampleValue("beerd_jobs_submitted_total", "beerd_jobs_submitted_total",
		map[string]string{"type": "recover"}); v < 1 {
		t.Fatalf("jobs_submitted{type=recover} = %v, want >= 1", v)
	}
	if v := sampleValue("beerd_jobs_completed_total", "beerd_jobs_completed_total",
		map[string]string{"type": "recover", "state": "succeeded"}); v < 1 {
		t.Fatalf("jobs_completed{recover,succeeded} = %v, want >= 1", v)
	}
	if v := sampleValue("beerd_recover_stage_seconds", "beerd_recover_stage_seconds_count",
		map[string]string{"stage": "solve"}); v < 1 {
		t.Fatalf("recover_stage_seconds_count{stage=solve} = %v, want >= 1", v)
	}
	if v := sampleValue("beerd_solve_cache_lookups_total", "beerd_solve_cache_lookups_total", nil); v < 1 {
		t.Fatalf("solve_cache_lookups = %v, want >= 1", v)
	}
	if v := sampleValue("beerd_store_op_seconds", "beerd_store_op_seconds_count",
		map[string]string{"op": "put"}); v < 1 {
		t.Fatalf("store_op_seconds_count{op=put} = %v, want >= 1", v)
	}
}

// sseEvent is one parsed SSE frame from the /events stream.
type sseEvent struct {
	id    string
	event string
	data  JobStatus
}

// readSSE consumes a /jobs/{id}/events stream to its terminal event.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	var events []sseEvent
	var cur sseEvent
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without a done event (%d events, scan err %v)", len(events), scanner.Err())
	return nil
}

// TestJobEventsSSE: the event stream replaces the poll loop — submit a
// job, consume GET /jobs/{id}/events to completion, and verify progress
// never steps backwards and the stream terminates with one done event
// carrying the terminal status.
func TestJobEventsSSE(t *testing.T) {
	srv := New(repro.NewEngine(2))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		JobSpec{Type: "recover", Manufacturer: "B", K: 8, Chips: 2, Verify: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID

	events := readSSE(t, ts.URL+"/api/v1/jobs/"+id+"/events")
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("stream ended with event %q, want done", last.event)
	}
	if last.data.State != StateSucceeded {
		t.Fatalf("terminal state %s: %s", last.data.State, last.data.Error)
	}
	for i, ev := range events {
		if i > 0 && ev.data.Progress.Updates < events[i-1].data.Progress.Updates {
			t.Fatalf("progress stepped backwards at event %d: %d -> %d",
				i, events[i-1].data.Progress.Updates, ev.data.Progress.Updates)
		}
		if i < len(events)-1 && ev.event != "progress" {
			t.Fatalf("event %d is %q, want progress", i, ev.event)
		}
	}

	// A job that is already terminal yields exactly one done event.
	events = readSSE(t, ts.URL+"/api/v1/jobs/"+id+"/events")
	if len(events) != 1 || events[0].event != "done" {
		t.Fatalf("terminal job stream: %d events, first %q; want exactly one done", len(events), events[0].event)
	}
}
