package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentSubmitDedupe proves the single-flight guarantee on the
// standalone path: N identical concurrent submissions collapse into exactly
// one execution and one solver invocation, and every submitter receives the
// same job — and therefore the same result. Run under -race, this also
// exercises the inflight table and the sharded job table under contention.
func TestConcurrentSubmitDedupe(t *testing.T) {
	srv, ts := newTestServer(t)

	const n = 8
	spec := JobSpec{Type: "recover", Manufacturer: "B", K: 16, Chips: 2, Seed: 7, Verify: true}
	payload, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	type submission struct {
		status JobStatus
		code   int
		loc    string
		err    error
	}
	subs := make([]submission, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(payload))
			if err != nil {
				subs[i].err = err
				return
			}
			defer resp.Body.Close()
			subs[i].code = resp.StatusCode
			subs[i].loc = resp.Header.Get("Location")
			subs[i].err = json.NewDecoder(resp.Body).Decode(&subs[i].status)
		}(i)
	}
	close(start)
	wg.Wait()

	id := subs[0].status.ID
	for i, s := range subs {
		if s.err != nil {
			t.Fatalf("submission %d: %v", i, s.err)
		}
		if s.code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, s.code)
		}
		if s.status.ID != id {
			t.Fatalf("submission %d joined job %s, submission 0 got %s — dedupe leaked an execution", i, s.status.ID, id)
		}
		if s.loc != "/api/v1/jobs/"+id {
			t.Fatalf("submission %d: Location = %q, want %q", i, s.loc, "/api/v1/jobs/"+id)
		}
	}
	if hits := srv.metrics.dedupeHits.Value(); hits != n-1 {
		t.Fatalf("dedupe hits = %d, want %d", hits, n-1)
	}

	// Exactly one job exists on the server.
	resp, body := do(t, http.MethodGet, ts.URL+"/api/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %s", resp.Status)
	}
	listing := decode[map[string][]JobStatus](t, body)
	if len(listing["jobs"]) != 1 {
		t.Fatalf("server holds %d jobs, want exactly 1", len(listing["jobs"]))
	}

	final := waitTerminal(t, ts.URL, id)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	// One execution means one solver invocation — N independent runs would
	// each have solved (or raced on) the profile.
	if inv := srv.SolverTotals().Invocations; inv != 1 {
		t.Fatalf("solver invoked %d times, want 1", inv)
	}

	// Every submitter's Location serves the shared result.
	for i, s := range subs {
		resp, body := do(t, http.MethodGet, ts.URL+s.loc+"/result", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submission %d result: %s: %s", i, resp.Status, body)
		}
		res := decode[JobResult](t, body)
		if res.Recover == nil || !res.Recover.Unique {
			t.Fatalf("submission %d: unexpected result payload: %s", i, body)
		}
	}

	// Completion releases the single-flight slot: an identical resubmission
	// must start a fresh execution, not resurrect the finished job.
	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %s: %s", resp.Status, body)
	}
	if again := decode[JobStatus](t, body); again.ID == id {
		t.Fatalf("resubmission after completion reused finished job %s", id)
	}
}

// TestDedupeDistinguishesSpecs: specs differing in any result-affecting
// field must not collapse, even when submitted concurrently.
func TestDedupeDistinguishesSpecs(t *testing.T) {
	srv, ts := newTestServer(t)

	specs := []JobSpec{
		{Type: "recover", Manufacturer: "B", K: 16, Seed: 7},
		{Type: "recover", Manufacturer: "B", K: 16, Seed: 8},               // different chip
		{Type: "recover", Manufacturer: "A", K: 16, Seed: 7},               // different code
		{Type: "recover", Manufacturer: "B", K: 16, Seed: 7, Verify: true}, // different run shape
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	start := make(chan struct{})
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			payload, err := json.Marshal(spec)
			if err != nil {
				errs[i] = err
				return
			}
			<-start
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i, spec)
	}
	close(start)
	wg.Wait()

	seen := make(map[string]int)
	for i, id := range ids {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("distinct specs %d and %d collapsed into job %s", prev, i, id)
		}
		seen[id] = i
	}
	if hits := srv.metrics.dedupeHits.Value(); hits != 0 {
		t.Fatalf("dedupe hits = %d on distinct specs, want 0", hits)
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
	}
}
