package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/obs"
	"repro/internal/store"
)

// JobSpec is the submission body for POST /api/v1/jobs. Type selects the
// pipeline; the remaining fields configure it (zero values take the
// documented defaults). Validation failures are 400s.
type JobSpec struct {
	// Type is "recover" (BEER against simulated chips) or "simulate"
	// (EINSim-style Monte-Carlo).
	Type string `json:"type"`

	// Recover fields.
	Manufacturer     string `json:"manufacturer,omitempty"`       // A, B or C (default B)
	K                int    `json:"k,omitempty"`                  // dataword bits, multiple of 8 (default 16)
	Chips            int    `json:"chips,omitempty"`              // same-model chips collected in parallel (default 1)
	Seed             uint64 `json:"seed,omitempty"`               // chip seed (default 1)
	Patterns         string `json:"patterns,omitempty"`           // "1" or "12" (default "12")
	Rounds           int    `json:"rounds,omitempty"`             // window-sweep rounds (default 3)
	MaxWindowMinutes int    `json:"max_window_minutes,omitempty"` // largest refresh window (default 48)
	UseAntiRows      bool   `json:"use_anti_rows,omitempty"`
	UseLazySolver    bool   `json:"use_lazy_solver,omitempty"`
	// Plan enables the adaptive pattern planner: collection proceeds in
	// solver-guided batches on a persistent incremental SAT session and
	// stops as soon as the code is uniquely determined. The result then
	// reports patterns_used vs. patterns_full. Incompatible with
	// use_anti_rows.
	Plan bool `json:"plan,omitempty"`
	// Verify compares the recovered function against the simulated chip's
	// ground truth and reports the outcome in the result.
	Verify bool `json:"verify,omitempty"`
	// NoiseFP and NoiseFN perturb the collected miscorrection profile with a
	// per-bit Bernoulli observation model before solving (HARP-style false
	// positives / true-positive dropout) and engage the confidence-weighted
	// drop-k solver; the result then carries a "noise" block. MaxDrop caps
	// how many profile entries the solver may retract (absent = unlimited,
	// explicit 0 = none); setting max_drop alone engages the robust solver
	// without perturbation — what a profile collected from genuinely noisy
	// hardware needs. Incompatible with plan.
	NoiseFP   float64 `json:"noise_fp,omitempty"`
	NoiseFN   float64 `json:"noise_fn,omitempty"`
	NoiseSeed uint64  `json:"noise_seed,omitempty"`
	MaxDrop   *int    `json:"max_drop,omitempty"`

	// Simulate fields.
	Words      int     `json:"words,omitempty"`       // Monte-Carlo words (default 100000)
	RBER       float64 `json:"rber,omitempty"`        // raw bit error rate (default 1e-4)
	CodeFamily string  `json:"code_family,omitempty"` // sequential, bitreversed or random (default sequential)
	Pattern    string  `json:"pattern,omitempty"`     // 0xFF, 0x00 or RANDOM (default 0xFF)
	Model      string  `json:"model,omitempty"`       // uniform or retention (default uniform)
}

// noisy reports whether the spec engages the drop-k robust solver.
func (spec JobSpec) noisy() bool {
	return spec.NoiseFP > 0 || spec.NoiseFN > 0 || spec.MaxDrop != nil
}

// chipCount returns how many chips a job's progress tracks.
func (spec JobSpec) chipCount() int {
	if spec.Type == "recover" {
		if spec.Chips > 0 {
			return spec.Chips
		}
		return 1
	}
	return 0
}

// Normalized returns a copy of the spec with every defaulted field filled
// in — the single place the documented defaults live. buildRunner validates
// the normalized form, and the cluster router derives its consistent-hash
// routing key from it, so two submissions that differ only in spelled-out
// defaults are the same job everywhere.
func (spec JobSpec) Normalized() JobSpec {
	out := spec
	switch out.Type {
	case "recover":
		out.Manufacturer = strings.ToUpper(out.Manufacturer)
		if out.Manufacturer == "" {
			out.Manufacturer = string(repro.MfrB)
		}
		if out.K == 0 {
			out.K = 16
		}
		if out.Chips == 0 {
			out.Chips = 1
		}
		if out.Seed == 0 {
			out.Seed = 1
		}
		if out.Patterns == "" {
			out.Patterns = "12"
		}
		if out.Rounds == 0 {
			out.Rounds = 3
		}
		if out.MaxWindowMinutes == 0 {
			out.MaxWindowMinutes = 48
		}
		if out.NoiseFP > 0 || out.NoiseFN > 0 {
			if out.NoiseSeed == 0 {
				out.NoiseSeed = 1
			}
			if out.MaxDrop == nil {
				unlimited := -1
				out.MaxDrop = &unlimited
			}
		}
	case "simulate":
		if out.Words == 0 {
			out.Words = 100000
		}
		if out.RBER == 0 {
			out.RBER = 1e-4
		}
		if out.K == 0 {
			out.K = 32
		}
		if out.Seed == 0 {
			out.Seed = 1
		}
		if out.CodeFamily == "" {
			out.CodeFamily = "sequential"
		}
		if out.Pattern == "" {
			out.Pattern = "0xFF"
		}
		if out.Model == "" {
			out.Model = "uniform"
		}
	}
	return out
}

// Validate reports whether the spec would be accepted by a submission —
// the same checks buildRunner performs, exported for executors that
// validate without running locally (the cluster coordinator).
func (spec JobSpec) Validate() error {
	_, err := buildRunner(spec)
	return err
}

// Service guardrails: beerd is a multi-tenant front end for a shared
// engine, so one job may not monopolize it with an unbounded spec.
const (
	maxK     = 64
	maxChips = 32
	maxWords = 10_000_000
)

// runner executes one validated job. It reports progress through fn,
// consults cache (the server's content-addressed solver cache; may be nil)
// before any SAT search, and returns the job's result.
type runner func(ctx context.Context, engine *repro.Engine, cache repro.SolveCache, fn repro.ProgressFunc) (*JobResult, error)

// buildRunner validates a spec and compiles it into a runner. All
// validation happens here, at submission time, so a 202 means the job is
// well-formed. extraOpts (the server's WithSolverOptions) are appended to
// recovery pipelines after the spec-derived options, so deployment-level
// backend selection wins.
func buildRunner(spec JobSpec, extraOpts ...repro.Option) (runner, error) {
	switch spec.Type {
	case "recover":
		return buildRecoverRunner(spec, extraOpts)
	case "simulate":
		return buildSimulateRunner(spec)
	case "":
		return nil, fmt.Errorf("missing job type (want \"recover\" or \"simulate\")")
	default:
		return nil, fmt.Errorf("unknown job type %q (want \"recover\" or \"simulate\")", spec.Type)
	}
}

func buildRecoverRunner(spec JobSpec, extraOpts []repro.Option) (runner, error) {
	spec = spec.Normalized()
	mfr := repro.Manufacturer(spec.Manufacturer)
	if mfr != repro.MfrA && mfr != repro.MfrB && mfr != repro.MfrC {
		return nil, fmt.Errorf("unknown manufacturer %q (want A, B or C)", spec.Manufacturer)
	}
	k := spec.K
	if k < 8 || k%8 != 0 || k > maxK {
		return nil, fmt.Errorf("k=%d must be a positive multiple of 8 up to %d", spec.K, maxK)
	}
	chips := spec.Chips
	if chips < 1 || chips > maxChips {
		return nil, fmt.Errorf("chips=%d out of range [1, %d]", spec.Chips, maxChips)
	}
	seed := spec.Seed
	patternSet := repro.Set12
	switch spec.Patterns {
	case "12":
	case "1":
		patternSet = repro.Set1
	default:
		return nil, fmt.Errorf("unknown pattern family %q (want \"1\" or \"12\")", spec.Patterns)
	}
	rounds := spec.Rounds
	if rounds < 1 || rounds > 16 {
		return nil, fmt.Errorf("rounds=%d out of range [1, 16]", spec.Rounds)
	}
	maxWin := spec.MaxWindowMinutes
	if maxWin < 4 || maxWin > 240 {
		return nil, fmt.Errorf("max_window_minutes=%d out of range [4, 240]", spec.MaxWindowMinutes)
	}
	if spec.Plan && spec.UseAntiRows {
		return nil, fmt.Errorf("plan is incompatible with use_anti_rows (the planner schedules true-cell patterns only)")
	}
	if spec.NoiseFP < 0 || spec.NoiseFP > 1 || spec.NoiseFN < 0 || spec.NoiseFN > 1 {
		return nil, fmt.Errorf("noise_fp=%g / noise_fn=%g out of [0, 1]", spec.NoiseFP, spec.NoiseFN)
	}
	noisy := spec.noisy()
	if noisy && spec.Plan {
		return nil, fmt.Errorf("plan is incompatible with noise_fp/noise_fn/max_drop (the planner's incremental session does not perturb or retract profile entries)")
	}

	return func(ctx context.Context, engine *repro.Engine, cache repro.SolveCache, fn repro.ProgressFunc) (*JobResult, error) {
		opts := []repro.Option{
			repro.WithEngine(engine),
			repro.WithPatternSet(patternSet),
			repro.WithWindowSweep(maxWin),
			repro.WithRounds(rounds),
			repro.WithProgress(fn),
		}
		if cache != nil {
			opts = append(opts, repro.WithSolveCache(cache))
		}
		if spec.UseAntiRows {
			opts = append(opts, repro.WithAntiRows())
		}
		if spec.UseLazySolver {
			opts = append(opts, repro.WithLazySolver())
		}
		if spec.Plan {
			opts = append(opts, repro.WithPlanner())
		}
		if noisy {
			if spec.NoiseFP > 0 || spec.NoiseFN > 0 {
				opts = append(opts, repro.WithNoiseModel(repro.NoiseModel{
					FP:   spec.NoiseFP,
					FN:   spec.NoiseFN,
					Seed: spec.NoiseSeed,
				}))
			}
			opts = append(opts, repro.WithMaxDrop(*spec.MaxDrop))
		}
		opts = append(opts, extraOpts...)
		pipe := repro.NewPipeline(opts...)

		fleet := repro.SimulatedChips(mfr, k, chips, seed)
		report, err := pipe.Recover(ctx, fleet...)
		if err != nil {
			return nil, err
		}
		res := &JobResult{Recover: &RecoverResult{
			K:           report.K,
			ProfileHash: report.Profile.Hash(),
			Unique:      report.Result.Unique,
			Candidates:  len(report.Result.Codes),
			CollectMS:   report.CollectTime.Seconds() * 1e3,
			SolveMS:     report.SolveTime.Seconds() * 1e3,
			Solver: &SolverStats{
				Conflicts:       report.Result.Stats.Conflicts,
				Propagations:    report.Result.Stats.Propagations,
				Learned:         report.Result.Stats.Learnt,
				Restarts:        report.Result.Stats.Restarts,
				PatternsSkipped: report.Result.PatternsSkipped,
				Races:           report.Result.Stats.Races,
				Competitors:     competitorReports(report.Result.Stats.Competitors),
			},
		}}
		if report.Plan != nil {
			res.Recover.PatternsUsed = report.Plan.PatternsUsed
			res.Recover.PatternsFull = report.Plan.PatternsFull
		}
		if ni := report.Result.Noise; ni != nil {
			res.Recover.Noise = &NoiseReport{
				Total:          ni.Total,
				Retained:       ni.Retained,
				Dropped:        ni.Dropped,
				DroppedEntries: ni.DroppedEntries,
				Confidence:     ni.Confidence,
				Margin:         ni.Margin,
			}
		}
		if len(report.Result.Codes) > 0 {
			code := report.Result.Codes[0]
			res.Recover.H = strings.Split(code.H().String(), "\n")
			text, err := code.MarshalText()
			if err != nil {
				return nil, err
			}
			res.Recover.Code = string(text)
			if spec.Verify {
				match := code.EquivalentTo(repro.GroundTruth(repro.SimulatedChip(mfr, k, seed)))
				res.Recover.GroundTruthMatch = &match
			}
		} else if spec.Verify {
			match := false
			res.Recover.GroundTruthMatch = &match
		}
		return res, nil
	}, nil
}

func buildSimulateRunner(spec JobSpec) (runner, error) {
	spec = spec.Normalized()
	words := spec.Words
	if words < 1 || words > maxWords {
		return nil, fmt.Errorf("words=%d out of range [1, %d]", spec.Words, maxWords)
	}
	rber := spec.RBER
	if rber < 0 || rber > 1 {
		return nil, fmt.Errorf("rber=%g out of [0, 1]", spec.RBER)
	}
	k := spec.K
	if k < 4 || k > 247 {
		return nil, fmt.Errorf("k=%d out of range [4, 247]", spec.K)
	}
	var code *ecc.Code
	switch spec.CodeFamily {
	case "sequential":
		code = ecc.SequentialHamming(k)
	case "bitreversed":
		code = ecc.BitReversedHamming(k)
	case "random":
		code = ecc.RandomHamming(k, rand.New(rand.NewPCG(spec.Seed, 2)))
	default:
		return nil, fmt.Errorf("unknown code family %q", spec.CodeFamily)
	}
	cfg := einsim.Config{Code: code, RBER: rber, Words: words}
	switch spec.Pattern {
	case "0xFF":
		cfg.Pattern = einsim.PatternAllOnes
	case "0x00":
		cfg.Pattern = einsim.PatternAllZeros
	case "RANDOM":
		cfg.Pattern = einsim.PatternRandom
	default:
		return nil, fmt.Errorf("unknown pattern %q", spec.Pattern)
	}
	switch spec.Model {
	case "uniform":
		cfg.Model = einsim.ModelUniform
	case "retention":
		cfg.Model = einsim.ModelRetention
	default:
		return nil, fmt.Errorf("unknown model %q", spec.Model)
	}
	seed := spec.Seed

	return func(ctx context.Context, engine *repro.Engine, _ repro.SolveCache, fn repro.ProgressFunc) (*JobResult, error) {
		pipe := repro.NewPipeline(repro.WithEngine(engine), repro.WithProgress(fn))
		res, err := pipe.Simulate(ctx, cfg, seed)
		if err != nil {
			return nil, err
		}
		return &JobResult{Simulate: &SimulateResult{
			N:            res.N,
			K:            res.K,
			Words:        res.Words,
			Correctable:  res.Correctable,
			Silent:       res.Silent,
			Partial:      res.Partial,
			Miscorrected: res.Miscorrected,
		}}, nil
	}, nil
}

// JobResult is the body of GET /api/v1/jobs/{id}/result; exactly one field
// is set, matching the job type.
type JobResult struct {
	Recover  *RecoverResult  `json:"recover,omitempty"`
	Simulate *SimulateResult `json:"simulate,omitempty"`
}

// RecoverResult reports a finished recovery job.
type RecoverResult struct {
	// K is the discovered dataword length.
	K int `json:"k"`
	// ProfileHash is the canonical content address of the collected
	// miscorrection profile (core.Profile.Hash) — the key of the recovered
	// function in the GET /codes registry, and what a later submission with
	// an identical profile dedupes on.
	ProfileHash string `json:"profile_hash,omitempty"`
	// Unique is true when exactly one ECC function matches the profile.
	Unique bool `json:"unique"`
	// Candidates counts the enumerated matching functions.
	Candidates int `json:"candidates"`
	// H holds the recovered parity-check matrix H = [P | I], one bit-string
	// row per entry (first candidate).
	H []string `json:"h,omitempty"`
	// Code is the recovered function in ecc.Code text form, parseable with
	// Code.UnmarshalText.
	Code string `json:"code,omitempty"`
	// GroundTruthMatch reports the verify outcome (recover jobs with
	// "verify": true against simulated chips only).
	GroundTruthMatch *bool `json:"ground_truth_match,omitempty"`
	// PatternsUsed and PatternsFull report the adaptive planner's economy
	// ("plan": true jobs only): how many test patterns were collected
	// before the code was determined, against the full-sweep family size.
	PatternsUsed int `json:"patterns_used,omitempty"`
	PatternsFull int `json:"patterns_full,omitempty"`
	// Noise reports the drop-k outcome of a confidence-weighted recovery
	// (jobs submitted with noise_fp/noise_fn/max_drop only).
	Noise *NoiseReport `json:"noise,omitempty"`
	// Solver carries the run's SAT-engine counters.
	Solver *SolverStats `json:"solver,omitempty"`
	// CollectMS and SolveMS time the experiment and solver phases.
	CollectMS float64 `json:"collect_ms"`
	SolveMS   float64 `json:"solve_ms"`
}

// NoiseReport is the "noise" block of a confidence-weighted recovery
// result (core.NoiseInfo on the wire).
type NoiseReport struct {
	// Total, Retained and Dropped count the solved profile's entries
	// (total = retained + dropped).
	Total    int `json:"total"`
	Retained int `json:"retained"`
	Dropped  int `json:"dropped"`
	// DroppedEntries lists the indexes of the profile entries the drop-k
	// loop retracted as inconsistent.
	DroppedEntries []int `json:"dropped_entries,omitempty"`
	// Confidence grades the recovery in [0, 1]: 1.0 means every entry was
	// retained and exactly one function matches (indistinguishable from an
	// exact solve); it shrinks with each dropped entry and each extra
	// candidate.
	Confidence float64 `json:"confidence"`
	// Margin is the support gap between the weakest retained and strongest
	// dropped entry (0 when nothing was dropped or support is uniform).
	Margin float64 `json:"margin"`
}

// SolverStats reports the SAT engine's work for one recovery: cumulative
// conflicts, propagations, learnt clauses and restarts, plus how many
// profile entries the incremental engine never had to encode. Portfolio
// runs additionally report how many solver races were held and each
// competitor's record.
type SolverStats struct {
	Conflicts       int64              `json:"conflicts"`
	Propagations    int64              `json:"propagations"`
	Learned         int64              `json:"learned"`
	Restarts        int64              `json:"restarts"`
	PatternsSkipped int                `json:"patterns_skipped,omitempty"`
	Races           int64              `json:"races,omitempty"`
	Competitors     []CompetitorReport `json:"competitors,omitempty"`
}

// CompetitorReport is one portfolio competitor's cumulative record: how
// many races it won, lost (another competitor answered first, or it was
// cancelled), timed out, or failed outright.
type CompetitorReport struct {
	Name     string `json:"name"`
	Wins     int64  `json:"wins"`
	Losses   int64  `json:"losses"`
	Timeouts int64  `json:"timeouts,omitempty"`
	Errors   int64  `json:"errors,omitempty"`
}

// competitorReports converts the engine's per-competitor records to the
// wire type.
func competitorReports(stats []repro.CompetitorStat) []CompetitorReport {
	if len(stats) == 0 {
		return nil
	}
	out := make([]CompetitorReport, len(stats))
	for i, c := range stats {
		out[i] = CompetitorReport{
			Name: c.Name, Wins: c.Wins, Losses: c.Losses,
			Timeouts: c.Timeouts, Errors: c.Errors,
		}
	}
	return out
}

// SimulateResult reports a finished simulation job.
type SimulateResult struct {
	N            int   `json:"n"`
	K            int   `json:"k"`
	Words        int64 `json:"words"`
	Correctable  int64 `json:"correctable"`
	Silent       int64 `json:"silent"`
	Partial      int64 `json:"partial"`
	Miscorrected int64 `json:"miscorrected"`
}

// StageStatus is one pipeline stage's progress in a status response. Count
// and Total are monotonic: Count only grows while the job runs.
type StageStatus struct {
	Done  bool  `json:"done"`
	Count int64 `json:"count"`
	Total int64 `json:"total,omitempty"`
}

// ProgressStatus is the per-stage progress block of a status response.
// Updates increments on every pipeline event, so two successive polls can be
// ordered by it. On a cluster coordinator the block is aggregated from the
// executing worker's own status stream: Worker and Dispatches say where the
// job is running and how many dispatch attempts (1 + failovers) it took,
// and the per-stage counters stay monotonic across a failover even though
// the replacement worker restarts collection from scratch.
type ProgressStatus struct {
	Updates    int64       `json:"updates"`
	Stage      string      `json:"stage,omitempty"`
	Chips      int         `json:"chips,omitempty"`
	Worker     string      `json:"worker,omitempty"`
	Dispatches int         `json:"dispatches,omitempty"`
	Discover   StageStatus `json:"discover"`
	Collect    StageStatus `json:"collect"`
	Solve      StageStatus `json:"solve"`
	// Solver streams the live SAT-engine counters (and, for planned jobs,
	// patterns collected vs. the full sweep). Like the stage counters it is
	// monotonic: values only grow while the job runs, including across a
	// cluster failover.
	Solver SolverProgress `json:"solver,omitzero"`
}

// SolverProgress is the live solver block of a status response. All
// counters are monotonic except Confidence, which tracks the noisy solver's
// current grading of the surviving candidate set (it follows the freshest
// report: more candidates mean less confidence).
type SolverProgress struct {
	Conflicts       int64   `json:"conflicts,omitempty"`
	Propagations    int64   `json:"propagations,omitempty"`
	Learned         int64   `json:"learned,omitempty"`
	Races           int64   `json:"races,omitempty"`
	PatternsUsed    int     `json:"patterns_used,omitempty"`
	PatternsPlanned int     `json:"patterns_planned,omitempty"`
	EntriesDropped  int64   `json:"entries_dropped,omitempty"`
	Confidence      float64 `json:"confidence,omitempty"`
}

// JobStatus is the body of GET /api/v1/jobs/{id} and the element type of
// GET /api/v1/jobs.
type JobStatus struct {
	ID       string         `json:"id"`
	Type     string         `json:"type"`
	State    State          `json:"state"`
	Error    string         `json:"error,omitempty"`
	Created  time.Time      `json:"created"`
	Started  time.Time      `json:"started,omitzero"`
	Finished time.Time      `json:"finished,omitzero"`
	Progress ProgressStatus `json:"progress"`
}

func (s *Server) status(j *job) JobStatus {
	state, errText, started, finished := j.snapshotState()
	return JobStatus{
		ID:       j.id,
		Type:     j.spec.Type,
		State:    state,
		Error:    errText,
		Created:  j.created,
		Started:  started,
		Finished: finished,
		Progress: j.progress.snapshot(),
	}
}

// bufPool recycles the scratch buffers every JSON response is encoded into.
// Serializing to a pooled buffer first (instead of an Encoder writing to the
// ResponseWriter) costs one copy but stops the serialization path from
// allocating an encoder state machine and growth-resized buffer per request
// — measurable on beerload's status-poll hot loop.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// putBuf returns a scratch buffer to the pool unless it grew past the point
// where retaining it would pin more memory than re-allocating costs (large
// /codes listings).
func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= 1<<16 {
		bufPool.Put(buf)
	}
}

// encodeJSON renders v in the API's canonical form: two-space indent plus
// the trailing newline json.Encoder emits.
func encodeJSON(buf *bytes.Buffer, v any) error {
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = encodeJSON(buf, v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

// statusBody returns the serialized GET /jobs/{id} response for j, rebuilding
// it only when a progress event or state transition has invalidated the
// cached bytes (see job.invalidateStatus). Holding bodyMu across the rebuild
// makes concurrent pollers of one job coalesce onto a single snapshot+marshal.
// The returned slice is shared and must not be mutated.
func (s *Server) statusBody(j *job) []byte {
	j.bodyMu.Lock()
	defer j.bodyMu.Unlock()
	if j.body == nil {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		_ = encodeJSON(buf, s.status(j))
		j.body = append([]byte(nil), buf.Bytes()...)
		putBuf(buf)
	}
	return j.body
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	// The caller's span context arrives either via the obs middleware
	// (cmd/beerd wraps the handler) or, for embedded handlers without
	// middleware (tests, workers driven by the coordinator), directly as a
	// traceparent header.
	parent := obs.SpanContextFrom(r.Context())
	if !parent.Valid() {
		parent, _ = obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	}
	j, err := s.submit(spec, parent)
	var saturated *SaturatedError
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrShuttingDown):
		// The server still answers status and result reads; only new work
		// is refused. Retry-After tells load balancers and the cluster
		// coordinator when to try again (or to try elsewhere).
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.As(err, &saturated):
		w.Header().Set("Retry-After", strconv.Itoa(int(saturated.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.list()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, s.status(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	// Serve the cached serialized body: a hot poll loop pays the monotonic
	// progress merge and the JSON marshal once per progress event, not once
	// per request.
	body := s.statusBody(j)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	state, errText, _, _ := j.snapshotState()
	switch state {
	case StateRunning:
		writeError(w, http.StatusConflict, "job %s is still running", j.id)
	case StateFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", j.id, errText)
	case StateCanceled:
		writeError(w, http.StatusConflict, "job %s was canceled", j.id)
	default:
		j.mu.Lock()
		result := j.result
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, result)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.markUserCanceled() // DELETE is terminal: never resumed after a restart
	// Release the single-flight slot eagerly: the execution is doomed, so a
	// new identical submission must start fresh instead of attaching to it.
	s.releaseDedupe(j)
	j.cancel()
	// Record the terminal intent durably NOW: the goroutine persists the
	// final state only at its next pass boundary, and a crash in between
	// must not resurrect a user-cancelled job.
	s.persistCancelIntent(j)
	writeJSON(w, http.StatusOK, s.status(j))
}

// healthStatser is an optional Executor extension: executors that carry
// their own operational state (the cluster coordinator's worker fleet)
// contribute it to /healthz under "cluster".
type healthStatser interface {
	HealthStats() map[string]any
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	invocations, hits := s.SolveCounters()
	totals := s.solve.totals()
	noisyJobs, entriesDropped := s.solve.noisyTotals()
	codes := 0
	if keys, err := s.store.Backend().Keys(store.BucketCodes); err == nil {
		codes = len(keys)
	}
	payload := map[string]any{
		"status":    "ok",
		"workers":   s.engine.Workers(),
		"in_flight": s.engine.InFlight(),
		"executor":  s.executor.Describe(),
		"jobs":      s.stateCounts(),
		"running":   s.RunningJobs(),
		"store":     s.store.Describe(),
		"codes":     codes,
		"solver": map[string]any{
			"invocations":      invocations,
			"cache_hits":       hits,
			"conflicts":        totals.Conflicts,
			"propagations":     totals.Propagations,
			"learned":          totals.Learned,
			"restarts":         totals.Restarts,
			"patterns_skipped": totals.PatternsSkipped,
			"noisy_recoveries": noisyJobs,
			"entries_dropped":  entriesDropped,
			"races":            totals.Races,
		},
	}
	// Portfolio runs additionally expose fleet-lifetime per-competitor
	// records; solver-less deployments keep the payload unchanged.
	if len(totals.Competitors) > 0 {
		payload["portfolio"] = totals.Competitors
	}
	if s.maxJobs > 0 {
		payload["max_concurrent"] = s.maxJobs
	}
	if s.Draining() {
		payload["draining"] = true
	}
	if hs, ok := s.executor.(healthStatser); ok {
		payload["cluster"] = hs.HealthStats()
	}
	writeJSON(w, http.StatusOK, payload)
}

// CodeListing is one entry of the GET /codes registry listing: the first
// candidate function in the export wire format (store.CodeExport) plus the
// record's registry metadata.
type CodeListing struct {
	store.CodeExport
	// Candidates counts every function consistent with the profile; the
	// embedded export is the first. GET /codes/{profile_hash} returns all.
	Candidates int `json:"candidates"`
	// CreatedAt and Source record when and by which job the profile was
	// first solved.
	CreatedAt time.Time `json:"created_at"`
	Source    string    `json:"source,omitempty"`
	// DetermineMS and UniquenessMS replay the original solver timings.
	DetermineMS  float64 `json:"determine_ms"`
	UniquenessMS float64 `json:"uniqueness_ms"`
}

// CodeDetail is the body of GET /codes/{profile_hash}: the full registry
// record with every candidate exported.
type CodeDetail struct {
	ProfileHash  string             `json:"profile_hash"`
	K            int                `json:"k"`
	N            int                `json:"n"`
	Unique       bool               `json:"unique"`
	Exhausted    bool               `json:"exhausted"`
	Candidates   int                `json:"candidates"`
	CreatedAt    time.Time          `json:"created_at"`
	Source       string             `json:"source,omitempty"`
	DetermineMS  float64            `json:"determine_ms"`
	UniquenessMS float64            `json:"uniqueness_ms"`
	Codes        []store.CodeExport `json:"codes"`
}

// handleCodes lists the recovered-code registry, oldest record first.
// Records whose search proved the profile unsatisfiable carry no codes and
// are omitted from the listing (they remain readable by hash).
func (s *Server) handleCodes(w http.ResponseWriter, r *http.Request) {
	recs, err := s.store.Codes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading code registry: %v", err)
		return
	}
	listings := make([]CodeListing, 0, len(recs))
	for _, rec := range recs {
		exps, err := rec.Export()
		if err != nil || len(exps) == 0 {
			continue
		}
		listings = append(listings, CodeListing{
			CodeExport:   exps[0],
			Candidates:   len(rec.Codes),
			CreatedAt:    rec.CreatedAt,
			Source:       rec.Source,
			DetermineMS:  rec.DetermineMS,
			UniquenessMS: rec.UniquenessMS,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"codes": listings})
}

// handleCode returns one registry record with every candidate function.
func (s *Server) handleCode(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, ok, err := s.store.GetCode(hash)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading code registry: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no recovered code for profile hash %q", hash)
		return
	}
	exps, err := rec.Export()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "exporting record: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CodeDetail{
		ProfileHash:  rec.ProfileHash,
		K:            rec.K,
		N:            rec.N,
		Unique:       rec.Unique,
		Exhausted:    rec.Exhausted,
		Candidates:   len(rec.Codes),
		CreatedAt:    rec.CreatedAt,
		Source:       rec.Source,
		DetermineMS:  rec.DetermineMS,
		UniquenessMS: rec.UniquenessMS,
		Codes:        exps,
	})
}
