package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/store"
)

// This file makes beerd jobs durable. Every job writes two records to the
// server's store: one when it starts ("running") and one when it reaches a
// terminal state. On construction the server reads the job bucket back:
// terminal records replay into the job table (status and result immediately
// readable), and "running" records — jobs interrupted by a crash or
// shutdown — restart from their persisted specs. Recovered ECC functions are
// NOT stored here: they live in the content-addressed codes bucket, written
// by the solve cache (store.SolveCacheView), so a resumed job whose profile
// was already solved replays the solver result too.

// jobRecord snapshots a job into its durable record form.
func (s *Server) jobRecord(j *job) (*store.JobRecord, bool) {
	state, errText, started, finished := j.snapshotState()
	j.mu.Lock()
	result := j.result
	userCanceled := j.userCanceled
	j.mu.Unlock()

	rec := &store.JobRecord{
		ID:       j.id,
		Type:     j.spec.Type,
		State:    string(state),
		Error:    errText,
		Created:  j.created.UTC(),
		Started:  started.UTC(),
		Finished: finished.UTC(),
	}
	if spec, err := json.Marshal(j.spec); err == nil {
		rec.Spec = spec
	}
	if result != nil {
		if data, err := json.Marshal(result); err == nil {
			rec.Result = data
		}
		if result.Recover != nil {
			rec.ProfileHash = result.Recover.ProfileHash
		}
	}
	return rec, userCanceled
}

// persistJob writes the job's current snapshot to the store. Persistence is
// best-effort: a failing backend must not take down a job that already
// computed its result (the in-memory table still serves it); the error is
// surfaced on /healthz via the store description only insofar as operators
// monitor their disk.
func (s *Server) persistJob(j *job) {
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	rec, userCanceled := s.jobRecord(j)
	// A job cancelled by server shutdown is persisted as still running: the
	// next boot resumes it, which is what makes a graceful restart lose no
	// submitted work. A DELETE-initiated cancellation is terminal and stays
	// "canceled" even when the shutdown races the job goroutine's finish.
	if State(rec.State) == StateCanceled && !userCanceled && s.baseCtx.Err() != nil {
		rec.State = string(StateRunning)
		rec.Error = ""
		rec.Finished = time.Time{}
	}
	_ = s.store.PutJob(rec)
}

// persistCancelIntent durably records a DELETE the moment it is accepted,
// before the job goroutine observes the cancelled context at its next pass
// boundary. Without this, a hard crash inside that window would leave a
// "running" record and the next boot would resume a job the user explicitly
// cancelled. persistMu makes the snapshot-and-write atomic against the
// goroutine's own persist: if the job already reached a terminal state, its
// record carries the truth and this is a no-op; if the job finishes after
// this write, the goroutine's later persist overwrites the intent with the
// real outcome. A stale intent can therefore never clobber a terminal
// record.
func (s *Server) persistCancelIntent(j *job) {
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	rec, _ := s.jobRecord(j)
	if State(rec.State) != StateRunning {
		return
	}
	rec.State = string(StateCanceled)
	rec.Error = "canceled by DELETE"
	rec.Finished = time.Now().UTC()
	_ = s.store.PutJob(rec)
}

// recoverPersistedJobs loads the store's job bucket into the job table:
// terminal records replay, "running" records resume. Called once from New,
// before the server is published.
func (s *Server) recoverPersistedJobs() {
	// Restore the id sequence from every key that looks like one of ours —
	// including records too corrupt to load — so a new submission can never
	// mint an id that collides with (and overwrites) an existing file.
	maxSeq := 0
	if keys, err := s.store.Backend().Keys(store.BucketJobs); err == nil {
		for _, key := range keys {
			if n, ok := parseJobID(key); ok && n > maxSeq {
				maxSeq = n
			}
		}
	}
	s.seq = maxSeq

	recs, err := s.store.Jobs()
	if err != nil || len(recs) == 0 {
		return
	}
	// Restore submission order from the numeric suffix.
	type numbered struct {
		n   int
		rec *store.JobRecord
	}
	ordered := make([]numbered, 0, len(recs))
	for _, rec := range recs {
		n, ok := parseJobID(rec.ID)
		if !ok {
			continue // foreign record (e.g. an operator's backup copy);
			// leave it in the store, keep it out of the table
		}
		ordered = append(ordered, numbered{n: n, rec: rec})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].n < ordered[j].n })

	for _, item := range ordered {
		rec := item.rec
		var spec JobSpec
		specErr := json.Unmarshal(rec.Spec, &spec)
		if spec.Type == "" {
			spec.Type = rec.Type // keep the listing readable even without a spec
		}
		j := &job{
			id:      rec.ID,
			spec:    spec,
			created: rec.Created,
			state:   State(rec.State),
			errText: rec.Error,
		}
		j.started = rec.Started
		j.finished = rec.Finished
		j.progress.update(ProgressStatus{Chips: spec.chipCount()})

		if State(rec.State) == StateRunning {
			if specErr != nil {
				// The spec is unreadable (corrupt record or a failed marshal
				// at persist time); the job cannot re-run. Surface it as a
				// failed job rather than silently dropping it with a stale
				// "running" record left in the store.
				s.registerTerminal(j, StateFailed, fmt.Sprintf("resume: corrupt spec: %v", specErr))
				continue
			}
			s.resume(j)
			continue
		}
		s.replay(j, rec)
	}
}

// registerTerminal places a job that will never run into the table in a
// terminal state and persists that verdict.
func (s *Server) registerTerminal(j *job, state State, errText string) {
	j.state = state
	j.errText = errText
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	j.cancel = func() {}
	s.mu.Lock()
	s.table.put(j)
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.persistJob(j)
}

// parseJobID matches exactly the ids the server mints ("job-<n>", n >= 1).
// Anything else — including ids with trailing garbage like "job-2.bak",
// which fmt.Sscanf would happily accept — is foreign and must not be
// resumed or replayed.
func parseJobID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// resume restarts an interrupted job from its persisted spec under a fresh
// context. Its previous partial collection is gone — BEER discards partial
// counts by design (an unevenly sampled profile would bias the §5.2
// threshold filter) — but if the profile was solved before the interruption,
// the content-addressed registry still short-circuits the solve stage.
func (s *Server) resume(j *job) {
	exec, err := s.executor.Prepare(j.spec)
	if err != nil {
		// The spec was validated at submission; failing now means the record
		// predates a validation change. Mark it failed rather than dropping
		// it silently.
		s.registerTerminal(j, StateFailed, fmt.Sprintf("resume: %v", err))
		return
	}
	j.state = StateRunning
	j.errText = ""
	j.finished = time.Time{}
	key := dedupeKey(j.spec)
	s.mu.Lock()
	// A resumed job claims the single-flight slot for its spec (first one
	// wins if several interrupted records share a spec), so submissions
	// arriving while it re-runs attach to it instead of re-executing.
	if _, taken := s.inflight[key]; !taken {
		j.dedupeKey = key
		s.inflight[key] = j
	}
	s.registerLocked(j)
	s.mu.Unlock()
	s.start(j, exec)
}

// replay restores a terminal job so its status and result read exactly as
// before the restart. The pipeline does not run again; per-stage progress is
// synthesized as complete for succeeded jobs (the live event stream did not
// survive the restart, and the API documents replayed progress as terminal
// rather than historical).
func (s *Server) replay(j *job, rec *store.JobRecord) {
	j.replayed = true
	j.cancel = func() {} // cancelling a terminal job is a no-op
	if len(rec.Result) > 0 {
		result := new(JobResult)
		if err := json.Unmarshal(rec.Result, result); err == nil {
			j.result = result
		}
	}
	if j.state == StateSucceeded {
		chips := j.spec.chipCount()
		p := ProgressStatus{
			Updates:  1,
			Chips:    chips,
			Discover: StageStatus{Done: true, Count: int64(chips), Total: int64(chips)},
			Collect:  StageStatus{Done: true},
			Solve:    StageStatus{Done: true},
		}
		if j.result != nil && j.result.Recover != nil {
			p.Solve.Count = int64(j.result.Recover.Candidates)
		}
		if j.spec.Type == "recover" {
			p.Stage = "solve"
		}
		j.progress.set(p)
	}
	s.mu.Lock()
	s.table.put(j)
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}
