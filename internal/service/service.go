// Package service implements beerd, the BEER job server: an HTTP/JSON API
// for submitting long-running recovery and simulation jobs, polling their
// per-stage progress, cancelling them, fetching results, and browsing the
// registry of recovered ECC functions.
//
// The server is a thin layer over the public Pipeline API: every job runs
// under its own context.Context (DELETE cancels it; server shutdown cancels
// all of them) on a single shared parallel experiment engine, so concurrent
// jobs share one worker pool and one profile cache — the paper's §6.3
// many-chips-one-lab workflow exposed as a service. Progress arrives through
// the pipeline's event stream (repro.WithProgress) and is folded into
// monotonic per-stage counters that status polls read.
//
// Every server also owns a result store (internal/store; in-memory by
// default, file-backed via WithStore and `beerd -store`): jobs persist as
// they run and finish, so a restarted server replays completed jobs and
// resumes interrupted ones, and every successful recovery lands in a
// content-addressed registry keyed by the canonical profile hash
// (core.Profile.Hash). The registry doubles as a solver cache — a submission
// whose miscorrection profile was solved before replays the recorded result
// with zero SAT invocations — and is browsable at GET /codes, the paper's §7
// "BEER database". docs/API.md documents the wire format of every endpoint.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/store"
)

// State is a job's lifecycle state.
type State string

const (
	// StateRunning marks a job whose pipeline is executing.
	StateRunning State = "running"
	// StateSucceeded marks a finished job with a result available.
	StateSucceeded State = "succeeded"
	// StateFailed marks a finished job whose pipeline returned an error.
	StateFailed State = "failed"
	// StateCanceled marks a job stopped by DELETE or server shutdown.
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s != StateRunning }

// Server owns the job table, the executor and the result store. Construct
// with New; serve Handler(); Drain stops accepting jobs and waits for
// in-flight ones; Close cancels every running job and waits for their
// goroutines to exit.
type Server struct {
	engine   *repro.Engine
	executor Executor
	store    *store.Store
	tier     repro.SolveCache
	solve    solveCounter
	maxJobs  int
	// solverOpts are extra pipeline options (external/portfolio SAT
	// backend selection) appended to every locally-executed recovery job;
	// see WithSolverOptions.
	solverOpts []repro.Option
	// hub and metrics are the observability plane: hub (never nil after
	// New) carries the metrics registry behind GET /metrics, the span ring
	// buffer behind GET /debug/traces and the structured logger; metrics
	// holds the service-layer instruments (see obs.go).
	hub     *obs.Hub
	metrics *serverMetrics

	// mu is the admission lock: it serializes submission bookkeeping
	// (sequence numbers, the running count, the drain flag, the in-flight
	// dedupe index, the order listing and the WaitGroup Add/shutdown race).
	// Job lookups do NOT take it — the job table itself is sharded (see
	// jobTable), so the status-poll hot path never contends with admissions.
	mu       sync.Mutex
	order    []string // submission order, for stable listings
	seq      int
	running  int // jobs currently executing (admission control)
	draining bool
	// inflight single-flights concurrent identical submissions: dedupe key
	// (see dedupe.go) → the running job executing that spec. An entry lives
	// from admission until the job's goroutine finishes (or the job is
	// cancelled), so N simultaneous identical submissions share one
	// execution and one solver invocation, and each receives the same job.
	inflight map[string]*job

	table jobTable

	baseCtx  context.Context
	shutdown context.CancelFunc
	wg       sync.WaitGroup
}

// jobShards is the job-table stripe count. Shard selection is a hash of the
// job ID, so the hot GET /jobs/{id} path locks 1/16th of the table instead
// of a global mutex shared with submissions and completions.
const jobShards = 16

// jobTable is the sharded job map. Reads (get) take a shard's RLock;
// inserts take its write lock. Membership never shrinks — jobs are retained
// for status/result reads until the process exits, matching the previous
// single-map behavior.
type jobTable struct {
	shards [jobShards]struct {
		mu sync.RWMutex
		m  map[string]*job
	}
}

func (t *jobTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[string]*job)
	}
}

// shardOf picks the stripe for a job ID (FNV-1a).
func (t *jobTable) shardOf(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % jobShards)
}

func (t *jobTable) get(id string) (*job, bool) {
	sh := &t.shards[t.shardOf(id)]
	sh.mu.RLock()
	j, ok := sh.m[id]
	sh.mu.RUnlock()
	return j, ok
}

func (t *jobTable) put(j *job) {
	sh := &t.shards[t.shardOf(j.id)]
	sh.mu.Lock()
	sh.m[j.id] = j
	sh.mu.Unlock()
}

// Option configures a Server at construction.
type Option func(*Server)

// WithExecutor routes job execution through a custom Executor instead of
// the local engine — how a cluster coordinator turns the same HTTP surface
// into a dispatching front end (internal/cluster.Coordinator).
func WithExecutor(x Executor) Option { return func(s *Server) { s.executor = x } }

// WithMaxConcurrent caps how many jobs may execute at once (0 = unlimited).
// A submission over the cap is rejected with a SaturatedError, which the
// HTTP handler maps to 429 + Retry-After — the backpressure signal a
// cluster coordinator spills and backs off on. Jobs resumed from the store
// at startup bypass the cap: they were admitted before the restart.
func WithMaxConcurrent(n int) Option { return func(s *Server) { s.maxJobs = n } }

// WithSolveCacheTier adds a second, typically remote, solve-cache tier
// consulted when the local store registry misses. A cluster worker points
// this at the coordinator's registry (cluster.RemoteCache), so a profile
// solved anywhere in the fleet is never solved again — hits are pulled into
// the local store, and fresh local solves are offered to the tier (the push
// half of registry sync).
func WithSolveCacheTier(c repro.SolveCache) Option { return func(s *Server) { s.tier = c } }

// WithSolverOptions appends extra pipeline options — typically
// repro.WithExternalSolver, repro.WithPortfolioSolver or a custom
// repro.WithSolverBackend factory — to every recovery job this server
// executes locally (what `beerd -solver`/`-portfolio` wires up). The
// options apply only to local execution: a cluster coordinator dispatches
// specs, and each worker's own WithSolverOptions decides its backend.
func WithSolverOptions(opts ...repro.Option) Option {
	return func(s *Server) { s.solverOpts = append(s.solverOpts, opts...) }
}

// WithStore backs the server with an existing result store. The default is
// a store over an in-memory backend: jobs then dedupe and replay within one
// process but do not survive a restart. Pass a store over a FileBackend
// (what `beerd -store <dir>` does) for durability — New then replays the
// store's completed jobs into the job table and resumes its interrupted
// ones.
func WithStore(st *store.Store) Option { return func(s *Server) { s.store = st } }

// New builds a Server multiplexing jobs onto the given engine (nil = the
// process-wide default engine). If the configured store already holds job
// records (a file-backed store from a previous run), New replays terminal
// jobs — their statuses and results are immediately readable — and restarts
// interrupted ones from their persisted specs.
func New(engine *repro.Engine, opts ...Option) *Server {
	if engine == nil {
		engine = repro.DefaultEngine()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		engine:   engine,
		inflight: make(map[string]*job),
		baseCtx:  ctx,
		shutdown: cancel,
	}
	s.table.init()
	for _, opt := range opts {
		opt(s)
	}
	if s.hub == nil {
		s.hub = obs.NewHub(nil)
	}
	s.metrics = newServerMetrics(s)
	if s.store == nil {
		s.store = store.New(store.NewMemBackend())
	}
	s.store.Instrument(func(op string, seconds float64) {
		s.metrics.storeSeconds.With(op).Observe(seconds)
	})
	if s.executor == nil {
		// Every locally-executed recovery shares one discovery cache: repeat
		// submissions of the same chip model skip the §5.1 read sweeps, which
		// dominate the request path for small simulated chips. Spec-derived
		// and deployment options are appended after and therefore win.
		extra := append([]repro.Option{repro.WithDiscoveryCache(repro.NewDiscoveryCache(64))}, s.solverOpts...)
		s.executor = localExecutor{engine: engine, extraOpts: extra, tracer: s.hub.Tracer}
	}
	s.recoverPersistedJobs()
	return s
}

// Executor returns the executor jobs run on.
func (s *Server) Executor() Executor { return s.executor }

// Store returns the server's result store (never nil).
func (s *Server) Store() *store.Store { return s.store }

// SolveCounters reports how many times recovery jobs reached the solve
// stage and how many of those were served from the content-addressed
// registry without invoking the SAT solver. invocations counts actual
// solver runs: lookups minus hits.
func (s *Server) SolveCounters() (invocations, cacheHits int64) {
	return s.solve.counters()
}

// solveCounter tallies solve-stage traffic across all jobs, plus the
// cumulative SAT-engine work of every completed recovery (the /healthz
// "solver" block).
type solveCounter struct {
	mu            sync.Mutex
	lookups, hits int64
	stats         SolverStats
	// noisyJobs and entriesDropped tally confidence-weighted recoveries:
	// how many jobs ran the drop-k solver and how many profile entries it
	// retracted in total (the /healthz "noisy_recoveries" and
	// "entries_dropped" counters).
	noisyJobs      int64
	entriesDropped int64
}

func (c *solveCounter) counters() (invocations, cacheHits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookups - c.hits, c.hits
}

// addStats folds one finished recovery's solver counters into the totals.
// Portfolio competitor records accumulate by name, so the /healthz
// "portfolio" block reports fleet-lifetime win/loss/timeout tallies even
// though each job builds its own racing backend.
func (c *solveCounter) addStats(s *SolverStats) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Conflicts += s.Conflicts
	c.stats.Propagations += s.Propagations
	c.stats.Learned += s.Learned
	c.stats.Restarts += s.Restarts
	c.stats.PatternsSkipped += s.PatternsSkipped
	c.stats.Races += s.Races
	for _, comp := range s.Competitors {
		found := false
		for i := range c.stats.Competitors {
			if c.stats.Competitors[i].Name == comp.Name {
				c.stats.Competitors[i].Wins += comp.Wins
				c.stats.Competitors[i].Losses += comp.Losses
				c.stats.Competitors[i].Timeouts += comp.Timeouts
				c.stats.Competitors[i].Errors += comp.Errors
				found = true
				break
			}
		}
		if !found {
			c.stats.Competitors = append(c.stats.Competitors, comp)
		}
	}
}

// addNoise folds one finished noisy recovery's drop-k outcome into the
// totals.
func (c *solveCounter) addNoise(n *NoiseReport) {
	if n == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noisyJobs++
	c.entriesDropped += int64(n.Dropped)
}

// noisyTotals returns the accumulated drop-k outcomes.
func (c *solveCounter) noisyTotals() (noisyJobs, entriesDropped int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.noisyJobs, c.entriesDropped
}

// totals returns the accumulated solver work (competitor records deep
// copied — addStats keeps mutating the originals).
func (c *solveCounter) totals() SolverStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Competitors = append([]CompetitorReport(nil), c.stats.Competitors...)
	return out
}

// countingCache wraps a job's store-backed solve cache with the server-wide
// counters. Every recovery job gets one, so a cache hit is observable as
// "zero new solver invocations" on /healthz and SolveCounters.
type countingCache struct {
	counter *solveCounter
	metrics *serverMetrics
	inner   repro.SolveCache
}

func (c countingCache) Lookup(p *repro.Profile) (*repro.SolveResult, bool) {
	res, ok := c.inner.Lookup(p)
	c.counter.mu.Lock()
	c.counter.lookups++
	if ok {
		c.counter.hits++
	}
	c.counter.mu.Unlock()
	if c.metrics != nil {
		c.metrics.cacheLookups.Inc()
		if ok {
			c.metrics.cacheHits.Inc()
		}
	}
	return res, ok
}

func (c countingCache) Store(p *repro.Profile, res *repro.SolveResult) { c.inner.Store(p, res) }

// Engine returns the shared experiment engine jobs run on.
func (s *Server) Engine() *repro.Engine { return s.engine }

// Drain gracefully quiesces the server: new submissions are rejected with
// ErrDraining (503 on the HTTP surface) while status, results and the code
// registry stay readable, and Drain blocks until every in-flight job has
// finished — or ctx expires, in which case the still-running jobs are left
// running (their count is in the error) for Close to cancel and persist as
// resumable. This is what `beerd` does on SIGTERM/SIGINT before exiting.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.running
		s.mu.Unlock()
		return fmt.Errorf("drain: %d jobs still running: %w", n, ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RunningJobs counts the jobs currently executing (what admission control
// compares against the WithMaxConcurrent cap, and what a cluster worker
// reports in its heartbeats).
func (s *Server) RunningJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// MaxConcurrent returns the admission cap (0 = unlimited).
func (s *Server) MaxConcurrent() int { return s.maxJobs }

// Close cancels every running job and blocks until all job goroutines have
// exited. The HTTP handler stays functional afterwards (status and results
// remain readable); new submissions are rejected.
func (s *Server) Close() {
	// Cancel under s.mu: submit checks baseCtx and does wg.Add while
	// holding the same lock, so after this section no new job can slip its
	// Add past our Wait.
	s.mu.Lock()
	s.shutdown()
	s.mu.Unlock()
	s.wg.Wait()
}

// job is one submitted unit of work.
type job struct {
	id      string
	spec    JobSpec
	runCtx  context.Context
	cancel  context.CancelFunc
	created time.Time
	// replayed marks a terminal job restored from the store on startup (its
	// pipeline did not run in this process).
	replayed bool
	// span is the job's root trace span, opened at submission (nil for
	// resumed/replayed jobs — their submitting request is long gone).
	span *obs.Span
	// dedupeKey is the spec's single-flight identity (see dedupe.go). Set
	// at admission; the server's inflight entry under it is released when
	// the job finishes or is user-cancelled.
	dedupeKey string

	progress progressTracker

	// bodyMu guards body, the cached serialized JobStatus response. Status
	// polls re-serve these bytes until a progress event or state transition
	// invalidates them (invalidateStatus), so a hot poll loop stops paying
	// the monotonic merge + JSON marshal per request. The lock is held
	// across a rebuild: concurrent pollers of one job coalesce onto a
	// single marshal, and an invalidation during a rebuild blocks until the
	// (now possibly stale) bytes are stored, then nils them — a reader can
	// serve a snapshot at most one event old, never a regressed one.
	bodyMu sync.Mutex
	body   []byte

	// watchMu guards watchers: one signal channel per open SSE stream,
	// poked (non-blocking) on every progress report and on the terminal
	// transition. See Server.handleEvents.
	watchMu  sync.Mutex
	watchers map[chan struct{}]struct{}

	mu       sync.Mutex
	state    State
	errText  string
	started  time.Time
	finished time.Time
	result   *JobResult
	// userCanceled marks a DELETE-initiated cancellation. It decides how a
	// cancelled job persists: DELETE is terminal ("canceled", never
	// resumes), while shutdown-initiated cancellation persists as resumable.
	userCanceled bool

	// persistMu serializes snapshot+write cycles against the store, so a
	// DELETE handler's cancel-intent write cannot interleave with the job
	// goroutine's terminal persist and clobber a succeeded record with a
	// stale "canceled" one. Always acquired before (never while holding)
	// j.mu.
	persistMu sync.Mutex
}

// watch registers an SSE stream's wakeup channel; the returned cancel
// removes it. The channel has capacity 1: a poke while one is pending
// coalesces, which is fine — watchers re-read the full status on wake.
func (j *job) watch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.watchMu.Lock()
	if j.watchers == nil {
		j.watchers = make(map[chan struct{}]struct{})
	}
	j.watchers[ch] = struct{}{}
	j.watchMu.Unlock()
	return ch, func() {
		j.watchMu.Lock()
		delete(j.watchers, ch)
		j.watchMu.Unlock()
	}
}

// notify pokes every open watcher without blocking.
func (j *job) notify() {
	j.watchMu.Lock()
	for ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.watchMu.Unlock()
}

// markUserCanceled records that the job's cancellation was requested via
// DELETE rather than server shutdown.
func (j *job) markUserCanceled() {
	j.mu.Lock()
	j.userCanceled = true
	j.mu.Unlock()
}

// invalidateStatus drops the cached status body; the next poll rebuilds it.
func (j *job) invalidateStatus() {
	j.bodyMu.Lock()
	j.body = nil
	j.bodyMu.Unlock()
}

func (j *job) snapshotState() (State, string, time.Time, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errText, j.started, j.finished
}

func (j *job) finish(state State, err error, result *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	if err != nil {
		j.errText = err.Error()
	}
	j.result = result
	j.finished = time.Now()
}

// ErrDraining rejects submissions while the server drains for shutdown;
// the HTTP handler maps it to 503 + Retry-After.
var ErrDraining = errors.New("server is draining")

// ErrShuttingDown rejects submissions after Close began.
var ErrShuttingDown = errors.New("server is shutting down")

// SaturatedError rejects a submission over the WithMaxConcurrent cap; the
// HTTP handler maps it to 429 + Retry-After.
type SaturatedError struct {
	Limit, Running int
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("saturated: %d of %d job slots in use", e.Running, e.Limit)
}

// RetryAfter suggests how long a client should wait before resubmitting.
// There is no queue to measure, so the hint is a flat nudge; the coordinator
// treats it as a floor and spills to another worker instead of waiting long.
func (e *SaturatedError) RetryAfter() time.Duration { return time.Second }

// submit validates a spec, registers a new job, persists it and starts its
// goroutine. parent, when valid, is the submitting client's span context
// (parsed from its traceparent header): the job's root span becomes its
// child, which is how a coordinator's dispatch span and the worker-side
// job span stitch into one trace.
//
// Identical concurrent submissions single-flight: if a job with the same
// dedupe key (analytic profile hash + the result-affecting remainder of the
// normalized spec, see dedupe.go) is already executing, the caller is
// attached to that job — same ID, same status stream, same result — and no
// new execution, persistence or solver work happens. The dedupe check sits
// before the drain/saturation gates on purpose: joining an in-flight
// execution adds no load, so it stays available even when admissions are
// rejected.
func (s *Server) submit(spec JobSpec, parent obs.SpanContext) (*job, error) {
	exec, err := s.executor.Prepare(spec)
	if err != nil {
		return nil, err
	}
	key := dedupeKey(spec)

	s.mu.Lock()
	if s.baseCtx.Err() != nil {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if prev, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.metrics.dedupeHits.Inc()
		s.hub.Log.Debug("job deduplicated onto in-flight execution",
			"job_id", prev.id, "type", spec.Type)
		return prev, nil
	}
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.maxJobs > 0 && s.running >= s.maxJobs {
		err := &SaturatedError{Limit: s.maxJobs, Running: s.running}
		s.mu.Unlock()
		return nil, err
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		spec:      spec,
		created:   time.Now(),
		state:     StateRunning,
		dedupeKey: key,
	}
	j.progress.metrics = s.metrics
	j.progress.update(ProgressStatus{Chips: spec.chipCount()})
	s.registerLocked(j)
	s.inflight[key] = j
	s.mu.Unlock()

	j.span = s.hub.Tracer.StartSpan(parent, "beerd.job")
	j.span.SetAttr("job_id", j.id)
	j.span.SetAttr("type", spec.Type)
	s.metrics.jobsSubmitted.With(spec.Type).Inc()
	s.hub.Log.Info("job submitted",
		"job_id", j.id, "type", spec.Type,
		"trace_id", j.span.Context().Trace.String())

	s.start(j, exec)
	return j, nil
}

// registerLocked adds a job to the table and claims its WaitGroup slot;
// callers hold s.mu (the shutdown check and the Add must be atomic against
// Close).
func (s *Server) registerLocked(j *job) {
	j.progress.metrics = s.metrics
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.runCtx = ctx
	j.cancel = cancel
	s.table.put(j)
	s.order = append(s.order, j.id)
	s.running++
	s.wg.Add(1)
}

// releaseDedupe drops the job's in-flight single-flight entry, if it still
// owns one. Called when the job's goroutine finishes, and eagerly on DELETE
// so a freshly cancelled (doomed) execution stops absorbing new identical
// submissions.
func (s *Server) releaseDedupe(j *job) {
	if j.dedupeKey == "" {
		return
	}
	s.mu.Lock()
	if s.inflight[j.dedupeKey] == j {
		delete(s.inflight, j.dedupeKey)
	}
	s.mu.Unlock()
}

// start persists the job's running record and launches its goroutine. The
// record is written before the goroutine exists, so a crash at any later
// point leaves a "running" record for the next boot to resume.
func (s *Server) start(j *job, exec Execution) {
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()
	j.invalidateStatus()
	if j.span == nil {
		// Resumed after a restart: the submitting request (and its trace)
		// is gone, so the re-run gets a fresh root span.
		j.span = s.hub.Tracer.StartSpan(obs.SpanContext{}, "beerd.job.resume")
		j.span.SetAttr("job_id", j.id)
		j.span.SetAttr("type", j.spec.Type)
	}
	s.persistJob(j)

	go func() {
		defer s.wg.Done()
		defer j.cancel()
		env := ExecEnv{
			JobID: j.id,
			Cache: s.jobCache(j),
			Report: func(p ProgressStatus) {
				j.progress.update(p)
				j.invalidateStatus()
				j.notify() // wake SSE streams
			},
			Trace: j.span.Context(),
		}
		result, err := exec(j.runCtx, env)
		switch {
		case err == nil:
			if result != nil && result.Recover != nil {
				// Fold the recovery's solver work into the server totals —
				// on a coordinator this is the dispatched worker's reported
				// work, so the fleet's front end aggregates the whole
				// cluster's solver effort.
				s.solve.addStats(result.Recover.Solver)
				s.solve.addNoise(result.Recover.Noise)
			}
			j.finish(StateSucceeded, nil, result)
		case j.runCtx.Err() != nil:
			j.finish(StateCanceled, j.runCtx.Err(), nil)
		default:
			j.finish(StateFailed, err, nil)
		}
		s.mu.Lock()
		s.running--
		if j.dedupeKey != "" && s.inflight[j.dedupeKey] == j {
			delete(s.inflight, j.dedupeKey)
		}
		s.mu.Unlock()
		// Persist the terminal record before invalidating the cached status
		// body: pollers keep being served the stale "running" snapshot until
		// the store write lands, so a client that observes a terminal status
		// and immediately inspects the store (or restarts the server) finds
		// the terminal record already durable.
		s.persistJob(j)
		j.invalidateStatus()

		state, errText, started, finished := j.snapshotState()
		s.metrics.observeFinished(j.spec.Type, state, started, finished, result)
		if err != nil {
			j.span.SetError(err)
		}
		j.span.SetAttr("state", string(state))
		j.span.End()
		s.hub.Log.Info("job finished",
			"job_id", j.id, "state", string(state), "error", errText,
			"dur", finished.Sub(started),
			"trace_id", j.span.Context().Trace.String())
		j.notify() // wake SSE streams for the terminal event
	}()
}

// jobCache builds the job's solve cache: the store's content-addressed
// registry labeled with the job id (so the registry records provenance),
// layered over the remote tier if one is configured, wrapped with the
// server-wide solver counters.
func (s *Server) jobCache(j *job) repro.SolveCache {
	var inner repro.SolveCache = s.store.SolveCache(j.id)
	if s.tier != nil {
		inner = tieredCache{local: inner, tier: s.tier}
	}
	return countingCache{counter: &s.solve, metrics: s.metrics, inner: inner}
}

// tieredCache layers a remote solve-cache tier behind the local store
// registry: lookups fall through to the tier on a local miss (and the hit
// is written back locally), stores go to both. A tier failure is a miss —
// a worker cut off from its coordinator degrades to local caching.
type tieredCache struct {
	local, tier repro.SolveCache
}

func (c tieredCache) Lookup(p *repro.Profile) (*repro.SolveResult, bool) {
	if res, ok := c.local.Lookup(p); ok {
		return res, true
	}
	res, ok := c.tier.Lookup(p)
	if ok {
		c.local.Store(p, res)
	}
	return res, ok
}

func (c tieredCache) Store(p *repro.Profile, res *repro.SolveResult) {
	c.local.Store(p, res)
	c.tier.Store(p, res)
}

// get returns a job by id. This is the status-poll hot path: it touches
// only the job's table shard, never the admission lock.
func (s *Server) get(id string) (*job, bool) {
	return s.table.get(id)
}

// list returns all jobs in submission order.
func (s *Server) list() []*job {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]*job, 0, len(order))
	for _, id := range order {
		if j, ok := s.table.get(id); ok {
			out = append(out, j)
		}
	}
	return out
}

// stateCounts tallies jobs per state for /healthz.
func (s *Server) stateCounts() map[string]int {
	counts := map[string]int{}
	for _, j := range s.list() {
		st, _, _, _ := j.snapshotState()
		counts[string(st)]++
	}
	return counts
}

// progressState folds the pipeline's event stream into counters that only
// ever increase, so a poller observing two status snapshots can assert the
// later one is at least as far along (the beerd smoke test does exactly
// that). One instance is shared by all chips of a job; events arrive
// serialized per run (see Engine.Recover) but snapshot reads race with
// writes, hence the mutex.
type progressState struct {
	mu      sync.Mutex
	updates int64
	stage   string
	chips   int

	discoverDone  int
	collectPasses int64
	collectTotal  int64
	collectDone   int
	candidates    int
	solveDone     bool
	solver        SolverProgress
}

// observe is the repro.ProgressFunc wired into each job's pipeline.
func (p *progressState) observe(ev repro.ProgressEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.updates++
	p.stage = ev.Stage.String()
	switch ev.Stage {
	case repro.StageDiscover:
		if ev.Done {
			p.discoverDone++
		}
	case repro.StageCollect:
		if ev.Done {
			p.collectDone++
		} else {
			p.collectPasses++
			if total := int64(ev.Passes) * int64(p.chips); total > p.collectTotal {
				p.collectTotal = total
			}
		}
	case repro.StageSolve:
		if ev.Candidates > p.candidates {
			p.candidates = ev.Candidates
		}
		// Solver counters are cumulative within a run; keep the fold
		// monotonic anyway so a mixed event stream can't step backwards.
		p.solver.Conflicts = max(p.solver.Conflicts, ev.Conflicts)
		p.solver.Propagations = max(p.solver.Propagations, ev.Propagations)
		p.solver.Learned = max(p.solver.Learned, ev.LearnedClauses)
		p.solver.Races = max(p.solver.Races, ev.Races)
		p.solver.PatternsUsed = max(p.solver.PatternsUsed, ev.PatternsUsed)
		p.solver.PatternsPlanned = max(p.solver.PatternsPlanned, ev.PatternsPlanned)
		p.solver.EntriesDropped = max(p.solver.EntriesDropped, int64(ev.DroppedEntries))
		// Confidence is the one non-monotonic solver field: each candidate
		// event re-grades the surviving set, so the freshest nonzero report
		// wins (retraction events grade zero — no candidate exists yet).
		if ev.Confidence != 0 {
			p.solver.Confidence = ev.Confidence
		}
		if ev.Done {
			p.solveDone = true
		}
	}
}

// snapshot renders the progress for a status response.
func (p *progressState) snapshot() ProgressStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProgressStatus{
		Updates: p.updates,
		Stage:   p.stage,
		Chips:   p.chips,
		Discover: StageStatus{
			Done:  p.discoverDone >= p.chips && p.updates > 0,
			Count: int64(p.discoverDone),
			Total: int64(p.chips),
		},
		Collect: StageStatus{
			Done:  p.collectDone >= p.chips && p.updates > 0,
			Count: p.collectPasses,
			Total: p.collectTotal,
		},
		Solve: StageStatus{
			Done:  p.solveDone,
			Count: int64(p.candidates),
		},
		Solver: p.solver,
	}
}

// Handler returns the beerd HTTP API (full request/response schemas in
// docs/API.md):
//
//	POST   /api/v1/jobs             submit a job (JobSpec JSON)
//	GET    /api/v1/jobs             list job statuses
//	GET    /api/v1/jobs/{id}        one job's status + per-stage progress
//	GET    /api/v1/jobs/{id}/events live status stream (Server-Sent Events)
//	GET    /api/v1/jobs/{id}/result a finished job's result
//	DELETE /api/v1/jobs/{id}        cancel a running job
//	GET    /codes                   the recovered-code registry (export format)
//	GET    /codes/{hash}            one registry record, all candidates
//	GET    /healthz                 liveness + engine/job/solver counters
//	GET    /metrics                 Prometheus text exposition (obs registry)
//	GET    /debug/traces            JSON dump of the span ring buffer
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /codes", s.handleCodes)
	mux.HandleFunc("GET /codes/{hash}", s.handleCode)
	// The registry is also reachable under the versioned prefix for clients
	// that mount everything below /api/v1.
	mux.HandleFunc("GET /api/v1/codes", s.handleCodes)
	mux.HandleFunc("GET /api/v1/codes/{hash}", s.handleCode)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.hub.Metrics.Handler())
	mux.Handle("GET /debug/traces", s.hub.Tracer.Handler())
	return mux
}
