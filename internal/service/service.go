// Package service implements beerd, the BEER job server: an HTTP/JSON API
// for submitting long-running recovery and simulation jobs, polling their
// per-stage progress, cancelling them, and fetching results.
//
// The server is a thin layer over the public Pipeline API: every job runs
// under its own context.Context (DELETE cancels it; server shutdown cancels
// all of them) on a single shared parallel experiment engine, so concurrent
// jobs share one worker pool and one profile cache — the paper's §6.3
// many-chips-one-lab workflow exposed as a service. Progress arrives through
// the pipeline's event stream (repro.WithProgress) and is folded into
// monotonic per-stage counters that status polls read.
package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro"
)

// State is a job's lifecycle state.
type State string

const (
	// StateRunning marks a job whose pipeline is executing.
	StateRunning State = "running"
	// StateSucceeded marks a finished job with a result available.
	StateSucceeded State = "succeeded"
	// StateFailed marks a finished job whose pipeline returned an error.
	StateFailed State = "failed"
	// StateCanceled marks a job stopped by DELETE or server shutdown.
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s != StateRunning }

// Server owns the job table and the shared experiment engine. Construct
// with New; serve Handler(); Close cancels every running job and waits for
// their goroutines to exit.
type Server struct {
	engine *repro.Engine

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for stable listings
	seq   int

	baseCtx  context.Context
	shutdown context.CancelFunc
	wg       sync.WaitGroup
}

// New builds a Server multiplexing jobs onto the given engine (nil = the
// process-wide default engine).
func New(engine *repro.Engine) *Server {
	if engine == nil {
		engine = repro.DefaultEngine()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		engine:   engine,
		jobs:     make(map[string]*job),
		baseCtx:  ctx,
		shutdown: cancel,
	}
}

// Engine returns the shared experiment engine jobs run on.
func (s *Server) Engine() *repro.Engine { return s.engine }

// Close cancels every running job and blocks until all job goroutines have
// exited. The HTTP handler stays functional afterwards (status and results
// remain readable); new submissions are rejected.
func (s *Server) Close() {
	// Cancel under s.mu: submit checks baseCtx and does wg.Add while
	// holding the same lock, so after this section no new job can slip its
	// Add past our Wait.
	s.mu.Lock()
	s.shutdown()
	s.mu.Unlock()
	s.wg.Wait()
}

// job is one submitted unit of work.
type job struct {
	id      string
	spec    JobSpec
	cancel  context.CancelFunc
	created time.Time

	progress progressState

	mu       sync.Mutex
	state    State
	errText  string
	started  time.Time
	finished time.Time
	result   *JobResult
}

func (j *job) snapshotState() (State, string, time.Time, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errText, j.started, j.finished
}

func (j *job) finish(state State, err error, result *JobResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	if err != nil {
		j.errText = err.Error()
	}
	j.result = result
	j.finished = time.Now()
}

// submit validates a spec, registers a job and starts its goroutine.
func (s *Server) submit(spec JobSpec) (*job, error) {
	run, err := buildRunner(spec)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.baseCtx.Err() != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("server is shutting down")
	}
	s.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", s.seq),
		spec:    spec,
		created: time.Now(),
		state:   StateRunning,
	}
	j.progress.chips = spec.chipCount()
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()

	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()

	go func() {
		defer s.wg.Done()
		defer cancel()
		result, err := run(ctx, s.engine, j.progress.observe)
		switch {
		case err == nil:
			j.finish(StateSucceeded, nil, result)
		case ctx.Err() != nil:
			j.finish(StateCanceled, ctx.Err(), nil)
		default:
			j.finish(StateFailed, err, nil)
		}
	}()
	return j, nil
}

// get returns a job by id.
func (s *Server) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns all jobs in submission order.
func (s *Server) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// stateCounts tallies jobs per state for /healthz.
func (s *Server) stateCounts() map[string]int {
	counts := map[string]int{}
	for _, j := range s.list() {
		st, _, _, _ := j.snapshotState()
		counts[string(st)]++
	}
	return counts
}

// progressState folds the pipeline's event stream into counters that only
// ever increase, so a poller observing two status snapshots can assert the
// later one is at least as far along (the beerd smoke test does exactly
// that). One instance is shared by all chips of a job; events arrive
// serialized per run (see Engine.Recover) but snapshot reads race with
// writes, hence the mutex.
type progressState struct {
	mu      sync.Mutex
	updates int64
	stage   string
	chips   int

	discoverDone  int
	collectPasses int64
	collectTotal  int64
	collectDone   int
	candidates    int
	solveDone     bool
}

// observe is the repro.ProgressFunc wired into each job's pipeline.
func (p *progressState) observe(ev repro.ProgressEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.updates++
	p.stage = ev.Stage.String()
	switch ev.Stage {
	case repro.StageDiscover:
		if ev.Done {
			p.discoverDone++
		}
	case repro.StageCollect:
		if ev.Done {
			p.collectDone++
		} else {
			p.collectPasses++
			if total := int64(ev.Passes) * int64(p.chips); total > p.collectTotal {
				p.collectTotal = total
			}
		}
	case repro.StageSolve:
		if ev.Candidates > p.candidates {
			p.candidates = ev.Candidates
		}
		if ev.Done {
			p.solveDone = true
		}
	}
}

// snapshot renders the progress for a status response.
func (p *progressState) snapshot() ProgressStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProgressStatus{
		Updates: p.updates,
		Stage:   p.stage,
		Chips:   p.chips,
		Discover: StageStatus{
			Done:  p.discoverDone >= p.chips && p.updates > 0,
			Count: int64(p.discoverDone),
			Total: int64(p.chips),
		},
		Collect: StageStatus{
			Done:  p.collectDone >= p.chips && p.updates > 0,
			Count: p.collectPasses,
			Total: p.collectTotal,
		},
		Solve: StageStatus{
			Done:  p.solveDone,
			Count: int64(p.candidates),
		},
	}
}

// Handler returns the beerd HTTP API:
//
//	POST   /api/v1/jobs             submit a job (JobSpec JSON)
//	GET    /api/v1/jobs             list job statuses
//	GET    /api/v1/jobs/{id}        one job's status + per-stage progress
//	GET    /api/v1/jobs/{id}/result a finished job's result
//	DELETE /api/v1/jobs/{id}        cancel a running job
//	GET    /healthz                 liveness + engine/job counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}
