package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestDrainFinishesInFlightJobs: Drain rejects new submissions with 503
// while the in-flight job keeps running to a successful finish, and
// status polls answer throughout.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	srv := New(repro.NewEngine(2))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		JobSpec{Type: "recover", Manufacturer: "B", K: 8, Verify: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Draining flips quickly; new submissions must bounce with 503 +
	// Retry-After while the old job still runs.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+id, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status poll while draining: %s", resp.Status)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+id, nil)
	if st := decode[JobStatus](t, body); st.State != StateSucceeded {
		t.Fatalf("in-flight job finished %s (error %q), want succeeded", st.State, st.Error)
	}
}

// TestDrainTimeout: a drain that cannot finish in time reports how many
// jobs are still running and leaves them for Close.
func TestDrainTimeout(t *testing.T) {
	srv := New(repro.NewEngine(1))
	defer srv.Close()
	// A heavyweight job that cannot finish within the drain window.
	j, err := srv.submit(JobSpec{Type: "recover", Manufacturer: "B", K: 32, Chips: 8, Rounds: 16}, obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		st, _, _, _ := j.snapshotState()
		t.Fatalf("drain returned nil with job in state %s", st)
	}
}

// TestAdmissionControl429: a server capped at one concurrent job answers
// the second submission with 429 + Retry-After, and accepts again once
// the slot frees.
func TestAdmissionControl429(t *testing.T) {
	srv := New(repro.NewEngine(2), WithMaxConcurrent(1))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs",
		JobSpec{Type: "recover", Manufacturer: "B", K: 8, Verify: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID

	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	if st := waitTerminal(t, ts.URL, id); st.State != StateSucceeded {
		t.Fatalf("first job finished %s: %s", st.State, st.Error)
	}
	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate", Words: 100})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after slot freed: %s: %s", resp.Status, body)
	}
}
