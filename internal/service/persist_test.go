package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/store"
)

// fileStore opens a file-backed result store rooted at dir.
func fileStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	fb, err := store.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store.New(fb)
}

// TestRestartPreservesCompletedJobs is the durability acceptance test:
// a beerd backed by a file store is stopped after a job completes and a new
// server is booted on the same directory; the job, its result and the
// recovered code registry must all survive.
func TestRestartPreservesCompletedJobs(t *testing.T) {
	dir := t.TempDir()

	srv1 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts1 := httptest.NewServer(srv1.Handler())

	resp, body := do(t, http.MethodPost, ts1.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Seed:         7,
		Verify:       true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID
	final := waitTerminal(t, ts1.URL, id)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	_, body = do(t, http.MethodGet, ts1.URL+"/api/v1/jobs/"+id+"/result", nil)
	original := decode[JobResult](t, body)
	if original.Recover == nil || original.Recover.ProfileHash == "" {
		t.Fatalf("result carries no profile hash: %s", body)
	}

	// The registry lists the recovered function while the first server runs.
	_, body = do(t, http.MethodGet, ts1.URL+"/codes", nil)
	listing := decode[struct{ Codes []CodeListing }](t, body)
	if len(listing.Codes) != 1 || listing.Codes[0].ProfileHash != original.Recover.ProfileHash {
		t.Fatalf("codes listing before restart: %s", body)
	}
	if listing.Codes[0].Scheme != "HSC" || listing.Codes[0].Unique == nil || !*listing.Codes[0].Unique {
		t.Fatalf("codes listing not in export format: %s", body)
	}

	ts1.Close()
	srv1.Close()

	// Boot a brand-new server over the same directory.
	srv2 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { ts2.Close(); srv2.Close() })

	resp, body = do(t, http.MethodGet, ts2.URL+"/api/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed job status: %s: %s", resp.Status, body)
	}
	replayed := decode[JobStatus](t, body)
	if replayed.State != StateSucceeded || !replayed.Progress.Solve.Done {
		t.Fatalf("replayed job not terminal-complete: %+v", replayed)
	}
	resp, body = do(t, http.MethodGet, ts2.URL+"/api/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed result: %s: %s", resp.Status, body)
	}
	restored := decode[JobResult](t, body)
	if restored.Recover == nil ||
		restored.Recover.Code != original.Recover.Code ||
		restored.Recover.ProfileHash != original.Recover.ProfileHash {
		t.Fatalf("replayed result differs:\n%+v\nvs\n%+v", restored.Recover, original.Recover)
	}
	_, body = do(t, http.MethodGet, ts2.URL+"/codes", nil)
	listing = decode[struct{ Codes []CodeListing }](t, body)
	if len(listing.Codes) != 1 || listing.Codes[0].ProfileHash != original.Recover.ProfileHash {
		t.Fatalf("codes listing lost across restart: %s", body)
	}
	// The detail endpoint resolves the hash to every candidate.
	resp, body = do(t, http.MethodGet, ts2.URL+"/codes/"+original.Recover.ProfileHash, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code detail: %s: %s", resp.Status, body)
	}
	detail := decode[CodeDetail](t, body)
	if !detail.Unique || len(detail.Codes) != 1 || detail.K != 16 {
		t.Fatalf("code detail: %s", body)
	}

	// New submissions on the restarted server continue the id sequence.
	resp, body = do(t, http.MethodPost, ts2.URL+"/api/v1/jobs", JobSpec{Type: "simulate", Words: 1000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after restart: %s: %s", resp.Status, body)
	}
	if newID := decode[JobStatus](t, body).ID; newID == id {
		t.Fatalf("restarted server reused job id %s", newID)
	}
}

// TestRestartResumesInterruptedJob kills a server mid-job (graceful Close,
// which persists in-flight jobs as still running) and checks that a new
// server on the same store re-runs the job to completion.
func TestRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts1 := httptest.NewServer(srv1.Handler())

	resp, body := do(t, http.MethodPost, ts1.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Seed:         3,
		Rounds:       16, // long enough to still be running at Close
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID

	ts1.Close()
	srv1.Close() // cancels the running job; persisted state stays "running"

	rec, ok, err := srv1.Store().GetJob(id)
	if err != nil || !ok {
		t.Fatalf("job record after close: ok=%v err=%v", ok, err)
	}
	if rec.State != string(StateRunning) {
		t.Skipf("job finished before Close (state %s); resume path not exercised", rec.State)
	}

	srv2 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { ts2.Close(); srv2.Close() })

	final := waitTerminal(t, ts2.URL, id)
	if final.State != StateSucceeded {
		t.Fatalf("resumed job finished %s: %s", final.State, final.Error)
	}
	resp, body = do(t, http.MethodGet, ts2.URL+"/api/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed result: %s: %s", resp.Status, body)
	}
	if res := decode[JobResult](t, body); res.Recover == nil || !res.Recover.Unique {
		t.Fatalf("resumed job result: %s", body)
	}
	// The store now records the terminal state.
	rec, ok, err = srv2.Store().GetJob(id)
	if err != nil || !ok || rec.State != string(StateSucceeded) {
		t.Fatalf("store state after resume: %+v ok=%v err=%v", rec, ok, err)
	}
}

// TestResumeFromCraftedRunningRecord simulates a hard crash (kill -9): a
// "running" record exists in the store but no process ever finished it. The
// booting server must pick it up and run it.
func TestResumeFromCraftedRunningRecord(t *testing.T) {
	dir := t.TempDir()
	st := fileStore(t, dir)
	spec, err := json.Marshal(JobSpec{Type: "recover", Manufacturer: "B", K: 16, Seed: 9, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(&store.JobRecord{
		ID:      "job-5",
		Type:    "recover",
		Spec:    spec,
		State:   string(StateRunning),
		Created: time.Now().UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	final := waitTerminal(t, ts.URL, "job-5")
	if final.State != StateSucceeded {
		t.Fatalf("crash-resumed job finished %s: %s", final.State, final.Error)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/api/v1/jobs/job-5/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, body)
	}
	res := decode[JobResult](t, body)
	if res.Recover == nil || res.Recover.GroundTruthMatch == nil || !*res.Recover.GroundTruthMatch {
		t.Fatalf("crash-resumed job did not verify: %s", body)
	}
	// The next fresh submission must not collide with the resumed id space.
	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate", Words: 1000})
	if resp.StatusCode != http.StatusAccepted || decode[JobStatus](t, body).ID != "job-6" {
		t.Fatalf("seq not restored: %s: %s", resp.Status, body)
	}
}

// TestDeleteCancelStaysTerminalAcrossRestart: a DELETE-cancelled job must
// persist as "canceled" even when server shutdown races the job goroutine,
// and must NOT resume on the next boot (shutdown-cancelled jobs do).
func TestDeleteCancelStaysTerminalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts1 := httptest.NewServer(srv1.Handler())

	resp, body := do(t, http.MethodPost, ts1.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Rounds:       16, // long enough to still be running when deleted
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	id := decode[JobStatus](t, body).ID
	if resp, body := do(t, http.MethodDelete, ts1.URL+"/api/v1/jobs/"+id, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s: %s", resp.Status, body)
	}
	// The terminal intent must be durable the moment DELETE returns — a
	// hard crash before the job goroutine notices the cancel must not
	// leave a resumable "running" record.
	if rec, ok, err := srv1.Store().GetJob(id); err != nil || !ok {
		t.Fatalf("record right after DELETE: ok=%v err=%v", ok, err)
	} else if rec.State == string(StateRunning) {
		t.Fatalf("record still resumable after DELETE returned: %q", rec.State)
	}
	// Close immediately: the job goroutine's finish/persist may now run
	// with baseCtx already cancelled — the DELETE must still win.
	ts1.Close()
	srv1.Close()

	rec, ok, err := srv1.Store().GetJob(id)
	if err != nil || !ok {
		t.Fatalf("record after close: ok=%v err=%v", ok, err)
	}
	if rec.State == string(StateSucceeded) {
		t.Skip("job finished before DELETE landed; cancel path not exercised")
	}
	if rec.State != string(StateCanceled) {
		t.Fatalf("DELETE-cancelled job persisted as %q, want canceled", rec.State)
	}

	srv2 := New(repro.NewEngine(2), WithStore(fileStore(t, dir)))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	resp, body = do(t, http.MethodGet, ts2.URL+"/api/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after restart: %s: %s", resp.Status, body)
	}
	if st := decode[JobStatus](t, body); st.State != StateCanceled {
		t.Fatalf("cancelled job resumed as %q after restart", st.State)
	}
}

// TestForeignJobRecordsIgnored: ids that are not exactly "job-<n>" (e.g. an
// operator's backup copy job-2.bak) must be left in the store but never
// replayed, resumed, or counted into the id sequence.
func TestForeignJobRecordsIgnored(t *testing.T) {
	dir := t.TempDir()
	st := fileStore(t, dir)
	spec, _ := json.Marshal(JobSpec{Type: "simulate", Words: 1000})
	for _, id := range []string{"job-2.bak", "job-", "job-0", "backup-job-3", "job-007x"} {
		if err := st.PutJob(&store.JobRecord{ID: id, Type: "simulate", Spec: spec, State: string(StateRunning), Created: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(repro.NewEngine(1), WithStore(fileStore(t, dir)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	_, body := do(t, http.MethodGet, ts.URL+"/api/v1/jobs", nil)
	if listing := decode[struct{ Jobs []JobStatus }](t, body); len(listing.Jobs) != 0 {
		t.Fatalf("foreign records entered the job table: %s", body)
	}
	// The sequence starts fresh: the first real submission is job-1.
	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate", Words: 1000})
	if resp.StatusCode != http.StatusAccepted || decode[JobStatus](t, body).ID != "job-1" {
		t.Fatalf("sequence polluted by foreign ids: %s: %s", resp.Status, body)
	}
	// The foreign records are still in the store, untouched.
	if rec, ok, err := srv.Store().GetJob("job-2.bak"); err != nil || !ok || rec.State != string(StateRunning) {
		t.Fatalf("foreign record mutated: %+v ok=%v err=%v", rec, ok, err)
	}
}

// TestCorruptSpecSurfacesAsFailedJob: a "running" record whose spec JSON is
// unreadable cannot resume, but it must not vanish either — it shows up as a
// failed job and its store record stops saying "running".
func TestCorruptSpecSurfacesAsFailedJob(t *testing.T) {
	dir := t.TempDir()
	st := fileStore(t, dir)
	if err := st.PutJob(&store.JobRecord{
		ID:   "job-1",
		Type: "recover",
		// Valid JSON, wrong shape: unmarshals into JobSpec with an error.
		Spec:    json.RawMessage(`"not-a-spec-object"`),
		State:   string(StateRunning),
		Created: time.Now().UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	// A record that is not even JSON must not block replaying the others.
	if err := st.Backend().Put(store.BucketJobs, "job-3", []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv := New(repro.NewEngine(1), WithStore(fileStore(t, dir)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	resp, body := do(t, http.MethodGet, ts.URL+"/api/v1/jobs/job-1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt-spec job missing from table: %s: %s", resp.Status, body)
	}
	status := decode[JobStatus](t, body)
	if status.State != StateFailed || !strings.Contains(status.Error, "corrupt spec") {
		t.Fatalf("corrupt-spec job state: %+v", status)
	}
	if status.Type != "recover" {
		t.Fatalf("type lost on corrupt-spec job: %+v", status)
	}
	rec, ok, err := srv.Store().GetJob("job-1")
	if err != nil || !ok || rec.State != string(StateFailed) {
		t.Fatalf("store still says %q: ok=%v err=%v", rec.State, ok, err)
	}
	// The unreadable job-3 record still reserves its id: a fresh submission
	// must mint job-4, never overwrite job-3's file.
	resp, body = do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{Type: "simulate", Words: 1000})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	if newID := decode[JobStatus](t, body).ID; newID != "job-4" {
		t.Fatalf("new job minted %s; corrupt job-3's id was not reserved", newID)
	}
	if raw, ok, err := srv.Store().Backend().Get(store.BucketJobs, "job-3"); err != nil || !ok || string(raw) != "{broken" {
		t.Fatalf("corrupt record was touched: %q ok=%v err=%v", raw, ok, err)
	}
}

// TestDuplicateProfileSkipsSolver is the dedupe acceptance test: two
// submissions carrying byte-identical miscorrection profiles (same simulated
// chip, same sweep) must run the SAT solver exactly once — the second result
// replays from the content-addressed registry.
func TestDuplicateProfileSkipsSolver(t *testing.T) {
	srv, ts := newTestServer(t)

	submit := func() JobResult {
		resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
			Type:         "recover",
			Manufacturer: "B",
			K:            16,
			Seed:         11,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %s: %s", resp.Status, body)
		}
		final := waitTerminal(t, ts.URL, decode[JobStatus](t, body).ID)
		if final.State != StateSucceeded {
			t.Fatalf("job finished %s: %s", final.State, final.Error)
		}
		_, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+final.ID+"/result", nil)
		return decode[JobResult](t, body)
	}

	first := submit()
	if inv, hits := srv.SolveCounters(); inv != 1 || hits != 0 {
		t.Fatalf("after first job: invocations=%d hits=%d", inv, hits)
	}

	second := submit()
	inv, hits := srv.SolveCounters()
	if inv != 1 {
		t.Fatalf("duplicate profile re-ran the solver: invocations=%d", inv)
	}
	if hits != 1 {
		t.Fatalf("duplicate profile missed the cache: hits=%d", hits)
	}
	if first.Recover.ProfileHash != second.Recover.ProfileHash {
		t.Fatalf("identical submissions hashed differently: %s vs %s",
			first.Recover.ProfileHash, second.Recover.ProfileHash)
	}
	if first.Recover.Code != second.Recover.Code {
		t.Fatal("cached result returned a different code")
	}

	// The registry lists exactly one record for the shared profile, sourced
	// from the job that actually solved it.
	_, body := do(t, http.MethodGet, ts.URL+"/codes", nil)
	listing := decode[struct{ Codes []CodeListing }](t, body)
	if len(listing.Codes) != 1 || listing.Codes[0].ProfileHash != first.Recover.ProfileHash {
		t.Fatalf("registry after duplicate jobs: %s", body)
	}
	if listing.Codes[0].Source != "job-1" {
		t.Fatalf("registry provenance: %s", body)
	}
	// Solver counters are also visible on healthz.
	_, body = do(t, http.MethodGet, ts.URL+"/healthz", nil)
	health := decode[map[string]any](t, body)
	solver, ok := health["solver"].(map[string]any)
	if !ok || int(solver["invocations"].(float64)) != 1 || int(solver["cache_hits"].(float64)) != 1 {
		t.Fatalf("healthz solver counters: %s", body)
	}
}
