package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"repro"
	"repro/internal/store"
)

// This file derives the two spec identities the serving layer keys on:
//
//   - ProfileKey: the cache identity — which solve-cache entry (and which
//     cluster-ring slot) a job's work lands on. Submissions that differ only
//     in fields that cannot change the observed miscorrection profile share
//     a ProfileKey. cluster.RoutingKey delegates here, so the consistent-hash
//     ring and the single-flight index agree on what "the same profile"
//     means.
//
//   - dedupeKey: the execution identity — whether two submissions would
//     produce byte-identical results and may therefore share one execution.
//     It is the ProfileKey plus every remaining result-affecting field of
//     the normalized spec, so single-flighting on it is safe: a joined
//     caller observes exactly the status stream and result it would have
//     computed itself.
//
// The distinction matters: chip count, rounds or the verify flag do not move
// a job to a different worker (same profile, same cache line), but they do
// change the result body, so they widen the dedupe key without touching the
// profile key.

// profileKeys memoizes the analytic profile hash per (manufacturer, k,
// patterns, anti, seed) model tuple. The closed-form profile computation is
// microseconds of work, but it sits on the submission hot path — under load
// every POST would otherwise re-derive the same few hashes. The LRU's
// single-flight Get also collapses a thundering herd of first submissions
// into one computation.
var profileKeys = store.NewLRU[string, string](256)

// ProfileKey returns the spec's cache identity.
//
// For recovery jobs this is the canonical hash (core.Profile.Hash) of the
// miscorrection profile the job is going to observe, computed analytically
// from the chip model's known ECC function via the §4 closed form
// (repro.ExactProfile) — no experiment runs. Anti-cell collection appends
// inverted-pattern entries to the observed profile, so UseAntiRows keys on a
// "+anti" variant. Planned jobs observe a deterministic prefix of the full
// profile and share the full-sweep key on purpose.
//
// Simulation jobs have no miscorrection profile; they key on the normalized
// simulation parameters.
func ProfileKey(spec JobSpec) string {
	spec = spec.Normalized()
	switch spec.Type {
	case "recover":
		memo := fmt.Sprintf("%s|%d|%s|%t|%d",
			spec.Manufacturer, spec.K, spec.Patterns, spec.UseAntiRows, spec.Seed)
		return profileKeys.Get(memo, func() string {
			code := repro.GroundTruth(repro.SimulatedChip(repro.Manufacturer(spec.Manufacturer), spec.K, spec.Seed))
			patterns := repro.Set12
			if spec.Patterns == "1" {
				patterns = repro.Set1
			}
			key := repro.ExactProfile(code, patterns.Patterns(spec.K)).Hash()
			if spec.UseAntiRows {
				key += "+anti"
			}
			return key
		})
	case "simulate":
		canon := fmt.Sprintf("sim|k=%d|words=%d|rber=%g|family=%s|pattern=%s|model=%s|seed=%d",
			spec.K, spec.Words, spec.RBER, spec.CodeFamily, spec.Pattern, spec.Model, spec.Seed)
		sum := sha256.Sum256([]byte(canon))
		return hex.EncodeToString(sum[:])
	default:
		// Unknown types are rejected by validation before either consumer
		// needs a key; a defensive constant keeps the cluster ring total.
		return "unroutable"
	}
}

// dedupeKey returns the spec's execution identity: the single-flight index
// key under which concurrent identical submissions share one job. Two specs
// map to the same key iff their normalized forms request byte-identical
// work, so the key is the ProfileKey plus every result-affecting field the
// profile key deliberately ignores.
func dedupeKey(spec JobSpec) string {
	spec = spec.Normalized()
	switch spec.Type {
	case "recover":
		// MaxDrop distinguishes nil (robust solver off) from explicit values,
		// including 0 ("drop nothing") and -1 ("unlimited").
		maxDrop := "nil"
		if spec.MaxDrop != nil {
			maxDrop = strconv.Itoa(*spec.MaxDrop)
		}
		return fmt.Sprintf("recover|%s|chips=%d|seed=%d|rounds=%d|win=%d|lazy=%t|plan=%t|verify=%t|fp=%g|fn=%g|nseed=%d|drop=%s",
			ProfileKey(spec), spec.Chips, spec.Seed, spec.Rounds, spec.MaxWindowMinutes,
			spec.UseLazySolver, spec.Plan, spec.Verify,
			spec.NoiseFP, spec.NoiseFN, spec.NoiseSeed, maxDrop)
	case "simulate":
		// The simulate ProfileKey already canonicalizes every result-affecting
		// parameter.
		return "simulate|" + ProfileKey(spec)
	default:
		// Unreachable after Prepare validated the spec; never collapse two
		// distinct invalid specs onto one key.
		return fmt.Sprintf("invalid|%#v", spec)
	}
}
