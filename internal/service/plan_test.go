package service

import (
	"net/http"
	"testing"
)

// TestPlanJobEndToEnd drives a "plan": true recovery job through the HTTP
// surface: the job must succeed, verify against ground truth, report the
// planner's patterns economy and solver counters in the result, stream a
// monotonic solver progress block in its status, and feed the server-wide
// /healthz solver totals.
func TestPlanJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
		Type:         "recover",
		Manufacturer: "B",
		K:            16,
		Seed:         77,
		Verify:       true,
		Plan:         true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	accepted := decode[JobStatus](t, body)

	st := waitTerminal(t, ts.URL, accepted.ID)
	if st.State != StateSucceeded {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	if st.Progress.Solver.PatternsUsed == 0 || st.Progress.Solver.PatternsPlanned == 0 {
		t.Fatalf("status carries no planner solver progress: %+v", st.Progress.Solver)
	}
	if st.Progress.Solver.PatternsUsed > st.Progress.Solver.PatternsPlanned {
		t.Fatalf("patterns used (%d) exceeds planned total (%d)",
			st.Progress.Solver.PatternsUsed, st.Progress.Solver.PatternsPlanned)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/api/v1/jobs/"+accepted.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, body)
	}
	res := decode[JobResult](t, body)
	rec := res.Recover
	if rec == nil || !rec.Unique {
		t.Fatalf("expected unique recovery, got %+v", res)
	}
	if rec.GroundTruthMatch == nil || !*rec.GroundTruthMatch {
		t.Fatal("planned recovery does not match ground truth")
	}
	if rec.PatternsUsed == 0 || rec.PatternsUsed >= rec.PatternsFull {
		t.Fatalf("planner economy missing or inverted: used %d of %d", rec.PatternsUsed, rec.PatternsFull)
	}
	if rec.Solver == nil || rec.Solver.Propagations == 0 {
		t.Fatalf("result carries no solver stats: %+v", rec.Solver)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	health := decode[map[string]any](t, body)
	solver, ok := health["solver"].(map[string]any)
	if !ok {
		t.Fatalf("healthz solver block missing: %s", body)
	}
	if solver["propagations"].(float64) == 0 {
		t.Fatalf("healthz solver totals not aggregated: %s", body)
	}
}

// TestPlanRejectsAntiRows: the planner schedules true-cell patterns only,
// so the combination must be a 400 at submission time.
func TestPlanRejectsAntiRows(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, http.MethodPost, ts.URL+"/api/v1/jobs", JobSpec{
		Type:        "recover",
		Plan:        true,
		UseAntiRows: true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plan+anti submit: %s: %s", resp.Status, body)
	}
}
