package gf2

import (
	"math/rand/v2"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) Mat {
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.IntN(2) == 1)
		}
	}
	return m
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(9)
	v := VecFromSupport(9, 0, 4, 8)
	if !id.MulVec(v).Equal(v) {
		t.Fatal("I*v != v")
	}
	if !id.Mul(id).Equal(id) {
		t.Fatal("I*I != I")
	}
}

func TestMatColAndSetCol(t *testing.T) {
	m := MatFromBits([][]int{
		{1, 0, 1},
		{0, 1, 1},
	})
	c := m.Col(2)
	if c.String() != "11" {
		t.Fatalf("Col = %s", c)
	}
	m.SetCol(0, VecFromBits([]int{0, 1}))
	if m.Get(0, 0) || !m.Get(1, 0) {
		t.Fatal("SetCol did not take effect")
	}
}

func TestMatTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 50; trial++ {
		m := randMat(rng, 1+rng.IntN(20), 1+rng.IntN(90))
		if !m.Transpose().Transpose().Equal(m) {
			t.Fatal("transpose is not an involution")
		}
	}
}

func TestMatMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		a := randMat(rng, 1+rng.IntN(8), 1+rng.IntN(8))
		b := randMat(rng, a.Cols(), 1+rng.IntN(8))
		c := randMat(rng, b.Cols(), 1+rng.IntN(8))
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatal("matrix product is not associative")
		}
	}
}

func TestMatMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		a := randMat(rng, 1+rng.IntN(10), 1+rng.IntN(10))
		x := randMat(rng, a.Cols(), 1)
		viaMat := a.Mul(x).Col(0)
		viaVec := a.MulVec(x.Col(0))
		if !viaMat.Equal(viaVec) {
			t.Fatal("MulVec disagrees with Mul")
		}
	}
}

func TestVecMulIsRowCombination(t *testing.T) {
	m := MatFromBits([][]int{
		{1, 0, 0, 1},
		{0, 1, 0, 1},
		{0, 0, 1, 1},
	})
	sel := VecFromBits([]int{1, 0, 1})
	got := m.VecMul(sel)
	want := m.Row(0).Xor(m.Row(2))
	if !got.Equal(want) {
		t.Fatalf("VecMul = %s, want %s", got, want)
	}
}

func TestHStackSubMatrix(t *testing.T) {
	a := MatFromBits([][]int{{1, 0}, {0, 1}})
	b := MatFromBits([][]int{{1, 1, 1}, {0, 0, 1}})
	s := a.HStack(b)
	if s.Rows() != 2 || s.Cols() != 5 {
		t.Fatalf("HStack shape %dx%d", s.Rows(), s.Cols())
	}
	if !s.SubMatrix(0, 2, 0, 2).Equal(a) || !s.SubMatrix(0, 2, 2, 5).Equal(b) {
		t.Fatal("SubMatrix does not recover blocks")
	}
}

func TestRREFRankProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 60; trial++ {
		m := randMat(rng, 1+rng.IntN(12), 1+rng.IntN(12))
		r, pivots := m.RREF()
		if len(pivots) != m.Rank() {
			t.Fatal("pivot count != rank")
		}
		// Pivot columns must be unit columns in the RREF.
		for i, p := range pivots {
			col := r.Col(p)
			if col.Weight() != 1 || !col.Get(i) {
				t.Fatalf("pivot column %d not a unit vector: %s", p, col)
			}
		}
		// Rank is invariant under transpose.
		if m.Rank() != m.Transpose().Rank() {
			t.Fatal("rank(m) != rank(m^T)")
		}
	}
}

func TestSolveConsistentSystems(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 80; trial++ {
		m := randMat(rng, 1+rng.IntN(12), 1+rng.IntN(12))
		want := NewVec(m.Cols())
		for j := 0; j < m.Cols(); j++ {
			want.Set(j, rng.IntN(2) == 1)
		}
		b := m.MulVec(want)
		x, ok := m.Solve(b)
		if !ok {
			t.Fatal("consistent system reported unsolvable")
		}
		if !m.MulVec(x).Equal(b) {
			t.Fatal("Solve returned a non-solution")
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x + y = 0 and x + y = 1 simultaneously.
	m := MatFromBits([][]int{{1, 1}, {1, 1}})
	b := VecFromBits([]int{0, 1})
	if _, ok := m.Solve(b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestNullSpace(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 60; trial++ {
		m := randMat(rng, 1+rng.IntN(10), 1+rng.IntN(14))
		basis := m.NullSpace()
		if len(basis) != m.Cols()-m.Rank() {
			t.Fatalf("kernel dimension %d, want %d", len(basis), m.Cols()-m.Rank())
		}
		for _, v := range basis {
			if !m.MulVec(v).Zero() {
				t.Fatal("null space vector not annihilated")
			}
			if v.Zero() {
				t.Fatal("zero vector in null space basis")
			}
		}
		// Basis must be linearly independent.
		if len(basis) > 0 && MatFromRows(basis...).Rank() != len(basis) {
			t.Fatal("null space basis is linearly dependent")
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	found := 0
	for trial := 0; trial < 200 && found < 40; trial++ {
		n := 1 + rng.IntN(10)
		m := randMat(rng, n, n)
		inv, ok := m.Inverse()
		if !ok {
			if m.Rank() == n {
				t.Fatal("full-rank matrix reported singular")
			}
			continue
		}
		found++
		if !m.Mul(inv).Equal(Identity(n)) || !inv.Mul(m).Equal(Identity(n)) {
			t.Fatal("inverse is wrong")
		}
	}
	if found == 0 {
		t.Fatal("no invertible matrices sampled; test is vacuous")
	}
}

func TestMatFromRowsCloning(t *testing.T) {
	r := VecFromSupport(4, 1)
	m := MatFromRows(r)
	r.Flip(1)
	if !m.Get(0, 1) {
		t.Fatal("MatFromRows aliases caller storage")
	}
}

func TestMatStringRoundTrip(t *testing.T) {
	m := MatFromBits([][]int{{1, 0, 1}, {0, 1, 1}})
	if m.String() != "101\n011" {
		t.Fatalf("String = %q", m.String())
	}
}
