package gf2

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewVecZero(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if !v.Zero() || v.Weight() != 0 {
		t.Fatalf("new vector not zero: %v", v)
	}
}

func TestVecSetGetFlip(t *testing.T) {
	v := NewVec(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		v.Set(i, true)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after flip", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after double flip", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Errorf("bit %d still set after clear", i)
		}
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	NewVec(8).Get(8)
}

func TestVecFromSupportAndSupport(t *testing.T) {
	v := VecFromSupport(200, 3, 64, 199)
	got := v.Support()
	want := []int{3, 64, 199}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if v.Weight() != 3 {
		t.Errorf("Weight = %d, want 3", v.Weight())
	}
	if v.FirstSet() != 3 {
		t.Errorf("FirstSet = %d, want 3", v.FirstSet())
	}
	if NewVec(10).FirstSet() != -1 {
		t.Errorf("FirstSet of zero vector should be -1")
	}
}

func TestVecFromUint(t *testing.T) {
	v := VecFromUint(8, 0b1011)
	if v.String() != "11010000" {
		t.Fatalf("String = %q", v.String())
	}
	if v.Uint64() != 0b1011 {
		t.Fatalf("Uint64 = %#x", v.Uint64())
	}
}

func TestVecXorDotSubset(t *testing.T) {
	a := VecFromBits([]int{1, 0, 1, 1, 0})
	b := VecFromBits([]int{0, 0, 1, 0, 1})
	x := a.Xor(b)
	if x.String() != "10011" {
		t.Fatalf("Xor = %s", x)
	}
	if a.Dot(b) != 1 { // overlap at index 2 only
		t.Fatalf("Dot = %d, want 1", a.Dot(b))
	}
	if !b.And(a).SubsetOf(a) {
		t.Fatal("AND result must be subset of operand")
	}
	if b.SubsetOf(a) {
		t.Fatal("b has bit 4 set, a does not; not a subset")
	}
	if !VecFromBits([]int{1, 0, 0, 1, 0}).SubsetOf(a) {
		t.Fatal("subset not detected")
	}
}

func TestVecSliceConcat(t *testing.T) {
	v, err := ParseVec("1101001")
	if err != nil {
		t.Fatal(err)
	}
	lo := v.Slice(0, 4)
	hi := v.Slice(4, 7)
	if lo.String() != "1101" || hi.String() != "001" {
		t.Fatalf("Slice = %s / %s", lo, hi)
	}
	if got := lo.Concat(hi); !got.Equal(v) {
		t.Fatalf("Concat = %s, want %s", got, v)
	}
}

func TestParseVecError(t *testing.T) {
	if _, err := ParseVec("10x1"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestVecCloneIndependence(t *testing.T) {
	v := VecFromSupport(70, 5, 69)
	c := v.Clone()
	c.Flip(5)
	if !v.Get(5) {
		t.Fatal("Clone aliases original storage")
	}
}

// Property: XOR is its own inverse and commutative; weight of xor obeys
// inclusion-exclusion with the AND overlap.
func TestVecXorProperties(t *testing.T) {
	f := func(aBits, bBits uint64) bool {
		a := VecFromUint(64, aBits)
		b := VecFromUint(64, bBits)
		if !a.Xor(b).Xor(b).Equal(a) {
			return false
		}
		if !a.Xor(b).Equal(b.Xor(a)) {
			return false
		}
		overlap := a.And(b).Weight()
		return a.Xor(b).Weight() == a.Weight()+b.Weight()-2*overlap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is bilinear: (a^b)·c == (a·c) ^ (b·c).
func TestVecDotBilinear(t *testing.T) {
	f := func(aBits, bBits, cBits uint64) bool {
		a := VecFromUint(64, aBits)
		b := VecFromUint(64, bBits)
		c := VecFromUint(64, cBits)
		return a.Xor(b).Dot(c) == a.Dot(c)^b.Dot(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SubsetOf agrees with the definition on random vectors longer than
// one machine word.
func TestVecSubsetOfDefinition(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(180)
		a, b := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.IntN(2) == 0)
			b.Set(i, rng.IntN(3) == 0)
		}
		want := true
		for i := 0; i < n; i++ {
			if a.Get(i) && !b.Get(i) {
				want = false
				break
			}
		}
		if got := a.SubsetOf(b); got != want {
			t.Fatalf("SubsetOf mismatch: n=%d got=%v want=%v", n, got, want)
		}
	}
}
