package gf2

import (
	"fmt"
	"strings"
)

// Mat is a dense matrix over GF(2), stored row-major as bit vectors.
// The zero value is a 0x0 matrix.
type Mat struct {
	rows, cols int
	r          []Vec
}

// NewMat returns an all-zero rows x cols matrix.
func NewMat(rows, cols int) Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf2: negative matrix shape %dx%d", rows, cols))
	}
	m := Mat{rows: rows, cols: cols, r: make([]Vec, rows)}
	for i := range m.r {
		m.r[i] = NewVec(cols)
	}
	return m
}

// MatFromRows builds a matrix from row vectors, which must share a length.
// The rows are cloned, so the matrix does not alias the arguments.
func MatFromRows(rows ...Vec) Mat {
	if len(rows) == 0 {
		return Mat{}
	}
	cols := rows[0].Len()
	m := NewMat(len(rows), cols)
	for i, r := range rows {
		if r.Len() != cols {
			panic(fmt.Sprintf("gf2: row %d has length %d, want %d", i, r.Len(), cols))
		}
		m.r[i] = r.Clone()
	}
	return m
}

// MatFromBits builds a matrix from a slice of 0/1 rows.
func MatFromBits(rows [][]int) Mat {
	vs := make([]Vec, len(rows))
	for i, r := range rows {
		vs[i] = VecFromBits(r)
	}
	return MatFromRows(vs...)
}

// Identity returns the n x n identity matrix.
func Identity(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Rows returns the number of rows.
func (m Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Mat) Cols() int { return m.cols }

// Get reports whether entry (i, j) is set.
func (m Mat) Get(i, j int) bool { return m.r[i].Get(j) }

// Set sets entry (i, j) to b.
func (m Mat) Set(i, j int, b bool) { m.r[i].Set(j, b) }

// Row returns row i. The returned vector aliases the matrix storage.
func (m Mat) Row(i int) Vec { return m.r[i] }

// Col returns column j as a new (non-aliasing) vector of length Rows().
func (m Mat) Col(j int) Vec {
	v := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.r[i].Get(j) {
			v.Set(i, true)
		}
	}
	return v
}

// SetCol overwrites column j with v (length must equal Rows()).
func (m Mat) SetCol(j int, v Vec) {
	if v.Len() != m.rows {
		panic(fmt.Sprintf("gf2: SetCol length %d, want %d", v.Len(), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.r[i].Set(j, v.Get(i))
	}
}

// Clone returns a deep copy of m.
func (m Mat) Clone() Mat {
	c := Mat{rows: m.rows, cols: m.cols, r: make([]Vec, m.rows)}
	for i, r := range m.r {
		c.r[i] = r.Clone()
	}
	return c
}

// Equal reports whether m and x have identical shapes and entries.
func (m Mat) Equal(x Mat) bool {
	if m.rows != x.rows || m.cols != x.cols {
		return false
	}
	for i := range m.r {
		if !m.r[i].Equal(x.r[i]) {
			return false
		}
	}
	return true
}

// MulVec returns m * v where v is a column vector of length Cols().
func (m Mat) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: MulVec length %d, want %d", v.Len(), m.cols))
	}
	out := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.r[i].Dot(v) == 1 {
			out.Set(i, true)
		}
	}
	return out
}

// VecMul returns v^T * m (a row vector times the matrix), i.e. the XOR of the
// rows of m selected by the set bits of v. v must have length Rows().
func (m Mat) VecMul(v Vec) Vec {
	if v.Len() != m.rows {
		panic(fmt.Sprintf("gf2: VecMul length %d, want %d", v.Len(), m.rows))
	}
	out := NewVec(m.cols)
	for _, i := range v.Support() {
		out.XorInto(m.r[i])
	}
	return out
}

// Mul returns the matrix product m * x.
func (m Mat) Mul(x Mat) Mat {
	if m.cols != x.rows {
		panic(fmt.Sprintf("gf2: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, x.rows, x.cols))
	}
	out := NewMat(m.rows, x.cols)
	for i := 0; i < m.rows; i++ {
		out.r[i] = x.VecMul(m.r[i])
	}
	return out
}

// Transpose returns m^T.
func (m Mat) Transpose() Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.r[i]
		for _, j := range row.Support() {
			t.r[j].Set(i, true)
		}
	}
	return t
}

// HStack returns the block matrix [m | x]; row counts must match.
func (m Mat) HStack(x Mat) Mat {
	if m.rows != x.rows {
		panic(fmt.Sprintf("gf2: HStack row mismatch %d vs %d", m.rows, x.rows))
	}
	out := NewMat(m.rows, m.cols+x.cols)
	for i := 0; i < m.rows; i++ {
		out.r[i] = m.r[i].Concat(x.r[i])
	}
	return out
}

// SubMatrix returns a copy of rows [r0,r1) and columns [c0,c1).
func (m Mat) SubMatrix(r0, r1, c0, c1 int) Mat {
	if r0 < 0 || r1 > m.rows || r0 > r1 || c0 < 0 || c1 > m.cols || c0 > c1 {
		panic("gf2: SubMatrix bounds out of range")
	}
	out := NewMat(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		out.r[i-r0] = m.r[i].Slice(c0, c1)
	}
	return out
}

// String renders the matrix with one row of bits per line.
func (m Mat) String() string {
	var sb strings.Builder
	for i, r := range m.r {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
