package gf2

import (
	"fmt"
	"math/bits"
	"sync"
)

// Batch is a bitsliced batch of up to 64 equal-length bit vectors, the
// word-wide formulation of the simulation hot path (DESIGN.md §11). Where a
// Vec packs the *bits of one vector* into words, a Batch transposes: row r is
// a single uint64 whose bit j holds bit r of lane (vector) j. Encoding,
// syndrome computation and correction over 64 independent codewords then
// become one XOR/AND per bit position instead of 64.
//
// Lanes beyond Lanes() ("inactive" lanes of a ragged final batch) must be
// kept zero in every row; LaneMask masks them out of popcounts. A Batch is a
// view over caller-owned storage — see Slab for the reuse discipline.
type Batch struct {
	bits  int
	lanes int
	w     []uint64 // len == bits; row-indexed
}

// NewBatch returns an all-zero batch of the given shape with fresh storage.
func NewBatch(bitsN, lanes int) Batch {
	checkShape(bitsN, lanes)
	return Batch{bits: bitsN, lanes: lanes, w: make([]uint64, bitsN)}
}

func checkShape(bitsN, lanes int) {
	if bitsN < 0 {
		panic(fmt.Sprintf("gf2: negative batch bit count %d", bitsN))
	}
	if lanes < 1 || lanes > wordBits {
		panic(fmt.Sprintf("gf2: batch lane count %d out of range [1,64]", lanes))
	}
}

// Bits returns the per-lane vector length (the number of rows).
func (b Batch) Bits() int { return b.bits }

// Lanes returns the number of active lanes (1..64).
func (b Batch) Lanes() int { return b.lanes }

// LaneMask returns a word with one bit set per active lane.
func (b Batch) LaneMask() uint64 {
	if b.lanes == wordBits {
		return ^uint64(0)
	}
	return 1<<uint(b.lanes) - 1
}

// Words returns the backing row words. The slice aliases the batch: writes
// through it mutate the batch, and callers must keep inactive-lane bits zero.
// This is the hot-path accessor; Get/Set exist for tests and glue.
func (b Batch) Words() []uint64 { return b.w }

// Row returns row r (bit position r across all lanes).
func (b Batch) Row(r int) uint64 { return b.w[r] }

// Get reports whether bit r of lane j is set.
func (b Batch) Get(r, j int) bool {
	b.checkAt(r, j)
	return b.w[r]>>uint(j)&1 == 1
}

// Set sets bit r of lane j.
func (b Batch) Set(r, j int, bit bool) {
	b.checkAt(r, j)
	if bit {
		b.w[r] |= 1 << uint(j)
	} else {
		b.w[r] &^= 1 << uint(j)
	}
}

func (b Batch) checkAt(r, j int) {
	if r < 0 || r >= b.bits {
		panic(fmt.Sprintf("gf2: batch row %d out of range [0,%d)", r, b.bits))
	}
	if j < 0 || j >= b.lanes {
		panic(fmt.Sprintf("gf2: batch lane %d out of range [0,%d)", j, b.lanes))
	}
}

// ZeroRows clears every row.
func (b Batch) ZeroRows() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// PackVec scatters scalar vector v into lane j. v.Len() must equal Bits().
func (b Batch) PackVec(j int, v Vec) {
	if v.Len() != b.bits {
		panic(fmt.Sprintf("gf2: packing length-%d vector into %d-bit batch", v.Len(), b.bits))
	}
	bit := uint64(1) << uint(j)
	for r := 0; r < b.bits; r++ {
		if v.w[r/wordBits]>>(uint(r)%wordBits)&1 == 1 {
			b.w[r] |= bit
		} else {
			b.w[r] &^= bit
		}
	}
}

// UnpackLane gathers lane j into a fresh scalar vector of length Bits().
func (b Batch) UnpackLane(j int) Vec {
	v := NewVec(b.bits)
	b.UnpackLaneInto(j, v)
	return v
}

// UnpackLaneInto gathers lane j into dst, which must have length Bits().
func (b Batch) UnpackLaneInto(j int, dst Vec) {
	if dst.Len() != b.bits {
		panic(fmt.Sprintf("gf2: unpacking %d-bit batch lane into length-%d vector", b.bits, dst.Len()))
	}
	for i := range dst.w {
		dst.w[i] = 0
	}
	for r := 0; r < b.bits; r++ {
		if b.w[r]>>uint(j)&1 == 1 {
			dst.w[r/wordBits] |= 1 << (uint(r) % wordBits)
		}
	}
}

// PopRow returns the number of active lanes whose bit r is set.
func (b Batch) PopRow(r int) int {
	return bits.OnesCount64(b.w[r] & b.LaneMask())
}

// Slab is a bump allocator for batch rows: one backing array serves every
// Batch a simulation step needs, so per-batch work allocates nothing. The
// ownership rule (DESIGN.md §11) is strict: Alloc returns views into the
// slab, Reset reclaims them all at once, and no view may be used after the
// Reset that reclaimed it. Slabs are not safe for concurrent use; keep one
// per worker (or pool them with sync.Pool).
type Slab struct {
	buf []uint64
	off int
}

// Alloc carves an all-zero bits×lanes Batch out of the slab, growing the
// backing array if needed. Growth never invalidates earlier views: they keep
// their slice headers into the previous backing array.
func (s *Slab) Alloc(bitsN, lanes int) Batch {
	checkShape(bitsN, lanes)
	return Batch{bits: bitsN, lanes: lanes, w: s.Uint64s(bitsN)}
}

// Uint64s carves an all-zero word slice out of the slab — the untyped form
// of Alloc, for scratch arrays that are not batch rows (column masks, bit
// planes, subset enumerations). The returned slice is capacity-clipped, so
// appends within its length never bleed into later carvings; the Reset
// ownership rule applies exactly as for Alloc.
func (s *Slab) Uint64s(n int) []uint64 {
	if n < 0 {
		panic(fmt.Sprintf("gf2: negative slab carving %d", n))
	}
	if s.off+n > len(s.buf) {
		size := 2 * len(s.buf)
		if size < n+s.off {
			size = n + s.off
		}
		if size < 256 {
			size = 256
		}
		s.buf = make([]uint64, size)
		s.off = 0
	}
	w := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	for i := range w {
		w[i] = 0
	}
	return w
}

// Reset reclaims every outstanding view at once. Views handed out before the
// Reset must not be used afterwards: the next Alloc reuses their rows.
func (s *Slab) Reset() { s.off = 0 }

// slabPool recycles Slabs across engine batches and profile computations:
// steady-state work borrows a warm backing array instead of growing a fresh
// one, so per-batch collection stops allocating. Slabs are not safe for
// concurrent use — the pool hands each borrower exclusive ownership until
// PutSlab.
var slabPool = sync.Pool{New: func() any { return new(Slab) }}

// GetSlab borrows a reset Slab from the package pool.
func GetSlab() *Slab {
	s := slabPool.Get().(*Slab)
	s.Reset()
	return s
}

// PutSlab returns a Slab to the pool. The caller must not use the slab, or
// any view carved from it, after the call.
func PutSlab(s *Slab) { slabPool.Put(s) }
