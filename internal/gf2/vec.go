// Package gf2 implements linear algebra over GF(2), the two-element field.
//
// Vectors and matrices are bit-packed (64 bits per machine word), which keeps
// the hot paths of ECC encoding/decoding and miscorrection-profile analysis
// cheap: XOR of two vectors is a handful of word operations, and a dot
// product is an AND followed by a population-count parity.
//
// The package is the foundation for internal/ecc (linear block codes) and
// internal/core (BEER's parity-check matrix inference).
//
// Entry points: NewVec/ParseVec and NewMat/MatFromRows construct values;
// Vec.String renders the bit-string form that flows through ecc's text
// serialization, the store's export format and the profile's canonical
// hash, so its rendering ("0"/"1", index 0 first) is effectively a wire
// format and must stay stable. Vectors and matrices are mutable; functions
// here return fresh values and never alias their inputs unless documented
// (Clone exists for defensive copies).
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a bit vector over GF(2) with a fixed length.
// The zero value is an empty (length-0) vector.
type Vec struct {
	n int
	w []uint64
}

const wordBits = 64

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// NewVec returns an all-zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("gf2: negative vector length %d", n))
	}
	return Vec{n: n, w: make([]uint64, wordsFor(n))}
}

// VecFromBits builds a vector from a slice of 0/1 values.
func VecFromBits(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromSupport builds a length-n vector whose set bits are the given indices.
func VecFromSupport(n int, support ...int) Vec {
	v := NewVec(n)
	for _, i := range support {
		v.Set(i, true)
	}
	return v
}

// VecFromUint packs the low n bits of x (bit 0 = index 0) into a vector.
func VecFromUint(n int, x uint64) Vec {
	if n > wordBits {
		panic("gf2: VecFromUint supports at most 64 bits")
	}
	v := NewVec(n)
	if n == 0 {
		return v
	}
	mask := ^uint64(0)
	if n < wordBits {
		mask = (1 << uint(n)) - 1
	}
	v.w[0] = x & mask
	return v
}

// Len returns the vector length in bits.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	v.check(i)
	return v.w[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Bit returns bit i as 0 or 1.
func (v Vec) Bit(i int) int {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set sets bit i to b.
func (v Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.w[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.w[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	v.check(i)
	v.w[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := Vec{n: v.n, w: make([]uint64, len(v.w))}
	copy(c.w, v.w)
	return c
}

// Zero reports whether every bit is clear.
func (v Vec) Zero() bool {
	for _, w := range v.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Weight returns the Hamming weight (number of set bits).
func (v Vec) Weight() int {
	w := 0
	for _, x := range v.w {
		w += bits.OnesCount64(x)
	}
	return w
}

// Equal reports whether v and u have the same length and bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// XorInto sets v = v XOR u. Lengths must match.
func (v Vec) XorInto(u Vec) {
	v.sameLen(u)
	for i := range v.w {
		v.w[i] ^= u.w[i]
	}
}

// Xor returns v XOR u as a new vector.
func (v Vec) Xor(u Vec) Vec {
	c := v.Clone()
	c.XorInto(u)
	return c
}

// AndInto sets v = v AND u. Lengths must match.
func (v Vec) AndInto(u Vec) {
	v.sameLen(u)
	for i := range v.w {
		v.w[i] &= u.w[i]
	}
}

// And returns v AND u as a new vector.
func (v Vec) And(u Vec) Vec {
	c := v.Clone()
	c.AndInto(u)
	return c
}

// SubsetOf reports whether the support of v is contained in the support of u,
// i.e. every set bit of v is also set in u. This is the 1-CHARGED
// miscorrection condition from the BEER analysis (DESIGN.md §4).
func (v Vec) SubsetOf(u Vec) bool {
	v.sameLen(u)
	for i := range v.w {
		if v.w[i]&^u.w[i] != 0 {
			return false
		}
	}
	return true
}

// Dot returns the GF(2) inner product of v and u (parity of AND).
func (v Vec) Dot(u Vec) int {
	v.sameLen(u)
	var acc uint64
	for i := range v.w {
		acc ^= v.w[i] & u.w[i]
	}
	return bits.OnesCount64(acc) & 1
}

// Support returns the indices of all set bits in increasing order.
func (v Vec) Support() []int {
	var s []int
	for wi, w := range v.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			s = append(s, wi*wordBits+b)
			w &= w - 1
		}
	}
	return s
}

// FirstSet returns the index of the lowest set bit, or -1 if v is zero.
func (v Vec) FirstSet() int {
	for wi, w := range v.w {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Slice returns a copy of bits [lo, hi) as a new vector of length hi-lo.
func (v Vec) Slice(lo, hi int) Vec {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("gf2: bad slice [%d,%d) of length-%d vector", lo, hi, v.n))
	}
	out := NewVec(hi - lo)
	for i := lo; i < hi; i++ {
		if v.Get(i) {
			out.Set(i-lo, true)
		}
	}
	return out
}

// Concat returns the concatenation v || u.
func (v Vec) Concat(u Vec) Vec {
	out := NewVec(v.n + u.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			out.Set(i, true)
		}
	}
	for i := 0; i < u.n; i++ {
		if u.Get(i) {
			out.Set(v.n+i, true)
		}
	}
	return out
}

// Words returns the backing words of v: bit i lives at word i/64, bit i%64.
// The slice aliases v — writes through it mutate the vector. Callers must
// keep bits at positions >= Len() zero; every other method relies on that.
// This is the hot-path escape hatch for the bitsliced batch code; prefer
// Get/Set elsewhere.
func (v Vec) Words() []uint64 { return v.w }

// CopyFrom overwrites v with the bits of u. Lengths must match.
func (v Vec) CopyFrom(u Vec) {
	v.sameLen(u)
	copy(v.w, u.w)
}

// Uint64 returns the vector packed into a uint64 (bit 0 = index 0).
// Panics if the vector is longer than 64 bits.
func (v Vec) Uint64() uint64 {
	if v.n > wordBits {
		panic(fmt.Sprintf("gf2: Uint64 on length-%d vector", v.n))
	}
	if len(v.w) == 0 {
		return 0
	}
	return v.w[0]
}

// String renders the vector as a bit string, index 0 leftmost, e.g. "1011".
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseVec parses a bit string produced by Vec.String ("0"/"1" characters).
func ParseVec(s string) (Vec, error) {
	v := NewVec(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vec{}, fmt.Errorf("gf2: invalid bit character %q at %d", s[i], i)
		}
	}
	return v, nil
}

func (v Vec) sameLen(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, u.n))
	}
}
