package gf2

import (
	"math/rand/v2"
	"testing"
)

func randVec(n int, rng *rand.Rand) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.IntN(2) == 1)
	}
	return v
}

func TestBatchPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, shape := range []struct{ bits, lanes int }{
		{1, 1}, {7, 3}, {39, 64}, {64, 64}, {130, 17}, {64, 1},
	} {
		b := NewBatch(shape.bits, shape.lanes)
		want := make([]Vec, shape.lanes)
		for j := range want {
			want[j] = randVec(shape.bits, rng)
			b.PackVec(j, want[j])
		}
		for j := range want {
			if got := b.UnpackLane(j); !got.Equal(want[j]) {
				t.Fatalf("shape %dx%d lane %d: got %s want %s", shape.bits, shape.lanes, j, got, want[j])
			}
		}
		// Transposition invariant: row r bit j == lane j bit r.
		for r := 0; r < shape.bits; r++ {
			for j := 0; j < shape.lanes; j++ {
				if b.Get(r, j) != want[j].Get(r) {
					t.Fatalf("shape %dx%d: Get(%d,%d) mismatch", shape.bits, shape.lanes, r, j)
				}
			}
		}
	}
}

func TestBatchLaneMask(t *testing.T) {
	if got := NewBatch(4, 64).LaneMask(); got != ^uint64(0) {
		t.Fatalf("full mask: got %#x", got)
	}
	if got := NewBatch(4, 3).LaneMask(); got != 0b111 {
		t.Fatalf("3-lane mask: got %#x", got)
	}
}

func TestBatchPopRow(t *testing.T) {
	b := NewBatch(2, 5)
	b.Set(0, 1, true)
	b.Set(0, 4, true)
	b.Set(1, 0, true)
	if got := b.PopRow(0); got != 2 {
		t.Fatalf("row 0 popcount: got %d want 2", got)
	}
	if got := b.PopRow(1); got != 1 {
		t.Fatalf("row 1 popcount: got %d want 1", got)
	}
}

func TestBatchSetClears(t *testing.T) {
	b := NewBatch(1, 2)
	b.Set(0, 1, true)
	b.Set(0, 1, false)
	if b.Get(0, 1) {
		t.Fatal("Set(false) did not clear the bit")
	}
}

func TestSlabAllocZeroesReusedRows(t *testing.T) {
	var s Slab
	a := s.Alloc(10, 8)
	for r := 0; r < 10; r++ {
		a.Words()[r] = ^uint64(0)
	}
	s.Reset()
	b := s.Alloc(10, 8)
	for r := 0; r < 10; r++ {
		if b.Row(r) != 0 {
			t.Fatalf("row %d not zeroed after slab reuse", r)
		}
	}
}

func TestSlabGrowthKeepsOldViews(t *testing.T) {
	var s Slab
	a := s.Alloc(4, 2)
	a.Set(0, 1, true)
	// Force growth past the initial chunk.
	for i := 0; i < 8; i++ {
		s.Alloc(300, 64)
	}
	if !a.Get(0, 1) {
		t.Fatal("growth invalidated an earlier view")
	}
}

func TestSlabAllocDoesNotAllocateAfterWarmup(t *testing.T) {
	var s Slab
	s.Alloc(512, 64)
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		b := s.Alloc(512, 64)
		_ = b.Row(0)
	})
	if allocs != 0 {
		t.Fatalf("warm slab alloc allocated %v times per run", allocs)
	}
}

func TestVecWordsAlias(t *testing.T) {
	v := NewVec(70)
	v.Words()[1] = 1 // bit 64
	if !v.Get(64) {
		t.Fatal("Words() write not visible through Get")
	}
	u := NewVec(70)
	u.Set(3, true)
	v.CopyFrom(u)
	if !v.Equal(u) {
		t.Fatal("CopyFrom mismatch")
	}
}
