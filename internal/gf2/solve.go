package gf2

// This file implements Gaussian elimination and the derived operations (rank,
// reduced row-echelon form, linear solves, null spaces). They back the ECC
// package's generator/parity-check manipulation and BEEP's Equation-4 solve
// for pre-correction codewords.

// RREF returns the reduced row-echelon form of m together with the pivot
// column indices (one per nonzero row of the result, in increasing order).
func (m Mat) RREF() (Mat, []int) {
	a := m.Clone()
	var pivots []int
	row := 0
	for col := 0; col < a.cols && row < a.rows; col++ {
		// Find a pivot at or below row.
		sel := -1
		for i := row; i < a.rows; i++ {
			if a.r[i].Get(col) {
				sel = i
				break
			}
		}
		if sel == -1 {
			continue
		}
		a.r[row], a.r[sel] = a.r[sel], a.r[row]
		// Eliminate the column everywhere else.
		for i := 0; i < a.rows; i++ {
			if i != row && a.r[i].Get(col) {
				a.r[i].XorInto(a.r[row])
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return a, pivots
}

// Rank returns the rank of m over GF(2).
func (m Mat) Rank() int {
	_, pivots := m.RREF()
	return len(pivots)
}

// Solve finds one solution x of m * x = b, reporting ok=false when the system
// is inconsistent. When the system is underdetermined the free variables are
// set to zero.
func (m Mat) Solve(b Vec) (x Vec, ok bool) {
	if b.Len() != m.rows {
		panic("gf2: Solve dimension mismatch")
	}
	aug := m.HStack(MatFromRows(b).Transpose())
	r, pivots := aug.RREF()
	x = NewVec(m.cols)
	for i, p := range pivots {
		if p == m.cols {
			return Vec{}, false // pivot in the augmented column: inconsistent
		}
		if r.r[i].Get(m.cols) {
			x.Set(p, true)
		}
	}
	return x, true
}

// NullSpace returns a basis of the right null space of m (vectors x with
// m * x = 0). The returned slice is empty when the kernel is trivial.
func (m Mat) NullSpace() []Vec {
	r, pivots := m.RREF()
	isPivot := make([]bool, m.cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []Vec
	for col := 0; col < m.cols; col++ {
		if isPivot[col] {
			continue
		}
		v := NewVec(m.cols)
		v.Set(col, true)
		for i, p := range pivots {
			if r.r[i].Get(col) {
				v.Set(p, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Inverse returns the inverse of a square matrix, reporting ok=false when m
// is singular.
func (m Mat) Inverse() (Mat, bool) {
	if m.rows != m.cols {
		panic("gf2: Inverse of non-square matrix")
	}
	aug := m.HStack(Identity(m.rows))
	r, pivots := aug.RREF()
	if len(pivots) != m.rows {
		return Mat{}, false
	}
	for i, p := range pivots {
		if p != i {
			return Mat{}, false // pivot escaped the left block: singular
		}
	}
	return r.SubMatrix(0, m.rows, m.cols, 2*m.cols), true
}
