package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/ecc"
)

// TestNoisyMatchesExactOnCleanProfile is the zero-noise differential: on
// uncorrupted profiles the noisy path must return bit-identical candidate
// sets to the exact incremental engine, drop nothing, and report
// confidence 1.0 on unique recoveries — across the unique, multi-candidate
// and UNSAT cases.
func TestNoisyMatchesExactOnCleanProfile(t *testing.T) {
	ctx := context.Background()
	for _, k := range []int{4, 6, 8} {
		for seed := uint64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(k)))
			code := ecc.RandomHamming(k, rng)
			opts := SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: -1}
			noisyOpts := opts
			noisyOpts.Noisy = &NoisyOptions{MaxDrop: -1}

			// Unique / fully determined.
			full := ExactProfile(code, Set12.Patterns(k))
			exact, err := SolveIncremental(ctx, full, opts)
			if err != nil {
				t.Fatal(err)
			}
			noisy, err := SolveNoisy(ctx, full, noisyOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCodeSet(t, exact.Codes, noisy.Codes) || exact.Exhausted != noisy.Exhausted || exact.Unique != noisy.Unique {
				t.Fatalf("k=%d seed=%d full profile: exact %d codes (unique=%v) vs noisy %d codes (unique=%v)",
					k, seed, len(exact.Codes), exact.Unique, len(noisy.Codes), noisy.Unique)
			}
			if noisy.Noise == nil {
				t.Fatal("noisy solve returned no Noise block")
			}
			if noisy.Noise.Dropped != 0 || len(noisy.Noise.DroppedEntries) != 0 {
				t.Fatalf("k=%d seed=%d: clean profile dropped %d entries", k, seed, noisy.Noise.Dropped)
			}
			if noisy.Unique && noisy.Noise.Confidence != 1.0 {
				t.Fatalf("k=%d seed=%d: unique clean recovery has confidence %v, want exactly 1.0",
					k, seed, noisy.Noise.Confidence)
			}
			if noisy.Noise.Margin != 1.0 {
				t.Fatalf("k=%d seed=%d: clean recovery margin %v, want 1.0 (uniform support, nothing dropped)",
					k, seed, noisy.Noise.Margin)
			}

			// Multi-candidate: 1-CHARGED profiles alone typically leave
			// several consistent functions; both engines must enumerate the
			// same set.
			part := ExactProfile(code, Set1.Patterns(k))
			exact1, err := SolveIncremental(ctx, part, opts)
			if err != nil {
				t.Fatal(err)
			}
			noisy1, err := SolveNoisy(ctx, part, noisyOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCodeSet(t, exact1.Codes, noisy1.Codes) || exact1.Exhausted != noisy1.Exhausted {
				t.Fatalf("k=%d seed=%d 1-CHARGED: exact %d codes vs noisy %d codes",
					k, seed, len(exact1.Codes), len(noisy1.Codes))
			}
			if n := len(noisy1.Codes); n > 1 {
				want := 1.0 / float64(n)
				if noisy1.Noise.Confidence != want {
					t.Fatalf("k=%d seed=%d: %d-candidate confidence %v, want %v",
						k, seed, n, noisy1.Noise.Confidence, want)
				}
			}

			// UNSAT within budget 0: a contradictory profile with MaxDrop 0
			// must report clean UNSAT and drop nothing.
			bad := &Profile{K: k}
			bad.Entries = append(bad.Entries, full.Entries...)
			flip := full.Entries[len(full.Entries)-1]
			flipped := flip.Possible.Clone()
			for b := 0; b < k; b++ {
				if !flip.Pattern.Has(b) {
					flipped.Flip(b)
					break
				}
			}
			bad.Entries = append(bad.Entries, Entry{Pattern: flip.Pattern, Possible: flipped})
			strict := opts
			strict.Noisy = &NoisyOptions{MaxDrop: 0}
			noisyU, err := SolveNoisy(ctx, bad, strict)
			if err != nil {
				t.Fatal(err)
			}
			if len(noisyU.Codes) != 0 || !noisyU.Exhausted {
				t.Fatalf("k=%d seed=%d contradictory profile at MaxDrop=0: %d codes (exhausted=%v)",
					k, seed, len(noisyU.Codes), noisyU.Exhausted)
			}
			if noisyU.Noise.Dropped != 0 {
				t.Fatalf("k=%d seed=%d: MaxDrop=0 dropped %d entries", k, seed, noisyU.Noise.Dropped)
			}
		}
	}
}

// injectFalsePositives returns a copy of prof with one truly-impossible
// bit flipped to "possible" in each of n distinct entries, plus the
// corrupted entry indexes (ascending).
func injectFalsePositives(t *testing.T, prof *Profile, n int, rng *rand.Rand) (*Profile, []int) {
	t.Helper()
	out := &Profile{K: prof.K, Entries: make([]Entry, len(prof.Entries))}
	for i, e := range prof.Entries {
		out.Entries[i] = Entry{Pattern: e.Pattern, Possible: e.Possible.Clone(), Anti: e.Anti}
	}
	corrupted := map[int]bool{}
	for len(corrupted) < n {
		i := rng.IntN(len(out.Entries))
		if corrupted[i] {
			continue
		}
		e := out.Entries[i]
		flippable := make([]int, 0, prof.K)
		for b := 0; b < prof.K; b++ {
			if !e.Pattern.Has(b) && !e.Possible.Get(b) {
				flippable = append(flippable, b)
			}
		}
		if len(flippable) == 0 {
			continue
		}
		e.Possible.Set(flippable[rng.IntN(len(flippable))], true)
		corrupted[i] = true
	}
	idx := make([]int, 0, n)
	for i := range out.Entries {
		if corrupted[i] {
			idx = append(idx, i)
		}
	}
	return out, idx
}

// TestNoisyDropKRecoversFromFalsePositives is the acceptance property on
// the paper's full-length Hamming(71,64) configuration: inject PBEM-style
// false positives into the exact 1-CHARGED profile, score the corrupted
// entries with low observation support, and require the drop-k relaxation
// to retract exactly the corrupted entries (never a true one), recover the
// ground-truth code, and report the dropped count and support margin.
func TestNoisyDropKRecoversFromFalsePositives(t *testing.T) {
	ctx := context.Background()
	const k = 64
	rng := rand.New(rand.NewPCG(71, 64))
	code := ecc.RandomHamming(k, rng)
	if n := k + code.ParityBits(); n != 71 {
		t.Fatalf("expected a Hamming(71,64) code, got n=%d", n)
	}
	prof := ExactProfile(code, Set1.Patterns(k))

	const fps = 3
	corruptedProf, corrupted := injectFalsePositives(t, prof, fps, rng)
	// Observation support as SupportFromCounts would score it: the
	// injected bits barely cleared the threshold, so their entries rank
	// far below the clean ones.
	support := make([]float64, len(corruptedProf.Entries))
	for i := range support {
		support[i] = 1.0
	}
	for _, i := range corrupted {
		support[i] = 0.3
	}

	opts := SolveOptions{
		ParityBits:   code.ParityBits(),
		MaxSolutions: -1, // dropping entries under-determines the code; enumerate all survivors
		Noisy:        &NoisyOptions{MaxDrop: 2 * fps, Support: support},
	}
	res, err := SolveNoisy(ctx, corruptedProf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codes) == 0 {
		t.Fatalf("no code recovered (dropped %d of %d allowed)", res.Noise.Dropped, 2*fps)
	}
	found := false
	for _, c := range res.Codes {
		if c.EquivalentTo(code) {
			found = true
		}
	}
	if !found {
		t.Fatalf("ground-truth code not among the %d recovered candidates", len(res.Codes))
	}
	info := res.Noise
	if info == nil {
		t.Fatal("noisy solve returned no Noise block")
	}
	if info.Dropped == 0 {
		t.Fatal("false positives present but nothing was dropped")
	}
	isCorrupted := map[int]bool{}
	for _, i := range corrupted {
		isCorrupted[i] = true
	}
	for _, i := range info.DroppedEntries {
		if !isCorrupted[i] {
			t.Fatalf("dropped true entry %d (corrupted set %v, dropped %v)", i, corrupted, info.DroppedEntries)
		}
	}
	if info.Retained+info.Dropped != info.Total || info.Total != len(corruptedProf.Entries) {
		t.Fatalf("inconsistent NoiseInfo: %+v", info)
	}
	if info.Confidence <= 0 || info.Confidence >= 1 {
		t.Fatalf("confidence %v, want in (0,1) after drops", info.Confidence)
	}
	// Margin: retained entries all have support 1.0, dropped ones 0.3.
	if info.Margin != 1.0-0.3 {
		t.Fatalf("margin %v, want 0.7", info.Margin)
	}
}

// TestNoisyNeverDropsAtZeroBudget: with MaxDrop=0 a corrupted profile must
// yield clean UNSAT — zero codes, zero drops — never a relaxed answer.
func TestNoisyNeverDropsAtZeroBudget(t *testing.T) {
	ctx := context.Background()
	const k = 16
	rng := rand.New(rand.NewPCG(2, 9))
	code := ecc.RandomHamming(k, rng)
	prof := ExactProfile(code, Set1.Patterns(k))
	corruptedProf, _ := injectFalsePositives(t, prof, 2, rng)

	res, err := SolveNoisy(ctx, corruptedProf, SolveOptions{
		ParityBits: code.ParityBits(),
		Noisy:      &NoisyOptions{MaxDrop: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codes) != 0 {
		t.Fatalf("MaxDrop=0 on a corrupted profile returned %d codes, want clean UNSAT", len(res.Codes))
	}
	if res.Noise.Dropped != 0 || len(res.Noise.DroppedEntries) != 0 {
		t.Fatalf("MaxDrop=0 dropped entries: %+v", res.Noise)
	}
	if res.Noise.Confidence != 0 {
		t.Fatalf("confidence %v on a failed recovery, want 0", res.Noise.Confidence)
	}
}
