package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecc"
)

// ExampleProfile_Hash demonstrates the canonical content address of a
// miscorrection profile: the hash ignores collection order and duplicate
// observations (two sweeps of the same chip address the same registry
// entry), while any change to the observed information — here, one extra
// susceptible bit — produces a different address.
func ExampleProfile_Hash() {
	code := ecc.Hamming74()
	profile := core.ExactProfile(code, core.OneCharged(4))

	// Reversing entry order does not change the content address...
	reversed := &core.Profile{K: profile.K}
	for i := len(profile.Entries) - 1; i >= 0; i-- {
		reversed.Entries = append(reversed.Entries, profile.Entries[i])
	}
	fmt.Println("order-invariant:", profile.Hash() == reversed.Hash())

	// ...and neither does observing everything twice.
	fmt.Println("duplicate-invariant:", profile.Hash() == profile.Append(profile).Hash())

	// Different information means a different address.
	mutated := core.ExactProfile(code, core.OneCharged(4))
	mutated.Entries[1].Possible.Set(2, true)
	fmt.Println("sensitive to content:", profile.Hash() != mutated.Hash())
	// Output:
	// order-invariant: true
	// duplicate-invariant: true
	// sensitive to content: true
}
