package core

import (
	"fmt"
	"strings"
)

// Coverage summarizes the sampling density behind a Counts collection and
// flags observations that sit near the threshold filter's decision boundary.
// On a real chip (paper §5.2) the main failure mode is *missing* a possible
// miscorrection — a false "impossible" constraint that can make the SAT
// problem unsatisfiable or pick a wrong function — so experimenters need to
// know when more sampling is warranted before trusting a profile.
type Coverage struct {
	// Patterns is the number of patterns observed; WordsMin/WordsMax bound
	// the per-pattern word-read counts.
	Patterns           int
	WordsMin, WordsMax int64
	// PositiveBits counts (pattern, bit) pairs that pass the threshold;
	// ZeroBits counts pairs with no observations at all.
	PositiveBits, ZeroBits int
	// Marginal lists (pattern, bit) pairs whose counts are nonzero but
	// within a factor of two of the threshold — the observations most likely
	// to flip with more sampling.
	Marginal []MarginalObservation
}

// MarginalObservation identifies one near-threshold observation.
type MarginalObservation struct {
	Pattern Pattern
	Bit     int
	Count   int64
	Words   int64
}

// Coverage analyzes the counts against the same threshold parameters used by
// Threshold.
func (c *Counts) Coverage(minFraction float64, minCount int64) Coverage {
	cov := Coverage{Patterns: len(c.Entries), WordsMin: -1}
	for _, e := range c.Entries {
		if cov.WordsMin == -1 || e.Words < cov.WordsMin {
			cov.WordsMin = e.Words
		}
		if e.Words > cov.WordsMax {
			cov.WordsMax = e.Words
		}
		cut := float64(minCount)
		if f := minFraction * float64(e.Words); f > cut {
			cut = f
		}
		for b := 0; b < c.K; b++ {
			if e.Pattern.Has(b) {
				continue
			}
			n := e.Errors[b]
			switch {
			case n == 0:
				cov.ZeroBits++
			case float64(n) >= cut:
				cov.PositiveBits++
				if float64(n) < 2*cut {
					cov.Marginal = append(cov.Marginal, MarginalObservation{
						Pattern: e.Pattern, Bit: b, Count: n, Words: e.Words,
					})
				}
			default:
				// Below threshold but nonzero: also marginal (possibly a
				// real miscorrection that needs more samples, possibly
				// transient noise).
				cov.Marginal = append(cov.Marginal, MarginalObservation{
					Pattern: e.Pattern, Bit: b, Count: n, Words: e.Words,
				})
			}
		}
	}
	if cov.WordsMin == -1 {
		cov.WordsMin = 0
	}
	return cov
}

// String renders a short human-readable report.
func (c Coverage) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "coverage: %d patterns, %d..%d word-reads each; %d positive, %d zero, %d marginal observations",
		c.Patterns, c.WordsMin, c.WordsMax, c.PositiveBits, c.ZeroBits, len(c.Marginal))
	if len(c.Marginal) > 0 {
		sb.WriteString("\nmarginal (consider more rounds/windows):")
		for i, m := range c.Marginal {
			if i == 8 {
				fmt.Fprintf(&sb, "\n  ... and %d more", len(c.Marginal)-8)
				break
			}
			fmt.Fprintf(&sb, "\n  %v bit %d: %d/%d", m.Pattern, m.Bit, m.Count, m.Words)
		}
	}
	return sb.String()
}
