package core

import (
	"context"
	"fmt"

	"repro/internal/ecc"
)

// DiscoverParityBits infers the number of parity-check bits r from a
// miscorrection profile by trying candidate widths in increasing order and
// returning the smallest r for which a consistent code exists, together with
// its solve result.
//
// The paper fixes r to the minimum for the discovered dataword length
// (consistent with all publicly known on-die ECC designs); this extension
// removes that assumption. The search is well-founded: a profile generated
// by an (k+r, k) code is always satisfiable at width r, and widths below the
// Hamming bound cannot host k distinct weight->=2 columns at all.
//
// maxExtra bounds how far above the minimum to search (0 means 2).
func DiscoverParityBits(ctx context.Context, profile *Profile, opts SolveOptions, maxExtra int) (int, *Result, error) {
	ctx = ctxOrBackground(ctx)
	if maxExtra <= 0 {
		maxExtra = 2
	}
	min := ecc.MinParityBits(profile.K)
	var lastErr error
	for r := min; r <= min+maxExtra; r++ {
		o := opts
		o.ParityBits = r
		res, err := Solve(ctx, profile, o)
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		if err != nil {
			lastErr = err
			continue
		}
		if len(res.Codes) > 0 {
			return r, res, nil
		}
	}
	if lastErr != nil {
		return 0, nil, fmt.Errorf("core: parity-width search failed: %w", lastErr)
	}
	return 0, nil, fmt.Errorf("core: no code of width %d..%d matches the profile", min, min+maxExtra)
}
