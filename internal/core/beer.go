package core

import (
	"context"
	"fmt"
	"time"
)

// RecoverOptions configures the end-to-end BEER pipeline.
type RecoverOptions struct {
	Layout  LayoutOptions
	Collect CollectOptions
	Solve   SolveOptions
	// PatternSet selects which test-pattern family to collect. The paper's
	// recommendation: 1-CHARGED suffices for full-length codes; add the
	// 2-CHARGED patterns for shortened codes (Set12).
	PatternSet PatternSet
	// ThresholdFraction and ThresholdMinCount configure the §5.2 filter.
	ThresholdFraction float64
	ThresholdMinCount int64
	// MaxRows caps how many true-cell rows are used for collection (0 = all).
	MaxRows int
	// UseAntiRows additionally collects inverted-pattern profiles from
	// anti-cell rows (extension; see Entry.Anti). On chips that mix cell
	// types this roughly doubles the usable capacity and adds row-parity
	// information the true-cell profile cannot express.
	UseAntiRows bool
	// UseLazySolver switches to the CEGAR-style SolveLazy (see lazy.go).
	UseLazySolver bool
	// UsePlanner replaces the exhaustive pattern sweep with the adaptive
	// planner (see Planner): collection proceeds in batches that feed a
	// persistent incremental solver, and stops the moment the ECC function
	// is uniquely determined or the Plan budget is hit. Incompatible with
	// UseAntiRows (the planner schedules true-cell patterns only).
	UsePlanner bool
	// Plan tunes the adaptive planner (batch size, pattern budget).
	Plan PlanOptions
	// SolveCache, when set, short-circuits the solve stage: a profile whose
	// canonical hash (Profile.Hash) was solved before replays the cached
	// Result with zero SAT invocations, and fresh successful solves are
	// offered back to the cache. See the SolveCache interface contract.
	// Noisy solves (Solve.Noisy) bypass the cache entirely: its key is the
	// profile alone, but a noisy result also depends on the drop budget and
	// support scores.
	SolveCache SolveCache
	// DiscoveryCache, when set, memoizes the §5.1 discovery stage across
	// recoveries of identically-configured chips: a chip exposing LayoutKey
	// (the LayoutKeyer extension) whose key plus discovery options were seen
	// before reuses the cached cell classes, row list and word layout without
	// touching the chip. Discovery's outcome is a pure function of the key,
	// but skipping its reads does advance the chip's read history differently,
	// so collected raw counts can differ from an uncached run at the VRT-noise
	// level — exactly the noise the §5.2 threshold filter rejects. Serving
	// paths opt in (beerd); CLIs and tests run uncached by default.
	DiscoveryCache DiscoveryCache
	// PerturbProfile, when set, transforms the thresholded profile before
	// the solve stage — the injection point for probabilistic observation
	// models (internal/noise installs per-bit Bernoulli FP-injection /
	// TP-dropout perturbation here). Applied by Recover and by the
	// multi-chip parallel recovery alike, after count merging and
	// thresholding; the planner path does not support it (the planner's
	// solver consumes entries as collected).
	PerturbProfile func(*Profile) *Profile
	// Progress, when set, receives pipeline events: stage entries and
	// completions, per-(round, window) collection passes, and solver
	// candidate counts. See ProgressFunc for the concurrency contract.
	Progress ProgressFunc
}

// DefaultRecoverOptions mirrors the paper's experimental configuration.
func DefaultRecoverOptions() RecoverOptions {
	return RecoverOptions{
		Layout:            DefaultLayoutOptions(),
		Collect:           DefaultCollectOptions(),
		PatternSet:        Set12,
		ThresholdFraction: 1e-4,
		ThresholdMinCount: 2,
	}
}

// Report is the full output of a BEER run against a chip.
type Report struct {
	// CellClasses is the discovered per-row cell layout (§5.1.1).
	CellClasses [][]CellClass
	// Layout is the discovered dataword layout (§5.1.2).
	Layout WordLayout
	// K is the discovered dataword length in bits.
	K int
	// Counts are the raw observations; Profile the thresholded profile.
	Counts  *Counts
	Profile *Profile
	// Result holds the recovered ECC function(s).
	Result *Result
	// Plan summarizes the adaptive planner's run (patterns used vs. the
	// full sweep); nil for exhaustive-sweep recoveries.
	Plan *PlanInfo
	// Timing of the three steps.
	DiscoveryTime, CollectTime, SolveTime time.Duration
}

// ChipObservations is one chip's outcome of the experimental front half of
// Recover: discovery (§5.1.1-5.1.2) plus raw profile collection (§5.1.3).
// Same-model chips' observations can be combined by merging Counts (and
// AntiCounts) before thresholding — the paper's §6.3 parallelization, which
// internal/parallel exploits.
type ChipObservations struct {
	CellClasses [][]CellClass
	Layout      WordLayout
	Counts      *Counts
	// AntiCounts holds inverted-pattern observations from anti-cell rows;
	// nil unless RecoverOptions.UseAntiRows is set and the chip has any.
	AntiCounts *Counts
	// Timing of the two experimental phases.
	DiscoveryTime, CollectTime time.Duration
}

// Observe runs discovery and raw profile collection against one chip — every
// experimental step of Recover, with thresholding and solving left to the
// caller. On error the returned observations carry whatever was gathered up
// to the failure point. Cancelling ctx returns ctx.Err() at the next
// collection-pass boundary.
func Observe(ctx context.Context, chip Chip, opts RecoverOptions) (*ChipObservations, error) {
	ctx = ctxOrBackground(ctx)
	obs := &ChipObservations{}

	start := time.Now()
	opts.Progress.emit(Event{Stage: StageDiscover})
	classes, rows, layout, err := DiscoverChip(chip, opts)
	obs.CellClasses = classes
	if err != nil {
		return obs, err
	}
	obs.Layout = layout
	obs.DiscoveryTime = time.Since(start)
	opts.Progress.emit(Event{Stage: StageDiscover, Done: true})

	start = time.Now()
	collectOpts := opts.Collect
	if collectOpts.Progress == nil {
		collectOpts.Progress = opts.Progress
	}
	// The offsetter keeps Pass monotonic across the main and anti sweeps:
	// the anti series continues the main one's pass numbering, with the
	// total revising upward when it begins.
	pc := NewCollectPassOffset(collectOpts.Progress)
	mainOpts := collectOpts
	mainOpts.Progress = pc.Next(mainOpts)
	patterns := opts.PatternSet.Patterns(layout.K())
	obs.Counts, err = CollectCounts(ctx, chip, rows, layout, patterns, mainOpts)
	if err != nil {
		return obs, fmt.Errorf("core: collect: %w", err)
	}
	if opts.UseAntiRows {
		anti := AntiRows(obs.CellClasses)
		if opts.MaxRows > 0 && len(anti) > opts.MaxRows {
			anti = anti[:opts.MaxRows]
		}
		if len(anti) > 0 {
			antiOpts := collectOpts
			antiOpts.Invert = true
			antiOpts.Progress = pc.Next(antiOpts)
			// Anti regions contribute the 1-CHARGED patterns only: those
			// carry the extra row-parity information, and the much smaller
			// pattern count keeps per-pattern sample density high enough
			// that no rare miscorrection goes unobserved (a missed
			// observation would add a false "impossible" constraint, §5.2).
			obs.AntiCounts, err = CollectCounts(ctx, chip, anti, layout, OneCharged(layout.K()), antiOpts)
			if err != nil {
				return obs, fmt.Errorf("core: anti-cell collect: %w", err)
			}
		}
	}
	obs.CollectTime = time.Since(start)
	opts.Progress.emit(Event{Stage: StageCollect, Done: true})
	return obs, nil
}

// DiscoverChip runs the §5.1.1-5.1.2 discovery steps against one chip:
// classify every row's cell polarity, then group region bytes into ECC
// datawords over the (MaxRows-capped) true-cell rows. Shared by Observe
// and the planned recovery paths (core and parallel), which need discovery
// decoupled from collection.
func DiscoverChip(chip Chip, opts RecoverOptions) (classes [][]CellClass, rows []RowRef, layout WordLayout, err error) {
	var cacheKey string
	if opts.DiscoveryCache != nil {
		if lk, ok := chip.(LayoutKeyer); ok {
			if ck := lk.LayoutKey(); ck != "" {
				cacheKey = fmt.Sprintf("%s|layout=%+v|maxrows=%d", ck, opts.Layout, opts.MaxRows)
				if d, ok := opts.DiscoveryCache.Lookup(cacheKey); ok {
					return d.CellClasses, d.Rows, d.Layout, nil
				}
			}
		}
	}
	classes = DiscoverCellLayout(chip, opts.Layout)
	rows = TrueRows(classes)
	if len(rows) == 0 {
		return classes, nil, WordLayout{}, fmt.Errorf("core: no true-cell rows discovered")
	}
	if opts.MaxRows > 0 && len(rows) > opts.MaxRows {
		rows = rows[:opts.MaxRows]
	}
	layout, err = DiscoverWordLayout(chip, rows, opts.Layout)
	if err != nil {
		return classes, rows, layout, fmt.Errorf("core: word layout: %w", err)
	}
	if cacheKey != "" {
		opts.DiscoveryCache.Store(cacheKey, &DiscoveredLayout{CellClasses: classes, Rows: rows, Layout: layout})
	}
	return classes, rows, layout, nil
}

// fill copies an observation's discovery and collection results into a report.
func (rep *Report) fill(obs *ChipObservations) {
	rep.CellClasses = obs.CellClasses
	rep.Layout = obs.Layout
	rep.K = obs.Layout.K()
	rep.Counts = obs.Counts
	rep.DiscoveryTime = obs.DiscoveryTime
	rep.CollectTime = obs.CollectTime
}

// Recover runs the complete BEER methodology against a chip: discover the
// cell and word layout, collect a miscorrection profile with crafted test
// patterns, filter it, and solve for the ECC function (paper §5).
//
// Cancelling ctx returns ctx.Err() within one collection pass (the refresh
// pauses dominate real experiments) or at the solver's next conflict/restart.
func Recover(ctx context.Context, chip Chip, opts RecoverOptions) (*Report, error) {
	ctx = ctxOrBackground(ctx)
	if opts.UsePlanner {
		return RecoverPlanned(ctx, chip, opts)
	}
	rep := &Report{}
	obs, err := Observe(ctx, chip, opts)
	rep.fill(obs)
	if err != nil {
		return rep, err
	}
	rep.Profile = obs.Counts.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount)
	if obs.AntiCounts != nil {
		rep.Profile = rep.Profile.Append(obs.AntiCounts.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount))
	}
	if opts.PerturbProfile != nil {
		rep.Profile = opts.PerturbProfile(rep.Profile)
	}

	start := time.Now()
	res, err := SolveStage(ctx, rep.Profile, opts)
	rep.SolveTime = time.Since(start)
	if err != nil {
		return rep, fmt.Errorf("core: solve: %w", err)
	}
	rep.Result = res
	opts.Progress.emit(Event{Stage: StageSolve, Candidates: len(res.Codes), Done: true})
	return rep, nil
}

// CollectPassOffset adapts a collect-progress stream to a run made of
// several CollectCounts sweeps (the anti-cell sweep after the main one,
// or the planner's batches): each sweep's pass counters restart at 1, so
// this wrapper offsets them by the passes of the sweeps already finished —
// Pass stays monotonic across the whole run and never exceeds Passes,
// whose total revises upward sweep by sweep.
type CollectPassOffset struct {
	base   ProgressFunc
	offset int
}

// NewCollectPassOffset wraps base (may be nil) for multi-sweep collection.
func NewCollectPassOffset(base ProgressFunc) *CollectPassOffset {
	return &CollectPassOffset{base: base}
}

// Next returns the progress callback for the next sweep (nil when no base
// consumer exists) and adds that sweep's pass count to the running offset.
// sweepOpts must be the CollectOptions the sweep will run with.
func (pc *CollectPassOffset) Next(sweepOpts CollectOptions) ProgressFunc {
	base := pc.base
	offset := pc.offset
	pc.offset += sweepPasses(sweepOpts)
	if base == nil {
		return nil
	}
	return func(ev Event) {
		ev.Pass += offset
		ev.Passes += offset
		base(ev)
	}
}

// RecoverPlanned is Recover with the adaptive planner in charge of
// collection (see Planner): discovery runs as usual, then collection
// proceeds batch by batch with each batch's constraints fed to a
// persistent incremental solver, stopping the moment the ECC function is
// uniquely determined (or the Plan budget is spent). Report.Plan records
// patterns used vs. the full sweep. The SolveCache, if any, receives the
// final (partial-profile) result; lookups are impossible because the
// profile is not known until collected.
func RecoverPlanned(ctx context.Context, chip Chip, opts RecoverOptions) (*Report, error) {
	ctx = ctxOrBackground(ctx)
	if opts.UseAntiRows {
		return nil, fmt.Errorf("core: the adaptive planner does not support anti-cell collection")
	}
	rep := &Report{}

	start := time.Now()
	opts.Progress.emit(Event{Stage: StageDiscover})
	classes, rows, layout, err := DiscoverChip(chip, opts)
	rep.CellClasses = classes
	if err != nil {
		return rep, err
	}
	rep.Layout = layout
	rep.K = layout.K()
	rep.DiscoveryTime = time.Since(start)
	opts.Progress.emit(Event{Stage: StageDiscover, Done: true})

	planner, err := NewPlanner(layout.K(), opts)
	if err != nil {
		return rep, err
	}
	collectOpts := opts.Collect
	if collectOpts.Progress == nil {
		collectOpts.Progress = opts.Progress
	}
	pc := NewCollectPassOffset(collectOpts.Progress)
	res, err := planner.Run(ctx, func(ctx context.Context, patterns []Pattern) (*Counts, error) {
		batchOpts := collectOpts
		batchOpts.Progress = pc.Next(batchOpts)
		return CollectCounts(ctx, chip, rows, layout, patterns, batchOpts)
	})
	rep.Counts = planner.Counts()
	rep.Profile = planner.Profile()
	info := planner.Info()
	rep.Plan = &info
	rep.CollectTime, rep.SolveTime = planner.Times()
	if err != nil {
		return rep, fmt.Errorf("core: planned recovery: %w", err)
	}
	opts.Progress.emit(Event{Stage: StageCollect, Done: true})
	rep.Result = res
	if opts.SolveCache != nil {
		opts.SolveCache.Store(rep.Profile, res)
	}
	opts.Progress.emit(Event{
		Stage: StageSolve, Candidates: len(res.Codes), Done: true,
		Conflicts: res.Stats.Conflicts, Propagations: res.Stats.Propagations,
		PatternsUsed: info.PatternsUsed, PatternsPlanned: info.PatternsFull,
	})
	return rep, nil
}

// SolveStage runs the solve stage of Recover: consult the SolveCache (if
// any) for a result under the profile's canonical hash, otherwise run the
// configured solver (eager or lazy per UseLazySolver) and offer the result
// back. A cache hit replays the original Result — including its recorded
// solver timings — without any SAT invocation; the surrounding Report's
// SolveTime then measures only the lookup. Shared by core.Recover and
// parallel.Engine.Recover so single-chip and multi-chip runs hit the same
// registry.
func SolveStage(ctx context.Context, profile *Profile, opts RecoverOptions) (*Result, error) {
	if opts.Solve.Noisy != nil {
		// Noisy solves neither consult nor feed the SolveCache: the cache
		// key is the profile hash alone, and a noisy result additionally
		// depends on the drop budget and entry-support scores.
		solveOpts := opts.Solve
		if solveOpts.Progress == nil {
			solveOpts.Progress = opts.Progress
		}
		return SolveNoisy(ctx, profile, solveOpts)
	}
	if opts.SolveCache != nil {
		if res, ok := opts.SolveCache.Lookup(profile); ok {
			opts.Progress.emit(Event{Stage: StageSolve, Candidates: len(res.Codes)})
			return res, nil
		}
	}
	solveOpts := opts.Solve
	if solveOpts.Progress == nil {
		solveOpts.Progress = opts.Progress
	}
	solve := Solve
	if opts.UseLazySolver {
		solve = SolveLazy
	}
	res, err := solve(ctx, profile, solveOpts)
	if err != nil {
		return nil, err
	}
	if opts.SolveCache != nil {
		opts.SolveCache.Store(profile, res)
	}
	return res, nil
}

// ExperimentRuntime implements the paper's §6.3 analytical runtime model:
// total experiment time is dominated by the refresh pauses, so it is the sum
// of the tested windows times the number of rounds; chip I/O (the paper
// measures 168 ms to read a 2 GiB LPDDR4-3200 chip) is negligible besides.
func ExperimentRuntime(opts CollectOptions) time.Duration {
	var total time.Duration
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	for _, w := range opts.Windows {
		total += w
	}
	return total * time.Duration(rounds)
}
