package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ecc"
)

// TestCanonicalOrderInvariant: the canonical serialization (and therefore the
// hash) must not depend on entry collection order.
func TestCanonicalOrderInvariant(t *testing.T) {
	code := ecc.Hamming74()
	prof := ExactProfile(code, append(OneCharged(4), TwoCharged(4)...))

	reversed := &Profile{K: prof.K}
	for i := len(prof.Entries) - 1; i >= 0; i-- {
		reversed.Entries = append(reversed.Entries, prof.Entries[i])
	}
	if prof.Hash() != reversed.Hash() {
		t.Fatalf("hash depends on entry order:\n%s\nvs\n%s", prof.Canonical(), reversed.Canonical())
	}
}

// TestCanonicalDedupesDuplicates: appending the same observations twice (e.g.
// two sweeps of the same chip) must not change the content address.
func TestCanonicalDedupesDuplicates(t *testing.T) {
	code := ecc.Hamming74()
	prof := ExactProfile(code, OneCharged(4))
	doubled := prof.Append(prof)
	if prof.Hash() != doubled.Hash() {
		t.Fatalf("duplicate entries changed the hash:\n%s\nvs\n%s", prof.Canonical(), doubled.Canonical())
	}
}

// TestCanonicalDistinguishes: different codes, polarities and k values must
// hash differently.
func TestCanonicalDistinguishes(t *testing.T) {
	a := ExactProfile(ecc.Hamming74(), OneCharged(4))
	b := ExactProfile(ecc.SequentialHamming(4), OneCharged(4))
	if a.Equal(b) {
		t.Skip("codes happen to share a 1-CHARGED profile")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("different profiles share a hash")
	}

	anti := &Profile{K: a.K}
	for _, e := range a.Entries {
		e.Anti = true
		anti.Entries = append(anti.Entries, e)
	}
	if a.Hash() == anti.Hash() {
		t.Fatal("polarity flip did not change the hash")
	}

	widened := &Profile{K: a.K + 1, Entries: a.Entries}
	if a.Hash() == widened.Hash() {
		t.Fatal("k change did not change the hash")
	}
}

// TestCanonicalFormatFrozen pins the serialization: if this golden value ever
// changes, canonicalVersion must be bumped, because existing content-addressed
// stores would otherwise silently miss every lookup.
func TestCanonicalFormatFrozen(t *testing.T) {
	prof := ExactProfile(ecc.Hamming74(), OneCharged(4))
	canon := string(prof.Canonical())
	if !strings.HasPrefix(canon, "beerprof v1 k=4\n") {
		t.Fatalf("canonical header changed: %q", canon)
	}
	const wantHash = "cfbd2ebee22b9f314fd9f2705ca12f032917e9299ee4d692c0e9a40e428008a2"
	if got := prof.Hash(); got != wantHash {
		t.Fatalf("canonical hash of the Hamming74 1-CHARGED profile changed:\ngot  %s\nwant %s\nserialization:\n%s",
			got, wantHash, canon)
	}
}

// recordingCache counts SolveCache traffic and serves one stored result.
type recordingCache struct {
	lookups, hits, stores int
	byHash                map[string]*Result
}

func (c *recordingCache) Lookup(p *Profile) (*Result, bool) {
	c.lookups++
	res, ok := c.byHash[p.Hash()]
	if ok {
		c.hits++
	}
	return res, ok
}

func (c *recordingCache) Store(p *Profile, res *Result) {
	c.stores++
	if c.byHash == nil {
		c.byHash = map[string]*Result{}
	}
	c.byHash[p.Hash()] = res
}

// TestSolveStageCache: the first solve populates the cache, the second
// replays it without running the solver.
func TestSolveStageCache(t *testing.T) {
	code := ecc.Hamming74()
	prof := ExactProfile(code, append(OneCharged(4), TwoCharged(4)...))
	cache := &recordingCache{}
	opts := DefaultRecoverOptions()
	opts.SolveCache = cache

	first, err := SolveStage(context.Background(), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Unique {
		t.Fatalf("expected unique recovery, got %d codes", len(first.Codes))
	}
	if cache.lookups != 1 || cache.hits != 0 || cache.stores != 1 {
		t.Fatalf("after miss: lookups=%d hits=%d stores=%d", cache.lookups, cache.hits, cache.stores)
	}

	second, err := SolveStage(context.Background(), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 1 {
		t.Fatalf("second solve missed the cache: %+v", cache)
	}
	if second != first {
		t.Fatal("cache hit did not replay the stored result")
	}
	if !second.Codes[0].Equal(first.Codes[0]) || !second.Codes[0].EquivalentTo(code) {
		t.Fatal("replayed result differs from the original")
	}
}
