package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// bruteProfile derives a miscorrection profile by exhaustively simulating
// every retention-error subset of the CHARGED cells of each pattern's
// codeword and decoding it — the ground-truth semantics the analytic oracle
// must match.
func bruteProfile(code *ecc.Code, patterns []Pattern) *Profile {
	k := code.K()
	prof := &Profile{K: k}
	for _, pat := range patterns {
		d := gf2.NewVec(k)
		for _, j := range pat.Charged() {
			d.Set(j, true)
		}
		cw := code.Encode(d)
		charged := cw.Support() // true-cells: bit value 1 == CHARGED
		possible := gf2.NewVec(k)
		for mask := 1; mask < 1<<uint(len(charged)); mask++ {
			bad := cw.Clone()
			for bi, cell := range charged {
				if mask>>uint(bi)&1 == 1 {
					bad.Set(cell, false) // CHARGED -> DISCHARGED only
				}
			}
			got := code.Decode(bad).Data
			for b := 0; b < k; b++ {
				if !pat.Has(b) && got.Get(b) != d.Get(b) {
					possible.Set(b, true)
				}
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible})
	}
	return prof
}

// TestExactProfileMatchesBruteForce is the oracle's keystone test: the
// closed-form profile must match exhaustive error-injection simulation for
// random codes of several shapes and all pattern families.
func TestExactProfileMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	shapes := []struct{ k, r int }{
		{4, 3},  // full-length (7,4)
		{5, 4},  // shortened
		{8, 4},  // shortened
		{11, 4}, // full-length (15,11)
		{10, 5}, // heavily shortened
	}
	for _, shape := range shapes {
		for trial := 0; trial < 6; trial++ {
			code := ecc.RandomHammingWithParity(shape.k, shape.r, rng)
			patterns := append(Set12.Patterns(shape.k), NCharged(shape.k, 3)...)
			got := ExactProfile(code, patterns)
			want := bruteProfile(code, patterns)
			if !got.Equal(want) {
				t.Fatalf("(k=%d,r=%d) trial %d: oracle disagrees with brute force\noracle:\n%s\nbrute:\n%s",
					shape.k, shape.r, trial, got, want)
			}
		}
	}
}

// TestExactProfileSlicedMatchesScalar holds the transposed-lane kernel
// bit-identical to the per-data-bit scalar reference across code shapes —
// including k > 64, where the lane planes span a ragged second chunk — for
// both true-cell and anti-cell semantics.
func TestExactProfileSlicedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(70, 80))
	shapes := []struct{ k, r int }{
		{4, 3},
		{11, 4},
		{26, 5},
		{57, 6},
		{64, 7},  // exactly one full chunk
		{71, 7},  // ragged second chunk
		{110, 7}, // two nearly full chunks
	}
	for _, shape := range shapes {
		for trial := 0; trial < 4; trial++ {
			code := ecc.RandomHammingWithParity(shape.k, shape.r, rng)
			patterns := append(Set12.Patterns(shape.k), NCharged(shape.k, 3)...)
			for _, anti := range []bool{false, true} {
				got := exactProfileSliced(code, patterns, anti)
				want := exactProfileScalar(code, patterns, anti)
				if !got.Equal(want) {
					t.Fatalf("(k=%d,r=%d) trial %d anti=%v: bitsliced oracle diverges from scalar",
						shape.k, shape.r, trial, anti)
				}
			}
		}
	}
}

// TestTable2 reproduces the paper's Table 2: the miscorrection profile of
// the Equation-1 (7,4) Hamming code under the 1-CHARGED patterns.
// Miscorrections are possible only for the pattern charging bit 0, and then
// in every other bit.
func TestTable2(t *testing.T) {
	prof := ExactProfile(ecc.Hamming74(), OneCharged(4))
	for _, e := range prof.Entries {
		a := e.Pattern.Charged()[0]
		for b := 0; b < 4; b++ {
			if b == a {
				continue
			}
			want := a == 0
			if e.Possible.Get(b) != want {
				t.Fatalf("pattern %d bit %d: possible=%v, want %v\n%s",
					a, b, e.Possible.Get(b), want, prof)
			}
		}
	}
}

func TestProfileString(t *testing.T) {
	prof := ExactProfile(ecc.Hamming74(), OneCharged(4))
	s := prof.String()
	// Pattern 3 row should be all '-' except '?' at its own position.
	want := "C{3}         [---?]\n"
	if got := s[len(s)-len(want):]; got != want {
		t.Fatalf("last row = %q, want %q", got, want)
	}
}

func TestProfileEqual(t *testing.T) {
	a := ExactProfile(ecc.Hamming74(), OneCharged(4))
	b := ExactProfile(ecc.Hamming74(), OneCharged(4))
	if !a.Equal(b) {
		t.Fatal("identical profiles reported unequal")
	}
	c := ExactProfile(ecc.SequentialHamming(4), OneCharged(4))
	_ = c
	b.Entries[0].Possible.Flip(1)
	if a.Equal(b) {
		t.Fatal("modified profile reported equal")
	}
}

// Different codes (up to equivalence) usually produce different profiles;
// equivalent codes always produce identical profiles. The latter is the
// invariant that makes recovery up to equivalence the best possible outcome.
func TestEquivalentCodesShareProfiles(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 40))
	for trial := 0; trial < 10; trial++ {
		code := ecc.RandomHammingWithParity(8, 4, rng)
		// Row-permute P: an equivalent code.
		p := code.P()
		rows := make([]gf2.Vec, p.Rows())
		for i := range rows {
			rows[i] = p.Row(i)
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		perm := ecc.MustNew(gf2.MatFromRows(rows...))
		if !perm.EquivalentTo(code) {
			t.Fatal("row permutation must preserve equivalence")
		}
		pats := Set12.Patterns(8)
		if !ExactProfile(code, pats).Equal(ExactProfile(perm, pats)) {
			t.Fatal("equivalent codes must have identical miscorrection profiles")
		}
	}
}
