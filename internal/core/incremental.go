package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/sat"
)

// This file is the incremental solve engine behind Solve, SolveLazy,
// SolveIncremental and the Planner. One SolveSession owns one SAT backend
// for its whole life: profile entries stream in (Feed), the uniqueness
// blocking-clause loop and every pattern-increment re-solve run on the same
// solver instance, so learned clauses — the expensive part of CDCL search —
// are never thrown away. That is what makes solve-while-you-collect
// planning affordable: each new batch of patterns re-solves an already
// hot solver instead of rebuilding the CNF from scratch.

// SolveSession is a persistent incremental search for the ECC functions
// consistent with a growing miscorrection profile. Entries stream in via
// Feed; Enumerate (re-)runs candidate enumeration and may be called again
// after more Feeds — constraints only ever grow, so models found earlier
// stay blocked in the solver and are re-validated against the newer entries
// with the cheap analytic oracle instead of more SAT work.
//
// A session is single-goroutine, like the backend it owns.
type SolveSession struct {
	opts SolveOptions
	k, r int
	enc  *encoder

	entries []Entry // every entry fed, in order (added or deferred)
	pending []Entry // deferred multi-CHARGED entries not yet encoded
	added   int     // entries encoded into the CNF

	// found holds every model the solver ever produced (each blocked
	// immediately); candidates during Enumerate are the subset still
	// consistent with all fed entries.
	found       []*ecc.Code
	exhausted   bool
	refinements int
}

// NewSolveSession builds an empty session for dataword length k. The
// backend (opts.Backend, default in-process CDCL) is created once here and
// lives as long as the session.
func NewSolveSession(k int, opts SolveOptions) (*SolveSession, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: profile has no dataword bits")
	}
	r := opts.ParityBits
	if r == 0 {
		r = ecc.MinParityBits(k)
	}
	enc := newEncoder(k, r, opts.backend())
	enc.s.SetMaxConflicts(opts.MaxConflicts)
	return &SolveSession{opts: opts, k: k, r: r, enc: enc}, nil
}

// Feed streams profile entries into the session. 1-CHARGED entries (and
// everything, under EagerEncode) are encoded immediately; multi-CHARGED
// entries are deferred and materialized only when a candidate model
// violates them (counterexample-guided refinement) — most never are.
func (ss *SolveSession) Feed(entries ...Entry) error {
	for _, entry := range entries {
		if entry.Possible.Len() != ss.k {
			return fmt.Errorf("core: entry %v has %d bits, profile has k=%d",
				entry.Pattern, entry.Possible.Len(), ss.k)
		}
		ss.entries = append(ss.entries, entry)
		if ss.opts.EagerEncode || entry.Pattern.Weight() <= 1 {
			ss.enc.addEntry(entry)
			ss.added++
		} else {
			ss.pending = append(ss.pending, entry)
		}
	}
	return nil
}

// EntriesFed returns how many profile entries the session has received.
func (ss *SolveSession) EntriesFed() int { return len(ss.entries) }

// Profile returns the profile fed so far (entries in arrival order).
func (ss *SolveSession) Profile() *Profile {
	return &Profile{K: ss.k, Entries: append([]Entry(nil), ss.entries...)}
}

// Stats returns the backend's cumulative solver counters.
func (ss *SolveSession) Stats() sat.Stats { return ss.enc.s.Statistics() }

// matches reports whether a candidate code's exact profile agrees with
// every entry fed so far — the analytic-oracle filter that revalidates
// previously found models after new entries arrive, with zero SAT work.
func (ss *SolveSession) matches(code *ecc.Code) bool {
	for _, entry := range ss.entries {
		oracle := ExactProfile
		if entry.Anti {
			oracle = ExactProfileAnti
		}
		got := oracle(code, []Pattern{entry.Pattern}).Entries[0].Possible
		if !got.Equal(entry.Possible) {
			return false
		}
	}
	return true
}

// refine oracle-checks a candidate against the deferred entries and encodes
// the violated ones (a few at a time; more are often implied). It returns
// how many entries were materialized; zero means the candidate survives.
func (ss *SolveSession) refine(code *ecc.Code) int {
	violated := 0
	keep := ss.pending[:0]
	for _, entry := range ss.pending {
		if violated >= 8 { // add a few at a time; more may be implied
			keep = append(keep, entry)
			continue
		}
		oracle := ExactProfile
		if entry.Anti {
			oracle = ExactProfileAnti
		}
		got := oracle(code, []Pattern{entry.Pattern}).Entries[0].Possible
		if got.Equal(entry.Possible) {
			keep = append(keep, entry)
			continue
		}
		ss.enc.addEntry(entry)
		ss.added++
		violated++
		ss.refinements++
	}
	ss.pending = keep
	return violated
}

// statsEvent builds a StageSolve progress event carrying the live candidate
// bound and the session's cumulative solver counters. LearnedClauses is the
// cumulative Stats.Learnt — not the live clause-database size, which
// reduceDB shrinks — so the field is genuinely monotonic and agrees with
// the result/healthz counter of the same name.
func (ss *SolveSession) statsEvent(candidates int) Event {
	stats := ss.enc.s.Statistics()
	return Event{
		Stage:          StageSolve,
		Candidates:     candidates,
		Conflicts:      stats.Conflicts,
		Propagations:   stats.Propagations,
		LearnedClauses: stats.Learnt,
		Races:          stats.Races,
		Competitors:    stats.Competitors,
	}
}

// Enumerate (re-)runs candidate enumeration against everything fed so far
// and returns the current Result. The live candidate set is the
// oracle-filtered survivors of all models ever found plus whatever further
// models the persistent solver produces, up to opts.MaxSolutions (0 means
// 2 — enough to answer "unique or not"; negative means unlimited).
// Result.Unique is true once the solver has exhausted the search space with
// exactly one survivor. Enumerate may be called again after more Feeds;
// cancelling ctx interrupts the SAT search at its next conflict, restart or
// 64th decision — and the refinement loop between re-solves — returning
// ctx.Err().
func (ss *SolveSession) Enumerate(ctx context.Context) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	translate := interruptFromCtx(ctx, ss.enc.s)
	maxSol := ss.opts.MaxSolutions
	if maxSol == 0 {
		maxSol = 2
	}

	res := &Result{}
	fillRes := func() {
		res.Exhausted = ss.exhausted
		res.Unique = ss.exhausted && len(res.Codes) == 1
		res.Vars = ss.enc.s.NumVars()
		res.Clauses = ss.enc.s.NumClauses()
		res.PatternsUsed = ss.added
		res.PatternsSkipped = len(ss.pending)
		res.LazyRefinements = ss.refinements
		res.Stats = ss.enc.s.Statistics()
	}

	// Revalidate earlier finds against the full entry set (new entries may
	// have arrived since they were enumerated).
	for _, code := range ss.found {
		if ss.matches(code) {
			res.Codes = append(res.Codes, code)
		}
	}

	vars := ss.enc.pVars()
	start := time.Now()
	firstFound := len(res.Codes) > 0
	for maxSol < 0 || len(res.Codes) < maxSol {
		// Bound cancellation latency between refinement re-solves too: a
		// run of cheap oracle-refuted candidates must still observe ctx.
		if err := ctx.Err(); err != nil {
			fillRes()
			return res, err
		}
		if ss.exhausted {
			break
		}
		found, err := ss.enc.s.Solve()
		if err != nil {
			fillRes()
			return res, fmt.Errorf("core: solve: %w", translate(err))
		}
		if !found {
			ss.exhausted = true
			break
		}
		code, err := ss.enc.modelCode()
		if err != nil {
			fillRes()
			return res, fmt.Errorf("core: SAT model is not a valid code: %w", err)
		}
		// Counterexample check against the deferred entries; a violated
		// candidate is excluded by the refinements themselves, so only
		// survivors need a blocking clause.
		if ss.refine(code) > 0 {
			continue
		}
		// Block immediately — not lazily on the next iteration — so the
		// session can resume enumeration cleanly after later Feeds.
		ss.found = append(ss.found, code)
		if !sat.BlockModel(ss.enc.s, vars) {
			ss.exhausted = true
		}
		res.Codes = append(res.Codes, code)
		ss.opts.Progress.emit(ss.statsEvent(len(res.Codes)))
		if !firstFound {
			firstFound = true
			res.DetermineTime = time.Since(start)
			start = time.Now()
		}
	}
	if firstFound {
		res.UniquenessTime = time.Since(start)
	} else {
		res.DetermineTime = time.Since(start)
	}
	fillRes()
	return res, nil
}

// SolveIncremental finds the ECC functions consistent with a miscorrection
// profile by streaming the profile into a fresh SolveSession entry by entry
// and enumerating candidates on the persistent solver. Semantically it is
// identical to the eager Solve — the candidate sets are bit-identical (see
// the cross-check property test) — but multi-CHARGED entries are deferred
// until a candidate model actually violates them, which usually leaves most
// of the profile un-encoded (Result.PatternsSkipped). Solve and SolveLazy
// are thin shims over this engine; the Planner drives the same session
// directly, interleaving Feeds with collection.
func SolveIncremental(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	ss, err := NewSolveSession(profile.K, opts)
	if err != nil {
		return nil, err
	}
	if err := ss.Feed(profile.Entries...); err != nil {
		return nil, err
	}
	return ss.Enumerate(ctx)
}
