package core

import (
	"context"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/ecc"
	"repro/internal/sat"
)

// codeSet renders a candidate list as a canonical sorted set of exact
// parity-check matrices, for bit-identical comparison across engines.
func codeSet(t *testing.T, codes []*ecc.Code) []string {
	t.Helper()
	out := make([]string, 0, len(codes))
	for _, c := range codes {
		out = append(out, c.H().String())
	}
	sort.Strings(out)
	return out
}

func sameCodeSet(t *testing.T, a, b []*ecc.Code) bool {
	t.Helper()
	as, bs := codeSet(t, a), codeSet(t, b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestIncrementalMatchesEagerProperty is the golden cross-check: for
// randomized codes across dataword lengths, SolveIncremental (deferred
// CEGAR encoding on the persistent backend) must return bit-identical
// candidate sets to the legacy eager Solve — in the unique case, the
// multi-candidate case (full enumeration of an underdetermined profile)
// and the UNSAT case.
func TestIncrementalMatchesEagerProperty(t *testing.T) {
	ctx := context.Background()
	for _, k := range []int{4, 6, 8, 10} {
		for seed := uint64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(k)))
			code := ecc.RandomHamming(k, rng)
			opts := SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: -1}

			// Unique / fully determined: the {1,2}-CHARGED profile.
			full := ExactProfile(code, Set12.Patterns(k))
			eager, err := Solve(ctx, full, opts)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := SolveIncremental(ctx, full, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCodeSet(t, eager.Codes, inc.Codes) || eager.Exhausted != inc.Exhausted || eager.Unique != inc.Unique {
				t.Fatalf("k=%d seed=%d full profile: eager %d codes (unique=%v) vs incremental %d codes (unique=%v)",
					k, seed, len(eager.Codes), eager.Unique, len(inc.Codes), inc.Unique)
			}
			if !eager.Unique {
				// Shortened-code Set12 profiles are unique per the paper;
				// random full-length ones always are.
				t.Logf("k=%d seed=%d: full profile not unique (%d candidates)", k, seed, len(eager.Codes))
			}

			// Multi-candidate: the 1-CHARGED profile alone typically leaves
			// several consistent functions; enumerate them all.
			part := ExactProfile(code, Set1.Patterns(k))
			eager1, err := Solve(ctx, part, opts)
			if err != nil {
				t.Fatal(err)
			}
			inc1, err := SolveIncremental(ctx, part, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCodeSet(t, eager1.Codes, inc1.Codes) || eager1.Exhausted != inc1.Exhausted {
				t.Fatalf("k=%d seed=%d 1-CHARGED profile: eager %d codes vs incremental %d codes",
					k, seed, len(eager1.Codes), len(inc1.Codes))
			}
			if len(eager1.Codes) == 0 {
				t.Fatalf("k=%d seed=%d: exact 1-CHARGED profile has no consistent code", k, seed)
			}

			// UNSAT: the same pattern asserted with two different
			// susceptibility sets is contradictory by construction.
			bad := &Profile{K: k}
			bad.Entries = append(bad.Entries, full.Entries...)
			flip := full.Entries[len(full.Entries)-1]
			flipped := flip.Possible.Clone()
			for b := 0; b < k; b++ {
				if !flip.Pattern.Has(b) {
					flipped.Flip(b)
					break
				}
			}
			bad.Entries = append(bad.Entries, Entry{Pattern: flip.Pattern, Possible: flipped})
			eagerU, err := Solve(ctx, bad, opts)
			if err != nil {
				t.Fatal(err)
			}
			incU, err := SolveIncremental(ctx, bad, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(eagerU.Codes) != 0 || len(incU.Codes) != 0 || !eagerU.Exhausted || !incU.Exhausted {
				t.Fatalf("k=%d seed=%d contradictory profile: eager %d codes (exhausted=%v), incremental %d codes (exhausted=%v)",
					k, seed, len(eagerU.Codes), eagerU.Exhausted, len(incU.Codes), incU.Exhausted)
			}
		}
	}
}

// TestIncrementalSkipsPatterns: on a profile the 1-CHARGED entries nearly
// determine, the deferred engine must leave most multi-CHARGED entries
// un-encoded while returning the same answer.
func TestIncrementalSkipsPatterns(t *testing.T) {
	k := 16
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(7, 7)))
	prof := ExactProfile(code, Set12.Patterns(k))
	res, err := SolveIncremental(context.Background(), prof, SolveOptions{ParityBits: code.ParityBits()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatalf("expected unique recovery, got %d candidates (exhausted=%v)", len(res.Codes), res.Exhausted)
	}
	if res.PatternsSkipped == 0 {
		t.Fatal("incremental solve materialized every entry; expected deferred entries to be skipped")
	}
	if res.PatternsUsed+res.PatternsSkipped != len(prof.Entries) {
		t.Fatalf("used (%d) + skipped (%d) != fed (%d)", res.PatternsUsed, res.PatternsSkipped, len(prof.Entries))
	}
	if !res.Codes[0].EquivalentTo(code) {
		t.Fatal("recovered code does not match ground truth")
	}
}

// TestSolveSessionResume feeds a profile in two installments and checks the
// resumed enumeration (a) reuses the same backend — cumulative solver stats
// only grow — and (b) lands on the same candidate set as a one-shot solve.
func TestSolveSessionResume(t *testing.T) {
	ctx := context.Background()
	k := 8
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(3, 9)))
	prof := ExactProfile(code, Set12.Patterns(k))
	opts := SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: -1}

	ss, err := NewSolveSession(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(prof.Entries) / 2
	if err := ss.Feed(prof.Entries[:half]...); err != nil {
		t.Fatal(err)
	}
	first, err := ss.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	statsAfterFirst := ss.Stats()
	if err := ss.Feed(prof.Entries[half:]...); err != nil {
		t.Fatal(err)
	}
	second, err := ss.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Stats().Conflicts < statsAfterFirst.Conflicts || ss.Stats().Propagations < statsAfterFirst.Propagations {
		t.Fatal("resumed enumeration reset solver counters; backend was not reused")
	}
	if len(second.Codes) > len(first.Codes) && first.Exhausted {
		t.Fatalf("candidate set grew (%d -> %d) after constraints tightened on an exhausted session",
			len(first.Codes), len(second.Codes))
	}

	oneShot, err := SolveIncremental(ctx, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCodeSet(t, oneShot.Codes, second.Codes) {
		t.Fatalf("resumed session found %d codes, one-shot found %d", len(second.Codes), len(oneShot.Codes))
	}
	if !second.Unique || !oneShot.Unique {
		t.Fatalf("expected unique recovery (resumed unique=%v, one-shot unique=%v)", second.Unique, oneShot.Unique)
	}
}

// TestSolveDimacsBackend routes a full profile solve through the
// DIMACS-recording backend and checks both the answer and that a
// non-trivial CNF was captured for export.
func TestSolveDimacsBackend(t *testing.T) {
	k := 8
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(11, 4)))
	prof := ExactProfile(code, Set12.Patterns(k))
	var rec *sat.Dimacs
	opts := SolveOptions{
		ParityBits: code.ParityBits(),
		Backend: func() sat.Backend {
			rec = sat.NewDimacs(nil)
			return rec
		},
	}
	res, err := SolveIncremental(context.Background(), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique || !res.Codes[0].EquivalentTo(code) {
		t.Fatalf("DIMACS-backed solve: unique=%v", res.Unique)
	}
	if rec == nil || rec.NumClauses() == 0 {
		t.Fatal("recording backend captured no clauses")
	}
}
