package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/ecc"
)

// FuzzNoisyRecover holds the drop-k solver to its recovery-or-clean-UNSAT
// contract: perturb a known-good 1-CHARGED profile with fuzz-chosen false
// positives and a fuzz-chosen drop budget, then require either candidates
// whose analytic profiles agree with every retained entry, or a clean UNSAT
// report with zero confidence — never a silent wrong answer — with the
// noise accounting consistent either way. Seed corpus committed under
// testdata/fuzz/FuzzNoisyRecover.
func FuzzNoisyRecover(f *testing.F) {
	f.Add(uint8(4), uint64(1), []byte{0x03, 0x51}, int8(-1))
	f.Add(uint8(0), uint64(7), []byte{}, int8(0))
	f.Add(uint8(12), uint64(3), []byte{0xff, 0x10, 0x77, 0x02, 0x2a, 0x63}, int8(2))
	f.Fuzz(func(t *testing.T, kSel uint8, seed uint64, fpBytes []byte, budget int8) {
		k := 4 + int(kSel%13) // 4..16 keeps every solve fast under -fuzz
		rng := rand.New(rand.NewPCG(seed, uint64(k)))
		code := ecc.RandomHamming(k, rng)
		prof := ExactProfile(code, Set1.Patterns(k))

		// One false positive per byte pair (capped at 4): the first byte
		// picks the entry, the second the truly-impossible bit to corrupt.
		corrupted := map[int]bool{}
		for i := 0; i+1 < len(fpBytes) && len(corrupted) < 4; i += 2 {
			idx := int(fpBytes[i]) % len(prof.Entries)
			if corrupted[idx] {
				continue
			}
			e := prof.Entries[idx]
			flippable := make([]int, 0, k)
			for b := 0; b < k; b++ {
				if !e.Pattern.Has(b) && !e.Possible.Get(b) {
					flippable = append(flippable, b)
				}
			}
			if len(flippable) == 0 {
				continue
			}
			e.Possible.Set(flippable[int(fpBytes[i+1])%len(flippable)], true)
			corrupted[idx] = true
		}

		maxDrop := int(budget)
		if maxDrop < -1 {
			maxDrop = -1
		}
		opts := SolveOptions{
			ParityBits:   code.ParityBits(),
			MaxSolutions: 4, // bound enumeration: heavy drops under-determine the code
			Noisy:        &NoisyOptions{MaxDrop: maxDrop},
		}
		res, err := SolveNoisy(context.Background(), prof, opts)
		if err != nil {
			t.Fatal(err)
		}
		ni := res.Noise
		if ni == nil {
			t.Fatal("noisy solve reported no noise info")
		}
		if ni.Total != len(prof.Entries) || ni.Total != ni.Retained+ni.Dropped || ni.Dropped != len(ni.DroppedEntries) {
			t.Fatalf("inconsistent noise accounting: %+v", ni)
		}
		if maxDrop >= 0 && ni.Dropped > maxDrop {
			t.Fatalf("dropped %d entries over the budget %d", ni.Dropped, maxDrop)
		}
		droppedSet := map[int]bool{}
		for _, idx := range ni.DroppedEntries {
			if idx < 0 || idx >= ni.Total || droppedSet[idx] {
				t.Fatalf("bad dropped-entry index list %v", ni.DroppedEntries)
			}
			droppedSet[idx] = true
		}
		if ni.Confidence < 0 || ni.Confidence > 1 {
			t.Fatalf("confidence %v out of [0, 1]", ni.Confidence)
		}

		if len(res.Codes) == 0 {
			// Clean UNSAT: an honest failure is allowed, a confident one
			// is not.
			if ni.Confidence != 0 {
				t.Fatalf("zero candidates with confidence %v", ni.Confidence)
			}
			return
		}
		// Recovery: every candidate must reproduce every retained entry of
		// the (perturbed) profile bit-for-bit under the analytic oracle.
		for _, cand := range res.Codes {
			oracle := ExactProfile(cand, Set1.Patterns(k))
			for i, e := range prof.Entries {
				if droppedSet[i] {
					continue
				}
				if !oracle.Entries[i].Possible.Equal(e.Possible) {
					t.Fatalf("candidate disagrees with retained entry %d (corrupted=%v dropped=%v)",
						i, corrupted[i], ni.DroppedEntries)
				}
			}
		}
		if len(corrupted) == 0 {
			// The uncorrupted profile is self-consistent: nothing may be
			// dropped, and when enumeration completed the ground truth must
			// be among the candidates.
			if ni.Dropped != 0 {
				t.Fatalf("dropped %d entries from an uncorrupted profile", ni.Dropped)
			}
			if res.Exhausted {
				found := false
				for _, cand := range res.Codes {
					if cand.EquivalentTo(code) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("ground truth missing from the %d exhaustively enumerated candidates", len(res.Codes))
				}
			}
		}
	})
}
