package core

import (
	"testing"
)

func TestOneCharged(t *testing.T) {
	ps := OneCharged(4)
	if len(ps) != 4 {
		t.Fatalf("len = %d", len(ps))
	}
	for i, p := range ps {
		if p.Weight() != 1 || !p.Has(i) {
			t.Fatalf("pattern %d = %v", i, p)
		}
	}
}

func TestTwoChargedCount(t *testing.T) {
	ps := TwoCharged(8)
	if len(ps) != 28 {
		t.Fatalf("len = %d, want C(8,2)=28", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Weight() != 2 {
			t.Fatalf("pattern %v has weight %d", p, p.Weight())
		}
		if seen[p.String()] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p.String()] = true
	}
}

func TestNCharged(t *testing.T) {
	if got := len(NCharged(6, 3)); got != 20 {
		t.Fatalf("C(6,3) = %d, want 20", got)
	}
	if got := len(NCharged(5, 0)); got != 1 {
		t.Fatalf("C(5,0) = %d, want 1", got)
	}
	if NCharged(3, 4) != nil {
		t.Fatal("w > k should produce no patterns")
	}
	// NCharged(k, 1) must agree with OneCharged.
	a, b := NCharged(7, 1), OneCharged(7)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("NCharged/OneCharged disagree at %d", i)
		}
	}
	// NCharged(k, 2) must agree with TwoCharged.
	c, d := NCharged(6, 2), TwoCharged(6)
	if len(c) != len(d) {
		t.Fatalf("lengths differ: %d vs %d", len(c), len(d))
	}
	for i := range c {
		if c[i].String() != d[i].String() {
			t.Fatalf("NCharged/TwoCharged disagree at %d", i)
		}
	}
}

func TestPatternDedupAndOrder(t *testing.T) {
	p := NewPattern(5, 1, 5, 3)
	got := p.Charged()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Charged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Charged = %v, want %v", got, want)
		}
	}
	if !p.Has(3) || p.Has(2) {
		t.Fatal("Has is wrong")
	}
	if p.String() != "C{1,3,5}" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPatternSets(t *testing.T) {
	k := 6
	if got := len(Set1.Patterns(k)); got != 6 {
		t.Fatalf("Set1: %d", got)
	}
	if got := len(Set2.Patterns(k)); got != 15 {
		t.Fatalf("Set2: %d", got)
	}
	if got := len(Set3.Patterns(k)); got != 20 {
		t.Fatalf("Set3: %d", got)
	}
	if got := len(Set12.Patterns(k)); got != 21 {
		t.Fatalf("Set12: %d", got)
	}
	names := map[PatternSet]string{Set1: "1-CHARGED", Set2: "2-CHARGED", Set3: "3-CHARGED", Set12: "{1,2}-CHARGED"}
	for ps, want := range names {
		if ps.String() != want {
			t.Fatalf("String(%d) = %q", int(ps), ps.String())
		}
	}
}
