package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/sat"
)

// This file is the noise-tolerant solve engine: recovery from
// miscorrection profiles that may contain observation errors. The exact
// engine (incremental.go) treats every profile entry as ground truth, so a
// single false-positive entry — a bit marked miscorrection-possible that
// never was (paper §6's FP analysis; HARP's per-bit Bernoulli observation
// models) — makes the whole system UNSAT and recovery fails. The noisy
// engine instead attaches every entry's constraints behind a retractable
// guard literal and, on UNSAT, retracts the least-supported entry of the
// solver's failed-assumption core, escalating the dropped count until a
// code is found or the drop budget is spent. Because the ground-truth code
// satisfies every true entry, any UNSAT core must contain at least one
// corrupted entry — so core-guided retraction converges on the corrupted
// entries without knowing which they are.

// NoisyOptions tunes the noise-tolerant solve path (SolveOptions.Noisy).
type NoisyOptions struct {
	// MaxDrop bounds how many profile entries the drop-k relaxation may
	// retract: 0 permits none (the solve either succeeds with every entry
	// active or reports clean UNSAT), negative means unlimited.
	MaxDrop int
	// Support scores each profile entry's observation support in [0, 1],
	// aligned with Profile.Entries; the relaxation retracts low-support
	// core members first. Nil (or short) defaults missing scores to 1 —
	// the UNSAT-core guidance alone still converges, support only biases
	// which core member goes first.
	Support []float64
	// Timeout bounds each SAT call in wall-clock time (0 = unlimited). A
	// timed-out solve returns sat.ErrTimeout — HARP's discard rule: the
	// caller drops that sample and moves on, the session's backend stays
	// reusable.
	Timeout time.Duration
}

// NoiseInfo reports the drop-k relaxation outcome of a noisy solve.
type NoiseInfo struct {
	// Total, Retained and Dropped count the profile's entries: Total =
	// Retained + Dropped.
	Total, Retained, Dropped int
	// DroppedEntries lists the indexes (into the solved profile's Entries)
	// of the retracted entries, in retraction order.
	DroppedEntries []int
	// Confidence grades the recovery in [0, 1]: the fraction of entries
	// retained times the agreement of the surviving candidate set
	// (1/candidates). A clean profile solved to a unique code scores
	// exactly 1.0; every dropped entry and every extra surviving candidate
	// lowers it. Zero when no code was found.
	Confidence float64
	// Margin is the support gap between the retained and dropped sets: the
	// minimum support among retained entries minus the maximum support
	// among dropped ones (just the former when nothing was dropped). A
	// large margin means the relaxation separated well-supported
	// observations from marginal ones; a margin near zero means it had to
	// discard entries as credible as those it kept.
	Margin float64
}

// NoisySolveSession is a noise-tolerant incremental search for the ECC
// functions consistent with *most* of a miscorrection profile. Entries
// stream in via Feed, each encoded behind a fresh guard literal; Solve runs
// the drop-k relaxation loop and candidate enumeration. Unlike
// SolveSession there is no deferred encoding — retractability requires
// every entry's constraints to be materialized — so feeding a large
// multi-CHARGED profile is eager and priced accordingly.
//
// A session is single-goroutine, like the backend it owns.
type NoisySolveSession struct {
	opts SolveOptions
	k, r int
	enc  *encoder

	entries []Entry
	guards  []sat.Lit // guard literal per entry; assumed true = active
	active  []bool
	dropped []int // retraction order
	// coreHits counts how often each entry appeared in an UNSAT core this
	// session: corrupted entries recur in every core (the true entries are
	// mutually consistent), so repeat offenders are retracted first among
	// equal-support candidates.
	coreHits []int
}

// NewNoisySolveSession builds an empty noise-tolerant session for dataword
// length k. opts.Noisy may be nil; defaults then apply (MaxDrop 0).
func NewNoisySolveSession(k int, opts SolveOptions) (*NoisySolveSession, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: profile has no dataword bits")
	}
	r := opts.ParityBits
	if r == 0 {
		r = ecc.MinParityBits(k)
	}
	enc := newEncoder(k, r, opts.backend())
	enc.s.SetMaxConflicts(opts.MaxConflicts)
	if opts.Noisy != nil {
		enc.s.SetTimeout(opts.Noisy.Timeout)
	}
	return &NoisySolveSession{opts: opts, k: k, r: r, enc: enc}, nil
}

// Feed streams profile entries into the session, encoding each one
// immediately behind a fresh guard literal.
func (ns *NoisySolveSession) Feed(entries ...Entry) error {
	for _, entry := range entries {
		if entry.Possible.Len() != ns.k {
			return fmt.Errorf("core: entry %v has %d bits, profile has k=%d",
				entry.Pattern, entry.Possible.Len(), ns.k)
		}
		g := sat.PosLit(ns.enc.s.NewVar())
		ns.enc.setGuard(g)
		ns.enc.addEntry(entry)
		ns.enc.clearGuard()
		ns.entries = append(ns.entries, entry)
		ns.guards = append(ns.guards, g)
		ns.active = append(ns.active, true)
		ns.coreHits = append(ns.coreHits, 0)
	}
	return nil
}

// EntriesFed returns how many profile entries the session has received.
func (ns *NoisySolveSession) EntriesFed() int { return len(ns.entries) }

// Stats returns the backend's cumulative solver counters.
func (ns *NoisySolveSession) Stats() sat.Stats { return ns.enc.s.Statistics() }

// support returns entry i's observation support score.
func (ns *NoisySolveSession) support(i int) float64 {
	if ns.opts.Noisy == nil || i >= len(ns.opts.Noisy.Support) {
		return 1
	}
	return ns.opts.Noisy.Support[i]
}

// assumptions collects the guard literals of the active entries in entry
// order — a stable order, so consecutive solves share a maximal assumption
// prefix and reuse the established trail.
func (ns *NoisySolveSession) assumptions() []sat.Lit {
	out := make([]sat.Lit, 0, len(ns.guards))
	for i, g := range ns.guards {
		if ns.active[i] {
			out = append(out, g)
		}
	}
	return out
}

// matchesRetained reports whether a candidate code's exact profile agrees
// with every *retained* entry — the analytic-oracle cross-check of the
// drop-k survivors. Dropped entries are deliberately not consulted: they
// are the presumed observation errors.
func (ns *NoisySolveSession) matchesRetained(code *ecc.Code) bool {
	for i, entry := range ns.entries {
		if !ns.active[i] {
			continue
		}
		oracle := ExactProfile
		if entry.Anti {
			oracle = ExactProfileAnti
		}
		got := oracle(code, []Pattern{entry.Pattern}).Entries[0].Possible
		if !got.Equal(entry.Possible) {
			return false
		}
	}
	return true
}

// retractFromCore picks and retracts one entry from the failed-assumption
// core: lowest support first, then most prior core appearances (corrupted
// entries recur in every core), then lowest index. It returns false when
// the core maps to no active entry (which means the formula is UNSAT
// independent of the entries).
func (ns *NoisySolveSession) retractFromCore(core []sat.Lit) bool {
	victim := -1
	guardIndex := make(map[sat.Lit]int, len(ns.guards))
	for i, g := range ns.guards {
		guardIndex[g] = i
	}
	for _, l := range core {
		i, ok := guardIndex[l]
		if !ok || !ns.active[i] {
			continue
		}
		ns.coreHits[i]++
		if victim == -1 {
			victim = i
			continue
		}
		si, sv := ns.support(i), ns.support(victim)
		switch {
		case si < sv:
			victim = i
		case si == sv && ns.coreHits[i] > ns.coreHits[victim]:
			victim = i
		}
	}
	if victim == -1 {
		return false
	}
	ns.active[victim] = false
	ns.dropped = append(ns.dropped, victim)
	return true
}

// noiseInfo assembles the NoiseInfo for the current retained/dropped split
// and candidate count.
func (ns *NoisySolveSession) noiseInfo(candidates int) *NoiseInfo {
	info := &NoiseInfo{
		Total:          len(ns.entries),
		Retained:       len(ns.entries) - len(ns.dropped),
		Dropped:        len(ns.dropped),
		DroppedEntries: append([]int(nil), ns.dropped...),
	}
	retainedFrac := 1.0
	if info.Total > 0 {
		retainedFrac = float64(info.Retained) / float64(info.Total)
	}
	if candidates > 0 {
		info.Confidence = retainedFrac / float64(candidates)
	}
	minRetained, maxDropped := 0.0, 0.0
	first := true
	for i := range ns.entries {
		if ns.active[i] {
			if s := ns.support(i); first || s < minRetained {
				minRetained, first = s, false
			}
		}
	}
	for _, i := range ns.dropped {
		if s := ns.support(i); s > maxDropped {
			maxDropped = s
		}
	}
	if !first {
		info.Margin = minRetained - maxDropped
	}
	return info
}

// event builds a StageSolve progress event carrying the live candidate and
// dropped-entry counts plus cumulative solver counters.
func (ns *NoisySolveSession) event(candidates int, confidence float64) Event {
	stats := ns.enc.s.Statistics()
	return Event{
		Stage:          StageSolve,
		Candidates:     candidates,
		Conflicts:      stats.Conflicts,
		Propagations:   stats.Propagations,
		LearnedClauses: stats.Learnt,
		Races:          stats.Races,
		Competitors:    stats.Competitors,
		DroppedEntries: len(ns.dropped),
		Confidence:     confidence,
	}
}

// Solve runs the drop-k relaxation loop and candidate enumeration:
//
//  1. Solve under the guards of every retained entry.
//  2. On UNSAT, retract the least-supported entry of the solver's
//     failed-assumption core and go to 1 — unless the drop budget
//     (NoisyOptions.MaxDrop) is spent, which ends the search with no codes.
//  3. On SAT, enumerate candidates exactly like the exact engine
//     (blocking clauses, MaxSolutions semantics), cross-checking every
//     model against the retained entries with the analytic oracle. The
//     drop set is frozen once the first model is found.
//
// The Result always carries a non-nil Noise block. With a clean profile
// the answer is identical to the exact path's — no entry is ever dropped
// when the system is satisfiable, so Codes matches SolveIncremental
// bit-for-bit and Confidence is 1.0 on a unique recovery.
func (ns *NoisySolveSession) Solve(ctx context.Context) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	translate := interruptFromCtx(ctx, ns.enc.s)
	maxSol := ns.opts.MaxSolutions
	if maxSol == 0 {
		maxSol = 2
	}
	maxDrop := 0
	if ns.opts.Noisy != nil {
		maxDrop = ns.opts.Noisy.MaxDrop
	}
	if maxDrop < 0 {
		maxDrop = len(ns.entries)
	}

	res := &Result{}
	exhausted := false
	fillRes := func() {
		res.Exhausted = exhausted
		res.Unique = exhausted && len(res.Codes) == 1
		res.Vars = ns.enc.s.NumVars()
		res.Clauses = ns.enc.s.NumClauses()
		res.PatternsUsed = len(ns.entries)
		res.Stats = ns.enc.s.Statistics()
		res.Noise = ns.noiseInfo(len(res.Codes))
	}

	vars := ns.enc.pVars()
	start := time.Now()
	firstFound := false
	for maxSol < 0 || len(res.Codes) < maxSol {
		if err := ctx.Err(); err != nil {
			fillRes()
			return res, err
		}
		ok, err := ns.enc.s.SolveUnderAssumptions(ns.assumptions()...)
		if err != nil {
			fillRes()
			return res, fmt.Errorf("core: noisy solve: %w", translate(err))
		}
		if !ok {
			if firstFound {
				// The retained system is exhausted under the frozen drop
				// set: enumeration is complete.
				exhausted = true
				break
			}
			core := ns.enc.s.FailedAssumptions()
			if len(ns.dropped) >= maxDrop || !ns.retractFromCore(core) {
				// Clean UNSAT: no code exists within the drop budget (or
				// independently of the entries at all).
				exhausted = true
				break
			}
			ns.opts.Progress.emit(ns.event(0, 0))
			continue
		}
		code, err := ns.enc.modelCode()
		if err != nil {
			fillRes()
			return res, fmt.Errorf("core: SAT model is not a valid code: %w", err)
		}
		if !firstFound {
			firstFound = true
			res.DetermineTime = time.Since(start)
			start = time.Now()
		}
		blocked := sat.BlockModel(ns.enc.s, vars)
		// Analytic-oracle cross-check against the retained entries; a
		// mismatch would mean the guarded encoding under-constrained the
		// model, so the candidate is discarded rather than reported.
		if ns.matchesRetained(code) {
			res.Codes = append(res.Codes, code)
			ns.opts.Progress.emit(ns.event(len(res.Codes), ns.noiseInfo(len(res.Codes)).Confidence))
		}
		if !blocked {
			exhausted = true
			break
		}
	}
	if firstFound {
		res.UniquenessTime = time.Since(start)
	} else {
		res.DetermineTime = time.Since(start)
	}
	fillRes()
	return res, nil
}

// SolveNoisy finds the ECC functions consistent with most of a
// miscorrection profile by streaming it into a fresh NoisySolveSession and
// running the drop-k relaxation (see NoisySolveSession.Solve). It is the
// noise-tolerant counterpart of SolveIncremental: with a clean profile the
// candidate set is identical and Noise.Confidence is 1.0 on a unique
// recovery; with corrupted entries the relaxation retracts UNSAT-core
// members (least-supported first, per opts.Noisy.Support) until a code is
// found, and Noise reports what was dropped and with what margin.
func SolveNoisy(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	ns, err := NewNoisySolveSession(profile.K, opts)
	if err != nil {
		return nil, err
	}
	if err := ns.Feed(profile.Entries...); err != nil {
		return nil, err
	}
	return ns.Solve(ctx)
}
