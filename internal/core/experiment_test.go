package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/ondie"
)

// testChip builds a small simulated chip: k=16 datawords keep the pattern
// count and SAT problem small enough for unit tests while exercising a
// shortened code (n=21 < 31).
func testChip(t *testing.T, m ondie.Manufacturer, rows int, transientBER float64) *ondie.Chip {
	t.Helper()
	chip, err := ondie.New(ondie.Config{
		Manufacturer:  m,
		DataBits:      16,
		Banks:         1,
		Rows:          rows,
		RegionsPerRow: 16,
		Seed:          0xBEE5,
		TransientBER:  transientBER,
	})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// testWindows reach deep enough into the retention distribution (per-cell
// failure probability ~0.5 at the top) that thousands of simulated words
// cover all possible error patterns, standing in for the paper's millions of
// real words (see DESIGN.md substitutions).
func testWindows() []time.Duration {
	var ws []time.Duration
	for m := 4; m <= 48; m += 4 {
		ws = append(ws, time.Duration(m)*time.Minute)
	}
	return ws
}

func TestDiscoverCellLayoutAllTrue(t *testing.T) {
	chip := testChip(t, ondie.MfrA, 32, 0)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	for r, cl := range classes[0] {
		if cl != core.ClassTrue {
			t.Fatalf("row %d classified %v, want true (manufacturer A)", r, cl)
		}
	}
}

func TestDiscoverCellLayoutMixed(t *testing.T) {
	chip := testChip(t, ondie.MfrC, 64, 0)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	mismatches := 0
	for r, cl := range classes[0] {
		var want core.CellClass
		if chip.GroundTruthCellType(0, r) == dram.TrueCell {
			want = core.ClassTrue
		} else {
			want = core.ClassAnti
		}
		if cl != want {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/64 rows misclassified", mismatches)
	}
}

func TestDiscoverWordLayout(t *testing.T) {
	chip := testChip(t, ondie.MfrA, 48, 0)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(layout.Words) != 2 {
		t.Fatalf("found %d words per region, want 2", len(layout.Words))
	}
	if layout.K() != 16 {
		t.Fatalf("discovered k=%d, want 16", layout.K())
	}
	// Ground truth: even offsets belong to word 0, odd to word 1, in
	// ascending order.
	for w, group := range layout.Words {
		for bi, off := range group {
			wantWord, wantByte := chip.GroundTruthWordOfRegionByte(off)
			if wantWord != w || wantByte != bi {
				t.Fatalf("offset %d assigned (word %d, byte %d), ground truth (%d, %d)",
					off, w, bi, wantWord, wantByte)
			}
		}
	}
}

// The make-or-break integration test: a profile collected purely through the
// chip's public interface must match the analytic profile of the chip's
// secret code, for 1-CHARGED and 2-CHARGED patterns alike.
func TestCollectedProfileMatchesExact(t *testing.T) {
	chip := testChip(t, ondie.MfrA, 192, 0)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	patterns := core.Set12.Patterns(16)
	counts, err := core.CollectCounts(context.Background(), chip, rows, layout, patterns, core.CollectOptions{
		Windows: testWindows(),
		TempC:   80,
		Rounds:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := counts.Threshold(1e-4, 2)
	want := core.ExactProfile(chip.GroundTruthCode(), patterns)
	if !got.Equal(want) {
		for i := range got.Entries {
			if !got.Entries[i].Possible.Equal(want.Entries[i].Possible) {
				t.Errorf("pattern %v:\n got %s\nwant %s", got.Entries[i].Pattern,
					got.Entries[i].Possible, want.Entries[i].Possible)
			}
		}
		t.Fatal("collected profile diverges from analytic profile")
	}
}

// End-to-end BEER: recover each manufacturer's secret ECC function through
// the public chip interface alone and verify against ground truth.
func TestRecoverEndToEnd(t *testing.T) {
	for _, m := range []ondie.Manufacturer{ondie.MfrA, ondie.MfrB, ondie.MfrC} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			rows := 192
			if m == ondie.MfrC {
				rows = 384 // only half the rows are true-cells
			}
			chip := testChip(t, m, rows, 0)
			opts := core.DefaultRecoverOptions()
			opts.Collect.Windows = testWindows()
			opts.Collect.Rounds = 3
			rep, err := core.Recover(context.Background(), chip, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.K != 16 {
				t.Fatalf("discovered k=%d, want 16", rep.K)
			}
			if !rep.Result.Unique {
				t.Fatalf("expected unique recovery, got %d candidates", len(rep.Result.Codes))
			}
			if !rep.Result.Codes[0].EquivalentTo(chip.GroundTruthCode()) {
				t.Fatal("recovered function differs from the chip's secret function")
			}
		})
	}
}

// BEER must tolerate sporadic transient errors (paper §5.2): with a
// transient BER far above anything realistic, the threshold filter still
// produces the correct profile.
func TestRecoverRobustToTransientErrors(t *testing.T) {
	chip := testChip(t, ondie.MfrB, 192, 1e-5)
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = testWindows()
	opts.Collect.Rounds = 3
	opts.ThresholdMinCount = 3
	rep, err := core.Recover(context.Background(), chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Unique || !rep.Result.Codes[0].EquivalentTo(chip.GroundTruthCode()) {
		t.Fatal("transient errors broke recovery despite threshold filter")
	}
}

func TestExperimentRuntimeModel(t *testing.T) {
	opts := core.CollectOptions{
		Windows: []time.Duration{2 * time.Minute, 3 * time.Minute},
		Rounds:  2,
	}
	if got := core.ExperimentRuntime(opts); got != 10*time.Minute {
		t.Fatalf("runtime = %v, want 10m", got)
	}
	// Paper §6.3: 2..22 minutes in 1-minute steps is 4.2 hours for one pass.
	var paper core.CollectOptions
	for m := 2; m <= 22; m++ {
		paper.Windows = append(paper.Windows, time.Duration(m)*time.Minute)
	}
	paper.Rounds = 1
	if got := core.ExperimentRuntime(paper); got != 252*time.Minute {
		t.Fatalf("paper sweep = %v, want 4.2h (252m)", got)
	}
}

// Anti-cell collection (extension): profiles gathered from manufacturer C's
// anti-cell rows with inverted patterns must match the anti oracle.
func TestCollectedAntiProfileMatchesExact(t *testing.T) {
	chip := testChip(t, ondie.MfrC, 384, 0)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	trueRows := core.TrueRows(classes)
	antiRows := core.AntiRows(classes)
	if len(antiRows) == 0 {
		t.Fatal("manufacturer C chip must have anti-cell rows")
	}
	layout, err := core.DiscoverWordLayout(chip, trueRows, core.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	patterns := core.OneCharged(16)
	counts, err := core.CollectCounts(context.Background(), chip, antiRows, layout, patterns, core.CollectOptions{
		Windows: testWindows(),
		TempC:   80,
		Rounds:  3,
		Invert:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := counts.Threshold(1e-4, 2)
	want := core.ExactProfileAnti(chip.GroundTruthCode(), patterns)
	if !got.Equal(want) {
		for i := range got.Entries {
			if !got.Entries[i].Possible.Equal(want.Entries[i].Possible) {
				t.Errorf("pattern %v:\n got %s\nwant %s", got.Entries[i].Pattern,
					got.Entries[i].Possible, want.Entries[i].Possible)
			}
		}
		t.Fatal("collected anti profile diverges from oracle")
	}
}

// End-to-end recovery using both true- and anti-cell regions of a
// manufacturer C chip, with the lazy solver.
func TestRecoverWithAntiRowsAndLazySolver(t *testing.T) {
	chip := testChip(t, ondie.MfrC, 384, 0)
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = testWindows()
	opts.Collect.Rounds = 3
	opts.UseAntiRows = true
	opts.UseLazySolver = true
	rep, err := core.Recover(context.Background(), chip, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Unique || !rep.Result.Codes[0].EquivalentTo(chip.GroundTruthCode()) {
		t.Fatal("anti-augmented lazy recovery failed")
	}
	// The profile must contain both polarities.
	sawAnti := false
	for _, e := range rep.Profile.Entries {
		if e.Anti {
			sawAnti = true
			break
		}
	}
	if !sawAnti {
		t.Fatal("no anti entries in the combined profile")
	}
}

// Multi-chip merging (paper sec. 6.3 parallelization): counts from two chips
// of the same model combine into one profile that still recovers the code.
func TestMultiChipMerge(t *testing.T) {
	mkCounts := func(seed uint64) (*core.Counts, *ondie.Chip) {
		chip, err := ondie.New(ondie.Config{
			Manufacturer: ondie.MfrB, DataBits: 16, Banks: 1, Rows: 96,
			RegionsPerRow: 16, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
		rows := core.TrueRows(classes)
		layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
		if err != nil {
			t.Fatal(err)
		}
		counts, err := core.CollectCounts(context.Background(), chip, rows, layout, core.Set12.Patterns(16), core.CollectOptions{
			Windows: testWindows(),
			TempC:   80,
			Rounds:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return counts, chip
	}
	a, chip := mkCounts(100)
	b, _ := mkCounts(200) // same model, different physical chip
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	prof := a.Threshold(1e-4, 2)
	res, err := core.Solve(context.Background(), prof, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique || !res.Codes[0].EquivalentTo(chip.GroundTruthCode()) {
		t.Fatal("merged two-chip profile failed to recover the function")
	}
}
