package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ondie"
)

func cancelTestChip(t *testing.T) *ondie.Chip {
	t.Helper()
	return ondie.MustNew(ondie.Config{
		Manufacturer:  ondie.MfrB,
		DataBits:      16,
		Banks:         1,
		Rows:          192,
		RegionsPerRow: 16,
		Seed:          77,
	})
}

func fastOpts() core.RecoverOptions {
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = nil
	for m := 4; m <= 48; m += 4 {
		opts.Collect.Windows = append(opts.Collect.Windows, time.Duration(m)*time.Minute)
	}
	opts.Collect.Rounds = 3
	return opts
}

// TestCollectCountsPreCancelled: a cancelled context aborts collection at
// the very first pass boundary.
func TestCollectCountsPreCancelled(t *testing.T) {
	chip := cancelTestChip(t)
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = core.CollectCounts(ctx, chip, rows, layout, core.OneCharged(layout.K()), fastOpts().Collect)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CollectCounts returned %v, want context.Canceled", err)
	}
}

// TestRecoverCancelMidCollection cancels a single-chip core.Recover from its
// progress stream and checks the context error surfaces wrapped but
// errors.Is-able.
func TestRecoverCancelMidCollection(t *testing.T) {
	opts := fastOpts()
	opts.Collect.Rounds = 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes atomic.Int64
	opts.Progress = func(ev core.Event) {
		if ev.Stage == core.StageCollect && !ev.Done && passes.Add(1) == 2 {
			cancel()
		}
	}
	_, err := core.Recover(ctx, cancelTestChip(t), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Recover returned %v, want context.Canceled", err)
	}
}

// TestRecoverProgressEvents checks the event stream's shape on a successful
// run: stages in order, every stage completed, collection passes counted
// exactly, and the solve stage reporting the final candidate count.
func TestRecoverProgressEvents(t *testing.T) {
	opts := fastOpts()
	var events []core.Event
	opts.Progress = func(ev core.Event) { events = append(events, ev) }
	rep, err := core.Recover(context.Background(), cancelTestChip(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Unique {
		t.Fatalf("expected unique recovery, got %d candidates", len(rep.Result.Codes))
	}

	wantPasses := opts.Collect.Rounds * len(opts.Collect.Windows)
	var gotPasses, candidates int
	stageDone := map[core.Stage]bool{}
	lastStage := core.StageDiscover
	for i, ev := range events {
		if ev.Stage < lastStage {
			t.Fatalf("event %d: stage %v after %v", i, ev.Stage, lastStage)
		}
		lastStage = ev.Stage
		if ev.Done {
			stageDone[ev.Stage] = true
			continue
		}
		switch ev.Stage {
		case core.StageCollect:
			gotPasses++
			if ev.Pass != gotPasses || ev.Passes != wantPasses {
				t.Fatalf("event %d: pass %d/%d, want %d/%d", i, ev.Pass, ev.Passes, gotPasses, wantPasses)
			}
		case core.StageSolve:
			candidates = ev.Candidates
		}
	}
	if gotPasses != wantPasses {
		t.Fatalf("saw %d collection passes, want %d", gotPasses, wantPasses)
	}
	if candidates != len(rep.Result.Codes) {
		t.Fatalf("solve events reported %d candidates, result has %d", candidates, len(rep.Result.Codes))
	}
	for _, stage := range []core.Stage{core.StageDiscover, core.StageCollect, core.StageSolve} {
		if !stageDone[stage] {
			t.Fatalf("stage %v never reported Done", stage)
		}
	}
}
