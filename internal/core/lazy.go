package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ecc"
)

// SolveLazy is a counterexample-guided (CEGAR-style) variant of Solve for
// profiles that include multi-CHARGED patterns. Eagerly encoding every
// 2-CHARGED entry costs O(k^2) XOR gadgets per pattern; most of them never
// constrain the search. SolveLazy encodes only the 1-CHARGED entries up
// front, then repeatedly:
//
//  1. solves for a candidate code,
//  2. checks the candidate's exact profile against the deferred entries
//     (using the analytic oracle, which is cheap), and
//  3. adds the violated entries' constraints and re-solves.
//
// The result is semantically identical to Solve on the full profile; the
// paper's §7.3 lists this kind of problem-constraining as future work. The
// Result.LazyRefinements field reports how many deferred entries were
// actually needed.
func SolveLazy(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	if profile.K < 1 {
		return nil, fmt.Errorf("core: profile has no dataword bits")
	}
	r := opts.ParityBits
	if r == 0 {
		r = ecc.MinParityBits(profile.K)
	}
	maxSol := opts.MaxSolutions
	if maxSol == 0 {
		maxSol = 2
	}
	e := newEncoder(profile.K, r)
	e.s.MaxConflicts = opts.MaxConflicts
	translate := interruptFromCtx(ctx, e.s)

	var deferred []Entry
	for _, entry := range profile.Entries {
		if entry.Possible.Len() != profile.K {
			return nil, fmt.Errorf("core: entry %v has %d bits, profile has k=%d",
				entry.Pattern, entry.Possible.Len(), profile.K)
		}
		if entry.Pattern.Weight() <= 1 {
			e.addEntry(entry)
		} else {
			deferred = append(deferred, entry)
		}
	}
	added := make([]bool, len(deferred))

	res := &Result{}
	vars := e.pVars()
	start := time.Now()
	firstFound := false
	for maxSol < 0 || len(res.Codes) < maxSol {
		found, err := e.s.Solve()
		if err != nil {
			return res, fmt.Errorf("core: lazy solve: %w", translate(err))
		}
		if !found {
			res.Exhausted = true
			break
		}
		code, err := e.modelCode()
		if err != nil {
			return res, fmt.Errorf("core: SAT model is not a valid code: %w", err)
		}
		// Counterexample check against the deferred entries.
		violated := 0
		for i, entry := range deferred {
			if added[i] {
				continue
			}
			oracle := ExactProfile
			if entry.Anti {
				oracle = ExactProfileAnti
			}
			got := oracle(code, []Pattern{entry.Pattern}).Entries[0].Possible
			if !got.Equal(entry.Possible) {
				e.addEntry(entry)
				added[i] = true
				violated++
				res.LazyRefinements++
				if violated >= 8 {
					break // add a few at a time; more may be implied
				}
			}
		}
		if violated > 0 {
			continue // the candidate is refuted; re-solve with refinements
		}
		res.Codes = append(res.Codes, code)
		opts.Progress.emit(Event{Stage: StageSolve, Candidates: len(res.Codes)})
		if !firstFound {
			firstFound = true
			res.DetermineTime = time.Since(start)
			start = time.Now()
		}
		if !e.s.BlockModel(vars) {
			res.Exhausted = true
			break
		}
	}
	if firstFound {
		res.UniquenessTime = time.Since(start)
	} else {
		res.DetermineTime = time.Since(start)
	}
	res.Unique = res.Exhausted && len(res.Codes) == 1
	res.Vars = e.s.NumVars()
	res.Clauses = e.s.NumClauses()
	res.Stats = e.s.Stats
	return res, nil
}
