package core

import (
	"context"
)

// SolveLazy is the counterexample-guided (CEGAR-style) variant of Solve for
// profiles that include multi-CHARGED patterns: only the 1-CHARGED entries
// are encoded up front, and deferred entries are materialized when a
// candidate model violates them. Since the incremental engine landed this
// is the *default* behavior of SolveIncremental, and SolveLazy is a thin
// shim kept for callers of the historical name. The result is semantically
// identical to Solve on the full profile; Result.LazyRefinements reports
// how many deferred entries were actually needed and
// Result.PatternsSkipped how many never were.
func SolveLazy(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	opts.EagerEncode = false
	return SolveIncremental(ctx, profile, opts)
}
