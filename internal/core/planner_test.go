package core_test

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/ondie"
)

// oracleCollect fabricates noise-free counts for a batch of patterns from a
// known code's analytic miscorrection profile: every susceptible position
// observes errors on every word. It lets planner unit tests run the whole
// collect↔solve loop deterministically with no chip simulation.
func oracleCollect(code *ecc.Code) func(ctx context.Context, patterns []core.Pattern) (*core.Counts, error) {
	return func(_ context.Context, patterns []core.Pattern) (*core.Counts, error) {
		prof := core.ExactProfile(code, patterns)
		counts := &core.Counts{K: code.K()}
		for _, e := range prof.Entries {
			ce := core.CountEntry{Pattern: e.Pattern, Errors: make([]int64, code.K()), Words: 1000}
			for b := 0; b < code.K(); b++ {
				if e.Possible.Get(b) {
					ce.Errors[b] = 1000
				}
			}
			counts.Entries = append(counts.Entries, ce)
		}
		return counts, nil
	}
}

// TestPlannerStopsEarly drives the planner with the analytic oracle: it
// must recover the exact code uniquely while collecting strictly fewer
// patterns than the full {1,2}-CHARGED sweep, and the recovered code must
// be bit-identical to what the eager full-sweep solve finds.
func TestPlannerStopsEarly(t *testing.T) {
	k := 16
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(21, 42)))
	opts := core.DefaultRecoverOptions()

	planner, err := core.NewPlanner(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := planner.Run(context.Background(), oracleCollect(code))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatalf("planner result not unique: %d candidates (exhausted=%v)", len(res.Codes), res.Exhausted)
	}
	info := planner.Info()
	if info.PatternsFull != len(core.Set12.Patterns(k)) {
		t.Fatalf("PatternsFull = %d, want %d", info.PatternsFull, len(core.Set12.Patterns(k)))
	}
	if info.PatternsUsed >= info.PatternsFull {
		t.Fatalf("planner used %d of %d patterns; expected strictly fewer than the full sweep",
			info.PatternsUsed, info.PatternsFull)
	}
	if !info.DecidedEarly {
		t.Fatal("planner did not record an early decision")
	}

	full, err := core.Solve(context.Background(), core.ExactProfile(code, core.Set12.Patterns(k)), opts.Solve)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Unique {
		t.Fatal("full-sweep solve not unique")
	}
	if res.Codes[0].H().String() != full.Codes[0].H().String() {
		t.Fatalf("planner code differs from full-sweep code:\n%v\nvs\n%v", res.Codes[0].H(), full.Codes[0].H())
	}
}

// TestPlannerBudget: with a pattern budget below what uniqueness needs,
// the planner must stop at the budget without deciding.
func TestPlannerBudget(t *testing.T) {
	k := 16
	code := ecc.RandomHamming(k, rand.New(rand.NewPCG(5, 5)))
	opts := core.DefaultRecoverOptions()
	opts.Plan.MaxPatterns = 4
	planner, err := core.NewPlanner(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := planner.Run(context.Background(), oracleCollect(code)); err != nil {
		t.Fatal(err)
	}
	info := planner.Info()
	if info.PatternsUsed > 4 {
		t.Fatalf("planner used %d patterns, budget was 4", info.PatternsUsed)
	}
	if !planner.Done() {
		t.Fatal("planner not done after spending its budget")
	}
}

// TestPlannerAdaptiveBatches: once two candidates are known, the next
// batch must lead with a pattern the candidates disagree on — the
// solver-guided selection that makes the planner adaptive rather than a
// fixed-schedule prefix.
func TestPlannerAdaptiveBatches(t *testing.T) {
	k := 16
	// Pick a code the 1-CHARGED opening batch does NOT determine uniquely,
	// so the run actually exercises the candidate-disagreement steering.
	var code *ecc.Code
	for seed := uint64(1); seed < 64; seed++ {
		cand := ecc.RandomHamming(k, rand.New(rand.NewPCG(seed, 1)))
		res, err := core.Solve(context.Background(), core.ExactProfile(cand, core.Set1.Patterns(k)), core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unique {
			code = cand
			break
		}
	}
	if code == nil {
		t.Skip("no k=16 seed with an ambiguous 1-CHARGED profile in range")
	}
	opts := core.DefaultRecoverOptions()
	opts.Plan.Batch = 2 // tiny increments force several adaptive rounds
	planner, err := core.NewPlanner(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	collect := oracleCollect(code)
	var batches [][]core.Pattern
	for !planner.Done() {
		batch := planner.NextBatch()
		if len(batch) == 0 {
			break
		}
		batches = append(batches, batch)
		counts, err := collect(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := planner.Feed(context.Background(), counts); err != nil {
			t.Fatal(err)
		}
	}
	if !planner.Info().DecidedEarly {
		t.Fatalf("adaptive run did not decide early (used %d/%d)",
			planner.Info().PatternsUsed, planner.Info().PatternsFull)
	}
	if len(batches) < 2 {
		t.Fatalf("expected multiple batches, got %d", len(batches))
	}
	// The final profile must still pin the exact code.
	if got := planner.Profile(); got.K != k {
		t.Fatalf("profile k=%d, want %d", got.K, k)
	}
}

// TestRecoverPlannedEndToEnd is the acceptance check on the seed
// configuration (manufacturer-B simulated chip, k=16): planned recovery
// must find the bit-identical unique code the exhaustive sweep finds,
// using strictly fewer patterns.
func TestRecoverPlannedEndToEnd(t *testing.T) {
	opts := core.DefaultRecoverOptions()
	opts.Collect.Windows = testWindows()
	opts.Collect.Rounds = 3

	chipFull := testChip(t, ondie.MfrB, 192, 0)
	full, err := core.Recover(context.Background(), chipFull, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Result.Unique {
		t.Fatalf("full sweep not unique (%d candidates)", len(full.Result.Codes))
	}

	opts.UsePlanner = true
	chipPlanned := testChip(t, ondie.MfrB, 192, 0)
	planned, err := core.Recover(context.Background(), chipPlanned, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !planned.Result.Unique {
		t.Fatalf("planned recovery not unique (%d candidates)", len(planned.Result.Codes))
	}
	if planned.Plan == nil {
		t.Fatal("planned recovery carries no PlanInfo")
	}
	if planned.Plan.PatternsUsed >= planned.Plan.PatternsFull {
		t.Fatalf("planner used %d of %d patterns; want strictly fewer than the full sweep",
			planned.Plan.PatternsUsed, planned.Plan.PatternsFull)
	}
	if got, want := planned.Result.Codes[0].H().String(), full.Result.Codes[0].H().String(); got != want {
		t.Fatalf("planned code differs from full-sweep code:\n%s\nvs\n%s", got, want)
	}
	if !planned.Result.Codes[0].EquivalentTo(chipPlanned.GroundTruthCode()) {
		t.Fatal("planned recovery does not match ground truth")
	}
	if len(planned.Profile.Entries) != planned.Plan.PatternsUsed {
		t.Fatalf("profile has %d entries, plan says %d patterns used",
			len(planned.Profile.Entries), planned.Plan.PatternsUsed)
	}
}

// TestRecoverPlannedRejectsAntiRows: the planner schedules true-cell
// patterns only; combining it with anti-cell collection must fail loudly.
func TestRecoverPlannedRejectsAntiRows(t *testing.T) {
	opts := core.DefaultRecoverOptions()
	opts.UsePlanner = true
	opts.UseAntiRows = true
	if _, err := core.Recover(context.Background(), testChip(t, ondie.MfrB, 64, 0), opts); err == nil {
		t.Fatal("planner + anti rows did not error")
	}
}
