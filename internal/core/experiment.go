package core

import (
	"fmt"
	"time"
)

// Chip is the system-visible surface of a DRAM chip with on-die ECC: data
// reads/writes plus refresh and temperature control. This is all BEER is
// allowed to use (no ECC metadata, no hardware hooks). ondie.Chip implements
// it; so would a driver for real test hardware.
type Chip interface {
	Banks() int
	Rows() int
	DataBytesPerRow() int
	// RegionBytes is the ECC-word-pair granularity of the address space (32
	// bytes on the paper's chips). Knowing the region size is weaker than
	// knowing the layout: which bytes inside a region belong to which word,
	// and the dataword length, are discovered by DiscoverWordLayout.
	RegionBytes() int
	WriteRow(bank, row int, data []byte)
	ReadRow(bank, row int) []byte
	SetTemperature(celsius float64)
	PauseRefresh(d time.Duration)
}

// CellClass is the outcome of cell-layout discovery for one row.
type CellClass uint8

const (
	// ClassUnknown marks rows the discovery could not classify.
	ClassUnknown CellClass = iota
	// ClassTrue marks rows of true-cells (CHARGED = logical 1).
	ClassTrue
	// ClassAnti marks rows of anti-cells (CHARGED = logical 0).
	ClassAnti
)

func (c CellClass) String() string {
	switch c {
	case ClassTrue:
		return "true"
	case ClassAnti:
		return "anti"
	}
	return "unknown"
}

// RowRef addresses one row of one bank.
type RowRef struct{ Bank, Row int }

// LayoutOptions tunes the discovery experiments of §5.1.1 and §5.1.2.
type LayoutOptions struct {
	// Pause is the refresh pause used to expose retention errors. The
	// paper pauses for 30 minutes at temperatures up to 80 C.
	Pause time.Duration
	// TempC is the ambient temperature for the experiment.
	TempC float64
	// MinErrors is the row error count below which a pattern is considered
	// error-free for classification purposes.
	MinErrors int
}

// DefaultLayoutOptions mirror the paper's §5.1.1 experiment conditions.
func DefaultLayoutOptions() LayoutOptions {
	return LayoutOptions{Pause: 30 * time.Minute, TempC: 80, MinErrors: 8}
}

// DiscoverCellLayout implements §5.1.1: write all-ones and all-zeros test
// patterns, pause refresh, and classify each row by which pattern decays.
// True-cells fail under all-ones (logical 1 = CHARGED), anti-cells under
// all-zeros. The result maps rows to classes indexed [bank][row].
func DiscoverCellLayout(chip Chip, opts LayoutOptions) [][]CellClass {
	chip.SetTemperature(opts.TempC)
	onesErrs := countErrorsUnder(chip, 0xFF, opts.Pause)
	zeroErrs := countErrorsUnder(chip, 0x00, opts.Pause)
	classes := make([][]CellClass, chip.Banks())
	for b := range classes {
		classes[b] = make([]CellClass, chip.Rows())
		for r := range classes[b] {
			e1, e0 := onesErrs[b][r], zeroErrs[b][r]
			switch {
			case e1 >= opts.MinErrors && e1 > 4*e0:
				classes[b][r] = ClassTrue
			case e0 >= opts.MinErrors && e0 > 4*e1:
				classes[b][r] = ClassAnti
			default:
				classes[b][r] = ClassUnknown
			}
		}
	}
	return classes
}

func countErrorsUnder(chip Chip, fill byte, pause time.Duration) [][]int {
	data := make([]byte, chip.DataBytesPerRow())
	for i := range data {
		data[i] = fill
	}
	for b := 0; b < chip.Banks(); b++ {
		for r := 0; r < chip.Rows(); r++ {
			chip.WriteRow(b, r, data)
		}
	}
	chip.PauseRefresh(pause)
	errs := make([][]int, chip.Banks())
	for b := range errs {
		errs[b] = make([]int, chip.Rows())
		for r := range errs[b] {
			got := chip.ReadRow(b, r)
			count := 0
			for i, by := range got {
				diff := by ^ data[i]
				for ; diff != 0; diff &= diff - 1 {
					count++
				}
			}
			errs[b][r] = count
		}
	}
	return errs
}

// TrueRows returns the rows classified as true-cells, the regions the paper
// uses for miscorrection-profile collection.
func TrueRows(classes [][]CellClass) []RowRef {
	return rowsOfClass(classes, ClassTrue)
}

// AntiRows returns the rows classified as anti-cells, usable for the
// anti-cell profile extension (CollectOptions.Invert).
func AntiRows(classes [][]CellClass) []RowRef {
	return rowsOfClass(classes, ClassAnti)
}

func rowsOfClass(classes [][]CellClass, want CellClass) []RowRef {
	var out []RowRef
	for b, rows := range classes {
		for r, cl := range rows {
			if cl == want {
				out = append(out, RowRef{Bank: b, Row: r})
			}
		}
	}
	return out
}

// WordLayout maps a region's data bytes to ECC datawords. Words[w] lists the
// region byte offsets of word w in ascending address order, so dataword bit
// j of word w lives at region byte Words[w][j/8], bit j%8.
type WordLayout struct {
	RegionBytes int
	Words       [][]int
}

// K returns the dataword length in bits implied by the layout.
func (l WordLayout) K() int {
	if len(l.Words) == 0 {
		return 0
	}
	return 8 * len(l.Words[0])
}

// Equal reports whether two layouts map region bytes to datawords
// identically. Counts collected under unequal layouts must never merge: the
// same pattern's error counters would refer to different physical bits.
func (l WordLayout) Equal(o WordLayout) bool {
	if l.RegionBytes != o.RegionBytes || len(l.Words) != len(o.Words) {
		return false
	}
	for w := range l.Words {
		if len(l.Words[w]) != len(o.Words[w]) {
			return false
		}
		for i := range l.Words[w] {
			if l.Words[w][i] != o.Words[w][i] {
				return false
			}
		}
	}
	return true
}

// WordOf returns (word, byteInWord) for a region byte offset.
func (l WordLayout) WordOf(offset int) (int, int) {
	for w, bytes := range l.Words {
		for bi, off := range bytes {
			if off == offset {
				return w, bi
			}
		}
	}
	return -1, -1
}

// DiscoverWordLayout implements §5.1.2: program a single CHARGED cell per
// region at each byte offset in turn, induce uncorrectable errors, and
// observe that miscorrections land only within the same ECC dataword. Byte
// offsets whose errors co-occur belong to one word. rows must be true-cell
// rows (from DiscoverCellLayout).
func DiscoverWordLayout(chip Chip, rows []RowRef, opts LayoutOptions) (WordLayout, error) {
	rb := chip.RegionBytes()
	if rb <= 0 {
		return WordLayout{}, fmt.Errorf("core: chip reports region size %d", rb)
	}
	if len(rows) == 0 {
		return WordLayout{}, fmt.Errorf("core: no true-cell rows to test")
	}
	chip.SetTemperature(opts.TempC)
	parent := make([]int, rb)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	rowBytes := chip.DataBytesPerRow()
	for off := 0; off < rb; off++ {
		// Charge the whole byte at offset `off` in every region of every
		// row. Eight charged cells reach far more error syndromes than one,
		// so miscorrections land throughout the word containing the byte.
		data := make([]byte, rowBytes)
		for base := 0; base+rb <= rowBytes; base += rb {
			data[base+off] = 0xFF
		}
		for _, rr := range rows {
			chip.WriteRow(rr.Bank, rr.Row, data)
		}
		chip.PauseRefresh(opts.Pause)
		// A deviation at byte i means byte i shares an ECC word with the
		// charged byte (either the charged cells decayed or a miscorrection
		// landed there). Requiring several observations rejects sporadic
		// transient errors that would otherwise merge unrelated words.
		cooc := make([]int, rb)
		for _, rr := range rows {
			got := chip.ReadRow(rr.Bank, rr.Row)
			for i := range got {
				if got[i] != data[i] {
					cooc[i%rb]++
				}
			}
		}
		for i, n := range cooc {
			if n >= 3 {
				union(off, i)
			}
		}
	}

	groups := map[int][]int{}
	for off := 0; off < rb; off++ { // ascending, so each group list is sorted
		root := find(off)
		groups[root] = append(groups[root], off)
	}
	layout := WordLayout{RegionBytes: rb}
	// Deterministic order: group containing the lowest offset first.
	taken := make([]bool, rb)
	for off := 0; off < rb; off++ {
		g := groups[find(off)]
		if !taken[g[0]] {
			taken[g[0]] = true
			layout.Words = append(layout.Words, g)
		}
	}
	if len(layout.Words) == 0 {
		return layout, fmt.Errorf("core: word layout discovery found no groups")
	}
	size := len(layout.Words[0])
	for _, g := range layout.Words[1:] {
		if len(g) != size {
			return layout, fmt.Errorf("core: inconsistent word sizes %d vs %d; need longer pauses or more rows",
				size, len(g))
		}
	}
	return layout, nil
}
