package core

import "sync"

// DiscoveredLayout is DiscoverChip's output as one cacheable unit: the
// per-row cell classification (§5.1.1), the MaxRows-capped true-cell row
// list, and the dataword layout (§5.1.2). Cached values are shared between
// recoveries — treat every field as immutable.
type DiscoveredLayout struct {
	CellClasses [][]CellClass
	Rows        []RowRef
	Layout      WordLayout
}

// LayoutKeyer is an optional Chip extension for discovery caching: LayoutKey
// returns a string that fully determines the chip's discovery outcome — two
// freshly-constructed chips with equal keys are bit-identical, so discovery
// against one stands for both. An empty key opts the chip out of caching
// (e.g. when its configuration embeds state the key cannot capture).
type LayoutKeyer interface {
	LayoutKey() string
}

// DiscoveryCache memoizes DiscoverChip results across recoveries of
// identically-configured chips (RecoverOptions.DiscoveryCache). The key is
// the chip's LayoutKey combined with the discovery-relevant options, built
// by DiscoverChip. Implementations must be safe for concurrent use.
type DiscoveryCache interface {
	Lookup(key string) (*DiscoveredLayout, bool)
	Store(key string, d *DiscoveredLayout)
}

// discoveryCache is the standard bounded DiscoveryCache: a mutex-guarded map
// with random eviction at capacity. Random eviction suffices because the key
// population is tiny (one entry per distinct chip configuration a serving
// process sees) and a miss only costs re-running discovery.
type discoveryCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*DiscoveredLayout
}

// NewDiscoveryCache returns a DiscoveryCache holding at most max entries
// (max <= 0 selects a default of 64).
func NewDiscoveryCache(max int) DiscoveryCache {
	if max <= 0 {
		max = 64
	}
	return &discoveryCache{max: max, m: make(map[string]*DiscoveredLayout)}
}

func (c *discoveryCache) Lookup(key string) (*DiscoveredLayout, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[key]
	return d, ok
}

func (c *discoveryCache) Store(key string, d *DiscoveredLayout) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok && len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = d
}
