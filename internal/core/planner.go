package core

import (
	"context"
	"fmt"
	"time"
)

// This file implements the adaptive pattern planner: the collect↔solve
// feedback loop the paper's BEEP section (§7) hints at, applied to BEER
// itself. Instead of exhaustively sweeping the whole pattern family (§5.2)
// and solving once, the planner collects patterns in small batches, feeds
// each batch's constraints to a persistent SolveSession, and stops
// collecting the moment the ECC function is uniquely determined (or a
// budget is hit). Because most of a profile's constraint power sits in a
// small pattern subset, a planned run usually ends after a fraction of the
// full sweep — and every skipped pattern is a skipped set of refresh-pause
// experiment passes, the dominant real-hardware cost.

// PlanOptions tunes the adaptive pattern planner.
type PlanOptions struct {
	// Batch is how many patterns each collection increment requests after
	// the opening batch (the full 1-CHARGED family). Zero picks
	// max(4, k/2).
	Batch int
	// MaxPatterns caps the total patterns the planner may collect
	// (0 = the whole configured family, i.e. no early budget stop).
	MaxPatterns int
}

// PlanInfo summarizes a planned recovery for reports and result JSON.
type PlanInfo struct {
	// PatternsUsed counts patterns actually collected and fed to the
	// solver; PatternsFull is what the exhaustive sweep would have used.
	PatternsUsed, PatternsFull int
	// Batches counts collection increments.
	Batches int
	// DecidedEarly is true when the planner stopped because the solver
	// proved the answer (unique code, or proven-inconsistent profile)
	// before exhausting the pattern family.
	DecidedEarly bool
}

// Planner interleaves miscorrection-profile collection with incremental
// solving. Drive it either through Run (give it a collect callback) or
// manually: NextBatch → collect those patterns → Feed the counts → repeat
// until Done. One persistent SolveSession spans the whole run, so each
// Feed re-solves an already-hot solver with all learned clauses intact.
//
// A Planner is single-goroutine; multi-chip runs parallelize inside the
// collect callback (parallel.Engine fans each batch out across chips and
// merges the counts), which is what lets a fleet-wide collection
// short-circuit the moment any batch decides the code.
type Planner struct {
	opts    RecoverOptions
	k       int
	session *SolveSession

	remaining []Pattern
	full      int
	batchSize int
	budget    int

	used    int
	batches int
	counts  *Counts
	last    *Result
	decided bool

	collectTime, solveTime time.Duration
}

// NewPlanner builds a planner for dataword length k over the pattern
// family and solver configuration in opts. The planner needs uniqueness to
// be observable, so it refuses solver configurations that stop at the
// first candidate (MaxSolutions == 1).
func NewPlanner(k int, opts RecoverOptions) (*Planner, error) {
	if opts.Solve.MaxSolutions == 1 {
		return nil, fmt.Errorf("core: planner needs MaxSolutions != 1 to observe uniqueness")
	}
	patterns := opts.PatternSet.Patterns(k)
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: empty pattern family")
	}
	p := &Planner{
		opts:      opts,
		k:         k,
		remaining: patterns,
		full:      len(patterns),
		batchSize: opts.Plan.Batch,
		budget:    opts.Plan.MaxPatterns,
	}
	if p.batchSize <= 0 {
		p.batchSize = max(4, k/2)
	}
	if p.budget <= 0 || p.budget > p.full {
		p.budget = p.full
	}
	solveOpts := opts.Solve
	prog := solveOpts.Progress
	if prog == nil {
		prog = opts.Progress
	}
	if prog != nil {
		// Stamp solver events with planner progress so consumers (beerd
		// status, the coordinator's aggregation) see patterns-used against
		// the full-sweep total alongside the live candidate bound.
		inner := prog
		solveOpts.Progress = func(ev Event) {
			ev.PatternsUsed = p.used
			ev.PatternsPlanned = p.full
			inner(ev)
		}
	}
	session, err := NewSolveSession(k, solveOpts)
	if err != nil {
		return nil, err
	}
	p.session = session
	return p, nil
}

// Done reports whether planning is finished: the solver decided the
// answer, the pattern family is exhausted, or the budget is spent.
func (p *Planner) Done() bool {
	return p.decided || len(p.remaining) == 0 || p.used >= p.budget
}

// NextBatch selects the patterns the next collection increment should
// test and consumes them from the family. The opening batch is the
// leading 1-CHARGED run (the paper's highest-information patterns); later
// batches are solver-guided: patterns on which the currently known
// candidate codes disagree come first, since each such pattern is
// guaranteed to eliminate at least one candidate. Returns nil when Done.
func (p *Planner) NextBatch() []Pattern {
	if p.Done() {
		return nil
	}
	limit := min(p.budget-p.used, len(p.remaining))
	var take int
	if p.used == 0 {
		// Opening batch: the leading run of weight-<=1 patterns, or a
		// plain chunk when the family starts with heavier patterns.
		for take < limit && p.remaining[take].Weight() <= 1 {
			take++
		}
		if take == 0 {
			take = min(p.batchSize, limit)
		}
		batch := append([]Pattern(nil), p.remaining[:take]...)
		p.remaining = p.remaining[take:]
		p.used += len(batch)
		return batch
	}

	size := min(p.batchSize, limit)
	order := p.discriminatingOrder()
	batch := make([]Pattern, 0, size)
	picked := make(map[int]bool, size)
	for _, idx := range order {
		if len(batch) == size {
			break
		}
		batch = append(batch, p.remaining[idx])
		picked[idx] = true
	}
	for idx := 0; len(batch) < size; idx++ {
		if !picked[idx] {
			batch = append(batch, p.remaining[idx])
			picked[idx] = true
		}
	}
	rest := make([]Pattern, 0, len(p.remaining)-len(batch))
	for idx, pat := range p.remaining {
		if !picked[idx] {
			rest = append(rest, pat)
		}
	}
	p.remaining = rest
	p.used += len(batch)
	return batch
}

// discriminatingOrder returns indices into p.remaining of patterns on
// which the last enumeration's candidate codes disagree, in family order.
// Disagreement is computed with the analytic oracle, so steering costs no
// SAT work. With fewer than two known candidates it returns nothing and
// the caller falls back to family order.
func (p *Planner) discriminatingOrder() []int {
	if p.last == nil || len(p.last.Codes) < 2 || len(p.remaining) == 0 {
		return nil
	}
	codes := p.last.Codes
	if len(codes) > 4 {
		codes = codes[:4] // bound oracle cost; any disagreeing pair suffices
	}
	ref := ExactProfile(codes[0], p.remaining)
	var order []int
	for _, code := range codes[1:] {
		prof := ExactProfile(code, p.remaining)
		for idx := range p.remaining {
			if !prof.Entries[idx].Possible.Equal(ref.Entries[idx].Possible) {
				order = append(order, idx)
			}
		}
		if order != nil {
			break // one disagreeing candidate is enough to make progress
		}
	}
	return order
}

// Feed thresholds a batch's raw counts (§5.2), streams the resulting
// entries into the persistent solve session and re-enumerates. It returns
// the current Result; once it reports Unique (or a proven-inconsistent
// profile), Done becomes true and collection stops.
func (p *Planner) Feed(ctx context.Context, counts *Counts) (*Result, error) {
	start := time.Now()
	defer func() { p.solveTime += time.Since(start) }()
	p.batches++
	if p.counts == nil {
		p.counts = &Counts{K: counts.K}
	}
	p.counts.Entries = append(p.counts.Entries, counts.Entries...)
	prof := counts.Threshold(p.opts.ThresholdFraction, p.opts.ThresholdMinCount)
	if err := p.session.Feed(prof.Entries...); err != nil {
		return nil, err
	}
	res, err := p.session.Enumerate(ctx)
	if err != nil {
		return res, err
	}
	p.last = res
	if res.Exhausted && len(res.Codes) <= 1 {
		p.decided = true
	}
	return res, nil
}

// Run drives the whole collect↔solve loop: request a batch, collect it via
// the callback, feed the counts, until Done. The callback runs the actual
// experiment (single chip, or a parallel.Engine fan-out over a fleet) and
// must honor ctx. Returns the final enumeration result.
func (p *Planner) Run(ctx context.Context, collect func(ctx context.Context, patterns []Pattern) (*Counts, error)) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	for !p.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := p.NextBatch()
		if len(batch) == 0 {
			break
		}
		start := time.Now()
		counts, err := collect(ctx, batch)
		p.collectTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		if _, err := p.Feed(ctx, counts); err != nil {
			return nil, err
		}
	}
	if p.last == nil {
		return nil, fmt.Errorf("core: planner collected no patterns")
	}
	return p.last, nil
}

// Counts returns the accumulated raw observations across all batches.
func (p *Planner) Counts() *Counts { return p.counts }

// Profile returns the thresholded profile fed to the solver so far.
func (p *Planner) Profile() *Profile { return p.session.Profile() }

// Times reports how long the run spent collecting vs. solving.
func (p *Planner) Times() (collect, solve time.Duration) { return p.collectTime, p.solveTime }

// Info summarizes the plan for reports.
func (p *Planner) Info() PlanInfo {
	return PlanInfo{
		PatternsUsed: p.used,
		PatternsFull: p.full,
		Batches:      p.batches,
		DecidedEarly: p.decided && p.used < p.full,
	}
}
