package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gf2"
)

// CollectOptions tunes miscorrection-profile collection (§5.1.3).
type CollectOptions struct {
	// Windows are the refresh pauses to sweep. The paper uses 2 to 22
	// minutes in 1-minute steps at 80 C: short windows catch high-retention
	// behavior, long windows expose nearly every word to uncorrectable
	// errors.
	Windows []time.Duration
	// TempC is the ambient temperature for the sweep.
	TempC float64
	// Rounds repeats the whole window sweep with rotated pattern-to-word
	// assignments. Because each cell's retention time is fixed, rotating
	// assignments is what samples each pattern across many independent
	// cells (the paper gets this for free from millions of words).
	Rounds int
	// Invert targets anti-cell rows (extension; see Entry.Anti): the rows
	// passed to CollectCounts must then be anti-cell rows, patterns are
	// written bitwise-complemented so the intended cells are CHARGED, and
	// the resulting count entries are flagged Anti.
	Invert bool
	// Progress, when set, receives a StageCollect event after every
	// completed (round, window) pass. Event.Chip is always 0 here;
	// multi-chip callers (internal/parallel) wrap the func to stamp the
	// chip index.
	Progress ProgressFunc
}

// DefaultCollectOptions mirror §5.1.3: tREFw from 2 to 22 minutes in
// 1-minute steps at 80 C.
func DefaultCollectOptions() CollectOptions {
	opts := CollectOptions{TempC: 80, Rounds: 4}
	for m := 2; m <= 22; m++ {
		opts.Windows = append(opts.Windows, time.Duration(m)*time.Minute)
	}
	return opts
}

// sweepPasses returns how many (round, window) collection passes a sweep
// performs — the Passes total its progress events report.
func sweepPasses(opts CollectOptions) int {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	return rounds * len(opts.Windows)
}

// Counts holds raw post-correction error observations per pattern and bit,
// before threshold filtering (the data behind the paper's Figures 3 and 4).
type Counts struct {
	K       int
	Entries []CountEntry
}

// CountEntry is the observation record for one test pattern.
type CountEntry struct {
	Pattern Pattern
	// Errors[b] counts reads where data bit b differed from the written
	// pattern. At DISCHARGED positions these are miscorrections; at CHARGED
	// positions they are ambiguous (retention error or miscorrection).
	Errors []int64
	// Words counts pattern-word reads contributing to Errors.
	Words int64
	// Anti marks observations from anti-cell rows (see CollectOptions.Invert).
	Anti bool
}

// Merge adds another collection's observations into c, enabling the paper's
// §6.3 parallelization across chips of the same model: counts gathered from
// several chips (or banks) of the same design simply add. Entry lists must
// align (same patterns, same polarity, same order).
func (c *Counts) Merge(o *Counts) error {
	if c.K != o.K || len(c.Entries) != len(o.Entries) {
		return fmt.Errorf("core: merging incompatible counts (k=%d/%d, entries=%d/%d)",
			c.K, o.K, len(c.Entries), len(o.Entries))
	}
	for i := range c.Entries {
		a, b := &c.Entries[i], &o.Entries[i]
		if a.Pattern.String() != b.Pattern.String() || a.Anti != b.Anti {
			return fmt.Errorf("core: merging mismatched entry %d (%v vs %v)", i, a.Pattern, b.Pattern)
		}
		for j := range a.Errors {
			a.Errors[j] += b.Errors[j]
		}
		a.Words += b.Words
	}
	return nil
}

// Threshold converts raw counts into a boolean miscorrection profile using
// the paper's §5.2 filter: a bit is miscorrection-susceptible when its
// observation rate clearly separates from the near-zero noise floor.
// minFraction is the per-word observation rate cutoff (the paper's example
// threshold is 1e-3 on normalized probability mass); minCount is an absolute
// floor that rejects one-off transient errors.
func (c *Counts) Threshold(minFraction float64, minCount int64) *Profile {
	prof := &Profile{K: c.K}
	for _, e := range c.Entries {
		possible := gf2.NewVec(c.K)
		for b := 0; b < c.K; b++ {
			if e.Pattern.Has(b) {
				continue // ambiguous position
			}
			n := e.Errors[b]
			if n >= minCount && float64(n) >= minFraction*float64(e.Words) {
				possible.Set(b, true)
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: e.Pattern, Possible: possible, Anti: e.Anti})
	}
	return prof
}

// MiscorrectionRates returns, for each pattern, the per-bit observation rate
// (errors per word-read) at DISCHARGED positions — the quantity plotted in
// Figure 4.
func (c *Counts) MiscorrectionRates() [][]float64 {
	out := make([][]float64, len(c.Entries))
	for i, e := range c.Entries {
		rates := make([]float64, c.K)
		for b := 0; b < c.K; b++ {
			if !e.Pattern.Has(b) && e.Words > 0 {
				rates[b] = float64(e.Errors[b]) / float64(e.Words)
			}
		}
		out[i] = rates
	}
	return out
}

// CollectCounts runs the §5.1.3 experiment: program every available ECC word
// in the given true-cell rows with test patterns, sweep the refresh window,
// and record where post-correction errors appear. layout maps datawords to
// row bytes (from DiscoverWordLayout). Patterns are spread round-robin over
// the words and rotated between rounds so each pattern samples many
// independent cells.
//
// Cancelling ctx stops the sweep at the next (round, window) pass boundary
// and returns ctx.Err(); the partial counts are discarded because a profile
// with uneven per-pattern sampling would bias the §5.2 threshold filter.
func CollectCounts(ctx context.Context, chip Chip, rows []RowRef, layout WordLayout, patterns []Pattern, opts CollectOptions) (*Counts, error) {
	ctx = ctxOrBackground(ctx)
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no rows to test")
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("core: no patterns to test")
	}
	k := layout.K()
	if k == 0 {
		return nil, fmt.Errorf("core: empty word layout")
	}
	if len(opts.Windows) == 0 {
		return nil, fmt.Errorf("core: no refresh windows configured")
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	chip.SetTemperature(opts.TempC)

	rb := layout.RegionBytes
	regionsPerRow := chip.DataBytesPerRow() / rb
	wordsPerRegion := len(layout.Words)
	wordsPerRow := regionsPerRow * wordsPerRegion

	counts := &Counts{K: k}
	for _, p := range patterns {
		counts.Entries = append(counts.Entries, CountEntry{
			Pattern: p,
			Errors:  make([]int64, k),
			Anti:    opts.Invert,
		})
	}

	// Precompute each pattern's dataword bytes. In a true-cell region the
	// CHARGED bits are written as logical 1; in an anti-cell region
	// (opts.Invert) the whole dataword is complemented so the same cells
	// end up CHARGED.
	patBytes := make([][]byte, len(patterns))
	for pi, p := range patterns {
		bs := make([]byte, k/8)
		for _, bit := range p.Charged() {
			bs[bit/8] |= 1 << uint(bit%8)
		}
		if opts.Invert {
			for i := range bs {
				bs[i] = ^bs[i]
			}
		}
		patBytes[pi] = bs
	}

	rowData := make([]byte, chip.DataBytesPerRow())
	// Chips exposing ReadRowInto (ondie.Chip does) read back into one reused
	// buffer, so the sweep's read loop — rows × windows × rounds iterations —
	// allocates nothing in steady state. Other Chip implementations fall back
	// to the allocating ReadRow.
	readBuf := make([]byte, chip.DataBytesPerRow())
	readRow := func(bank, row int) []byte { return chip.ReadRow(bank, row) }
	if into, ok := chip.(rowReader); ok {
		readRow = func(bank, row int) []byte { return into.ReadRowInto(bank, row, readBuf) }
	}
	pass := 0
	passes := sweepPasses(opts)
	for round := 0; round < rounds; round++ {
		for _, window := range opts.Windows {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Rotate assignments so pattern p lands on different physical
			// words each pass (fresh retention-time draws).
			offset := pass * 7919 // prime stride decorrelates passes
			pass++
			patOf := func(rowIdx, word int) int {
				return (rowIdx*wordsPerRow + word + offset) % len(patterns)
			}
			for ri, rr := range rows {
				for w := 0; w < wordsPerRow; w++ {
					placeWord(rowData, layout, w, patBytes[patOf(ri, w)])
				}
				chip.WriteRow(rr.Bank, rr.Row, rowData)
			}
			chip.PauseRefresh(window)
			for ri, rr := range rows {
				got := readRow(rr.Bank, rr.Row)
				for w := 0; w < wordsPerRow; w++ {
					pi := patOf(ri, w)
					entry := &counts.Entries[pi]
					entry.Words++
					recordWordDiff(entry, got, layout, w, patBytes[pi])
				}
			}
			opts.Progress.emit(Event{
				Stage:  StageCollect,
				Round:  round + 1,
				Rounds: rounds,
				Window: window,
				Pass:   pass,
				Passes: passes,
			})
		}
	}
	return counts, nil
}

// rowReader is the optional fast-path extension of Chip: read a row into
// caller-owned storage instead of allocating the return slice per call.
type rowReader interface {
	ReadRowInto(bank, row int, data []byte) []byte
}

// placeWord writes a dataword's bytes into the row buffer per the layout.
func placeWord(rowData []byte, layout WordLayout, word int, data []byte) {
	region := word / len(layout.Words)
	wIn := word % len(layout.Words)
	base := region * layout.RegionBytes
	for bi, off := range layout.Words[wIn] {
		rowData[base+off] = data[bi]
	}
}

// recordWordDiff compares one word's read-back bytes against the written
// pattern and bumps per-bit error counts.
func recordWordDiff(entry *CountEntry, rowData []byte, layout WordLayout, word int, want []byte) {
	region := word / len(layout.Words)
	wIn := word % len(layout.Words)
	base := region * layout.RegionBytes
	for bi, off := range layout.Words[wIn] {
		diff := rowData[base+off] ^ want[bi]
		for ; diff != 0; diff &= diff - 1 {
			bit := trailingZeros8(diff)
			entry.Errors[8*bi+bit]++
		}
	}
}

func trailingZeros8(b byte) int {
	n := 0
	for b&1 == 0 {
		b >>= 1
		n++
	}
	return n
}
