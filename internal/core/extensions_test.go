package core

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// bruteProfileAnti mirrors bruteProfile for anti-cell regions: write the
// complemented pattern, charge = NOT bit, enumerate every retention-error
// subset of the charged cells, decode, and record unambiguous
// miscorrections.
func bruteProfileAnti(code *ecc.Code, patterns []Pattern) *Profile {
	k := code.K()
	prof := &Profile{K: k}
	for _, pat := range patterns {
		d := gf2.NewVec(k)
		for j := 0; j < k; j++ {
			d.Set(j, !pat.Has(j)) // complement: charged cells store bit 0
		}
		cw := code.Encode(d)
		// Charged cells: anti-cell convention, charge = NOT bit.
		var charged []int
		for i := 0; i < code.N(); i++ {
			if !cw.Get(i) {
				charged = append(charged, i)
			}
		}
		possible := gf2.NewVec(k)
		for mask := 1; mask < 1<<uint(len(charged)); mask++ {
			bad := cw.Clone()
			for bi, cell := range charged {
				if mask>>uint(bi)&1 == 1 {
					bad.Set(cell, true) // charge decays: bit flips 0 -> 1
				}
			}
			got := code.Decode(bad).Data
			for b := 0; b < k; b++ {
				if !pat.Has(b) && got.Get(b) != d.Get(b) {
					possible.Set(b, true)
				}
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible, Anti: true})
	}
	return prof
}

func TestExactProfileAntiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(50, 51))
	shapes := []struct{ k, r int }{{4, 3}, {5, 4}, {8, 4}, {10, 5}}
	for _, shape := range shapes {
		for trial := 0; trial < 5; trial++ {
			code := ecc.RandomHammingWithParity(shape.k, shape.r, rng)
			// Keep charged sets small: brute force enumerates subsets of all
			// charged cells, which for anti regions is nearly the whole word.
			patterns := append(OneCharged(shape.k), TwoCharged(shape.k)...)
			got := ExactProfileAnti(code, patterns)
			want := bruteProfileAnti(code, patterns)
			if !got.Equal(want) {
				for i := range got.Entries {
					if !got.Entries[i].Possible.Equal(want.Entries[i].Possible) {
						t.Errorf("(k=%d,r=%d) pattern %v:\n got %s\nwant %s", shape.k, shape.r,
							got.Entries[i].Pattern, got.Entries[i].Possible, want.Entries[i].Possible)
					}
				}
				t.Fatal("anti oracle disagrees with brute force")
			}
		}
	}
}

// The anti-cell SAT encoding must accept the true code and reject others:
// solving a combined true+anti profile still recovers the original code.
func TestSolveWithAntiEntries(t *testing.T) {
	rng := rand.New(rand.NewPCG(52, 53))
	for trial := 0; trial < 4; trial++ {
		code := ecc.RandomHammingWithParity(8, 4, rng)
		patterns := Set12.Patterns(8)
		combined := ExactProfile(code, patterns).Append(ExactProfileAnti(code, patterns))
		res, err := Solve(context.Background(), combined, SolveOptions{ParityBits: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unique || !res.Codes[0].EquivalentTo(code) {
			t.Fatalf("trial %d: combined profile did not recover the code (%d solutions)",
				trial, len(res.Codes))
		}
	}
}

// Anti-cell profiles carry row-parity information, so they can disambiguate
// codes that 1-CHARGED true-cell profiles alone cannot. Quantify: the
// candidate count with true+anti 1-CHARGED must never exceed the count with
// true-only 1-CHARGED.
func TestAntiProfilesNarrowTheSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(54, 55))
	improved := 0
	for trial := 0; trial < 8; trial++ {
		code := ecc.RandomHammingWithParity(7, 4, rng)
		pats := OneCharged(7)
		trueOnly := ExactProfile(code, pats)
		resTrue, err := Solve(context.Background(), trueOnly, SolveOptions{ParityBits: 4, MaxSolutions: -1})
		if err != nil {
			t.Fatal(err)
		}
		both := trueOnly.Append(ExactProfileAnti(code, pats))
		resBoth, err := Solve(context.Background(), both, SolveOptions{ParityBits: 4, MaxSolutions: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(resBoth.Codes) > len(resTrue.Codes) {
			t.Fatalf("anti profile added solutions: %d -> %d", len(resTrue.Codes), len(resBoth.Codes))
		}
		if len(resBoth.Codes) < len(resTrue.Codes) {
			improved++
		}
		// The true code always remains a solution.
		found := false
		for _, c := range resBoth.Codes {
			if c.EquivalentTo(code) {
				found = true
			}
		}
		if !found {
			t.Fatal("true code eliminated by anti constraints")
		}
	}
	if improved == 0 {
		t.Log("anti profiles never narrowed the search in this sample (allowed but unexpected)")
	}
}

// SolveLazy must agree with Solve on every outcome.
func TestSolveLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewPCG(56, 57))
	for trial := 0; trial < 6; trial++ {
		k := 6 + rng.IntN(6)
		code := ecc.RandomHamming(k, rng)
		prof := ExactProfile(code, Set12.Patterns(k))
		eager, err := Solve(context.Background(), prof, SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: -1})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := SolveLazy(context.Background(), prof, SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(eager.Codes) != len(lazy.Codes) || eager.Unique != lazy.Unique {
			t.Fatalf("k=%d: eager %d codes (unique=%v), lazy %d codes (unique=%v)",
				k, len(eager.Codes), eager.Unique, len(lazy.Codes), lazy.Unique)
		}
		eagerKeys := map[string]bool{}
		for _, c := range eager.Codes {
			eagerKeys[c.CanonicalKey()] = true
		}
		for _, c := range lazy.Codes {
			if !eagerKeys[c.CanonicalKey()] {
				t.Fatalf("k=%d: lazy found a code eager did not", k)
			}
		}
	}
}

// The lazy solver should materialize only a fraction of the 2-CHARGED
// entries.
func TestSolveLazyDefersMostEntries(t *testing.T) {
	rng := rand.New(rand.NewPCG(58, 59))
	code := ecc.RandomHamming(16, rng)
	prof := ExactProfile(code, Set12.Patterns(16))
	lazy, err := SolveLazy(context.Background(), prof, SolveOptions{ParityBits: code.ParityBits()})
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.Unique || !lazy.Codes[0].EquivalentTo(code) {
		t.Fatal("lazy solver failed to recover the code")
	}
	total := len(TwoCharged(16))
	if lazy.LazyRefinements >= total/2 {
		t.Fatalf("lazy solver materialized %d/%d deferred entries; expected far fewer",
			lazy.LazyRefinements, total)
	}
	t.Logf("lazy refinements: %d of %d deferred entries", lazy.LazyRefinements, total)
}

func TestCountsMerge(t *testing.T) {
	mk := func() *Counts {
		return &Counts{K: 4, Entries: []CountEntry{
			{Pattern: NewPattern(0), Errors: []int64{0, 1, 2, 3}, Words: 10},
			{Pattern: NewPattern(1), Errors: []int64{4, 0, 0, 1}, Words: 10},
		}}
	}
	a, b := mk(), mk()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Entries[0].Words != 20 || a.Entries[0].Errors[3] != 6 {
		t.Fatalf("merge arithmetic wrong: %+v", a.Entries[0])
	}
	bad := mk()
	bad.Entries[1].Pattern = NewPattern(2)
	if err := mk().Merge(bad); err == nil {
		t.Fatal("mismatched patterns must not merge")
	}
	short := &Counts{K: 4, Entries: bad.Entries[:1]}
	if err := mk().Merge(short); err == nil {
		t.Fatal("mismatched entry counts must not merge")
	}
	polar := mk()
	polar.Entries[0].Anti = true
	if err := mk().Merge(polar); err == nil {
		t.Fatal("mismatched polarity must not merge")
	}
}

func TestProfileAppend(t *testing.T) {
	code := ecc.Hamming74()
	a := ExactProfile(code, OneCharged(4))
	b := ExactProfileAnti(code, OneCharged(4))
	both := a.Append(b)
	if len(both.Entries) != 8 {
		t.Fatalf("appended profile has %d entries", len(both.Entries))
	}
	if !both.Entries[7].Anti || both.Entries[0].Anti {
		t.Fatal("polarity flags lost in append")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("appending mismatched k must panic")
		}
	}()
	a.Append(&Profile{K: 5})
}

// DiscoverParityBits must find the true width for minimum-redundancy codes
// and for codes deliberately built with one extra parity bit.
func TestDiscoverParityBits(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 61))
	// Minimum-redundancy code: k=11 -> r=4.
	code := ecc.RandomHamming(11, rng)
	prof := ExactProfile(code, Set12.Patterns(11))
	r, res, err := DiscoverParityBits(context.Background(), prof, SolveOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("discovered r=%d, want 4", r)
	}
	if !res.Codes[0].EquivalentTo(code) {
		t.Fatal("wrong code at discovered width")
	}

	// Over-provisioned code: k=8 with r=5 (minimum is 4). The profile of the
	// wider code is typically unsatisfiable at r=4, so the search must move
	// on and succeed at r=5.
	wide := ecc.RandomHammingWithParity(8, 5, rng)
	wprof := ExactProfile(wide, Set12.Patterns(8))
	r, res, err = DiscoverParityBits(context.Background(), wprof, SolveOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r < 4 || r > 5 {
		t.Fatalf("discovered r=%d, want 4 or 5", r)
	}
	if r == 5 && !res.Codes[0].EquivalentTo(wide) {
		t.Fatal("wrong code at discovered width 5")
	}
	// Whatever width was found, the candidate must reproduce the profile.
	cand := res.Codes[0]
	if !ExactProfile(cand, Set12.Patterns(8)).Equal(stripAnti(wprof)) {
		t.Fatal("candidate does not reproduce the observed profile")
	}
}

// stripAnti is an identity helper for readability in the test above (the
// profile has no anti entries; this documents the comparison is pure
// true-cell).
func stripAnti(p *Profile) *Profile { return p }

func TestCoverageReport(t *testing.T) {
	c := &Counts{K: 4, Entries: []CountEntry{
		{Pattern: NewPattern(0), Errors: []int64{0, 900, 1, 0}, Words: 1000},
		{Pattern: NewPattern(1), Errors: []int64{0, 0, 3, 0}, Words: 1000},
	}}
	cov := c.Coverage(1e-3, 2)
	if cov.Patterns != 2 || cov.WordsMin != 1000 || cov.WordsMax != 1000 {
		t.Fatalf("coverage basics wrong: %+v", cov)
	}
	// Pattern 0: bit 1 strongly positive; bit 2 nonzero-below-threshold
	// (marginal); bit 3 zero. Pattern 1: bit 2 is 3/1000 with cut=2 ->
	// positive but within 2x of cut -> marginal.
	if cov.PositiveBits != 2 {
		t.Fatalf("positive = %d, want 2", cov.PositiveBits)
	}
	if cov.ZeroBits != 3 {
		t.Fatalf("zero = %d, want 3", cov.ZeroBits)
	}
	if len(cov.Marginal) != 2 {
		t.Fatalf("marginal = %+v, want 2 entries", cov.Marginal)
	}
	if s := cov.String(); !strings.Contains(s, "marginal") {
		t.Fatalf("report missing marginal section: %s", s)
	}
}

// Property (testing/quick): a profile's Possible set never intersects the
// pattern's charged set, for random codes and random patterns, in both
// polarities.
func TestProfileDisjointFromChargedQuick(t *testing.T) {
	f := func(seed uint64, pick uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		k := 5 + int(seed%10)
		code := ecc.RandomHamming(k, rng)
		a := int(pick) % k
		b := (int(pick) / k) % k
		pat := NewPattern(a, b)
		for _, prof := range []*Profile{
			ExactProfile(code, []Pattern{pat}),
			ExactProfileAnti(code, []Pattern{pat}),
		} {
			for _, ch := range pat.Charged() {
				if prof.Entries[0].Possible.Get(ch) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): profiles are invariant under parity-row
// permutation (code equivalence), for both polarities.
func TestProfileEquivalenceInvariantQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		k := 5 + int(seed%8)
		code := ecc.RandomHamming(k, rng)
		perm := code.Canonicalize()
		pats := OneCharged(k)
		return ExactProfile(code, pats).Equal(ExactProfile(perm, pats)) &&
			ExactProfileAnti(code, pats).Equal(ExactProfileAnti(perm, pats))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
