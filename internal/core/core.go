// Package core implements BEER (Bit-Exact ECC Recovery), the paper's primary
// contribution: determining a DRAM chip's full on-die ECC function — its
// parity-check matrix — using only software-visible post-correction errors.
//
// The methodology (paper §4-§5) has three steps, all implemented here:
//
//  1. Induce miscorrections: write carefully-crafted k-CHARGED test patterns,
//     pause refresh to cause uncorrectable data-retention errors, and read
//     back (CollectCounts, run against any Chip implementation). Supporting
//     discovery steps identify the true-/anti-cell layout (§5.1.1,
//     DiscoverCellLayout) and the dataword-to-address mapping (§5.1.2,
//     DiscoverWordLayout).
//  2. Analyze post-correction errors: a threshold filter turns raw
//     observation counts into a boolean miscorrection profile, rejecting
//     sporadic transient errors (§5.2, Counts.Threshold).
//  3. Solve for the ECC function: a SAT encoding over the unknown entries of
//     the standard-form parity-check matrix H = [P | I] finds every code
//     consistent with the profile (§5.3, Solve), including the uniqueness
//     check.
//
// The package also provides an exact miscorrection-profile oracle
// (ExactProfile) derived analytically from the retention-error model, used
// for the correctness evaluation (paper §6.1) without Monte-Carlo noise.
//
// Entry points: Recover is the whole methodology against one Chip (with
// RecoverOptions.UsePlanner it becomes RecoverPlanned, the adaptive
// collect↔solve loop); Observe is its experimental front half (discovery +
// collection) for callers that aggregate across chips (internal/parallel
// does); SolveIncremental/SolveSession are the incremental solve engine
// (Solve and SolveLazy are thin shims over it); Planner interleaves
// collection with solving and stops at uniqueness; SolveStage is the
// cache-aware solve used by both exhaustive Recover paths.
// Profile.Canonical/Profile.Hash define the profile's content address —
// the key of the recovered-code registry (internal/store) — and SolveCache
// is the interface through which a registry short-circuits repeated solves
// of the same fingerprint.
//
// Invariants: every long-running entry point takes a context and stops at
// the next safe boundary (collection pass, SAT conflict); partial
// experimental data is discarded on cancellation, because an unevenly
// sampled profile would bias the §5.2 threshold filter; progress callbacks
// (ProgressFunc) are serialized per run.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Pattern is a test pattern identified by the set of CHARGED data-bit
// positions (paper §4.2.3). For a true-cell region, CHARGED means logical
// '1'; collection code handles the polarity.
type Pattern struct {
	charged []int // sorted, deduplicated
}

// NewPattern builds a pattern from charged data-bit indices.
func NewPattern(charged ...int) Pattern {
	c := append([]int(nil), charged...)
	sort.Ints(c)
	out := c[:0]
	for i, v := range c {
		if i > 0 && v == c[i-1] {
			continue
		}
		out = append(out, v)
	}
	return Pattern{charged: out}
}

// Charged returns the sorted charged data-bit indices.
func (p Pattern) Charged() []int { return append([]int(nil), p.charged...) }

// Weight returns the number of charged bits.
func (p Pattern) Weight() int { return len(p.charged) }

// Has reports whether data bit b is charged in the pattern.
func (p Pattern) Has(b int) bool {
	i := sort.SearchInts(p.charged, b)
	return i < len(p.charged) && p.charged[i] == b
}

// String renders the pattern as e.g. "C{3}" or "C{3,17}".
func (p Pattern) String() string {
	var b strings.Builder
	b.Grow(3 + 3*len(p.charged))
	b.WriteString("C{")
	for i, c := range p.charged {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	b.WriteByte('}')
	return b.String()
}

// OneCharged returns the k patterns with exactly one CHARGED data bit.
func OneCharged(k int) []Pattern {
	out := make([]Pattern, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, Pattern{charged: []int{i}})
	}
	return out
}

// TwoCharged returns the k-choose-2 patterns with exactly two CHARGED bits.
func TwoCharged(k int) []Pattern {
	out := make([]Pattern, 0, k*(k-1)/2)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			out = append(out, Pattern{charged: []int{i, j}})
		}
	}
	return out
}

// NCharged returns all patterns with exactly w CHARGED bits among k. The
// count is k choose w; callers are responsible for keeping w small.
func NCharged(k, w int) []Pattern {
	if w < 0 || w > k {
		return nil
	}
	var out []Pattern
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, Pattern{charged: append([]int(nil), idx...)})
		// Advance the combination.
		i := w - 1
		for i >= 0 && idx[i] == k-w+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < w; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// PatternSet names the pattern families the paper evaluates (Figure 5).
type PatternSet int

const (
	// Set1 is the 1-CHARGED patterns alone.
	Set1 PatternSet = iota
	// Set2 is the 2-CHARGED patterns alone.
	Set2
	// Set3 is the 3-CHARGED patterns alone.
	Set3
	// Set12 is the union of 1- and 2-CHARGED patterns, which the paper shows
	// uniquely identifies every evaluated code.
	Set12
)

func (ps PatternSet) String() string {
	switch ps {
	case Set1:
		return "1-CHARGED"
	case Set2:
		return "2-CHARGED"
	case Set3:
		return "3-CHARGED"
	case Set12:
		return "{1,2}-CHARGED"
	}
	return fmt.Sprintf("PatternSet(%d)", int(ps))
}

// Patterns materializes the pattern family for dataword length k.
func (ps PatternSet) Patterns(k int) []Pattern {
	switch ps {
	case Set1:
		return OneCharged(k)
	case Set2:
		return TwoCharged(k)
	case Set3:
		return NCharged(k, 3)
	case Set12:
		return append(OneCharged(k), TwoCharged(k)...)
	}
	panic(fmt.Sprintf("core: unknown pattern set %d", int(ps)))
}
