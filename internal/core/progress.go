package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sat"
)

// Stage identifies one phase of the BEER pipeline (paper §5). Progress
// events carry the stage so consumers — CLI status lines, the beerd job
// service — can report where a long-running recovery currently is.
type Stage int

const (
	// StageDiscover covers cell-layout (§5.1.1) and word-layout (§5.1.2)
	// discovery.
	StageDiscover Stage = iota
	// StageCollect covers miscorrection-profile collection over the refresh
	// window sweep (§5.1.3).
	StageCollect
	// StageSolve covers the SAT determine + uniqueness phases (§5.3).
	StageSolve
)

func (s Stage) String() string {
	switch s {
	case StageDiscover:
		return "discover"
	case StageCollect:
		return "collect"
	case StageSolve:
		return "solve"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Event is one progress report from a running pipeline. Events are emitted
// at stage boundaries, after every collection pass (one refresh window of
// one round), and whenever the solver finds another candidate code.
type Event struct {
	// Stage is the pipeline phase the event belongs to.
	Stage Stage
	// Chip is the index of the chip the event concerns in a multi-chip run
	// (always 0 for single-chip runs).
	Chip int
	// Round and Rounds report collection-round progress (1-based; zero
	// outside StageCollect).
	Round, Rounds int
	// Window is the refresh window of the completed collection pass.
	Window time.Duration
	// Pass and Passes count completed (round, window) collection passes
	// (1-based; Passes = Rounds * len(Windows)).
	Pass, Passes int
	// Candidates is the number of candidate codes found so far (StageSolve).
	Candidates int
	// Conflicts, Propagations and LearnedClauses snapshot the run's
	// cumulative SAT-solver counters at emission time (StageSolve events
	// from the incremental engine; zero elsewhere). Counters only grow
	// within a run — beerd folds them into its monotonic progress stream
	// and /healthz solver totals.
	Conflicts, Propagations, LearnedClauses int64
	// Races counts portfolio-backend solver races so far (zero on
	// single-engine backends). Monotonic within a run, like the counters
	// above.
	Races int64
	// Competitors carries the portfolio backend's per-competitor win/loss/
	// timeout records at emission time (nil on single-engine backends).
	// The slice is a snapshot owned by the event — consumers may retain it.
	Competitors []sat.CompetitorStat
	// PatternsUsed and PatternsPlanned report adaptive-planner progress:
	// how many test patterns have been collected and fed to the solver so
	// far, out of the full family the exhaustive sweep would use (zero
	// outside planner runs).
	PatternsUsed, PatternsPlanned int
	// DroppedEntries reports noisy-recovery progress (StageSolve events
	// from a NoisySolveSession): how many profile entries the drop-k
	// relaxation has retracted so far. Monotonic within a run; zero on
	// exact solves.
	DroppedEntries int
	// Confidence is the noisy solve's current confidence in the surviving
	// candidate set, in [0, 1] (see NoiseInfo.Confidence). Zero outside
	// noisy StageSolve events.
	Confidence float64
	// Done marks the completion of the event's stage (for Chip).
	Done bool
}

// ProgressFunc consumes pipeline progress events. Implementations must be
// safe for concurrent use when the pipeline runs multiple chips in parallel
// (internal/parallel serializes per-engine-run events, but the same func may
// be shared across concurrent jobs) and must not block: events are emitted
// synchronously from the experiment hot path.
type ProgressFunc func(Event)

// emit invokes fn with ev when fn is non-nil.
func (fn ProgressFunc) emit(ev Event) {
	if fn != nil {
		fn(ev)
	}
}

// ctxOrBackground normalizes a possibly-nil context.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
