package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"
	"strings"
)

// This file defines the canonical, content-addressable identity of a
// miscorrection profile. The profile is BEER's ECC-function fingerprint
// (paper §5.1.3): two experiments that observe the same fingerprint must
// recover the same set of candidate codes, so the profile's canonical hash is
// the natural key for a registry of recovered functions (the paper's §7
// "BEER database", internal/store). Hashing the profile rather than the
// recovered code lets a server short-circuit the expensive SAT search when a
// byte-identical fingerprint arrives again.

// canonicalVersion tags the serialization format. Bump it if the rendering
// below ever changes — a silent change would fragment content-addressed
// stores built on the old hashes.
const canonicalVersion = 1

// Canonical renders the profile in its normalized serialization, the
// preimage of Hash. Normalization makes the rendering independent of
// collection order: entries are sorted by polarity, then pattern, then
// susceptibility set, and exact duplicates collapse to one line. Two
// profiles have equal Canonical bytes iff they carry identical
// pattern-miscorrection information, even if the entries were gathered in
// different orders or some were observed twice (e.g. true-cell and anti-cell
// sweeps appended in either order).
//
// The format is line-oriented and versioned:
//
//	beerprof v1 k=<k>
//	[anti ]C{...} <possible bits>
//	...
func (p *Profile) Canonical() []byte {
	type line struct {
		anti    bool
		charged []int
		poss    string
	}
	lines := make([]line, 0, len(p.Entries))
	for _, e := range p.Entries {
		lines = append(lines, line{anti: e.Anti, charged: e.Pattern.Charged(), poss: e.Possible.String()})
	}
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.anti != b.anti {
			return !a.anti // true-cell entries first
		}
		if c := slices.Compare(a.charged, b.charged); c != 0 {
			return c < 0
		}
		return a.poss < b.poss
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "beerprof v%d k=%d\n", canonicalVersion, p.K)
	var prev *line
	for i := range lines {
		l := &lines[i]
		if prev != nil && prev.anti == l.anti && prev.poss == l.poss && slices.Equal(prev.charged, l.charged) {
			continue // duplicate observation carries no extra information
		}
		if l.anti {
			sb.WriteString("anti ")
		}
		sb.WriteString(NewPattern(l.charged...).String())
		sb.WriteByte(' ')
		sb.WriteString(l.poss)
		sb.WriteByte('\n')
		prev = l
	}
	return []byte(sb.String())
}

// Hash returns the profile's content address: the lowercase hex SHA-256 of
// Canonical. Profiles with the same hash impose the same constraints on the
// parity-check matrix, so a solver result cached under the hash replays
// exactly (see SolveCache and internal/store).
func (p *Profile) Hash() string {
	sum := sha256.Sum256(p.Canonical())
	return hex.EncodeToString(sum[:])
}

// SolveCache short-circuits the solve stage of Recover: before invoking the
// SAT search, the pipeline asks the cache for a Result previously computed
// for a profile with the same canonical hash, and after a successful search
// it offers the fresh Result back. Implementations must be safe for
// concurrent use; internal/store provides one backed by the durable
// content-addressed code registry.
//
// Results are keyed by the profile alone, not by SolveOptions: callers that
// vary ParityBits or MaxSolutions between runs must not share one cache, or
// a run could replay a result enumerated under different solver limits.
type SolveCache interface {
	// Lookup returns the cached result for the profile's hash, if any.
	Lookup(p *Profile) (*Result, bool)
	// Store records a successful solve for the profile's hash.
	Store(p *Profile, res *Result)
}
