package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/sat"
)

// SolveOptions controls the SAT-based ECC-function search.
type SolveOptions struct {
	// ParityBits fixes the number of parity-check bits r. Zero selects the
	// minimum for the profile's dataword length (the paper's chips all use
	// minimum-redundancy SEC codes).
	ParityBits int
	// MaxSolutions caps how many distinct codes the search enumerates.
	// Zero means 2: enough to answer "unique or not" (the paper's
	// determine-then-check-uniqueness flow). Negative means unlimited.
	MaxSolutions int
	// MaxConflicts bounds SAT effort per Solve call (0 = unlimited).
	MaxConflicts int64
	// Progress, when set, receives a StageSolve event each time the search
	// finds another candidate code.
	Progress ProgressFunc
}

// interruptFromCtx wires context cancellation into a solver: the solver
// polls the hook at every conflict and restart. The returned translate
// function maps sat.ErrInterrupted back to the context's error.
func interruptFromCtx(ctx context.Context, s *sat.Solver) (translate func(error) error) {
	s.Interrupt = func() bool { return ctx.Err() != nil }
	return func(err error) error {
		if errors.Is(err, sat.ErrInterrupted) {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		return err
	}
}

// Result reports the codes consistent with a miscorrection profile.
type Result struct {
	// Codes lists every ECC function found, in discovery order.
	Codes []*ecc.Code
	// Unique is true when exactly one code exists and the search proved it.
	Unique bool
	// Exhausted is true when the search space was fully explored (rather
	// than stopped by MaxSolutions).
	Exhausted bool
	// DetermineTime covers finding the first solution; UniquenessTime covers
	// proving uniqueness / enumerating the rest (paper Figure 6 reports the
	// two phases separately).
	DetermineTime  time.Duration
	UniquenessTime time.Duration
	// Vars and Clauses describe the CNF encoding size.
	Vars, Clauses int
	// LazyRefinements counts deferred pattern entries that SolveLazy had to
	// materialize (always zero for the eager Solve).
	LazyRefinements int
	Stats           sat.Stats
}

// encoder builds the CNF over the unknown standard-form parity-check matrix
// H = [P | I]: one SAT variable per P entry.
type encoder struct {
	s    *sat.Solver
	k, r int
	pVar [][]int // pVar[i][j] = variable of P[i][j]
	// rowParity[i] reifies XOR of row i of P over all k columns, built on
	// first use (needed only for anti-cell entries).
	rowParity []sat.Lit
}

func newEncoder(k, r int) *encoder {
	e := &encoder{s: sat.New(), k: k, r: r}
	e.pVar = make([][]int, r)
	for i := 0; i < r; i++ {
		e.pVar[i] = make([]int, k)
		for j := 0; j < k; j++ {
			e.pVar[i][j] = e.s.NewVar()
		}
	}
	e.addCodeValidity()
	e.addSymmetryBreaking()
	return e
}

func (e *encoder) p(i, j int) sat.Lit { return sat.PosLit(e.pVar[i][j]) }

// addCodeValidity asserts the basic linear-code constraints (paper §5.3
// constraint 1): every H column nonzero and pairwise distinct. In standard
// form the parity columns are fixed unit vectors, so each data column needs
// weight >= 2 (weight 1 would duplicate a parity column) and data columns
// must differ from each other.
func (e *encoder) addCodeValidity() {
	for j := 0; j < e.k; j++ {
		col := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			col[i] = e.p(i, j)
		}
		e.s.AddClause(col...) // nonzero
		// Weight >= 2: any set bit implies another set bit.
		for i := 0; i < e.r; i++ {
			cl := make([]sat.Lit, 0, e.r)
			cl = append(cl, e.p(i, j).Not())
			for i2 := 0; i2 < e.r; i2++ {
				if i2 != i {
					cl = append(cl, e.p(i2, j))
				}
			}
			e.s.AddClause(cl...)
		}
	}
	// Pairwise distinct data columns.
	for j1 := 0; j1 < e.k; j1++ {
		for j2 := j1 + 1; j2 < e.k; j2++ {
			diff := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				diff[i] = e.s.ReifyXor2(e.p(i, j1), e.p(i, j2))
			}
			e.s.AddClause(diff...)
		}
	}
}

// addSymmetryBreaking orders the rows of P lexicographically (columns read
// left to right, 0 < 1). Codes that differ only by a permutation of parity
// rows are equivalent — externally indistinguishable (see ecc.EquivalentTo)
// — and every profile constraint is invariant under row permutation, so this
// keeps exactly one canonical representative per equivalence class. Without
// it the solver would report spurious "non-unique" results for codes the
// paper counts as one function.
func (e *encoder) addSymmetryBreaking() {
	for i := 0; i+1 < e.r; i++ {
		eq := e.s.True() // rows equal on all columns considered so far
		for j := 0; j < e.k; j++ {
			// If still equal, row i may not have a 1 where row i+1 has a 0.
			e.s.AddClause(eq.Not(), e.p(i, j).Not(), e.p(i+1, j))
			if j+1 < e.k {
				same := e.s.ReifyXor2(e.p(i, j), e.p(i+1, j)).Not()
				eq = e.s.ReifyAnd(eq, same)
			}
		}
	}
}

// addEntry encodes one miscorrection-profile row (paper §5.3 constraint 3).
//
// Using the DESIGN.md §4 closed form: for pattern S and candidate bit b, a
// miscorrection is possible iff for some class-representative subset T of S,
// every parity row i with sigma_i = 0 has (XOR_{j in T} P[i][j]) = P[i][b],
// where sigma_i = XOR_{j in S} P[i][j]. Subsets T and S\T give identical
// conditions, so representatives are the subsets excluding S's first element.
func (e *encoder) addEntry(entry Entry) {
	if entry.Anti {
		e.addEntryAnti(entry)
		return
	}
	s := entry.Pattern.Charged()
	if len(s) == 1 {
		e.addEntry1(s[0], entry)
		return
	}
	// sigma_i literals, shared across all b for this pattern.
	sigma := make([]sat.Lit, e.r)
	for i := 0; i < e.r; i++ {
		lits := make([]sat.Lit, len(s))
		for x, j := range s {
			lits[x] = e.p(i, j)
		}
		sigma[i] = e.s.ReifyXor(lits...)
	}
	// Per-representative-subset row XORs over T (excluding b's column).
	rest := s[1:]
	nSub := 1 << uint(len(rest))
	baseXor := make([][]sat.Lit, nSub) // baseXor[m][i] = XOR_{j in T_m} P[i][j]; nil slice entry means empty T
	for m := 0; m < nSub; m++ {
		var members []int
		for bi, j := range rest {
			if m>>uint(bi)&1 == 1 {
				members = append(members, j)
			}
		}
		if len(members) == 0 {
			baseXor[m] = nil
			continue
		}
		row := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, len(members))
			for x, j := range members {
				lits[x] = e.p(i, j)
			}
			row[i] = e.s.ReifyXor(lits...)
		}
		baseXor[m] = row
	}
	for b := 0; b < e.k; b++ {
		if entry.Pattern.Has(b) {
			continue
		}
		conds := make([]sat.Lit, 0, nSub)
		for m := 0; m < nSub; m++ {
			rowConds := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				var d sat.Lit // XOR_{j in T} P[i][j] XOR P[i][b]
				if baseXor[m] == nil {
					d = e.p(i, b)
				} else {
					d = e.s.ReifyXor2(baseXor[m][i], e.p(i, b))
				}
				// Condition per row: sigma_i OR NOT d_i.
				rowConds[i] = e.s.ReifyOr(sigma[i], d.Not())
			}
			conds = append(conds, e.s.ReifyAnd(rowConds...))
		}
		poss := e.s.ReifyOr(conds...)
		if entry.Possible.Get(b) {
			e.s.AddClause(poss)
		} else {
			e.s.AddClause(poss.Not())
		}
	}
}

// addEntry1 is the optimized 1-CHARGED encoding: a miscorrection at b is
// possible iff column b's support is contained in column a's support, which
// needs no XOR reification at all.
func (e *encoder) addEntry1(a int, entry Entry) {
	for b := 0; b < e.k; b++ {
		if b == a {
			continue
		}
		if entry.Possible.Get(b) {
			// Containment: P[i][b] -> P[i][a] for every row.
			for i := 0; i < e.r; i++ {
				e.s.AddClause(e.p(i, b).Not(), e.p(i, a))
			}
		} else {
			// Violation in some row: P[i][b] AND NOT P[i][a].
			viol := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				viol[i] = e.s.ReifyAnd(e.p(i, b), e.p(i, a).Not())
			}
			e.s.AddClause(viol...)
		}
	}
}

// rowParityLits lazily reifies the parity of each P row over all columns.
func (e *encoder) rowParityLits() []sat.Lit {
	if e.rowParity == nil {
		e.rowParity = make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, e.k)
			for j := 0; j < e.k; j++ {
				lits[j] = e.p(i, j)
			}
			e.rowParity[i] = e.s.ReifyXor(lits...)
		}
	}
	return e.rowParity
}

// addEntryAnti encodes an anti-cell-region profile entry (see
// ExactProfileAnti for the condition). Unlike the true-cell case, the
// condition involves rowParity and the error subsets T of S do not pair up,
// so all 2^|S| subsets are enumerated.
func (e *encoder) addEntryAnti(entry Entry) {
	s := entry.Pattern.Charged()
	rp := e.rowParityLits()
	// discharged_i = rowParity_i XOR sigma_i (parity cell i NOT charged).
	discharged := make([]sat.Lit, e.r)
	for i := 0; i < e.r; i++ {
		lits := make([]sat.Lit, 0, len(s)+1)
		lits = append(lits, rp[i])
		for _, j := range s {
			lits = append(lits, e.p(i, j))
		}
		discharged[i] = e.s.ReifyXor(lits...)
	}
	nSub := 1 << uint(len(s))
	baseXor := make([][]sat.Lit, nSub)
	for m := 0; m < nSub; m++ {
		var members []int
		for bi, j := range s {
			if m>>uint(bi)&1 == 1 {
				members = append(members, j)
			}
		}
		if len(members) == 0 {
			continue
		}
		row := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, len(members))
			for x, j := range members {
				lits[x] = e.p(i, j)
			}
			row[i] = e.s.ReifyXor(lits...)
		}
		baseXor[m] = row
	}
	for b := 0; b < e.k; b++ {
		if entry.Pattern.Has(b) {
			continue
		}
		conds := make([]sat.Lit, 0, nSub)
		for m := 0; m < nSub; m++ {
			rowConds := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				var d sat.Lit
				if baseXor[m] == nil {
					d = e.p(i, b)
				} else {
					d = e.s.ReifyXor2(baseXor[m][i], e.p(i, b))
				}
				// Row condition: discharged_i -> d_i = 0.
				rowConds[i] = e.s.ReifyOr(discharged[i].Not(), d.Not())
			}
			conds = append(conds, e.s.ReifyAnd(rowConds...))
		}
		poss := e.s.ReifyOr(conds...)
		if entry.Possible.Get(b) {
			e.s.AddClause(poss)
		} else {
			e.s.AddClause(poss.Not())
		}
	}
}

// modelCode converts the solver's current model into a Code.
func (e *encoder) modelCode() (*ecc.Code, error) {
	p := gf2.NewMat(e.r, e.k)
	for i := 0; i < e.r; i++ {
		for j := 0; j < e.k; j++ {
			p.Set(i, j, e.s.Value(e.pVar[i][j]))
		}
	}
	return ecc.New(p)
}

// pVars returns the flat list of P variables, for model blocking.
func (e *encoder) pVars() []int {
	out := make([]int, 0, e.r*e.k)
	for i := 0; i < e.r; i++ {
		out = append(out, e.pVar[i]...)
	}
	return out
}

// Solve finds the ECC functions consistent with a miscorrection profile
// (paper §5.3). The first solution is the "determine function" phase; the
// continued enumeration (with blocking clauses) is the "check uniqueness"
// phase. Cancelling ctx interrupts the SAT search at its next conflict or
// restart and returns ctx.Err().
func Solve(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	if profile.K < 1 {
		return nil, fmt.Errorf("core: profile has no dataword bits")
	}
	r := opts.ParityBits
	if r == 0 {
		r = ecc.MinParityBits(profile.K)
	}
	maxSol := opts.MaxSolutions
	if maxSol == 0 {
		maxSol = 2
	}
	e := newEncoder(profile.K, r)
	e.s.MaxConflicts = opts.MaxConflicts
	translate := interruptFromCtx(ctx, e.s)
	for _, entry := range profile.Entries {
		if entry.Possible.Len() != profile.K {
			return nil, fmt.Errorf("core: entry %v has %d bits, profile has k=%d",
				entry.Pattern, entry.Possible.Len(), profile.K)
		}
		e.addEntry(entry)
	}
	res := &Result{Vars: e.s.NumVars(), Clauses: e.s.NumClauses()}

	start := time.Now()
	found, err := e.s.Solve()
	res.DetermineTime = time.Since(start)
	if err != nil {
		return res, fmt.Errorf("core: determine phase: %w", translate(err))
	}
	if !found {
		res.Exhausted = true
		res.Stats = e.s.Stats
		return res, nil
	}
	code, err := e.modelCode()
	if err != nil {
		return res, fmt.Errorf("core: SAT model is not a valid code: %w", err)
	}
	res.Codes = append(res.Codes, code)
	opts.Progress.emit(Event{Stage: StageSolve, Candidates: len(res.Codes)})

	start = time.Now()
	vars := e.pVars()
	for maxSol < 0 || len(res.Codes) < maxSol {
		if !e.s.BlockModel(vars) {
			res.Exhausted = true
			break
		}
		found, err := e.s.Solve()
		if err != nil {
			res.UniquenessTime = time.Since(start)
			res.Stats = e.s.Stats
			return res, fmt.Errorf("core: uniqueness phase: %w", translate(err))
		}
		if !found {
			res.Exhausted = true
			break
		}
		code, err := e.modelCode()
		if err != nil {
			return res, fmt.Errorf("core: SAT model is not a valid code: %w", err)
		}
		res.Codes = append(res.Codes, code)
		opts.Progress.emit(Event{Stage: StageSolve, Candidates: len(res.Codes)})
	}
	res.UniquenessTime = time.Since(start)
	res.Unique = res.Exhausted && len(res.Codes) == 1
	res.Stats = e.s.Stats
	return res, nil
}
