package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/sat"
)

// SolveOptions controls the SAT-based ECC-function search.
type SolveOptions struct {
	// ParityBits fixes the number of parity-check bits r. Zero selects the
	// minimum for the profile's dataword length (the paper's chips all use
	// minimum-redundancy SEC codes).
	ParityBits int
	// MaxSolutions caps how many distinct codes the search enumerates.
	// Zero means 2: enough to answer "unique or not" (the paper's
	// determine-then-check-uniqueness flow). Negative means unlimited.
	MaxSolutions int
	// MaxConflicts bounds SAT effort per Solve call (0 = unlimited).
	MaxConflicts int64
	// EagerEncode encodes every profile entry up front instead of deferring
	// multi-CHARGED entries for counterexample-guided refinement. Eager is
	// the historical Solve behavior; the deferred default usually encodes a
	// small fraction of the entries (Result.PatternsSkipped reports how
	// many were never needed).
	EagerEncode bool
	// Backend, when set, supplies the SAT backend a solve session builds
	// on (one fresh backend per session). Nil selects the in-process CDCL
	// engine; sat.NewDimacs gives an engine that additionally records the
	// CNF for export to external solvers.
	Backend func() sat.Backend
	// Noisy, when set, routes the solve through the noise-tolerant
	// NoisySolveSession (see noisy.go): every profile entry becomes
	// retractable behind a guard literal and a drop-k relaxation loop
	// retracts the least-supported entries of successive UNSAT cores until
	// a code is found (or the drop budget is spent). Nil keeps the exact
	// path, which treats every entry as ground truth.
	Noisy *NoisyOptions
	// Progress, when set, receives a StageSolve event each time the search
	// finds another candidate code (with the run's cumulative solver
	// counters attached).
	Progress ProgressFunc
}

// backend materializes the configured SAT backend.
func (o SolveOptions) backend() sat.Backend {
	if o.Backend != nil {
		if b := o.Backend(); b != nil {
			return b
		}
	}
	return sat.New()
}

// interruptFromCtx wires context cancellation into a backend: the solver
// polls the hook at every conflict, restart and 64th decision. The returned
// translate function maps sat.ErrInterrupted back to the context's error.
func interruptFromCtx(ctx context.Context, b sat.Backend) (translate func(error) error) {
	b.Interrupt(func() bool { return ctx.Err() != nil })
	return func(err error) error {
		if errors.Is(err, sat.ErrInterrupted) {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		return err
	}
}

// Result reports the codes consistent with a miscorrection profile.
type Result struct {
	// Codes lists every ECC function found, in discovery order.
	Codes []*ecc.Code
	// Unique is true when exactly one code exists and the search proved it.
	Unique bool
	// Exhausted is true when the search space was fully explored (rather
	// than stopped by MaxSolutions).
	Exhausted bool
	// DetermineTime covers finding the first solution; UniquenessTime covers
	// proving uniqueness / enumerating the rest (paper Figure 6 reports the
	// two phases separately).
	DetermineTime  time.Duration
	UniquenessTime time.Duration
	// Vars and Clauses describe the CNF encoding size.
	Vars, Clauses int
	// PatternsUsed counts profile entries actually encoded into the CNF;
	// PatternsSkipped counts entries the deferred (incremental) engine
	// never had to materialize. Eager solves use every entry.
	PatternsUsed, PatternsSkipped int
	// LazyRefinements counts deferred pattern entries materialized because
	// a candidate model violated them (always zero for eager solves).
	LazyRefinements int
	// Noise reports the drop-k relaxation outcome of a noisy solve
	// (SolveOptions.Noisy): entries retained vs dropped, the confidence of
	// the surviving candidate set, and the support margin between the
	// retained and dropped sets. Nil for exact solves.
	Noise *NoiseInfo
	Stats sat.Stats
}

// encoder builds the CNF over the unknown standard-form parity-check matrix
// H = [P | I]: one SAT variable per P entry.
type encoder struct {
	s    sat.Backend
	k, r int
	pVar [][]int // pVar[i][j] = variable of P[i][j]
	// rowParity[i] reifies XOR of row i of P over all k columns, built on
	// first use (needed only for anti-cell entries).
	rowParity []sat.Lit
	// guard, when guarded is set, weakens every top-level constraint clause
	// the entry encoders assert (see assert): the clause holds only when
	// the guard literal is true, so assuming the guard activates the entry
	// and leaving it unassumed retracts it — the retractable-constraint
	// primitive NoisySolveSession's drop-k relaxation is built on. Tseitin
	// definitional clauses stay unguarded: they only define auxiliary
	// variables and are satisfiable under any P assignment, so sharing them
	// across entries (sigma, rowParity) remains sound.
	guard   sat.Lit
	guarded bool
}

func newEncoder(k, r int, b sat.Backend) *encoder {
	if b == nil {
		b = sat.New()
	}
	e := &encoder{s: b, k: k, r: r}
	e.pVar = make([][]int, r)
	for i := 0; i < r; i++ {
		e.pVar[i] = make([]int, k)
		for j := 0; j < k; j++ {
			e.pVar[i][j] = e.s.NewVar()
		}
	}
	e.addCodeValidity()
	e.addSymmetryBreaking()
	return e
}

func (e *encoder) p(i, j int) sat.Lit { return sat.PosLit(e.pVar[i][j]) }

// setGuard makes subsequent addEntry calls assert their constraint clauses
// behind ¬g; clearGuard restores unconditional assertion.
func (e *encoder) setGuard(g sat.Lit) { e.guard, e.guarded = g, true }
func (e *encoder) clearGuard()        { e.guarded = false }

// assert adds a top-level entry-constraint clause, weakened by the active
// guard when one is set.
func (e *encoder) assert(lits ...sat.Lit) {
	if !e.guarded {
		e.s.Add(lits...)
		return
	}
	cl := make([]sat.Lit, 0, len(lits)+1)
	cl = append(cl, lits...)
	cl = append(cl, e.guard.Not())
	e.s.Add(cl...)
}

// addCodeValidity asserts the basic linear-code constraints (paper §5.3
// constraint 1): every H column nonzero and pairwise distinct. In standard
// form the parity columns are fixed unit vectors, so each data column needs
// weight >= 2 (weight 1 would duplicate a parity column) and data columns
// must differ from each other.
func (e *encoder) addCodeValidity() {
	for j := 0; j < e.k; j++ {
		col := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			col[i] = e.p(i, j)
		}
		e.s.Add(col...) // nonzero
		// Weight >= 2: any set bit implies another set bit.
		for i := 0; i < e.r; i++ {
			cl := make([]sat.Lit, 0, e.r)
			cl = append(cl, e.p(i, j).Not())
			for i2 := 0; i2 < e.r; i2++ {
				if i2 != i {
					cl = append(cl, e.p(i2, j))
				}
			}
			e.s.Add(cl...)
		}
	}
	// Pairwise distinct data columns.
	for j1 := 0; j1 < e.k; j1++ {
		for j2 := j1 + 1; j2 < e.k; j2++ {
			diff := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				diff[i] = sat.ReifyXor2(e.s, e.p(i, j1), e.p(i, j2))
			}
			e.s.Add(diff...)
		}
	}
}

// addSymmetryBreaking orders the rows of P lexicographically (columns read
// left to right, 0 < 1). Codes that differ only by a permutation of parity
// rows are equivalent — externally indistinguishable (see ecc.EquivalentTo)
// — and every profile constraint is invariant under row permutation, so this
// keeps exactly one canonical representative per equivalence class. Without
// it the solver would report spurious "non-unique" results for codes the
// paper counts as one function.
func (e *encoder) addSymmetryBreaking() {
	for i := 0; i+1 < e.r; i++ {
		eq := sat.True(e.s) // rows equal on all columns considered so far
		for j := 0; j < e.k; j++ {
			// If still equal, row i may not have a 1 where row i+1 has a 0.
			e.s.Add(eq.Not(), e.p(i, j).Not(), e.p(i+1, j))
			if j+1 < e.k {
				same := sat.ReifyXor2(e.s, e.p(i, j), e.p(i+1, j)).Not()
				eq = sat.ReifyAnd(e.s, eq, same)
			}
		}
	}
}

// addEntry encodes one miscorrection-profile row (paper §5.3 constraint 3).
//
// Using the DESIGN.md §4 closed form: for pattern S and candidate bit b, a
// miscorrection is possible iff for some class-representative subset T of S,
// every parity row i with sigma_i = 0 has (XOR_{j in T} P[i][j]) = P[i][b],
// where sigma_i = XOR_{j in S} P[i][j]. Subsets T and S\T give identical
// conditions, so representatives are the subsets excluding S's first element.
func (e *encoder) addEntry(entry Entry) {
	if entry.Anti {
		e.addEntryAnti(entry)
		return
	}
	s := entry.Pattern.Charged()
	if len(s) == 1 {
		e.addEntry1(s[0], entry)
		return
	}
	// sigma_i literals, shared across all b for this pattern.
	sigma := make([]sat.Lit, e.r)
	for i := 0; i < e.r; i++ {
		lits := make([]sat.Lit, len(s))
		for x, j := range s {
			lits[x] = e.p(i, j)
		}
		sigma[i] = sat.ReifyXor(e.s, lits...)
	}
	// Per-representative-subset row XORs over T (excluding b's column).
	rest := s[1:]
	nSub := 1 << uint(len(rest))
	baseXor := make([][]sat.Lit, nSub) // baseXor[m][i] = XOR_{j in T_m} P[i][j]; nil slice entry means empty T
	for m := 0; m < nSub; m++ {
		var members []int
		for bi, j := range rest {
			if m>>uint(bi)&1 == 1 {
				members = append(members, j)
			}
		}
		if len(members) == 0 {
			baseXor[m] = nil
			continue
		}
		row := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, len(members))
			for x, j := range members {
				lits[x] = e.p(i, j)
			}
			row[i] = sat.ReifyXor(e.s, lits...)
		}
		baseXor[m] = row
	}
	for b := 0; b < e.k; b++ {
		if entry.Pattern.Has(b) {
			continue
		}
		conds := make([]sat.Lit, 0, nSub)
		for m := 0; m < nSub; m++ {
			rowConds := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				var d sat.Lit // XOR_{j in T} P[i][j] XOR P[i][b]
				if baseXor[m] == nil {
					d = e.p(i, b)
				} else {
					d = sat.ReifyXor2(e.s, baseXor[m][i], e.p(i, b))
				}
				// Condition per row: sigma_i OR NOT d_i.
				rowConds[i] = sat.ReifyOr(e.s, sigma[i], d.Not())
			}
			conds = append(conds, sat.ReifyAnd(e.s, rowConds...))
		}
		poss := sat.ReifyOr(e.s, conds...)
		if entry.Possible.Get(b) {
			e.assert(poss)
		} else {
			e.assert(poss.Not())
		}
	}
}

// addEntry1 is the optimized 1-CHARGED encoding: a miscorrection at b is
// possible iff column b's support is contained in column a's support, which
// needs no XOR reification at all.
func (e *encoder) addEntry1(a int, entry Entry) {
	for b := 0; b < e.k; b++ {
		if b == a {
			continue
		}
		if entry.Possible.Get(b) {
			// Containment: P[i][b] -> P[i][a] for every row.
			for i := 0; i < e.r; i++ {
				e.assert(e.p(i, b).Not(), e.p(i, a))
			}
		} else {
			// Violation in some row: P[i][b] AND NOT P[i][a].
			viol := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				viol[i] = sat.ReifyAnd(e.s, e.p(i, b), e.p(i, a).Not())
			}
			e.assert(viol...)
		}
	}
}

// rowParityLits lazily reifies the parity of each P row over all columns.
func (e *encoder) rowParityLits() []sat.Lit {
	if e.rowParity == nil {
		e.rowParity = make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, e.k)
			for j := 0; j < e.k; j++ {
				lits[j] = e.p(i, j)
			}
			e.rowParity[i] = sat.ReifyXor(e.s, lits...)
		}
	}
	return e.rowParity
}

// addEntryAnti encodes an anti-cell-region profile entry (see
// ExactProfileAnti for the condition). Unlike the true-cell case, the
// condition involves rowParity and the error subsets T of S do not pair up,
// so all 2^|S| subsets are enumerated.
func (e *encoder) addEntryAnti(entry Entry) {
	s := entry.Pattern.Charged()
	rp := e.rowParityLits()
	// discharged_i = rowParity_i XOR sigma_i (parity cell i NOT charged).
	discharged := make([]sat.Lit, e.r)
	for i := 0; i < e.r; i++ {
		lits := make([]sat.Lit, 0, len(s)+1)
		lits = append(lits, rp[i])
		for _, j := range s {
			lits = append(lits, e.p(i, j))
		}
		discharged[i] = sat.ReifyXor(e.s, lits...)
	}
	nSub := 1 << uint(len(s))
	baseXor := make([][]sat.Lit, nSub)
	for m := 0; m < nSub; m++ {
		var members []int
		for bi, j := range s {
			if m>>uint(bi)&1 == 1 {
				members = append(members, j)
			}
		}
		if len(members) == 0 {
			continue
		}
		row := make([]sat.Lit, e.r)
		for i := 0; i < e.r; i++ {
			lits := make([]sat.Lit, len(members))
			for x, j := range members {
				lits[x] = e.p(i, j)
			}
			row[i] = sat.ReifyXor(e.s, lits...)
		}
		baseXor[m] = row
	}
	for b := 0; b < e.k; b++ {
		if entry.Pattern.Has(b) {
			continue
		}
		conds := make([]sat.Lit, 0, nSub)
		for m := 0; m < nSub; m++ {
			rowConds := make([]sat.Lit, e.r)
			for i := 0; i < e.r; i++ {
				var d sat.Lit
				if baseXor[m] == nil {
					d = e.p(i, b)
				} else {
					d = sat.ReifyXor2(e.s, baseXor[m][i], e.p(i, b))
				}
				// Row condition: discharged_i -> d_i = 0.
				rowConds[i] = sat.ReifyOr(e.s, discharged[i].Not(), d.Not())
			}
			conds = append(conds, sat.ReifyAnd(e.s, rowConds...))
		}
		poss := sat.ReifyOr(e.s, conds...)
		if entry.Possible.Get(b) {
			e.assert(poss)
		} else {
			e.assert(poss.Not())
		}
	}
}

// modelCode converts the solver's current model into a Code.
func (e *encoder) modelCode() (*ecc.Code, error) {
	p := gf2.NewMat(e.r, e.k)
	for i := 0; i < e.r; i++ {
		for j := 0; j < e.k; j++ {
			p.Set(i, j, e.s.Value(e.pVar[i][j]))
		}
	}
	return ecc.New(p)
}

// pVars returns the flat list of P variables, for model blocking.
func (e *encoder) pVars() []int {
	out := make([]int, 0, e.r*e.k)
	for i := 0; i < e.r; i++ {
		out = append(out, e.pVar[i]...)
	}
	return out
}

// Solve finds the ECC functions consistent with a miscorrection profile
// (paper §5.3) with every entry encoded eagerly — the historical entry
// point, now a thin shim over the incremental engine (see SolveIncremental
// and SolveSession; the solver instance, with all its learned clauses,
// persists across the determine phase and the uniqueness blocking-clause
// loop). Cancelling ctx interrupts the SAT search at its next conflict,
// restart or 64th decision and returns ctx.Err().
func Solve(ctx context.Context, profile *Profile, opts SolveOptions) (*Result, error) {
	opts.EagerEncode = true
	return SolveIncremental(ctx, profile, opts)
}
