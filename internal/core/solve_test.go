package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/ecc"
)

func solveFor(t *testing.T, code *ecc.Code, set PatternSet, maxSol int) *Result {
	t.Helper()
	prof := ExactProfile(code, set.Patterns(code.K()))
	res, err := Solve(context.Background(), prof, SolveOptions{ParityBits: code.ParityBits(), MaxSolutions: maxSol})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSolveRecoversHamming74(t *testing.T) {
	code := ecc.Hamming74()
	res := solveFor(t, code, Set1, 0)
	if !res.Unique {
		t.Fatalf("full-length (7,4) code should be unique under 1-CHARGED; got %d codes", len(res.Codes))
	}
	if !res.Codes[0].EquivalentTo(code) {
		t.Fatalf("recovered wrong code:\n%s\nwant\n%s", res.Codes[0].H(), code.H())
	}
}

// Paper Figure 5 / §6.1: full-length codes are uniquely identified by the
// 1-CHARGED patterns alone.
func TestSolveFullLengthUniqueWith1Charged(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	for _, k := range []int{4, 11} {
		for trial := 0; trial < 5; trial++ {
			code := ecc.RandomHamming(k, rng)
			if !code.FullLength() {
				t.Fatalf("k=%d should be full-length", k)
			}
			res := solveFor(t, code, Set1, 0)
			if !res.Unique {
				t.Fatalf("k=%d trial %d: expected unique, got %d codes", k, trial, len(res.Codes))
			}
			if !res.Codes[0].EquivalentTo(code) {
				t.Fatalf("k=%d trial %d: wrong code recovered", k, trial)
			}
		}
	}
}

// Paper Figure 5: the {1,2}-CHARGED patterns uniquely identify every code,
// including shortened ones.
func TestSolveShortenedUniqueWith12Charged(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 89))
	shapes := []struct{ k, r int }{{5, 4}, {8, 4}, {12, 5}, {16, 5}}
	for _, sh := range shapes {
		for trial := 0; trial < 3; trial++ {
			code := ecc.RandomHammingWithParity(sh.k, sh.r, rng)
			res := solveFor(t, code, Set12, 0)
			if !res.Unique {
				t.Fatalf("(k=%d,r=%d) trial %d: expected unique under {1,2}-CHARGED, got %d codes",
					sh.k, sh.r, trial, len(res.Codes))
			}
			if !res.Codes[0].EquivalentTo(code) {
				t.Fatalf("(k=%d,r=%d) trial %d: wrong code recovered", sh.k, sh.r, trial)
			}
		}
	}
}

// For shortened codes the 1-CHARGED patterns may admit several candidates
// (paper §6.1). Every candidate must (a) include the true code and (b)
// reproduce the observed profile exactly — i.e. the enumeration is sound and
// complete even when not unique.
func TestSolveShortenedEnumerationSoundness(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	for trial := 0; trial < 6; trial++ {
		code := ecc.RandomHammingWithParity(6, 4, rng)
		patterns := Set1.Patterns(6)
		prof := ExactProfile(code, patterns)
		res, err := Solve(context.Background(), prof, SolveOptions{ParityBits: 4, MaxSolutions: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exhausted {
			t.Fatal("unlimited enumeration must exhaust the space")
		}
		foundTrue := false
		seen := map[string]bool{}
		for _, cand := range res.Codes {
			if seen[cand.CanonicalKey()] {
				t.Fatal("enumeration returned equivalent duplicates")
			}
			seen[cand.CanonicalKey()] = true
			if cand.EquivalentTo(code) {
				foundTrue = true
			}
			if !ExactProfile(cand, patterns).Equal(prof) {
				t.Fatal("candidate does not reproduce the observed profile")
			}
		}
		if !foundTrue {
			t.Fatal("true code missing from enumeration")
		}
	}
}

// A contradictory profile must yield no solutions rather than a bogus code.
func TestSolveContradictoryProfile(t *testing.T) {
	code := ecc.Hamming74()
	prof := ExactProfile(code, OneCharged(4))
	// Claim that charging bit 1 can miscorrect bit 0 AND that charging bit 0
	// cannot miscorrect anything: impossible for any (7,4) SEC code because
	// col0 would need to be inside col1 while nothing is inside col0.
	prof.Entries[1].Possible.Set(0, true)
	for b := 1; b < 4; b++ {
		prof.Entries[0].Possible.Set(b, false)
	}
	res, err := Solve(context.Background(), prof, SolveOptions{ParityBits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codes) != 0 || !res.Exhausted {
		t.Fatalf("contradictory profile produced %d codes", len(res.Codes))
	}
}

func TestSolveMaxSolutionsCap(t *testing.T) {
	// An empty profile (no constraints beyond validity) has many solutions;
	// the cap must stop enumeration early.
	prof := &Profile{K: 6}
	res, err := Solve(context.Background(), prof, SolveOptions{ParityBits: 4, MaxSolutions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Codes) != 3 || res.Exhausted || res.Unique {
		t.Fatalf("cap violated: %d codes, exhausted=%v", len(res.Codes), res.Exhausted)
	}
}

func TestSolveReportsEncodingSize(t *testing.T) {
	code := ecc.Hamming74()
	res := solveFor(t, code, Set1, 0)
	if res.Vars < 12 || res.Clauses == 0 {
		t.Fatalf("implausible encoding size: %d vars, %d clauses", res.Vars, res.Clauses)
	}
	if res.DetermineTime <= 0 {
		t.Fatal("determine-phase time not recorded")
	}
}

// The number of 1-CHARGED-consistent candidates must never be lower for a
// weaker pattern set: {1,2} refines 1-CHARGED.
func TestPatternSetMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	for trial := 0; trial < 4; trial++ {
		code := ecc.RandomHammingWithParity(7, 4, rng)
		n1 := len(solveFor(t, code, Set1, -1).Codes)
		n12 := len(solveFor(t, code, Set12, -1).Codes)
		if n12 > n1 {
			t.Fatalf("{1,2}-CHARGED found %d codes, more than 1-CHARGED's %d", n12, n1)
		}
		if n12 != 1 {
			t.Fatalf("{1,2}-CHARGED should be unique, found %d", n12)
		}
	}
}

// Recovery for a larger, paper-representative shortened code: 32 data bits.
func TestSolveK32(t *testing.T) {
	if testing.Short() {
		t.Skip("k=32 recovery is slow in -short mode")
	}
	rng := rand.New(rand.NewPCG(5, 6))
	code := ecc.RandomHamming(32, rng)
	res := solveFor(t, code, Set12, 0)
	if !res.Unique {
		t.Fatalf("expected unique recovery for k=32, got %d codes", len(res.Codes))
	}
	if !res.Codes[0].EquivalentTo(code) {
		t.Fatal("wrong code recovered for k=32")
	}
}
