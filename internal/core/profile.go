package core

import (
	"fmt"
	"strings"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Entry records, for one test pattern, which DISCHARGED data bits can ever
// exhibit a miscorrection (paper Table 2: a row of the miscorrection
// profile). Bits at CHARGED positions are excluded — an error there is
// ambiguous ('?' in the paper) because it may be an ordinary data-retention
// error rather than a miscorrection.
type Entry struct {
	Pattern  Pattern
	Possible gf2.Vec // length k; set bits mark miscorrection-susceptible positions
	// Anti marks an entry collected from an anti-cell region (charge is the
	// complement of the logical bit). Anti-cell entries obey a different
	// miscorrection condition involving the parity-check rows' parities and
	// therefore carry extra information about H — an extension beyond the
	// paper, which uses true-cell regions only (§5.1.3).
	Anti bool
}

// Profile is a miscorrection profile: the cumulative pattern-miscorrection
// pairs for a set of test patterns (paper §5.1.3). It is the fingerprint
// from which BEER recovers the ECC function.
type Profile struct {
	K       int
	Entries []Entry
}

// String renders the profile like the paper's Table 2: one line per pattern,
// '-' for impossible, '1' for possible, '?' for charged (ambiguous).
func (p *Profile) String() string {
	var sb strings.Builder
	for _, e := range p.Entries {
		tag := ""
		if e.Anti {
			tag = "anti "
		}
		fmt.Fprintf(&sb, "%s%-12s [", tag, e.Pattern)
		for b := 0; b < p.K; b++ {
			switch {
			case e.Pattern.Has(b):
				sb.WriteByte('?')
			case e.Possible.Get(b):
				sb.WriteByte('1')
			default:
				sb.WriteByte('-')
			}
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Equal reports whether two profiles have identical patterns and
// susceptibility sets (pattern order matters).
func (p *Profile) Equal(o *Profile) bool {
	if p.K != o.K || len(p.Entries) != len(o.Entries) {
		return false
	}
	for i := range p.Entries {
		a, b := p.Entries[i], o.Entries[i]
		if a.Pattern.String() != b.Pattern.String() || a.Anti != b.Anti || !a.Possible.Equal(b.Possible) {
			return false
		}
	}
	return true
}

// Append returns a profile containing both profiles' entries (e.g. true-cell
// and anti-cell observations of the same chip). Dataword lengths must match.
func (p *Profile) Append(o *Profile) *Profile {
	if p.K != o.K {
		panic(fmt.Sprintf("core: appending profiles of different k (%d vs %d)", p.K, o.K))
	}
	out := &Profile{K: p.K}
	out.Entries = append(out.Entries, p.Entries...)
	out.Entries = append(out.Entries, o.Entries...)
	return out
}

// ExactProfile computes the miscorrection profile of a known code
// analytically, with no Monte-Carlo simulation. It implements the closed
// form derived in DESIGN.md §4 from the paper's §4.2.2-4.2.3 analysis:
//
// For a true-cell region and pattern with CHARGED data set S, the encoded
// codeword's CHARGED parity cells are support(sigma), sigma = sum of H
// columns over S. Retention errors are any T subset of S (data) plus any
// m subset of support(sigma) (parity); a miscorrection at data bit b not in
// S requires sum_T H_col + m = H_col(b) for some choice, i.e.
// (sum_T H_col XOR H_col(b)) within support(sigma).
func ExactProfile(code *ecc.Code, patterns []Pattern) *Profile {
	k := code.K()
	r := code.ParityBits()
	// Columns packed as uint64 for speed (r <= 64 by ecc invariant).
	cols := make([]uint64, k)
	for j := 0; j < k; j++ {
		cols[j] = code.Column(j).Uint64()
	}
	full := ^uint64(0)
	if r < 64 {
		full = (1 << uint(r)) - 1
	}
	prof := &Profile{K: k, Entries: make([]Entry, 0, len(patterns))}
	for _, pat := range patterns {
		s := pat.Charged()
		var sigma uint64
		for _, j := range s {
			sigma ^= cols[j]
		}
		notSigma := ^sigma & full
		// Enumerate error subsets T of S; 2^|S| is small (|S| <= 3 in all
		// paper configurations).
		subsets := make([]uint64, 0, 1<<uint(len(s)))
		for mask := 0; mask < 1<<uint(len(s)); mask++ {
			var v uint64
			for bi, j := range s {
				if mask>>uint(bi)&1 == 1 {
					v ^= cols[j]
				}
			}
			subsets = append(subsets, v)
		}
		possible := gf2.NewVec(k)
		for b := 0; b < k; b++ {
			if pat.Has(b) {
				continue
			}
			for _, v := range subsets {
				if (v^cols[b])&notSigma == 0 {
					possible.Set(b, true)
					break
				}
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible})
	}
	return prof
}

// ExactProfileAnti computes the miscorrection profile of a known code for
// patterns written to an *anti-cell* region (extension; see Entry.Anti).
//
// Writing the bitwise complement of a pattern to an anti-cell region charges
// exactly the pattern's data cells, but the parity cells' charges depend on
// the encoded parity of the complemented dataword: parity bit i of the
// complement of S is rowParity_i XOR sigma_i, where rowParity_i is the
// parity of row i of P over all k data columns, and a parity *cell* is
// CHARGED when that bit is 0. A miscorrection at data bit b not in S is
// possible iff for some error subset T of S, every row i with
// (rowParity XOR sigma)_i = 1 has (sum_T H_col XOR H_col(b))_i = 0.
// The rowParity term is information the true-cell profile cannot see.
func ExactProfileAnti(code *ecc.Code, patterns []Pattern) *Profile {
	k := code.K()
	r := code.ParityBits()
	cols := make([]uint64, k)
	var rowParity uint64
	for j := 0; j < k; j++ {
		cols[j] = code.Column(j).Uint64()
		rowParity ^= cols[j]
	}
	full := ^uint64(0)
	if r < 64 {
		full = (1 << uint(r)) - 1
	}
	prof := &Profile{K: k, Entries: make([]Entry, 0, len(patterns))}
	for _, pat := range patterns {
		s := pat.Charged()
		var sigma uint64
		for _, j := range s {
			sigma ^= cols[j]
		}
		// Rows whose parity cell is DISCHARGED (bit 1): the error subset's
		// syndrome must vanish there.
		discharged := (rowParity ^ sigma) & full
		subsets := make([]uint64, 0, 1<<uint(len(s)))
		for mask := 0; mask < 1<<uint(len(s)); mask++ {
			var v uint64
			for bi, j := range s {
				if mask>>uint(bi)&1 == 1 {
					v ^= cols[j]
				}
			}
			subsets = append(subsets, v)
		}
		possible := gf2.NewVec(k)
		for b := 0; b < k; b++ {
			if pat.Has(b) {
				continue
			}
			for _, v := range subsets {
				if (v^cols[b])&discharged == 0 {
					possible.Set(b, true)
					break
				}
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible, Anti: true})
	}
	return prof
}
