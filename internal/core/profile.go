package core

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Entry records, for one test pattern, which DISCHARGED data bits can ever
// exhibit a miscorrection (paper Table 2: a row of the miscorrection
// profile). Bits at CHARGED positions are excluded — an error there is
// ambiguous ('?' in the paper) because it may be an ordinary data-retention
// error rather than a miscorrection.
type Entry struct {
	Pattern  Pattern
	Possible gf2.Vec // length k; set bits mark miscorrection-susceptible positions
	// Anti marks an entry collected from an anti-cell region (charge is the
	// complement of the logical bit). Anti-cell entries obey a different
	// miscorrection condition involving the parity-check rows' parities and
	// therefore carry extra information about H — an extension beyond the
	// paper, which uses true-cell regions only (§5.1.3).
	Anti bool
}

// Profile is a miscorrection profile: the cumulative pattern-miscorrection
// pairs for a set of test patterns (paper §5.1.3). It is the fingerprint
// from which BEER recovers the ECC function.
type Profile struct {
	K       int
	Entries []Entry
}

// String renders the profile like the paper's Table 2: one line per pattern,
// '-' for impossible, '1' for possible, '?' for charged (ambiguous).
func (p *Profile) String() string {
	var sb strings.Builder
	for _, e := range p.Entries {
		tag := ""
		if e.Anti {
			tag = "anti "
		}
		fmt.Fprintf(&sb, "%s%-12s [", tag, e.Pattern)
		for b := 0; b < p.K; b++ {
			switch {
			case e.Pattern.Has(b):
				sb.WriteByte('?')
			case e.Possible.Get(b):
				sb.WriteByte('1')
			default:
				sb.WriteByte('-')
			}
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Equal reports whether two profiles have identical patterns and
// susceptibility sets (pattern order matters).
func (p *Profile) Equal(o *Profile) bool {
	if p.K != o.K || len(p.Entries) != len(o.Entries) {
		return false
	}
	for i := range p.Entries {
		a, b := p.Entries[i], o.Entries[i]
		if a.Pattern.String() != b.Pattern.String() || a.Anti != b.Anti || !a.Possible.Equal(b.Possible) {
			return false
		}
	}
	return true
}

// Append returns a profile containing both profiles' entries (e.g. true-cell
// and anti-cell observations of the same chip). Dataword lengths must match.
func (p *Profile) Append(o *Profile) *Profile {
	if p.K != o.K {
		panic(fmt.Sprintf("core: appending profiles of different k (%d vs %d)", p.K, o.K))
	}
	out := &Profile{K: p.K}
	out.Entries = append(out.Entries, p.Entries...)
	out.Entries = append(out.Entries, o.Entries...)
	return out
}

// ExactProfile computes the miscorrection profile of a known code
// analytically, with no Monte-Carlo simulation. It implements the closed
// form derived in DESIGN.md §4 from the paper's §4.2.2-4.2.3 analysis:
//
// For a true-cell region and pattern with CHARGED data set S, the encoded
// codeword's CHARGED parity cells are support(sigma), sigma = sum of H
// columns over S. Retention errors are any T subset of S (data) plus any
// m subset of support(sigma) (parity); a miscorrection at data bit b not in
// S requires sum_T H_col + m = H_col(b) for some choice, i.e.
// (sum_T H_col XOR H_col(b)) within support(sigma).
func ExactProfile(code *ecc.Code, patterns []Pattern) *Profile {
	return exactProfileSliced(code, patterns, false)
}

// ExactProfileAnti computes the miscorrection profile of a known code for
// patterns written to an *anti-cell* region (extension; see Entry.Anti).
//
// Writing the bitwise complement of a pattern to an anti-cell region charges
// exactly the pattern's data cells, but the parity cells' charges depend on
// the encoded parity of the complemented dataword: parity bit i of the
// complement of S is rowParity_i XOR sigma_i, where rowParity_i is the
// parity of row i of P over all k data columns, and a parity *cell* is
// CHARGED when that bit is 0. A miscorrection at data bit b not in S is
// possible iff for some error subset T of S, every row i with
// (rowParity XOR sigma)_i = 1 has (sum_T H_col XOR H_col(b))_i = 0.
// The rowParity term is information the true-cell profile cannot see.
func ExactProfileAnti(code *ecc.Code, patterns []Pattern) *Profile {
	return exactProfileSliced(code, patterns, true)
}

// exactProfileSliced is the bitsliced kernel behind ExactProfile and
// ExactProfileAnti. Instead of testing (v ^ cols[b]) & constrained == 0 one
// data bit at a time, it transposes H into row planes — plane i is a
// lane-packed word whose bit b holds H[i][b] — so one pass of word ops
// answers the membership test for 64 data bits at once:
//
//	b is possible under subset value v  iff  for every constrained row i,
//	plane[i] bit b == v bit i
//
// which is an AND over the constrained rows of (plane_i or its complement).
// The constrained row set is notSigma for true-cell regions and the
// discharged parity rows for anti-cell regions; nothing else differs.
func exactProfileSliced(code *ecc.Code, patterns []Pattern, anti bool) *Profile {
	k := code.K()
	r := code.ParityBits()
	chunks := (k + 63) / 64
	// All scratch below comes from a pooled slab: the profile oracle runs on
	// every submission's routing/dedupe hashing and inside the engine's cache
	// fill, so steady-state serving must not allocate per call. Only the
	// per-pattern `possible` vectors escape (into the returned Profile) and
	// stay heap-allocated.
	slab := gf2.GetSlab()
	defer gf2.PutSlab(slab)
	// Columns packed as uint64 (r <= 64 by ecc invariant) drive the sigma /
	// subset arithmetic; the transposed planes drive the per-bit test.
	cols := slab.Uint64s(k)
	planes := slab.Uint64s(r * chunks)
	var rowParity uint64
	for j := 0; j < k; j++ {
		c := code.Column(j).Uint64()
		cols[j] = c
		rowParity ^= c
		for i := 0; i < r; i++ {
			planes[i*chunks+j/64] |= (c >> uint(i) & 1) << uint(j%64)
		}
	}
	full := ^uint64(0)
	if r < 64 {
		full = (1 << uint(r)) - 1
	}
	// laneFull[c] masks the valid data-bit lanes of chunk c (the last chunk
	// is ragged when k is not a multiple of 64).
	laneFull := slab.Uint64s(chunks)
	for c := range laneFull {
		laneFull[c] = ^uint64(0)
	}
	if k%64 != 0 {
		laneFull[chunks-1] = (1 << uint(k%64)) - 1
	}
	chargedLanes := slab.Uint64s(chunks)
	prof := &Profile{K: k, Entries: make([]Entry, 0, len(patterns))}
	for _, pat := range patterns {
		s := pat.Charged()
		var sigma uint64
		clear(chargedLanes)
		for _, j := range s {
			sigma ^= cols[j]
			chargedLanes[j/64] |= 1 << uint(j%64)
		}
		constrained := ^sigma & full
		if anti {
			// Rows whose parity cell is DISCHARGED (bit 1): the error
			// subset's syndrome must vanish there.
			constrained = (rowParity ^ sigma) & full
		}
		// Enumerate error subsets T of S; 2^|S| is small (|S| <= 3 in all
		// paper configurations). Carved per pattern: the slab bump offset
		// just advances, and the capacity clip keeps appends in bounds.
		subsets := slab.Uint64s(1 << uint(len(s)))[:0]
		for mask := 0; mask < 1<<uint(len(s)); mask++ {
			var v uint64
			for bi, j := range s {
				if mask>>uint(bi)&1 == 1 {
					v ^= cols[j]
				}
			}
			subsets = append(subsets, v)
		}
		possible := gf2.NewVec(k)
		w := possible.Words()
		for c := 0; c < chunks; c++ {
			var poss uint64
			for _, v := range subsets {
				acc := laneFull[c]
				for m := constrained; m != 0 && acc != 0; m &= m - 1 {
					i := bits.TrailingZeros64(m)
					pl := planes[i*chunks+c]
					if v>>uint(i)&1 == 1 {
						acc &= pl
					} else {
						acc &= ^pl
					}
				}
				poss |= acc
				if poss == laneFull[c] {
					break
				}
			}
			// Charged positions are ambiguous, never "possible".
			w[c] = poss &^ chargedLanes[c]
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible, Anti: anti})
	}
	return prof
}

// exactProfileScalar is the straightforward per-data-bit form of the oracle,
// retained as the differential reference for exactProfileSliced.
func exactProfileScalar(code *ecc.Code, patterns []Pattern, anti bool) *Profile {
	k := code.K()
	r := code.ParityBits()
	cols := make([]uint64, k)
	var rowParity uint64
	for j := 0; j < k; j++ {
		cols[j] = code.Column(j).Uint64()
		rowParity ^= cols[j]
	}
	full := ^uint64(0)
	if r < 64 {
		full = (1 << uint(r)) - 1
	}
	prof := &Profile{K: k, Entries: make([]Entry, 0, len(patterns))}
	for _, pat := range patterns {
		s := pat.Charged()
		var sigma uint64
		for _, j := range s {
			sigma ^= cols[j]
		}
		constrained := ^sigma & full
		if anti {
			constrained = (rowParity ^ sigma) & full
		}
		subsets := make([]uint64, 0, 1<<uint(len(s)))
		for mask := 0; mask < 1<<uint(len(s)); mask++ {
			var v uint64
			for bi, j := range s {
				if mask>>uint(bi)&1 == 1 {
					v ^= cols[j]
				}
			}
			subsets = append(subsets, v)
		}
		possible := gf2.NewVec(k)
		for b := 0; b < k; b++ {
			if pat.Has(b) {
				continue
			}
			for _, v := range subsets {
				if (v^cols[b])&constrained == 0 {
					possible.Set(b, true)
					break
				}
			}
		}
		prof.Entries = append(prof.Entries, Entry{Pattern: pat, Possible: possible, Anti: anti})
	}
	return prof
}
