package parallel

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ondie"
)

// scalarTestChip mirrors testChip but forces the per-word scalar ECC path,
// giving a reference engine that shares the substrate seed (and therefore the
// exact decay behavior) with the bitsliced chips.
func scalarTestChip(t testing.TB, seed uint64) *ondie.Chip {
	t.Helper()
	return ondie.MustNew(ondie.Config{
		Manufacturer:  ondie.MfrB,
		DataBits:      16,
		Banks:         1,
		Rows:          192,
		RegionsPerRow: 16,
		Seed:          seed,
		ScalarECC:     true,
	})
}

// TestCollectBitslicedMatchesScalarEngine is the cross-layer determinism
// guarantee the bitsliced refactor must uphold: fanning collection out over
// bitsliced chips at 1, 2, and 8 workers produces merged counts bit-identical
// to a serial run over scalar-ECC chips with the same seeds. Any divergence
// isolates a codec bug, since identical seeds give identical substrate decay.
func TestCollectBitslicedMatchesScalarEngine(t *testing.T) {
	const shards = 3
	scalarChips := make([]*ondie.Chip, shards)
	for i := range scalarChips {
		scalarChips[i] = scalarTestChip(t, uint64(300+i))
	}
	want, err := New(1).CollectShards(context.Background(), shards, func(shard int) (*core.Counts, error) {
		return collectFromChip(scalarChips[shard])
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		chips := make([]*ondie.Chip, shards)
		for i := range chips {
			chips[i] = testChip(t, uint64(300+i))
		}
		got, err := New(workers).CollectShards(context.Background(), shards, func(shard int) (*core.Counts, error) {
			return collectFromChip(chips[shard])
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: bitsliced merged counts diverge from the scalar engine", workers)
		}
	}
	var observed int64
	for _, e := range want.Entries {
		for _, n := range e.Errors {
			observed += n
		}
	}
	if observed == 0 {
		t.Fatal("collection observed no errors; test is vacuous")
	}
}

// timeCollect runs one full CollectShards fan-out and returns its wall time.
// Chips are rebuilt per run so every engine does identical work from an
// identical cold state.
func timeCollect(t *testing.T, workers, shards int) time.Duration {
	t.Helper()
	chips := make([]*ondie.Chip, shards)
	for i := range chips {
		chips[i] = testChip(t, uint64(500+i))
	}
	e := New(workers)
	start := time.Now()
	if _, err := e.CollectShards(context.Background(), shards, func(shard int) (*core.Counts, error) {
		return collectFromChip(chips[shard])
	}); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestCollectThroughputScalesWithWorkers checks that multi-chip collection
// actually gets faster with a wider pool. Shards are CPU-bound, so this can
// only hold on a multi-core host; single-CPU CI runners skip. Taking the
// minimum of several runs filters scheduler noise, and the serial run must
// beat the parallel one by a real margin (not a tie within jitter).
func TestCollectThroughputScalesWithWorkers(t *testing.T) {
	cpus := runtime.NumCPU()
	if cpus < 2 {
		t.Skipf("need >=2 CPUs to observe scaling, have %d", cpus)
	}
	workers := cpus
	if workers > 4 {
		workers = 4
	}
	shards := 2 * workers
	minSerial, minParallel := time.Duration(1<<62), time.Duration(1<<62)
	for run := 0; run < 3; run++ {
		if d := timeCollect(t, 1, shards); d < minSerial {
			minSerial = d
		}
		if d := timeCollect(t, workers, shards); d < minParallel {
			minParallel = d
		}
	}
	if minParallel >= minSerial {
		t.Fatalf("collection did not speed up: serial %v vs %d workers %v", minSerial, workers, minParallel)
	}
	t.Logf("collect speedup at %d workers: %.2fx (%v -> %v)", workers, float64(minSerial)/float64(minParallel), minSerial, minParallel)
}
