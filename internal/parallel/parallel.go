// Package parallel is the experiment engine that shards this repository's
// embarrassingly parallel workloads — EINSim-style Monte-Carlo fault
// injection, miscorrection-profile collection, and figure sweeps — across a
// worker pool sized to the machine.
//
// The paper runs the same workloads at scale the same way: §6.3 notes that
// profile collection parallelizes across chips of the same model (counts
// simply add), and the evaluation fans simulation sweeps out over ten Xeon
// servers. Here every sharded computation derives its randomness from a
// per-shard seeded PCG and merges shard results in shard-index order, so the
// output is bit-identical regardless of the worker count (1 worker and 64
// workers produce the same bytes). That determinism is what makes the engine
// safe to put under every experiment path: tests and figures stay
// reproducible while wall-clock scales with cores.
//
// The engine also carries small LRU caches — instances of store.LRU, the
// repository's shared single-flight cache primitive — of exact
// miscorrection profiles keyed on (code, polarity/error model, pattern
// family) and of materialized pattern families, because sweeps like
// Figure 5 and the ablations recompute identical profiles many times.
//
// Entry points: New/Default build or share an engine; ForEach is the
// scheduling primitive (bounded workers, deterministic lowest-index error,
// full goroutine join even on cancellation); Simulate/SimulateBatch shard
// EINSim runs; CollectShards and Recover implement the §6.3 multi-chip
// merge, with Recover also consulting core.RecoverOptions.SolveCache so
// same-fingerprint chips skip the SAT solve.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/store"
)

// Engine schedules sharded experiments over a bounded worker pool and caches
// recomputable artifacts. The zero value is not usable; use New or Default.
// An Engine is safe for concurrent use.
type Engine struct {
	workers  int
	inflight atomic.Int64
	runs     atomic.Int64
	profiles *store.LRU[profileKey, *core.Profile]
	patterns *store.LRU[patternKey, []core.Pattern]
}

// New returns an engine with the given worker-pool width. workers <= 0 means
// runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{
		workers:  workers,
		profiles: newProfileCache(),
		patterns: newPatternCache(),
	}
}

// Workers returns the worker-pool width.
func (e *Engine) Workers() int { return e.workers }

// InFlight gauges how many sharded computations (ForEach calls) are
// executing right now — the engine-level load figure cluster workers report
// in their heartbeats and beerd exposes on /healthz.
func (e *Engine) InFlight() int { return int(e.inflight.Load()) }

// Runs counts the sharded computations (ForEach calls) the engine has
// started over its lifetime — the cumulative companion to the InFlight
// gauge, exported as the beerd_engine_runs_total metric.
func (e *Engine) Runs() int64 { return e.runs.Load() }

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine (runtime.NumCPU() workers),
// creating it on first use. Callers that need a different pool width build
// their own with New (see cmd/figures -workers).
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// ForEach runs fn(0..n-1) across the worker pool and waits for completion.
// Every index runs even when some fail; the returned error is the one from
// the lowest failing index, so the outcome is deterministic regardless of
// scheduling.
//
// Cancelling ctx stops workers from claiming further indices; in-flight fn
// calls finish (fn implementations that honor ctx themselves return sooner),
// all spawned goroutines are joined before ForEach returns, and the result
// is ctx.Err(). A nil ctx means context.Background().
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.inflight.Add(1)
	e.runs.Add(1)
	defer e.inflight.Add(-1)
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return firstErr
	}
	var (
		mu       sync.Mutex
		errIndex = n
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := claim()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIndex {
						errIndex, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
