package parallel

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestRecoverPlannedMultiChip runs the adaptive planner over a two-chip
// fleet: the merged batches must recover the ground-truth function
// uniquely with strictly fewer patterns than the full sweep, the result
// must be bit-identical to the exhaustive multi-chip recovery, and the
// outcome must not depend on the worker count.
func TestRecoverPlannedMultiChip(t *testing.T) {
	opts := core.DefaultRecoverOptions()
	opts.Collect = collectOpts()
	opts.Collect.Rounds = 3

	full, err := New(2).Recover(context.Background(), []core.Chip{testChip(t, 200), testChip(t, 201)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Result.Unique {
		t.Fatalf("full sweep not unique (%d candidates)", len(full.Result.Codes))
	}

	opts.UsePlanner = true
	var wantH string
	for _, workers := range workerCounts {
		chips := []core.Chip{testChip(t, 200), testChip(t, 201)}
		rep, err := New(workers).Recover(context.Background(), chips, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Result.Unique {
			t.Fatalf("workers=%d: planned recovery not unique (%d candidates)", workers, len(rep.Result.Codes))
		}
		if rep.Plan == nil || rep.Plan.PatternsUsed >= rep.Plan.PatternsFull {
			t.Fatalf("workers=%d: plan %+v, want strictly fewer patterns than the full sweep", workers, rep.Plan)
		}
		truth := testChip(t, 200).GroundTruthCode()
		if !rep.Result.Codes[0].EquivalentTo(truth) {
			t.Fatalf("workers=%d: recovered wrong function", workers)
		}
		gotH := rep.Result.Codes[0].H().String()
		if gotH != full.Result.Codes[0].H().String() {
			t.Fatalf("workers=%d: planned code differs from full-sweep code", workers)
		}
		if wantH == "" {
			wantH = gotH
		} else if gotH != wantH {
			t.Fatalf("workers=%d: result depends on worker count", workers)
		}
	}
}

// TestRecoverPlannedProgressMonotonic: planned collection restarts the
// per-batch pass counters internally; the event stream visible to callers
// must stay monotonic per chip (Pass never decreases, never exceeds
// Passes) and carry planner solve progress (patterns used vs. planned).
func TestRecoverPlannedProgressMonotonic(t *testing.T) {
	opts := core.DefaultRecoverOptions()
	opts.Collect = collectOpts()
	opts.UsePlanner = true

	var mu sync.Mutex
	lastPass := map[int]int{}
	sawPlanner := false
	violations := 0
	opts.Progress = func(ev core.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Stage {
		case core.StageCollect:
			if ev.Done {
				return
			}
			if ev.Pass < lastPass[ev.Chip] || ev.Pass > ev.Passes {
				violations++
			}
			lastPass[ev.Chip] = ev.Pass
		case core.StageSolve:
			if ev.PatternsUsed > 0 && ev.PatternsPlanned >= ev.PatternsUsed {
				sawPlanner = true
			}
		}
	}
	chips := []core.Chip{testChip(t, 210), testChip(t, 211)}
	rep, err := New(2).Recover(context.Background(), chips, opts)
	if err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d non-monotonic collect pass events", violations)
	}
	if !sawPlanner {
		t.Fatal("no solve event carried planner pattern progress")
	}
	if !rep.Result.Unique {
		t.Fatalf("planned recovery not unique (%d candidates)", len(rep.Result.Codes))
	}
}
