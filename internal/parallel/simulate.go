package parallel

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/einsim"
)

// simShardWords is the number of simulated words per shard. The shard
// decomposition depends only on the requested word count — never on the
// worker count — which is what makes sharded results bit-identical across
// pool widths: shard i always simulates the same words with the same
// per-shard RNG stream, and shards merge in index order.
const simShardWords = 4096

// simShardStream is the PCG stream-selector base for shard RNGs, keeping
// shard streams disjoint from the seed constants used elsewhere in the repo.
const simShardStream = 0x51AD0000

// SimShards returns the number of shards a words-count decomposes into.
func SimShards(words int) int {
	if words <= 0 {
		return 0
	}
	return (words + simShardWords - 1) / simShardWords
}

// shardSeed derives the RNG for one shard of one simulation. seq
// distinguishes simulations submitted under the same seed (e.g. batch
// entries); shard walks the decomposition.
func shardSeed(seed uint64, seq, shard int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, simShardStream^uint64(seq)<<20^uint64(shard)))
}

// Simulate runs an EINSim-style Monte-Carlo simulation sharded across the
// worker pool. cfg.Words is split into fixed-size shards, each shard draws
// from its own (seed, shard)-derived PCG, and shard results merge in shard
// order via einsim.Result.Merge — so the aggregate is bit-identical for any
// worker count. The per-shard RNG streams differ from a single serial
// einsim.Run stream, so compare sharded runs with sharded runs. Cancelling
// ctx stops the run at the next shard boundary and returns ctx.Err().
func (e *Engine) Simulate(ctx context.Context, cfg einsim.Config, seed uint64) (*einsim.Result, error) {
	shards := SimShards(cfg.Words)
	if shards <= 1 {
		return einsim.Run(cfg, shardSeed(seed, 0, 0))
	}
	results := make([]*einsim.Result, shards)
	errs := make([]error, shards)
	if err := e.ForEach(ctx, shards, func(i int) error {
		shardCfg := cfg
		shardCfg.Words = simShardWords
		if i == shards-1 {
			shardCfg.Words = cfg.Words - simShardWords*(shards-1)
		}
		results[i], errs[i] = einsim.Run(shardCfg, shardSeed(seed, 0, i))
		return nil
	}); err != nil {
		return nil, err
	}
	res := finishJob(0, results, errs)
	return res.Result, res.Err
}

// SimJob is one entry of a simulation batch.
type SimJob struct {
	Config einsim.Config
	Seed   uint64
}

// SimResult is one completed batch entry. Index identifies the submitted job.
type SimResult struct {
	Index  int
	Result *einsim.Result
	Err    error
}

// SimulateBatch submits N simulation configs and streams one SimResult per
// job as it completes (order not guaranteed; use Index). The whole batch
// flattens into a single level of per-shard tasks, so a single large job
// still spreads across the pool while total concurrency stays bounded by the
// pool width. Per-job results are identical to standalone Simulate-style
// sharded runs and independent of worker count. Same-shape results can be
// combined with einsim.Result.Merge, whose additive counters make the merged
// aggregate independent of arrival order.
//
// The returned channel closes after all jobs complete. The caller must drain
// it. Cancelling ctx abandons unstarted shards; entries whose shards were cut
// short surface ctx.Err() as their SimResult.Err.
func (e *Engine) SimulateBatch(ctx context.Context, jobs []SimJob) <-chan SimResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan SimResult, len(jobs))
	// Flatten every job into its shard tasks up front. A job with zero or
	// one shard still gets one task carrying the full config, so invalid
	// configs surface their einsim.Run error.
	type jobState struct {
		start, shards int // task-index range
		pending       int32
		results       []*einsim.Result
		errs          []error
	}
	states := make([]*jobState, len(jobs))
	total := 0
	for i, j := range jobs {
		shards := SimShards(j.Config.Words)
		if shards < 1 {
			shards = 1
		}
		states[i] = &jobState{
			start:   total,
			shards:  shards,
			pending: int32(shards),
			results: make([]*einsim.Result, shards),
			errs:    make([]error, shards),
		}
		total += shards
	}
	jobOf := make([]int, total)
	for i, st := range states {
		for s := 0; s < st.shards; s++ {
			jobOf[st.start+s] = i
		}
	}
	go func() {
		defer close(out)
		e.ForEach(ctx, total, func(t int) error {
			ji := jobOf[t]
			st := states[ji]
			shard := t - st.start
			cfg := jobs[ji].Config
			if st.shards > 1 {
				cfg.Words = simShardWords
				if shard == st.shards-1 {
					cfg.Words = jobs[ji].Config.Words - simShardWords*(st.shards-1)
				}
			}
			st.results[shard], st.errs[shard] = einsim.Run(cfg, shardSeed(jobs[ji].Seed, ji+1, shard))
			if atomic.AddInt32(&st.pending, -1) == 0 {
				out <- finishJob(ji, st.results, st.errs)
			}
			return nil
		})
		if err := ctx.Err(); err != nil {
			// Flush cancelled jobs so the channel still carries one result
			// per submitted job (callers drain unconditionally).
			for ji, st := range states {
				if atomic.LoadInt32(&st.pending) != 0 {
					out <- SimResult{Index: ji, Err: err}
				}
			}
		}
	}()
	return out
}

// finishJob merges one job's shard results in shard order, reporting the
// lowest-shard error if any shard failed.
func finishJob(index int, results []*einsim.Result, errs []error) SimResult {
	for _, err := range errs {
		if err != nil {
			return SimResult{Index: index, Err: err}
		}
	}
	merged := results[0]
	for _, res := range results[1:] {
		if err := merged.Merge(res); err != nil {
			return SimResult{Index: index, Err: err}
		}
	}
	return SimResult{Index: index, Result: merged}
}

// SimulateMerged runs a batch of same-shape configs and merges every result
// into one aggregate, failing on the lowest-index job error.
func (e *Engine) SimulateMerged(ctx context.Context, jobs []SimJob) (*einsim.Result, error) {
	results := make([]*einsim.Result, len(jobs))
	var firstErr error
	errIndex := len(jobs)
	for r := range e.SimulateBatch(ctx, jobs) {
		if r.Err != nil {
			if r.Index < errIndex {
				errIndex, firstErr = r.Index, r.Err
			}
			continue
		}
		results[r.Index] = r.Result
	}
	if firstErr != nil {
		return nil, fmt.Errorf("parallel: batch job %d: %w", errIndex, firstErr)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("parallel: empty simulation batch")
	}
	merged := results[0]
	for _, res := range results[1:] {
		if err := merged.Merge(res); err != nil {
			return nil, err
		}
	}
	return merged, nil
}
