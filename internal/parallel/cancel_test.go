package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestRecoverCancelMidCollection cancels a multi-chip recovery from inside
// its own progress stream — i.e. mid-collection — and asserts that Recover
// (a) returns context.Canceled, (b) returns promptly (within one collection
// round, bounded generously here), and (c) leaks no worker goroutines.
// Run under -race (CI does), this also exercises the progress serialization.
func TestRecoverCancelMidCollection(t *testing.T) {
	baseline := runtime.NumGoroutine()

	opts := core.DefaultRecoverOptions()
	opts.Collect = collectOpts()
	opts.Collect.Rounds = 8 // long enough that cancellation lands mid-sweep

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var passes atomic.Int64
	opts.Progress = func(ev core.Event) {
		// Cancel after the third completed collection pass of any chip:
		// the run is then provably mid-collection.
		if ev.Stage == core.StageCollect && !ev.Done && passes.Add(1) == 3 {
			cancel()
		}
	}

	e := New(4)
	chips := []core.Chip{testChip(t, 300), testChip(t, 301), testChip(t, 302)}

	type outcome struct {
		rep *core.Report
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		rep, err := e.Recover(ctx, chips, opts)
		done <- outcome{rep, err}
	}()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Recover did not return within 30s of cancellation")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("Recover returned %v, want context.Canceled", out.err)
	}
	if out.rep != nil && out.rep.Result != nil {
		t.Fatalf("cancelled Recover still produced a solve result")
	}
	t.Logf("cancelled after %d passes, returned in %v", passes.Load(), time.Since(start))

	// All engine goroutines are joined before Recover returns; give the
	// runtime a moment to retire exiting goroutines, then compare counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestForEachCancelStopsClaiming verifies that cancelling a ForEach stops
// workers from claiming new indices and the call reports ctx.Err().
func TestForEachCancelStopsClaiming(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := e.ForEach(ctx, 1000, func(i int) error {
		if ran.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the sweep (ran all %d tasks)", n)
	}
}

// TestForEachPreCancelled verifies a pre-cancelled context runs nothing.
func TestForEachPreCancelled(t *testing.T) {
	e := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := e.ForEach(ctx, 100, func(i int) error { ran.Add(1); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach returned %v, want context.Canceled", err)
	}
	// Workers may claim at most a handful of indices before observing
	// cancellation; the sweep must not complete.
	if n := ran.Load(); n >= 100 {
		t.Fatalf("pre-cancelled ForEach ran all %d tasks", n)
	}
}

// TestSimulateCancel verifies sharded simulation honors cancellation between
// shards.
func TestSimulateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(2)
	cfg := simConfig(200000) // many shards
	if _, err := e.Simulate(ctx, cfg, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate returned %v, want context.Canceled", err)
	}
}
