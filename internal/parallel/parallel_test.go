package parallel

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/ondie"
	"repro/internal/store"
)

// workerCounts are the pool widths every determinism test sweeps: serial,
// small, and wider than most CI machines.
var workerCounts = []int{1, 2, 8}

func simConfig(words int) einsim.Config {
	return einsim.Config{
		Code:    ecc.SequentialHamming(32),
		Pattern: einsim.PatternRandom, // exercises per-word RNG draws, the hardest case
		Model:   einsim.ModelUniform,
		RBER:    1e-3,
		Words:   words,
	}
}

// TestSimulateWorkerCountIndependent is the engine's core guarantee: the same
// seed produces bit-identical aggregates at 1, 2, and 8 workers.
func TestSimulateWorkerCountIndependent(t *testing.T) {
	cfg := simConfig(3*simShardWords + 100) // uneven tail shard
	var want *einsim.Result
	for _, workers := range workerCounts {
		res, err := New(workers).Simulate(context.Background(), cfg, 42)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Words != int64(cfg.Words) {
			t.Fatalf("workers=%d simulated %d words, want %d", workers, res.Words, cfg.Words)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Fatalf("workers=%d result differs from workers=%d", workers, workerCounts[0])
		}
	}
	if want.WordsWithPostError == 0 {
		t.Fatal("simulation produced no post-correction errors; test is vacuous")
	}
}

// TestSimulateSeedSensitivity guards against the shards all drawing from one
// stream: different seeds must give different aggregates.
func TestSimulateSeedSensitivity(t *testing.T) {
	cfg := simConfig(2 * simShardWords)
	e := New(4)
	a, err := e.Simulate(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Simulate(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical results")
	}
}

func TestSimShards(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, simShardWords: 1, simShardWords + 1: 2, 3 * simShardWords: 3}
	for words, want := range cases {
		if got := SimShards(words); got != want {
			t.Errorf("SimShards(%d) = %d, want %d", words, got, want)
		}
	}
}

// TestSimulateBatch checks that the streaming API delivers every job exactly
// once and that per-job results match standalone sharded runs.
func TestSimulateBatch(t *testing.T) {
	e := New(4)
	jobs := []SimJob{
		{Config: simConfig(simShardWords + 10), Seed: 7},
		{Config: simConfig(500), Seed: 7},
		{Config: simConfig(2 * simShardWords), Seed: 9},
	}
	seen := make([]*einsim.Result, len(jobs))
	for r := range e.SimulateBatch(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
		if seen[r.Index] != nil {
			t.Fatalf("job %d delivered twice", r.Index)
		}
		seen[r.Index] = r.Result
	}
	for i, res := range seen {
		if res == nil {
			t.Fatalf("job %d never delivered", i)
		}
		if res.Words != int64(jobs[i].Config.Words) {
			t.Fatalf("job %d simulated %d words, want %d", i, res.Words, jobs[i].Config.Words)
		}
	}
	// Batch entries use per-entry streams: re-running the batch reproduces it.
	again := make([]*einsim.Result, len(jobs))
	for r := range New(1).SimulateBatch(context.Background(), jobs) {
		again[r.Index] = r.Result
	}
	if !reflect.DeepEqual(seen, again) {
		t.Fatal("batch results depend on worker count")
	}
}

func TestSimulateMerged(t *testing.T) {
	e := New(4)
	jobs := []SimJob{
		{Config: simConfig(1000), Seed: 3},
		{Config: simConfig(1500), Seed: 4},
	}
	merged, err := e.SimulateMerged(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Words != 2500 {
		t.Fatalf("merged %d words, want 2500", merged.Words)
	}
	bad := append(jobs, SimJob{Config: einsim.Config{}, Seed: 1})
	if _, err := e.SimulateMerged(context.Background(), bad); err == nil {
		t.Fatal("invalid job did not fail the batch")
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	e := New(8)
	err := e.ForEach(context.Background(), 100, func(i int) error {
		if i%7 == 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Fatalf("got %v, want the lowest-index failure", err)
	}
	if err := e.ForEach(context.Background(), 0, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatalf("empty ForEach returned %v", err)
	}
}

func testChip(t testing.TB, seed uint64) *ondie.Chip {
	t.Helper()
	return ondie.MustNew(ondie.Config{
		Manufacturer:  ondie.MfrB,
		DataBits:      16,
		Banks:         1,
		Rows:          192,
		RegionsPerRow: 16,
		Seed:          seed,
	})
}

func collectOpts() core.CollectOptions {
	var windows []time.Duration
	for m := 4; m <= 48; m += 4 {
		windows = append(windows, time.Duration(m)*time.Minute)
	}
	return core.CollectOptions{Windows: windows, TempC: 80, Rounds: 2}
}

// collectFromChip is one self-contained collection shard: discovery plus
// 1-CHARGED count collection on its own chip.
func collectFromChip(chip *ondie.Chip) (*core.Counts, error) {
	classes := core.DiscoverCellLayout(chip, core.DefaultLayoutOptions())
	rows := core.TrueRows(classes)
	layout, err := core.DiscoverWordLayout(chip, rows, core.DefaultLayoutOptions())
	if err != nil {
		return nil, err
	}
	return core.CollectCounts(context.Background(), chip, rows, layout, core.OneCharged(layout.K()), collectOpts())
}

// TestCollectShardsWorkerCountIndependent: the same set of chips yields the
// same merged counts — and therefore the identical miscorrection profile — at
// 1, 2, and 8 workers.
func TestCollectShardsWorkerCountIndependent(t *testing.T) {
	const shards = 3
	var wantCounts *core.Counts
	var wantProfile *core.Profile
	for _, workers := range workerCounts {
		chips := make([]*ondie.Chip, shards)
		for i := range chips {
			chips[i] = testChip(t, uint64(100+i))
		}
		counts, err := New(workers).CollectShards(context.Background(), shards, func(shard int) (*core.Counts, error) {
			return collectFromChip(chips[shard])
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prof := counts.Threshold(1e-4, 2)
		if wantCounts == nil {
			wantCounts, wantProfile = counts, prof
			continue
		}
		if !reflect.DeepEqual(wantCounts, counts) {
			t.Fatalf("workers=%d merged counts differ", workers)
		}
		if !wantProfile.Equal(prof) {
			t.Fatalf("workers=%d thresholded profile differs", workers)
		}
	}
	var observed int64
	for _, e := range wantCounts.Entries {
		for _, n := range e.Errors {
			observed += n
		}
	}
	if observed == 0 {
		t.Fatal("collection observed no errors; test is vacuous")
	}
}

func TestCollectShardsErrors(t *testing.T) {
	e := New(2)
	if _, err := e.CollectShards(context.Background(), 0, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	_, err := e.CollectShards(context.Background(), 2, func(shard int) (*core.Counts, error) {
		if shard == 1 {
			return nil, fmt.Errorf("shard down")
		}
		return collectFromChip(testChip(t, 1))
	})
	if err == nil {
		t.Fatal("shard failure not propagated")
	}
}

// TestRecoverMultiChip runs the end-to-end parallel pipeline on several
// same-model chips and checks it still recovers the ground-truth function,
// independent of worker count.
func TestRecoverMultiChip(t *testing.T) {
	opts := core.DefaultRecoverOptions()
	opts.Collect = collectOpts()
	opts.Collect.Rounds = 3

	var wantProfile *core.Profile
	for _, workers := range workerCounts {
		chips := []core.Chip{testChip(t, 200), testChip(t, 201)}
		rep, err := New(workers).Recover(context.Background(), chips, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Result.Unique {
			t.Fatalf("workers=%d: recovery not unique (%d candidates)", workers, len(rep.Result.Codes))
		}
		truth := testChip(t, 200).GroundTruthCode()
		if !rep.Result.Codes[0].EquivalentTo(truth) {
			t.Fatalf("workers=%d: recovered wrong function", workers)
		}
		if wantProfile == nil {
			wantProfile = rep.Profile
			continue
		}
		if !wantProfile.Equal(rep.Profile) {
			t.Fatalf("workers=%d profile differs", workers)
		}
	}
}

func TestRecoverNoChips(t *testing.T) {
	if _, err := New(1).Recover(context.Background(), nil, core.DefaultRecoverOptions()); err == nil {
		t.Fatal("empty chip list accepted")
	}
}

// TestProfileCacheHit: a repeated (code, polarity, pattern-family) query must
// return the very same profile object, and the cache must distinguish
// polarity, family, and code.
func TestProfileCacheHit(t *testing.T) {
	e := New(2)
	codeA := ecc.SequentialHamming(16)
	codeB := ecc.LowWeightHamming(16)

	first := e.ExactProfile(codeA, core.Set1, false)
	second := e.ExactProfile(codeA, core.Set1, false)
	if first != second {
		t.Fatal("cache hit returned a different profile object")
	}
	if hits, reqs := e.CacheStats(); hits != 1 || reqs != 2 {
		t.Fatalf("cache stats = (%d hits, %d reqs), want (1, 2)", hits, reqs)
	}
	if anti := e.ExactProfile(codeA, core.Set1, true); anti == first {
		t.Fatal("anti-cell profile shared the true-cell cache slot")
	}
	if other := e.ExactProfile(codeB, core.Set1, false); other == first {
		t.Fatal("different code shared the cache slot")
	}
	if set12 := e.ExactProfile(codeA, core.Set12, false); set12 == first {
		t.Fatal("different pattern family shared the cache slot")
	}
	// Cached contents must match direct computation.
	if want := core.ExactProfile(codeA, core.OneCharged(16)); !want.Equal(first) {
		t.Fatal("cached profile differs from direct computation")
	}
}

// TestProfileCacheConcurrent hammers one key from many goroutines: all
// callers must observe the same object (single-flight, no torn state).
func TestProfileCacheConcurrent(t *testing.T) {
	e := New(8)
	code := ecc.SequentialHamming(16)
	profs := make([]*core.Profile, 64)
	if err := e.ForEach(context.Background(), len(profs), func(i int) error {
		profs[i] = e.ExactProfile(code, core.Set12, false)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, p := range profs {
		if p != profs[0] {
			t.Fatalf("caller %d saw a different profile object", i)
		}
	}
}

func TestProfileCacheEviction(t *testing.T) {
	c := store.NewLRU[profileKey, *core.Profile](2)
	compute := func(id int) func() *core.Profile {
		return func() *core.Profile { return &core.Profile{K: id} }
	}
	k1 := profileKey{fp: 1}
	k2 := profileKey{fp: 2}
	k3 := profileKey{fp: 3}
	p1 := c.Get(k1, compute(1))
	c.Get(k2, compute(2))
	c.Get(k3, compute(3)) // evicts k1
	if got := c.Get(k1, compute(101)); got == p1 {
		t.Fatal("evicted entry survived")
	} else if got.K != 101 {
		t.Fatal("recompute did not run after eviction")
	}
}

func TestPatternsCached(t *testing.T) {
	e := New(1)
	a := e.Patterns(core.Set2, 12)
	b := e.Patterns(core.Set2, 12)
	if &a[0] != &b[0] {
		t.Fatal("pattern family recomputed on repeat query")
	}
	if len(a) != 12*11/2 {
		t.Fatalf("Set2 k=12 has %d patterns, want %d", len(a), 12*11/2)
	}
}

func TestWorkersDefault(t *testing.T) {
	if New(0).Workers() <= 0 {
		t.Fatal("New(0) must size the pool to the machine")
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	if Default() != Default() {
		t.Fatal("Default engine must be shared")
	}
}
