package parallel

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/ecc"
)

const (
	defaultProfileCacheSize = 256
	defaultPatternCacheSize = 64
)

// profileKey identifies one exact miscorrection profile: the code (by
// fingerprint and shape), the pattern family, and the cell polarity — the
// anti flag selects the anti-cell error model, whose profiles differ from the
// true-cell ones for the same code and patterns (see core.ExactProfileAnti).
type profileKey struct {
	fp   uint64
	n, k int
	set  core.PatternSet
	anti bool
}

// codeFingerprint hashes a code's shape and parity-check columns (FNV-1a).
// Codes with equal H always collide, which is the point: the cache returns
// the same profile object for repeated queries of the same function.
func codeFingerprint(c *ecc.Code) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(c.N()))
	mix(uint64(c.K()))
	for j := 0; j < c.N(); j++ {
		mix(c.Column(j).Uint64())
	}
	return h
}

// profileEntry is one cache slot. ready is closed once prof is computed, so
// concurrent requests for the same key compute it exactly once and share the
// result (single-flight).
type profileEntry struct {
	key   profileKey
	ready chan struct{}
	prof  *core.Profile
}

type profileCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *profileEntry
	items map[profileKey]*list.Element
	hits  int64
	reqs  int64
}

func newProfileCache(max int) *profileCache {
	return &profileCache{max: max, ll: list.New(), items: make(map[profileKey]*list.Element)}
}

// get returns the cached profile for key, computing it via compute on a miss.
// Exactly one caller computes per key; the rest block on the ready channel.
func (c *profileCache) get(key profileKey, compute func() *core.Profile) *core.Profile {
	c.mu.Lock()
	c.reqs++
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		entry := el.Value.(*profileEntry)
		c.mu.Unlock()
		<-entry.ready
		return entry.prof
	}
	entry := &profileEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.ll.PushFront(entry)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*profileEntry).key)
	}
	c.mu.Unlock()
	entry.prof = compute()
	close(entry.ready)
	return entry.prof
}

// stats returns (hits, requests) since construction.
func (c *profileCache) stats() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.reqs
}

// ExactProfile returns the analytic miscorrection profile of a known code for
// a pattern family and cell polarity, memoized in the engine's LRU cache.
// Repeated queries for the same (code, polarity, pattern family) return the
// same *core.Profile object without recomputation, so callers must treat the
// result as read-only.
func (e *Engine) ExactProfile(code *ecc.Code, set core.PatternSet, anti bool) *core.Profile {
	key := profileKey{fp: codeFingerprint(code), n: code.N(), k: code.K(), set: set, anti: anti}
	return e.profiles.get(key, func() *core.Profile {
		patterns := e.Patterns(set, code.K())
		if anti {
			return core.ExactProfileAnti(code, patterns)
		}
		return core.ExactProfile(code, patterns)
	})
}

// CacheStats reports the profile cache's (hits, requests) counters.
func (e *Engine) CacheStats() (hits, requests int64) {
	return e.profiles.stats()
}

// patternKey identifies a materialized pattern family.
type patternKey struct {
	set core.PatternSet
	k   int
}

type patternCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[patternKey]*list.Element
}

type patternEntry struct {
	key  patternKey
	pats []core.Pattern
}

func newPatternCache(max int) *patternCache {
	return &patternCache{max: max, ll: list.New(), items: make(map[patternKey]*list.Element)}
}

// Patterns materializes a pattern family for dataword length k, memoized.
// The 2-CHARGED family is quadratic in k and sweeps like Figure 5 request it
// once per trial; callers must not mutate the returned slice.
func (e *Engine) Patterns(set core.PatternSet, k int) []core.Pattern {
	key := patternKey{set: set, k: k}
	c := e.patterns
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		pats := el.Value.(*patternEntry).pats
		c.mu.Unlock()
		return pats
	}
	c.mu.Unlock()
	// Materialize outside the lock; pattern generation is pure, so a rare
	// duplicate computation is harmless.
	pats := set.Patterns(k)
	c.mu.Lock()
	if _, ok := c.items[key]; !ok {
		c.items[key] = c.ll.PushFront(&patternEntry{key: key, pats: pats})
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*patternEntry).key)
		}
	}
	c.mu.Unlock()
	return pats
}
