package parallel

import (
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/store"
)

// The engine's hot-object caches are instances of store.LRU, the
// repository's one bounded single-flight cache primitive (the same type
// fronts the durable recovered-code registry inside store.Store). The engine
// keeps its caches at the object layer — sharing *core.Profile pointers, no
// serialization — because exact profiles are recomputed many times within a
// process (Figure 5 sweeps, ablations) but never need to survive it.

const (
	defaultProfileCacheSize = 256
	defaultPatternCacheSize = 64
)

// profileKey identifies one exact miscorrection profile: the code (by
// fingerprint and shape), the pattern family, and the cell polarity — the
// anti flag selects the anti-cell error model, whose profiles differ from the
// true-cell ones for the same code and patterns (see core.ExactProfileAnti).
type profileKey struct {
	fp   uint64
	n, k int
	set  core.PatternSet
	anti bool
}

// codeFingerprint hashes a code's shape and parity-check columns (FNV-1a).
// Codes with equal H always collide, which is the point: the cache returns
// the same profile object for repeated queries of the same function.
func codeFingerprint(c *ecc.Code) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(c.N()))
	mix(uint64(c.K()))
	for j := 0; j < c.N(); j++ {
		mix(c.Column(j).Uint64())
	}
	return h
}

// ExactProfile returns the analytic miscorrection profile of a known code for
// a pattern family and cell polarity, memoized in the engine's LRU cache.
// Repeated queries for the same (code, polarity, pattern family) return the
// same *core.Profile object without recomputation — concurrent first
// requests single-flight — so callers must treat the result as read-only.
func (e *Engine) ExactProfile(code *ecc.Code, set core.PatternSet, anti bool) *core.Profile {
	key := profileKey{fp: codeFingerprint(code), n: code.N(), k: code.K(), set: set, anti: anti}
	return e.profiles.Get(key, func() *core.Profile {
		patterns := e.Patterns(set, code.K())
		if anti {
			return core.ExactProfileAnti(code, patterns)
		}
		return core.ExactProfile(code, patterns)
	})
}

// CacheStats reports the profile cache's (hits, requests) counters.
func (e *Engine) CacheStats() (hits, requests int64) {
	return e.profiles.Stats()
}

// patternKey identifies a materialized pattern family.
type patternKey struct {
	set core.PatternSet
	k   int
}

// Patterns materializes a pattern family for dataword length k, memoized.
// The 2-CHARGED family is quadratic in k and sweeps like Figure 5 request it
// once per trial; callers must not mutate the returned slice.
func (e *Engine) Patterns(set core.PatternSet, k int) []core.Pattern {
	return e.patterns.Get(patternKey{set: set, k: k}, func() []core.Pattern {
		return set.Patterns(k)
	})
}

// newProfileCache and newPatternCache size the engine's caches.
func newProfileCache() *store.LRU[profileKey, *core.Profile] {
	return store.NewLRU[profileKey, *core.Profile](defaultProfileCacheSize)
}

func newPatternCache() *store.LRU[patternKey, []core.Pattern] {
	return store.NewLRU[patternKey, []core.Pattern](defaultPatternCacheSize)
}
