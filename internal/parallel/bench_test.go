package parallel

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/einsim"
	"repro/internal/ondie"
)

// benchSimWords sizes the simulation benchmarks: large enough that sharding
// overhead is amortized, small enough for -benchtime 1x CI runs.
const benchSimWords = 16 * simShardWords

// BenchmarkSerialSimulate is the single-goroutine baseline the parallel
// engine is measured against.
func BenchmarkSerialSimulate(b *testing.B) {
	cfg := simConfig(benchSimWords)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := einsim.Run(cfg, rand.New(rand.NewPCG(1, uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSimulate shards the same workload across the machine.
func BenchmarkParallelSimulate(b *testing.B) {
	cfg := simConfig(benchSimWords)
	e := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Simulate(context.Background(), cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollectChips is the shard count for the collection benchmarks,
// modeling the paper's §6.3 multi-chip parallelization.
const benchCollectChips = 4

func benchChip(seed uint64) *ondie.Chip {
	return ondie.MustNew(ondie.Config{
		Manufacturer:  ondie.MfrB,
		DataBits:      16,
		Banks:         1,
		Rows:          128,
		RegionsPerRow: 8,
		Seed:          seed,
	})
}

// BenchmarkSerialCollect gathers counts from N same-model chips one after the
// other and merges them — the pre-engine code path.
func BenchmarkSerialCollect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var merged *core.Counts
		for shard := 0; shard < benchCollectChips; shard++ {
			counts, err := collectFromChip(benchChip(uint64(shard + 1)))
			if err != nil {
				b.Fatal(err)
			}
			if merged == nil {
				merged = counts
				continue
			}
			if err := merged.Merge(counts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParallelCollect fans the same N chips out across the worker pool.
func BenchmarkParallelCollect(b *testing.B) {
	e := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.CollectShards(context.Background(), benchCollectChips, func(shard int) (*core.Counts, error) {
			return collectFromChip(benchChip(uint64(shard + 1)))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelRecover times the full multi-chip BEER pipeline on the
// engine (discovery + collection fan-out, merged counts, one solve).
func BenchmarkParallelRecover(b *testing.B) {
	opts := core.DefaultRecoverOptions()
	opts.Collect = collectOpts()
	opts.Collect.Rounds = 3
	e := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chips := []core.Chip{testChip(b, 200), testChip(b, 201)}
		rep, err := e.Recover(context.Background(), chips, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Result.Unique {
			b.Fatal("recovery not unique")
		}
	}
}

// BenchmarkExactProfileCached measures the LRU cache's effect on repeated
// profile queries (every iteration after the first is a hit).
func BenchmarkExactProfileCached(b *testing.B) {
	e := New(0)
	code := ecc.RandomHamming(64, rand.New(rand.NewPCG(1, 1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ExactProfile(code, core.Set12, false)
	}
}

// BenchmarkExactProfileUncached is the same query without memoization.
func BenchmarkExactProfileUncached(b *testing.B) {
	code := ecc.RandomHamming(64, rand.New(rand.NewPCG(1, 1)))
	patterns := core.Set12.Patterns(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ExactProfile(code, patterns)
	}
}
