package parallel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// CollectShards runs n independent miscorrection-count collectors across the
// worker pool and merges their counts in shard order via core.Counts.Merge.
// This is the paper's §6.3 parallelization: counts gathered from several
// chips (or banks) of the same model simply add. Each collector must be
// self-contained (own chip, own rows) — core.Chip implementations are
// stateful and not safe to share between shards. The merged result is
// bit-identical for any worker count because each shard's collection is
// deterministic in isolation and the merge order is fixed. Cancelling ctx
// stops scheduling further shards and returns ctx.Err().
func (e *Engine) CollectShards(ctx context.Context, n int, collect func(shard int) (*core.Counts, error)) (*core.Counts, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parallel: no collection shards")
	}
	counts := make([]*core.Counts, n)
	err := e.ForEach(ctx, n, func(i int) error {
		c, err := collect(i)
		if err != nil {
			return err
		}
		counts[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := counts[0]
	for _, c := range counts[1:] {
		if err := merged.Merge(c); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// Recover runs the complete BEER methodology against several chips of the
// same model, fanning the expensive discovery and profile-collection steps
// (core.Observe) out one-chip-per-task across the worker pool and merging the
// observation counts before a single solve (§6.3: same-model chips share an
// ECC function, so their counts add). With one chip it is core.Recover with
// the same semantics, except that the report's DiscoveryTime and CollectTime
// cover the combined parallel phase. The report's discovery fields come from
// the first chip; every chip must discover the identical word layout, since
// counts collected under different layouts refer to different physical bits.
//
// Cancelling ctx stops every chip's collection at its next pass boundary and
// interrupts an in-flight SAT solve; the error is ctx.Err(). Progress events
// (opts.Progress) are stamped with the chip index and serialized: the
// callback never runs concurrently with itself for one Recover call.
func (e *Engine) Recover(ctx context.Context, chips []core.Chip, opts core.RecoverOptions) (*core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(chips) == 0 {
		return nil, fmt.Errorf("parallel: no chips")
	}
	rep := &core.Report{}

	start := time.Now()
	observations := make([]*core.ChipObservations, len(chips))
	var progressMu sync.Mutex
	progress := opts.Progress
	err := e.ForEach(ctx, len(chips), func(i int) error {
		chipOpts := opts
		if progress != nil {
			chipOpts.Progress = func(ev core.Event) {
				ev.Chip = i
				progressMu.Lock()
				defer progressMu.Unlock()
				progress(ev)
			}
		}
		obs, err := core.Observe(ctx, chips[i], chipOpts)
		if err != nil {
			return fmt.Errorf("chip %d: %w", i, err)
		}
		observations[i] = obs
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("parallel: %w", err)
	}
	rep.CellClasses = observations[0].CellClasses
	rep.Layout = observations[0].Layout
	rep.K = observations[0].Layout.K()
	for i, obs := range observations[1:] {
		if !obs.Layout.Equal(rep.Layout) {
			return rep, fmt.Errorf("parallel: chip %d discovered a different word layout than chip 0 (different models?)", i+1)
		}
	}

	counts := observations[0].Counts
	for _, obs := range observations[1:] {
		if err := counts.Merge(obs.Counts); err != nil {
			return rep, fmt.Errorf("parallel: merging counts: %w", err)
		}
	}
	var anti *core.Counts
	for _, obs := range observations {
		switch {
		case obs.AntiCounts == nil:
		case anti == nil:
			anti = obs.AntiCounts
		default:
			if err := anti.Merge(obs.AntiCounts); err != nil {
				return rep, fmt.Errorf("parallel: merging anti counts: %w", err)
			}
		}
	}
	rep.Counts = counts
	rep.Profile = counts.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount)
	if anti != nil {
		rep.Profile = rep.Profile.Append(anti.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount))
	}
	rep.CollectTime = time.Since(start)

	start = time.Now()
	// SolveStage consults opts.SolveCache first: a previously solved
	// canonical profile hash replays its Result with no SAT invocation.
	res, err := core.SolveStage(ctx, rep.Profile, opts)
	rep.SolveTime = time.Since(start)
	if err != nil {
		return rep, fmt.Errorf("parallel: solve: %w", err)
	}
	rep.Result = res
	if progress != nil {
		progress(core.Event{Stage: core.StageSolve, Candidates: len(res.Codes), Done: true})
	}
	return rep, nil
}
