package parallel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// CollectShards runs n independent miscorrection-count collectors across the
// worker pool and merges their counts in shard order via core.Counts.Merge.
// This is the paper's §6.3 parallelization: counts gathered from several
// chips (or banks) of the same model simply add. Each collector must be
// self-contained (own chip, own rows) — core.Chip implementations are
// stateful and not safe to share between shards. The merged result is
// bit-identical for any worker count because each shard's collection is
// deterministic in isolation and the merge order is fixed. Cancelling ctx
// stops scheduling further shards and returns ctx.Err().
func (e *Engine) CollectShards(ctx context.Context, n int, collect func(shard int) (*core.Counts, error)) (*core.Counts, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parallel: no collection shards")
	}
	counts := make([]*core.Counts, n)
	err := e.ForEach(ctx, n, func(i int) error {
		c, err := collect(i)
		if err != nil {
			return err
		}
		counts[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := counts[0]
	for _, c := range counts[1:] {
		if err := merged.Merge(c); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// Recover runs the complete BEER methodology against several chips of the
// same model, fanning the expensive discovery and profile-collection steps
// (core.Observe) out one-chip-per-task across the worker pool and merging the
// observation counts before a single solve (§6.3: same-model chips share an
// ECC function, so their counts add). With one chip it is core.Recover with
// the same semantics, except that the report's DiscoveryTime and CollectTime
// cover the combined parallel phase. The report's discovery fields come from
// the first chip; every chip must discover the identical word layout, since
// counts collected under different layouts refer to different physical bits.
//
// Cancelling ctx stops every chip's collection at its next pass boundary and
// interrupts an in-flight SAT solve; the error is ctx.Err(). Progress events
// (opts.Progress) are stamped with the chip index and serialized: the
// callback never runs concurrently with itself for one Recover call.
func (e *Engine) Recover(ctx context.Context, chips []core.Chip, opts core.RecoverOptions) (*core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(chips) == 0 {
		return nil, fmt.Errorf("parallel: no chips")
	}
	if opts.UsePlanner {
		return e.recoverPlanned(ctx, chips, opts)
	}
	rep := &core.Report{}

	start := time.Now()
	observations := make([]*core.ChipObservations, len(chips))
	var progressMu sync.Mutex
	progress := opts.Progress
	err := e.ForEach(ctx, len(chips), func(i int) error {
		chipOpts := opts
		if progress != nil {
			chipOpts.Progress = func(ev core.Event) {
				ev.Chip = i
				progressMu.Lock()
				defer progressMu.Unlock()
				progress(ev)
			}
		}
		obs, err := core.Observe(ctx, chips[i], chipOpts)
		if err != nil {
			return fmt.Errorf("chip %d: %w", i, err)
		}
		observations[i] = obs
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("parallel: %w", err)
	}
	rep.CellClasses = observations[0].CellClasses
	rep.Layout = observations[0].Layout
	rep.K = observations[0].Layout.K()
	for i, obs := range observations[1:] {
		if !obs.Layout.Equal(rep.Layout) {
			return rep, fmt.Errorf("parallel: chip %d discovered a different word layout than chip 0 (different models?)", i+1)
		}
	}

	counts := observations[0].Counts
	for _, obs := range observations[1:] {
		if err := counts.Merge(obs.Counts); err != nil {
			return rep, fmt.Errorf("parallel: merging counts: %w", err)
		}
	}
	var anti *core.Counts
	for _, obs := range observations {
		switch {
		case obs.AntiCounts == nil:
		case anti == nil:
			anti = obs.AntiCounts
		default:
			if err := anti.Merge(obs.AntiCounts); err != nil {
				return rep, fmt.Errorf("parallel: merging anti counts: %w", err)
			}
		}
	}
	rep.Counts = counts
	rep.Profile = counts.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount)
	if anti != nil {
		rep.Profile = rep.Profile.Append(anti.Threshold(opts.ThresholdFraction, opts.ThresholdMinCount))
	}
	if opts.PerturbProfile != nil {
		rep.Profile = opts.PerturbProfile(rep.Profile)
	}
	rep.CollectTime = time.Since(start)

	start = time.Now()
	// SolveStage consults opts.SolveCache first: a previously solved
	// canonical profile hash replays its Result with no SAT invocation.
	res, err := core.SolveStage(ctx, rep.Profile, opts)
	rep.SolveTime = time.Since(start)
	if err != nil {
		return rep, fmt.Errorf("parallel: solve: %w", err)
	}
	rep.Result = res
	if progress != nil {
		progress(core.Event{Stage: core.StageSolve, Candidates: len(res.Codes), Done: true})
	}
	return rep, nil
}

// recoverPlanned is the multi-chip adaptive-planner recovery behind
// Engine.Recover with RecoverOptions.UsePlanner: discovery fans out one
// chip per task, then a single core.Planner drives batched collection —
// each batch fanning out across every chip with the merged counts feeding
// the persistent incremental solver — and the whole fleet stops collecting
// the moment the code is uniquely determined (§6.3 parallelization with
// solver-in-the-loop early termination). Progress events are chip-stamped
// and serialized exactly like Recover's, with batch pass counters kept
// monotonic across the planned run.
func (e *Engine) recoverPlanned(ctx context.Context, chips []core.Chip, opts core.RecoverOptions) (*core.Report, error) {
	if opts.UseAntiRows {
		return nil, fmt.Errorf("parallel: the adaptive planner does not support anti-cell collection")
	}
	rep := &core.Report{}
	progress := opts.Progress
	var progressMu sync.Mutex
	chipProgress := func(i int) core.ProgressFunc {
		if progress == nil {
			return nil
		}
		return func(ev core.Event) {
			ev.Chip = i
			progressMu.Lock()
			defer progressMu.Unlock()
			progress(ev)
		}
	}

	start := time.Now()
	type discovery struct {
		classes [][]core.CellClass
		rows    []core.RowRef
		layout  core.WordLayout
	}
	discovered := make([]discovery, len(chips))
	err := e.ForEach(ctx, len(chips), func(i int) error {
		if fn := chipProgress(i); fn != nil {
			fn(core.Event{Stage: core.StageDiscover})
		}
		classes, rows, layout, err := core.DiscoverChip(chips[i], opts)
		if err != nil {
			return fmt.Errorf("chip %d: %w", i, err)
		}
		discovered[i] = discovery{classes: classes, rows: rows, layout: layout}
		if fn := chipProgress(i); fn != nil {
			fn(core.Event{Stage: core.StageDiscover, Done: true})
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("parallel: %w", err)
	}
	rep.CellClasses = discovered[0].classes
	rep.Layout = discovered[0].layout
	rep.K = discovered[0].layout.K()
	for i, d := range discovered[1:] {
		if !d.layout.Equal(rep.Layout) {
			return rep, fmt.Errorf("parallel: chip %d discovered a different word layout than chip 0 (different models?)", i+1)
		}
	}
	rep.DiscoveryTime = time.Since(start)

	planner, err := core.NewPlanner(rep.K, opts)
	if err != nil {
		return rep, err
	}
	collectOpts := opts.Collect
	if collectOpts.Progress == nil {
		collectOpts.Progress = opts.Progress
	}
	// One pass-offsetter per chip keeps every chip's batch pass counters
	// monotonic; the offsets advance in lockstep since every chip runs the
	// same sweep per batch. Collect events are chip-stamped and serialized
	// like Recover's.
	offsets := make([]*core.CollectPassOffset, len(chips))
	for i := range offsets {
		var stamped core.ProgressFunc
		if base := collectOpts.Progress; base != nil {
			i := i
			stamped = func(ev core.Event) {
				ev.Chip = i
				progressMu.Lock()
				defer progressMu.Unlock()
				base(ev)
			}
		}
		offsets[i] = core.NewCollectPassOffset(stamped)
	}
	res, err := planner.Run(ctx, func(ctx context.Context, patterns []core.Pattern) (*core.Counts, error) {
		batchFns := make([]core.ProgressFunc, len(chips))
		for i := range chips {
			batchFns[i] = offsets[i].Next(collectOpts)
		}
		return e.CollectShards(ctx, len(chips), func(i int) (*core.Counts, error) {
			batchOpts := collectOpts
			batchOpts.Progress = batchFns[i]
			return core.CollectCounts(ctx, chips[i], discovered[i].rows, rep.Layout, patterns, batchOpts)
		})
	})
	rep.Counts = planner.Counts()
	rep.Profile = planner.Profile()
	info := planner.Info()
	rep.Plan = &info
	rep.CollectTime, rep.SolveTime = planner.Times()
	if err != nil {
		return rep, fmt.Errorf("parallel: planned recovery: %w", err)
	}
	rep.Result = res
	if opts.SolveCache != nil {
		opts.SolveCache.Store(rep.Profile, res)
	}
	if progress != nil {
		progress(core.Event{Stage: core.StageCollect, Done: true})
		progress(core.Event{
			Stage: core.StageSolve, Candidates: len(res.Codes), Done: true,
			Conflicts: res.Stats.Conflicts, Propagations: res.Stats.Propagations,
			PatternsUsed: info.PatternsUsed, PatternsPlanned: info.PatternsFull,
		})
	}
	return rep, nil
}
