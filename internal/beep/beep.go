// Package beep implements BEEP (Bit-Exact Error Profiling), the paper's §7.1
// demonstration of what a BEER-recovered ECC function enables: reconstructing
// the number and bit-exact locations of pre-correction error-prone cells —
// including cells in the inaccessible parity bits — purely from observed
// post-correction errors.
//
// BEEP's three phases (paper Figure 7):
//
//  1. Craft test patterns with a SAT solver so that (a) the target cell is
//     CHARGED with its neighbors DISCHARGED (worst-case coupling) and (b) a
//     miscorrection becomes observable if the target fails alongside
//     already-discovered errors.
//  2. Test experimentally: write the pattern, induce retention errors, read.
//  3. Calculate pre-correction error locations: an observed miscorrection at
//     data bit b reveals the error syndrome H_col(b); solving Equation 4
//     recovers the full pre-correction codeword, including parity bits, and
//     the XOR against the written codeword is the bit-exact error pattern.
//
// Bootstrap note: the paper's constraint (2) references already-identified
// errors, which do not exist for the very first bits. This implementation
// bootstraps by letting the SAT solver treat every CHARGED cell as a
// potential error (the same relaxation BEER's own analysis uses), so early
// patterns are miscorrection-prone for whatever errors happen to exist; once
// real errors are identified, crafting narrows to them as the paper
// describes.
//
// Entry points: NewProfiler + Profiler.Run profile one WordTester
// (facade: repro.Pipeline.ProfileWord); Evaluate reproduces the paper's
// Figure 8/9 success-rate grids. SimWord is the simulated WordTester;
// adapters over real chip rows would implement the same two-method
// interface. Run takes a context and stops at the next target bit.
package beep

import (
	"context"
	"errors"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/sat"
)

// WordTester abstracts one profilable ECC word: write a dataword, expose it
// to the error mechanism, and read back the post-correction dataword.
// Implementations: SimWord (simulation), or adapters over real chip rows.
type WordTester interface {
	Test(data gf2.Vec) gf2.Vec
}

// Options configures a BEEP profiling run.
type Options struct {
	// Passes over the codeword (paper Figure 8 evaluates 1 vs 2).
	Passes int
	// TrialsPerPattern repeats each crafted pattern to catch probabilistic
	// errors (the paper mentions multiple passes for low-probability cells).
	TrialsPerPattern int
	// WorstCaseNeighbors requires neighbors of the target cell to be
	// DISCHARGED (constraint 1). Disabled automatically per-bit when it
	// makes crafting infeasible.
	WorstCaseNeighbors bool
	// Crafter selects the pattern-crafting engine: the paper's SAT approach
	// (default) or the linear-algebra formulation of §7.3 (see linear.go).
	Crafter Crafter
	// CraftTimeout bounds each SAT craft in wall-clock time (0 = unlimited)
	// with HARP's discard semantics: a timed-out craft is dropped like an
	// infeasible one — the target bit is skipped and the run continues on
	// the same warm solver. Only the SAT crafter observes it; the linear
	// crafter has no search to bound.
	CraftTimeout time.Duration
}

// DefaultOptions mirror the paper's single-pass configuration.
func DefaultOptions() Options {
	return Options{Passes: 1, TrialsPerPattern: 1, WorstCaseNeighbors: true}
}

// Outcome reports a profiling run's findings.
type Outcome struct {
	// Identified lists the codeword bit positions of discovered error-prone
	// cells, ascending.
	Identified []int
	// SkippedBits counts target bits for which no usable pattern existed.
	SkippedBits int
	// PatternsTested counts crafted-and-run patterns.
	PatternsTested int
	// Miscorrections counts observed (unambiguous) miscorrection events.
	Miscorrections int
	// CraftTimeouts counts SAT crafts discarded by Options.CraftTimeout
	// (each is also reflected in SkippedBits unless a fallback craft
	// succeeded for the same target).
	CraftTimeouts int
}

// Profiler runs BEEP against a known ECC function.
type Profiler struct {
	code *ecc.Code
	opts Options
	rng  *rand.Rand
	// pmat is the code's P submatrix, cloned once; Code.P() clones per call
	// and inferErrors runs on every observed miscorrection.
	pmat gf2.Mat
	// satNarrow and satBoot are the persistent incremental crafters, built
	// on first use. Every craftSAT call solves the same formula under
	// different assumptions. Suspect-restricted ("narrow") and bootstrap
	// (all-cells) crafts run on separate solver instances so that the
	// bootstrap solves — whose assumption sets share nothing with the narrow
	// ones — do not evict the narrow chain's reusable propagation trail.
	satNarrow *satCrafter
	satBoot   *satCrafter

	suspectBuf []int // craftPattern scratch, reused across crafts
	allCells   []int // [0..n), built lazily, shared by bootstrap crafts

	craftTimeouts int // SAT crafts discarded by CraftTimeout this Run
}

// NewProfiler builds a profiler for the given (BEER-recovered) code.
func NewProfiler(code *ecc.Code, opts Options, rng *rand.Rand) *Profiler {
	if opts.Passes <= 0 {
		opts.Passes = 1
	}
	if opts.TrialsPerPattern <= 0 {
		opts.TrialsPerPattern = 1
	}
	return &Profiler{code: code, opts: opts, rng: rng, pmat: code.P()}
}

// Run profiles one ECC word, returning every error-prone cell identified.
// Cancelling ctx stops the run at the next target bit and returns ctx.Err()
// (the outcome so far is discarded: a partial profile would misreport
// unvisited cells as error-free). A nil ctx means context.Background().
func (p *Profiler) Run(ctx context.Context, w WordTester) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{}
	p.craftTimeouts = 0
	known := map[int]bool{}
	for pass := 0; pass < p.opts.Passes; pass++ {
		for target := 0; target < p.code.N(); target++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			data, ok := p.craftPattern(target, known)
			if !ok {
				out.SkippedBits++
				continue
			}
			for trial := 0; trial < p.opts.TrialsPerPattern; trial++ {
				out.PatternsTested++
				got := w.Test(data)
				if errs, ok := p.inferErrors(data, got); ok {
					out.Miscorrections++
					for _, e := range errs {
						known[e] = true
					}
				}
			}
		}
	}
	for e := range known {
		out.Identified = append(out.Identified, e)
	}
	sort.Ints(out.Identified)
	out.CraftTimeouts = p.craftTimeouts
	return out, nil
}

// craftPattern builds a dataword whose encoded codeword (a) charges the
// target bit, (b) discharges its neighbors when configured, and (c) can
// exhibit an observable miscorrection if the target fails together with
// known (or, when none are known, any) errors. Phase 1 of Figure 7.
func (p *Profiler) craftPattern(target int, known map[int]bool) (gf2.Vec, bool) {
	// Suspects: known errors plus the target, in a buffer reused across the
	// passes×n crafts of a run. When nothing is known yet, all cells are
	// candidate failures (bootstrap; see package comment).
	suspects := p.suspectBuf[:0]
	for e := range known {
		if e != target {
			suspects = append(suspects, e)
		}
	}
	sort.Ints(suspects)
	suspects = append(suspects, target)
	p.suspectBuf = suspects

	// Bootstrap / last resort companion set: any charged cell may be a
	// failure candidate. The linear crafter samples companions rather than
	// taking all n cells; randomness comes from the profiler's rng either
	// way.
	if p.allCells == nil {
		p.allCells = make([]int, p.code.N())
		for i := range p.allCells {
			p.allCells[i] = i
		}
	}
	all := p.allCells

	if p.opts.Crafter == CrafterLinear {
		if d, ok := p.craftLinear(target, suspects, p.opts.WorstCaseNeighbors); ok {
			return d, true
		}
		if len(known) > 0 {
			// Constraint 1 may be the blocker; the paper drops it before
			// giving up (§7.1.2).
			if d, ok := p.craftLinear(target, suspects, false); ok {
				return d, true
			}
		}
		if d, ok := p.craftLinear(target, all, p.opts.WorstCaseNeighbors); ok {
			return d, true
		}
		return p.craftLinear(target, all, false)
	}
	// The SAT crafter relaxes constraint 1 incrementally: the neighbor
	// clauses are guarded by an activation literal asserted via solver
	// assumptions, so dropping them re-solves the same (already learned-in)
	// formula instead of rebuilding it.
	//
	// A lone suspect (the target itself, nothing known yet) can never craft:
	// the selected-failure syndrome would be the target's own H column, whose
	// only landing bit is the target — which constraint 1 forces CHARGED.
	// Hamming columns are distinct, so that solve is UNSAT by construction;
	// skip straight to the bootstrap set instead of paying for it.
	if len(suspects) > 1 {
		if d, ok := p.craftSAT(target, suspects, p.opts.WorstCaseNeighbors, len(known) > 0); ok {
			return d, true
		}
	}
	return p.craftSAT(target, all, p.opts.WorstCaseNeighbors, true)
}

// satCrafter is the persistent incremental form of the phase-1 SAT problem.
// The formula is target- and suspect-agnostic: it is built once per Profiler
// and every craftSAT call selects its sub-problem purely through solver
// assumptions, so learned clauses, Tseitin gates and saved phases carry over
// across all targets and passes. (Building a fresh CNF per target dominated
// the Figure 8/9 runtime before this.)
//
// Per-call specialization, all via assumptions — no clause is ever added
// after construction:
//   - cw[target] and sel[target] are assumed directly: "target CHARGED and
//     selected as a failure" (assumptions are arbitrary literals, so Tseitin
//     parity gates work as targets too).
//   - ¬cw[target±1] are assumed for the worst-case neighbor-discharge
//     constraint, last so a relaxed retry just truncates them.
//   - ¬sel[e] is assumed for every cell e outside the call's suspect set,
//     which collapses the full-width syndrome XORs to the suspect-only XORs
//     the per-call formulation would have built.
//
// Pattern diversity across calls comes from re-randomizing the data bits'
// polarities and branching activity before every solve: the data variables
// outrank the Tseitin gates, so each model follows that call's fresh random
// phases rather than the saved phases of the previous model.
//
// With the clause database frozen, consecutive solves that share an
// assumption prefix reuse the solver's propagation trail (see
// sat.SolveUnderAssumptions). The ¬sel assumptions are ordered first,
// ascending by cell, because the suspect set changes by only a couple of
// cells between consecutive targets.
type satCrafter struct {
	s     *sat.Solver
	dVars []int
	cw    []sat.Lit // codeword literals: data vars, then parity XOR gates
	sel   []sat.Lit // per-cell "selected failure" literals, all n cells

	suspect []bool    // scratch: membership mask for the current call
	assumps []sat.Lit // scratch: assumption buffer reused across calls
}

// crafter returns one of the profiler's persistent SAT crafters, building the
// shared formula on first use. Bootstrap (all-cells) and narrow crafts get
// separate instances; see the Profiler field comment.
func (p *Profiler) crafter(bootstrap bool) *satCrafter {
	slot := &p.satNarrow
	if bootstrap {
		slot = &p.satBoot
	}
	if *slot != nil {
		return *slot
	}
	n, k, r := p.code.N(), p.code.K(), p.code.ParityBits()
	c := &satCrafter{s: sat.New()}
	s := c.s
	// The wall-clock craft budget applies per SolveUnderAssumptions call;
	// a timed-out craft is discarded (HARP semantics) and the solver stays
	// warm for the next target.
	s.SetTimeout(p.opts.CraftTimeout)
	// The formula's variable count is known up front: k data + r parity +
	// n sel + r syndrome + k ReifyAnd gates. Reserving once removes the
	// slice-growth churn of incremental NewVar calls (a crafter pair is
	// rebuilt for every profiled word).
	s.Reserve(n + 2*k + 2*r + 16)
	c.dVars = make([]int, k)
	for j := range c.dVars {
		c.dVars[j] = s.NewVar()
	}
	// Codeword literals: data bits directly, parity bits as XORs of the data
	// bits in their parity-check row.
	c.cw = make([]sat.Lit, n)
	for j := 0; j < k; j++ {
		c.cw[j] = sat.PosLit(c.dVars[j])
	}
	// Parity bits are native XOR constraints (parityVar ⊕ data-row = 0)
	// rather than Tseitin XOR2 trees: the solver then re-derives a parity bit
	// in one forced assignment per re-solve instead of walking the whole tree.
	var xlits []sat.Lit
	for i := 0; i < r; i++ {
		pv := s.NewVar()
		c.cw[k+i] = sat.PosLit(pv)
		xlits = xlits[:0]
		for j := 0; j < k; j++ {
			if p.pmat.Get(i, j) {
				xlits = append(xlits, sat.PosLit(c.dVars[j]))
			}
		}
		xlits = append(xlits, c.cw[k+i])
		s.AddXor(xlits, false)
	}
	// Constraint 2 skeleton: every cell gets a "selected failure" literal
	// (only charged cells can fail); the selected set's syndrome must equal
	// the H column of some DISCHARGED, unselected data bit.
	c.sel = make([]sat.Lit, n)
	for e := 0; e < n; e++ {
		l := sat.PosLit(s.NewVar())
		c.sel[e] = l
		s.Implies(l, c.cw[e])
	}
	// Syndrome bits of the selected-failure set, likewise native XORs over
	// the sel variables in each H row.
	h := p.code.H()
	synd := make([]sat.Lit, r)
	for i := 0; i < r; i++ {
		sv := s.NewVar()
		synd[i] = sat.PosLit(sv)
		xlits = xlits[:0]
		for e := 0; e < n; e++ {
			if h.Get(i, e) {
				xlits = append(xlits, c.sel[e])
			}
		}
		xlits = append(xlits, synd[i])
		s.AddXor(xlits, false)
	}
	hits := make([]sat.Lit, 0, k)
	conds := make([]sat.Lit, 0, r+2)
	for b := 0; b < k; b++ {
		conds = conds[:0]
		col := p.code.Column(b)
		for i := 0; i < r; i++ {
			if col.Get(i) {
				conds = append(conds, synd[i])
			} else {
				conds = append(conds, synd[i].Not())
			}
		}
		conds = append(conds, c.cw[b].Not())  // landing bit must be DISCHARGED
		conds = append(conds, c.sel[b].Not()) // and not itself a selected failure
		hits = append(hits, s.ReifyAnd(conds...))
	}
	s.AddClause(hits...)

	// Branch on data bits before gate variables, permanently: an explicit
	// decision order outranks conflict-driven activity without per-craft heap
	// maintenance. Per-call model diversity comes from re-randomized
	// polarities alone.
	s.SetDecisionOrder(c.dVars)

	c.suspect = make([]bool, n)
	*slot = c
	return c
}

// craftSAT encodes phase 1 as SAT: dataword bits are free variables; parity
// bits are XOR gates; the miscorrection condition is an OR over candidate
// landing bits of "syndrome of the selected failures equals that bit's H
// column while the bit is DISCHARGED".
//
// The formula lives on a persistent solver shared by every call (see
// satCrafter); this call only pushes assumptions. When the worst-case
// neighbor clauses make crafting infeasible and relaxAllowed is set, the
// relaxed retry drops just that guard on the warm solver — clause database,
// learned clauses, saved phases all carry over.
func (p *Profiler) craftSAT(target int, suspects []int, worstCase, relaxAllowed bool) (gf2.Vec, bool) {
	n, k := p.code.N(), p.code.K()
	c := p.crafter(len(suspects) == n)
	s := c.s
	for _, v := range c.dVars {
		// Bias free data bits toward CHARGED about half the time: dense,
		// varied patterns maximize the chance that the word's (unknown)
		// error-prone cells are charged together and produce an observable
		// miscorrection, while keeping enough DISCHARGED bits to land one.
		// Re-randomized every call so patterns vary across targets even
		// though the solver persists; the crafter's fixed decision order
		// guarantees the solver branches on data bits (not gate variables)
		// first, so models follow these phases.
		s.SetPolarity(v, p.rng.IntN(2) == 0)
	}
	// Most-stable assumptions first (see satCrafter doc): the ¬sel block
	// barely changes between consecutive targets, so the solver's trail
	// reuse skips re-propagating most of it; the per-target literals go
	// last, with the worst-case neighbor constraints at the very end so the
	// relaxed retry can truncate them without disturbing the prefix.
	for _, e := range suspects {
		c.suspect[e] = true
	}
	// The ¬sel block is ordered ascending by cell, except that the cells of
	// the target's reuseWindow-aligned window are deferred to the end of the
	// block. Consecutive targets share a window, so the long leading block is
	// IDENTICAL across a window's worth of solves and the solver's trail
	// reuse skips re-propagating it; plain ascending order would diverge at
	// the previous target's cell and cap reuse near 50%.
	const reuseWindow = 8
	base := target - target%reuseWindow
	hi := base + reuseWindow
	assumps := c.assumps[:0]
	for e := 0; e < n; e++ {
		if !c.suspect[e] && (e < base || e >= hi) {
			assumps = append(assumps, c.sel[e].Not())
		}
	}
	for e := base; e < hi && e < n; e++ {
		if !c.suspect[e] {
			assumps = append(assumps, c.sel[e].Not())
		}
	}
	for _, e := range suspects {
		c.suspect[e] = false
	}
	assumps = append(assumps, c.cw[target], c.sel[target])
	wcStart := len(assumps)
	if worstCase {
		if target > 0 {
			assumps = append(assumps, c.cw[target-1].Not())
		}
		if target+1 < n {
			assumps = append(assumps, c.cw[target+1].Not())
		}
	}

	ok, err := s.SolveUnderAssumptions(assumps...)
	if err == nil && !ok && relaxAllowed && len(assumps) > wcStart {
		// Constraint 1 was the blocker; the paper drops it before giving
		// up (§7.1.2). Truncating the assumptions deactivates the neighbor
		// constraints on the warm solver.
		assumps = assumps[:wcStart]
		ok, err = s.SolveUnderAssumptions(assumps...)
	}
	c.assumps = assumps[:0]
	if errors.Is(err, sat.ErrTimeout) {
		// HARP discard semantics: the craft is dropped, not retried — the
		// caller skips this target and the run continues on the warm solver.
		p.craftTimeouts++
	}
	if err != nil || !ok {
		return gf2.Vec{}, false
	}
	d := gf2.NewVec(k)
	for j := 0; j < k; j++ {
		d.Set(j, s.Value(c.dVars[j]))
	}
	return d, true
}

// inferErrors implements phase 3 (Equation 4): from an observed
// post-correction dataword containing an unambiguous miscorrection (a 0->1
// flip, impossible for retention decay in a true-cell region), reconstruct
// the full pre-correction codeword and return the exact error positions.
func (p *Profiler) inferErrors(written, got gf2.Vec) ([]int, bool) {
	k := p.code.K()
	miscorrected := -1
	for b := 0; b < k; b++ {
		if got.Get(b) && !written.Get(b) {
			miscorrected = b // the decoder's flip: retention errors only go 1->0
			break
		}
	}
	if miscorrected == -1 {
		return nil, false
	}
	// The decoder flipped bit `miscorrected`, so the internal syndrome was
	// that bit's H column.
	syndrome := p.code.Column(miscorrected)
	// Undo the flip to obtain the pre-correction data bits.
	preData := got.Clone()
	preData.Flip(miscorrected)
	// Equation 4: H * c' = s with the n-k parity bits of c' unknown. In
	// standard form H = [P | I], so parity' = s XOR P*data' — one unique
	// solution, as the paper notes (H has full rank).
	preParity := syndrome.Xor(p.pmat.MulVec(preData))
	preCodeword := preData.Concat(preParity)
	// Errors are the difference against what was actually stored.
	errVec := p.code.Encode(written).Xor(preCodeword)
	return errVec.Support(), true
}

// SimWord is a simulated ECC word with a fixed set of error-prone cells,
// used by the paper's §7.1.4 evaluation: each charged error-prone cell fails
// independently with probability PErr per test.
type SimWord struct {
	Code *ecc.Code
	// ErrorCells are codeword bit positions of error-prone cells.
	ErrorCells []int
	// PErr is the per-test failure probability of a charged error cell
	// (Figure 9 sweeps 0.25..1.0).
	PErr float64
	Rng  *rand.Rand
}

// Test implements WordTester: encode, decay error-prone charged cells,
// decode.
func (w *SimWord) Test(data gf2.Vec) gf2.Vec {
	cw := w.Code.Encode(data)
	for _, cell := range w.ErrorCells {
		if cw.Get(cell) && w.Rng.Float64() < w.PErr {
			cw.Set(cell, false) // CHARGED -> DISCHARGED
		}
	}
	return w.Code.Decode(cw).Data
}
