// Package beep implements BEEP (Bit-Exact Error Profiling), the paper's §7.1
// demonstration of what a BEER-recovered ECC function enables: reconstructing
// the number and bit-exact locations of pre-correction error-prone cells —
// including cells in the inaccessible parity bits — purely from observed
// post-correction errors.
//
// BEEP's three phases (paper Figure 7):
//
//  1. Craft test patterns with a SAT solver so that (a) the target cell is
//     CHARGED with its neighbors DISCHARGED (worst-case coupling) and (b) a
//     miscorrection becomes observable if the target fails alongside
//     already-discovered errors.
//  2. Test experimentally: write the pattern, induce retention errors, read.
//  3. Calculate pre-correction error locations: an observed miscorrection at
//     data bit b reveals the error syndrome H_col(b); solving Equation 4
//     recovers the full pre-correction codeword, including parity bits, and
//     the XOR against the written codeword is the bit-exact error pattern.
//
// Bootstrap note: the paper's constraint (2) references already-identified
// errors, which do not exist for the very first bits. This implementation
// bootstraps by letting the SAT solver treat every CHARGED cell as a
// potential error (the same relaxation BEER's own analysis uses), so early
// patterns are miscorrection-prone for whatever errors happen to exist; once
// real errors are identified, crafting narrows to them as the paper
// describes.
//
// Entry points: NewProfiler + Profiler.Run profile one WordTester
// (facade: repro.Pipeline.ProfileWord); Evaluate reproduces the paper's
// Figure 8/9 success-rate grids. SimWord is the simulated WordTester;
// adapters over real chip rows would implement the same two-method
// interface. Run takes a context and stops at the next target bit.
package beep

import (
	"context"
	"math/rand/v2"
	"sort"

	"repro/internal/ecc"
	"repro/internal/gf2"
	"repro/internal/sat"
)

// WordTester abstracts one profilable ECC word: write a dataword, expose it
// to the error mechanism, and read back the post-correction dataword.
// Implementations: SimWord (simulation), or adapters over real chip rows.
type WordTester interface {
	Test(data gf2.Vec) gf2.Vec
}

// Options configures a BEEP profiling run.
type Options struct {
	// Passes over the codeword (paper Figure 8 evaluates 1 vs 2).
	Passes int
	// TrialsPerPattern repeats each crafted pattern to catch probabilistic
	// errors (the paper mentions multiple passes for low-probability cells).
	TrialsPerPattern int
	// WorstCaseNeighbors requires neighbors of the target cell to be
	// DISCHARGED (constraint 1). Disabled automatically per-bit when it
	// makes crafting infeasible.
	WorstCaseNeighbors bool
	// Crafter selects the pattern-crafting engine: the paper's SAT approach
	// (default) or the linear-algebra formulation of §7.3 (see linear.go).
	Crafter Crafter
}

// DefaultOptions mirror the paper's single-pass configuration.
func DefaultOptions() Options {
	return Options{Passes: 1, TrialsPerPattern: 1, WorstCaseNeighbors: true}
}

// Outcome reports a profiling run's findings.
type Outcome struct {
	// Identified lists the codeword bit positions of discovered error-prone
	// cells, ascending.
	Identified []int
	// SkippedBits counts target bits for which no usable pattern existed.
	SkippedBits int
	// PatternsTested counts crafted-and-run patterns.
	PatternsTested int
	// Miscorrections counts observed (unambiguous) miscorrection events.
	Miscorrections int
}

// Profiler runs BEEP against a known ECC function.
type Profiler struct {
	code *ecc.Code
	opts Options
	rng  *rand.Rand
}

// NewProfiler builds a profiler for the given (BEER-recovered) code.
func NewProfiler(code *ecc.Code, opts Options, rng *rand.Rand) *Profiler {
	if opts.Passes <= 0 {
		opts.Passes = 1
	}
	if opts.TrialsPerPattern <= 0 {
		opts.TrialsPerPattern = 1
	}
	return &Profiler{code: code, opts: opts, rng: rng}
}

// Run profiles one ECC word, returning every error-prone cell identified.
// Cancelling ctx stops the run at the next target bit and returns ctx.Err()
// (the outcome so far is discarded: a partial profile would misreport
// unvisited cells as error-free). A nil ctx means context.Background().
func (p *Profiler) Run(ctx context.Context, w WordTester) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{}
	known := map[int]bool{}
	for pass := 0; pass < p.opts.Passes; pass++ {
		for target := 0; target < p.code.N(); target++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			data, ok := p.craftPattern(target, known)
			if !ok {
				out.SkippedBits++
				continue
			}
			for trial := 0; trial < p.opts.TrialsPerPattern; trial++ {
				out.PatternsTested++
				got := w.Test(data)
				if errs, ok := p.inferErrors(data, got); ok {
					out.Miscorrections++
					for _, e := range errs {
						known[e] = true
					}
				}
			}
		}
	}
	for e := range known {
		out.Identified = append(out.Identified, e)
	}
	sort.Ints(out.Identified)
	return out, nil
}

// craftPattern builds a dataword whose encoded codeword (a) charges the
// target bit, (b) discharges its neighbors when configured, and (c) can
// exhibit an observable miscorrection if the target fails together with
// known (or, when none are known, any) errors. Phase 1 of Figure 7.
func (p *Profiler) craftPattern(target int, known map[int]bool) (gf2.Vec, bool) {
	// Suspects: known errors plus the target. When nothing is known yet, all
	// cells are candidate failures (bootstrap; see package comment).
	suspects := make([]int, 0, len(known)+1)
	for e := range known {
		if e != target {
			suspects = append(suspects, e)
		}
	}
	sort.Ints(suspects)
	suspects = append(suspects, target)

	// Bootstrap / last resort companion set: any charged cell may be a
	// failure candidate. The linear crafter samples companions rather than
	// taking all n cells; randomness comes from the profiler's rng either
	// way.
	all := make([]int, p.code.N())
	for i := range all {
		all[i] = i
	}

	if p.opts.Crafter == CrafterLinear {
		if d, ok := p.craftLinear(target, suspects, p.opts.WorstCaseNeighbors); ok {
			return d, true
		}
		if len(known) > 0 {
			// Constraint 1 may be the blocker; the paper drops it before
			// giving up (§7.1.2).
			if d, ok := p.craftLinear(target, suspects, false); ok {
				return d, true
			}
		}
		if d, ok := p.craftLinear(target, all, p.opts.WorstCaseNeighbors); ok {
			return d, true
		}
		return p.craftLinear(target, all, false)
	}
	// The SAT crafter relaxes constraint 1 incrementally: the neighbor
	// clauses are guarded by an activation literal asserted via solver
	// assumptions, so dropping them re-solves the same (already learned-in)
	// formula instead of rebuilding it.
	if d, ok := p.craftSAT(target, suspects, p.opts.WorstCaseNeighbors, len(known) > 0); ok {
		return d, true
	}
	return p.craftSAT(target, all, p.opts.WorstCaseNeighbors, true)
}

// craftSAT encodes phase 1 as SAT: dataword bits are free variables; parity
// bits are XOR gates; the miscorrection condition is an OR over candidate
// landing bits of "syndrome of the selected failures equals that bit's H
// column while the bit is DISCHARGED".
//
// The worst-case neighbor clauses (constraint 1) are guarded by an
// activation literal and enabled via SolveUnderAssumptions, so when they
// make crafting infeasible and relaxAllowed is set, the relaxed retry
// reuses the same solver — clause database, learned clauses, saved phases —
// instead of rebuilding the CNF from scratch.
func (p *Profiler) craftSAT(target int, suspects []int, worstCase, relaxAllowed bool) (gf2.Vec, bool) {
	n, k, r := p.code.N(), p.code.K(), p.code.ParityBits()
	s := sat.New()
	dVars := make([]int, k)
	for j := range dVars {
		dVars[j] = s.NewVar()
		// Bias free data bits toward CHARGED about half the time, and make
		// sure the solver branches on data bits (not Tseitin gates) first:
		// dense, varied patterns maximize the chance that the word's
		// (unknown) error-prone cells are charged together and produce an
		// observable miscorrection, while keeping enough DISCHARGED bits to
		// land one.
		s.SetPolarity(dVars[j], p.rng.IntN(2) == 0)
		s.BoostActivity(dVars[j], 100+float64(p.rng.IntN(100)))
	}
	// Codeword literals: data bits directly, parity bits as XORs of the data
	// bits in their parity-check row.
	cw := make([]sat.Lit, n)
	for j := 0; j < k; j++ {
		cw[j] = sat.PosLit(dVars[j])
	}
	pmat := p.code.P()
	for i := 0; i < r; i++ {
		var lits []sat.Lit
		for j := 0; j < k; j++ {
			if pmat.Get(i, j) {
				lits = append(lits, sat.PosLit(dVars[j]))
			}
		}
		cw[k+i] = s.ReifyXor(lits...)
	}
	// Constraint 1: target charged, neighbors discharged (worst case). The
	// neighbor clauses activate only while `guard` is assumed.
	s.AddClause(cw[target])
	var assumps []sat.Lit
	if worstCase {
		guard := sat.PosLit(s.NewVar())
		if target > 0 {
			s.AddClause(guard.Not(), cw[target-1].Not())
		}
		if target+1 < n {
			s.AddClause(guard.Not(), cw[target+1].Not())
		}
		assumps = append(assumps, guard)
	}
	// Constraint 2: some subset of suspect failures (the target forced in)
	// produces a syndrome equal to a DISCHARGED data bit's column.
	sel := make(map[int]sat.Lit, len(suspects))
	for _, e := range suspects {
		l := sat.PosLit(s.NewVar())
		sel[e] = l
		s.Implies(l, cw[e]) // only charged cells can fail
	}
	s.AddClause(sel[target])
	synd := make([]sat.Lit, r)
	h := p.code.H()
	for i := 0; i < r; i++ {
		var lits []sat.Lit
		for _, e := range suspects {
			if h.Get(i, e) {
				lits = append(lits, sel[e])
			}
		}
		synd[i] = s.ReifyXor(lits...)
	}
	var hits []sat.Lit
	for b := 0; b < k; b++ {
		conds := make([]sat.Lit, 0, r+2)
		for i := 0; i < r; i++ {
			if p.code.Column(b).Get(i) {
				conds = append(conds, synd[i])
			} else {
				conds = append(conds, synd[i].Not())
			}
		}
		conds = append(conds, cw[b].Not()) // landing bit must be DISCHARGED
		if l, isSuspect := sel[b]; isSuspect {
			conds = append(conds, l.Not()) // and not itself a selected failure
		}
		hits = append(hits, s.ReifyAnd(conds...))
	}
	s.AddClause(hits...)

	ok, err := s.SolveUnderAssumptions(assumps...)
	if (err != nil || !ok) && len(assumps) > 0 && relaxAllowed {
		// Constraint 1 was the blocker; the paper drops it before giving
		// up (§7.1.2). Releasing the assumption deactivates the guarded
		// neighbor clauses on the warm solver.
		assumps = nil
		ok, err = s.Solve()
	}
	if err != nil || !ok {
		return gf2.Vec{}, false
	}
	d := gf2.NewVec(k)
	for j := 0; j < k; j++ {
		d.Set(j, s.Value(dVars[j]))
	}
	// Randomize the free variables across calls by blocking and re-solving a
	// few times; this spreads coverage over equivalent patterns.
	for spin := p.rng.IntN(3); spin > 0; spin-- {
		if !s.BlockModel(dVars) {
			break
		}
		ok, err := s.SolveUnderAssumptions(assumps...)
		if err != nil || !ok {
			break
		}
		for j := 0; j < k; j++ {
			d.Set(j, s.Value(dVars[j]))
		}
	}
	return d, true
}

// inferErrors implements phase 3 (Equation 4): from an observed
// post-correction dataword containing an unambiguous miscorrection (a 0->1
// flip, impossible for retention decay in a true-cell region), reconstruct
// the full pre-correction codeword and return the exact error positions.
func (p *Profiler) inferErrors(written, got gf2.Vec) ([]int, bool) {
	k := p.code.K()
	miscorrected := -1
	for b := 0; b < k; b++ {
		if got.Get(b) && !written.Get(b) {
			miscorrected = b // the decoder's flip: retention errors only go 1->0
			break
		}
	}
	if miscorrected == -1 {
		return nil, false
	}
	// The decoder flipped bit `miscorrected`, so the internal syndrome was
	// that bit's H column.
	syndrome := p.code.Column(miscorrected)
	// Undo the flip to obtain the pre-correction data bits.
	preData := got.Clone()
	preData.Flip(miscorrected)
	// Equation 4: H * c' = s with the n-k parity bits of c' unknown. In
	// standard form H = [P | I], so parity' = s XOR P*data' — one unique
	// solution, as the paper notes (H has full rank).
	preParity := syndrome.Xor(p.code.P().MulVec(preData))
	preCodeword := preData.Concat(preParity)
	// Errors are the difference against what was actually stored.
	errVec := p.code.Encode(written).Xor(preCodeword)
	return errVec.Support(), true
}

// SimWord is a simulated ECC word with a fixed set of error-prone cells,
// used by the paper's §7.1.4 evaluation: each charged error-prone cell fails
// independently with probability PErr per test.
type SimWord struct {
	Code *ecc.Code
	// ErrorCells are codeword bit positions of error-prone cells.
	ErrorCells []int
	// PErr is the per-test failure probability of a charged error cell
	// (Figure 9 sweeps 0.25..1.0).
	PErr float64
	Rng  *rand.Rand
}

// Test implements WordTester: encode, decay error-prone charged cells,
// decode.
func (w *SimWord) Test(data gf2.Vec) gf2.Vec {
	cw := w.Code.Encode(data)
	for _, cell := range w.ErrorCells {
		if cw.Get(cell) && w.Rng.Float64() < w.PErr {
			cw.Set(cell, false) // CHARGED -> DISCHARGED
		}
	}
	return w.Code.Decode(cw).Data
}
