package beep_test

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/ondie"
)

// BEEP against the DRAM substrate: profile a chip word whose weak cells are
// determined by the retention model, and compare against the chip's
// ground-truth weak-cell list. This is the paper's §7.1 flow end to end —
// BEER first recovers the ECC function, then BEEP uses it to find the
// pre-correction error locations through the data interface alone.
func TestBEEPOnChipWord(t *testing.T) {
	chip, err := ondie.New(ondie.Config{
		Manufacturer:  ondie.MfrA,
		DataBits:      16,
		Banks:         1,
		Rows:          64,
		RegionsPerRow: 16,
		Seed:          0xBEEBC,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The layout would come from BEER's discovery; use the known one here
	// (discovery is covered by core's tests).
	layout := core.WordLayout{RegionBytes: 4, Words: [][]int{{0, 2}, {1, 3}}}
	window := 40 * time.Minute

	profiled, nonEmpty := 0, 0
	for row := 0; row < 24 && nonEmpty < 6; row++ {
		for word := 0; word < 4; word++ {
			truth := chip.GroundTruthWeakCells(0, row, word, window)
			if len(truth) == 0 || len(truth) > 5 {
				continue // want words with a handful of weak cells
			}
			nonEmpty++
			tester := &beep.ChipWord{
				Chip:   chip,
				Layout: layout,
				Bank:   0,
				Row:    row,
				Word:   word,
				Window: window,
				TempC:  80,
			}
			prof := beep.NewProfiler(chip.GroundTruthCode(), beep.Options{
				Passes:             2,
				TrialsPerPattern:   1,
				WorstCaseNeighbors: true,
			}, rand.New(rand.NewPCG(uint64(row), uint64(word))))
			out, _ := prof.Run(context.Background(), tester)
			profiled++
			// Soundness: everything identified must be genuinely weak. The
			// VRT jitter can flip marginal cells either way, so allow the
			// comparison to be against the jitter-widened truth set.
			widened := map[int]bool{}
			for _, c := range chip.GroundTruthWeakCells(0, row, word, window+window/8) {
				widened[c] = true
			}
			for _, c := range out.Identified {
				if !widened[c] {
					t.Fatalf("row %d word %d: identified cell %d is not weak (truth %v)",
						row, word, c, truth)
				}
			}
		}
	}
	if nonEmpty == 0 {
		t.Skip("no suitable words with 1..5 weak cells at this window; adjust seed")
	}
	if profiled == 0 {
		t.Fatal("nothing profiled")
	}
}
