package beep

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

func TestInferErrorsRoundTrip(t *testing.T) {
	// Inject known error sets, force a miscorrection, and verify phase 3
	// recovers the exact cells — including parity-bit errors.
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		k := 8 + rng.IntN(50)
		code := ecc.RandomHamming(k, rng)
		p := NewProfiler(code, DefaultOptions(), rng)
		d := gf2.NewVec(k)
		for j := 0; j < k; j++ {
			d.Set(j, rng.IntN(2) == 1)
		}
		cw := code.Encode(d)
		// Pick 2 charged cells to fail.
		charged := cw.Support()
		if len(charged) < 2 {
			continue
		}
		a := charged[rng.IntN(len(charged))]
		b := charged[rng.IntN(len(charged))]
		if a == b {
			continue
		}
		bad := cw.Clone()
		bad.Set(a, false)
		bad.Set(b, false)
		dec := code.Decode(bad)
		// Only unambiguous miscorrections (0->1 in data) teach BEEP.
		if dec.FlippedBit < 0 || dec.FlippedBit >= k || cw.Get(dec.FlippedBit) {
			continue
		}
		errs, ok := p.inferErrors(d, dec.Data)
		if !ok {
			t.Fatalf("trial %d: visible miscorrection not detected", trial)
		}
		if len(errs) != 2 || !((errs[0] == a && errs[1] == b) || (errs[0] == b && errs[1] == a)) {
			t.Fatalf("trial %d: inferred %v, want {%d,%d}", trial, errs, a, b)
		}
	}
}

func TestInferErrorsNoMiscorrection(t *testing.T) {
	code := ecc.Hamming74()
	rng := rand.New(rand.NewPCG(3, 4))
	p := NewProfiler(code, DefaultOptions(), rng)
	d := gf2.VecFromUint(4, 0b1010)
	if _, ok := p.inferErrors(d, d.Clone()); ok {
		t.Fatal("identical read must not report a miscorrection")
	}
	// A 1->0 flip alone is ambiguous (could be a raw retention error).
	got := d.Clone()
	got.Set(1, false)
	if _, ok := p.inferErrors(d, got); ok {
		t.Fatal("1->0 flip must be treated as ambiguous")
	}
}

func TestCraftPatternSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	code := ecc.RandomHamming(26, rng) // (31,26): full-length
	p := NewProfiler(code, DefaultOptions(), rng)
	known := map[int]bool{}
	crafted := 0
	for target := 0; target < code.N(); target++ {
		d, ok := p.craftPattern(target, known)
		if !ok {
			continue
		}
		crafted++
		cw := code.Encode(d)
		if !cw.Get(target) {
			t.Fatalf("target %d not charged", target)
		}
	}
	if crafted < code.N()*3/4 {
		t.Fatalf("only %d/%d targets craftable", crafted, code.N())
	}
}

func TestCraftPatternWorstCaseNeighbors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	code := ecc.RandomHamming(26, rng)
	p := NewProfiler(code, DefaultOptions(), rng)
	for _, target := range []int{5, 12, 20} {
		// relaxAllowed=false: the worst-case constraint must hold in any
		// returned pattern.
		d, ok := p.craftSAT(target, allCells(code.N()), true, false)
		if !ok {
			continue
		}
		cw := code.Encode(d)
		if !cw.Get(target) || cw.Get(target-1) || cw.Get(target+1) {
			t.Fatalf("target %d: worst-case neighbor constraint violated (%v %v %v)",
				target, cw.Get(target-1), cw.Get(target), cw.Get(target+1))
		}
	}
}

func allCells(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Deterministic full-probability errors in a realistic word: BEEP should
// find them all, including ones in the parity region.
func TestProfileFindsInjectedErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	code := ecc.RandomHamming(57, rng) // (63,57)
	found := 0
	trials := 10
	for trial := 0; trial < trials; trial++ {
		cells := rng.Perm(code.N())[:3]
		word := &SimWord{Code: code, ErrorCells: cells, PErr: 1.0, Rng: rng}
		prof := NewProfiler(code, Options{Passes: 2, TrialsPerPattern: 1, WorstCaseNeighbors: true}, rng)
		out, _ := prof.Run(context.Background(), word)
		if sameSet(out.Identified, cells) {
			found++
		}
	}
	if found < trials*7/10 {
		t.Fatalf("only %d/%d words profiled exactly", found, trials)
	}
}

// No injected errors -> nothing identified, no false positives.
func TestProfileCleanWord(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	code := ecc.RandomHamming(26, rng)
	word := &SimWord{Code: code, ErrorCells: nil, PErr: 1, Rng: rng}
	prof := NewProfiler(code, DefaultOptions(), rng)
	out, _ := prof.Run(context.Background(), word)
	if len(out.Identified) != 0 {
		t.Fatalf("clean word produced false positives: %v", out.Identified)
	}
}

// BEEP's identified set never contains false positives even with
// probabilistic errors: everything identified must be an injected cell.
func TestProfileNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	code := ecc.RandomHamming(26, rng)
	for trial := 0; trial < 10; trial++ {
		cells := rng.Perm(code.N())[:5]
		word := &SimWord{Code: code, ErrorCells: cells, PErr: 0.5, Rng: rng}
		prof := NewProfiler(code, Options{Passes: 2, TrialsPerPattern: 2, WorstCaseNeighbors: true}, rng)
		out, _ := prof.Run(context.Background(), word)
		injected := map[int]bool{}
		for _, c := range cells {
			injected[c] = true
		}
		for _, id := range out.Identified {
			if !injected[id] {
				t.Fatalf("false positive cell %d (injected %v)", id, cells)
			}
		}
	}
}

// Figure 8's qualitative claims: two passes never hurt, and longer codewords
// succeed more often than short ones at the same error count.
func TestEvaluateFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo evaluation is slow in -short mode")
	}
	rng := rand.New(rand.NewPCG(15, 16))
	base := EvalConfig{CodewordBits: 31, ErrorsPerWord: 3, PErr: 1, Passes: 1, TrialsPerPattern: 1, Words: 15}
	onePass, _ := Evaluate(context.Background(), base, rand.New(rand.NewPCG(15, 16)))
	base.Passes = 2
	twoPass, _ := Evaluate(context.Background(), base, rand.New(rand.NewPCG(15, 16)))
	if twoPass.SuccessRate()+1e-9 < onePass.SuccessRate()-0.2 {
		t.Fatalf("two passes (%v) markedly worse than one (%v)",
			twoPass.SuccessRate(), onePass.SuccessRate())
	}
	long, _ := Evaluate(context.Background(), EvalConfig{CodewordBits: 63, ErrorsPerWord: 3, PErr: 1,
		Passes: 1, TrialsPerPattern: 1, Words: 15}, rng)
	if long.SuccessRate() < 0.5 {
		t.Fatalf("63-bit codewords should mostly succeed, got %v", long.SuccessRate())
	}
}

func TestFullLengthK(t *testing.T) {
	cases := map[int]int{7: 4, 15: 11, 31: 26, 63: 57, 127: 120, 255: 247}
	for n, k := range cases {
		if got := fullLengthK(n); got != k {
			t.Errorf("fullLengthK(%d) = %d, want %d", n, got, k)
		}
	}
}

func TestFullLengthKPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-2^r-1 length")
		}
	}()
	fullLengthK(32)
}

// The linear crafter must produce patterns satisfying the same constraints
// as the SAT crafter.
func TestCraftLinearSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	code := ecc.RandomHamming(57, rng)
	p := NewProfiler(code, Options{Passes: 1, TrialsPerPattern: 1,
		WorstCaseNeighbors: true, Crafter: CrafterLinear}, rng)
	known := map[int]bool{3: true, 40: true}
	crafted := 0
	for target := 0; target < code.N(); target++ {
		d, ok := p.craftPattern(target, known)
		if !ok {
			continue
		}
		crafted++
		cw := code.Encode(d)
		if !cw.Get(target) {
			t.Fatalf("target %d not charged", target)
		}
	}
	if crafted < code.N()*3/4 {
		t.Fatalf("linear crafter produced only %d/%d patterns", crafted, code.N())
	}
}

// Both crafters must reach comparable success on the Figure 8 workload.
func TestLinearCrafterMatchesSATSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo evaluation is slow in -short mode")
	}
	base := EvalConfig{CodewordBits: 63, ErrorsPerWord: 4, PErr: 1,
		Passes: 1, TrialsPerPattern: 1, Words: 15}
	satRes, _ := Evaluate(context.Background(), base, rand.New(rand.NewPCG(19, 20)))
	base.Crafter = CrafterLinear
	linRes, _ := Evaluate(context.Background(), base, rand.New(rand.NewPCG(19, 20)))
	if linRes.SuccessRate() < satRes.SuccessRate()-0.25 {
		t.Fatalf("linear crafter success %.2f far below SAT's %.2f",
			linRes.SuccessRate(), satRes.SuccessRate())
	}
}

// Worst-case-neighbor constraints hold for the linear crafter too.
func TestCraftLinearWorstCase(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	code := ecc.RandomHamming(26, rng)
	p := NewProfiler(code, Options{Crafter: CrafterLinear, WorstCaseNeighbors: true,
		Passes: 1, TrialsPerPattern: 1}, rng)
	checked := 0
	for _, target := range []int{4, 11, 19, 27} {
		d, ok := p.craftLinear(target, allCells(code.N()), true)
		if !ok {
			continue
		}
		checked++
		cw := code.Encode(d)
		if !cw.Get(target) || cw.Get(target-1) || cw.Get(target+1) {
			t.Fatalf("target %d: neighbor constraint violated", target)
		}
	}
	if checked == 0 {
		t.Fatal("no targets craftable with worst-case constraints")
	}
}

// A generous craft budget must not perturb the profile: same seeds, same
// identified cells as an unbounded run.
func TestCraftTimeoutGenerousBudgetIdentical(t *testing.T) {
	code := ecc.RandomHamming(32, rand.New(rand.NewPCG(20, 21)))
	cells := []int{3, 17, 30}
	run := func(timeout time.Duration) *Outcome {
		rng := rand.New(rand.NewPCG(22, 23))
		word := &SimWord{Code: code, ErrorCells: cells, PErr: 1.0, Rng: rng}
		opts := Options{Passes: 2, TrialsPerPattern: 1, WorstCaseNeighbors: true, CraftTimeout: timeout}
		out, err := NewProfiler(code, opts, rng).Run(context.Background(), word)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	exact, bounded := run(0), run(time.Minute)
	if bounded.CraftTimeouts != 0 {
		t.Fatalf("a one-minute craft budget timed out %d crafts", bounded.CraftTimeouts)
	}
	if !sameSet(exact.Identified, bounded.Identified) || exact.PatternsTested != bounded.PatternsTested {
		t.Fatalf("bounded run diverged: %+v vs %+v", bounded, exact)
	}
}

// An absurd craft budget exercises the HARP discard semantics: timed-out
// crafts are dropped, the run completes without error on the same warm
// solver, and the discards are reported.
func TestCraftTimeoutDiscards(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 25))
	code := ecc.RandomHamming(57, rng) // (63,57): crafts need >64 decisions
	word := &SimWord{Code: code, ErrorCells: []int{5, 40}, PErr: 1.0, Rng: rng}
	opts := Options{Passes: 1, TrialsPerPattern: 1, WorstCaseNeighbors: true, CraftTimeout: time.Nanosecond}
	out, err := NewProfiler(code, opts, rng).Run(context.Background(), word)
	if err != nil {
		t.Fatal(err)
	}
	if out.CraftTimeouts == 0 {
		t.Fatal("1ns craft budget discarded no crafts")
	}
	if out.SkippedBits == 0 {
		t.Fatal("discarded crafts produced no skipped targets")
	}
	if out.PatternsTested+out.SkippedBits < code.N() {
		t.Fatalf("run did not visit every target: %+v", out)
	}
}
