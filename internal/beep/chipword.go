package beep

import (
	"time"

	"repro/internal/core"
	"repro/internal/gf2"
)

// ChipWord adapts one ECC word of a DRAM chip to the WordTester interface,
// so BEEP can profile real (simulated) hardware through the same public
// interface BEER uses: write the crafted dataword, pause refresh to induce
// retention errors, read back the post-correction data.
//
// The adapter needs the dataword layout (from BEER's §5.1.2 discovery) to
// place the pattern into the right row bytes, and it targets true-cell rows
// (CHARGED = logical 1), matching BEEP's §7.1 setting.
type ChipWord struct {
	Chip   core.Chip
	Layout core.WordLayout
	Bank   int
	Row    int
	// Word indexes the ECC word within the row (region-major:
	// region*wordsPerRegion + wordInRegion).
	Word int
	// Window is the refresh pause applied per test; TempC the ambient
	// temperature.
	Window time.Duration
	TempC  float64
}

// Test implements WordTester.
func (cw *ChipWord) Test(data gf2.Vec) gf2.Vec {
	k := cw.Layout.K()
	if data.Len() != k {
		panic("beep: dataword length does not match the chip layout")
	}
	cw.Chip.SetTemperature(cw.TempC)
	rowBytes := make([]byte, cw.Chip.DataBytesPerRow())
	// Bits of the target word; all other words in the row stay zero
	// (DISCHARGED in a true-cell row), so they cannot interfere.
	wordsPerRegion := len(cw.Layout.Words)
	region := cw.Word / wordsPerRegion
	wIn := cw.Word % wordsPerRegion
	base := region * cw.Layout.RegionBytes
	for bi, off := range cw.Layout.Words[wIn] {
		var by byte
		for bit := 0; bit < 8; bit++ {
			if data.Get(8*bi + bit) {
				by |= 1 << uint(bit)
			}
		}
		rowBytes[base+off] = by
	}
	cw.Chip.WriteRow(cw.Bank, cw.Row, rowBytes)
	cw.Chip.PauseRefresh(cw.Window)
	got := cw.Chip.ReadRow(cw.Bank, cw.Row)
	out := gf2.NewVec(k)
	for bi, off := range cw.Layout.Words[wIn] {
		by := got[base+off]
		for bit := 0; bit < 8; bit++ {
			if by>>uint(bit)&1 == 1 {
				out.Set(8*bi+bit, true)
			}
		}
	}
	return out
}
