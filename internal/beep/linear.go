package beep

import (
	"repro/internal/gf2"
)

// Linear pattern crafting.
//
// The paper crafts BEEP test patterns with a SAT solver (§7.1.2) and notes
// in §7.3 that reformulating the problem mathematically "could identify the
// solution significantly faster". This file realizes that idea for pattern
// crafting: every constraint BEEP needs is *linear* over GF(2) in the
// dataword bits once a concrete failure subset is fixed —
//
//   - codeword bit c_j is d_j (data) or row j-k of P times d (parity),
//   - "cell e is CHARGED" is c_e = 1, "DISCHARGED" is c_e = 0,
//   - a fixed failure subset F has a fixed syndrome, whose matching column b
//     is a table lookup, and "the miscorrection at b is observable" is
//     c_b = 0.
//
// So the crafter enumerates small candidate failure subsets (the target plus
// up to two known errors), looks up the landing bit, and solves the linear
// system with gf2.Solve. Randomizing over the solution affine subspace (a
// uniform combination of null-space basis vectors) gives far better pattern
// diversity than SAT phase steering, at microseconds per pattern.

// Crafter selects BEEP's pattern-crafting engine.
type Crafter int

const (
	// CrafterSAT is the paper's §7.1.2 approach (default).
	CrafterSAT Crafter = iota
	// CrafterLinear is the §7.3-inspired GF(2) linear-algebra approach.
	CrafterLinear
)

func (c Crafter) String() string {
	if c == CrafterLinear {
		return "linear"
	}
	return "sat"
}

// rowFor returns the linear form (over the k dataword bits) of codeword bit
// pos: a unit row for data bits, the parity-check row for parity bits.
func rowFor(p gf2.Mat, k, pos int) gf2.Vec {
	if pos < k {
		return gf2.VecFromSupport(k, pos)
	}
	return p.Row(pos - k).Clone()
}

// craftLinear builds a pattern for the target bit using linear algebra.
// suspects play the same role as in craftSAT; worstCase adds the
// neighbor-discharged constraints. Returns ok=false when no candidate
// failure subset yields a solvable system.
func (p *Profiler) craftLinear(target int, suspects []int, worstCase bool) (gf2.Vec, bool) {
	code := p.code
	k, n := code.K(), code.N()
	pm := code.P()

	// Candidate failure subsets: {target} plus up to two suspects (a
	// miscorrection needs >= 2 failures, so at least one companion).
	others := make([]int, 0, len(suspects))
	for _, e := range suspects {
		if e != target {
			others = append(others, e)
		}
	}
	// Randomize companion order so repeated passes explore different
	// subsets.
	p.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })

	trySubset := func(f []int) (gf2.Vec, bool) {
		syndrome := gf2.NewVec(n - k)
		for _, e := range f {
			syndrome.XorInto(code.Column(e))
		}
		if syndrome.Zero() {
			return gf2.Vec{}, false
		}
		b := code.ColumnOfSyndrome(syndrome)
		if b < 0 || b >= k {
			return gf2.Vec{}, false // lands on a parity bit or nothing: invisible
		}
		for _, e := range f {
			if e == b {
				return gf2.Vec{}, false
			}
		}
		// Assemble the linear system: failures charged, landing bit
		// discharged, target's neighbors discharged when requested.
		var rows []gf2.Vec
		var rhs []int
		add := func(pos, val int) {
			rows = append(rows, rowFor(pm, k, pos))
			rhs = append(rhs, val)
		}
		for _, e := range f {
			add(e, 1)
		}
		add(b, 0)
		if worstCase {
			if target > 0 {
				add(target-1, 0)
			}
			if target+1 < n {
				add(target+1, 0)
			}
		}
		a := gf2.MatFromRows(rows...)
		d, ok := a.Solve(gf2.VecFromBits(rhs))
		if !ok {
			return gf2.Vec{}, false
		}
		// Uniform sample over the whole solution space: add a random
		// combination of null-space basis vectors.
		for _, v := range a.NullSpace() {
			if p.rng.IntN(2) == 1 {
				d.XorInto(v)
			}
		}
		return d, true
	}

	// Pairs {target, e}.
	for _, e := range others {
		if d, ok := trySubset([]int{target, e}); ok {
			return d, true
		}
	}
	// Triples {target, e1, e2} (only needed when every pair's syndrome lands
	// outside the data bits).
	for i := 0; i < len(others) && i < 12; i++ {
		for j := i + 1; j < len(others) && j < 12; j++ {
			if d, ok := trySubset([]int{target, others[i], others[j]}); ok {
				return d, true
			}
		}
	}
	return gf2.Vec{}, false
}
