package beep

import (
	"context"
	"math/rand/v2"

	"repro/internal/ecc"
)

// EvalConfig describes one cell of the paper's §7.1.4 evaluation grid
// (Figures 8 and 9).
type EvalConfig struct {
	// CodewordBits selects the (full-length) codeword length n; the paper
	// uses 31, 63, 127 and 255.
	CodewordBits int
	// ErrorsPerWord is the number of error-prone cells injected per word.
	ErrorsPerWord int
	// PErr is the per-test failure probability of each injected cell.
	PErr float64
	// Passes and TrialsPerPattern configure the profiler.
	Passes           int
	TrialsPerPattern int
	// Words is the Monte-Carlo sample size (the paper uses 100 codewords).
	Words int
	// Crafter selects the pattern-crafting engine (default: SAT).
	Crafter Crafter
}

// fullLengthK maps a full-length codeword size 2^r - 1 to its dataword size.
func fullLengthK(n int) int {
	r := 0
	for (1 << uint(r+1)) <= n+1 {
		r++
	}
	if (1<<uint(r))-1 != n {
		panic("beep: evaluation codeword lengths must be 2^r - 1")
	}
	return n - r
}

// EvalResult aggregates a success-rate measurement.
type EvalResult struct {
	Config EvalConfig
	// Successes counts words whose injected error cells were identified
	// exactly (no misses, no false positives).
	Successes int
	// Rates holds the per-word success indicator (1.0 or 0.0), for
	// percentile reporting as in Figure 8's error bars.
	Rates []float64
}

// SuccessRate returns the fraction of words profiled exactly.
func (r *EvalResult) SuccessRate() float64 {
	if len(r.Rates) == 0 {
		return 0
	}
	return float64(r.Successes) / float64(len(r.Rates))
}

// Evaluate runs the Monte-Carlo success-rate experiment: for each simulated
// word, inject ErrorsPerWord random error-prone cells, profile with BEEP,
// and check whether the identified set matches the injected set exactly.
// Cancelling ctx stops the experiment at the next word and returns ctx.Err().
func Evaluate(ctx context.Context, cfg EvalConfig, rng *rand.Rand) (*EvalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k := fullLengthK(cfg.CodewordBits)
	res := &EvalResult{Config: cfg}
	for w := 0; w < cfg.Words; w++ {
		code := ecc.RandomHamming(k, rng)
		cells := rng.Perm(code.N())[:cfg.ErrorsPerWord]
		word := &SimWord{Code: code, ErrorCells: cells, PErr: cfg.PErr, Rng: rng}
		prof := NewProfiler(code, Options{
			Passes:             cfg.Passes,
			TrialsPerPattern:   cfg.TrialsPerPattern,
			WorstCaseNeighbors: true,
			Crafter:            cfg.Crafter,
		}, rng)
		out, err := prof.Run(ctx, word)
		if err != nil {
			return nil, err
		}
		if sameSet(out.Identified, cells) {
			res.Successes++
			res.Rates = append(res.Rates, 1)
		} else {
			res.Rates = append(res.Rates, 0)
		}
	}
	return res, nil
}

func sameSet(sorted []int, unsorted []int) bool {
	if len(sorted) != len(unsorted) {
		return false
	}
	seen := make(map[int]bool, len(unsorted))
	for _, x := range unsorted {
		seen[x] = true
	}
	for _, x := range sorted {
		if !seen[x] {
			return false
		}
	}
	return true
}
