package einsim

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ecc"
)

// rates reduces a Result to per-word outcome rates for distribution-level
// comparison between the bitsliced and scalar engines.
func rates(r *Result) map[string]float64 {
	w := float64(r.Words)
	pre := int64(0)
	for _, c := range r.PreErrors {
		pre += c
	}
	post := int64(0)
	for _, c := range r.PostErrors {
		post += c
	}
	return map[string]float64{
		"pre":         float64(pre) / w,
		"post":        float64(post) / w,
		"correctable": float64(r.Correctable) / w,
		"silent":      float64(r.Silent) / w,
		"partial":     float64(r.Partial) / w,
		"misc":        float64(r.Miscorrected) / w,
		"wordsPost":   float64(r.WordsWithPostError) / w,
	}
}

// TestRunMatchesScalar holds the bitsliced engine's aggregate statistics to
// the scalar reference across patterns, models and conditioning. The two
// consume randomness differently, so the comparison is distributional: equal
// rates within a tolerance scaled to the Monte-Carlo noise floor.
func TestRunMatchesScalar(t *testing.T) {
	const words = 60000
	cases := []Config{
		{Code: ecc.SequentialHamming(16), Pattern: PatternRandom, Model: ModelUniform, RBER: 0.05, Words: words},
		{Code: ecc.SequentialHamming(32), Pattern: PatternAllOnes, Model: ModelRetention, RBER: 0.08, Words: words},
		{Code: ecc.BitReversedHamming(26), Pattern: PatternAllOnes, Model: ModelUniform, RBER: 1e-3, Words: words, ConditionMinErrors: 2},
		{Code: ecc.SequentialHamming(8), Pattern: PatternAllZeros, Model: ModelUniform, RBER: 0.1, Words: words},
	}
	for ci, cfg := range cases {
		batch, err := Run(cfg, rand.New(rand.NewPCG(7, uint64(ci))))
		if err != nil {
			t.Fatalf("case %d: Run: %v", ci, err)
		}
		scalar, err := RunScalar(cfg, rand.New(rand.NewPCG(11, uint64(ci))))
		if err != nil {
			t.Fatalf("case %d: RunScalar: %v", ci, err)
		}
		if batch.Words != int64(cfg.Words) || scalar.Words != int64(cfg.Words) {
			t.Fatalf("case %d: word counts %d/%d, want %d", ci, batch.Words, scalar.Words, cfg.Words)
		}
		br, sr := rates(batch), rates(scalar)
		for key, bv := range br {
			sv := sr[key]
			// Tolerance: a generous multiple of the binomial standard error
			// at this sample size, floored for near-zero rates.
			tol := 8*math.Sqrt(math.Max(sv, 1e-4)/words) + 1e-3
			if math.Abs(bv-sv) > tol {
				t.Errorf("case %d: %s rate: bitsliced %.5f vs scalar %.5f (tol %.5f)", ci, key, bv, sv, tol)
			}
		}
	}
}

// TestRunRaggedBatch checks word accounting and invariants for counts that
// do not divide into full 64-lane batches.
func TestRunRaggedBatch(t *testing.T) {
	for _, words := range []int{1, 63, 64, 65, 100, 129} {
		cfg := Config{Code: ecc.Hamming74(), Pattern: PatternRandom, Model: ModelUniform, RBER: 0.2, Words: words}
		res, err := Run(cfg, rand.New(rand.NewPCG(3, uint64(words))))
		if err != nil {
			t.Fatal(err)
		}
		if res.Words != int64(words) {
			t.Fatalf("words=%d: counted %d", words, res.Words)
		}
		classified := res.Correctable + res.Silent + res.Partial + res.Miscorrected
		if classified > res.Words {
			t.Fatalf("words=%d: classified %d > words", words, classified)
		}
		if res.WordsWithPostError > res.Words {
			t.Fatalf("words=%d: WordsWithPostError %d > words", words, res.WordsWithPostError)
		}
	}
}

// TestRunSteadyStateAllocs pins the zero-alloc batch property: after warmup,
// a Run costs only its Result (a handful of allocations), independent of the
// word count.
func TestRunSteadyStateAllocs(t *testing.T) {
	cfg := Config{Code: ecc.SequentialHamming(32), Pattern: PatternRandom, Model: ModelUniform, RBER: 0.01, Words: 4096}
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Run(cfg, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg, rng); err != nil {
			t.Fatal(err)
		}
	})
	// Result + its two slices, plus pool bookkeeping slack.
	if allocs > 8 {
		t.Fatalf("Run allocated %v times per 4096-word run; want <= 8", allocs)
	}
}
