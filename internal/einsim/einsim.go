// Package einsim is a word-level Monte-Carlo simulator of DRAM error
// correction, reimplementing the role of the EINSim tool the paper builds on
// ([2] in the paper; github.com/CMU-SAFARI/EINSim): given an ECC code, a data
// pattern, and an error model, it simulates many ECC words and aggregates
// pre- and post-correction error statistics per bit position.
//
// Figure 1 of the paper is produced this way: three different ECC functions
// of the same (38, 32) shape, a 0xFF data pattern, uniform-random
// pre-correction errors at RBER 1e-4, and 10^9 simulated words show that the
// post-correction error distribution across bit positions is a fingerprint
// of the specific parity-check matrix.
//
// Entry points: Run simulates one Config serially from a caller-supplied
// RNG; parallel.Engine.Simulate shards the same computation bit-identically
// across a worker pool (facade: repro.Pipeline.Simulate; CLI: cmd/einsim,
// which can also load a BEER-recovered function via -code). Same-shape
// Results combine with Result.Merge — the associativity the sharded path
// relies on.
package einsim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// DataPattern selects the dataword written to each simulated word.
type DataPattern int

const (
	// PatternAllOnes is the paper's 0xFF pattern.
	PatternAllOnes DataPattern = iota
	// PatternAllZeros writes all zeros.
	PatternAllZeros
	// PatternRandom draws a fresh uniform dataword per simulated word
	// (the paper's RANDOM pattern).
	PatternRandom
	// PatternCustom uses Config.CustomData for every word.
	PatternCustom
)

func (p DataPattern) String() string {
	switch p {
	case PatternAllOnes:
		return "0xFF"
	case PatternAllZeros:
		return "0x00"
	case PatternRandom:
		return "RANDOM"
	case PatternCustom:
		return "CUSTOM"
	}
	return fmt.Sprintf("DataPattern(%d)", int(p))
}

// ErrorModel selects how pre-correction errors are injected.
type ErrorModel int

const (
	// ModelUniform flips every codeword bit independently with probability
	// RBER, regardless of its value (Figure 1's model).
	ModelUniform ErrorModel = iota
	// ModelRetention flips only CHARGED cells (true-cell convention: bits
	// storing 1), each with probability RBER — the unidirectional
	// data-retention model of §3.2.
	ModelRetention
)

func (m ErrorModel) String() string {
	if m == ModelUniform {
		return "UNIFORM"
	}
	return "RETENTION"
}

// Config describes one simulation.
type Config struct {
	Code       *ecc.Code
	Pattern    DataPattern
	CustomData gf2.Vec
	Model      ErrorModel
	RBER       float64
	Words      int
	// ConditionMinErrors, when positive, samples only words with at least
	// this many injected errors (importance sampling). At Figure 1's RBER of
	// 1e-4 fewer than one word in 10^5 has the >= 2 errors needed to produce
	// any post-correction error, which is why the paper burns 10^9 words;
	// conditioning reproduces the same relative post-correction
	// distributions at a tiny fraction of the cost. Only supported for
	// ModelUniform.
	ConditionMinErrors int
}

// Result aggregates simulation statistics. Results from independent batches
// of the same configuration can be combined with Merge.
type Result struct {
	N, K  int
	Words int64
	// PreErrors[i] counts pre-correction errors at codeword bit i.
	PreErrors []int64
	// PostErrors[b] counts post-correction errors at data bit b.
	PostErrors []int64
	// Outcome classification of words with uncorrectable (>= 2) errors,
	// following §3.3: silent corruption (zero syndrome), partial correction
	// (decoder flipped one of the true errors), miscorrection (decoder
	// flipped a clean bit).
	Correctable, Silent, Partial, Miscorrected int64
	// WordsWithPostError counts words whose post-correction dataword
	// differs from what was written.
	WordsWithPostError int64
}

// Run simulates cfg.Words ECC words and aggregates statistics.
func Run(cfg Config, rng *rand.Rand) (*Result, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("einsim: no code configured")
	}
	if cfg.RBER < 0 || cfg.RBER > 1 {
		return nil, fmt.Errorf("einsim: RBER %v out of [0,1]", cfg.RBER)
	}
	if cfg.Pattern == PatternCustom && cfg.CustomData.Len() != cfg.Code.K() {
		return nil, fmt.Errorf("einsim: custom data has %d bits, code wants %d",
			cfg.CustomData.Len(), cfg.Code.K())
	}
	if cfg.ConditionMinErrors > 0 && cfg.Model != ModelUniform {
		return nil, fmt.Errorf("einsim: conditioned sampling requires ModelUniform")
	}
	n, k := cfg.Code.N(), cfg.Code.K()
	var errCountDist []float64
	if cfg.ConditionMinErrors > 0 {
		errCountDist = truncatedBinomialCDF(n, cfg.RBER, cfg.ConditionMinErrors)
		if errCountDist == nil {
			return nil, fmt.Errorf("einsim: conditioning on >=%d errors is impossible", cfg.ConditionMinErrors)
		}
	}
	res := &Result{
		N: n, K: k,
		PreErrors:  make([]int64, n),
		PostErrors: make([]int64, k),
	}
	data := gf2.NewVec(k)
	switch cfg.Pattern {
	case PatternAllOnes:
		for i := 0; i < k; i++ {
			data.Set(i, true)
		}
	case PatternCustom:
		data = cfg.CustomData.Clone()
	}
	for w := 0; w < cfg.Words; w++ {
		if cfg.Pattern == PatternRandom {
			for i := 0; i < k; i++ {
				data.Set(i, rng.IntN(2) == 1)
			}
		}
		cw := cfg.Code.Encode(data)
		var bad gf2.Vec
		var errPositions []int
		if errCountDist != nil {
			bad, errPositions = injectConditioned(cw, errCountDist, rng)
		} else {
			bad, errPositions = inject(cfg, cw, rng)
		}
		res.Words++
		for _, p := range errPositions {
			res.PreErrors[p]++
		}
		dec := cfg.Code.Decode(bad)
		postErrs := 0
		for b := 0; b < k; b++ {
			if dec.Data.Get(b) != data.Get(b) {
				res.PostErrors[b]++
				postErrs++
			}
		}
		if postErrs > 0 {
			res.WordsWithPostError++
		}
		switch {
		case len(errPositions) == 0:
		case len(errPositions) == 1:
			res.Correctable++
		case dec.Syndrome.Zero():
			res.Silent++
		case dec.FlippedBit >= 0 && contains(errPositions, dec.FlippedBit):
			res.Partial++
		case dec.FlippedBit >= 0:
			res.Miscorrected++
		default:
			// Unmatched syndrome on a shortened code: detected but
			// uncorrected; counts as partial (no new error introduced).
			res.Partial++
		}
	}
	return res, nil
}

// inject applies the configured error model to a codeword, returning the
// corrupted word and the flipped positions.
func inject(cfg Config, cw gf2.Vec, rng *rand.Rand) (gf2.Vec, []int) {
	bad := cw.Clone()
	var errs []int
	n := cw.Len()
	if cfg.RBER == 0 {
		return bad, nil
	}
	// Geometric skipping keeps low-RBER simulation fast.
	pos := nextHit(rng, cfg.RBER, -1)
	for pos < n {
		if cfg.Model == ModelUniform || cw.Get(pos) {
			bad.Flip(pos)
			errs = append(errs, pos)
		}
		pos = nextHit(rng, cfg.RBER, pos)
	}
	return bad, errs
}

// nextHit returns the next position after prev hit by an event of
// probability p per position.
func nextHit(rng *rand.Rand, p float64, prev int) int {
	if p >= 1 {
		return prev + 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	gap := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if gap < 1 {
		gap = 1
	}
	return prev + gap
}

// truncatedBinomialCDF returns the CDF of Binomial(n, p) conditioned on the
// count being >= min, indexed by count (entries below min are 0). Returns nil
// when the conditional event has no probability mass.
func truncatedBinomialCDF(n int, p float64, min int) []float64 {
	if p <= 0 || min > n {
		return nil
	}
	pmf := make([]float64, n+1)
	// Iterative binomial PMF avoids factorial overflow.
	pmf[0] = math.Pow(1-p, float64(n))
	for m := 1; m <= n; m++ {
		pmf[m] = pmf[m-1] * float64(n-m+1) / float64(m) * p / (1 - p)
	}
	total := 0.0
	for m := min; m <= n; m++ {
		total += pmf[m]
	}
	if total <= 0 {
		return nil
	}
	cdf := make([]float64, n+1)
	acc := 0.0
	for m := 0; m <= n; m++ {
		if m >= min {
			acc += pmf[m] / total
		}
		cdf[m] = acc
	}
	return cdf
}

// injectConditioned draws an error count from the truncated binomial CDF and
// flips that many uniformly-chosen distinct positions.
func injectConditioned(cw gf2.Vec, cdf []float64, rng *rand.Rand) (gf2.Vec, []int) {
	u := rng.Float64()
	m := 0
	for m < len(cdf)-1 && cdf[m] < u {
		m++
	}
	bad := cw.Clone()
	n := cw.Len()
	errs := rng.Perm(n)[:m]
	for _, p := range errs {
		bad.Flip(p)
	}
	return bad, errs
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Merge adds another batch's statistics into r. Configurations must match.
func (r *Result) Merge(o *Result) error {
	if r.N != o.N || r.K != o.K {
		return fmt.Errorf("einsim: merging results of different shapes")
	}
	r.Words += o.Words
	for i := range r.PreErrors {
		r.PreErrors[i] += o.PreErrors[i]
	}
	for i := range r.PostErrors {
		r.PostErrors[i] += o.PostErrors[i]
	}
	r.Correctable += o.Correctable
	r.Silent += o.Silent
	r.Partial += o.Partial
	r.Miscorrected += o.Miscorrected
	r.WordsWithPostError += o.WordsWithPostError
	return nil
}

// RelativePostProbabilities returns each data bit's share of all observed
// post-correction errors (Figure 1's y-axis). All-zero results return zeros.
func (r *Result) RelativePostProbabilities() []float64 {
	total := int64(0)
	for _, c := range r.PostErrors {
		total += c
	}
	out := make([]float64, r.K)
	if total == 0 {
		return out
	}
	for b, c := range r.PostErrors {
		out[b] = float64(c) / float64(total)
	}
	return out
}

// RelativePreProbabilities returns each codeword bit's share of observed
// pre-correction errors.
func (r *Result) RelativePreProbabilities() []float64 {
	total := int64(0)
	for _, c := range r.PreErrors {
		total += c
	}
	out := make([]float64, r.N)
	if total == 0 {
		return out
	}
	for i, c := range r.PreErrors {
		out[i] = float64(c) / float64(total)
	}
	return out
}
