// Package einsim is a word-level Monte-Carlo simulator of DRAM error
// correction, reimplementing the role of the EINSim tool the paper builds on
// ([2] in the paper; github.com/CMU-SAFARI/EINSim): given an ECC code, a data
// pattern, and an error model, it simulates many ECC words and aggregates
// pre- and post-correction error statistics per bit position.
//
// Figure 1 of the paper is produced this way: three different ECC functions
// of the same (38, 32) shape, a 0xFF data pattern, uniform-random
// pre-correction errors at RBER 1e-4, and 10^9 simulated words show that the
// post-correction error distribution across bit positions is a fingerprint
// of the specific parity-check matrix.
//
// The simulator is bitsliced (DESIGN.md §11): words are processed in batches
// of 64 lanes through ecc.BitCodec, so encode, injection, syndrome and
// correction cost one word operation per bit position instead of per word,
// and batch buffers come from a pooled gf2.Slab so the steady state
// allocates nothing per batch. RunScalar keeps the original one-word-at-a-
// time gf2.Vec path as the differential-testing reference.
//
// Entry points: Run simulates one Config serially from a caller-supplied
// RNG; parallel.Engine.Simulate shards the same computation bit-identically
// across a worker pool (facade: repro.Pipeline.Simulate; CLI: cmd/einsim,
// which can also load a BEER-recovered function via -code). Same-shape
// Results combine with Result.Merge — the associativity the sharded path
// relies on.
package einsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sync"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// DataPattern selects the dataword written to each simulated word.
type DataPattern int

const (
	// PatternAllOnes is the paper's 0xFF pattern.
	PatternAllOnes DataPattern = iota
	// PatternAllZeros writes all zeros.
	PatternAllZeros
	// PatternRandom draws a fresh uniform dataword per simulated word
	// (the paper's RANDOM pattern).
	PatternRandom
	// PatternCustom uses Config.CustomData for every word.
	PatternCustom
)

func (p DataPattern) String() string {
	switch p {
	case PatternAllOnes:
		return "0xFF"
	case PatternAllZeros:
		return "0x00"
	case PatternRandom:
		return "RANDOM"
	case PatternCustom:
		return "CUSTOM"
	}
	return fmt.Sprintf("DataPattern(%d)", int(p))
}

// ErrorModel selects how pre-correction errors are injected.
type ErrorModel int

const (
	// ModelUniform flips every codeword bit independently with probability
	// RBER, regardless of its value (Figure 1's model).
	ModelUniform ErrorModel = iota
	// ModelRetention flips only CHARGED cells (true-cell convention: bits
	// storing 1), each with probability RBER — the unidirectional
	// data-retention model of §3.2.
	ModelRetention
	// ModelPerBitBernoulli flips codeword bit i independently with its own
	// probability Config.BitFailProb[i], regardless of value — HARP's
	// per-bit Bernoulli error model. Heterogeneous per-bit rates produce the
	// uneven miscorrection-observation counts that the noisy recovery path
	// (internal/noise, core.SolveNoisy) is built for.
	ModelPerBitBernoulli
)

func (m ErrorModel) String() string {
	switch m {
	case ModelUniform:
		return "UNIFORM"
	case ModelPerBitBernoulli:
		return "PER_BIT_BERNOULLI"
	}
	return "RETENTION"
}

// Config describes one simulation.
type Config struct {
	Code       *ecc.Code
	Pattern    DataPattern
	CustomData gf2.Vec
	Model      ErrorModel
	RBER       float64
	Words      int
	// BitFailProb gives codeword bit i's independent flip probability for
	// ModelPerBitBernoulli; its length must equal the code's n. Ignored by
	// the other models.
	BitFailProb []float64
	// ConditionMinErrors, when positive, samples only words with at least
	// this many injected errors (importance sampling). At Figure 1's RBER of
	// 1e-4 fewer than one word in 10^5 has the >= 2 errors needed to produce
	// any post-correction error, which is why the paper burns 10^9 words;
	// conditioning reproduces the same relative post-correction
	// distributions at a tiny fraction of the cost. Supported for
	// ModelUniform (binomial) and ModelPerBitBernoulli (Poisson-binomial);
	// ModelRetention's rates depend on the encoded word, so its error-count
	// distribution is not fixed and conditioning is rejected.
	ConditionMinErrors int
}

// Result aggregates simulation statistics. Results from independent batches
// of the same configuration can be combined with Merge.
type Result struct {
	N, K  int
	Words int64
	// PreErrors[i] counts pre-correction errors at codeword bit i.
	PreErrors []int64
	// PostErrors[b] counts post-correction errors at data bit b.
	PostErrors []int64
	// Outcome classification of words with uncorrectable (>= 2) errors,
	// following §3.3: silent corruption (zero syndrome), partial correction
	// (decoder flipped one of the true errors), miscorrection (decoder
	// flipped a clean bit).
	Correctable, Silent, Partial, Miscorrected int64
	// WordsWithPostError counts words whose post-correction dataword
	// differs from what was written.
	WordsWithPostError int64
}

// condSampler draws per-word injected-error vectors conditioned on a
// minimum error count. cdf is the truncated error-count CDF (binomial for
// ModelUniform, Poisson-binomial for ModelPerBitBernoulli). For the uniform
// model positions given the count are uniform (probs/suffix stay nil, the
// partial-shuffle samplers apply); for the Bernoulli model positions are
// drawn bit-by-bit from the suffix DP table.
type condSampler struct {
	cdf    []float64
	probs  []float64   // per-bit rates; nil for ModelUniform
	suffix [][]float64 // suffix[i][j] = P(exactly j errors among bits i..n-1)
}

// count draws one conditioned error count.
func (cs *condSampler) count(rng *rand.Rand) int {
	u := rng.Float64()
	m := 0
	for m < len(cs.cdf)-1 && cs.cdf[m] < u {
		m++
	}
	return m
}

// bernoulliPositions appends the error positions of one word conditioned on
// exactly m errors: a left-to-right walk where bit i flips with probability
// P(X_i=1 | sum_{i..n-1} = m) = p_i * suffix[i+1][m-1] / suffix[i][m].
func (cs *condSampler) bernoulliPositions(m int, dst []int, rng *rand.Rand) []int {
	n := len(cs.probs)
	for i := 0; i < n && m > 0; i++ {
		if m >= n-i {
			// Every remaining bit must flip; taking this branch explicitly
			// also keeps float roundoff from stranding the walk.
			dst = append(dst, i)
			m--
			continue
		}
		pi := cs.probs[i] * cs.suffix[i+1][m-1] / cs.suffix[i][m]
		if rng.Float64() < pi {
			dst = append(dst, i)
			m--
		}
	}
	return dst
}

// validate checks cfg and, for conditioned sampling, builds the sampler the
// injectors draw error counts (and, for per-bit rates, positions) from.
func validate(cfg Config) (*condSampler, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("einsim: no code configured")
	}
	if cfg.RBER < 0 || cfg.RBER > 1 {
		return nil, fmt.Errorf("einsim: RBER %v out of [0,1]", cfg.RBER)
	}
	if cfg.Pattern == PatternCustom && cfg.CustomData.Len() != cfg.Code.K() {
		return nil, fmt.Errorf("einsim: custom data has %d bits, code wants %d",
			cfg.CustomData.Len(), cfg.Code.K())
	}
	if cfg.Model == ModelPerBitBernoulli {
		if len(cfg.BitFailProb) != cfg.Code.N() {
			return nil, fmt.Errorf("einsim: %s needs one BitFailProb per codeword bit (got %d, code has n=%d)",
				cfg.Model, len(cfg.BitFailProb), cfg.Code.N())
		}
		for i, p := range cfg.BitFailProb {
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("einsim: BitFailProb[%d] = %v out of [0,1]", i, p)
			}
		}
	}
	if cfg.ConditionMinErrors <= 0 {
		return nil, nil
	}
	switch cfg.Model {
	case ModelUniform:
		cdf := truncatedBinomialCDF(cfg.Code.N(), cfg.RBER, cfg.ConditionMinErrors)
		if cdf == nil {
			return nil, fmt.Errorf("einsim: conditioning on >=%d errors is impossible", cfg.ConditionMinErrors)
		}
		return &condSampler{cdf: cdf}, nil
	case ModelPerBitBernoulli:
		suffix := poissonBinomialSuffix(cfg.BitFailProb)
		cdf := truncateCDF(suffix[0], cfg.ConditionMinErrors)
		if cdf == nil {
			return nil, fmt.Errorf("einsim: conditioning on >=%d errors is impossible", cfg.ConditionMinErrors)
		}
		return &condSampler{cdf: cdf, probs: cfg.BitFailProb, suffix: suffix}, nil
	default:
		return nil, fmt.Errorf("einsim: conditioned sampling is not supported for the %s model (word-dependent error counts)", cfg.Model)
	}
}

// scratch is the per-Run batch working set: one slab backs every batch
// buffer, perm is the partial-shuffle buffer for conditioned sampling. Runs
// borrow a scratch from a package pool, so shards re-use warm buffers and a
// steady-state batch allocates nothing.
type scratch struct {
	slab gf2.Slab
	perm []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Run simulates cfg.Words ECC words and aggregates statistics. Words are
// processed in bitsliced batches of up to 64 lanes (the final batch may be
// ragged); the per-word statistics are identical in distribution to
// RunScalar, but the RNG consumption differs, so seed-for-seed streams are
// not comparable between the two.
func Run(cfg Config, rng *rand.Rand) (*Result, error) {
	cond, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	bc := cfg.Code.Bitsliced()
	n, k, r := bc.N(), bc.K(), bc.ParityBits()
	res := &Result{
		N: n, K: k,
		PreErrors:  make([]int64, n),
		PostErrors: make([]int64, k),
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	for remaining := cfg.Words; remaining > 0; {
		lanes := 64
		if remaining < lanes {
			lanes = remaining
		}
		remaining -= lanes

		sc.slab.Reset()
		data := sc.slab.Alloc(k, lanes)
		cw := sc.slab.Alloc(n, lanes)
		mask := sc.slab.Alloc(n, lanes)
		synd := sc.slab.Alloc(r, lanes)
		lm := data.LaneMask()
		dw, cww, mw := data.Words(), cw.Words(), mask.Words()

		switch cfg.Pattern {
		case PatternAllOnes:
			for b := 0; b < k; b++ {
				dw[b] = lm
			}
		case PatternAllZeros:
			// Slab buffers come back zeroed.
		case PatternCustom:
			for b := 0; b < k; b++ {
				if cfg.CustomData.Get(b) {
					dw[b] = lm
				}
			}
		case PatternRandom:
			for b := 0; b < k; b++ {
				dw[b] = rng.Uint64() & lm
			}
		}
		bc.Encode(data, cw)
		switch {
		case cond != nil && cond.probs != nil:
			sc.injectConditionedBernoulliBatch(mask, cond, rng)
		case cond != nil:
			sc.injectConditionedBatch(mask, cond.cdf, rng)
		default:
			injectBatch(cfg, cw, mask, rng)
		}

		// Apply the error mask and classify per-lane injected-error counts
		// with a carry-save counter: after the loop, ones holds the count
		// mod 2 and twos flags lanes with >= 2 errors.
		var ones, twos uint64
		for i := 0; i < n; i++ {
			m := mw[i]
			cww[i] ^= m
			res.PreErrors[i] += int64(bits.OnesCount64(m))
			twos |= ones & m
			ones ^= m
		}
		bc.Syndrome(cw, synd)
		dec := bc.Decode(cw, synd, mw)

		var postAny uint64
		for b := 0; b < k; b++ {
			diff := cww[b] ^ dw[b]
			res.PostErrors[b] += int64(bits.OnesCount64(diff))
			postAny |= diff
		}
		res.Words += int64(lanes)
		res.WordsWithPostError += int64(bits.OnesCount64(postAny))
		res.Correctable += int64(bits.OnesCount64(ones &^ twos))
		multi := twos
		res.Silent += int64(bits.OnesCount64(multi &^ dec.SyndromeNonzero))
		detected := multi & dec.SyndromeNonzero
		// Partial: the decoder flipped one of the true errors, or detected
		// an unmatched syndrome and left the word alone (shortened codes).
		partial := detected&dec.FlippedErr | detected&^dec.FlippedAny
		res.Partial += int64(bits.OnesCount64(partial))
		res.Miscorrected += int64(bits.OnesCount64(detected & dec.FlippedAny &^ dec.FlippedErr))
	}
	return res, nil
}

// injectBatch applies the configured error model across the whole batch with
// one geometric-skipping scan over the flattened lane-major position space,
// writing flips into mask. Retention-model draws that land on a discharged
// cell are consumed without flipping, mirroring the scalar path.
func injectBatch(cfg Config, cw, mask gf2.Batch, rng *rand.Rand) {
	n, lanes := cw.Bits(), cw.Lanes()
	if cfg.Model == ModelPerBitBernoulli {
		mw := mask.Words()
		for i := 0; i < n; i++ {
			p := cfg.BitFailProb[i]
			if p == 0 {
				continue
			}
			var m uint64
			for lane := 0; lane < lanes; lane++ {
				if rng.Float64() < p {
					m |= uint64(1) << uint(lane)
				}
			}
			mw[i] |= m
		}
		return
	}
	if cfg.RBER == 0 {
		return
	}
	cww, mw := cw.Words(), mask.Words()
	total := n * lanes
	for pos := nextHit(rng, cfg.RBER, -1); pos < total; pos = nextHit(rng, cfg.RBER, pos) {
		lane, bit := pos/n, pos%n
		lb := uint64(1) << uint(lane)
		if cfg.Model == ModelUniform || cww[bit]&lb != 0 {
			mw[bit] |= lb
		}
	}
}

// injectConditionedBatch draws a per-lane error count from the truncated
// binomial CDF and flips that many uniformly-chosen distinct positions in
// each lane, via a partial Fisher-Yates shuffle over the reusable perm
// buffer.
func (sc *scratch) injectConditionedBatch(mask gf2.Batch, cdf []float64, rng *rand.Rand) {
	n, lanes := mask.Bits(), mask.Lanes()
	if cap(sc.perm) < n {
		sc.perm = make([]int, n)
	}
	perm := sc.perm[:n]
	mw := mask.Words()
	for lane := 0; lane < lanes; lane++ {
		u := rng.Float64()
		m := 0
		for m < len(cdf)-1 && cdf[m] < u {
			m++
		}
		for i := range perm {
			perm[i] = i
		}
		lb := uint64(1) << uint(lane)
		for t := 0; t < m; t++ {
			s := t + rng.IntN(n-t)
			perm[t], perm[s] = perm[s], perm[t]
			mw[perm[t]] |= lb
		}
	}
}

// injectConditionedBernoulliBatch draws a per-lane error count from the
// truncated Poisson-binomial CDF and places that lane's errors by the
// conditional per-bit walk, reusing the scratch perm buffer for positions.
func (sc *scratch) injectConditionedBernoulliBatch(mask gf2.Batch, cs *condSampler, rng *rand.Rand) {
	lanes := mask.Lanes()
	mw := mask.Words()
	for lane := 0; lane < lanes; lane++ {
		positions := cs.bernoulliPositions(cs.count(rng), sc.perm[:0], rng)
		sc.perm = positions[:0]
		lb := uint64(1) << uint(lane)
		for _, p := range positions {
			mw[p] |= lb
		}
	}
}

// RunScalar simulates cfg.Words ECC words one at a time through the scalar
// gf2.Vec / Code.Decode path. It is the reference implementation the
// bitsliced Run is differentially tested against (FuzzBitsliced holds the
// codec layers identical; TestRunMatchesScalar holds the aggregate
// statistics together). Production callers should use Run.
func RunScalar(cfg Config, rng *rand.Rand) (*Result, error) {
	cond, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	n, k := cfg.Code.N(), cfg.Code.K()
	res := &Result{
		N: n, K: k,
		PreErrors:  make([]int64, n),
		PostErrors: make([]int64, k),
	}
	data := gf2.NewVec(k)
	switch cfg.Pattern {
	case PatternAllOnes:
		for i := 0; i < k; i++ {
			data.Set(i, true)
		}
	case PatternCustom:
		data = cfg.CustomData.Clone()
	}
	for w := 0; w < cfg.Words; w++ {
		if cfg.Pattern == PatternRandom {
			for i := 0; i < k; i++ {
				data.Set(i, rng.IntN(2) == 1)
			}
		}
		cw := cfg.Code.Encode(data)
		var bad gf2.Vec
		var errPositions []int
		switch {
		case cond != nil && cond.probs != nil:
			bad, errPositions = injectConditionedBernoulli(cw, cond, rng)
		case cond != nil:
			bad, errPositions = injectConditioned(cw, cond.cdf, rng)
		default:
			bad, errPositions = inject(cfg, cw, rng)
		}
		res.Words++
		for _, p := range errPositions {
			res.PreErrors[p]++
		}
		dec := cfg.Code.Decode(bad)
		postErrs := 0
		for b := 0; b < k; b++ {
			if dec.Data.Get(b) != data.Get(b) {
				res.PostErrors[b]++
				postErrs++
			}
		}
		if postErrs > 0 {
			res.WordsWithPostError++
		}
		switch {
		case len(errPositions) == 0:
		case len(errPositions) == 1:
			res.Correctable++
		case dec.Syndrome.Zero():
			res.Silent++
		case dec.FlippedBit >= 0 && contains(errPositions, dec.FlippedBit):
			res.Partial++
		case dec.FlippedBit >= 0:
			res.Miscorrected++
		default:
			// Unmatched syndrome on a shortened code: detected but
			// uncorrected; counts as partial (no new error introduced).
			res.Partial++
		}
	}
	return res, nil
}

// inject applies the configured error model to a codeword, returning the
// corrupted word and the flipped positions.
func inject(cfg Config, cw gf2.Vec, rng *rand.Rand) (gf2.Vec, []int) {
	bad := cw.Clone()
	var errs []int
	n := cw.Len()
	if cfg.Model == ModelPerBitBernoulli {
		for i := 0; i < n; i++ {
			if p := cfg.BitFailProb[i]; p > 0 && rng.Float64() < p {
				bad.Flip(i)
				errs = append(errs, i)
			}
		}
		return bad, errs
	}
	if cfg.RBER == 0 {
		return bad, nil
	}
	// Geometric skipping keeps low-RBER simulation fast.
	pos := nextHit(rng, cfg.RBER, -1)
	for pos < n {
		if cfg.Model == ModelUniform || cw.Get(pos) {
			bad.Flip(pos)
			errs = append(errs, pos)
		}
		pos = nextHit(rng, cfg.RBER, pos)
	}
	return bad, errs
}

// nextHit returns the next position after prev hit by an event of
// probability p per position.
func nextHit(rng *rand.Rand, p float64, prev int) int {
	if p >= 1 {
		return prev + 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	gap := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if gap < 1 {
		gap = 1
	}
	return prev + gap
}

// truncatedBinomialCDF returns the CDF of Binomial(n, p) conditioned on the
// count being >= min, indexed by count (entries below min are 0). Returns nil
// when the conditional event has no probability mass.
func truncatedBinomialCDF(n int, p float64, min int) []float64 {
	if p <= 0 || min > n {
		return nil
	}
	pmf := make([]float64, n+1)
	// Iterative binomial PMF avoids factorial overflow.
	pmf[0] = math.Pow(1-p, float64(n))
	for m := 1; m <= n; m++ {
		pmf[m] = pmf[m-1] * float64(n-m+1) / float64(m) * p / (1 - p)
	}
	total := 0.0
	for m := min; m <= n; m++ {
		total += pmf[m]
	}
	if total <= 0 {
		return nil
	}
	cdf := make([]float64, n+1)
	acc := 0.0
	for m := 0; m <= n; m++ {
		if m >= min {
			acc += pmf[m] / total
		}
		cdf[m] = acc
	}
	return cdf
}

// injectConditioned draws an error count from the truncated binomial CDF and
// flips that many uniformly-chosen distinct positions.
func injectConditioned(cw gf2.Vec, cdf []float64, rng *rand.Rand) (gf2.Vec, []int) {
	u := rng.Float64()
	m := 0
	for m < len(cdf)-1 && cdf[m] < u {
		m++
	}
	bad := cw.Clone()
	n := cw.Len()
	errs := rng.Perm(n)[:m]
	for _, p := range errs {
		bad.Flip(p)
	}
	return bad, errs
}

// injectConditionedBernoulli is the scalar conditioned path for the per-bit
// Bernoulli model: one count draw, then the conditional per-bit walk.
func injectConditionedBernoulli(cw gf2.Vec, cs *condSampler, rng *rand.Rand) (gf2.Vec, []int) {
	bad := cw.Clone()
	errs := cs.bernoulliPositions(cs.count(rng), nil, rng)
	for _, p := range errs {
		bad.Flip(p)
	}
	return bad, errs
}

// poissonBinomialSuffix builds the suffix error-count table for independent
// per-bit rates: suffix[i][j] = P(exactly j errors among bits i..n-1), so
// suffix[0] is the Poisson-binomial PMF of the total count.
func poissonBinomialSuffix(probs []float64) [][]float64 {
	n := len(probs)
	suffix := make([][]float64, n+1)
	suffix[n] = make([]float64, n+1)
	suffix[n][0] = 1
	for i := n - 1; i >= 0; i-- {
		row := make([]float64, n+1)
		p, next := probs[i], suffix[i+1]
		for j := 0; j <= n-i; j++ {
			row[j] = (1 - p) * next[j]
			if j > 0 {
				row[j] += p * next[j-1]
			}
		}
		suffix[i] = row
	}
	return suffix
}

// truncateCDF turns a PMF into the CDF conditioned on the value being
// >= min (entries below min are 0). Returns nil when the conditional event
// has no probability mass.
func truncateCDF(pmf []float64, min int) []float64 {
	if min >= len(pmf) {
		return nil
	}
	total := 0.0
	for m := min; m < len(pmf); m++ {
		total += pmf[m]
	}
	if total <= 0 {
		return nil
	}
	cdf := make([]float64, len(pmf))
	acc := 0.0
	for m := range pmf {
		if m >= min {
			acc += pmf[m] / total
		}
		cdf[m] = acc
	}
	return cdf
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Merge adds another batch's statistics into r. Configurations must match.
func (r *Result) Merge(o *Result) error {
	if r.N != o.N || r.K != o.K {
		return fmt.Errorf("einsim: merging results of different shapes")
	}
	r.Words += o.Words
	for i := range r.PreErrors {
		r.PreErrors[i] += o.PreErrors[i]
	}
	for i := range r.PostErrors {
		r.PostErrors[i] += o.PostErrors[i]
	}
	r.Correctable += o.Correctable
	r.Silent += o.Silent
	r.Partial += o.Partial
	r.Miscorrected += o.Miscorrected
	r.WordsWithPostError += o.WordsWithPostError
	return nil
}

// RelativePostProbabilities returns each data bit's share of all observed
// post-correction errors (Figure 1's y-axis). All-zero results return zeros.
func (r *Result) RelativePostProbabilities() []float64 {
	total := int64(0)
	for _, c := range r.PostErrors {
		total += c
	}
	out := make([]float64, r.K)
	if total == 0 {
		return out
	}
	for b, c := range r.PostErrors {
		out[b] = float64(c) / float64(total)
	}
	return out
}

// RelativePreProbabilities returns each codeword bit's share of observed
// pre-correction errors.
func (r *Result) RelativePreProbabilities() []float64 {
	total := int64(0)
	for _, c := range r.PreErrors {
		total += c
	}
	out := make([]float64, r.N)
	if total == 0 {
		return out
	}
	for i, c := range r.PreErrors {
		out[i] = float64(c) / float64(total)
	}
	return out
}
