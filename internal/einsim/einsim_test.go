package einsim

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

func run(t *testing.T, cfg Config, seed uint64) *Result {
	t.Helper()
	res, err := Run(cfg, rand.New(rand.NewPCG(seed, seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZeroRBERIsClean(t *testing.T) {
	res := run(t, Config{
		Code: ecc.Hamming74(), Pattern: PatternRandom, Model: ModelUniform,
		RBER: 0, Words: 1000,
	}, 1)
	if res.WordsWithPostError != 0 || res.Correctable != 0 {
		t.Fatalf("clean run produced errors: %+v", res)
	}
	for _, c := range res.PreErrors {
		if c != 0 {
			t.Fatal("pre-correction errors at RBER 0")
		}
	}
}

func TestUniformModelErrorRate(t *testing.T) {
	code := ecc.SequentialHamming(32)
	rber := 1e-3
	words := 200000
	res := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: rber, Words: words}, 2)
	total := int64(0)
	for _, c := range res.PreErrors {
		total += c
	}
	want := rber * float64(words*code.N())
	if math.Abs(float64(total)-want) > 0.1*want {
		t.Fatalf("injected %d errors, want about %.0f", total, want)
	}
	// Uniform across positions: no bit should deviate wildly from the mean.
	mean := float64(total) / float64(code.N())
	for i, c := range res.PreErrors {
		if math.Abs(float64(c)-mean) > 6*math.Sqrt(mean) {
			t.Fatalf("bit %d count %d deviates from mean %.1f", i, c, mean)
		}
	}
}

func TestRetentionModelOnlyChargedBitsFail(t *testing.T) {
	code := ecc.SequentialHamming(16)
	// Pattern with data zeros: only parity cells that encode to 1 may fail.
	res := run(t, Config{Code: code, Pattern: PatternAllZeros, Model: ModelRetention,
		RBER: 0.2, Words: 20000}, 3)
	zero := gf2.NewVec(16)
	cw := code.Encode(zero) // all-zero codeword: nothing is charged
	for i, c := range res.PreErrors {
		if !cw.Get(i) && c != 0 {
			t.Fatalf("discharged bit %d saw %d retention errors", i, c)
		}
	}
	// All-zero codeword: no cell charged at all, so no errors anywhere.
	if res.WordsWithPostError != 0 {
		t.Fatal("all-zero codeword cannot experience retention errors")
	}

	// All-ones data: every data cell charged; errors must appear.
	res = run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelRetention,
		RBER: 0.2, Words: 5000}, 4)
	dataErrs := int64(0)
	for _, c := range res.PreErrors[:16] {
		dataErrs += c
	}
	if dataErrs == 0 {
		t.Fatal("charged data bits never failed at RBER 0.2")
	}
}

func TestOutcomeClassificationInvariants(t *testing.T) {
	code := ecc.SequentialHamming(32)
	res := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: 5e-3, Words: 100000}, 5)
	// Every word with >= 2 errors lands in exactly one bucket; single-bit
	// errors are always corrected (SEC guarantee).
	if res.Correctable == 0 || res.Miscorrected == 0 {
		t.Fatalf("expected both correctable and miscorrected words: %+v", res)
	}
	// Words with post-correction errors must be at most the uncorrectable
	// words (silent + partial + miscorrected).
	uncorrectable := res.Silent + res.Partial + res.Miscorrected
	if res.WordsWithPostError > uncorrectable {
		t.Fatalf("%d words with post errors but only %d uncorrectable",
			res.WordsWithPostError, uncorrectable)
	}
	// Miscorrections strictly add errors, so every miscorrected word shows a
	// post-correction error... unless the miscorrection hit a parity bit.
	if res.WordsWithPostError == 0 {
		t.Fatal("uncorrectable errors should leave visible damage")
	}
}

// Figure 1's headline: same pre-correction behavior, different ECC functions,
// different post-correction fingerprints.
func TestDifferentCodesDifferentPostDistributions(t *testing.T) {
	mk := func(code *ecc.Code, seed uint64) []float64 {
		res := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
			RBER: 1e-3, Words: 300000}, seed)
		return res.RelativePostProbabilities()
	}
	rng := rand.New(rand.NewPCG(9, 9))
	a := mk(ecc.SequentialHamming(32), 10)
	b := mk(ecc.RandomHamming(32, rng), 10) // same seed: same injected noise
	// L1 distance between the two distributions should be clearly nonzero.
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	if d < 0.05 {
		t.Fatalf("post-correction distributions indistinguishable (L1=%v)", d)
	}
}

func TestPreDistributionFlatUnderUniform(t *testing.T) {
	code := ecc.SequentialHamming(32)
	res := run(t, Config{Code: code, Pattern: PatternRandom, Model: ModelUniform,
		RBER: 1e-3, Words: 200000}, 11)
	probs := res.RelativePreProbabilities()
	want := 1.0 / float64(code.N())
	for i, p := range probs {
		if math.Abs(p-want) > 0.35*want {
			t.Fatalf("pre-correction share at bit %d = %v, want ~%v", i, p, want)
		}
	}
}

func TestMerge(t *testing.T) {
	cfg := Config{Code: ecc.Hamming74(), Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: 1e-2, Words: 5000}
	a := run(t, cfg, 20)
	b := run(t, cfg, 21)
	wordsBefore := a.Words
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Words != wordsBefore+b.Words {
		t.Fatal("Merge did not add word counts")
	}
	other := run(t, Config{Code: ecc.SequentialHamming(16), Pattern: PatternAllOnes,
		Model: ModelUniform, RBER: 1e-2, Words: 10}, 22)
	if err := a.Merge(other); err == nil {
		t.Fatal("Merge across shapes must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Run(Config{}, rng); err == nil {
		t.Fatal("nil code accepted")
	}
	if _, err := Run(Config{Code: ecc.Hamming74(), RBER: 2}, rng); err == nil {
		t.Fatal("RBER > 1 accepted")
	}
	if _, err := Run(Config{Code: ecc.Hamming74(), Pattern: PatternCustom,
		CustomData: gf2.NewVec(3)}, rng); err == nil {
		t.Fatal("mis-sized custom data accepted")
	}
}

func TestRelativeProbabilitiesSumToOne(t *testing.T) {
	res := run(t, Config{Code: ecc.SequentialHamming(16), Pattern: PatternAllOnes,
		Model: ModelUniform, RBER: 1e-2, Words: 50000}, 30)
	sum := 0.0
	for _, p := range res.RelativePostProbabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("post shares sum to %v", sum)
	}
	sum = 0
	for _, p := range res.RelativePreProbabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pre shares sum to %v", sum)
	}
}

func TestConditionedSampling(t *testing.T) {
	code := ecc.SequentialHamming(32)
	res := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: 1e-4, Words: 5000, ConditionMinErrors: 2}, 40)
	// Every word must have at least 2 injected errors: no correctable-only
	// words, plenty of uncorrectable outcomes.
	if res.Correctable != 0 {
		t.Fatalf("conditioned run saw %d single-error words", res.Correctable)
	}
	if res.Silent+res.Partial+res.Miscorrected != res.Words {
		t.Fatalf("outcome buckets (%d) != words (%d)",
			res.Silent+res.Partial+res.Miscorrected, res.Words)
	}
	// Conditioned and unconditioned relative post-correction distributions
	// must agree (this is the importance-sampling correctness property).
	uncond := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: 5e-3, Words: 400000}, 41)
	cond := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelUniform,
		RBER: 5e-3, Words: 100000, ConditionMinErrors: 2}, 42)
	a, b := uncond.RelativePostProbabilities(), cond.RelativePostProbabilities()
	l1 := 0.0
	for i := range a {
		l1 += math.Abs(a[i] - b[i])
	}
	if l1 > 0.12 {
		t.Fatalf("conditioned distribution diverges (L1=%v)", l1)
	}
}

func TestConditionedSamplingValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Run(Config{Code: ecc.Hamming74(), Model: ModelRetention,
		RBER: 0.1, Words: 1, ConditionMinErrors: 2}, rng); err == nil {
		t.Fatal("conditioning must require the uniform model")
	}
	if _, err := Run(Config{Code: ecc.Hamming74(), Model: ModelUniform,
		RBER: 0.1, Words: 1, ConditionMinErrors: 8}, rng); err == nil {
		t.Fatal("conditioning beyond n errors must fail")
	}
}

func TestPerBitBernoulliValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	code := ecc.Hamming74()
	if _, err := Run(Config{Code: code, Model: ModelPerBitBernoulli, Words: 1}, rng); err == nil {
		t.Fatal("missing BitFailProb accepted")
	} else if !strings.Contains(err.Error(), "PER_BIT_BERNOULLI") {
		t.Fatalf("rejection does not name the model: %v", err)
	}
	bad := make([]float64, code.N())
	bad[2] = 1.5
	if _, err := Run(Config{Code: code, Model: ModelPerBitBernoulli, Words: 1,
		BitFailProb: bad}, rng); err == nil {
		t.Fatal("out-of-range BitFailProb accepted")
	}
}

func TestConditionedSamplingRejectionNamesModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	_, err := Run(Config{Code: ecc.Hamming74(), Model: ModelRetention,
		RBER: 0.1, Words: 1, ConditionMinErrors: 2}, rng)
	if err == nil {
		t.Fatal("retention-model conditioning accepted")
	}
	if !strings.Contains(err.Error(), "RETENTION") {
		t.Fatalf("rejection does not name the offending model: %v", err)
	}
}

// TestPerBitBernoulliRates: each bit's pre-correction error count tracks its
// own configured rate, in both the bitsliced and scalar paths.
func TestPerBitBernoulliRates(t *testing.T) {
	code := ecc.SequentialHamming(16)
	probs := make([]float64, code.N())
	for i := range probs {
		probs[i] = 0.01
	}
	probs[0], probs[5] = 0.3, 0.1
	cfg := Config{Code: code, Pattern: PatternAllOnes, Model: ModelPerBitBernoulli,
		BitFailProb: probs, Words: 50000}
	for name, runner := range map[string]func(Config, *rand.Rand) (*Result, error){
		"bitsliced": Run, "scalar": RunScalar,
	} {
		res, err := runner(cfg, rand.New(rand.NewPCG(7, 8)))
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range probs {
			want := p * float64(cfg.Words)
			got := float64(res.PreErrors[i])
			if math.Abs(got-want) > 6*math.Sqrt(want*(1-p))+1 {
				t.Fatalf("%s: bit %d saw %v errors, want about %v (p=%v)", name, i, got, want, p)
			}
		}
	}
}

// TestPerBitBernoulliConditioned: conditioning on >= 2 errors via the
// Poisson-binomial sampler keeps every word uncorrectable and preserves the
// per-bit rate profile relative to the unconditioned model.
func TestPerBitBernoulliConditioned(t *testing.T) {
	code := ecc.SequentialHamming(16)
	probs := make([]float64, code.N())
	for i := range probs {
		probs[i] = 0.005
	}
	probs[3] = 0.05
	cond := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelPerBitBernoulli,
		BitFailProb: probs, Words: 20000, ConditionMinErrors: 2}, 50)
	if cond.Correctable != 0 {
		t.Fatalf("conditioned run saw %d single-error words", cond.Correctable)
	}
	if cond.Silent+cond.Partial+cond.Miscorrected != cond.Words {
		t.Fatalf("outcome buckets (%d) != words (%d)",
			cond.Silent+cond.Partial+cond.Miscorrected, cond.Words)
	}
	// The high-rate bit must dominate the conditioned pre-error distribution
	// just as it does unconditioned.
	uncond := run(t, Config{Code: code, Pattern: PatternAllOnes, Model: ModelPerBitBernoulli,
		BitFailProb: probs, Words: 200000}, 51)
	for _, res := range []*Result{cond, uncond} {
		for i, c := range res.PreErrors {
			if i != 3 && c >= res.PreErrors[3] {
				t.Fatalf("bit %d (p=%v) out-errored bit 3 (p=%v): %d vs %d",
					i, probs[i], probs[3], c, res.PreErrors[3])
			}
		}
	}
}

// TestPerBitBernoulliScalarBitslicedAgree: the two paths agree in
// distribution on the relative pre-correction profile.
func TestPerBitBernoulliScalarBitslicedAgree(t *testing.T) {
	code := ecc.SequentialHamming(32)
	probs := make([]float64, code.N())
	for i := range probs {
		probs[i] = 0.002 * float64(1+i%5)
	}
	cfg := Config{Code: code, Pattern: PatternRandom, Model: ModelPerBitBernoulli,
		BitFailProb: probs, Words: 100000}
	a, err := Run(cfg, rand.New(rand.NewPCG(60, 61)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScalar(cfg, rand.New(rand.NewPCG(62, 63)))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.RelativePreProbabilities(), b.RelativePreProbabilities()
	l1 := 0.0
	for i := range pa {
		l1 += math.Abs(pa[i] - pb[i])
	}
	if l1 > 0.05 {
		t.Fatalf("bitsliced and scalar pre-error distributions diverge (L1=%v)", l1)
	}
}
