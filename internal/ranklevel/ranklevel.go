// Package ranklevel models DRAM rank-level ECC — the error correction that
// lives in the memory controller rather than on the DRAM die — and
// implements the paper's §4.1 baseline for determining an ECC function:
// direct syndrome extraction via bus-level error injection, the approach of
// Cojocar et al. [26] that BEER is contrasted against.
//
// The contrast matters because the baseline needs two capabilities that
// on-die ECC denies (paper §4.2):
//
//  1. physical access to the full codeword (the DDR bus carries data and
//     parity between controller and DIMM, so an interposer can flip any bit),
//  2. visibility of correction events and their syndromes (machine-check
//     architecture reports corrected-error syndromes for rank-level ECC).
//
// DirectRecovery exercises exactly that flow and recovers H column by
// column. BEER (internal/core) needs neither capability, which is why it —
// and not this baseline — works for on-die ECC. Entry points: New builds
// the simulated controller-side rank, DirectRecovery runs the baseline
// (examples/rank_level_baseline narrates it; figures' table1 summarizes the
// capability comparison).
package ranklevel

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/gf2"
)

// Event describes what the controller's ECC logic observed on one read,
// mirroring the corrected-error reporting of server memory controllers.
type Event struct {
	// Detected is true when the syndrome was nonzero.
	Detected bool
	// Corrected is true when the syndrome matched a codeword bit and the
	// controller flipped it.
	Corrected bool
	// Syndrome is the raw error syndrome (exposed by rank-level ECC
	// hardware; on-die ECC never reveals this).
	Syndrome gf2.Vec
	// FlippedBit is the codeword position corrected, or -1.
	FlippedBit int
}

// Controller is a memory controller with SEC rank-level ECC over an
// abstracted DRAM rank. Data and parity travel over an observable "bus":
// faults can be injected into stored codewords at any bit position.
type Controller struct {
	code  *ecc.Code
	words []gf2.Vec
}

// New builds a controller with the given (secret) ECC function and a rank
// holding `words` codewords.
func New(code *ecc.Code, words int) *Controller {
	c := &Controller{code: code, words: make([]gf2.Vec, words)}
	for i := range c.words {
		c.words[i] = code.Encode(gf2.NewVec(code.K()))
	}
	return c
}

// K returns the dataword width.
func (c *Controller) K() int { return c.code.K() }

// N returns the codeword width carried on the bus.
func (c *Controller) N() int { return c.code.N() }

// Words returns the number of codewords in the rank.
func (c *Controller) Words() int { return len(c.words) }

// Write encodes and stores a dataword.
func (c *Controller) Write(addr int, data gf2.Vec) {
	c.words[addr] = c.code.Encode(data)
}

// Read decodes a stored codeword, returning the corrected data and the
// ECC event report.
func (c *Controller) Read(addr int) (gf2.Vec, Event) {
	res := c.code.Decode(c.words[addr])
	return res.Data, Event{
		Detected:   !res.Syndrome.Zero(),
		Corrected:  res.FlippedBit >= 0,
		Syndrome:   res.Syndrome,
		FlippedBit: res.FlippedBit,
	}
}

// InjectBusFault flips one stored codeword bit, modeling an interposer or
// fault injector on the DDR bus (the hardware capability Cojocar et al.
// rely on). bit may address parity positions — impossible for on-die ECC.
func (c *Controller) InjectBusFault(addr, bit int) {
	if bit < 0 || bit >= c.code.N() {
		panic(fmt.Sprintf("ranklevel: bit %d out of codeword range %d", bit, c.code.N()))
	}
	c.words[addr].Flip(bit)
}

// GroundTruth exposes the controller's ECC function for validation.
func (c *Controller) GroundTruth() *ecc.Code { return c.code }

// DirectRecovery implements the paper's §4.1 systematic approach: for each
// codeword bit position, inject a 1-hot error and read; the reported
// syndrome is exactly that column of the parity-check matrix (Equation 2).
// Returns the reconstructed code and the number of injections used.
func DirectRecovery(c *Controller) (*ecc.Code, int, error) {
	n, k := c.N(), c.K()
	r := n - k
	h := gf2.NewMat(r, n)
	injections := 0
	for bit := 0; bit < n; bit++ {
		addr := bit % c.Words()
		c.Write(addr, gf2.NewVec(k)) // any codeword works: H*c = 0
		c.InjectBusFault(addr, bit)
		injections++
		_, ev := c.Read(addr)
		if !ev.Detected {
			return nil, injections, fmt.Errorf("ranklevel: injection at bit %d went undetected", bit)
		}
		h.SetCol(bit, ev.Syndrome)
	}
	// The recovered H is bit-exact, including the parity block; verify the
	// parity block is the identity (systematic code) before wrapping.
	p := h.SubMatrix(0, r, 0, k)
	if !h.SubMatrix(0, r, k, n).Equal(gf2.Identity(r)) {
		return nil, injections, fmt.Errorf("ranklevel: recovered parity block is not systematic")
	}
	code, err := ecc.New(p)
	if err != nil {
		return nil, injections, fmt.Errorf("ranklevel: recovered matrix invalid: %w", err)
	}
	return code, injections, nil
}
