package ranklevel

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf2"
)

func TestControllerCorrectsSingleFault(t *testing.T) {
	code := ecc.RandomHamming(16, rand.New(rand.NewPCG(1, 2)))
	ctrl := New(code, 4)
	data := gf2.VecFromSupport(16, 0, 5, 9)
	ctrl.Write(2, data)
	ctrl.InjectBusFault(2, 5)
	got, ev := ctrl.Read(2)
	if !got.Equal(data) {
		t.Fatal("single fault not corrected")
	}
	if !ev.Detected || !ev.Corrected || ev.FlippedBit != 5 {
		t.Fatalf("event = %+v", ev)
	}
	// Clean read reports nothing (fault was in the stored word, now fixed?
	// No: Read does not scrub; re-reading sees the same fault corrected).
	got, ev = ctrl.Read(2)
	if !got.Equal(data) || !ev.Corrected {
		t.Fatal("fault should persist in storage and be re-corrected")
	}
}

func TestDirectRecoveryExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, k := range []int{8, 16, 32, 64, 128} {
		code := ecc.RandomHamming(k, rng)
		ctrl := New(code, 8)
		got, injections, err := DirectRecovery(ctrl)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Direct syndrome extraction recovers H bit-exactly — not just up to
		// equivalence — because parity positions are injectable.
		if !got.Equal(code) {
			t.Fatalf("k=%d: recovered wrong matrix", k)
		}
		if injections != code.N() {
			t.Fatalf("k=%d: used %d injections, want %d", k, injections, code.N())
		}
	}
}

// The capability contrast the paper draws (§4.2): the baseline requires bus
// injection into parity bits; BEER recovers the same function from retention
// errors alone. Both must agree up to equivalence.
func TestBaselineAgreesWithBEER(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	code := ecc.RandomHamming(11, rng) // full-length: 1-CHARGED suffices
	ctrl := New(code, 4)
	direct, _, err := DirectRecovery(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	prof := core.ExactProfile(code, core.OneCharged(11))
	res, err := core.Solve(context.Background(), prof, core.SolveOptions{ParityBits: code.ParityBits()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatal("BEER should be unique for a full-length code")
	}
	if !res.Codes[0].EquivalentTo(direct) {
		t.Fatal("BEER and the direct baseline disagree")
	}
}

func TestInjectBusFaultBounds(t *testing.T) {
	ctrl := New(ecc.Hamming74(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range injection")
		}
	}()
	ctrl.InjectBusFault(0, 7)
}

// Double faults exercise the SEC limits through the controller path.
func TestControllerDoubleFaultOutcomes(t *testing.T) {
	code := ecc.Hamming74()
	ctrl := New(code, 1)
	data := gf2.VecFromUint(4, 0b1001)
	sawMiss := false
	for i := 0; i < code.N(); i++ {
		for j := i + 1; j < code.N(); j++ {
			ctrl.Write(0, data)
			ctrl.InjectBusFault(0, i)
			ctrl.InjectBusFault(0, j)
			got, ev := ctrl.Read(0)
			if !ev.Detected {
				t.Fatalf("double fault (%d,%d) undetected for full-length code", i, j)
			}
			if !got.Equal(data) {
				sawMiss = true
			}
		}
	}
	if !sawMiss {
		t.Fatal("SEC code corrected every double fault; impossible")
	}
}
