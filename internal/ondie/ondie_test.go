package ondie

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/dram"
)

func smallConfig(m Manufacturer) Config {
	return Config{
		Manufacturer:  m,
		DataBits:      32,
		Banks:         1,
		Rows:          64,
		RegionsPerRow: 4,
		Seed:          3,
	}
}

func TestRoundTripNoErrors(t *testing.T) {
	for _, m := range []Manufacturer{MfrA, MfrB, MfrC} {
		chip := MustNew(smallConfig(m))
		rng := rand.New(rand.NewPCG(1, 2))
		data := make([]byte, chip.DataBytesPerRow())
		for i := range data {
			data[i] = byte(rng.IntN(256))
		}
		chip.WriteRow(0, 5, data)
		got := chip.ReadRow(0, 5)
		if !bytes.Equal(got, data) {
			t.Fatalf("mfr %s: data corrupted without any refresh pause", m)
		}
	}
}

func TestECCMasksLightDecay(t *testing.T) {
	// With a short pause, the raw substrate shows a few single-bit errors but
	// the on-die ECC corrects (or at least dramatically reduces) them; with a
	// long pause errors overwhelm the SEC code and become visible.
	chip := MustNew(Config{
		Manufacturer: MfrA, DataBits: 32, Banks: 1, Rows: 256, RegionsPerRow: 4, Seed: 7,
	})
	writeAll := func(val byte) {
		data := make([]byte, chip.DataBytesPerRow())
		for i := range data {
			data[i] = val
		}
		for r := 0; r < chip.Rows(); r++ {
			chip.WriteRow(0, r, data)
		}
	}
	countErrs := func(val byte) int {
		errs := 0
		for r := 0; r < chip.Rows(); r++ {
			for _, by := range chip.ReadRow(0, r) {
				diff := by ^ val
				for ; diff != 0; diff &= diff - 1 {
					errs++
				}
			}
		}
		return errs
	}
	writeAll(0xFF)
	chip.PauseRefresh(8 * time.Minute)
	shortErrs := countErrs(0xFF)

	writeAll(0xFF)
	chip.PauseRefresh(45 * time.Minute)
	longErrs := countErrs(0xFF)

	if longErrs <= shortErrs {
		t.Fatalf("long pause (%d errors) should beat short pause (%d)", longErrs, shortErrs)
	}
	if longErrs == 0 {
		t.Fatal("45-minute pause should overwhelm SEC correction")
	}
}

func TestManufacturersUseDifferentSecretCodes(t *testing.T) {
	a := MustNew(smallConfig(MfrA)).GroundTruthCode()
	b := MustNew(smallConfig(MfrB)).GroundTruthCode()
	c := MustNew(smallConfig(MfrC)).GroundTruthCode()
	if a.Equal(b) || a.Equal(c) || b.Equal(c) {
		t.Fatal("manufacturers must use distinct ECC functions")
	}
	// Same manufacturer + model (seed irrelevant to the code) => same code.
	cfg := smallConfig(MfrA)
	cfg.Seed = 999
	if !MustNew(cfg).GroundTruthCode().Equal(a) {
		t.Fatal("same manufacturer/model must use the same ECC function")
	}
}

func TestCellLayouts(t *testing.T) {
	a := MustNew(smallConfig(MfrA))
	for r := 0; r < a.Rows(); r++ {
		if a.GroundTruthCellType(0, r) != dram.TrueCell {
			t.Fatal("manufacturer A must be all true-cells")
		}
	}
	cfg := smallConfig(MfrC)
	cfg.Rows = 4096 // enough for the paper's 800/824/1224 blocks
	c := MustNew(cfg)
	sawTrue, sawAnti := false, false
	for r := 0; r < c.Rows(); r++ {
		switch c.GroundTruthCellType(0, r) {
		case dram.TrueCell:
			sawTrue = true
		case dram.AntiCell:
			sawAnti = true
		}
	}
	if !sawTrue || !sawAnti {
		t.Fatal("manufacturer C must mix true- and anti-cells")
	}
	if c.GroundTruthCellType(0, 0) != dram.TrueCell || c.GroundTruthCellType(0, 800) != dram.AntiCell {
		t.Fatal("manufacturer C blocks must start true at row 0 and flip at row 800")
	}
	// Small chips still get both types via scaled blocks.
	small := MustNew(smallConfig(MfrC))
	sawTrue, sawAnti = false, false
	for r := 0; r < small.Rows(); r++ {
		if small.GroundTruthCellType(0, r) == dram.TrueCell {
			sawTrue = true
		} else {
			sawAnti = true
		}
	}
	if !sawTrue || !sawAnti {
		t.Fatal("scaled manufacturer C layout lost a cell type")
	}
}

func TestInterleavingGroundTruth(t *testing.T) {
	chip := MustNew(smallConfig(MfrA))
	// Region bytes alternate between the two words.
	for off := 0; off < chip.RegionBytes(); off++ {
		word, byteIn := chip.GroundTruthWordOfRegionByte(off)
		if word != off%2 || byteIn != off/2 {
			t.Fatalf("offset %d mapped to (%d,%d)", off, word, byteIn)
		}
	}
}

// A single-bit flip confined to one dataword must stay confined to its
// (interleaved) word even when the ECC miscorrects: errors never leak into
// the other word of the region.
func TestErrorsConfinedToWord(t *testing.T) {
	cfg := smallConfig(MfrB)
	cfg.Rows = 512
	chip := MustNew(cfg)
	data := make([]byte, chip.DataBytesPerRow())
	// Charge one bit of word 0 in region 0 (region byte 0 = word 0 byte 0).
	for r := 0; r < chip.Rows(); r++ {
		d := make([]byte, len(data))
		d[0] = 0x01
		chip.WriteRow(0, r, d)
	}
	chip.PauseRefresh(40 * time.Minute)
	for r := 0; r < chip.Rows(); r++ {
		got := chip.ReadRow(0, r)
		for off := 0; off < chip.RegionBytes(); off++ {
			want := byte(0)
			if off == 0 {
				want = 0x01
			}
			if got[off] != want && off%2 == 1 {
				t.Fatalf("row %d: error leaked into word 1 at region byte %d", r, off)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Manufacturer: MfrA, DataBits: 30, Banks: 1, Rows: 1, RegionsPerRow: 1},
		{Manufacturer: MfrA, DataBits: 32, Banks: 0, Rows: 1, RegionsPerRow: 1},
		{Manufacturer: MfrA, DataBits: 0, Banks: 1, Rows: 1, RegionsPerRow: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig(MfrA)
	chip := MustNew(cfg)
	if chip.GroundTruthCode().K() != 128 {
		t.Fatal("paper-scale chips use 128-bit datawords")
	}
	if chip.RegionBytes() != 32 {
		t.Fatalf("region = %dB, want 32B (two interleaved 16B words)", chip.RegionBytes())
	}
	if chip.GroundTruthCode().N() != 136 {
		t.Fatalf("codeword = %d bits, want 136", chip.GroundTruthCode().N())
	}
}
