package ondie

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"
)

// TestBitslicedRowsMatchScalar holds the bitsliced WriteRow/ReadRow path
// byte-identical to the scalar per-word reference across manufacturers,
// decay and transient noise. Identical seeds give identical substrate decay,
// so any divergence is in the codec layering.
func TestBitslicedRowsMatchScalar(t *testing.T) {
	for _, mfr := range []Manufacturer{MfrA, MfrB, MfrC} {
		cfg := Config{
			Manufacturer:  mfr,
			DataBits:      32,
			Banks:         1,
			Rows:          32,
			RegionsPerRow: 3,
			Seed:          77,
			TransientBER:  1e-3,
		}
		fast := MustNew(cfg)
		cfg.ScalarECC = true
		ref := MustNew(cfg)

		rng := rand.New(rand.NewPCG(1, uint64(len(mfr))))
		rows := fast.Rows()
		data := make([][]byte, rows)
		for r := 0; r < rows; r++ {
			data[r] = make([]byte, fast.DataBytesPerRow())
			for i := range data[r] {
				data[r][i] = byte(rng.Uint32())
			}
			fast.WriteRow(0, r, data[r])
			ref.WriteRow(0, r, data[r])
		}
		for pass, pause := range []time.Duration{0, 5 * time.Minute, time.Hour} {
			fast.PauseRefresh(pause)
			ref.PauseRefresh(pause)
			for r := 0; r < rows; r++ {
				got := fast.ReadRow(0, r)
				want := ref.ReadRow(0, r)
				if !bytes.Equal(got, want) {
					t.Fatalf("mfr %s pass %d row %d: bitsliced read diverges from scalar", mfr, pass, r)
				}
			}
		}
	}
}

// TestWriteRowSteadyStateAllocs pins the per-chip-scratch property: warm row
// writes allocate nothing, warm reads allocate only the returned bytes.
func TestWriteRowSteadyStateAllocs(t *testing.T) {
	c := MustNew(Config{Manufacturer: MfrB, DataBits: 16, Banks: 1, Rows: 4, RegionsPerRow: 4, Seed: 3})
	data := make([]byte, c.DataBytesPerRow())
	for i := range data {
		data[i] = byte(i * 37)
	}
	c.WriteRow(0, 0, data)
	c.ReadRow(0, 0)
	if allocs := testing.AllocsPerRun(50, func() { c.WriteRow(0, 0, data) }); allocs != 0 {
		t.Fatalf("warm WriteRow allocated %v times per call", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { c.ReadRow(0, 0) }); allocs > 1 {
		t.Fatalf("warm ReadRow allocated %v times per call; want only the result slice", allocs)
	}
}

// TestManyWordsPerRow exercises the >64-words-per-row chunking (two ragged
// batch chunks per row).
func TestManyWordsPerRow(t *testing.T) {
	cfg := Config{Manufacturer: MfrB, DataBits: 8, Banks: 1, Rows: 2, RegionsPerRow: 40, Seed: 11}
	fast := MustNew(cfg)
	cfg.ScalarECC = true
	ref := MustNew(cfg)
	if fast.WordsPerRow() <= 64 {
		t.Fatalf("config does not exceed 64 words per row (%d)", fast.WordsPerRow())
	}
	data := make([]byte, fast.DataBytesPerRow())
	for i := range data {
		data[i] = byte(255 - i)
	}
	fast.WriteRow(0, 1, data)
	ref.WriteRow(0, 1, data)
	fast.PauseRefresh(30 * time.Minute)
	ref.PauseRefresh(30 * time.Minute)
	if got, want := fast.ReadRow(0, 1), ref.ReadRow(0, 1); !bytes.Equal(got, want) {
		t.Fatal("chunked bitsliced read diverges from scalar")
	}
}
